#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over the repo's own translation
# units using a compile_commands.json produced by CMake
# (CMAKE_EXPORT_COMPILE_COMMANDS is ON by default in this tree).
#
# Usage:
#   scripts/run_clang_tidy.sh [build_dir] [-- extra clang-tidy args]
#
#   build_dir defaults to ./build; it must contain compile_commands.json
#   (run `cmake -B build -S .` first).
#
# Exit codes: 0 clean or tool unavailable (skipped with a notice on
# stderr — keeps local gcc-only setups green; CI installs clang-tidy and
# the job fails on findings there), 1 findings, 2 usage error.
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift $(( $# > 0 ? 1 : 0 )) || true
if [ "${1:-}" = "--" ]; then shift; fi

tidy_bin="${CLANG_TIDY:-}"
if [ -z "$tidy_bin" ]; then
  for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
              clang-tidy-15 clang-tidy-14; do
    if command -v "$cand" >/dev/null 2>&1; then tidy_bin="$cand"; break; fi
  done
fi
if [ -z "$tidy_bin" ]; then
  echo "run_clang_tidy: clang-tidy not found — skipping (set CLANG_TIDY" \
       "or install clang-tidy; CI runs this gate)" >&2
  exit 0
fi

db="$build_dir/compile_commands.json"
if [ ! -f "$db" ]; then
  echo "run_clang_tidy: $db not found — configure first:" \
       "cmake -B $build_dir -S $repo_root" >&2
  exit 2
fi

# Our own TUs only: the compilation database also contains GTest/benchmark
# TUs when those are vendored, and third-party code is not ours to lint.
mapfile -t sources < <(
  python3 - "$db" "$repo_root" <<'EOF'
import json, os, sys
db, root = sys.argv[1], os.path.realpath(sys.argv[2])
seen = set()
for entry in json.load(open(db)):
    path = os.path.realpath(
        os.path.join(entry.get("directory", ""), entry["file"]))
    rel = os.path.relpath(path, root)
    if rel.startswith(("src/", "bench/", "tests/", "examples/", "tools/",
                       "fuzz/")) \
            and rel not in seen:
        seen.add(rel)
        print(path)
EOF
)
if [ "${#sources[@]}" -eq 0 ]; then
  echo "run_clang_tidy: no repo sources in $db" >&2
  exit 2
fi

echo "run_clang_tidy: $tidy_bin over ${#sources[@]} translation units"
status=0
# One TU at a time keeps the 1-job memory profile flat; clang-tidy's own
# -j support varies across versions.
for src in "${sources[@]}"; do
  "$tidy_bin" -p "$build_dir" --quiet "$@" "$src" || status=1
done
if [ "$status" -ne 0 ]; then
  echo "run_clang_tidy: findings above — fix them or adjust .clang-tidy" \
       "with a curation note" >&2
fi
exit "$status"

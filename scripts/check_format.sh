#!/usr/bin/env bash
# Verifies clang-format (config: .clang-format) over CHANGED files only —
# the tree predates the config, so formatting is ratcheted in with the
# code people actually touch instead of one big-bang reformat.
#
# Usage:
#   scripts/check_format.sh [base_ref]
#
#   Checks C++ files changed relative to base_ref (default: origin/main
#   if it exists, else HEAD~1), plus any staged/unstaged changes. Pass a
#   ref explicitly in CI: scripts/check_format.sh "$GITHUB_BASE_SHA".
#
# Exit codes: 0 clean or tool unavailable (skipped with a notice; CI
# installs clang-format and enforces), 1 files need formatting, 2 error.
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root" || exit 2

fmt_bin="${CLANG_FORMAT:-}"
if [ -z "$fmt_bin" ]; then
  for cand in clang-format clang-format-18 clang-format-17 clang-format-16 \
              clang-format-15 clang-format-14; do
    if command -v "$cand" >/dev/null 2>&1; then fmt_bin="$cand"; break; fi
  done
fi
if [ -z "$fmt_bin" ]; then
  echo "check_format: clang-format not found — skipping (set CLANG_FORMAT" \
       "or install clang-format; CI runs this gate)" >&2
  exit 0
fi

base_ref="${1:-}"
if [ -z "$base_ref" ]; then
  if git rev-parse --verify -q origin/main >/dev/null; then
    base_ref="origin/main"
  else
    base_ref="HEAD~1"
  fi
fi

# Changed vs base, plus working-tree changes; deleted files drop out via
# --diff-filter. testdata fixtures are deliberately unformatted C++.
mapfile -t files < <(
  { git diff --name-only --diff-filter=ACMR "$base_ref" -- \
      '*.cc' '*.cpp' '*.h' '*.hpp';
    git diff --name-only --diff-filter=ACMR -- \
      '*.cc' '*.cpp' '*.h' '*.hpp'; } \
    | sort -u | grep -v '^tools/testdata/' || true)

if [ "${#files[@]}" -eq 0 ]; then
  echo "check_format: no changed C++ files vs $base_ref"
  exit 0
fi

echo "check_format: $fmt_bin --dry-run over ${#files[@]} changed file(s)" \
     "(base: $base_ref)"
status=0
for f in "${files[@]}"; do
  [ -f "$f" ] || continue
  if ! "$fmt_bin" --dry-run --Werror "$f" >/dev/null 2>&1; then
    echo "needs formatting: $f" >&2
    status=1
  fi
done
if [ "$status" -ne 0 ]; then
  echo "check_format: run '$fmt_bin -i <file>' on the files above" >&2
fi
exit "$status"

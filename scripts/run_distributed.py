#!/usr/bin/env python3
"""Fan an ExperimentPlan across processes (and machines) and merge.

The distributed-execution orchestrator (see README "Distributed
execution" and docs/OPERATIONS.md):

  1. schedules `loloha_experiments --plan=P --slice=i/N` for every slice,
     round-robin across local worker processes (default) or --ssh-hosts,
  2. retries failed slices with exponential backoff, deleting stale or
     truncated partial files before every attempt,
  3. invokes `loloha_merge` on the complete partial set, which refuses
     inconsistent or incomplete sets all-or-none and writes bytes
     identical to a single-process run,
  4. with --verify, additionally runs the plan single-process and
     byte-compares every merged artifact against it (the distributed.*
     ctest legs and the CI fan-out job run in this mode).

Examples:

  # 4 slices over 4 local processes, outputs under ./distributed-out
  scripts/run_distributed.py --plan=plans/fig3_syn.plan --slices=4

  # paper-scale fan-out, passing overrides through to every slice
  scripts/run_distributed.py --plan=plans/fig3_adult.plan --slices=32 \
      --procs=16 --out=results/fig3_mse_adult.csv -- --full --runs=20 \
      --threads=1

  # across machines (built checkout at the same path on every host)
  scripts/run_distributed.py --plan=plans/fig3_syn.plan --slices=8 \
      --ssh-hosts=node1,node2 --remote-dir=/opt/loloha -- --full

Everything after a literal `--` is passed verbatim to every
loloha_experiments invocation (slice AND verify runs), so --quick /
--runs / --seed overrides apply consistently — required for the merge's
plan-fingerprint check to pass.
"""

import argparse
import filecmp
import os
import shlex
import subprocess
import sys
import time


def parse_args(argv):
    parser = argparse.ArgumentParser(
        description="Slice an ExperimentPlan across processes and merge.")
    parser.add_argument("--plan", required=True, help="plan file to run")
    parser.add_argument("--slices", type=int, default=4,
                        help="number of slices N (default 4)")
    parser.add_argument("--procs", type=int, default=0,
                        help="max concurrent slice processes "
                             "(default: min(slices, cpu count))")
    parser.add_argument("--bin", default="build/bench/loloha_experiments",
                        help="loloha_experiments binary")
    parser.add_argument("--merge-bin", default="build/tools/loloha_merge",
                        help="loloha_merge binary")
    parser.add_argument("--workdir", default="distributed-out",
                        help="scratch directory for partials and outputs")
    parser.add_argument("--out", default="",
                        help="merged CSV path "
                             "(default <workdir>/merged/<plan>.csv)")
    parser.add_argument("--json", default="",
                        help="merged JSON path "
                             "(default <workdir>/merged/<plan>.json)")
    parser.add_argument("--retries", type=int, default=2,
                        help="retries per failed slice (default 2)")
    parser.add_argument("--backoff", type=float, default=1.0,
                        help="base backoff seconds, doubled per retry "
                             "(default 1.0)")
    parser.add_argument("--ssh-hosts", default="",
                        help="comma-separated hosts; slices run remotely "
                             "round-robin and partials are copied back")
    parser.add_argument("--remote-dir", default="",
                        help="checkout directory on every ssh host "
                             "(default: this checkout's cwd)")
    parser.add_argument("--verify", action="store_true",
                        help="also run single-process and byte-compare "
                             "every merged artifact")
    parser.add_argument("--dry-run", action="store_true",
                        help="print the schedule and exit")
    parser.add_argument("passthrough", nargs="*",
                        help="overrides after `--` forwarded to every "
                             "loloha_experiments run")
    return parser.parse_args(argv)


def plan_stem(plan_path):
    return os.path.splitext(os.path.basename(plan_path))[0]


def partial_paths(parts_dir, stem, index, count):
    """Every file slice i of N writes under parts_dir (CSV + sidecar + JSON)."""
    token = "%d-of-%d" % (index, count)
    csv = os.path.join(parts_dir, "%s.slice-%s.csv" % (stem, token))
    return [csv, csv + ".meta.json",
            os.path.join(parts_dir, "%s.slice-%s.json" % (stem, token))]


def delete_stale(paths):
    """Removes leftovers of a previous attempt so a retry can't merge a
    truncated or out-of-date partial (merge would refuse them anyway —
    this keeps the failure at the slice that caused it)."""
    removed = []
    for path in paths:
        if os.path.exists(path):
            os.remove(path)
            removed.append(path)
    return removed


def slice_command(args, index, parts_dir, stem):
    cmd = [args.bin,
           "--plan=%s" % args.plan,
           "--slice=%d/%d" % (index, args.slices),
           "--out=%s" % os.path.join(parts_dir, stem + ".csv"),
           "--json=%s" % os.path.join(parts_dir, stem + ".json")]
    return cmd + args.passthrough


def wrap_for_host(cmd, host, remote_dir):
    """Runs `cmd` on `host` via ssh, from the remote checkout directory."""
    remote = "cd %s && %s" % (shlex.quote(remote_dir),
                              " ".join(shlex.quote(c) for c in cmd))
    return ["ssh", "-o", "BatchMode=yes", host, remote]


def scp_back(host, remote_dir, paths):
    """Copies a finished slice's partial files back from `host`."""
    for path in paths:
        remote = "%s:%s" % (host, os.path.join(remote_dir, path))
        result = subprocess.run(["scp", "-o", "BatchMode=yes", "-q",
                                 remote, path])
        if result.returncode != 0:
            return False
    return True


def check_partials(paths):
    """A finished slice must have written every partial file, each with
    content; anything else is treated as a failed attempt."""
    for path in paths:
        if not os.path.exists(path) or os.path.getsize(path) == 0:
            return "missing or empty partial %s" % path
    return None


class SliceJob:
    def __init__(self, index, cmd, host, expected):
        self.index = index
        self.cmd = cmd
        self.host = host            # None = local
        self.expected = expected    # partial files this slice must produce
        self.attempt = 0
        self.proc = None
        self.log_path = None


def launch(job, args, logs_dir):
    delete_stale(job.expected)
    job.attempt += 1
    job.log_path = os.path.join(
        logs_dir, "slice-%d-attempt-%d.log" % (job.index, job.attempt))
    log = open(job.log_path, "wb")
    cmd = job.cmd
    if job.host is not None:
        remote_dir = args.remote_dir or os.getcwd()
        cmd = wrap_for_host(job.cmd, job.host, remote_dir)
    job.proc = subprocess.Popen(cmd, stdout=log, stderr=subprocess.STDOUT)
    log.close()


def finish(job, args):
    """Returns None on success, an error string on failure."""
    code = job.proc.wait()
    job.proc = None
    if code != 0:
        return "exit code %d (log: %s)" % (code, job.log_path)
    if job.host is not None:
        remote_dir = args.remote_dir or os.getcwd()
        if not scp_back(job.host, remote_dir, job.expected):
            return "scp of partials from %s failed" % job.host
    return check_partials(job.expected)


def run_slices(args, jobs, logs_dir):
    """Runs jobs with bounded concurrency and per-slice retry/backoff."""
    pending = list(jobs)
    running = []
    failed = []
    max_procs = args.procs if args.procs > 0 else (os.cpu_count() or 1)
    max_procs = min(max_procs, len(jobs))
    while pending or running:
        while pending and len(running) < max_procs:
            job = pending.pop(0)
            launch(job, args, logs_dir)
            print("[slice %d/%d] attempt %d started%s" %
                  (job.index, args.slices, job.attempt,
                   " on %s" % job.host if job.host else ""))
            running.append(job)
        # Reap the first finished job (poll; slice runs are seconds to
        # hours, a 50 ms poll is noise).
        done = None
        while done is None:
            for job in running:
                if job.proc.poll() is not None:
                    done = job
                    break
            if done is None:
                time.sleep(0.05)
        running.remove(done)
        error = finish(done, args)
        if error is None:
            print("[slice %d/%d] done" % (done.index, args.slices))
            continue
        if done.attempt <= args.retries:
            delay = args.backoff * (2 ** (done.attempt - 1))
            print("[slice %d/%d] failed (%s); retrying in %.1fs" %
                  (done.index, args.slices, error, delay))
            time.sleep(delay)
            pending.append(done)
        else:
            print("[slice %d/%d] failed permanently: %s" %
                  (done.index, args.slices, error))
            delete_stale(done.expected)
            failed.append(done)
    return failed


def byte_compare(dir_a, dir_b):
    """Every artifact in either directory must exist in both with
    identical bytes. Returns a list of difference descriptions."""
    problems = []
    names = sorted(set(os.listdir(dir_a)) | set(os.listdir(dir_b)))
    for name in names:
        a, b = os.path.join(dir_a, name), os.path.join(dir_b, name)
        if not os.path.exists(a):
            problems.append("%s missing from %s" % (name, dir_a))
        elif not os.path.exists(b):
            problems.append("%s missing from %s" % (name, dir_b))
        elif not filecmp.cmp(a, b, shallow=False):
            problems.append("%s differs between %s and %s" % (name, dir_a,
                                                              dir_b))
    if not names:
        problems.append("no artifacts produced under %s" % dir_a)
    return problems


def main(argv):
    args = parse_args(argv)
    if args.slices < 1:
        print("--slices must be >= 1", file=sys.stderr)
        return 2
    stem = plan_stem(args.plan)
    parts_dir = os.path.join(args.workdir, "parts")
    merged_dir = os.path.join(args.workdir, "merged")
    single_dir = os.path.join(args.workdir, "single")
    logs_dir = os.path.join(args.workdir, "logs")
    merged_csv = args.out or os.path.join(merged_dir, stem + ".csv")
    merged_json = args.json or os.path.join(merged_dir, stem + ".json")

    hosts = [h for h in args.ssh_hosts.split(",") if h]
    jobs = []
    for index in range(args.slices):
        host = hosts[index % len(hosts)] if hosts else None
        jobs.append(SliceJob(
            index, slice_command(args, index, parts_dir, stem), host,
            partial_paths(parts_dir, stem, index, args.slices)))

    merge_cmd = ([args.merge_bin, "--quiet",
                  "--out=%s" % merged_csv, "--json=%s" % merged_json] +
                 [job.expected[0] for job in jobs])

    if args.dry_run:
        print("# schedule: %d slice(s), %s" %
              (args.slices,
               "hosts: %s" % ", ".join(hosts) if hosts else
               "%d local proc(s)" %
               (min(args.procs or (os.cpu_count() or 1), args.slices))))
        for job in jobs:
            where = job.host or "local"
            print("[slice %d] %-8s %s" %
                  (job.index, where, " ".join(job.cmd)))
        print("[merge]  local    %s" % " ".join(merge_cmd))
        if args.verify:
            print("[verify] local    byte-compare %s vs %s" %
                  (merged_dir, single_dir))
        return 0

    for directory in (parts_dir, merged_dir, logs_dir):
        os.makedirs(directory, exist_ok=True)

    started = time.time()
    failed = run_slices(args, jobs, logs_dir)
    if failed:
        print("%d slice(s) failed; not merging (all-or-none)" % len(failed),
              file=sys.stderr)
        return 1
    slice_seconds = time.time() - started

    merge_log = os.path.join(logs_dir, "merge.log")
    with open(merge_log, "wb") as log:
        code = subprocess.run(merge_cmd, stdout=log,
                              stderr=subprocess.STDOUT).returncode
    if code != 0:
        with open(merge_log, "rb") as log:
            sys.stderr.buffer.write(log.read())
        print("merge failed (exit %d)" % code, file=sys.stderr)
        return 1
    print("merged %d slice(s) -> %s, %s (%.1fs slicing)" %
          (args.slices, merged_csv, merged_json, slice_seconds))

    if not args.verify:
        return 0

    os.makedirs(single_dir, exist_ok=True)
    single_cmd = ([args.bin, "--plan=%s" % args.plan,
                   "--out=%s" % os.path.join(single_dir,
                                             os.path.basename(merged_csv)),
                   "--json=%s" % os.path.join(single_dir,
                                              os.path.basename(merged_json))]
                  + args.passthrough)
    single_log = os.path.join(logs_dir, "single.log")
    with open(single_log, "wb") as log:
        code = subprocess.run(single_cmd, stdout=log,
                              stderr=subprocess.STDOUT).returncode
    if code != 0:
        print("single-process reference run failed (exit %d, log %s)" %
              (code, single_log), file=sys.stderr)
        return 1
    merged_parent = os.path.dirname(merged_csv) or "."
    problems = byte_compare(merged_parent, single_dir)
    if problems:
        for problem in problems:
            print("verify: %s" % problem, file=sys.stderr)
        return 1
    print("verify: merged output is byte-identical to the single-process "
          "run")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env bash
# Timed libFuzzer sessions over every harness in fuzz/, with corpus
# minimization and crash-artifact collection.
#
# Usage:
#   scripts/run_fuzz.sh [build_dir] [-- target ...]
#
#   build_dir defaults to ./build-fuzz; it must have been configured
#   with clang and -DLOLOHA_FUZZERS=ON:
#     CC=clang CXX=clang++ cmake -B build-fuzz -S . -DLOLOHA_FUZZERS=ON
#     cmake --build build-fuzz -j
#   With no explicit targets, every fuzz_<target> binary found in
#   <build_dir>/fuzz runs.
#
# Environment:
#   FUZZ_SECONDS   per-target time budget (default 60)
#   FUZZ_JOBS      libFuzzer -jobs/-workers (default 1: deterministic logs)
#   FUZZ_OUT       artifact root (default <build_dir>/fuzz-out)
#   FUZZ_MINIMIZE  1 (default) merges the grown corpus back over the
#                  seeds into FUZZ_OUT/corpus/<target>; 0 skips
#
# Layout per target under FUZZ_OUT:
#   corpus/<target>/     minimized corpus (seeds + novel inputs)
#   crashes/<target>/    crash-*/leak-*/timeout-* artifacts, if any
#   logs/<target>.log    full libFuzzer session log
#
# Exit codes: 0 all targets ran clean, 1 any crash/timeout/OOM artifact,
# 2 usage error (missing build dir / binaries).
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-fuzz}"
shift $(( $# > 0 ? 1 : 0 )) || true
if [ "${1:-}" = "--" ]; then shift; fi

seconds="${FUZZ_SECONDS:-60}"
jobs="${FUZZ_JOBS:-1}"
out_root="${FUZZ_OUT:-$build_dir/fuzz-out}"
minimize="${FUZZ_MINIMIZE:-1}"

if [ ! -d "$build_dir/fuzz" ]; then
  echo "run_fuzz: $build_dir/fuzz not found — configure with clang and" \
       "-DLOLOHA_FUZZERS=ON first (see header of this script)" >&2
  exit 2
fi

targets=("$@")
if [ "${#targets[@]}" -eq 0 ]; then
  for bin in "$build_dir"/fuzz/fuzz_*; do
    name="$(basename "$bin")"
    case "$name" in
      fuzz_replay_*) continue ;;  # replay mains are ctest legs, not fuzzers
      fuzz_*) [ -x "$bin" ] && targets+=("${name#fuzz_}") ;;
    esac
  done
fi
if [ "${#targets[@]}" -eq 0 ]; then
  echo "run_fuzz: no fuzz_<target> binaries in $build_dir/fuzz — was the" \
       "build configured with -DLOLOHA_FUZZERS=ON?" >&2
  exit 2
fi

status=0
for target in "${targets[@]}"; do
  bin="$build_dir/fuzz/fuzz_$target"
  if [ ! -x "$bin" ]; then
    echo "run_fuzz: missing binary $bin" >&2
    status=1
    continue
  fi
  seeds="$repo_root/fuzz/corpus/$target"
  dict="$repo_root/fuzz/dicts/$target.dict"
  corpus="$out_root/corpus/$target"
  crashes="$out_root/crashes/$target"
  log="$out_root/logs/$target.log"
  mkdir -p "$corpus" "$crashes" "$(dirname "$log")"

  args=("-max_total_time=$seconds" "-print_final_stats=1"
        "-artifact_prefix=$crashes/")
  if [ "$jobs" -gt 1 ]; then
    args+=("-jobs=$jobs" "-workers=$jobs")
  fi
  [ -f "$dict" ] && args+=("-dict=$dict")

  echo "run_fuzz: $target for ${seconds}s (log: $log)"
  # Session corpus starts from the checked-in seeds; novel inputs land in
  # $corpus so repeated sessions keep accumulating coverage.
  if ! "$bin" "${args[@]}" "$corpus" "$seeds" >"$log" 2>&1; then
    echo "run_fuzz: $target FAILED — artifacts in $crashes, tail of $log:" >&2
    tail -n 25 "$log" >&2
    status=1
    continue
  fi

  if [ "$minimize" = "1" ]; then
    # -merge=1 rewrites the session corpus as a minimal subset covering
    # the same edges, so the kept artifact stays reviewably small.
    minimized="$corpus.min.$$"
    mkdir -p "$minimized"
    if "$bin" -merge=1 "-artifact_prefix=$crashes/" \
         ${dict:+-dict="$dict"} "$minimized" "$corpus" "$seeds" \
         >>"$log" 2>&1; then
      rm -rf "$corpus"
      mv "$minimized" "$corpus"
    else
      rm -rf "$minimized"
      echo "run_fuzz: $target corpus merge failed (see $log) — keeping" \
           "unminimized corpus" >&2
    fi
  fi

  runs="$(grep -oE 'stat::number_of_executed_units: *[0-9]+' "$log" |
          grep -oE '[0-9]+' | tail -n 1 || true)"
  kept="$(find "$corpus" -type f | wc -l)"
  echo "run_fuzz: $target ok — ${runs:-?} execs, $kept corpus file(s)"
done

found="$(find "$out_root/crashes" -type f 2>/dev/null | wc -l)"
if [ "$found" -gt 0 ]; then
  echo "run_fuzz: $found crash artifact(s) under $out_root/crashes —" \
       "replay with: ./build/fuzz/fuzz_replay_<target> <artifact>" >&2
  status=1
fi
exit "$status"

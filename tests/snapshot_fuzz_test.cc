// Snapshot-format fuzzing and golden-file pinning
// (server/store/snapshot_file.h).
//
// Fuzz layer: thousands of seeded, reproducible mutations (the shared
// truncate/flip/extend/splice vocabulary in tests/fuzz_util.h) of a
// valid snapshot image, plus pure garbage buffers — the loader must
// never crash, and a mutated image may only parse successfully when
// every mutated byte lies in the header's 2-byte reserved pad (offsets
// 10-11), the only bytes no check covers. All randomness flows through
// loloha::Rng (deterministic across toolchains), per the repo's
// determinism lint. The coverage-guided twin of this test is
// fuzz/fuzz_snapshot.cc.
//
// Golden layer: tests/golden/*.snap are checked-in checkpoint files
// written by real collectors over fixed traffic. The test regenerates
// the same bytes and compares them to the files bit for bit, pinning
// the on-disk format — header layout, section order, CRCs, signature
// strings, slot packing, stats packing, user sort order. A deliberate
// format change regenerates them:
//   LOLOHA_REGEN_GOLDENS=1 ./tests/snapshot_fuzz_test

#include "server/store/snapshot_file.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz_util.h"
#include "net_test_util.h"
#include "server/collector.h"
#include "sim/protocol_spec.h"
#include "util/rng.h"
#include "wire/encoding.h"

namespace loloha {
namespace {

using net_test::MakeTraffic;
using net_test::Traffic;

// A small but fully featured snapshot image: real signature, non-zero
// step, packed stats aux, and a sorted user table.
std::string MakeValidImage() {
  SnapshotData data;
  data.signature = "fuzz-harness k=32 g=8 eps_perm=2 eps_first=1";
  data.step = 9;
  data.slot_bytes = 16;
  data.aux.assign(40, '\x00');
  Rng rng(0xF022ED);
  data.slots.resize(64 * 16);
  for (uint64_t u = 0; u < 64; ++u) {
    data.user_ids.push_back(u * 1000 + 7);
    for (uint32_t b = 0; b < 16; ++b) {
      data.slots[u * 16 + b] = static_cast<uint8_t>(rng.UniformU64());
    }
  }
  return SerializeSnapshot(data);
}

// The header's reserved pad is the only region no magic/version/CRC
// check covers.
bool OnlyReservedTouched(const std::vector<size_t>& offsets) {
  for (const size_t at : offsets) {
    if (at != 10 && at != 11) return false;
  }
  return !offsets.empty();
}

TEST(SnapshotFuzzTest, SeededMutationsNeverCrashOrSilentlyLoad) {
  const std::string good = MakeValidImage();
  SnapshotData original;
  std::string error;
  ASSERT_TRUE(ParseSnapshot(
      reinterpret_cast<const uint8_t*>(good.data()), good.size(), &original,
      &error))
      << error;

  constexpr uint32_t kTrials = 4000;
  for (uint32_t trial = 0; trial < kTrials; ++trial) {
    Rng rng(StreamSeed(0x5EED5, trial, 0));
    std::string mutated;
    std::vector<size_t> flipped;
    const uint64_t mode = rng.UniformInt(3);
    if (mode == 0) {
      // Truncate anywhere, including to empty.
      mutated = fuzz_util::Truncate(good, rng);
    } else if (mode == 1) {
      // Flip 1-8 bytes (guaranteed to change: XOR a non-zero mask).
      mutated = fuzz_util::FlipBytes(good, rng, &flipped);
    } else {
      // Extend with trailing garbage.
      mutated = fuzz_util::Extend(good, rng);
    }

    SnapshotData parsed;
    std::string parse_error;
    const bool ok =
        ParseSnapshot(reinterpret_cast<const uint8_t*>(mutated.data()),
                      mutated.size(), &parsed, &parse_error);
    if (ok) {
      // Only flips confined to the reserved pad may slip through — and
      // then the logical content must still be the original, exactly.
      ASSERT_EQ(mode, 1u) << "trial " << trial;
      ASSERT_TRUE(OnlyReservedTouched(flipped)) << "trial " << trial;
      ASSERT_EQ(parsed, original) << "trial " << trial;
    } else {
      ASSERT_FALSE(parse_error.empty()) << "trial " << trial;
    }
  }
  // (ReservedPadBytesAreBenign covers the only-benign-bytes case
  // deterministically — the random corpus rarely lands both bytes.)
}

TEST(SnapshotFuzzTest, SelfSplicesNeverCrashOrSilentlyLoad) {
  // Splice the image with itself: dropped or repeated interior runs with
  // valid bytes on both sides — a torn write or resumed copy, the shape
  // truncation and flips cannot express. A splice only reproduces valid
  // bytes when the two cut points coincide, so any surviving parse must
  // still carry exactly the original logical content.
  const std::string good = MakeValidImage();
  SnapshotData original;
  std::string error;
  ASSERT_TRUE(ParseSnapshot(reinterpret_cast<const uint8_t*>(good.data()),
                            good.size(), &original, &error))
      << error;

  for (uint32_t trial = 0; trial < 2000; ++trial) {
    Rng rng(StreamSeed(0x5EED5, trial, 2));
    const std::string mutated = fuzz_util::Splice(good, good, rng);
    SnapshotData parsed;
    std::string parse_error;
    if (ParseSnapshot(reinterpret_cast<const uint8_t*>(mutated.data()),
                      mutated.size(), &parsed, &parse_error)) {
      ASSERT_EQ(parsed, original) << "trial " << trial;
    } else {
      ASSERT_FALSE(parse_error.empty()) << "trial " << trial;
    }
  }
}

TEST(SnapshotFuzzTest, GarbageBuffersNeverParse) {
  for (uint32_t trial = 0; trial < 500; ++trial) {
    Rng rng(StreamSeed(0xBADF00D, trial, 1));
    std::string garbage(rng.UniformInt(512), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.UniformU64());
    SnapshotData parsed;
    std::string error;
    EXPECT_FALSE(ParseSnapshot(
        reinterpret_cast<const uint8_t*>(garbage.data()), garbage.size(),
        &parsed, &error));
  }
}

TEST(SnapshotFuzzTest, ReservedPadBytesAreBenign) {
  std::string image = MakeValidImage();
  SnapshotData original;
  std::string error;
  ASSERT_TRUE(ParseSnapshot(reinterpret_cast<const uint8_t*>(image.data()),
                            image.size(), &original, &error));
  image[10] = '\x7f';
  image[11] = '\x01';
  SnapshotData parsed;
  ASSERT_TRUE(ParseSnapshot(reinterpret_cast<const uint8_t*>(image.data()),
                            image.size(), &parsed, &error))
      << error;
  EXPECT_EQ(parsed, original);
}

TEST(SnapshotFuzzTest, EveryTruncationLengthIsRejected) {
  // Exhaustive over the whole file, not sampled: a snapshot prefix of
  // any length parses only at full length.
  const std::string good = MakeValidImage();
  SnapshotData parsed;
  for (size_t len = 0; len < good.size(); ++len) {
    std::string cut = good.substr(0, len);
    std::string error;
    EXPECT_FALSE(ParseSnapshot(reinterpret_cast<const uint8_t*>(cut.data()),
                               cut.size(), &parsed, &error))
        << "len=" << len;
  }
}

// ---------------------------------------------------------------------------
// Golden files: the on-disk format, pinned bit for bit.
// ---------------------------------------------------------------------------

constexpr uint32_t kGoldenUsers = 40;
constexpr uint32_t kGoldenDomain = 32;

// One closed step of fixed-seed traffic through a real collector — the
// exact production path (signature, slot packing, stats aux, sorting).
std::string MakeGoldenImage(const char* spec_text) {
  const ProtocolSpec spec = ProtocolSpec::MustParse(spec_text);
  const Traffic traffic =
      MakeTraffic(spec, 4242, kGoldenUsers, kGoldenDomain, 1);
  const std::unique_ptr<Collector> collector =
      MakeCollector(spec, kGoldenDomain, CollectorOptions{});
  collector->IngestBatch(traffic.hellos);
  collector->IngestBatch(traffic.steps[0]);
  collector->EndStep();

  char path[128];
  std::snprintf(path, sizeof(path), "golden_regen_%d.snap",
                static_cast<int>(getpid()));
  std::string error;
  EXPECT_TRUE(collector->SaveSnapshot(path, &error)) << error;
  std::FILE* f = std::fopen(path, "rb");
  EXPECT_NE(f, nullptr);
  std::string bytes;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  std::remove(path);
  return bytes;
}

class GoldenSnapshotTest : public ::testing::TestWithParam<const char*> {
 protected:
  static std::string GoldenPath(const std::string& name) {
    return std::string(LOLOHA_SOURCE_DIR) + "/tests/golden/" + name;
  }

  static std::string GoldenName(const char* spec_text) {
    return std::string(spec_text).substr(0, 3) == "olo" ? "loloha_v1.snap"
                                                        : "dbitflip_v1.snap";
  }
};

TEST_P(GoldenSnapshotTest, CheckedInBytesMatchCurrentWriterExactly) {
  const std::string expected = MakeGoldenImage(GetParam());
  const std::string path = GoldenPath(GoldenName(GetParam()));

  if (std::getenv("LOLOHA_REGEN_GOLDENS") != nullptr) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    ASSERT_EQ(std::fwrite(expected.data(), 1, expected.size(), f),
              expected.size());
    std::fclose(f);
    GTEST_SKIP() << "regenerated " << path;
  }

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << "missing golden " << path
                        << " (LOLOHA_REGEN_GOLDENS=1 to create)";
  std::string golden;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) golden.append(buf, n);
  std::fclose(f);

  // Bit-for-bit: any drift in the writer (header, section order, CRC,
  // signature text, slot packing, sort) fails here before it can strand
  // deployed snapshot files.
  ASSERT_EQ(golden.size(), expected.size());
  EXPECT_TRUE(golden == expected)
      << "snapshot writer no longer reproduces the pinned v1 format";
}

TEST_P(GoldenSnapshotTest, CheckedInFileParsesAndRestores) {
  const std::string path = GoldenPath(GoldenName(GetParam()));
  SnapshotData data;
  std::string error;
  ASSERT_TRUE(ReadSnapshotFile(path, &data, &error)) << error;
  EXPECT_EQ(data.step, 1u);
  EXPECT_EQ(data.user_ids.size(), kGoldenUsers);
  EXPECT_EQ(data.aux.size(), 40u);

  // A fresh collector of the same deployment restores from the golden
  // file — v1 files stay loadable.
  const ProtocolSpec spec = ProtocolSpec::MustParse(GetParam());
  const std::unique_ptr<Collector> collector =
      MakeCollector(spec, kGoldenDomain, CollectorOptions{});
  ASSERT_TRUE(collector->RestoreSnapshot(path, &error)) << error;
  EXPECT_EQ(collector->registered_users(), kGoldenUsers);
  EXPECT_EQ(collector->current_step(), 1u);
}

INSTANTIATE_TEST_SUITE_P(BothProtocols, GoldenSnapshotTest,
                         ::testing::Values("ololoha:eps_perm=2,eps_first=1",
                                           "bbitflip:eps_perm=3,buckets=8,d=4"),
                         [](const auto& param_info) {
                           return std::string(param_info.param).substr(0, 3) ==
                                          "olo"
                                      ? "loloha"
                                      : "dbitflip";
                         });

}  // namespace
}  // namespace loloha

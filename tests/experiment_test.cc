// ExperimentPlan: parse/ToString round-trip property, malformed-plan
// rejection with line numbers, sink behavior, and the RunExperimentPlan
// bit-identity gate against a direct RunMonteCarloGrid call.

#include "sim/experiment.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "sim/metrics.h"
#include "sim/monte_carlo.h"
#include "sim/runner.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace loloha {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------------------
// Round-trip property.
// ---------------------------------------------------------------------------

TEST(ExperimentPlanRoundTrip, CheckedInStylePlan) {
  const char* text =
      "# Figure 3a\n"
      "[experiment]\n"
      "name = fig3_syn\n"
      "kind = mse\n"
      "datasets = syn\n"
      "protocols = bbitflip; l-osue; ololoha; l-sue; biloloha; 1bitflip; "
      "l-grr\n"
      "\n"
      "[grid]\n"
      "eps_perm = 0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5\n"
      "alpha = 0.4, 0.5, 0.6\n"
      "\n"
      "[run]\n"
      "runs = 2\n"
      "threads = 1\n"
      "scale = 5\n"
      "seed = 20230328\n"
      "\n"
      "[output]\n"
      "csv = results/fig3_mse_syn.csv\n";
  ExperimentPlan plan;
  std::string error;
  ASSERT_TRUE(ParseExperimentPlan(text, &plan, &error)) << error;
  EXPECT_EQ(plan.name, "fig3_syn");
  EXPECT_EQ(plan.kind, ExperimentKind::kMse);
  EXPECT_EQ(plan.datasets, std::vector<std::string>{"syn"});
  EXPECT_EQ(plan.protocols.size(), 7u);
  EXPECT_EQ(plan.eps_perm.size(), 10u);
  EXPECT_EQ(plan.alpha, (std::vector<double>{0.4, 0.5, 0.6}));
  EXPECT_EQ(plan.csv, "results/fig3_mse_syn.csv");

  ExperimentPlan again;
  ASSERT_TRUE(ParseExperimentPlan(plan.ToString(), &again, &error)) << error;
  EXPECT_EQ(again, plan);
}

TEST(ExperimentPlanRoundTrip, PropertyOverSampledPlans) {
  // ToString must reproduce every field exactly (doubles included: the
  // shortest-round-trip formatter guarantees bit equality after reparse).
  const char* spec_pool[] = {
      "biloloha", "ololoha:g=5,eps_perm=2,eps_first=0.5", "l-grr",
      "l-osue:eps_perm=3,eps_first=1", "l-sue", "naive-olh:eps_perm=1.5",
      "bbitflip:eps_perm=2,bucket_divisor=4", "1bitflip:eps_perm=1",
      "bbitflip:eps_perm=2,buckets=16,d=5", "l-soue", "l-oue"};
  const ExperimentKind kinds[] = {
      ExperimentKind::kMse, ExperimentKind::kVariance,
      ExperimentKind::kOptimalG, ExperimentKind::kPrivacyLoss,
      ExperimentKind::kComparison, ExperimentKind::kDetection};
  const char* dataset_pool[] = {"syn", "adult", "db_mt", "db_de"};

  Rng rng(0x91a2);
  for (int sample = 0; sample < 200; ++sample) {
    ExperimentPlan plan;
    plan.name = "sampled_" + std::to_string(sample);
    plan.kind = kinds[rng.UniformInt(6)];
    const size_t num_datasets = 1 + rng.UniformInt(4);
    for (size_t i = 0; i < num_datasets; ++i) {
      plan.datasets.push_back(dataset_pool[i]);
    }
    if (rng.Bernoulli(0.5)) {
      for (size_t i = 0; i < num_datasets; ++i) {
        plan.bucket_divisors.push_back(
            1 + static_cast<uint32_t>(rng.UniformInt(8)));
      }
    }
    const size_t num_protocols = 1 + rng.UniformInt(4);
    for (size_t i = 0; i < num_protocols; ++i) {
      plan.protocols.push_back(
          ProtocolSpec::MustParse(spec_pool[rng.UniformInt(11)]));
    }
    const size_t num_eps = 1 + rng.UniformInt(6);
    for (size_t i = 0; i < num_eps; ++i) {
      plan.eps_perm.push_back(0.1 + 5.0 * rng.UniformDouble());
    }
    const size_t num_alpha = 1 + rng.UniformInt(4);
    for (size_t i = 0; i < num_alpha; ++i) {
      plan.alpha.push_back(0.05 + 0.9 * rng.UniformDouble());
    }
    plan.runs = 1 + static_cast<uint32_t>(rng.UniformInt(20));
    plan.threads = static_cast<uint32_t>(rng.UniformInt(9));
    plan.scale = 1 + static_cast<uint32_t>(rng.UniformInt(100));
    plan.quick = rng.Bernoulli(0.5);
    plan.seed = rng.UniformU64();
    plan.n = 100.0 + 1e5 * rng.UniformDouble();
    plan.k = 2 + static_cast<uint32_t>(rng.UniformInt(1000));
    plan.b = rng.Bernoulli(0.5)
                 ? 0
                 : 2 + static_cast<uint32_t>(rng.UniformInt(plan.k - 1));
    plan.eps = 0.1 + 4.0 * rng.UniformDouble();
    plan.eps1 = rng.Bernoulli(0.5) ? 0.0 : 0.5 * plan.eps;
    if (rng.Bernoulli(0.7)) plan.csv = "results/out.csv";
    if (rng.Bernoulli(0.3)) plan.json = "results/out.json";

    std::string error;
    ASSERT_TRUE(plan.Validate(&error)) << error;
    ExperimentPlan reparsed;
    ASSERT_TRUE(ParseExperimentPlan(plan.ToString(), &reparsed, &error))
        << error << "\n"
        << plan.ToString();
    EXPECT_EQ(reparsed, plan) << plan.ToString();
  }
}

// ---------------------------------------------------------------------------
// Malformed plans: every rejection names its line.
// ---------------------------------------------------------------------------

struct MalformedCase {
  const char* label;
  const char* text;
  int line;              // asserted to appear as "line N:"
  const char* fragment;  // asserted substring of the message
};

class MalformedPlan : public testing::TestWithParam<MalformedCase> {};

TEST_P(MalformedPlan, RejectedWithLineNumber) {
  const MalformedCase& c = GetParam();
  ExperimentPlan plan;
  std::string error;
  ASSERT_FALSE(ParseExperimentPlan(c.text, &plan, &error)) << c.text;
  EXPECT_NE(error.find("line " + std::to_string(c.line) + ":"),
            std::string::npos)
      << "error was: " << error;
  EXPECT_NE(error.find(c.fragment), std::string::npos)
      << "error was: " << error;
}

constexpr MalformedCase kMalformedCases[] = {
    {"UnterminatedSection", "[experiment\nname = x", 1, "unterminated"},
    {"UnknownSection", "[bogus]\n", 1, "unknown section"},
    {"KeyOutsideSection", "name = x\n", 1, "outside any [section]"},
    {"MissingEquals", "[experiment]\nname\n", 2, "expected 'key = value'"},
    {"EmptyKey", "[experiment]\n= 5\n", 2, "empty key"},
    {"EmptyValue", "[experiment]\nname =\n", 2, "empty value"},
    {"UnknownExperimentKey", "[experiment]\nfoo = 1\n", 2, "unknown key"},
    {"DuplicateKey", "[experiment]\nname = a\nname = b\n", 3, "duplicate"},
    {"UnknownKind", "[experiment]\nkind = nope\n", 2,
     "unknown experiment kind"},
    {"UnknownDataset", "[experiment]\ndatasets = syn, mars\n", 2,
     "unknown dataset"},
    {"EmptyListElement", "[experiment]\ndatasets = syn,,adult\n", 2,
     "malformed dataset list"},
    {"BadProtocolSpec", "[experiment]\nprotocols = biloloha; blah\n", 2,
     "bad protocol spec"},
    {"ZeroBucketDivisor", "[experiment]\nbucket_divisors = 1, 0\n", 2,
     "positive integer"},
    {"NonNumericDivisor", "[experiment]\nbucket_divisors = x\n", 2,
     "positive integer"},
    {"NegativeN", "[experiment]\nn = -3\n", 2, "n must be positive"},
    {"TinyK", "[experiment]\nk = 1\n", 2, "k must be >= 2"},
    {"ZeroEps", "[experiment]\neps = 0\n", 2, "eps must be positive"},
    {"BadEpsValue", "[experiment]\neps = zero\n", 2, "malformed number"},
    {"BadGridNumber", "[grid]\neps_perm = 1, zero\n", 2,
     "malformed number"},
    {"NegativeGridEps", "[grid]\neps_perm = 1, -1\n", 2,
     "must be positive"},
    {"AlphaOutOfRange", "[grid]\nalpha = 0.5, 1.5\n", 2, "in (0, 1)"},
    {"AlphaZero", "[grid]\nalpha = 0\n", 2, "in (0, 1)"},
    {"UnknownGridKey", "[grid]\nfoo = 1\n", 2, "unknown key"},
    {"ZeroRuns", "[run]\nruns = 0\n", 2, "runs must be >= 1"},
    {"TooManyThreads", "[run]\nthreads = 9999\n", 2, "[0, 4096]"},
    {"ZeroScale", "[run]\nscale = 0\n", 2, "scale must be >= 1"},
    {"BadSeed", "[run]\nseed = abc\n", 2, "malformed integer"},
    {"BadQuick", "[run]\nquick = maybe\n", 2, "'true' or 'false'"},
    {"UnknownRunKey", "[run]\nwarmup = 3\n", 2, "unknown key"},
    {"UnknownOutputKey", "[output]\nxml = out.xml\n", 2, "unknown key"},
    {"LateLineNumber",
     "[experiment]\nname = x\nkind = mse\n\n# comment\n[grid]\nalpha = 2\n",
     7, "in (0, 1)"},
};

INSTANTIATE_TEST_SUITE_P(AllCases, MalformedPlan,
                         testing::ValuesIn(kMalformedCases),
                         // param_info: the macro's own parameter is
                         // `info` (-Wshadow).
                         [](const auto& param_info) {
                           return std::string(param_info.param.label);
                         });

TEST(ExperimentPlanValidate, CrossFieldErrors) {
  ExperimentPlan plan;
  plan.name = "x";
  plan.kind = ExperimentKind::kMse;
  std::string error;
  EXPECT_FALSE(plan.Validate(&error));  // no datasets/protocols/grids
  EXPECT_NE(error.find("dataset"), std::string::npos);

  plan.datasets = {"syn"};
  plan.bucket_divisors = {1, 4};  // arity mismatch
  EXPECT_FALSE(plan.Validate(&error));
  EXPECT_NE(error.find("bucket_divisors"), std::string::npos);

  plan.bucket_divisors.clear();
  plan.protocols = {ProtocolSpec::MustParse("biloloha")};
  plan.eps_perm = {1.0};
  plan.alpha = {0.5};
  EXPECT_TRUE(plan.Validate(&error)) << error;

  plan.name.clear();
  EXPECT_FALSE(plan.Validate(&error));
  EXPECT_NE(error.find("name"), std::string::npos);
}

TEST(ExperimentPlanParse, MidLineHashIsPartOfTheValue) {
  // Comments are whole lines only; '#' inside a value (an output path,
  // say) must survive parsing and the ToString round-trip.
  const char* text =
      "# leading comment\n"
      "[experiment]\n"
      "name = run#7\n"
      "kind = optimal_g\n"
      "[grid]\n"
      "eps_perm = 1\n"
      "alpha = 0.5\n"
      "[output]\n"
      "csv = results/out#1.csv\n";
  ExperimentPlan plan;
  std::string error;
  ASSERT_TRUE(ParseExperimentPlan(text, &plan, &error)) << error;
  EXPECT_EQ(plan.name, "run#7");
  EXPECT_EQ(plan.csv, "results/out#1.csv");
  ExperimentPlan again;
  ASSERT_TRUE(ParseExperimentPlan(plan.ToString(), &again, &error)) << error;
  EXPECT_EQ(again, plan);
}

TEST(RunExperimentPlanTest, OversizedBucketDivisorIsAPlanError) {
  ExperimentPlan plan;
  plan.name = "bad_divisor";
  plan.kind = ExperimentKind::kPrivacyLoss;
  plan.datasets = {"syn"};
  plan.bucket_divisors = {1000};  // k = 360 -> b = 0
  plan.eps_perm = {1.0};
  plan.alpha = {0.5};
  plan.scale = 100;
  plan.quick = true;
  NullSink sink;
  ResultSink* sinks[] = {&sink};
  std::string error;
  EXPECT_FALSE(RunExperimentPlan(plan, nullptr, sinks, &error, nullptr));
  EXPECT_NE(error.find("too large"), std::string::npos) << error;
}

TEST(ExperimentPlanLoad, MissingFileNamesPath) {
  ExperimentPlan plan;
  std::string error;
  EXPECT_FALSE(LoadExperimentPlan("/nonexistent/x.plan", &plan, &error));
  EXPECT_NE(error.find("/nonexistent/x.plan"), std::string::npos);
}

// ---------------------------------------------------------------------------
// RunExperimentPlan: CSV bit-identity against a direct RunMonteCarloGrid
// call, at 1 and 4 threads.
// ---------------------------------------------------------------------------

TEST(RunExperimentPlanTest, MseCsvBitIdenticalToDirectMonteCarloGrid) {
  ExperimentPlan plan;
  plan.name = "smoke_mse";
  plan.kind = ExperimentKind::kMse;
  plan.datasets = {"syn"};
  plan.protocols = {ProtocolSpec::MustParse("biloloha"),
                    ProtocolSpec::MustParse("l-grr")};
  plan.eps_perm = {1.0, 2.0};
  plan.alpha = {0.5};
  plan.runs = 2;
  plan.scale = 100;
  plan.quick = true;  // tau capped at 20, one effective run
  plan.seed = 4242;

  // The ground truth: the same grid lowered by hand onto
  // RunMonteCarloGrid's span-of-specs overload, serially (pool = null).
  const Dataset data =
      BuildPlanDataset("syn", /*scale=*/100, /*quick=*/true, plan.seed);
  std::vector<ProtocolSpec> cells;
  for (const double alpha : plan.alpha) {
    for (const double eps : plan.eps_perm) {
      for (const ProtocolSpec& base : plan.protocols) {
        ProtocolSpec spec = base;
        spec.eps_perm = eps;
        spec.eps_first = spec.IsTwoRound() ? alpha * eps : 0.0;
        cells.push_back(spec);
      }
    }
  }
  MonteCarloOptions mc;
  mc.runs = 1;  // quick mode
  mc.base_seed = plan.seed;
  const std::vector<std::vector<double>> per_run = RunMonteCarloGrid(
      std::span<const ProtocolSpec>(cells), RunnerOptions{}, data, mc,
      [&](uint32_t, const RunResult& result) {
        return MseAvg(data, result.estimates);
      });
  TextTable expected({"alpha", "eps_inf", "BiLOLOHA", "L-GRR"});
  size_t cell = 0;
  for (const double alpha : plan.alpha) {
    for (const double eps : plan.eps_perm) {
      std::vector<std::string> row = {FormatDouble(alpha, 2),
                                      FormatDouble(eps, 3)};
      for (size_t p = 0; p < plan.protocols.size(); ++p) {
        row.push_back(FormatDouble(per_run[cell][0], 4));
        ++cell;
      }
      expected.AddRow(std::move(row));
    }
  }
  const std::string expected_csv = expected.ToCsv();

  for (const uint32_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    plan.threads = threads;
    const std::string path =
        TempPath("experiment_smoke_t" + std::to_string(threads) + ".csv");
    CsvSink sink(path);
    ResultSink* sinks[] = {&sink};
    std::string error;
    ASSERT_TRUE(
        RunExperimentPlan(plan, &pool, sinks, &error, /*log=*/nullptr))
        << error;
    EXPECT_EQ(ReadFileBytes(path), expected_csv) << "threads=" << threads;

    // Provenance sidecar: plan name, seed, git stamp.
    const std::string meta = ReadFileBytes(path + ".meta.json");
    EXPECT_NE(meta.find("\"plan\": \"smoke_mse\""), std::string::npos);
    EXPECT_NE(meta.find("\"seed\": 4242"), std::string::npos);
    EXPECT_NE(meta.find("\"git\": \""), std::string::npos);
  }
}

TEST(RunExperimentPlanTest, JsonSinkEmbedsProvenanceAndRows) {
  ExperimentPlan plan;
  plan.name = "smoke_comparison";
  plan.kind = ExperimentKind::kComparison;
  plan.k = 16;
  plan.seed = 7;
  const std::string path = TempPath("experiment_smoke_comparison.json");
  JsonSink sink(path);
  ResultSink* sinks[] = {&sink};
  std::string error;
  ASSERT_TRUE(RunExperimentPlan(plan, nullptr, sinks, &error, nullptr))
      << error;
  const std::string json = ReadFileBytes(path);
  EXPECT_NE(json.find("\"plan\": \"smoke_comparison\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"comparison\""), std::string::npos);
  EXPECT_NE(json.find("\"header\": [\"protocol\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\": [[\"BiLOLOHA\""), std::string::npos);
}

TEST(RunExperimentPlanTest, NullSinkAndInvalidPlan) {
  ExperimentPlan plan;  // no name -> invalid
  NullSink sink;
  ResultSink* sinks[] = {&sink};
  std::string error;
  EXPECT_FALSE(RunExperimentPlan(plan, nullptr, sinks, &error, nullptr));
  EXPECT_NE(error.find("name"), std::string::npos);

  plan.name = "null_sink";
  plan.kind = ExperimentKind::kOptimalG;
  plan.eps_perm = {0.5, 1.0};
  plan.alpha = {0.3};
  EXPECT_TRUE(RunExperimentPlan(plan, nullptr, sinks, &error, nullptr))
      << error;
}

}  // namespace
}  // namespace loloha

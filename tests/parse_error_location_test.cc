// Every refusal site in the text parsers must point at its input line.
//
// The experiment-plan grammar (sim/experiment.h) reports "line N: ..."
// and the slice-partial readers (sim/slice.h) report "<name>:N: ...";
// a diagnostic without a location forces whoever edited a 40-line plan
// or a multi-thousand-line partial to bisect by hand. These tables
// enumerate the refusal sites one bad input each — adding an unlocated
// error path to either parser shows up here as a prefix mismatch, not
// as a silent regression. (The b and eps1 range checks used to be
// exactly that: rejected only by whole-plan Validate(), with no line.)
//
// Out of scope: ExperimentPlan::Validate() cross-line checks (they
// relate *several* lines, so no single location exists) and file-open
// failures in LoadSlicePartial (located by path, not line).

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/slice.h"

namespace loloha {
namespace {

// ---------------------------------------------------------------------------
// ParseExperimentPlan: "line N: <message>"
// ---------------------------------------------------------------------------

struct PlanCase {
  const char* name;       // test label
  const char* text;       // plan input
  size_t line;            // expected 1-based line of the diagnostic
  const char* fragment;   // expected substring of the message
};

const PlanCase kPlanCases[] = {
    {"unterminated_section", "[experiment\n", 1, "unterminated section"},
    {"unknown_section", "[bogus]\n", 1, "unknown section '[bogus]'"},
    {"missing_equals", "[experiment]\nname\n", 2, "expected 'key = value'"},
    {"empty_key", "[experiment]\n= x\n", 2, "empty key before '='"},
    {"empty_value", "[experiment]\nname =\n", 2, "empty value for key 'name'"},
    {"key_outside_section", "name = x\n", 1, "outside any [section]"},
    {"duplicate_key", "[experiment]\nname = a\nname = b\n", 3,
     "duplicate key 'name' in [experiment]"},
    {"unknown_kind", "[experiment]\nkind = bogus\n", 2,
     "unknown experiment kind 'bogus'"},
    {"unknown_dataset", "[experiment]\ndatasets = nope\n", 2,
     "unknown dataset 'nope'"},
    {"bad_bucket_divisor", "[experiment]\nbucket_divisors = 2, x\n", 2,
     "bucket divisor 'x'"},
    {"bad_protocol", "[experiment]\nprotocols = nosuch\n", 2,
     "bad protocol spec 'nosuch'"},
    {"n_malformed", "[experiment]\nn = abc\n", 2, "malformed number for 'n'"},
    {"n_not_positive", "[experiment]\nn = 0\n", 2, "n must be positive"},
    {"k_malformed", "[experiment]\nk = 4.5\n", 2,
     "malformed integer for 'k'"},
    {"k_too_small", "[experiment]\nk = 1\n", 2, "k must be >= 2"},
    {"b_malformed", "[experiment]\nb = -3\n", 2, "malformed integer for 'b'"},
    {"b_is_one", "[experiment]\nb = 1\n", 2, "b must be 0 (= k) or >= 2"},
    {"eps_not_positive", "[experiment]\neps = 0\n", 2, "eps must be positive"},
    {"eps1_malformed", "[experiment]\neps1 = abc\n", 2,
     "malformed number for 'eps1'"},
    {"eps1_negative", "[experiment]\neps1 = -1\n", 2,
     "eps1 must be a finite number >= 0"},
    {"eps1_not_finite", "[experiment]\neps1 = inf\n", 2,
     "eps1 must be a finite number >= 0"},
    {"unknown_experiment_key", "[experiment]\nbogus = 1\n", 2,
     "unknown key 'bogus' in [experiment]"},
    {"unknown_grid_key", "[grid]\nbogus = 1\n", 2,
     "unknown key 'bogus' in [grid]"},
    {"grid_malformed_number", "[grid]\neps_perm = 1, x\n", 2,
     "malformed number 'x' in 'eps_perm'"},
    {"eps_perm_not_positive", "[grid]\neps_perm = 0\n", 2,
     "eps_perm values must be positive"},
    {"alpha_out_of_range", "[grid]\nalpha = 1.5\n", 2,
     "alpha values must be in (0, 1)"},
    {"runs_zero", "[run]\nruns = 0\n", 2, "runs must be >= 1"},
    {"threads_too_big", "[run]\nthreads = 5000\n", 2,
     "threads must be in [0, 4096]"},
    {"scale_zero", "[run]\nscale = 0\n", 2, "scale must be >= 1"},
    {"seed_malformed", "[run]\nseed = x\n", 2, "malformed integer for 'seed'"},
    {"quick_bad", "[run]\nquick = maybe\n", 2,
     "quick must be 'true' or 'false'"},
    {"slice_bad", "[run]\nslice = 9\n", 2, "malformed slice '9'"},
    {"slice_index_out_of_range", "[run]\nslice = 4/4\n", 2,
     "slice index 4 out of range"},
    {"unknown_run_key", "[run]\nbogus = 1\n", 2,
     "unknown key 'bogus' in [run]"},
    {"unknown_output_key", "[output]\nbogus = x\n", 2,
     "unknown key 'bogus' in [output]"},
};

class PlanErrorLocationTest : public ::testing::TestWithParam<PlanCase> {};

TEST_P(PlanErrorLocationTest, RefusalCarriesLineNumber) {
  const PlanCase& c = GetParam();
  ExperimentPlan plan;
  std::string error;
  ASSERT_FALSE(ParseExperimentPlan(c.text, &plan, &error)) << c.text;
  const std::string prefix = "line " + std::to_string(c.line) + ": ";
  EXPECT_EQ(error.substr(0, prefix.size()), prefix) << "error: " << error;
  EXPECT_NE(error.find(c.fragment), std::string::npos)
      << "error: " << error;
}

INSTANTIATE_TEST_SUITE_P(AllRefusalSites, PlanErrorLocationTest,
                         ::testing::ValuesIn(kPlanCases),
                         [](const auto& param_info) {
                           return std::string(param_info.param.name);
                         });

// A comment or blank line still counts toward the reported position, so
// the number matches what an editor shows.
TEST(PlanErrorLocationTest, CommentsAndBlanksKeepEditorLineNumbers) {
  ExperimentPlan plan;
  std::string error;
  ASSERT_FALSE(ParseExperimentPlan(
      "# header comment\n\n[experiment]\n\n# another\nk = 1\n", &plan,
      &error));
  EXPECT_EQ(error.substr(0, 8), std::string("line 6: ")) << error;
}

// ---------------------------------------------------------------------------
// Slice partials: "<name>:N: <message>"
// ---------------------------------------------------------------------------

constexpr char kCsvName[] = "p.csv";
constexpr char kSidecarName[] = "p.csv.meta.json";
constexpr char kJsonName[] = "p.json";

// A well-formed partial: slice 1/3 of a 6-unit grid owns units 1 and 4.
SlicePartial MakePartial(std::vector<uint64_t> unit_indices) {
  SlicePartial partial;
  partial.plan_name = "loc";
  partial.kind = "variance";
  partial.seed = 7;
  partial.git_describe = "test";
  partial.slice = {1, 3};
  partial.units_total = 6;
  partial.plan_text = "[experiment]\n";
  for (const uint64_t index : unit_indices) {
    SliceUnit unit;
    unit.index = index;
    unit.cell = 1.5 + static_cast<double>(index);
    partial.units.push_back(unit);
  }
  return partial;
}

ArtifactMeta MetaFor(const SlicePartial& partial) {
  ArtifactMeta meta;
  meta.plan_name = partial.plan_name;
  meta.kind = partial.kind;
  meta.table = partial.plan_name;
  meta.seed = partial.seed;
  meta.git_describe = partial.git_describe;
  meta.slice = partial.slice;
  meta.units = partial.units.size();
  meta.units_total = partial.units_total;
  meta.plan_text = partial.plan_text;
  return meta;
}

std::string Sidecar(const SlicePartial& partial) {
  return ProvenanceJsonBody(MetaFor(partial)) + "}\n";
}

std::string JsonPartialText(const SlicePartial& partial) {
  std::string out = ProvenanceJsonBody(MetaFor(partial));
  AppendSlicePartialDataJson(partial, &out);
  out += "}\n";
  return out;
}

void ExpectLocatedCsvError(const std::string& csv, const std::string& sidecar,
                           const std::string& file, size_t line,
                           const std::string& fragment) {
  SlicePartial parsed;
  std::string error;
  ASSERT_FALSE(ParseSlicePartialCsv(csv, sidecar, kCsvName, kSidecarName,
                                    &parsed, &error))
      << csv;
  const std::string prefix = file + ":" + std::to_string(line) + ": ";
  EXPECT_EQ(error.substr(0, prefix.size()), prefix) << "error: " << error;
  EXPECT_NE(error.find(fragment), std::string::npos) << "error: " << error;
}

void ExpectLocatedJsonError(const std::string& json, size_t line,
                            const std::string& fragment) {
  SlicePartial parsed;
  std::string error;
  ASSERT_FALSE(ParseSlicePartialJson(json, kJsonName, &parsed, &error))
      << json;
  const std::string prefix =
      std::string(kJsonName) + ":" + std::to_string(line) + ": ";
  EXPECT_EQ(error.substr(0, prefix.size()), prefix) << "error: " << error;
  EXPECT_NE(error.find(fragment), std::string::npos) << "error: " << error;
}

TEST(SliceCsvErrorLocationTest, BaselinePartialRoundTrips) {
  const SlicePartial partial = MakePartial({1, 4});
  SlicePartial reread;
  std::string error;
  ASSERT_TRUE(ParseSlicePartialCsv(SlicePartialCsv(partial), Sidecar(partial),
                                   kCsvName, kSidecarName, &reread, &error))
      << error;
  EXPECT_EQ(reread, partial);
}

TEST(SliceCsvErrorLocationTest, SyntaxRefusalsCarryLineNumbers) {
  const SlicePartial good = MakePartial({1, 4});
  const std::string sidecar = Sidecar(good);
  // Line layout of a serialized partial: header is line 1, one unit per
  // line after it, 'end' trailer last.
  const std::string header =
      "loloha_slice,v1,loc,variance,7,1,3,6\n";

  ExpectLocatedCsvError("", sidecar, kCsvName, 1,
                        "empty partial: missing header line");
  ExpectLocatedCsvError("bogus,header\n", sidecar, kCsvName, 1,
                        "not a loloha_slice v1 partial header");
  ExpectLocatedCsvError("loloha_slice,v1,loc,variance,x,1,3,6\n", sidecar,
                        kCsvName, 1, "malformed numbers in partial header");
  ExpectLocatedCsvError("loloha_slice,v1,loc,variance,8,1,3,6\n", sidecar,
                        kCsvName, 1, "partial header disagrees with sidecar");
  ExpectLocatedCsvError(header + "cell,1,0x0000000000000000\n", sidecar,
                        kCsvName, 2, "missing 'end' trailer");
  ExpectLocatedCsvError(header + "end,0", sidecar, kCsvName, 2,
                        "last line has no newline");
  ExpectLocatedCsvError(header + "\"oops,1\n", sidecar, kCsvName, 2,
                        "malformed CSV line");
  ExpectLocatedCsvError(header + "end,x\n", sidecar, kCsvName, 2,
                        "malformed 'end' trailer");
  ExpectLocatedCsvError(header + "end,5\n", sidecar, kCsvName, 2,
                        "'end' trailer says 5");
  ExpectLocatedCsvError(header + "frob,1\n", sidecar, kCsvName, 2,
                        "unknown record 'frob'");
  ExpectLocatedCsvError(header + "cell,1,zz\n", sidecar, kCsvName, 2,
                        "malformed cell unit");
  ExpectLocatedCsvError(header + "row,1\n", sidecar, kCsvName, 2,
                        "malformed row unit");
  ExpectLocatedCsvError(header + "end,0\ncell,1,0x0000000000000000\n", sidecar,
                        kCsvName, 3, "trailing data after 'end' trailer");
}

TEST(SliceCsvErrorLocationTest, UnitValidationPointsAtTheOffendingRecord) {
  // ValidateUnits refusals name the line the bad unit was parsed from,
  // not a generic position: header is line 1, so units[i] sits on line
  // 2 + i and the 'end' trailer on the line after the last unit.
  const std::string sidecar = Sidecar(MakePartial({1, 4}));

  const SlicePartial out_of_range = MakePartial({1, 10});
  ExpectLocatedCsvError(SlicePartialCsv(out_of_range), sidecar, kCsvName, 3,
                        "unit 10 out of range (units_total = 6)");

  const SlicePartial not_owned = MakePartial({1, 5});
  ExpectLocatedCsvError(SlicePartialCsv(not_owned), sidecar, kCsvName, 3,
                        "unit 5 is not owned by slice 1-of-3");

  const SlicePartial out_of_order = MakePartial({4, 1});
  ExpectLocatedCsvError(SlicePartialCsv(out_of_order), sidecar, kCsvName, 3,
                        "units out of order at 1");

  // The cardinality check relates the whole set, so it points at the
  // 'end' trailer (line 3 here: header, one unit, end).
  SlicePartial short_partial = MakePartial({1});
  std::string short_sidecar = Sidecar(short_partial);
  ExpectLocatedCsvError(SlicePartialCsv(short_partial), short_sidecar,
                        kCsvName, 3,
                        "carries 1 unit(s) but owns 2");
}

TEST(SliceCsvErrorLocationTest, SidecarRefusalsNameTheSidecar) {
  const std::string csv = SlicePartialCsv(MakePartial({1, 4}));
  ExpectLocatedCsvError(csv, "[]\n", kSidecarName, 1,
                        "sidecar is not a JSON object");
  // Provenance field checks locate to the sidecar's first line (the
  // document is one line anyway).
  ExpectLocatedCsvError(
      csv,
      "{\"plan\": \"loc\", \"kind\": \"variance\", \"seed\": 7, "
      "\"slice_index\": 1, \"slice_count\": 3, \"units_total\": 6, "
      "\"plan_text\": \"x\"}\n",
      kSidecarName, 1, "missing or non-string \"git\"");
  ExpectLocatedCsvError(
      csv,
      "{\"plan\": \"loc\", \"kind\": \"variance\", \"seed\": 7, "
      "\"git\": \"test\", \"slice_index\": 3, \"slice_count\": 3, "
      "\"units_total\": 6, \"plan_text\": \"x\"}\n",
      kSidecarName, 1, "invalid slice stamp 3/3");
}

TEST(SliceJsonErrorLocationTest, RefusalsCarryLineNumbers) {
  const SlicePartial good = MakePartial({1, 4});
  const std::string provenance = ProvenanceJsonBody(MetaFor(good));

  ExpectLocatedJsonError("[]\n", 1, "partial is not a JSON object");
  ExpectLocatedJsonError(provenance + "}\n", 1,
                         "missing \"units_data\" array");
  ExpectLocatedJsonError(provenance + ", \"units_data\": [[\"cell\"]]}\n", 1,
                         "malformed units_data entry");
  ExpectLocatedJsonError(
      provenance + ", \"units_data\": [[\"cell\", 1, \"0\"]]}\n", 1,
      "non-string field in units_data entry");
  ExpectLocatedJsonError(
      provenance + ", \"units_data\": [[\"cell\", \"x\", \"0\"]]}\n", 1,
      "malformed unit index in units_data");
  ExpectLocatedJsonError(
      provenance + ", \"units_data\": [[\"cell\", \"1\", \"zz\"]]}\n", 1,
      "malformed cell unit in units_data");
  ExpectLocatedJsonError(
      provenance + ", \"units_data\": [[\"frob\", \"1\"]]}\n", 1,
      "unknown units_data record 'frob'");
}

TEST(SliceJsonErrorLocationTest, EmptyPlanTextIsLocated) {
  // Hand-written document: only plan_text is empty, all else valid.
  ExpectLocatedJsonError(
      "{\"plan\": \"loc\", \"kind\": \"variance\", \"seed\": 7, "
      "\"git\": \"test\", \"slice_index\": 1, \"slice_count\": 3, "
      "\"units_total\": 6, \"plan_text\": \"\", \"units_data\": []}\n",
      1, "empty \"plan_text\" in slice provenance");
}

TEST(SliceJsonErrorLocationTest, UnitValidationFallsBackToLineOne) {
  // The JSON document is a single line, so ValidateUnits reports line 1
  // (consistent with every other JSON diagnostic).
  ExpectLocatedJsonError(JsonPartialText(MakePartial({1, 10})), 1,
                         "unit 10 out of range");
  ExpectLocatedJsonError(JsonPartialText(MakePartial({1, 5})), 1,
                         "unit 5 is not owned by slice 1-of-3");
  ExpectLocatedJsonError(JsonPartialText(MakePartial({4, 1})), 1,
                         "units out of order at 1");
  ExpectLocatedJsonError(JsonPartialText(MakePartial({1})), 1,
                         "carries 1 unit(s) but owns 2");
}

TEST(LoadSlicePartialTest, FileErrorsNameThePath) {
  // File-open refusals carry the path (no line exists yet); everything
  // after the open delegates to the located parsers above.
  SlicePartial parsed;
  std::string error;
  ASSERT_FALSE(LoadSlicePartial("no_such_partial.csv", &parsed, &error));
  EXPECT_NE(error.find("no_such_partial.csv: cannot open slice partial"),
            std::string::npos)
      << error;

  const std::string csv_path =
      ::testing::TempDir() + "/orphan_partial.csv";
  {
    std::FILE* f = std::fopen(csv_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const std::string csv = SlicePartialCsv(MakePartial({1, 4}));
    ASSERT_EQ(std::fwrite(csv.data(), 1, csv.size(), f), csv.size());
    std::fclose(f);
  }
  ASSERT_FALSE(LoadSlicePartial(csv_path, &parsed, &error));
  EXPECT_NE(error.find("cannot open provenance sidecar"), std::string::npos)
      << error;
  std::remove(csv_path.c_str());
}

}  // namespace
}  // namespace loloha

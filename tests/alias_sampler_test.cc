#include "util/alias_sampler.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace loloha {
namespace {

TEST(AliasSamplerTest, NormalizesWeights) {
  const AliasSampler sampler({1.0, 3.0});
  EXPECT_DOUBLE_EQ(sampler.probability(0), 0.25);
  EXPECT_DOUBLE_EQ(sampler.probability(1), 0.75);
}

TEST(AliasSamplerTest, SingleElement) {
  const AliasSampler sampler({5.0});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(rng), 0u);
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  const AliasSampler sampler({1.0, 0.0, 1.0});
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) EXPECT_NE(sampler.Sample(rng), 1u);
}

TEST(AliasSamplerTest, EmpiricalFrequenciesMatch) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  const AliasSampler sampler(weights);
  Rng rng(3);
  constexpr int kDraws = 200000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.Sample(rng)];
  for (size_t v = 0; v < weights.size(); ++v) {
    const double p = weights[v] / 10.0;
    const double sigma = std::sqrt(p * (1 - p) / kDraws);
    EXPECT_NEAR(counts[v] / static_cast<double>(kDraws), p, 5 * sigma);
  }
}

TEST(AliasSamplerTest, HighlySkewedDistribution) {
  std::vector<double> weights(100, 1e-6);
  weights[42] = 1.0;
  const AliasSampler sampler(weights);
  Rng rng(4);
  int hits = 0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) hits += (sampler.Sample(rng) == 42);
  EXPECT_GT(hits, 9900);
}

TEST(AliasSamplerTest, UniformWeights) {
  const AliasSampler sampler(std::vector<double>(8, 1.0));
  Rng rng(5);
  constexpr int kDraws = 80000;
  std::vector<int> counts(8, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.Sample(rng)];
  for (const int c : counts) {
    EXPECT_NEAR(c / static_cast<double>(kDraws), 0.125, 0.01);
  }
}

}  // namespace
}  // namespace loloha

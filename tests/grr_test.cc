#include "oracle/grr.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "oracle/estimator.h"
#include "util/rng.h"

namespace loloha {
namespace {

TEST(GrrClientTest, ReportsWithinDomain) {
  const GrrClient client(10, 1.0);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(client.Perturb(3, rng), 10u);
  }
}

TEST(GrrClientTest, KeepProbabilityMatchesP) {
  const GrrClient client(16, 2.0);
  Rng rng(2);
  constexpr int kTrials = 200000;
  int kept = 0;
  for (int i = 0; i < kTrials; ++i) kept += (client.Perturb(5, rng) == 5);
  const double p = client.params().p;
  const double sigma = std::sqrt(p * (1 - p) / kTrials);
  EXPECT_NEAR(kept / static_cast<double>(kTrials), p, 5 * sigma);
}

TEST(GrrClientTest, NoiseUniformOverOtherValues) {
  const GrrClient client(5, 1.0);
  Rng rng(3);
  constexpr int kTrials = 200000;
  std::vector<int> counts(5, 0);
  for (int i = 0; i < kTrials; ++i) ++counts[client.Perturb(2, rng)];
  // All non-true values should receive ~q each.
  const double q = client.params().q;
  for (uint32_t v = 0; v < 5; ++v) {
    if (v == 2) continue;
    EXPECT_NEAR(counts[v] / static_cast<double>(kTrials), q, 0.005);
  }
}

TEST(GrrServerTest, EstimatesSumApproximatelyToOne) {
  const uint32_t k = 8;
  const double eps = 1.5;
  const GrrClient client(k, eps);
  GrrServer server(k, eps);
  Rng rng(4);
  for (int i = 0; i < 50000; ++i) {
    server.Accumulate(client.Perturb(static_cast<uint32_t>(i % k), rng));
  }
  const std::vector<double> est = server.Estimate();
  double sum = 0.0;
  for (const double e : est) sum += e;
  EXPECT_NEAR(sum, 1.0, 1e-9);  // exact: Eq. (1) preserves the total
}

TEST(GrrServerTest, RecoverssSkewedDistribution) {
  const uint32_t k = 12;
  const double eps = 2.0;
  const GrrClient client(k, eps);
  GrrServer server(k, eps);
  Rng rng(5);
  constexpr int kUsers = 100000;
  // 70% hold value 0, 30% hold value 7.
  for (int i = 0; i < kUsers; ++i) {
    const uint32_t v = (i % 10) < 7 ? 0u : 7u;
    server.Accumulate(client.Perturb(v, rng));
  }
  const std::vector<double> est = server.Estimate();
  EXPECT_NEAR(est[0], 0.7, 0.02);
  EXPECT_NEAR(est[7], 0.3, 0.02);
  for (uint32_t v = 1; v < k; ++v) {
    if (v == 7) continue;
    EXPECT_NEAR(est[v], 0.0, 0.02);
  }
}

TEST(GrrServerTest, ResetClearsState) {
  GrrServer server(4, 1.0);
  server.Accumulate(1);
  EXPECT_EQ(server.num_reports(), 1u);
  server.Reset();
  EXPECT_EQ(server.num_reports(), 0u);
}

TEST(GrrTest, EmpiricalVarianceMatchesTheory) {
  // Estimate f(0) repeatedly with f(0) = 0 and compare the spread with
  // OneRoundVariance.
  const uint32_t k = 10;
  const double eps = 1.0;
  const GrrClient client(k, eps);
  Rng rng(6);
  constexpr int kUsers = 2000;
  constexpr int kRuns = 300;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int r = 0; r < kRuns; ++r) {
    GrrServer server(k, eps);
    for (int i = 0; i < kUsers; ++i) {
      server.Accumulate(client.Perturb(1 + (i % (k - 1)), rng));
    }
    const double est = server.Estimate()[0];
    sum += est;
    sum_sq += est * est;
  }
  const double mean = sum / kRuns;
  const double var = sum_sq / kRuns - mean * mean;
  const double expected =
      OneRoundVariance(kUsers, 0.0, client.params());
  EXPECT_NEAR(mean, 0.0, 4 * std::sqrt(expected / kRuns));
  EXPECT_NEAR(var / expected, 1.0, 0.35);  // ~chi^2 tolerance for 300 runs
}

}  // namespace
}  // namespace loloha

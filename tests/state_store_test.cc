// The user-state backends (server/store/user_state_store.h): direct
// unit coverage of each store's slot/reported/growth contract, and the
// PR's central claim — a collector's estimates, stats, and rejection
// counters are byte-identical across {MapStore, FlatStore,
// SnapshotStore} at any thread count, for both protocol families.

#include "server/store/user_state_store.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "net_test_util.h"
#include "server/collector.h"
#include "server/store/snapshot_file.h"
#include "sim/protocol_spec.h"
#include "util/rng.h"
#include "wire/encoding.h"

namespace loloha {
namespace {

using net_test::MakeTraffic;
using net_test::Traffic;

std::string PidLocalPath(const char* stem) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s_%d.snap", stem,
                static_cast<int>(getpid()));
  return buf;
}

// ---------------------------------------------------------------------------
// Direct store contract, identical across backends.
// ---------------------------------------------------------------------------

class StoreContractTest : public ::testing::TestWithParam<StoreKind> {
 protected:
  std::unique_ptr<UserStateStore> MakeStore(uint32_t slot_bytes,
                                            uint64_t reserve = 0) {
    StoreConfig config;
    config.kind = GetParam();
    config.reserve_users = reserve;
    if (config.kind == StoreKind::kSnapshot) {
      path_ = PidLocalPath("state_store_contract");
      config.snapshot_path = path_;
    }
    return MakeUserStateStore(config, slot_bytes);
  }

  ~StoreContractTest() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }

  std::string path_;
};

TEST_P(StoreContractTest, InsertFindAndZeroedSlots) {
  const std::unique_ptr<UserStateStore> store = MakeStore(8);
  EXPECT_EQ(store->kind(), GetParam());
  EXPECT_EQ(store->user_count(), 0u);
  EXPECT_FALSE(store->Find(42));

  const UserRef inserted = store->Insert(42);
  ASSERT_TRUE(inserted);
  uint64_t slot_value = 0;
  std::memcpy(&slot_value, inserted.state, 8);
  EXPECT_EQ(slot_value, 0u);  // Insert() hands out a zeroed slot

  const uint64_t payload = 0xDEADBEEFCAFEF00Dull;
  std::memcpy(inserted.state, &payload, 8);
  const UserRef found = store->Find(42);
  ASSERT_TRUE(found);
  std::memcpy(&slot_value, found.state, 8);
  EXPECT_EQ(slot_value, payload);
  EXPECT_EQ(store->user_count(), 1u);
  EXPECT_FALSE(store->Find(43));
}

TEST_P(StoreContractTest, ReportedBitsClearAtStepBoundary) {
  const std::unique_ptr<UserStateStore> store = MakeStore(4);
  for (uint64_t u = 0; u < 100; ++u) store->Insert(u);
  for (uint64_t u = 0; u < 100; ++u) {
    const UserRef ref = store->Find(u);
    ASSERT_TRUE(ref);
    EXPECT_FALSE(store->reported(ref));
    if (u % 3 == 0) store->set_reported(ref);
  }
  for (uint64_t u = 0; u < 100; ++u) {
    const UserRef ref = store->Find(u);
    EXPECT_EQ(store->reported(ref), u % 3 == 0);
  }
  store->ClearReported();
  for (uint64_t u = 0; u < 100; ++u) {
    EXPECT_FALSE(store->reported(store->Find(u)));
  }
}

TEST_P(StoreContractTest, StateAndReportedBitsSurviveGrowth) {
  // No Reserve: force the open-addressed backends through several
  // rehashes, with reported bits set mid-stream.
  const std::unique_ptr<UserStateStore> store = MakeStore(8);
  constexpr uint64_t kCount = 5000;
  for (uint64_t u = 0; u < kCount; ++u) {
    const uint64_t id = Mix64(u);
    const UserRef ref = store->Insert(id);
    std::memcpy(ref.state, &u, 8);
    if (u % 7 == 0) store->set_reported(ref);
  }
  EXPECT_EQ(store->user_count(), kCount);
  for (uint64_t u = 0; u < kCount; ++u) {
    const UserRef ref = store->Find(Mix64(u));
    ASSERT_TRUE(ref);
    uint64_t stored = 0;
    std::memcpy(&stored, ref.state, 8);
    EXPECT_EQ(stored, u);
    EXPECT_EQ(store->reported(ref), u % 7 == 0);
  }
}

TEST_P(StoreContractTest, ReserveKeepsExistingEntries) {
  const std::unique_ptr<UserStateStore> store = MakeStore(8);
  for (uint64_t u = 0; u < 50; ++u) {
    const UserRef ref = store->Insert(Mix64(u));
    std::memcpy(ref.state, &u, 8);
  }
  store->Reserve(100000);
  EXPECT_EQ(store->user_count(), 50u);
  for (uint64_t u = 0; u < 50; ++u) {
    const UserRef ref = store->Find(Mix64(u));
    ASSERT_TRUE(ref);
    uint64_t stored = 0;
    std::memcpy(&stored, ref.state, 8);
    EXPECT_EQ(stored, u);
  }
}

TEST_P(StoreContractTest, DumpCoversEveryUserOnce) {
  const std::unique_ptr<UserStateStore> store = MakeStore(8);
  for (uint64_t u = 0; u < 500; ++u) store->Insert(Mix64(u));
  std::vector<std::pair<uint64_t, const uint8_t*>> entries;
  store->Dump(&entries);
  ASSERT_EQ(entries.size(), 500u);
  std::vector<uint64_t> ids;
  for (const auto& entry : entries) ids.push_back(entry.first);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, StoreContractTest,
                         ::testing::Values(StoreKind::kMap, StoreKind::kFlat,
                                           StoreKind::kSnapshot),
                         [](const auto& param_info) {
                           return std::string(StoreKindName(param_info.param));
                         });

TEST(StateStoreTest, KindNamesRoundTrip) {
  for (const StoreKind kind :
       {StoreKind::kMap, StoreKind::kFlat, StoreKind::kSnapshot}) {
    StoreKind parsed = StoreKind::kMap;
    ASSERT_TRUE(ParseStoreKind(StoreKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  StoreKind parsed = StoreKind::kMap;
  EXPECT_FALSE(ParseStoreKind("mmap", &parsed));
  EXPECT_FALSE(ParseStoreKind("", &parsed));
}

TEST(StateStoreTest, FlatIsAtMostHalfOfMapWhenReserved) {
  // The full-size claim is bench_state_store's 10M-user gate; this pins
  // the same inequality at test scale so a regression fails fast.
  constexpr uint64_t kUsersHere = 50000;
  StoreConfig map_config;
  map_config.reserve_users = kUsersHere;
  StoreConfig flat_config;
  flat_config.kind = StoreKind::kFlat;
  flat_config.reserve_users = kUsersHere;
  const auto map_store = MakeUserStateStore(map_config, 16);
  const auto flat_store = MakeUserStateStore(flat_config, 16);
  for (uint64_t u = 0; u < kUsersHere; ++u) {
    map_store->Insert(Mix64(u));
    flat_store->Insert(Mix64(u));
  }
  EXPECT_LE(flat_store->MemoryBytes() * 2, map_store->MemoryBytes());
}

TEST(StateStoreTest, SnapshotStoreCheckpointsAtEndStep) {
  const std::string path = PidLocalPath("state_store_checkpoint");
  StoreConfig config;
  config.kind = StoreKind::kSnapshot;
  config.snapshot_path = path;
  const auto store = MakeUserStateStore(config, 16);
  for (uint64_t u = 0; u < 64; ++u) {
    const UserRef ref = store->Insert(u * 3 + 1);
    std::memcpy(ref.state, &u, 8);
  }

  SnapshotContext context;
  context.signature = "checkpoint-test sig";
  context.step = 4;
  context.aux.assign(40, '\x11');
  std::string error;
  ASSERT_TRUE(store->EndStepCheckpoint(context, &error)) << error;

  const StoreStats stats = store->stats();
  EXPECT_EQ(stats.kind, StoreKind::kSnapshot);
  EXPECT_EQ(stats.users, 64u);
  EXPECT_EQ(stats.checkpoints_written, 1u);
  EXPECT_EQ(stats.checkpoint_failures, 0u);
  EXPECT_GT(stats.last_checkpoint_bytes, 0u);

  // The file on disk is exactly the store's portable image.
  SnapshotData restored;
  ASSERT_TRUE(ReadSnapshotFile(path, &restored, &error)) << error;
  EXPECT_EQ(restored, BuildSnapshotData(*store, context));
  std::remove(path.c_str());
}

TEST(StateStoreTest, SnapshotStoreCountsCheckpointFailures) {
  StoreConfig config;
  config.kind = StoreKind::kSnapshot;
  config.snapshot_path = "no_such_directory_xyzzy/state.snap";
  const auto store = MakeUserStateStore(config, 16);
  store->Insert(1);
  SnapshotContext context;
  std::string error;
  EXPECT_FALSE(store->EndStepCheckpoint(context, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(store->stats().checkpoint_failures, 1u);
  EXPECT_EQ(store->stats().checkpoints_written, 0u);
}

// ---------------------------------------------------------------------------
// Backend equivalence through the collectors: estimates, stats, and
// rejection counters byte-identical to the MapStore reference.
// ---------------------------------------------------------------------------

constexpr uint32_t kUsers = 400;
constexpr uint32_t kDomain = 32;
constexpr uint32_t kSteps = 3;

struct Scenario {
  std::vector<std::vector<double>> estimates;
  CollectorStats stats;
  uint64_t users = 0;
};

// Drives hellos + kSteps report waves through IngestBatch, with a
// rejection mix (duplicate, unknown user, malformed, conflicting
// re-hello) stirred into every step so the counters must match too.
Scenario RunScenario(const ProtocolSpec& spec, const CollectorOptions& options,
                     const Traffic& traffic) {
  Scenario out;
  const std::unique_ptr<Collector> collector =
      MakeCollector(spec, kDomain, options);
  collector->IngestBatch(traffic.hellos);
  for (uint32_t t = 0; t < kSteps; ++t) {
    std::vector<Message> step = traffic.steps[t];
    step.push_back(step[0]);                          // duplicate report
    step.push_back(Message{kUsers + 17, step[1].bytes});  // unknown user
    step.push_back(Message{3, "definitely not wire bytes"});  // malformed
    step.push_back(traffic.hellos[2]);                // idempotent re-hello
    collector->IngestBatch(step);
    out.estimates.push_back(collector->EndStep());
  }
  out.stats = collector->stats();
  out.users = collector->registered_users();
  return out;
}

class BackendEquivalenceTest
    : public ::testing::TestWithParam<
          std::tuple<const char*, StoreKind, uint32_t>> {};

TEST_P(BackendEquivalenceTest, MatchesMapStoreReferenceExactly) {
  const ProtocolSpec spec = ProtocolSpec::MustParse(std::get<0>(GetParam()));
  const StoreKind kind = std::get<1>(GetParam());
  const uint32_t threads = std::get<2>(GetParam());
  const Traffic traffic = MakeTraffic(spec, 137, kUsers, kDomain, kSteps);

  // Reference: MapStore, single-threaded.
  const Scenario reference = RunScenario(spec, CollectorOptions{}, traffic);
  EXPECT_EQ(reference.users, kUsers);
  EXPECT_EQ(reference.stats.rejected_duplicate, kSteps);
  EXPECT_EQ(reference.stats.rejected_unknown_user, kSteps);
  EXPECT_EQ(reference.stats.rejected_malformed, kSteps);

  CollectorOptions options;
  options.num_threads = threads;
  options.store.kind = kind;
  std::string path;
  if (kind == StoreKind::kSnapshot) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "state_store_equiv_%d_%s_%u.snap",
                  static_cast<int>(getpid()),
                  spec.IsLolohaVariant() ? "loloha" : "dbitflip", threads);
    path = buf;
    options.store.snapshot_path = path;
  }
  const Scenario observed = RunScenario(spec, options, traffic);
  if (!path.empty()) std::remove(path.c_str());

  EXPECT_EQ(observed.estimates, reference.estimates);
  EXPECT_EQ(observed.stats, reference.stats);
  EXPECT_EQ(observed.users, reference.users);
}

INSTANTIATE_TEST_SUITE_P(
    SpecsBackendsThreads, BackendEquivalenceTest,
    ::testing::Combine(::testing::Values("ololoha:eps_perm=2,eps_first=1",
                                         "bbitflip:eps_perm=3,buckets=8,d=4"),
                       ::testing::Values(StoreKind::kMap, StoreKind::kFlat,
                                         StoreKind::kSnapshot),
                       ::testing::Values(1u, 4u)));

// The scalar path agrees with the batch path on every backend (the
// historical two-path contract, now times three backends).
TEST(StateStoreTest, ScalarPathMatchesBatchPathOnFlatStore) {
  const ProtocolSpec spec =
      ProtocolSpec::MustParse("ololoha:eps_perm=2,eps_first=1");
  const Traffic traffic = MakeTraffic(spec, 139, kUsers, kDomain, kSteps);

  CollectorOptions flat;
  flat.store.kind = StoreKind::kFlat;
  const Scenario batch = RunScenario(spec, flat, traffic);

  const std::unique_ptr<Collector> collector =
      MakeCollector(spec, kDomain, flat);
  for (const Message& hello : traffic.hellos) {
    ASSERT_TRUE(collector->HandleHello(hello.user_id, hello.bytes));
  }
  std::vector<std::vector<double>> estimates;
  for (uint32_t t = 0; t < kSteps; ++t) {
    for (const Message& report : traffic.steps[t]) {
      ASSERT_TRUE(collector->HandleReport(report.user_id, report.bytes));
    }
    EXPECT_FALSE(collector->HandleReport(traffic.steps[t][0].user_id,
                                         traffic.steps[t][0].bytes));
    EXPECT_FALSE(collector->HandleReport(kUsers + 17, traffic.steps[t][1].bytes));
    EXPECT_FALSE(collector->HandleReport(3, "definitely not wire bytes"));
    EXPECT_TRUE(collector->HandleHello(traffic.hellos[2].user_id,
                                       traffic.hellos[2].bytes));
    estimates.push_back(collector->EndStep());
  }
  EXPECT_EQ(estimates, batch.estimates);
  EXPECT_EQ(collector->stats(), batch.stats);
}

}  // namespace
}  // namespace loloha

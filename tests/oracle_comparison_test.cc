// Cross-oracle consistency: all one-shot frequency oracles must estimate
// the same distribution, and their empirical accuracy ordering must match
// the theory of Wang et al. (USENIX Sec'17) that Sec. 2.3 builds on.

#include <cmath>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "oracle/estimator.h"
#include "oracle/grr.h"
#include "oracle/hadamard.h"
#include "oracle/local_hash.h"
#include "oracle/subset_selection.h"
#include "oracle/unary.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace loloha {
namespace {

// Runs `n` users with 40%/40%/20% mass on values {1, 5, 9} through an
// oracle and returns the estimate vector.
template <typename PerturbAndAccumulate>
std::vector<double> RunOracle(uint32_t n, Rng& rng,
                              PerturbAndAccumulate&& run) {
  for (uint32_t u = 0; u < n; ++u) {
    const uint32_t roll = u % 5;
    const uint32_t v = roll < 2 ? 1u : (roll < 4 ? 5u : 9u);
    run(v, rng);
  }
  return {};
}

std::vector<double> Truth(uint32_t k) {
  std::vector<double> truth(k, 0.0);
  truth[1] = 0.4;
  truth[5] = 0.4;
  truth[9] = 0.2;
  return truth;
}

struct OracleResult {
  std::string name;
  std::vector<double> estimates;
};

std::vector<OracleResult> RunAllOracles(uint32_t k, uint32_t n, double eps,
                                        uint64_t seed) {
  std::vector<OracleResult> results;
  Rng rng(seed);

  {
    GrrClient client(k, eps);
    GrrServer server(k, eps);
    RunOracle(n, rng, [&](uint32_t v, Rng& r) {
      server.Accumulate(client.Perturb(v, r));
    });
    results.push_back({"GRR", server.Estimate()});
  }
  {
    UeClient client(k, eps, UeKind::kSymmetric);
    UeServer server(k, eps, UeKind::kSymmetric);
    RunOracle(n, rng, [&](uint32_t v, Rng& r) {
      server.Accumulate(client.Perturb(v, r));
    });
    results.push_back({"SUE", server.Estimate()});
  }
  {
    UeClient client(k, eps, UeKind::kOptimized);
    UeServer server(k, eps, UeKind::kOptimized);
    RunOracle(n, rng, [&](uint32_t v, Rng& r) {
      server.Accumulate(client.Perturb(v, r));
    });
    results.push_back({"OUE", server.Estimate()});
  }
  {
    LhClient client = MakeOlhClient(k, eps);
    LhServer server = MakeOlhServer(k, eps);
    RunOracle(n, rng, [&](uint32_t v, Rng& r) {
      server.Accumulate(client.Perturb(v, r));
    });
    results.push_back({"OLH", server.Estimate()});
  }
  {
    LhClient client = MakeBlhClient(k, eps);
    LhServer server = MakeBlhServer(k, eps);
    RunOracle(n, rng, [&](uint32_t v, Rng& r) {
      server.Accumulate(client.Perturb(v, r));
    });
    results.push_back({"BLH", server.Estimate()});
  }
  {
    HadamardResponseClient client(k, eps);
    HadamardResponseServer server(k, eps);
    RunOracle(n, rng, [&](uint32_t v, Rng& r) {
      server.Accumulate(client.Perturb(v, r));
    });
    results.push_back({"HR", server.Estimate()});
  }
  {
    SubsetSelectionClient client(k, eps);
    SubsetSelectionServer server(k, eps);
    RunOracle(n, rng, [&](uint32_t v, Rng& r) {
      server.Accumulate(client.Perturb(v, r));
    });
    results.push_back({"SS", server.Estimate()});
  }
  return results;
}

TEST(OracleComparison, AllOraclesAgreeOnTheDistribution) {
  const uint32_t k = 16;
  const uint32_t n = 80000;
  const double eps = 2.0;
  const std::vector<double> truth = Truth(k);
  for (const OracleResult& result : RunAllOracles(k, n, eps, 1)) {
    EXPECT_NEAR(result.estimates[1], 0.4, 0.05) << result.name;
    EXPECT_NEAR(result.estimates[5], 0.4, 0.05) << result.name;
    EXPECT_NEAR(result.estimates[9], 0.2, 0.05) << result.name;
    EXPECT_NEAR(result.estimates[0], 0.0, 0.05) << result.name;
    EXPECT_LT(MeanSquaredError(truth, result.estimates), 1e-3)
        << result.name;
  }
}

TEST(OracleComparison, OueOlhSsBeatSueAtModerateEps) {
  // Averaged over repeats: the optimized oracles (OUE/OLH/SS) must not be
  // worse than SUE. Use MSE over the zero-mass coordinates (the V*
  // regime).
  const uint32_t k = 24;
  const uint32_t n = 20000;
  const double eps = 1.0;
  const std::vector<double> truth = Truth(k);
  std::map<std::string, double> mse;
  constexpr int kRepeats = 8;
  for (int r = 0; r < kRepeats; ++r) {
    for (const OracleResult& result : RunAllOracles(k, n, eps, 100 + r)) {
      mse[result.name] += MeanSquaredError(truth, result.estimates);
    }
  }
  EXPECT_LT(mse["OUE"], mse["SUE"] * 1.1);
  EXPECT_LT(mse["OLH"], mse["SUE"] * 1.1);
  EXPECT_LT(mse["SS"], mse["SUE"] * 1.15);
}

TEST(OracleComparison, GrrDegradesWithDomainSize) {
  // GRR's variance grows with k; at k = 64 and eps = 1 it must trail OUE
  // clearly (averaged over several runs to damp noise).
  const uint32_t k = 64;
  const uint32_t n = 20000;
  const double eps = 1.0;
  std::vector<double> truth(k, 0.0);
  truth[1] = 0.4;
  truth[5] = 0.4;
  truth[9] = 0.2;
  double mse_grr = 0.0;
  double mse_oue = 0.0;
  for (int r = 0; r < 6; ++r) {
    Rng rng(200 + r);
    GrrClient grr_client(k, eps);
    GrrServer grr_server(k, eps);
    UeClient oue_client(k, eps, UeKind::kOptimized);
    UeServer oue_server(k, eps, UeKind::kOptimized);
    for (uint32_t u = 0; u < n; ++u) {
      const uint32_t roll = u % 5;
      const uint32_t v = roll < 2 ? 1u : (roll < 4 ? 5u : 9u);
      grr_server.Accumulate(grr_client.Perturb(v, rng));
      oue_server.Accumulate(oue_client.Perturb(v, rng));
    }
    mse_grr += MeanSquaredError(truth, grr_server.Estimate());
    mse_oue += MeanSquaredError(truth, oue_server.Estimate());
  }
  EXPECT_GT(mse_grr, 2.0 * mse_oue);
}

TEST(OracleComparison, EmpiricalVarianceTracksTheoreticalVStar) {
  // For each of GRR/SUE/OUE, the spread of f_hat(0) (true f = 0) over
  // repeated runs must match OneRoundVariance within chi-square slack.
  const uint32_t k = 10;
  const uint32_t n = 3000;
  const double eps = 1.5;
  struct Case {
    std::string name;
    PerturbParams params;
    std::function<double(Rng&)> estimate_zero;
  };
  Rng rng(300);
  std::vector<Case> cases;
  cases.push_back({"GRR", GrrParams(eps, k), [&](Rng& r) {
                     GrrClient client(k, eps);
                     GrrServer server(k, eps);
                     for (uint32_t u = 0; u < n; ++u) {
                       server.Accumulate(
                           client.Perturb(1 + u % (k - 1), r));
                     }
                     return server.Estimate()[0];
                   }});
  cases.push_back({"OUE", OueParams(eps), [&](Rng& r) {
                     UeClient client(k, eps, UeKind::kOptimized);
                     UeServer server(k, eps, UeKind::kOptimized);
                     for (uint32_t u = 0; u < n; ++u) {
                       server.Accumulate(
                           client.Perturb(1 + u % (k - 1), r));
                     }
                     return server.Estimate()[0];
                   }});
  for (const Case& c : cases) {
    constexpr int kRuns = 150;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int run = 0; run < kRuns; ++run) {
      const double est = c.estimate_zero(rng);
      sum += est;
      sum_sq += est * est;
    }
    const double mean = sum / kRuns;
    const double var = sum_sq / kRuns - mean * mean;
    const double expected = OneRoundVariance(n, 0.0, c.params);
    EXPECT_NEAR(var / expected, 1.0, 0.5) << c.name;
  }
}

}  // namespace
}  // namespace loloha

// End-to-end statistical acceptance suite: every assertion here checks
// that a protocol's *randomized output* follows the distribution the
// paper derives for it — chi-square goodness-of-fit on the client
// randomizers, and empirical MSE against the approximate variance V*
// (Eq. 5) for the full longitudinal collections.
//
// Determinism: every draw comes from a fixed StreamSeed, and the
// library's Rng / binomial sampler draw identically on every platform, so
// each statistic below is a constant — the tolerance bands are
// statistical in *derivation* (quantiles of the null distribution, V*
// approximation error) but the test outcomes never flake.

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/loloha.h"
#include "core/loloha_params.h"
#include "data/generators.h"
#include "longitudinal/chain.h"
#include "longitudinal/dbitflip.h"
#include "longitudinal/lgrr.h"
#include "longitudinal/lue.h"
#include "oracle/params.h"
#include "tests/stat_harness.h"
#include "util/rng.h"

namespace loloha {
namespace {

using stat::BinomialCell;
using stat::BinomialZSquareStatistic;
using stat::ChiSquarePValue;
using stat::ChiSquareStatistic;
using stat::MseAcceptance;
using stat::MseAgainstTheory;
using stat::NormalCdf;
using stat::RegularizedGammaP;

constexpr uint64_t kSuiteSeed = 20230328;  // the EDBT'23 date

// Chi-square acceptance level: we accept the null unless the statistic is
// beyond the 99.9% quantile. With fixed seeds a pass is permanent; the
// level only calibrates how surprising a draw we tolerated when the seed
// was chosen.
constexpr double kAcceptP = 1e-3;
// Rejection level for the power checks (a wrong model must be refuted).
constexpr double kRejectP = 1e-9;

TEST(StatHarnessTest, GammaAndChiSquareReferenceValues) {
  // P(a, x) against reference values (Abramowitz & Stegun / scipy).
  EXPECT_NEAR(RegularizedGammaP(0.5, 0.5), 0.6826894921370859, 1e-12);
  EXPECT_NEAR(RegularizedGammaP(3.0, 2.0), 0.32332358381693654, 1e-12);
  EXPECT_NEAR(RegularizedGammaP(10.0, 20.0), 0.9950045876916924, 1e-12);
  // The classic 95% quantile of chi-square(1).
  EXPECT_NEAR(ChiSquarePValue(3.841458820694124, 1.0), 0.05, 1e-9);
  EXPECT_DOUBLE_EQ(ChiSquarePValue(0.0, 5.0), 1.0);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-12);
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-15);
}

// LOLOHA (Algorithm 1): with the hash drawn uniformly from the universal
// family, the *marginal* report distribution over [0, g) is uniform (the
// hash cell is uniform up to O(g/2^61) bias, and the symmetric PRR + IRR
// rounds preserve uniformity).
TEST(StatisticalAcceptanceTest, LolohaClientReportsAreMarginallyUniform) {
  const LolohaParams params = MakeLolohaParams(64, 8, 2.0, 1.0);
  constexpr uint32_t kUsers = 40000;
  Rng rng(StreamSeed(kSuiteSeed, 1, 0));
  std::vector<uint64_t> counts(params.g, 0);
  for (uint32_t u = 0; u < kUsers; ++u) {
    LolohaClient client(params, rng);
    ++counts[client.Report(7, rng)];
  }
  const std::vector<double> uniform(params.g, 1.0 / params.g);
  const double statistic = ChiSquareStatistic(counts, uniform);
  EXPECT_GT(ChiSquarePValue(statistic, params.g - 1.0), kAcceptP)
      << "statistic=" << statistic;
}

// L-GRR: n independent clients all holding v* report a category in
// [0, k); the chained GRR law gives
//   P(report = v*)    = p1 p2 + (k-1) q1 q2
//   P(report = w!=v*) = p1 q2 + q1 p2 + (k-2) q1 q2.
TEST(StatisticalAcceptanceTest, LGrrReportsMatchChainedDistribution) {
  constexpr uint32_t k = 16;
  constexpr uint32_t kValue = 2;
  const ChainedParams chain = LGrrChain(2.0, 1.0, k);
  constexpr uint32_t kUsers = 30000;
  Rng rng(StreamSeed(kSuiteSeed, 2, 0));
  std::vector<uint64_t> counts(k, 0);
  for (uint32_t u = 0; u < kUsers; ++u) {
    LongitudinalGrrClient client(k, chain);
    ++counts[client.Report(kValue, rng)];
  }
  const double p1 = chain.first.p, q1 = chain.first.q;
  const double p2 = chain.second.p, q2 = chain.second.q;
  std::vector<double> expected(
      k, p1 * q2 + q1 * p2 + (k - 2.0) * q1 * q2);
  expected[kValue] = p1 * p2 + (k - 1.0) * q1 * q2;
  const double statistic = ChiSquareStatistic(counts, expected);
  EXPECT_GT(ChiSquarePValue(statistic, k - 1.0), kAcceptP)
      << "statistic=" << statistic;

  // Power check: the same counts must refute a *wrong* model (uniform
  // reports), i.e. the harness can actually reject.
  const std::vector<double> uniform(k, 1.0 / k);
  EXPECT_LT(ChiSquarePValue(ChiSquareStatistic(counts, uniform), k - 1.0),
            kRejectP);
}

// L-OSUE: each report bit i is an independent Bernoulli with success
// probability p_s (i == v*) or q_s (otherwise), where (p_s, q_s) is the
// collapsed chain acting on support probabilities.
TEST(StatisticalAcceptanceTest, LOsueReportBitsMatchCollapsedChain) {
  constexpr uint32_t k = 16;
  constexpr uint32_t kValue = 3;
  const ChainedParams chain = LueChain(LueVariant::kLOsue, 2.0, 1.0);
  const double p_s =
      chain.first.p * chain.second.p + (1.0 - chain.first.p) * chain.second.q;
  const double q_s =
      chain.first.q * chain.second.p + (1.0 - chain.first.q) * chain.second.q;
  constexpr uint32_t kUsers = 20000;
  Rng rng(StreamSeed(kSuiteSeed, 3, 0));
  std::vector<uint64_t> ones(k, 0);
  for (uint32_t u = 0; u < kUsers; ++u) {
    LongitudinalUeClient client(k, chain);
    const std::vector<uint8_t> report = client.Report(kValue, rng);
    for (uint32_t i = 0; i < k; ++i) ones[i] += report[i];
  }
  std::vector<BinomialCell> cells(k);
  for (uint32_t i = 0; i < k; ++i) {
    cells[i] = BinomialCell{ones[i], kUsers, i == kValue ? p_s : q_s};
  }
  const double statistic = BinomialZSquareStatistic(cells);
  EXPECT_GT(ChiSquarePValue(statistic, k), kAcceptP)
      << "statistic=" << statistic;
}

// dBitFlipPM: a sampled bucket's memoized bit is Bern(p) when the user's
// bucket equals it and Bern(q) otherwise, with SUE-style (p, q) at ε∞.
TEST(StatisticalAcceptanceTest, DBitFlipSampledBitsMatchSueModel) {
  const Bucketizer bucketizer(40, 8);
  constexpr uint32_t d = 4;
  const double eps = 3.0;
  const PerturbParams sue = SueParams(eps);
  constexpr uint32_t kUsers = 30000;
  constexpr uint32_t kValue = 13;  // bucket 2
  const uint32_t target_bucket = bucketizer.Bucket(kValue);
  Rng rng(StreamSeed(kSuiteSeed, 4, 0));
  BinomialCell in{0, 0, sue.p};
  BinomialCell out{0, 0, sue.q};
  for (uint32_t u = 0; u < kUsers; ++u) {
    DBitFlipClient client(bucketizer, d, eps, rng);
    const DBitReport report = client.Report(kValue, rng);
    for (uint32_t l = 0; l < d; ++l) {
      BinomialCell& cell =
          client.sampled()[l] == target_bucket ? in : out;
      ++cell.trials;
      cell.successes += report.bits[l];
    }
  }
  ASSERT_GT(in.trials, 0u);
  ASSERT_GT(out.trials, 0u);
  const double statistic = BinomialZSquareStatistic({in, out});
  EXPECT_GT(ChiSquarePValue(statistic, 2.0), kAcceptP)
      << "statistic=" << statistic;
}

// Full-pipeline MSE acceptance: the empirical MSE_avg of each protocol's
// longitudinal collection must land inside a band around the paper's
// approximate variance V* (Eq. 5). Band derivation: V* evaluates the
// exact variance (Eq. 4) at f = 0 — at the Syn workload's near-uniform
// f = 1/k the exact value differs by a bounded factor — and the
// empirical mean over runs x tau x k cells carries a few percent of
// Monte-Carlo spread. [0.65, 1.5] covers both with margin; a broken
// estimator or mis-derived parameter overshoots it by orders of
// magnitude.
TEST(StatisticalAcceptanceTest, MseMatchesApproximateVarianceAcrossProtocols) {
  const double eps_perm = 2.0;
  const double eps_first = 1.0;
  const Dataset data = GenerateSyn(4000, 32, 4, 0.25, 11);
  const std::vector<ProtocolId> protocols = {
      ProtocolId::kBiLoloha, ProtocolId::kOLoloha, ProtocolId::kLGrr,
      ProtocolId::kLOsue, ProtocolId::kBBitFlipPm};
  for (const ProtocolId id : protocols) {
    const MseAcceptance result =
        MseAgainstTheory(id, data, eps_perm, eps_first, 3, kSuiteSeed);
    EXPECT_GT(result.predicted_mse, 0.0) << ProtocolName(id);
    EXPECT_GE(result.ratio, 0.65)
        << ProtocolName(id) << " empirical=" << result.empirical_mse
        << " predicted=" << result.predicted_mse;
    EXPECT_LE(result.ratio, 1.5)
        << ProtocolName(id) << " empirical=" << result.empirical_mse
        << " predicted=" << result.predicted_mse;
  }
}

// The bands above must also *order* the protocols the way Fig. 2 does at
// this configuration: LOLOHA's V* with optimized g is no worse than
// BiLOLOHA's, and the measured values respect the same ordering.
TEST(StatisticalAcceptanceTest, OptimizedGImprovesOnBinaryG) {
  const double eps_perm = 2.0;
  const double eps_first = 1.0;
  const Dataset data = GenerateSyn(4000, 32, 4, 0.25, 11);
  const MseAcceptance bi = MseAgainstTheory(ProtocolId::kBiLoloha, data,
                                            eps_perm, eps_first, 3,
                                            kSuiteSeed);
  const MseAcceptance opt = MseAgainstTheory(ProtocolId::kOLoloha, data,
                                             eps_perm, eps_first, 3,
                                             kSuiteSeed);
  EXPECT_LE(opt.predicted_mse, bi.predicted_mse);
  EXPECT_LT(opt.empirical_mse, bi.empirical_mse);
}

}  // namespace
}  // namespace loloha

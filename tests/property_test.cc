// Property-style sweeps over the protocol parameter space: invariants
// that must hold for EVERY (ε∞, α, k, g) combination, checked on dense
// grids with TEST_P.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/loloha_params.h"
#include "longitudinal/chain.h"
#include "oracle/estimator.h"
#include "oracle/params.h"
#include "util/mathutil.h"

namespace loloha {
namespace {

// ---------------------------------------------------------------------------
// Chained-protocol invariants across the full evaluation grid.
// ---------------------------------------------------------------------------

class FullGrid
    : public testing::TestWithParam<std::tuple<double, double>> {
 protected:
  double eps_perm() const { return std::get<0>(GetParam()); }
  double eps_first() const {
    return std::get<0>(GetParam()) * std::get<1>(GetParam());
  }
};

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, FullGrid,
    testing::Combine(testing::Values(0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0,
                                     4.5, 5.0),
                     testing::Values(0.1, 0.2, 0.3, 0.4, 0.5, 0.6)));

TEST_P(FullGrid, IrrIsStrictlyNoisierThanPrr) {
  // ε_IRR < ε∞ always: the IRR round must not leak more than the PRR.
  const double eps_irr = LolohaIrrEpsilon(eps_perm(), eps_first());
  EXPECT_GT(eps_irr, 0.0);
}

TEST_P(FullGrid, ChainedVarianceExceedsOneRoundVariance) {
  // Double randomization costs utility: V*(chain at ε∞, ε1) must be at
  // least the one-round V* at ε1... for the same encoding. Check for the
  // UE family: L-OSUE vs plain OUE at ε1 (they are equal — the chain
  // collapses to OUE(ε1)) and RAPPOR vs SUE at ε1 (strictly worse than
  // SUE at ε∞).
  const ChainedParams osue = LOsueChain(eps_perm(), eps_first());
  const double chained = ApproximateVariance(1e4, osue.first, osue.second);
  const double one_round =
      OneRoundVariance(1e4, 0.0, OueParams(eps_first()));
  EXPECT_LT(RelDiff(chained, one_round), 1e-9);

  const ChainedParams sue = LSueChain(eps_perm(), eps_first());
  EXPECT_GT(ApproximateVariance(1e4, sue.first, sue.second) * (1 + 1e-12),
            OneRoundVariance(1e4, 0.0, SueParams(eps_perm())));
}

TEST_P(FullGrid, VarianceDecreasesInEpsPerm) {
  // For fixed α, a larger ε∞ (hence larger ε1) can only help utility.
  const double alpha = eps_first() / eps_perm();
  if (eps_perm() + 0.5 > 5.01) GTEST_SKIP();
  const double v_here = LolohaApproximateVariance(
      1e4, 2, eps_perm(), alpha * eps_perm());
  const double v_next = LolohaApproximateVariance(
      1e4, 2, eps_perm() + 0.5, alpha * (eps_perm() + 0.5));
  EXPECT_LT(v_next, v_here * (1 + 1e-9));
}

TEST_P(FullGrid, OptimalGNeverWorseThanBinary) {
  const uint32_t g_opt = OptimalLolohaG(eps_perm(), eps_first());
  const double v_opt =
      LolohaApproximateVariance(1e4, g_opt, eps_perm(), eps_first());
  const double v_bi =
      LolohaApproximateVariance(1e4, 2, eps_perm(), eps_first());
  EXPECT_LE(v_opt, v_bi * (1 + 1e-9));
}

TEST_P(FullGrid, AllUeChainsProduceValidParams) {
  for (const auto& chain :
       {LSueChain(eps_perm(), eps_first()),
        LOsueChain(eps_perm(), eps_first())}) {
    EXPECT_TRUE(ValidParams(chain.first));
    EXPECT_TRUE(ValidParams(chain.second));
    EXPECT_TRUE(ValidParams(CollapseChain(chain.first, chain.second)));
  }
}

// ---------------------------------------------------------------------------
// LOLOHA invariants across (grid x g).
// ---------------------------------------------------------------------------

class LolohaGrid
    : public testing::TestWithParam<std::tuple<double, double, uint32_t>> {
 protected:
  double eps_perm() const { return std::get<0>(GetParam()); }
  double eps_first() const {
    return std::get<0>(GetParam()) * std::get<1>(GetParam());
  }
  uint32_t g() const { return std::get<2>(GetParam()); }
};

INSTANTIATE_TEST_SUITE_P(
    Dense, LolohaGrid,
    testing::Combine(testing::Values(0.5, 1.5, 3.0, 5.0),
                     testing::Values(0.2, 0.5, 0.8),
                     testing::Values(2u, 3u, 5u, 8u, 16u, 64u)));

TEST_P(LolohaGrid, EstimatorDenominatorPositive) {
  // p1 > 1/g is required for Eq. (3) with q1' = 1/g to be invertible.
  const LolohaParams params =
      MakeLolohaParams(1000, g(), eps_perm(), eps_first());
  EXPECT_GT(params.prr.p, 1.0 / g());
  EXPECT_GT(params.irr.p, params.irr.q);
}

TEST_P(LolohaGrid, AnalyticUnbiasednessThroughEqThree) {
  // Push the exact support expectation through Algorithm 2's estimator
  // and recover f for an arbitrary f. Support probability of a holder:
  //   P_s = p1 p2 + (g-1) q1 q2;
  // of a non-holder: (1/g) P_s + (1-1/g) Q_s with
  //   Q_s = q1 p2 + p1 q2 + (g-2) q1 q2.
  const LolohaParams params =
      MakeLolohaParams(1000, g(), eps_perm(), eps_first());
  const double p1 = params.prr.p;
  const double q1 = params.prr.q;
  const double p2 = params.irr.p;
  const double q2 = params.irr.q;
  const double gd = g();
  const double holder = p1 * p2 + (gd - 1.0) * q1 * q2;
  const double other = q1 * p2 + p1 * q2 + (gd - 2.0) * q1 * q2;
  const double non_holder = holder / gd + (1.0 - 1.0 / gd) * other;
  const double n = 123456.0;
  for (const double f : {0.0, 0.123, 0.5, 1.0}) {
    const double expected_count =
        n * (f * holder + (1.0 - f) * non_holder);
    const double estimate = EstimateFrequencyChained(
        expected_count, n, params.EstimatorFirst(), params.irr);
    EXPECT_LT(std::fabs(estimate - f), 1e-9) << "f=" << f;
  }
}

TEST_P(LolohaGrid, WorstCaseBudgetMonotoneInG) {
  const LolohaParams params =
      MakeLolohaParams(1000, g(), eps_perm(), eps_first());
  EXPECT_DOUBLE_EQ(params.WorstCaseLongitudinalEpsilon(),
                   g() * eps_perm());
}

// ---------------------------------------------------------------------------
// GRR-chain invariants across (grid x k).
// ---------------------------------------------------------------------------

class GrrGrid
    : public testing::TestWithParam<std::tuple<double, double, uint32_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Dense, GrrGrid,
    testing::Combine(testing::Values(0.5, 2.0, 5.0),
                     testing::Values(0.3, 0.6),
                     testing::Values(2u, 5u, 17u, 96u, 360u, 1412u)));

TEST_P(GrrGrid, AnalyticUnbiasednessThroughEqThree) {
  const auto [eps, alpha, k] = GetParam();
  const ChainedParams chain = LGrrChain(eps, alpha * eps, k);
  const double kd = k;
  const double holder =
      chain.first.p * chain.second.p +
      (kd - 1.0) * chain.first.q * chain.second.q;
  const double other = chain.first.q * chain.second.p +
                       chain.first.p * chain.second.q +
                       (kd - 2.0) * chain.first.q * chain.second.q;
  const double n = 54321.0;
  for (const double f : {0.0, 0.25, 1.0}) {
    const double expected_count = n * (f * holder + (1.0 - f) * other);
    const double estimate = EstimateFrequencyChained(
        expected_count, n, chain.first, chain.second);
    EXPECT_LT(std::fabs(estimate - f), 1e-9);
  }
}

TEST_P(GrrGrid, SupportProbabilitiesFormDistribution) {
  const auto [eps, alpha, k] = GetParam();
  const ChainedParams chain = LGrrChain(eps, alpha * eps, k);
  const double kd = k;
  const double holder =
      chain.first.p * chain.second.p +
      (kd - 1.0) * chain.first.q * chain.second.q;
  const double other = chain.first.q * chain.second.p +
                       chain.first.p * chain.second.q +
                       (kd - 2.0) * chain.first.q * chain.second.q;
  // Reporting distribution given a fixed input sums to 1 over the k
  // possible outputs.
  EXPECT_NEAR(holder + (kd - 1.0) * other, 1.0, 1e-9);
}

}  // namespace
}  // namespace loloha

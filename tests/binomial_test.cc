// util/binomial.h: exactness of the three sampling regimes (Bernoulli
// sum, CDF inversion, BTRS rejection) against the binomial law, plus the
// determinism and edge-case contracts the simulation engine relies on.

#include "util/binomial.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace loloha {
namespace {

struct Moments {
  double mean = 0.0;
  double var = 0.0;
};

Moments SampleMoments(uint64_t n, double p, uint32_t draws, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(draws);
  double sum = 0.0;
  for (uint32_t i = 0; i < draws; ++i) {
    const uint64_t x = SampleBinomial(n, p, rng);
    EXPECT_LE(x, n);
    xs[i] = static_cast<double>(x);
    sum += xs[i];
  }
  Moments m;
  m.mean = sum / draws;
  for (const double x : xs) m.var += (x - m.mean) * (x - m.mean);
  m.var /= draws - 1;
  return m;
}

// Mean within 5 standard errors, variance within 20% — loose enough to
// be deterministic-stable at these fixed seeds, tight enough to catch a
// broken regime.
void ExpectBinomialMoments(uint64_t n, double p, uint64_t seed) {
  const uint32_t draws = 20000;
  const double mean = static_cast<double>(n) * p;
  const double var = mean * (1.0 - p);
  const Moments m = SampleMoments(n, p, draws, seed);
  EXPECT_NEAR(m.mean, mean, 5.0 * std::sqrt(var / draws))
      << "n=" << n << " p=" << p;
  EXPECT_NEAR(m.var, var, 0.2 * var + 0.05) << "n=" << n << " p=" << p;
}

TEST(BinomialTest, BernoulliSumRegime) {
  ExpectBinomialMoments(10, 0.3, 1);
  ExpectBinomialMoments(64, 0.5, 2);
  ExpectBinomialMoments(50, 0.731, 3);  // symmetry + small n
}

TEST(BinomialTest, InversionRegime) {
  ExpectBinomialMoments(1000, 0.005, 4);  // mean 5
  ExpectBinomialMoments(100000, 0.00008, 5);  // mean 8
  ExpectBinomialMoments(1000, 0.995, 6);  // symmetry -> inversion
}

TEST(BinomialTest, BtrsRegime) {
  ExpectBinomialMoments(1000, 0.12, 7);  // mean 120
  ExpectBinomialMoments(100000, 0.5, 8);
  ExpectBinomialMoments(5000, 0.87, 9);  // symmetry -> BTRS
}

TEST(BinomialTest, PmfMatchesExactLawModerateN) {
  // Empirical pmf of Binomial(100, 0.3) (BTRS regime) against the exact
  // recurrence, chi-square-style bound over the bulk.
  const uint64_t n = 100;
  const double p = 0.3;
  const uint32_t draws = 200000;
  Rng rng(10);
  std::vector<uint32_t> hist(n + 1, 0);
  for (uint32_t i = 0; i < draws; ++i) ++hist[SampleBinomial(n, p, rng)];

  // Exact pmf via the stable recurrence from the mode.
  std::vector<double> pmf(n + 1, 0.0);
  pmf[0] = std::pow(1.0 - p, static_cast<double>(n));
  for (uint64_t k = 1; k <= n; ++k) {
    pmf[k] = pmf[k - 1] * (p / (1.0 - p)) *
             static_cast<double>(n - k + 1) / static_cast<double>(k);
  }
  double chi2 = 0.0;
  int dof = 0;
  for (uint64_t k = 0; k <= n; ++k) {
    const double expected = pmf[k] * draws;
    if (expected < 20.0) continue;  // skip thin tails
    const double diff = hist[k] - expected;
    chi2 += diff * diff / expected;
    ++dof;
  }
  ASSERT_GT(dof, 10);
  // For ~30 dof the 0.9999 quantile is ~66; a broken sampler lands in
  // the thousands. Deterministic at this seed.
  EXPECT_LT(chi2, 4.0 * dof);
}

TEST(BinomialTest, EdgeCases) {
  Rng rng(11);
  EXPECT_EQ(SampleBinomial(0, 0.5, rng), 0u);
  EXPECT_EQ(SampleBinomial(100, 0.0, rng), 0u);
  EXPECT_EQ(SampleBinomial(100, -0.5, rng), 0u);
  EXPECT_EQ(SampleBinomial(100, 1.0, rng), 100u);
  EXPECT_EQ(SampleBinomial(100, 1.5, rng), 100u);
}

TEST(BinomialTest, DeterministicForFixedStream) {
  for (const double p : {0.01, 0.3, 0.7}) {
    for (const uint64_t n : {5ull, 1000ull, 100000ull}) {
      Rng a(12);
      Rng b(12);
      for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(SampleBinomial(n, p, a), SampleBinomial(n, p, b));
      }
    }
  }
}

TEST(BinomialTest, SymmetryReduction) {
  // E[Binomial(n, p)] + E[Binomial(n, 1-p)] must straddle n.
  const Moments high = SampleMoments(2000, 0.9, 5000, 13);
  const Moments low = SampleMoments(2000, 0.1, 5000, 13);
  EXPECT_NEAR(high.mean + low.mean, 2000.0, 10.0);
}

}  // namespace
}  // namespace loloha

#include "sim/metrics.h"

#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"

namespace loloha {
namespace {

Dataset TinyDataset() {
  Dataset data("tiny", 2, 4, 2);
  // t = 0: values {0,0,1,1} -> f = (0.5, 0.5)
  // t = 1: values {0,0,0,1} -> f = (0.75, 0.25)
  const uint32_t v0[] = {0, 0, 1, 1};
  const uint32_t v1[] = {0, 0, 0, 1};
  for (uint32_t u = 0; u < 4; ++u) {
    data.set_value(u, 0, v0[u]);
    data.set_value(u, 1, v1[u]);
  }
  return data;
}

TEST(MseAvgTest, ZeroForPerfectEstimates) {
  const Dataset data = TinyDataset();
  const std::vector<std::vector<double>> perfect = {{0.5, 0.5},
                                                    {0.75, 0.25}};
  EXPECT_DOUBLE_EQ(MseAvg(data, perfect), 0.0);
}

TEST(MseAvgTest, MatchesHandComputation) {
  const Dataset data = TinyDataset();
  const std::vector<std::vector<double>> est = {{0.6, 0.4}, {0.75, 0.25}};
  // t0: ((0.1)^2 + (0.1)^2)/2 = 0.01; t1: 0. Average: 0.005.
  EXPECT_NEAR(MseAvg(data, est), 0.005, 1e-12);
}

TEST(MseSeriesTest, PerStepValues) {
  const Dataset data = TinyDataset();
  const std::vector<std::vector<double>> est = {{0.5, 0.5}, {0.5, 0.5}};
  const std::vector<double> series = MseSeries(data, est);
  EXPECT_DOUBLE_EQ(series[0], 0.0);
  EXPECT_NEAR(series[1], 0.0625, 1e-12);  // ((0.25)^2+(0.25)^2)/2
}

TEST(MseAvgBucketedTest, BucketTruthAggregation) {
  // k = 4 -> b = 2 buckets: values {0,1} -> bucket 0, {2,3} -> bucket 1.
  Dataset data("b", 4, 4, 1);
  data.set_value(0, 0, 0);
  data.set_value(1, 0, 1);
  data.set_value(2, 0, 2);
  data.set_value(3, 0, 3);
  const Bucketizer bucketizer(4, 2);
  // Bucket truth: (0.5, 0.5); estimate (0.4, 0.6) -> MSE = 0.01.
  EXPECT_NEAR(MseAvgBucketed(data, bucketizer, {{0.4, 0.6}}), 0.01, 1e-12);
}

TEST(EpsAvgTest, Mean) {
  EXPECT_DOUBLE_EQ(EpsAvg({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(EpsAvg({5.0}), 5.0);
}

}  // namespace
}  // namespace loloha

#include "oracle/params.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/mathutil.h"

namespace loloha {
namespace {

class GrrParamsSweep : public testing::TestWithParam<std::tuple<double, uint32_t>> {};

TEST_P(GrrParamsSweep, SatisfiesLdpIdentity) {
  const auto [eps, k] = GetParam();
  const PerturbParams params = GrrParams(eps, k);
  EXPECT_TRUE(ValidParams(params));
  // p / q = e^eps is the LDP ratio of GRR.
  EXPECT_LT(RelDiff(params.p / params.q, std::exp(eps)), 1e-12);
  // p + (k-1) q = 1: probabilities sum to one.
  EXPECT_NEAR(params.p + (k - 1) * params.q, 1.0, 1e-12);
  // Inverse map recovers eps.
  EXPECT_NEAR(GrrEpsilon(params), eps, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GrrParamsSweep,
    testing::Combine(testing::Values(0.1, 0.5, 1.0, 2.0, 5.0),
                     testing::Values(2u, 3u, 10u, 360u, 1412u)));

class UeParamsSweep : public testing::TestWithParam<double> {};

TEST_P(UeParamsSweep, SueSatisfiesLdpIdentity) {
  const double eps = GetParam();
  const PerturbParams params = SueParams(eps);
  EXPECT_TRUE(ValidParams(params));
  EXPECT_NEAR(params.p + params.q, 1.0, 1e-12);  // symmetric
  EXPECT_NEAR(UeEpsilon(params), eps, 1e-10);
}

TEST_P(UeParamsSweep, OueSatisfiesLdpIdentity) {
  const double eps = GetParam();
  const PerturbParams params = OueParams(eps);
  EXPECT_TRUE(ValidParams(params));
  EXPECT_DOUBLE_EQ(params.p, 0.5);
  EXPECT_NEAR(UeEpsilon(params), eps, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Grid, UeParamsSweep,
                         testing::Values(0.1, 0.5, 1.0, 2.0, 3.0, 5.0));

TEST(LhParamsTest, MatchesGrrOverReducedDomain) {
  const PerturbParams lh = LhParams(1.5, 8);
  const PerturbParams grr = GrrParams(1.5, 8);
  EXPECT_DOUBLE_EQ(lh.p, grr.p);
  EXPECT_DOUBLE_EQ(lh.q, grr.q);
}

TEST(OlhRangeTest, RoundsExpPlusOne) {
  // e^1 + 1 = 3.718 -> 4; e^2 + 1 = 8.39 -> 8; e^0.5 + 1 = 2.65 -> 3.
  EXPECT_EQ(OlhRange(1.0), 4u);
  EXPECT_EQ(OlhRange(2.0), 8u);
  EXPECT_EQ(OlhRange(0.5), 3u);
}

TEST(OlhRangeTest, NeverBelowTwo) {
  EXPECT_GE(OlhRange(0.01), 2u);
  EXPECT_GE(OlhRange(0.1), 2u);
}

TEST(ValidParamsTest, RejectsDegenerateParams) {
  EXPECT_FALSE(ValidParams({0.5, 0.5}));   // p == q
  EXPECT_FALSE(ValidParams({0.4, 0.6}));   // p < q
  EXPECT_FALSE(ValidParams({1.0, 0.1}));   // p == 1
  EXPECT_FALSE(ValidParams({0.5, 0.0}));   // q == 0
  EXPECT_TRUE(ValidParams({0.75, 0.25}));
}

TEST(ParamsTest, HigherEpsilonMeansHigherP) {
  EXPECT_GT(GrrParams(2.0, 10).p, GrrParams(1.0, 10).p);
  EXPECT_GT(SueParams(2.0).p, SueParams(1.0).p);
  EXPECT_LT(OueParams(2.0).q, OueParams(1.0).q);
}

TEST(ParamsTest, LargerDomainDilutesGrr) {
  EXPECT_GT(GrrParams(1.0, 2).p, GrrParams(1.0, 100).p);
}

}  // namespace
}  // namespace loloha

#include "tests/stat_harness.h"

#include <cmath>

#include "sim/metrics.h"
#include "sim/runner.h"
#include "util/check.h"

namespace loloha::stat {

namespace {

// Reentrant log-gamma (same rationale as util/binomial.cc: glibc's
// lgamma() writes the global signgam).
double LogGamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__) || defined(__unix__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

// Series expansion of P(a, x), valid (fast) for x < a + 1.
double GammaPSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Lentz continued fraction for Q(a, x), valid (fast) for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  LOLOHA_CHECK(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  LOLOHA_CHECK(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double ChiSquarePValue(double statistic, double df) {
  LOLOHA_CHECK(df > 0.0);
  if (statistic <= 0.0) return 1.0;
  return RegularizedGammaQ(df / 2.0, statistic / 2.0);
}

double ChiSquareStatistic(const std::vector<uint64_t>& observed,
                          const std::vector<double>& expected_probs) {
  LOLOHA_CHECK(observed.size() == expected_probs.size());
  LOLOHA_CHECK(!observed.empty());
  uint64_t n = 0;
  for (const uint64_t count : observed) n += count;
  LOLOHA_CHECK(n > 0);
  double statistic = 0.0;
  for (size_t c = 0; c < observed.size(); ++c) {
    const double expected = static_cast<double>(n) * expected_probs[c];
    LOLOHA_CHECK_MSG(expected > 0.0, "expected count must be positive");
    const double diff = static_cast<double>(observed[c]) - expected;
    statistic += diff * diff / expected;
  }
  return statistic;
}

double BinomialZSquareStatistic(const std::vector<BinomialCell>& cells) {
  double statistic = 0.0;
  for (const BinomialCell& cell : cells) {
    LOLOHA_CHECK(cell.trials > 0);
    LOLOHA_CHECK(cell.p > 0.0 && cell.p < 1.0);
    const double mean = static_cast<double>(cell.trials) * cell.p;
    const double variance = mean * (1.0 - cell.p);
    const double diff = static_cast<double>(cell.successes) - mean;
    statistic += diff * diff / variance;
  }
  return statistic;
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double GaussianSample(Rng& rng) {
  // Box–Muller; u clamped away from 0 so the log stays finite.
  const double u = std::max(rng.UniformDouble(), 1e-300);
  const double v = rng.UniformDouble();
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u)) * std::cos(kTwoPi * v);
}

MseAcceptance MseAgainstTheory(ProtocolId id, const Dataset& data,
                               double eps_perm, double eps_first,
                               uint32_t runs, uint64_t base_seed) {
  LOLOHA_CHECK(runs >= 1);
  ProtocolSpec spec;
  spec.id = id;
  spec.eps_perm = eps_perm;
  spec.eps_first = eps_first;
  const auto runner = MakeRunner(spec.Canonicalized());
  MseAcceptance acceptance;
  for (uint32_t run = 0; run < runs; ++run) {
    const RunResult result =
        runner->Run(data, StreamSeed(base_seed, run, 0));
    acceptance.empirical_mse += MseAvg(data, result.estimates);
  }
  acceptance.empirical_mse /= static_cast<double>(runs);
  acceptance.predicted_mse = ProtocolApproxVariance(
      id, static_cast<double>(data.n()), data.k(), eps_perm, eps_first);
  acceptance.ratio = acceptance.empirical_mse / acceptance.predicted_mse;
  return acceptance;
}

}  // namespace loloha::stat

#include "util/rng.h"

#include <cmath>
#include <cstdint>
#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace loloha {
namespace {

TEST(SplitMix64Test, MatchesReferenceSequence) {
  // Reference values for seed 0 from the public-domain splitmix64.c.
  uint64_t state = 0;
  EXPECT_EQ(SplitMix64Next(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(SplitMix64Next(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(SplitMix64Next(state), 0x06c45d188009454fULL);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.UniformU64(), b.UniformU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformU64() == b.UniformU64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng rng(7);
  const uint64_t first = rng.UniformU64();
  rng.UniformU64();
  rng.Seed(7);
  EXPECT_EQ(rng.UniformU64(), first);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(3);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 360ULL, 1ULL << 20}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntIsUnbiased) {
  // Chi-squared check over 16 buckets; threshold ~ 3-sigma for df = 15.
  Rng rng(5);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.UniformInt(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  double chi2 = 0.0;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 45.0);  // P(chi2_15 > 45) ~ 8e-5
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.UniformDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  for (const double p : {0.1, 0.25, 0.5, 0.9}) {
    int ones = 0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) ones += rng.Bernoulli(p);
    const double sigma = std::sqrt(p * (1 - p) / kDraws);
    EXPECT_NEAR(static_cast<double>(ones) / kDraws, p, 5 * sigma)
        << "p=" << p;
  }
}

TEST(RngTest, BernoulliDegenerateCases) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, UniformIntExcludingNeverReturnsExcluded) {
  Rng rng(19);
  for (uint64_t bound : {2ULL, 3ULL, 10ULL}) {
    for (uint64_t excluded = 0; excluded < bound; ++excluded) {
      for (int i = 0; i < 500; ++i) {
        const uint64_t x = rng.UniformIntExcluding(bound, excluded);
        ASSERT_LT(x, bound);
        ASSERT_NE(x, excluded);
      }
    }
  }
}

TEST(RngTest, UniformIntExcludingUniformOverRest) {
  Rng rng(23);
  constexpr uint64_t kBound = 5;
  constexpr uint64_t kExcluded = 2;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.UniformIntExcluding(kBound, kExcluded)];
  }
  EXPECT_EQ(counts[kExcluded], 0);
  for (uint64_t v = 0; v < kBound; ++v) {
    if (v == kExcluded) continue;
    EXPECT_NEAR(counts[v] / static_cast<double>(kDraws), 0.25, 0.01);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // The child must not replay the parent's stream.
  Rng parent_copy(31);
  parent_copy.UniformU64();  // advance past the fork draw
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.UniformU64() == parent_copy.UniformU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace loloha

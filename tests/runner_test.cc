#include "sim/runner.h"

#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "sim/metrics.h"

namespace loloha {
namespace {

constexpr double kEps = 2.0;
constexpr double kEps1 = 1.0;

// Canonical spec for `id` at the suite's budgets (one-round protocols
// drop eps_first via Canonicalized, matching Parse).
ProtocolSpec SpecFor(ProtocolId id, double eps_perm = kEps,
                     double eps_first = kEps1) {
  ProtocolSpec spec;
  spec.id = id;
  spec.eps_perm = eps_perm;
  spec.eps_first = eps_first;
  return spec.Canonicalized();
}

class RunnerSweep : public testing::TestWithParam<ProtocolId> {};

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, RunnerSweep,
    testing::Values(ProtocolId::kRappor, ProtocolId::kLOsue,
                    ProtocolId::kLSoue, ProtocolId::kLOue, ProtocolId::kLGrr,
                    ProtocolId::kBiLoloha, ProtocolId::kOLoloha,
                    ProtocolId::kOneBitFlipPm, ProtocolId::kBBitFlipPm,
                    ProtocolId::kNaiveOlh),
    // Named param_info: INSTANTIATE_TEST_SUITE_P splices the lambda into
    // a gtest function whose own parameter is `info` (-Wshadow).
    [](const testing::TestParamInfo<ProtocolId>& param_info) {
      std::string name = ProtocolName(param_info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST_P(RunnerSweep, ProducesFullEstimateMatrix) {
  const Dataset data = GenerateSyn(400, 24, 6, 0.25, 1);
  const auto runner = MakeRunner(SpecFor(GetParam()));
  const RunResult result = runner->Run(data, 42);
  EXPECT_EQ(result.estimates.size(), data.tau());
  for (const auto& row : result.estimates) {
    EXPECT_EQ(row.size(), result.bins);
  }
  EXPECT_EQ(result.per_user_epsilon.size(), data.n());
  EXPECT_GT(result.comm_bits_per_report, 0.0);
}

TEST_P(RunnerSweep, DeterministicForSeed) {
  const Dataset data = GenerateSyn(200, 16, 4, 0.25, 2);
  const auto runner = MakeRunner(SpecFor(GetParam()));
  const RunResult a = runner->Run(data, 7);
  const RunResult b = runner->Run(data, 7);
  EXPECT_EQ(a.estimates, b.estimates);
  EXPECT_EQ(a.per_user_epsilon, b.per_user_epsilon);
}

TEST_P(RunnerSweep, EstimatesAreUsefullyAccurate) {
  // A coarse end-to-end sanity bound: with n = 4000 users and eps = 2 the
  // per-step MSE must be far below the trivial all-zeros predictor.
  const Dataset data = GenerateZipf(4000, 16, 4, 1.5, 0.2, 3);
  const auto runner = MakeRunner(SpecFor(GetParam()));
  const RunResult result = runner->Run(data, 11);
  if (result.bins != data.k()) GTEST_SKIP() << "bucketized estimates";
  const double mse = MseAvg(data, result.estimates);
  // The Zipf(1.5) truth has sum f^2 / k ~ 0.02; random noise around the
  // truth must stay well under that.
  EXPECT_LT(mse, 0.02) << ProtocolName(GetParam());
}

TEST_P(RunnerSweep, PrivacySpendPositiveAndBounded) {
  const Dataset data = GenerateSyn(300, 20, 8, 0.5, 4);
  const auto runner = MakeRunner(SpecFor(GetParam()));
  const RunResult result = runner->Run(data, 5);
  for (const double e : result.per_user_epsilon) {
    EXPECT_GE(e, kEps);
    EXPECT_LE(e, data.k() * kEps);
  }
}

TEST(RunnerTest, LolohaPrivacyBoundedByGEps) {
  const Dataset data = GenerateSyn(300, 20, 12, 0.5, 6);
  const RunResult bi =
      MakeRunner(SpecFor(ProtocolId::kBiLoloha))->Run(data, 7);
  for (const double e : bi.per_user_epsilon) {
    EXPECT_LE(e, 2 * kEps);
  }
}

TEST(RunnerTest, OneBitFlipPrivacyBoundedByTwoEps) {
  const Dataset data = GenerateSyn(300, 20, 12, 0.5, 8);
  const RunResult result =
      MakeRunner(SpecFor(ProtocolId::kOneBitFlipPm))->Run(data, 9);
  for (const double e : result.per_user_epsilon) {
    EXPECT_LE(e, 2 * kEps);
  }
}

TEST(RunnerTest, DBitFlipBucketDivisor) {
  const Dataset data = GenerateSyn(200, 40, 3, 0.25, 10);
  ProtocolSpec spec = SpecFor(ProtocolId::kBBitFlipPm);
  spec.bucket_divisor = 4;
  const RunResult result = MakeRunner(spec)->Run(data, 11);
  EXPECT_EQ(result.bins, 10u);
  EXPECT_DOUBLE_EQ(result.comm_bits_per_report, 10.0);  // d = b
}

TEST(RunnerTest, Figure3ProtocolOrder) {
  EXPECT_EQ(Figure3Protocols(true).size(), 7u);
  EXPECT_EQ(Figure3Protocols(false).size(), 5u);
}

TEST(NaiveOlhRunnerTest, AccurateButBudgetExplodes) {
  const Dataset data = GenerateZipf(3000, 16, 6, 1.5, 0.2, 12);
  const auto runner = MakeRunner(SpecFor(ProtocolId::kNaiveOlh));
  const RunResult result = runner->Run(data, 13);
  EXPECT_EQ(result.protocol, "Naive-OLH");
  EXPECT_EQ(result.estimates.size(), data.tau());
  EXPECT_LT(MseAvg(data, result.estimates), 0.02);
  // Sequential composition: tau * eps per user, no memoization cap.
  for (const double e : result.per_user_epsilon) {
    EXPECT_DOUBLE_EQ(e, data.tau() * kEps);
  }
}

TEST(NaiveOlhRunnerTest, MemoizationBeatsNaiveOnPrivacyAtSimilarUtility) {
  const Dataset data = GenerateSyn(2000, 24, 10, 0.25, 14);
  const RunResult naive = MakeRunner(SpecFor(ProtocolId::kNaiveOlh))->Run(data, 15);
  const RunResult bi =
      MakeRunner(SpecFor(ProtocolId::kBiLoloha))->Run(data, 16);
  // Naive budget: tau * eps = 20 eps; BiLOLOHA: at most g = 2 memos, so at
  // most 2 eps per user — a worst-case ratio of exactly tau / g = 5.
  for (uint32_t u = 0; u < data.n(); ++u) {
    EXPECT_GE(naive.per_user_epsilon[u], 5.0 * bi.per_user_epsilon[u]);
  }
  // Utility stays in the same ballpark (naive is actually better per
  // step since OLH at full eps beats the chained mechanism).
  EXPECT_LT(MseAvg(data, naive.estimates),
            MseAvg(data, bi.estimates) * 2.0);
}

TEST(RunnerTest, NamesMatchProtocolIds) {
  EXPECT_EQ(MakeRunner(SpecFor(ProtocolId::kRappor))->name(), "RAPPOR");
  EXPECT_EQ(MakeRunner(SpecFor(ProtocolId::kBiLoloha))->name(),
            "BiLOLOHA");
  EXPECT_EQ(MakeRunner(SpecFor(ProtocolId::kBBitFlipPm))->name(),
            "bBitFlipPM");
}

}  // namespace
}  // namespace loloha

// Shared loopback plumbing for the network-path test suites
// (ingest_server_test, crash_recovery_test): a blocking client speaking
// docs/WIRE_PROTOCOL.md, a server-on-a-thread fixture, and the fixed
// pre-encoded traffic generator both suites compare against direct
// in-process ingestion. Header-only; gtest assertions inside, so this
// is for tests/ — bench binaries carry their own CHECK-based copy.

#ifndef LOLOHA_TESTS_NET_TEST_UTIL_H_
#define LOLOHA_TESTS_NET_TEST_UTIL_H_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/loloha.h"
#include "core/loloha_params.h"
#include "longitudinal/dbitflip.h"
#include "server/net/framing.h"
#include "server/net/ingest_server.h"
#include "sim/protocol_spec.h"
#include "util/rng.h"
#include "wire/encoding.h"

namespace loloha {
namespace net_test {

// ---------------------------------------------------------------------------
// Blocking loopback client helpers.
// ---------------------------------------------------------------------------

inline int ConnectLoopback(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return -1;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

inline bool WriteAll(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

inline bool ReadExact(int fd, char* buf, size_t size) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n = read(fd, buf + off, size - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

inline uint32_t HeaderPayloadLen(const char* header) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(header[i])) << (8 * i);
  }
  return v;
}

inline bool ReadFrame(int fd, Frame* frame) {
  char header[kFrameHeaderBytes];
  if (!ReadExact(fd, header, sizeof(header))) return false;
  const uint32_t payload_len = HeaderPayloadLen(header);
  std::string payload(payload_len, '\0');
  if (payload_len > 0 && !ReadExact(fd, payload.data(), payload_len)) {
    return false;
  }
  FrameParser parser;
  parser.Feed(header, sizeof(header));
  parser.Feed(payload.data(), payload.size());
  return parser.Next(frame) == FrameStatus::kFrame;
}

// Reads until the peer closes — the stats endpoint's one-shot contract.
inline std::string ReadUntilEof(int fd) {
  std::string text;
  char buf[4096];
  for (;;) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return text;
    text.append(buf, static_cast<size_t>(n));
  }
}

// A server running on its own thread, stopped and joined on scope exit.
class ServerFixture {
 public:
  ServerFixture(const ProtocolSpec& spec, uint32_t k,
                const IngestServerConfig& config)
      : server_(spec, k, config) {
    start_ok_ = server_.Start();
    if (start_ok_) thread_ = std::thread([this] { server_.Run(); });
  }
  ~ServerFixture() { Join(); }

  // Idempotent; after the first call the server is fully drained.
  void Join() {
    if (thread_.joinable()) {
      server_.Stop();
      thread_.join();
    }
  }

  // Waits for the server to exit on its own (a kShutdown frame) instead
  // of forcing Stop() — Stop() can win the race against frames still
  // sitting unread in kernel socket buffers.
  void AwaitExit() {
    if (thread_.joinable()) thread_.join();
  }

  bool start_ok() const { return start_ok_; }
  IngestServer& server() { return server_; }

 private:
  IngestServer server_;
  bool start_ok_ = false;
  std::thread thread_;
};

// ---------------------------------------------------------------------------
// Traffic (pre-encoded, fixed seed).
// ---------------------------------------------------------------------------

struct Traffic {
  std::vector<Message> hellos;
  std::vector<std::vector<Message>> steps;
};

inline Traffic MakeTraffic(const ProtocolSpec& spec, uint64_t seed,
                           uint32_t users, uint32_t domain, uint32_t steps) {
  Rng rng(seed);
  Traffic traffic;
  traffic.steps.resize(steps);
  if (spec.IsLolohaVariant()) {
    const LolohaParams params = LolohaParamsForSpec(spec, domain);
    std::vector<LolohaClient> clients;
    for (uint32_t u = 0; u < users; ++u) {
      clients.emplace_back(params, rng);
      traffic.hellos.push_back(
          Message{u, EncodeLolohaHello(clients[u].hash())});
    }
    for (uint32_t t = 0; t < steps; ++t) {
      for (uint32_t u = 0; u < users; ++u) {
        traffic.steps[t].push_back(Message{
            u, EncodeLolohaReport(clients[u].Report((u + t) % domain, rng))});
      }
    }
  } else {
    const Bucketizer bucketizer(domain, spec.buckets);
    std::vector<DBitFlipClient> clients;
    for (uint32_t u = 0; u < users; ++u) {
      clients.emplace_back(bucketizer, spec.d, spec.eps_perm, rng);
      traffic.hellos.push_back(
          Message{u, EncodeDBitHello(clients[u].sampled())});
    }
    for (uint32_t t = 0; t < steps; ++t) {
      for (uint32_t u = 0; u < users; ++u) {
        traffic.steps[t].push_back(Message{
            u,
            EncodeDBitReport(clients[u].Report((u + t) % domain, rng).bits)});
      }
    }
  }
  return traffic;
}

// Sends messages[u] over connection u % conns.size(), fences each
// connection with a barrier, and waits for every ack.
inline void SendPhase(const std::vector<int>& conns,
                      const std::vector<Message>& messages) {
  for (size_t c = 0; c < conns.size(); ++c) {
    std::string buf;
    for (size_t u = c; u < messages.size(); u += conns.size()) {
      AppendDataFrame(messages[u].user_id, messages[u].bytes, &buf);
    }
    AppendControlFrame(FrameType::kBarrier, &buf);
    ASSERT_TRUE(WriteAll(conns[c], buf));
  }
  for (const int fd : conns) {
    Frame frame;
    ASSERT_TRUE(ReadFrame(fd, &frame));
    ASSERT_EQ(frame.type, FrameType::kBarrierAck);
  }
}

}  // namespace net_test
}  // namespace loloha

#endif  // LOLOHA_TESTS_NET_TEST_UTIL_H_

#include "util/mathutil.h"

#include <cmath>

#include <gtest/gtest.h>

namespace loloha {
namespace {

TEST(RoundToNearestTest, Basics) {
  EXPECT_EQ(RoundToNearest(0.0), 0);
  EXPECT_EQ(RoundToNearest(1.4), 1);
  EXPECT_EQ(RoundToNearest(1.5), 2);
  EXPECT_EQ(RoundToNearest(2.5), 3);  // halves away from zero
  EXPECT_EQ(RoundToNearest(-1.5), -2);
  EXPECT_EQ(RoundToNearest(-1.4), -1);
}

TEST(KahanSumTest, ExactForSmallSets) {
  KahanSum sum;
  sum.Add(1.0);
  sum.Add(2.0);
  sum.Add(3.0);
  EXPECT_DOUBLE_EQ(sum.value(), 6.0);
}

TEST(KahanSumTest, CompensatesCancellation) {
  // Summing 1e16 + many tiny values loses the tiny values under naive
  // accumulation but not under Kahan.
  KahanSum sum;
  sum.Add(1e16);
  for (int i = 0; i < 10000; ++i) sum.Add(1.0);
  sum.Add(-1e16);
  EXPECT_DOUBLE_EQ(sum.value(), 10000.0);
}

TEST(BisectIncreasingTest, FindsRootOfMonotoneFunction) {
  const double x = BisectIncreasing(
      [](double v) { return v * v * v; }, 8.0, 0.0, 10.0);
  EXPECT_NEAR(x, 2.0, 1e-9);
}

TEST(BisectIncreasingTest, FindsExponentialInverse) {
  const double x = BisectIncreasing(
      [](double v) { return std::exp(v); }, 10.0, -5.0, 5.0);
  EXPECT_NEAR(x, std::log(10.0), 1e-9);
}

TEST(RelDiffTest, SymmetricAndScaled) {
  EXPECT_DOUBLE_EQ(RelDiff(1.0, 1.0), 0.0);
  EXPECT_NEAR(RelDiff(100.0, 101.0), 1.0 / 101.0, 1e-12);
  EXPECT_DOUBLE_EQ(RelDiff(2.0, 1.0), RelDiff(1.0, 2.0));
}

TEST(RelDiffTest, HandlesZeros) {
  EXPECT_DOUBLE_EQ(RelDiff(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RelDiff(0.0, 1.0), 1.0);
}

}  // namespace
}  // namespace loloha

// Distributed execution: slice scheduling (SliceSpec), partial
// serialization round-trips, the merge tool's byte-identity property
// (merging {1,2,3,7} slices of a plan reproduces the single-process
// artifacts bit for bit at any thread count), and the all-or-none
// refusal of incomplete or inconsistent slice sets.

#include "sim/slice.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "util/thread_pool.h"

namespace loloha {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(static_cast<bool>(out)) << path;
  out << bytes;
}

// Fresh scratch directory per test (tests may run concurrently; key the
// directory on the full test name).
std::string ScratchDir() {
  const auto* info = testing::UnitTest::GetInstance()->current_test_info();
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "loloha_slice_merge" /
      (std::string(info->test_suite_name()) + "." + info->name());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

ExperimentPlan ParsePlanOrDie(const std::string& text) {
  ExperimentPlan plan;
  std::string error;
  EXPECT_TRUE(ParseExperimentPlan(text, &plan, &error)) << error;
  return plan;
}

ExperimentPlan LoadCheckedInPlan(const std::string& file) {
  ExperimentPlan plan;
  std::string error;
  EXPECT_TRUE(LoadExperimentPlan(
      std::string(LOLOHA_SOURCE_DIR) + "/plans/" + file, &plan, &error))
      << error;
  return plan;
}

// A deliberately tiny mse plan for serialization and refusal tests —
// milliseconds to run, 8 Monte-Carlo cells.
ExperimentPlan TinyMsePlan(const std::string& dir) {
  ExperimentPlan plan = ParsePlanOrDie(
      "[experiment]\n"
      "name = tiny_mse\n"
      "kind = mse\n"
      "datasets = syn\n"
      "protocols = ololoha; l-osue\n"
      "[grid]\n"
      "eps_perm = 1, 2\n"
      "alpha = 0.5\n"
      "[run]\n"
      "runs = 2\n"
      "threads = 1\n"
      "scale = 100\n"
      "seed = 7\n"
      "quick = true\n");
  plan.csv = dir + "/tiny.csv";
  plan.json = dir + "/tiny.json";
  return plan;
}

void RunPlanOrDie(const ExperimentPlan& plan, uint32_t threads = 1) {
  ThreadPool pool(threads);
  std::string error;
  ASSERT_TRUE(RunExperimentPlan(plan, &pool, &error, /*log=*/nullptr))
      << error;
}

// Runs every slice of `plan` (outputs under `dir`/part.*) and returns
// the produced partial CSV paths in index order.
std::vector<std::string> RunSlices(ExperimentPlan plan, uint32_t count,
                                   const std::string& dir,
                                   uint32_t threads = 1) {
  plan.csv = dir + "/part.csv";
  plan.json = dir + "/part.json";
  std::vector<std::string> parts;
  for (uint32_t index = 0; index < count; ++index) {
    plan.slice = SliceSpec{index, count};
    RunPlanOrDie(plan, threads);
    parts.push_back(SlicePartialPath(plan.csv, plan.slice));
  }
  return parts;
}

std::vector<SlicePartial> LoadPartsOrDie(
    const std::vector<std::string>& paths) {
  std::vector<SlicePartial> parts;
  for (const std::string& path : paths) {
    SlicePartial partial;
    std::string error;
    EXPECT_TRUE(LoadSlicePartial(path, &partial, &error)) << error;
    parts.push_back(std::move(partial));
  }
  return parts;
}

// Merges `parts` into `<dir>/merged.{csv,json}` and expects success.
void MergeOrDie(ExperimentPlan plan, const std::vector<SlicePartial>& parts,
                const std::string& dir) {
  std::vector<SliceUnit> units;
  std::string error;
  ASSERT_TRUE(CombineSlicePartials(parts, &units, &error)) << error;
  plan.slice = SliceSpec{};
  plan.csv = dir + "/merged.csv";
  plan.json = dir + "/merged.json";
  const std::vector<std::unique_ptr<ResultSink>> sinks = MakePlanSinks(plan);
  std::vector<ResultSink*> borrowed;
  for (const auto& sink : sinks) borrowed.push_back(sink.get());
  ASSERT_TRUE(MergeExperimentSlices(plan, units, borrowed, &error,
                                    /*log=*/nullptr))
      << error;
}

// ---------------------------------------------------------------------------
// SliceSpec.
// ---------------------------------------------------------------------------

TEST(SliceSpec, ParseAcceptsValidSpecs) {
  SliceSpec slice;
  ASSERT_TRUE(ParseSliceSpec("0/4", &slice));
  EXPECT_EQ(slice.index, 0u);
  EXPECT_EQ(slice.count, 4u);
  ASSERT_TRUE(ParseSliceSpec("3/4", &slice));
  EXPECT_EQ(slice.index, 3u);
  ASSERT_TRUE(ParseSliceSpec("0/1", &slice));  // trivial slice is valid
  EXPECT_TRUE(slice.active());
}

TEST(SliceSpec, ParseRejectsMalformedSpecs) {
  SliceSpec slice;
  std::string error;
  for (const char* bad : {"", "3", "4/4", "5/4", "-1/4", "a/b", "1/0",
                          "1/", "/4", "1/4/2", "1 /4"}) {
    EXPECT_FALSE(ParseSliceSpec(bad, &slice, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(SliceSpec, OwnershipPartitionsTheGrid) {
  const uint64_t total = 97;  // prime: uneven split
  for (uint32_t count : {1u, 2u, 3u, 7u}) {
    uint64_t owned_sum = 0;
    for (uint32_t index = 0; index < count; ++index) {
      const SliceSpec slice{index, count};
      uint64_t owned = 0;
      for (uint64_t unit = 0; unit < total; ++unit) {
        owned += slice.Owns(unit) ? 1 : 0;
      }
      EXPECT_EQ(owned, slice.OwnedCount(total));
      owned_sum += owned;
    }
    EXPECT_EQ(owned_sum, total);  // every unit owned exactly once
  }
}

TEST(SliceSpec, InactiveSliceOwnsEverything) {
  const SliceSpec off;
  EXPECT_FALSE(off.active());
  EXPECT_TRUE(off.Owns(12345));
  EXPECT_EQ(off.OwnedCount(42), 42u);
}

TEST(SliceSpec, TokenMatchesFileNameScheme) {
  EXPECT_EQ(SliceSpecToken(SliceSpec{2, 5}), "2-of-5");
  EXPECT_EQ(SlicePartialPath("results/fig3.csv", SliceSpec{0, 3}),
            "results/fig3.slice-0-of-3.csv");
  EXPECT_EQ(SlicePartialPath("out.json", SliceSpec{1, 2}),
            "out.slice-1-of-2.json");
}

// ---------------------------------------------------------------------------
// Plan grammar and fingerprint.
// ---------------------------------------------------------------------------

TEST(SlicePlanGrammar, RunSectionSliceKeyRoundTrips) {
  ExperimentPlan plan = TinyMsePlan("/tmp");
  EXPECT_FALSE(plan.slice.active());
  EXPECT_EQ(plan.ToString().find("slice ="), std::string::npos);

  plan.slice = SliceSpec{1, 3};
  const std::string text = plan.ToString();
  EXPECT_NE(text.find("slice = 1/3"), std::string::npos);
  const ExperimentPlan reparsed = ParsePlanOrDie(text);
  EXPECT_EQ(reparsed.slice, (SliceSpec{1, 3}));
}

TEST(SlicePlanGrammar, BadSliceLineIsRejectedWithLineNumber) {
  ExperimentPlan plan;
  std::string error;
  EXPECT_FALSE(ParseExperimentPlan(
      "[experiment]\nname = x\nkind = mse\ndatasets = syn\n"
      "protocols = ololoha\n[grid]\neps_perm = 1\nalpha = 0.5\n"
      "[run]\nslice = 9/3\n",
      &plan, &error));
  EXPECT_NE(error.find("10"), std::string::npos) << error;  // line number
}

TEST(SlicePlanGrammar, ValidateRejectsOutOfRangeSlice) {
  ExperimentPlan plan = TinyMsePlan("/tmp");
  plan.slice.index = 5;
  plan.slice.count = 3;
  std::string error;
  EXPECT_FALSE(plan.Validate(&error));
}

TEST(SliceFingerprint, NeutralizesThreadsAndSlice) {
  ExperimentPlan plan = TinyMsePlan("/tmp");
  plan.threads = 8;
  plan.slice = SliceSpec{2, 4};
  const ExperimentPlan fp = SliceFingerprintPlan(plan);
  EXPECT_EQ(fp.threads, 1u);
  EXPECT_FALSE(fp.slice.active());

  ExperimentPlan other = plan;
  other.threads = 1;
  other.slice = SliceSpec{0, 7};
  EXPECT_EQ(SliceFingerprintPlan(other).ToString(), fp.ToString());

  other.seed = plan.seed + 1;  // a real difference must show
  EXPECT_NE(SliceFingerprintPlan(other).ToString(), fp.ToString());
}

TEST(SliceFingerprint, CountPlanUnitsMatchesPartialStamp) {
  const std::string dir = ScratchDir();
  const ExperimentPlan plan = TinyMsePlan(dir);
  const auto parts = LoadPartsOrDie(RunSlices(plan, 2, dir));
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].units_total, CountPlanUnits(plan));
  EXPECT_EQ(parts[0].units.size() + parts[1].units.size(),
            CountPlanUnits(plan));
  // The stamp is the fingerprint of the plan as the slices ran it —
  // RunSlices redirects outputs to part.*, and output paths are part of
  // the identity (they are where loloha_merge writes by default).
  ExperimentPlan as_run = plan;
  as_run.csv = dir + "/part.csv";
  as_run.json = dir + "/part.json";
  EXPECT_EQ(parts[0].plan_text, SliceFingerprintPlan(as_run).ToString());
}

// ---------------------------------------------------------------------------
// Provenance: one serializer for both sinks; slice stamps only when
// sliced.
// ---------------------------------------------------------------------------

TEST(SliceProvenance, InactiveSliceCarriesNoSliceKeys) {
  ArtifactMeta meta;
  meta.plan_name = "p";
  meta.kind = "mse";
  meta.table = "syn";
  meta.seed = 7;
  meta.git_describe = "deadbeef";
  const std::string body = ProvenanceJsonBody(meta);
  EXPECT_EQ(body.find("slice_index"), std::string::npos) << body;
  EXPECT_EQ(body.find("plan_text"), std::string::npos) << body;

  meta.slice = SliceSpec{1, 3};
  meta.units = 4;
  meta.units_total = 12;
  meta.plan_text = "[experiment]\n";
  const std::string sliced = ProvenanceJsonBody(meta);
  EXPECT_NE(sliced.find("\"slice_index\": 1"), std::string::npos) << sliced;
  EXPECT_NE(sliced.find("\"slice_count\": 3"), std::string::npos) << sliced;
  EXPECT_NE(sliced.find("\"units_total\": 12"), std::string::npos) << sliced;
}

TEST(SliceProvenance, CsvSidecarAndJsonHeaderShareTheStamp) {
  const std::string dir = ScratchDir();
  ExperimentPlan plan = TinyMsePlan(dir);
  plan.slice = SliceSpec{0, 2};
  RunPlanOrDie(plan);
  const std::string sidecar =
      ReadFileBytes(SlicePartialPath(plan.csv, plan.slice) + ".meta.json");
  const std::string json =
      ReadFileBytes(SlicePartialPath(plan.json, plan.slice));
  // The sidecar is the shared provenance body closed with "}"; the JSON
  // partial is the same body plus units_data — so the sidecar minus its
  // closing brace must be a prefix of the JSON document.
  const std::string body = sidecar.substr(0, sidecar.find_last_of('}'));
  ASSERT_FALSE(body.empty());
  EXPECT_EQ(json.compare(0, body.size(), body), 0)
      << "sidecar and JSON provenance diverge";
}

TEST(SliceSinks, BaseSinkRefusesPartialsLoudly) {
  class TableOnlySink : public ResultSink {
   public:
    bool Write(const TextTable&, const ArtifactMeta&) override {
      return true;
    }
  };
  TableOnlySink table_only;
  EXPECT_FALSE(table_only.WritePartial(SlicePartial{}, ArtifactMeta{}));
  NullSink null;
  EXPECT_TRUE(null.WritePartial(SlicePartial{}, ArtifactMeta{}));
}

// ---------------------------------------------------------------------------
// Partial serialization round-trips.
// ---------------------------------------------------------------------------

TEST(SlicePartialRoundTrip, CsvAndJsonAgree) {
  const std::string dir = ScratchDir();
  const ExperimentPlan plan = TinyMsePlan(dir);
  const auto csv_paths = RunSlices(plan, 2, dir);
  std::vector<std::string> json_paths;
  for (const std::string& path : csv_paths) {
    std::string json = path;
    json.replace(json.size() - 4, 4, ".json");
    json_paths.push_back(json);
  }
  const auto from_csv = LoadPartsOrDie(csv_paths);
  const auto from_json = LoadPartsOrDie(json_paths);
  ASSERT_EQ(from_csv.size(), from_json.size());
  for (size_t i = 0; i < from_csv.size(); ++i) {
    EXPECT_EQ(from_csv[i], from_json[i]) << "slice " << i;
  }
}

TEST(SlicePartialRoundTrip, RowUnitsSurviveCsvEscaping) {
  SlicePartial partial;
  partial.plan_name = "quote\"comma,plan";
  partial.kind = "variance";
  partial.seed = 3;
  partial.git_describe = "g";
  partial.slice = SliceSpec{0, 1};
  partial.units_total = 2;
  partial.plan_text = "text\nwith\nnewlines";
  SliceUnit unit;
  unit.type = SliceUnit::Type::kRow;
  unit.index = 0;
  unit.row = {"plain", "with,comma", "with\"quote", "with\nnewline", ""};
  partial.units.push_back(unit);
  unit.index = 1;
  unit.row = {"1.5", "2.25e-07"};
  partial.units.push_back(unit);

  ArtifactMeta meta;
  meta.plan_name = partial.plan_name;
  meta.kind = partial.kind;
  meta.table = partial.plan_name;
  meta.seed = partial.seed;
  meta.git_describe = partial.git_describe;
  meta.slice = partial.slice;
  meta.units = partial.units.size();
  meta.units_total = partial.units_total;
  meta.plan_text = partial.plan_text;

  SlicePartial reread;
  std::string error;
  ASSERT_TRUE(ParseSlicePartialCsv(SlicePartialCsv(partial),
                                   ProvenanceJsonBody(meta) + "}\n", "p.csv",
                                   "p.csv.meta.json", &reread, &error))
      << error;
  EXPECT_EQ(reread, partial);
}

TEST(SlicePartialRoundTrip, CellBitsAreExact) {
  const std::string dir = ScratchDir();
  const ExperimentPlan plan = TinyMsePlan(dir);
  const auto parts = LoadPartsOrDie(RunSlices(plan, 1, dir));
  ASSERT_EQ(parts.size(), 1u);
  ASSERT_FALSE(parts[0].units.empty());
  for (const SliceUnit& unit : parts[0].units) {
    EXPECT_EQ(unit.type, SliceUnit::Type::kCell);
  }
}

// ---------------------------------------------------------------------------
// The merge identity: bytes equal a single-process run.
// ---------------------------------------------------------------------------

class SliceMergeIdentity : public testing::TestWithParam<
                               std::tuple<uint32_t, uint32_t>> {};

TEST_P(SliceMergeIdentity, MergedBytesEqualSingleProcessRun) {
  const auto [slices, threads] = GetParam();
  const std::string dir = ScratchDir();

  ExperimentPlan plan = LoadCheckedInPlan("fig3_syn.plan");
  plan.quick = true;
  plan.csv = dir + "/single.csv";
  plan.json = dir + "/single.json";
  RunPlanOrDie(plan, threads);

  const auto parts = LoadPartsOrDie(RunSlices(plan, slices, dir, threads));
  MergeOrDie(plan, parts, dir);

  EXPECT_EQ(ReadFileBytes(dir + "/merged.csv"),
            ReadFileBytes(dir + "/single.csv"));
  EXPECT_EQ(ReadFileBytes(dir + "/merged.json"),
            ReadFileBytes(dir + "/single.json"));
  EXPECT_EQ(ReadFileBytes(dir + "/merged.csv.meta.json"),
            ReadFileBytes(dir + "/single.csv.meta.json"));
}

INSTANTIATE_TEST_SUITE_P(
    SlicesByThreads, SliceMergeIdentity,
    testing::Combine(testing::Values(1u, 2u, 3u, 7u),
                     testing::Values(1u, 4u)),
    [](const testing::TestParamInfo<SliceMergeIdentity::ParamType>& param) {
      return "slices" + std::to_string(std::get<0>(param.param)) +
             "_threads" + std::to_string(std::get<1>(param.param));
    });

// Row-unit kinds (everything but mse) go through the same identity gate.
class SliceMergeKinds : public testing::TestWithParam<const char*> {};

TEST_P(SliceMergeKinds, MergedBytesEqualSingleProcessRun) {
  const std::string dir = ScratchDir();
  ExperimentPlan plan = LoadCheckedInPlan(GetParam());
  plan.quick = true;
  plan.csv = dir + "/single.csv";
  plan.json = dir + "/single.json";
  RunPlanOrDie(plan);

  const auto parts = LoadPartsOrDie(RunSlices(plan, 2, dir));
  MergeOrDie(plan, parts, dir);
  EXPECT_EQ(ReadFileBytes(dir + "/merged.csv"),
            ReadFileBytes(dir + "/single.csv"));
  EXPECT_EQ(ReadFileBytes(dir + "/merged.json"),
            ReadFileBytes(dir + "/single.json"));
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, SliceMergeKinds,
    testing::Values("fig1_optimal_g.plan", "fig2_variance.plan",
                    "fig4_privacy_loss.plan", "table1_comparison.plan",
                    "table2_detection.plan"),
    [](const testing::TestParamInfo<const char*>& param) {
      std::string name = param.param;
      return name.substr(0, name.find('.'));
    });

// ---------------------------------------------------------------------------
// Adversarial slice sets: refused all-or-none, naming the culprit.
// ---------------------------------------------------------------------------

class SliceMergeRefusals : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = ScratchDir();
    plan_ = TinyMsePlan(dir_);
    paths_ = RunSlices(plan_, 3, dir_);
    parts_ = LoadPartsOrDie(paths_);
  }

  std::string dir_;
  ExperimentPlan plan_;
  std::vector<std::string> paths_;
  std::vector<SlicePartial> parts_;
};

TEST_F(SliceMergeRefusals, MissingSliceIsRefused) {
  parts_.erase(parts_.begin() + 1);
  std::vector<SliceUnit> units;
  std::string error;
  EXPECT_FALSE(CombineSlicePartials(parts_, &units, &error));
  EXPECT_NE(error.find("missing index 1"), std::string::npos) << error;
}

TEST_F(SliceMergeRefusals, DuplicateSliceIsRefusedNamingBothSources) {
  parts_.push_back(parts_[0]);
  parts_.back().source = "copy-of-slice-0";
  std::vector<SliceUnit> units;
  std::string error;
  EXPECT_FALSE(CombineSlicePartials(parts_, &units, &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
  EXPECT_NE(error.find("copy-of-slice-0"), std::string::npos) << error;
}

TEST_F(SliceMergeRefusals, WrongSeedIsRefused) {
  ExperimentPlan other = plan_;
  other.seed = plan_.seed + 1;
  const std::string other_dir = dir_ + "/other";
  std::filesystem::create_directories(other_dir);
  auto other_parts = LoadPartsOrDie(RunSlices(other, 3, other_dir));
  parts_[1] = other_parts[1];
  std::vector<SliceUnit> units;
  std::string error;
  EXPECT_FALSE(CombineSlicePartials(parts_, &units, &error));
  EXPECT_NE(error.find("seed"), std::string::npos) << error;
}

TEST_F(SliceMergeRefusals, WrongPlanNameIsRefused) {
  ExperimentPlan other = plan_;
  other.name = "tiny_mse_b";
  const std::string other_dir = dir_ + "/other";
  std::filesystem::create_directories(other_dir);
  auto other_parts = LoadPartsOrDie(RunSlices(other, 3, other_dir));
  parts_[2] = other_parts[2];
  std::vector<SliceUnit> units;
  std::string error;
  EXPECT_FALSE(CombineSlicePartials(parts_, &units, &error));
  EXPECT_NE(error.find("tiny_mse_b"), std::string::npos) << error;
}

TEST_F(SliceMergeRefusals, DifferentSliceCountsAreRefused) {
  auto two_parts = LoadPartsOrDie(RunSlices(plan_, 2, dir_ + "/two"));
  parts_[0] = two_parts[0];
  std::vector<SliceUnit> units;
  std::string error;
  EXPECT_FALSE(CombineSlicePartials(parts_, &units, &error));
  EXPECT_NE(error.find("slice count"), std::string::npos) << error;
}

TEST_F(SliceMergeRefusals, FingerprintMismatchIsRefused) {
  // Same plan, different effective runs — a classic distributed mistake
  // (one host ran with --runs=4). The fingerprint must catch it even
  // though name/kind/seed all match.
  ExperimentPlan other = plan_;
  other.runs = plan_.runs * 2;
  auto other_parts = LoadPartsOrDie(RunSlices(other, 3, dir_ + "/other"));
  parts_[1] = other_parts[1];
  std::vector<SliceUnit> units;
  std::string error;
  EXPECT_FALSE(CombineSlicePartials(parts_, &units, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(SliceMergeRefusals, TruncatedPartialIsRefusedWithLineNumber) {
  std::string bytes = ReadFileBytes(paths_[0]);
  // Drop the "end,<n>" trailer line (and the unit line above it, so the
  // file still ends in a newline).
  const size_t end_line = bytes.rfind("end,");
  ASSERT_NE(end_line, std::string::npos);
  bytes.resize(end_line);
  WriteFileBytes(paths_[0], bytes);
  SlicePartial partial;
  std::string error;
  EXPECT_FALSE(LoadSlicePartial(paths_[0], &partial, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
  EXPECT_NE(error.find(paths_[0]), std::string::npos) << error;
}

TEST_F(SliceMergeRefusals, EditedUnitCountIsRefused) {
  std::string bytes = ReadFileBytes(paths_[0]);
  const size_t end_line = bytes.rfind("end,");
  ASSERT_NE(end_line, std::string::npos);
  bytes.resize(end_line);
  bytes += "end,9999\n";
  WriteFileBytes(paths_[0], bytes);
  SlicePartial partial;
  std::string error;
  EXPECT_FALSE(LoadSlicePartial(paths_[0], &partial, &error));
  EXPECT_NE(error.find("truncated or edited"), std::string::npos) << error;
}

TEST_F(SliceMergeRefusals, MissingSidecarIsRefusedNamingIt) {
  std::filesystem::remove(paths_[0] + ".meta.json");
  SlicePartial partial;
  std::string error;
  EXPECT_FALSE(LoadSlicePartial(paths_[0], &partial, &error));
  EXPECT_NE(error.find(".meta.json"), std::string::npos) << error;
}

TEST_F(SliceMergeRefusals, MalformedSidecarErrorIsLineNumbered) {
  const std::string sidecar = paths_[0] + ".meta.json";
  std::string bytes = ReadFileBytes(sidecar);
  const size_t seed = bytes.find("\"seed\"");
  ASSERT_NE(seed, std::string::npos);
  bytes.insert(seed, "\n\ngarbage ");
  WriteFileBytes(sidecar, bytes);
  SlicePartial partial;
  std::string error;
  EXPECT_FALSE(LoadSlicePartial(paths_[0], &partial, &error));
  // "<sidecar>:<line>: ..." — the line number of the mangled region.
  EXPECT_NE(error.find(sidecar + ":3"), std::string::npos) << error;
}

TEST_F(SliceMergeRefusals, MergeRefusesActiveSliceInPlan) {
  std::vector<SliceUnit> units;
  std::string error;
  ASSERT_TRUE(CombineSlicePartials(parts_, &units, &error)) << error;
  ExperimentPlan sliced = plan_;
  sliced.slice = SliceSpec{0, 3};
  NullSink sink;
  ResultSink* borrowed[] = {&sink};
  EXPECT_FALSE(
      MergeExperimentSlices(sliced, units, borrowed, &error, nullptr));
  EXPECT_NE(error.find("slice"), std::string::npos) << error;
}

TEST_F(SliceMergeRefusals, MergeRefusesWrongUnitCount) {
  std::vector<SliceUnit> units;
  std::string error;
  ASSERT_TRUE(CombineSlicePartials(parts_, &units, &error)) << error;
  units.pop_back();
  NullSink sink;
  ResultSink* borrowed[] = {&sink};
  EXPECT_FALSE(
      MergeExperimentSlices(plan_, units, borrowed, &error, nullptr));
  EXPECT_NE(error.find("unit"), std::string::npos) << error;
}

}  // namespace
}  // namespace loloha

#include "core/inference.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "longitudinal/chain.h"
#include "longitudinal/lue.h"
#include "oracle/estimator.h"
#include "util/rng.h"

namespace loloha {
namespace {

TEST(InverseNormalCdfTest, KnownQuantiles) {
  EXPECT_NEAR(InverseNormalCdf(0.5), 0.0, 1e-8);
  EXPECT_NEAR(InverseNormalCdf(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(InverseNormalCdf(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(InverseNormalCdf(0.84134474), 1.0, 1e-5);
  EXPECT_NEAR(InverseNormalCdf(0.999), 3.090232, 1e-4);
}

TEST(InverseNormalCdfTest, SymmetricAroundHalf) {
  for (const double p : {0.6, 0.8, 0.99, 0.9999}) {
    EXPECT_NEAR(InverseNormalCdf(p), -InverseNormalCdf(1.0 - p), 1e-7);
  }
}

TEST(ChainedEstimateCiTest, WidthShrinksWithN) {
  const PerturbParams first{0.8, 0.2};
  const PerturbParams second{0.7, 0.3};
  const ConfidenceInterval small_n =
      ChainedEstimateCi(0.1, 1000, first, second, 0.95);
  const ConfidenceInterval big_n =
      ChainedEstimateCi(0.1, 100000, first, second, 0.95);
  EXPECT_LT(big_n.width(), small_n.width());
  EXPECT_TRUE(small_n.Contains(0.1));
}

TEST(ChainedEstimateCiTest, HigherConfidenceIsWider) {
  const PerturbParams first{0.8, 0.2};
  const PerturbParams second{0.7, 0.3};
  EXPECT_GT(ChainedEstimateCi(0.2, 5000, first, second, 0.99).width(),
            ChainedEstimateCi(0.2, 5000, first, second, 0.90).width());
}

TEST(ChainedEstimateCiTest, EmpiricalCoverageNear95Percent) {
  // Monte-Carlo coverage test: simulate the chained mechanism and count
  // how often the CI captures the true f.
  const uint32_t k = 8;
  const double f_true = 1.0 / k;
  const ChainedParams chain = LOsueChain(2.0, 1.0);
  Rng rng(1);
  constexpr int kRuns = 400;
  constexpr uint32_t kUsers = 2000;
  int covered = 0;
  for (int r = 0; r < kRuns; ++r) {
    LongitudinalUePopulation population(k, kUsers, chain);
    std::vector<uint32_t> values(kUsers);
    for (uint32_t u = 0; u < kUsers; ++u) values[u] = u % k;
    const double est = population.Step(values, rng)[0];
    const ConfidenceInterval ci =
        ChainedEstimateCi(est, kUsers, chain.first, chain.second, 0.95);
    covered += ci.Contains(f_true) ? 1 : 0;
  }
  // 95% +- 4 sigma of binomial(400, .95) ~ +- 4.4%.
  EXPECT_GT(covered / 400.0, 0.90);
  EXPECT_LE(covered / 400.0, 1.0);
}

TEST(OneRoundEstimateCiTest, ContainsPointEstimate) {
  const ConfidenceInterval ci =
      OneRoundEstimateCi(0.3, 10000, PerturbParams{0.75, 0.25}, 0.95);
  EXPECT_TRUE(ci.Contains(0.3));
  EXPECT_GT(ci.width(), 0.0);
}

TEST(DetectHeavyHittersTest, FindsTrueHittersOnRealProtocol) {
  // 3 genuinely heavy values among k = 64, through an actual LOLOHA-style
  // chained population; everything else should be filtered out at z = 4.
  const uint32_t k = 64;
  const ChainedParams chain = LOsueChain(3.0, 1.5);
  const uint32_t n = 50000;
  LongitudinalUePopulation population(k, n, chain);
  std::vector<uint32_t> values(n);
  for (uint32_t u = 0; u < n; ++u) {
    values[u] = (u % 2 == 0) ? 5u : ((u % 4 == 1) ? 17u : 40u);
  }
  Rng rng(3);
  const std::vector<double> estimates = population.Step(values, rng);
  const auto hitters =
      DetectHeavyHitters(estimates, n, chain.first, chain.second, 4.0);
  ASSERT_EQ(hitters.size(), 3u);
  EXPECT_EQ(hitters[0].value, 5u);  // sorted by estimate: 50% first
  EXPECT_GT(hitters[0].z_score, hitters[1].z_score);
  const bool has17 = hitters[1].value == 17 || hitters[2].value == 17;
  const bool has40 = hitters[1].value == 40 || hitters[2].value == 40;
  EXPECT_TRUE(has17 && has40);
}

TEST(DetectHeavyHittersTest, EmptyWhenNothingIsHeavy) {
  const PerturbParams first{0.8, 0.2};
  const PerturbParams second{0.7, 0.3};
  // Estimates deep inside the noise floor at n = 100.
  const std::vector<double> estimates(16, 0.001);
  EXPECT_TRUE(
      DetectHeavyHitters(estimates, 100, first, second, 4.0).empty());
}

TEST(NormSubTest, AlreadyConsistentIsUnchanged) {
  const std::vector<double> p = {0.25, 0.25, 0.5};
  const std::vector<double> out = NormSub(p);
  for (size_t i = 0; i < p.size(); ++i) EXPECT_NEAR(out[i], p[i], 1e-9);
}

TEST(NormSubTest, ClampsNegativesAndSumsToOne) {
  const std::vector<double> out = NormSub({-0.1, 0.6, 0.7});
  double sum = 0.0;
  for (const double o : out) {
    EXPECT_GE(o, 0.0);
    sum += o;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  // The shift is uniform across surviving coordinates.
  EXPECT_NEAR(out[2] - out[1], 0.1, 1e-6);
}

TEST(NormSubTest, PreservesOrdering) {
  const std::vector<double> out = NormSub({0.9, -0.3, 0.5, 0.1});
  EXPECT_GE(out[0], out[2]);
  EXPECT_GE(out[2], out[3]);
  EXPECT_GE(out[3], out[1]);
}

TEST(NormSubTest, AllNegativeDegeneratesToPointMass) {
  // With every estimate negative, the common shift must be negative too;
  // the surviving mass lands on the largest coordinate.
  const std::vector<double> out = NormSub({-5.0, -9.0});
  EXPECT_NEAR(out[0], 1.0, 1e-9);
  EXPECT_NEAR(out[1], 0.0, 1e-9);
}

TEST(NormSubTest, ReducesMseOnNoisyEstimates) {
  // Post-processing onto the simplex cannot increase L2 distance to the
  // true distribution (projection property; Norm-Sub approximates it).
  Rng rng(2);
  const std::vector<double> truth = {0.7, 0.2, 0.1, 0.0, 0.0};
  double raw_mse = 0.0;
  double processed_mse = 0.0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> noisy(truth.size());
    for (size_t i = 0; i < truth.size(); ++i) {
      noisy[i] = truth[i] + 0.15 * (rng.UniformDouble() - 0.5);
    }
    const std::vector<double> processed = NormSub(noisy);
    for (size_t i = 0; i < truth.size(); ++i) {
      raw_mse += (noisy[i] - truth[i]) * (noisy[i] - truth[i]);
      processed_mse +=
          (processed[i] - truth[i]) * (processed[i] - truth[i]);
    }
  }
  EXPECT_LT(processed_mse, raw_mse);
}

}  // namespace
}  // namespace loloha

// Crash-recovery fault injection over the snapshot layer: kill a
// collector (and a loopback IngestServer) mid-step, right after a
// checkpoint, and mid-snapshot-write, then prove the restored process
// produces byte-identical estimates AND cumulative counters to an
// uninterrupted run — and that torn, truncated, or bit-flipped
// snapshots are rejected with a clean error, never silently loaded.
//
// Crash model: a checkpoint is written at every EndStep, so the
// snapshot always holds the clean state at the start of the current
// step. A crash mid-step loses only that step's partial ingestion;
// recovery is restore + replay the whole in-flight step. "Killing" a
// collector is dropping it (its state is gone; the file survives);
// killing a server is stopping it without the final EndStep.

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net_test_util.h"
#include "server/collector.h"
#include "server/net/framing.h"
#include "server/net/ingest_server.h"
#include "server/store/snapshot_file.h"
#include "server/store/user_state_store.h"
#include "sim/protocol_spec.h"
#include "wire/encoding.h"

namespace loloha {
namespace {

using net_test::ConnectLoopback;
using net_test::MakeTraffic;
using net_test::ReadFrame;
using net_test::SendPhase;
using net_test::ServerFixture;
using net_test::Traffic;
using net_test::WriteAll;

constexpr uint32_t kUsers = 300;
constexpr uint32_t kDomain = 32;
constexpr uint32_t kSteps = 3;

const char* const kSpecs[] = {"ololoha:eps_perm=2,eps_first=1",
                              "bbitflip:eps_perm=3,buckets=8,d=4"};

std::string PidLocalPath(const char* stem) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s_%d.snap", stem,
                static_cast<int>(getpid()));
  return buf;
}

std::string ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string bytes;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return bytes;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

struct RunResult {
  std::vector<std::vector<double>> estimates;
  CollectorStats stats;
};

// The uninterrupted reference: one collector over all kSteps steps.
RunResult UninterruptedRun(const ProtocolSpec& spec, const Traffic& traffic) {
  RunResult out;
  const std::unique_ptr<Collector> collector = MakeCollector(spec, kDomain);
  collector->IngestBatch(traffic.hellos);
  for (const auto& step : traffic.steps) {
    collector->IngestBatch(step);
    out.estimates.push_back(collector->EndStep());
  }
  out.stats = collector->stats();
  return out;
}

class CrashRecoveryTest : public ::testing::TestWithParam<const char*> {};

// Crash after a clean checkpoint: the restored collector finishes the
// remaining steps byte-identically.
TEST_P(CrashRecoveryTest, PostEndStepCrashResumesByteIdentical) {
  const ProtocolSpec spec = ProtocolSpec::MustParse(GetParam());
  const Traffic traffic = MakeTraffic(spec, 211, kUsers, kDomain, kSteps);
  const RunResult reference = UninterruptedRun(spec, traffic);
  const std::string path = PidLocalPath("crash_post_endstep");

  CollectorOptions options;
  options.store.kind = StoreKind::kSnapshot;
  options.store.snapshot_path = path;
  {
    // Life 1 dies immediately after closing step 1 (checkpoint written).
    const std::unique_ptr<Collector> collector =
        MakeCollector(spec, kDomain, options);
    collector->IngestBatch(traffic.hellos);
    collector->IngestBatch(traffic.steps[0]);
    EXPECT_EQ(collector->EndStep(), reference.estimates[0]);
  }

  const std::unique_ptr<Collector> revived =
      MakeCollector(spec, kDomain, options);
  std::string error;
  ASSERT_TRUE(revived->RestoreSnapshot(path, &error)) << error;
  EXPECT_EQ(revived->current_step(), 1u);
  EXPECT_EQ(revived->registered_users(), kUsers);
  for (uint32_t t = 1; t < kSteps; ++t) {
    revived->IngestBatch(traffic.steps[t]);
    EXPECT_EQ(revived->EndStep(), reference.estimates[t]);
  }
  EXPECT_EQ(revived->stats(), reference.stats);
  std::remove(path.c_str());
}

// Crash with a step half-ingested: the partial step is lost, replaying
// the whole step lands exactly where the uninterrupted run did.
TEST_P(CrashRecoveryTest, MidStepCrashReplaysToByteIdentical) {
  const ProtocolSpec spec = ProtocolSpec::MustParse(GetParam());
  const Traffic traffic = MakeTraffic(spec, 223, kUsers, kDomain, kSteps);
  const RunResult reference = UninterruptedRun(spec, traffic);
  const std::string path = PidLocalPath("crash_mid_step");

  CollectorOptions options;
  options.store.kind = StoreKind::kSnapshot;
  options.store.snapshot_path = path;
  {
    const std::unique_ptr<Collector> collector =
        MakeCollector(spec, kDomain, options);
    collector->IngestBatch(traffic.hellos);
    collector->IngestBatch(traffic.steps[0]);
    collector->EndStep();
    // Half of step 2 lands, then the process dies.
    const auto& step = traffic.steps[1];
    collector->IngestBatch(
        std::span<const Message>(step.data(), step.size() / 2));
  }

  const std::unique_ptr<Collector> revived =
      MakeCollector(spec, kDomain, options);
  std::string error;
  ASSERT_TRUE(revived->RestoreSnapshot(path, &error)) << error;
  EXPECT_EQ(revived->current_step(), 1u);
  for (uint32_t t = 1; t < kSteps; ++t) {
    revived->IngestBatch(traffic.steps[t]);  // the whole step, replayed
    EXPECT_EQ(revived->EndStep(), reference.estimates[t]);
  }
  EXPECT_EQ(revived->stats(), reference.stats);
  std::remove(path.c_str());
}

// Snapshots are portable across backends: a MapStore collector's
// SaveSnapshot restores into a FlatStore collector, and vice versa.
TEST_P(CrashRecoveryTest, SnapshotsArePortableAcrossBackends) {
  const ProtocolSpec spec = ProtocolSpec::MustParse(GetParam());
  const Traffic traffic = MakeTraffic(spec, 227, kUsers, kDomain, kSteps);
  const RunResult reference = UninterruptedRun(spec, traffic);
  const std::string path = PidLocalPath("crash_portable");

  {
    const std::unique_ptr<Collector> collector =
        MakeCollector(spec, kDomain, CollectorOptions{});  // MapStore
    collector->IngestBatch(traffic.hellos);
    collector->IngestBatch(traffic.steps[0]);
    collector->EndStep();
    std::string error;
    ASSERT_TRUE(collector->SaveSnapshot(path, &error)) << error;
  }

  CollectorOptions flat;
  flat.store.kind = StoreKind::kFlat;
  const std::unique_ptr<Collector> revived =
      MakeCollector(spec, kDomain, flat);
  std::string error;
  ASSERT_TRUE(revived->RestoreSnapshot(path, &error)) << error;
  for (uint32_t t = 1; t < kSteps; ++t) {
    revived->IngestBatch(traffic.steps[t]);
    EXPECT_EQ(revived->EndStep(), reference.estimates[t]);
  }
  EXPECT_EQ(revived->stats(), reference.stats);
  std::remove(path.c_str());
}

// A crash mid-snapshot-write leaves a stale .tmp file; the committed
// snapshot (atomic rename) is untouched and restores normally.
TEST_P(CrashRecoveryTest, TornWriteLeavesCommittedSnapshotIntact) {
  const ProtocolSpec spec = ProtocolSpec::MustParse(GetParam());
  const Traffic traffic = MakeTraffic(spec, 229, kUsers, kDomain, kSteps);
  const std::string path = PidLocalPath("crash_torn_write");

  CollectorOptions options;
  options.store.kind = StoreKind::kSnapshot;
  options.store.snapshot_path = path;
  {
    const std::unique_ptr<Collector> collector =
        MakeCollector(spec, kDomain, options);
    collector->IngestBatch(traffic.hellos);
    collector->IngestBatch(traffic.steps[0]);
    collector->EndStep();
  }
  // Simulate dying halfway through the next checkpoint's write: a
  // partial image exists only under the .tmp name.
  const std::string committed = ReadFileBytes(path);
  WriteFileBytes(path + ".tmp", committed.substr(0, committed.size() / 3));

  const std::unique_ptr<Collector> revived =
      MakeCollector(spec, kDomain, options);
  std::string error;
  ASSERT_TRUE(revived->RestoreSnapshot(path, &error)) << error;
  EXPECT_EQ(revived->registered_users(), kUsers);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

// Truncations at any length and bit flips in CRC-covered bytes are
// rejected with a clean error, and the collector is left unchanged.
TEST_P(CrashRecoveryTest, TruncatedAndCorruptSnapshotsAreRejected) {
  const ProtocolSpec spec = ProtocolSpec::MustParse(GetParam());
  const Traffic traffic = MakeTraffic(spec, 233, kUsers, kDomain, 1);
  const std::string path = PidLocalPath("crash_corrupt");
  const std::string mangled = PidLocalPath("crash_corrupt_mangled");

  CollectorOptions options;
  options.store.kind = StoreKind::kSnapshot;
  options.store.snapshot_path = path;
  {
    const std::unique_ptr<Collector> collector =
        MakeCollector(spec, kDomain, options);
    collector->IngestBatch(traffic.hellos);
    collector->IngestBatch(traffic.steps[0]);
    collector->EndStep();
  }
  const std::string good = ReadFileBytes(path);

  const std::unique_ptr<Collector> victim =
      MakeCollector(spec, kDomain, CollectorOptions{});
  const size_t truncations[] = {0, 1, 15, 16, 17, good.size() / 2,
                                good.size() - 1};
  for (const size_t len : truncations) {
    WriteFileBytes(mangled, good.substr(0, len));
    std::string error;
    EXPECT_FALSE(victim->RestoreSnapshot(mangled, &error)) << "len=" << len;
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(victim->registered_users(), 0u);  // victim untouched
    EXPECT_EQ(victim->current_step(), 0u);
  }

  // Bit flips across the file: header magic, a section tag, and payload
  // bytes deep in every section. (Bytes 10-11 are the header's reserved
  // pad — the only two bytes no check covers.)
  const size_t flips[] = {0, 5, 16, 40, 80, good.size() / 2, good.size() - 5};
  for (const size_t at : flips) {
    if (at >= good.size()) continue;
    std::string bad = good;
    bad[at] = static_cast<char>(bad[at] ^ 0x40);
    WriteFileBytes(mangled, bad);
    std::string error;
    EXPECT_FALSE(victim->RestoreSnapshot(mangled, &error)) << "at=" << at;
    EXPECT_FALSE(error.empty());
  }

  // Appended trailing garbage is also rejected (exact-length format).
  WriteFileBytes(mangled, good + "xx");
  std::string error;
  EXPECT_FALSE(victim->RestoreSnapshot(mangled, &error));

  // And the pristine file still restores into the same collector.
  ASSERT_TRUE(victim->RestoreSnapshot(path, &error)) << error;
  EXPECT_EQ(victim->registered_users(), kUsers);
  std::remove(path.c_str());
  std::remove(mangled.c_str());
}

// A snapshot from a different deployment configuration is refused.
TEST_P(CrashRecoveryTest, SignatureMismatchIsRejected) {
  const ProtocolSpec spec = ProtocolSpec::MustParse(GetParam());
  const Traffic traffic = MakeTraffic(spec, 239, kUsers, kDomain, 1);
  const std::string path = PidLocalPath("crash_signature");

  {
    const std::unique_ptr<Collector> collector =
        MakeCollector(spec, kDomain, CollectorOptions{});
    collector->IngestBatch(traffic.hellos);
    collector->EndStep();
    std::string error;
    ASSERT_TRUE(collector->SaveSnapshot(path, &error)) << error;
  }

  // Same protocol, different shard stamp: refused.
  CollectorOptions other_shard;
  other_shard.signature_suffix = "shard=1/4";
  const std::unique_ptr<Collector> shard_collector =
      MakeCollector(spec, kDomain, other_shard);
  std::string error;
  EXPECT_FALSE(shard_collector->RestoreSnapshot(path, &error));
  EXPECT_NE(error.find("signature"), std::string::npos) << error;

  // Different protocol parameters: refused.
  const ProtocolSpec other_spec = ProtocolSpec::MustParse(
      spec.IsLolohaVariant() ? "ololoha:eps_perm=4,eps_first=1"
                             : "bbitflip:eps_perm=5,buckets=8,d=4");
  const std::unique_ptr<Collector> other_collector =
      MakeCollector(other_spec, kDomain, CollectorOptions{});
  EXPECT_FALSE(other_collector->RestoreSnapshot(path, &error));
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(BothProtocols, CrashRecoveryTest,
                         ::testing::ValuesIn(kSpecs),
                         [](const auto& param_info) {
                           return std::string(param_info.param).substr(0, 3) ==
                                          "olo"
                                      ? "loloha"
                                      : "dbitflip";
                         });

// ---------------------------------------------------------------------------
// The sharded server front: crash mid-step, restore, replay.
// ---------------------------------------------------------------------------

class ServerCrashRecoveryTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::string MakeDir(const char* stem) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s_%d", stem, static_cast<int>(getpid()));
    ::mkdir(buf, 0755);
    return buf;
  }

  void RemoveDir(const std::string& dir, uint32_t shards) {
    for (uint32_t shard = 0; shard < shards; ++shard) {
      char name[160];
      std::snprintf(name, sizeof(name), "%s/shard_%u-of-%u.snap", dir.c_str(),
                    shard, shards);
      std::remove(name);
    }
    ::rmdir(dir.c_str());
  }

  IngestServerConfig SnapshotConfig(const std::string& dir, bool restore) {
    IngestServerConfig config;
    config.num_shards = 2;
    config.collector_options.store.kind = StoreKind::kSnapshot;
    config.snapshot_dir = dir;
    config.restore_snapshots = restore;
    return config;
  }
};

TEST_P(ServerCrashRecoveryTest, MidStepServerCrashReplaysByteIdentical) {
  const ProtocolSpec spec = ProtocolSpec::MustParse(GetParam());
  const Traffic traffic = MakeTraffic(spec, 241, kUsers, kDomain, kSteps);
  const RunResult reference = UninterruptedRun(spec, traffic);
  const std::string dir = MakeDir("server_crash_midstep");

  std::string end_step;
  AppendControlFrame(FrameType::kEndStep, &end_step);

  // Life 1: step 1 closes cleanly (checkpoint), then the server goes
  // down with step 2 half-delivered and never checkpointed.
  {
    ServerFixture fixture(spec, kDomain, SnapshotConfig(dir, false));
    ASSERT_TRUE(fixture.start_ok());
    const int fd = ConnectLoopback(fixture.server().port());
    ASSERT_GE(fd, 0);
    SendPhase({fd}, traffic.hellos);
    SendPhase({fd}, traffic.steps[0]);
    ASSERT_TRUE(WriteAll(fd, end_step));
    Frame frame;
    ASSERT_TRUE(ReadFrame(fd, &frame));
    ASSERT_EQ(frame.type, FrameType::kEstimates);
    std::vector<Message> half(traffic.steps[1].begin(),
                              traffic.steps[1].begin() +
                                  traffic.steps[1].size() / 2);
    SendPhase({fd}, half);
    close(fd);
    fixture.Join();  // dies without closing step 2
  }

  // Life 2: restore, replay step 2 in full, finish the deployment.
  {
    ServerFixture fixture(spec, kDomain, SnapshotConfig(dir, true));
    ASSERT_TRUE(fixture.start_ok());
    EXPECT_EQ(fixture.server().server_stats().shards_restored, 2u);
    const int fd = ConnectLoopback(fixture.server().port());
    ASSERT_GE(fd, 0);
    for (uint32_t t = 1; t < kSteps; ++t) {
      SendPhase({fd}, traffic.steps[t]);
      ASSERT_TRUE(WriteAll(fd, end_step));
      Frame frame;
      ASSERT_TRUE(ReadFrame(fd, &frame));
      ASSERT_EQ(frame.type, FrameType::kEstimates);
      EXPECT_EQ(frame.estimates, reference.estimates[t]);
    }
    EXPECT_EQ(fixture.server().TotalStats(), reference.stats);
    close(fd);
    fixture.Join();
  }
  RemoveDir(dir, 2);
}

TEST_P(ServerCrashRecoveryTest, ShardSetTornAcrossStepsRefusesToStart) {
  const ProtocolSpec spec = ProtocolSpec::MustParse(GetParam());
  const Traffic traffic = MakeTraffic(spec, 251, kUsers, kDomain, 2);
  const std::string dir = MakeDir("server_crash_torn");

  std::string end_step;
  AppendControlFrame(FrameType::kEndStep, &end_step);
  {
    ServerFixture fixture(spec, kDomain, SnapshotConfig(dir, false));
    ASSERT_TRUE(fixture.start_ok());
    const int fd = ConnectLoopback(fixture.server().port());
    ASSERT_GE(fd, 0);
    SendPhase({fd}, traffic.hellos);
    SendPhase({fd}, traffic.steps[0]);
    ASSERT_TRUE(WriteAll(fd, end_step));
    Frame frame;
    ASSERT_TRUE(ReadFrame(fd, &frame));

    // Keep shard 0's step-1 checkpoint, then close step 2 so the live
    // files advance to step 2.
    const std::string stale =
        ReadFileBytes(fixture.server().ShardSnapshotPath(0));
    SendPhase({fd}, traffic.steps[1]);
    ASSERT_TRUE(WriteAll(fd, end_step));
    ASSERT_TRUE(ReadFrame(fd, &frame));
    close(fd);
    fixture.Join();

    // Tear the set: shard 0 at step 1, shard 1 at step 2.
    WriteFileBytes(fixture.server().ShardSnapshotPath(0), stale);
  }
  {
    IngestServer server(spec, kDomain, SnapshotConfig(dir, true));
    EXPECT_FALSE(server.Start());
  }
  RemoveDir(dir, 2);
}

TEST_P(ServerCrashRecoveryTest, CorruptShardSnapshotRefusesToStart) {
  const ProtocolSpec spec = ProtocolSpec::MustParse(GetParam());
  const Traffic traffic = MakeTraffic(spec, 257, kUsers, kDomain, 1);
  const std::string dir = MakeDir("server_crash_corrupt");

  std::string end_step;
  AppendControlFrame(FrameType::kEndStep, &end_step);
  std::string shard0_path;
  {
    ServerFixture fixture(spec, kDomain, SnapshotConfig(dir, false));
    ASSERT_TRUE(fixture.start_ok());
    shard0_path = fixture.server().ShardSnapshotPath(0);
    const int fd = ConnectLoopback(fixture.server().port());
    ASSERT_GE(fd, 0);
    SendPhase({fd}, traffic.hellos);
    SendPhase({fd}, traffic.steps[0]);
    ASSERT_TRUE(WriteAll(fd, end_step));
    Frame frame;
    ASSERT_TRUE(ReadFrame(fd, &frame));
    close(fd);
    fixture.Join();
  }
  std::string bytes = ReadFileBytes(shard0_path);
  bytes[bytes.size() / 2] =
      static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  WriteFileBytes(shard0_path, bytes);
  {
    IngestServer server(spec, kDomain, SnapshotConfig(dir, true));
    EXPECT_FALSE(server.Start());
  }
  RemoveDir(dir, 2);
}

INSTANTIATE_TEST_SUITE_P(BothProtocols, ServerCrashRecoveryTest,
                         ::testing::ValuesIn(kSpecs),
                         [](const auto& param_info) {
                           return std::string(param_info.param).substr(0, 3) ==
                                          "olo"
                                      ? "loloha"
                                      : "dbitflip";
                         });

}  // namespace
}  // namespace loloha

#include "server/net/framing.h"

#include <bit>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace loloha {
namespace {

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

// Hand-built frame with any (possibly illegal) type/payload combination.
std::string RawFrame(uint8_t type, const std::string& payload) {
  std::string out;
  PutU32(static_cast<uint32_t>(payload.size()), &out);
  out.push_back(static_cast<char>(type));
  out.append(payload);
  return out;
}

TEST(FramingTest, DataFrameRoundTrip) {
  std::string buf;
  AppendDataFrame(0x1122334455667788ull, std::string("\x07\x01payload", 9),
                  &buf);
  EXPECT_EQ(buf.size(), kFrameHeaderBytes + 8 + 9);

  FrameParser parser;
  parser.Feed(buf.data(), buf.size());
  Frame frame;
  ASSERT_EQ(parser.Next(&frame), FrameStatus::kFrame);
  EXPECT_EQ(frame.type, FrameType::kData);
  EXPECT_EQ(frame.message.user_id, 0x1122334455667788ull);
  EXPECT_EQ(frame.message.bytes, std::string("\x07\x01payload", 9));
  EXPECT_EQ(parser.Next(&frame), FrameStatus::kNeedMore);
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(FramingTest, EmptyMessageBytesAreLegal) {
  std::string buf;
  AppendDataFrame(7, "", &buf);
  FrameParser parser;
  parser.Feed(buf.data(), buf.size());
  Frame frame;
  ASSERT_EQ(parser.Next(&frame), FrameStatus::kFrame);
  EXPECT_EQ(frame.message.user_id, 7u);
  EXPECT_TRUE(frame.message.bytes.empty());
}

TEST(FramingTest, ControlFramesRoundTrip) {
  const FrameType kTypes[] = {FrameType::kBarrier, FrameType::kBarrierAck,
                              FrameType::kEndStep, FrameType::kShutdown};
  std::string buf;
  for (const FrameType type : kTypes) AppendControlFrame(type, &buf);

  FrameParser parser;
  parser.Feed(buf.data(), buf.size());
  Frame frame;
  for (const FrameType type : kTypes) {
    ASSERT_EQ(parser.Next(&frame), FrameStatus::kFrame);
    EXPECT_EQ(frame.type, type);
    EXPECT_TRUE(frame.message.bytes.empty());
    EXPECT_TRUE(frame.estimates.empty());
  }
  EXPECT_EQ(parser.Next(&frame), FrameStatus::kNeedMore);
}

TEST(FramingTest, EstimatesCarryExactDoubleBits) {
  // The frame promises bit-exact doubles; include values that would not
  // survive a decimal text round-trip at default precision.
  const std::vector<double> estimates = {
      0.0,
      -0.0,
      1.0 / 3.0,
      -2.5e-300,
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
  };
  std::string buf;
  AppendEstimatesFrame(estimates, &buf);
  EXPECT_EQ(buf.size(), kFrameHeaderBytes + 4 + 8 * estimates.size());

  FrameParser parser;
  parser.Feed(buf.data(), buf.size());
  Frame frame;
  ASSERT_EQ(parser.Next(&frame), FrameStatus::kFrame);
  EXPECT_EQ(frame.type, FrameType::kEstimates);
  ASSERT_EQ(frame.estimates.size(), estimates.size());
  for (size_t i = 0; i < estimates.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(frame.estimates[i]),
              std::bit_cast<uint64_t>(estimates[i]))
        << "estimate " << i;
  }
}

TEST(FramingTest, EmptyEstimatesFrame) {
  std::string buf;
  AppendEstimatesFrame({}, &buf);
  FrameParser parser;
  parser.Feed(buf.data(), buf.size());
  Frame frame;
  ASSERT_EQ(parser.Next(&frame), FrameStatus::kFrame);
  EXPECT_EQ(frame.type, FrameType::kEstimates);
  EXPECT_TRUE(frame.estimates.empty());
}

TEST(FramingTest, ByteAtATimeFeedReassemblesFrames) {
  std::string buf;
  AppendDataFrame(42, "abc", &buf);
  AppendControlFrame(FrameType::kBarrier, &buf);
  AppendEstimatesFrame(std::vector<double>{0.25, 0.75}, &buf);

  FrameParser parser;
  Frame frame;
  std::vector<FrameType> seen;
  for (const char byte : buf) {
    parser.Feed(&byte, 1);
    while (parser.Next(&frame) == FrameStatus::kFrame) {
      seen.push_back(frame.type);
    }
  }
  EXPECT_EQ(seen, (std::vector<FrameType>{FrameType::kData,
                                          FrameType::kBarrier,
                                          FrameType::kEstimates}));
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(FramingTest, TruncatedFrameNeedsMoreNotError) {
  std::string buf;
  AppendDataFrame(9, "abcdef", &buf);
  FrameParser parser;
  parser.Feed(buf.data(), buf.size() - 1);  // everything but the last byte
  Frame frame;
  EXPECT_EQ(parser.Next(&frame), FrameStatus::kNeedMore);
  EXPECT_EQ(parser.buffered(), buf.size() - 1);
  parser.Feed(buf.data() + buf.size() - 1, 1);
  EXPECT_EQ(parser.Next(&frame), FrameStatus::kFrame);
}

TEST(FramingTest, OversizedPayloadIsError) {
  FrameParser parser(/*max_payload=*/64);
  const std::string raw = RawFrame(
      static_cast<uint8_t>(FrameType::kData), std::string(65, 'x'));
  // The header alone condemns the stream; the payload need not arrive.
  parser.Feed(raw.data(), kFrameHeaderBytes);
  Frame frame;
  EXPECT_EQ(parser.Next(&frame), FrameStatus::kError);
}

TEST(FramingTest, UnknownFrameTypeIsError) {
  for (const uint8_t type : {uint8_t{0}, uint8_t{7}, uint8_t{0xff}}) {
    FrameParser parser;
    const std::string raw = RawFrame(type, "");
    parser.Feed(raw.data(), raw.size());
    Frame frame;
    EXPECT_EQ(parser.Next(&frame), FrameStatus::kError) << unsigned{type};
  }
}

TEST(FramingTest, ControlFrameWithPayloadIsError) {
  FrameParser parser;
  const std::string raw =
      RawFrame(static_cast<uint8_t>(FrameType::kBarrier), "x");
  parser.Feed(raw.data(), raw.size());
  Frame frame;
  EXPECT_EQ(parser.Next(&frame), FrameStatus::kError);
}

TEST(FramingTest, DataFrameShorterThanUserIdIsError) {
  FrameParser parser;
  const std::string raw =
      RawFrame(static_cast<uint8_t>(FrameType::kData), "1234567");
  parser.Feed(raw.data(), raw.size());
  Frame frame;
  EXPECT_EQ(parser.Next(&frame), FrameStatus::kError);
}

TEST(FramingTest, EstimatesCountMismatchIsError) {
  // Count says 3 doubles, payload carries 2.
  std::string payload;
  PutU32(3, &payload);
  payload.append(16, '\0');
  FrameParser parser;
  const std::string raw =
      RawFrame(static_cast<uint8_t>(FrameType::kEstimates), payload);
  parser.Feed(raw.data(), raw.size());
  Frame frame;
  EXPECT_EQ(parser.Next(&frame), FrameStatus::kError);
}

TEST(FramingTest, ErrorIsSticky) {
  FrameParser parser;
  const std::string bad = RawFrame(0, "");
  parser.Feed(bad.data(), bad.size());
  Frame frame;
  ASSERT_EQ(parser.Next(&frame), FrameStatus::kError);
  // A perfectly valid frame after the violation changes nothing: the
  // stream cannot be resynchronized.
  std::string good;
  AppendControlFrame(FrameType::kBarrier, &good);
  parser.Feed(good.data(), good.size());
  EXPECT_EQ(parser.Next(&frame), FrameStatus::kError);
}

}  // namespace
}  // namespace loloha

#include "server/collector.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/loloha.h"
#include "wire/encoding.h"
#include "util/rng.h"

namespace loloha {
namespace {

LolohaParams TestParams() { return MakeLolohaParams(16, 4, 2.0, 1.0); }

TEST(LolohaCollectorTest, EndToEndThroughWireFormat) {
  const LolohaParams params = TestParams();
  LolohaCollector collector(params);
  Rng rng(1);
  constexpr uint32_t kUsers = 30000;
  std::vector<LolohaClient> clients;
  clients.reserve(kUsers);
  for (uint32_t u = 0; u < kUsers; ++u) {
    clients.emplace_back(params, rng);
    ASSERT_TRUE(
        collector.HandleHello(u, EncodeLolohaHello(clients[u].hash())));
  }
  EXPECT_EQ(collector.registered_users(), kUsers);

  for (uint32_t u = 0; u < kUsers; ++u) {
    const uint32_t v = (u % 4 == 0) ? 2u : 9u;
    const uint32_t cell = clients[u].Report(v, rng);
    ASSERT_TRUE(collector.HandleReport(u, EncodeLolohaReport(cell)));
  }
  const std::vector<double> est = collector.EndStep();
  ASSERT_EQ(est.size(), 16u);
  EXPECT_NEAR(est[2], 0.25, 0.04);
  EXPECT_NEAR(est[9], 0.75, 0.04);
}

TEST(LolohaCollectorTest, RejectsUnknownUser) {
  LolohaCollector collector(TestParams());
  EXPECT_FALSE(collector.HandleReport(99, EncodeLolohaReport(0)));
  EXPECT_EQ(collector.stats().rejected_unknown_user, 1u);
}

TEST(LolohaCollectorTest, RejectsMalformedMessages) {
  LolohaCollector collector(TestParams());
  EXPECT_FALSE(collector.HandleHello(1, "garbage"));
  EXPECT_EQ(collector.stats().rejected_malformed, 1u);
}

TEST(LolohaCollectorTest, RejectsDuplicateReportWithinStep) {
  const LolohaParams params = TestParams();
  LolohaCollector collector(params);
  Rng rng(2);
  LolohaClient client(params, rng);
  ASSERT_TRUE(collector.HandleHello(7, EncodeLolohaHello(client.hash())));
  const std::string report = EncodeLolohaReport(client.Report(3, rng));
  EXPECT_TRUE(collector.HandleReport(7, report));
  EXPECT_FALSE(collector.HandleReport(7, report));  // duplicate
  EXPECT_EQ(collector.stats().rejected_duplicate, 1u);
  collector.EndStep();
  EXPECT_TRUE(collector.HandleReport(7, report));  // next step is fine
}

TEST(LolohaCollectorTest, HelloIsIdempotentButNotReplaceable) {
  const LolohaParams params = TestParams();
  LolohaCollector collector(params);
  Rng rng(3);
  LolohaClient a(params, rng);
  LolohaClient b(params, rng);
  EXPECT_TRUE(collector.HandleHello(1, EncodeLolohaHello(a.hash())));
  EXPECT_TRUE(collector.HandleHello(1, EncodeLolohaHello(a.hash())));
  EXPECT_FALSE(collector.HandleHello(1, EncodeLolohaHello(b.hash())));
  EXPECT_EQ(collector.registered_users(), 1u);
}

TEST(LolohaCollectorTest, EmptyStepYieldsEmptyEstimates) {
  LolohaCollector collector(TestParams());
  EXPECT_TRUE(collector.EndStep().empty());
}

TEST(DBitFlipCollectorTest, EndToEndThroughWireFormat) {
  const Bucketizer bucketizer(40, 8);
  const uint32_t d = 8;
  const double eps = 3.0;
  DBitFlipCollector collector(bucketizer, d, eps);
  Rng rng(4);
  constexpr uint32_t kUsers = 30000;
  std::vector<DBitFlipClient> clients;
  clients.reserve(kUsers);
  for (uint32_t u = 0; u < kUsers; ++u) {
    clients.emplace_back(bucketizer, d, eps, rng);
    ASSERT_TRUE(
        collector.HandleHello(u, EncodeDBitHello(clients[u].sampled())));
  }
  for (uint32_t u = 0; u < kUsers; ++u) {
    const DBitReport report = clients[u].Report((u % 2) ? 2u : 22u, rng);
    ASSERT_TRUE(collector.HandleReport(u, EncodeDBitReport(report.bits)));
  }
  const std::vector<double> est = collector.EndStep();
  EXPECT_NEAR(est[0], 0.5, 0.03);
  EXPECT_NEAR(est[4], 0.5, 0.03);
}

TEST(DBitFlipCollectorTest, RejectsWrongSampleSize) {
  const Bucketizer bucketizer(40, 8);
  DBitFlipCollector collector(bucketizer, 3, 1.0);
  EXPECT_FALSE(collector.HandleHello(0, EncodeDBitHello({1, 2, 3, 4})));
  EXPECT_EQ(collector.stats().rejected_malformed, 1u);
}

TEST(DBitFlipCollectorTest, EstimatesUseOnlyReportersAsN) {
  // Half the users stay silent in a step; n_j counting must use only the
  // reporters, keeping the estimator unbiased.
  const Bucketizer bucketizer(20, 4);
  const double eps = 4.0;
  DBitFlipCollector collector(bucketizer, 4, eps);
  Rng rng(5);
  constexpr uint32_t kUsers = 40000;
  std::vector<DBitFlipClient> clients;
  clients.reserve(kUsers);
  for (uint32_t u = 0; u < kUsers; ++u) {
    clients.emplace_back(bucketizer, 4, eps, rng);
    ASSERT_TRUE(
        collector.HandleHello(u, EncodeDBitHello(clients[u].sampled())));
  }
  for (uint32_t u = 0; u < kUsers; u += 2) {  // evens only report
    const DBitReport report = clients[u].Report(7, rng);  // bucket 1
    ASSERT_TRUE(collector.HandleReport(u, EncodeDBitReport(report.bits)));
  }
  const std::vector<double> est = collector.EndStep();
  EXPECT_NEAR(est[1], 1.0, 0.03);
  EXPECT_NEAR(est[0], 0.0, 0.03);
}

}  // namespace
}  // namespace loloha

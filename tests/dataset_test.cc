#include "data/dataset.h"

#include <vector>

#include <gtest/gtest.h>

namespace loloha {
namespace {

Dataset SmallDataset() {
  // 3 users, 4 steps, k = 5.
  Dataset data("test", 5, 3, 4);
  const uint32_t seq[3][4] = {{0, 0, 1, 1}, {2, 2, 2, 2}, {3, 4, 3, 4}};
  for (uint32_t u = 0; u < 3; ++u) {
    for (uint32_t t = 0; t < 4; ++t) data.set_value(u, t, seq[u][t]);
  }
  return data;
}

TEST(DatasetTest, RoundTripsValues) {
  const Dataset data = SmallDataset();
  EXPECT_EQ(data.value(0, 0), 0u);
  EXPECT_EQ(data.value(0, 2), 1u);
  EXPECT_EQ(data.value(2, 3), 4u);
}

TEST(DatasetTest, StepValuesContiguous) {
  const Dataset data = SmallDataset();
  EXPECT_EQ(data.StepValues(1), (std::vector<uint32_t>{0, 2, 4}));
}

TEST(DatasetTest, UserSequence) {
  const Dataset data = SmallDataset();
  EXPECT_EQ(data.UserSequence(2), (std::vector<uint32_t>{3, 4, 3, 4}));
}

TEST(DatasetTest, TrueFrequencies) {
  const Dataset data = SmallDataset();
  const std::vector<double> f0 = data.TrueFrequenciesAt(0);
  EXPECT_DOUBLE_EQ(f0[0], 1.0 / 3);
  EXPECT_DOUBLE_EQ(f0[2], 1.0 / 3);
  EXPECT_DOUBLE_EQ(f0[3], 1.0 / 3);
  EXPECT_DOUBLE_EQ(f0[1], 0.0);
}

TEST(DatasetTest, AverageChangeRate) {
  const Dataset data = SmallDataset();
  // Changes per user across 3 transitions: u0: 1 (0->0,0->1,1->1),
  // u1: 0, u2: 3. Total 4 of 9.
  EXPECT_DOUBLE_EQ(data.AverageChangeRate(), 4.0 / 9.0);
}

TEST(DatasetTest, MeanDistinctValuesPerUser) {
  const Dataset data = SmallDataset();
  // u0: {0,1}=2, u1: {2}=1, u2: {3,4}=2 -> mean 5/3.
  EXPECT_DOUBLE_EQ(data.MeanDistinctValuesPerUser(), 5.0 / 3.0);
}

TEST(DatasetTest, DistinctValuesGlobal) {
  const Dataset data = SmallDataset();
  EXPECT_EQ(data.DistinctValuesGlobal(), 5u);
}

TEST(DatasetTest, SingleStepChangeRateIsZero) {
  Dataset data("one", 2, 3, 1);
  EXPECT_DOUBLE_EQ(data.AverageChangeRate(), 0.0);
}

}  // namespace
}  // namespace loloha

#include "oracle/hadamard.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace loloha {
namespace {

TEST(FastWalshHadamardTest, MatchesNaiveTransform) {
  std::vector<double> data = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<double> naive(8, 0.0);
  for (uint32_t r = 0; r < 8; ++r) {
    for (uint32_t c = 0; c < 8; ++c) {
      naive[c] += data[r] * HadamardSign(r, c);
    }
  }
  FastWalshHadamard(data);
  for (uint32_t c = 0; c < 8; ++c) {
    EXPECT_NEAR(data[c], naive[c], 1e-9) << "c=" << c;
  }
}

TEST(FastWalshHadamardTest, SelfInverseUpToScale) {
  std::vector<double> data = {3, -1, 4, 1, -5, 9, 2, -6};
  const std::vector<double> original = data;
  FastWalshHadamard(data);
  FastWalshHadamard(data);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i], 8.0 * original[i], 1e-9);
  }
}

TEST(HadamardSignTest, SylvesterStructure) {
  // Row 0 and column 0 are all +1; H[1][1] = -1.
  for (uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(HadamardSign(0, i), 1);
    EXPECT_EQ(HadamardSign(i, 0), 1);
  }
  EXPECT_EQ(HadamardSign(1, 1), -1);
  // Symmetry.
  for (uint32_t r = 0; r < 8; ++r) {
    for (uint32_t c = 0; c < 8; ++c) {
      EXPECT_EQ(HadamardSign(r, c), HadamardSign(c, r));
    }
  }
}

TEST(HadamardSignTest, ColumnsAreBalanced) {
  // Every non-zero column has exactly K/2 positive entries.
  constexpr uint32_t kK = 32;
  for (uint32_t c = 1; c < kK; ++c) {
    int positives = 0;
    for (uint32_t r = 0; r < kK; ++r) {
      positives += (HadamardSign(r, c) == 1) ? 1 : 0;
    }
    EXPECT_EQ(positives, 16) << "c=" << c;
  }
}

TEST(HadamardResponseClientTest, MatrixSizeIsPowerOfTwoAboveK) {
  EXPECT_EQ(HadamardResponseClient(5, 1.0).matrix_size(), 8u);
  EXPECT_EQ(HadamardResponseClient(7, 1.0).matrix_size(), 8u);
  EXPECT_EQ(HadamardResponseClient(8, 1.0).matrix_size(), 16u);
  EXPECT_EQ(HadamardResponseClient(360, 1.0).matrix_size(), 512u);
}

TEST(HadamardResponseClientTest, AgreementProbabilityIsP) {
  const HadamardResponseClient client(10, 2.0);
  Rng rng(1);
  constexpr int kTrials = 100000;
  int agree = 0;
  for (int i = 0; i < kTrials; ++i) {
    const uint32_t row = client.Perturb(4, rng);
    agree += (HadamardSign(row, 5) == 1) ? 1 : 0;
  }
  EXPECT_NEAR(agree / static_cast<double>(kTrials),
              client.keep_probability(), 0.006);
}

TEST(HadamardResponseTest, RecoversSkewedDistribution) {
  const uint32_t k = 20;
  const double eps = 2.0;
  const HadamardResponseClient client(k, eps);
  HadamardResponseServer server(k, eps);
  Rng rng(2);
  constexpr int kUsers = 100000;
  for (int u = 0; u < kUsers; ++u) {
    const uint32_t v = (u % 10 < 6) ? 3u : 11u;  // 60% / 40%
    server.Accumulate(client.Perturb(v, rng));
  }
  const std::vector<double> est = server.Estimate();
  EXPECT_NEAR(est[3], 0.6, 0.02);
  EXPECT_NEAR(est[11], 0.4, 0.02);
  EXPECT_NEAR(est[0], 0.0, 0.02);
  EXPECT_NEAR(est[19], 0.0, 0.02);
}

TEST(HadamardResponseTest, UnbiasedOnUniformData) {
  const uint32_t k = 12;
  const HadamardResponseClient client(k, 1.0);
  HadamardResponseServer server(k, 1.0);
  Rng rng(3);
  constexpr int kUsers = 120000;
  for (int u = 0; u < kUsers; ++u) {
    server.Accumulate(client.Perturb(u % k, rng));
  }
  const std::vector<double> est = server.Estimate();
  for (uint32_t v = 0; v < k; ++v) {
    EXPECT_NEAR(est[v], 1.0 / k, 0.02) << "v=" << v;
  }
}

TEST(HadamardResponseTest, ResetClearsState) {
  HadamardResponseServer server(5, 1.0);
  server.Accumulate(3);
  EXPECT_EQ(server.num_reports(), 1u);
  server.Reset();
  EXPECT_EQ(server.num_reports(), 0u);
}

TEST(HadamardResponseTest, CommunicationIsLogK) {
  // The report is one row index of [0, K): ceil(log2 K) bits — the whole
  // point of HR vs UE's k bits.
  const HadamardResponseClient client(1000, 1.0);
  EXPECT_EQ(client.matrix_size(), 1024u);  // 10-bit reports
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(client.Perturb(999, rng), 1024u);
  }
}

}  // namespace
}  // namespace loloha

// Determinism of the parallel execution engine: for every protocol runner,
// Run(data, seed) must produce bit-identical output at any thread count —
// the RNG streams are keyed by (step, shard), never by which worker
// executes a shard (see sim/runner.h and util/thread_pool.h).

#include "sim/runner.h"

#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/loloha.h"
#include "core/loloha_params.h"
#include "data/generators.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace loloha {
namespace {

constexpr double kEps = 2.0;
constexpr double kEps1 = 1.0;
constexpr uint64_t kSeed = 20230328;

ProtocolSpec SpecFor(ProtocolId id) {
  ProtocolSpec spec;
  spec.id = id;
  spec.eps_perm = kEps;
  spec.eps_first = kEps1;
  return spec.Canonicalized();
}

RunResult RunWithThreads(ProtocolId id, const Dataset& data,
                         uint32_t num_threads) {
  RunnerOptions options;
  options.num_threads = num_threads;
  return MakeRunner(SpecFor(id), options)->Run(data, kSeed);
}

class ParallelSweep : public testing::TestWithParam<ProtocolId> {};

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ParallelSweep,
    testing::Values(ProtocolId::kRappor, ProtocolId::kLOsue,
                    ProtocolId::kLSoue, ProtocolId::kLOue, ProtocolId::kLGrr,
                    ProtocolId::kBiLoloha, ProtocolId::kOLoloha,
                    ProtocolId::kOneBitFlipPm, ProtocolId::kBBitFlipPm),
    // Named param_info: INSTANTIATE_TEST_SUITE_P splices the lambda into
    // a gtest function whose own parameter is `info` (-Wshadow).
    [](const testing::TestParamInfo<ProtocolId>& param_info) {
      std::string name = ProtocolName(param_info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST_P(ParallelSweep, BitIdenticalAtOneTwoAndEightThreads) {
  const Dataset data = GenerateSyn(600, 24, 5, 0.25, 17);
  const RunResult one = RunWithThreads(GetParam(), data, 1);
  const RunResult two = RunWithThreads(GetParam(), data, 2);
  const RunResult eight = RunWithThreads(GetParam(), data, 8);
  // EXPECT_EQ on the nested vectors: bit-identical doubles, not "close".
  EXPECT_EQ(one.estimates, two.estimates);
  EXPECT_EQ(one.estimates, eight.estimates);
  EXPECT_EQ(one.per_user_epsilon, two.per_user_epsilon);
  EXPECT_EQ(one.per_user_epsilon, eight.per_user_epsilon);
}

TEST_P(ParallelSweep, HardwareThreadCountAlsoIdentical) {
  const Dataset data = GenerateSyn(300, 16, 3, 0.25, 23);
  RunnerOptions hw;
  hw.num_threads = 0;  // resolve to hardware_concurrency()
  const RunResult automatic =
      MakeRunner(SpecFor(GetParam()), hw)->Run(data, kSeed);
  const RunResult sequential = RunWithThreads(GetParam(), data, 1);
  EXPECT_EQ(automatic.estimates, sequential.estimates);
}

TEST(ParallelRunnerTest, NaiveOlhBitIdenticalAcrossThreadCounts) {
  const Dataset data = GenerateSyn(500, 16, 4, 0.25, 29);
  RunResult results[3];
  const uint32_t threads[3] = {1, 2, 8};
  for (int i = 0; i < 3; ++i) {
    RunnerOptions options;
    options.num_threads = threads[i];
    ProtocolSpec naive;
    naive.id = ProtocolId::kNaiveOlh;
    naive.eps_perm = kEps;
    results[i] = MakeRunner(naive.Canonicalized(), options)->Run(data, kSeed);
  }
  EXPECT_EQ(results[0].estimates, results[1].estimates);
  EXPECT_EQ(results[0].estimates, results[2].estimates);
}

TEST(ParallelRunnerTest, ShardCountChangesTheStreamsButStaysDeterministic) {
  const Dataset data = GenerateSyn(400, 16, 4, 0.25, 31);
  RunnerOptions a;
  a.num_shards = 8;
  RunnerOptions b;
  b.num_shards = 16;
  const auto runner_a = MakeRunner(SpecFor(ProtocolId::kBiLoloha), a);
  const auto runner_b = MakeRunner(SpecFor(ProtocolId::kBiLoloha), b);
  const RunResult a1 = runner_a->Run(data, kSeed);
  const RunResult a2 = runner_a->Run(data, kSeed);
  const RunResult b1 = runner_b->Run(data, kSeed);
  EXPECT_EQ(a1.estimates, a2.estimates);  // same layout -> reproducible
  EXPECT_NE(a1.estimates, b1.estimates);  // different layout -> new draws
}

TEST(ParallelRunnerTest, ResolveHelpers) {
  RunnerOptions options;
  EXPECT_EQ(ResolveNumThreads(options), 1u);
  EXPECT_EQ(ResolveNumShards(options), kDefaultNumShards);
  options.num_threads = 0;
  EXPECT_GE(ResolveNumThreads(options), 1u);
  options.num_threads = 6;
  options.num_shards = 12;
  EXPECT_EQ(ResolveNumThreads(options), 6u);
  EXPECT_EQ(ResolveNumShards(options), 12u);
}

TEST(ParallelRunnerTest, NormalizeResolvesOnceAndPreservesTheRest) {
  ThreadPool pool(2);
  RunnerOptions options;
  options.pool = &pool;
  const RunnerOptions normalized = NormalizeRunnerOptions(options);
  EXPECT_EQ(normalized.num_threads, 1u);
  EXPECT_EQ(normalized.num_shards, kDefaultNumShards);
  EXPECT_EQ(normalized.pool, &pool);

  RunnerOptions hardware;
  hardware.num_threads = 0;
  EXPECT_GE(NormalizeRunnerOptions(hardware).num_threads, 1u);
  // Already-resolved options are a fixed point.
  const RunnerOptions twice = NormalizeRunnerOptions(normalized);
  EXPECT_EQ(twice.num_threads, normalized.num_threads);
  EXPECT_EQ(twice.num_shards, normalized.num_shards);
}

// Population-level check, bypassing the runner plumbing: the same
// LolohaPopulation stepped with pools of different sizes must agree.
TEST(ParallelRunnerTest, LolohaPopulationShardedStepPoolSizeInvariant) {
  const uint32_t n = 500;
  const uint32_t k = 24;
  const LolohaParams params = MakeLolohaParams(k, 4, kEps, kEps1);

  std::vector<std::vector<double>> per_pool_estimates;
  for (const uint32_t threads : {1u, 4u}) {
    Rng rng(kSeed);  // identical construction draws for both populations
    LolohaPopulation population(params, n, rng);
    ThreadPool pool(threads);
    std::vector<uint32_t> values(n);
    for (uint32_t u = 0; u < n; ++u) values[u] = u % k;
    std::vector<double> flat;
    for (uint32_t t = 0; t < 3; ++t) {
      for (double e : population.Step(values, 1000 + t, pool, 32)) {
        flat.push_back(e);
      }
    }
    per_pool_estimates.push_back(std::move(flat));
  }
  EXPECT_EQ(per_pool_estimates[0], per_pool_estimates[1]);
}

}  // namespace
}  // namespace loloha

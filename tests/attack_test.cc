#include "sim/attack.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace loloha {
namespace {

TEST(DBitFlipDetectionTest, NoChangesMeansNothingToDetect) {
  const Dataset data = GenerateStatic(200, 40, 10, 1.0, 1);
  const DetectionResult result = DBitFlipDetection(data, 40, 1, 1.0, 2);
  EXPECT_EQ(result.users_with_changes, 0u);
  EXPECT_DOUBLE_EQ(result.PercentFullyDetected(), 0.0);
}

TEST(DBitFlipDetectionTest, FullSamplingDetectsAlmostEveryone) {
  // Table 2, d = b column: ~100% of users have all change points exposed
  // because two memo vectors over many sampled bits almost surely differ.
  const Dataset data = GenerateSyn(1000, 360, 30, 0.25, 3);
  const DetectionResult result =
      DBitFlipDetection(data, 360, 360, 1.0, 4);
  EXPECT_GT(result.users_with_changes, 900u);
  EXPECT_GT(result.PercentFullyDetected(), 99.0);
}

TEST(DBitFlipDetectionTest, SingleBitRarelyDetectsEveryChange) {
  // Table 2, d = 1 column: ~0%. A single memoized bit collides across
  // buckets with probability ~1/2 per change, so with the paper's tau =
  // 120 (≈30 changes per user) full detection is vanishingly rare.
  const Dataset data = GenerateSyn(800, 360, 120, 0.25, 5);
  const DetectionResult result = DBitFlipDetection(data, 360, 1, 1.0, 6);
  EXPECT_LT(result.PercentFullyDetected(), 1.0);
}

TEST(DBitFlipDetectionTest, DetectionGrowsWithD) {
  const Dataset data = GenerateSyn(1500, 100, 20, 0.25, 7);
  const double d1 =
      DBitFlipDetection(data, 100, 1, 2.0, 8).PercentFullyDetected();
  const double d10 =
      DBitFlipDetection(data, 100, 10, 2.0, 8).PercentFullyDetected();
  const double db =
      DBitFlipDetection(data, 100, 100, 2.0, 8).PercentFullyDetected();
  EXPECT_LE(d1, d10);
  EXPECT_LE(d10, db);
  EXPECT_GT(db, 95.0);
}

TEST(DBitFlipDetectionTest, SingleBitDetectionShrinksWithEps) {
  // Table 2's d = 1 trend: higher ε∞ -> the sampled bit is less noisy,
  // so two buckets' memo bits more often agree... (p for the sampled
  // bucket and q for others drift apart, but both saturate: the chance
  // that two *unsampled* buckets draw the same Bern(q) bit grows as q->0).
  const Dataset data = GenerateAdultLike(4000, 40, 9);
  const double low =
      DBitFlipDetection(data, 96, 1, 0.5, 10).PercentFullyDetected();
  const double high =
      DBitFlipDetection(data, 96, 1, 5.0, 10).PercentFullyDetected();
  EXPECT_LE(high, low + 0.1);
}

TEST(DBitFlipDetectionTest, DeterministicForSeed) {
  const Dataset data = GenerateSyn(500, 50, 10, 0.3, 11);
  const DetectionResult a = DBitFlipDetection(data, 50, 5, 1.0, 12);
  const DetectionResult b = DBitFlipDetection(data, 50, 5, 1.0, 12);
  EXPECT_EQ(a.users_fully_detected, b.users_fully_detected);
  EXPECT_EQ(a.users_with_changes, b.users_with_changes);
}

TEST(DBitFlipDetectionTest, BucketizedChangesOnly) {
  // Values that move within one bucket are not changes at all.
  Dataset data("inbucket", 10, 1, 4);
  data.set_value(0, 0, 0);
  data.set_value(0, 1, 1);  // same bucket when b = 5 (values 0,1 -> b0)
  data.set_value(0, 2, 0);
  data.set_value(0, 3, 1);
  const DetectionResult result = DBitFlipDetection(data, 5, 5, 1.0, 13);
  EXPECT_EQ(result.users_with_changes, 0u);
}

}  // namespace
}  // namespace loloha

// Monte-Carlo outer-loop driver (sim/monte_carlo.h): the parallel
// (config, run) grid must be byte-identical to the serial fallback at
// every pool size — the property the fig3 panel binaries rely on.

#include "sim/monte_carlo.h"

#include <atomic>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "sim/metrics.h"
#include "util/thread_pool.h"

namespace loloha {
namespace {

constexpr uint64_t kSeed = 20230328;

std::vector<std::vector<double>> RunGrid(const Dataset& data,
                                         ThreadPool* pool,
                                         uint32_t num_threads) {
  std::vector<ProtocolSpec> grid;
  for (const ProtocolId id :
       {ProtocolId::kBiLoloha, ProtocolId::kLOsue, ProtocolId::kLGrr}) {
    ProtocolSpec spec;
    spec.id = id;
    spec.eps_perm = 2.0;
    spec.eps_first = 1.0;
    grid.push_back(spec.Canonicalized());
  }
  RunnerOptions options;
  options.num_threads = num_threads;
  options.pool = pool;
  MonteCarloOptions mc;
  mc.runs = 3;
  mc.base_seed = kSeed;
  mc.pool = pool;
  return RunMonteCarloGrid(
      [&](uint32_t c) { return MakeRunner(grid[c], options); },
      data, static_cast<uint32_t>(grid.size()), mc,
      [&](uint32_t, const RunResult& result) {
        return MseAvg(data, result.estimates);
      });
}

TEST(MonteCarloTest, ParallelGridByteIdenticalToSerialFallback) {
  const Dataset data = GenerateSyn(300, 16, 3, 0.25, 11);
  const std::vector<std::vector<double>> serial = RunGrid(data, nullptr, 1);

  ASSERT_EQ(serial.size(), 3u);
  for (const auto& row : serial) ASSERT_EQ(row.size(), 3u);

  for (const uint32_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const std::vector<std::vector<double>> parallel =
        RunGrid(data, &pool, threads);
    EXPECT_EQ(serial, parallel) << "threads=" << threads;
  }
}

TEST(MonteCarloTest, RepeatedInvocationReproducible) {
  const Dataset data = GenerateSyn(200, 16, 2, 0.25, 13);
  ThreadPool pool(4);
  EXPECT_EQ(RunGrid(data, &pool, 4), RunGrid(data, &pool, 4));
}

TEST(MonteCarloTest, CellSeedsAreDistinctAcrossConfigsAndRuns) {
  std::set<uint64_t> seeds;
  for (uint32_t config = 0; config < 20; ++config) {
    for (uint32_t run = 0; run < 20; ++run) {
      seeds.insert(MonteCarloSeed(kSeed, config, run));
    }
  }
  EXPECT_EQ(seeds.size(), 400u);
  // And keyed by the base seed.
  EXPECT_NE(MonteCarloSeed(1, 0, 0), MonteCarloSeed(2, 0, 0));
}

TEST(MonteCarloTest, ProgressReportsEveryCellAndEndsAtTotal) {
  const Dataset data = GenerateSyn(100, 8, 2, 0.25, 17);
  for (const uint32_t threads : {0u, 2u}) {  // 0 = serial fallback
    std::unique_ptr<ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
    MonteCarloOptions mc;
    mc.runs = 3;
    mc.base_seed = kSeed;
    mc.pool = pool.get();
    std::atomic<uint32_t> calls{0};
    std::atomic<uint32_t> saw_total{0};
    mc.progress = [&](uint32_t completed, uint32_t total) {
      calls.fetch_add(1);
      EXPECT_LE(completed, total);
      if (completed == total) saw_total.fetch_add(1);
    };
    RunMonteCarloGrid(
        [&](uint32_t) {
          return MakeRunner(ProtocolSpec::MustParse(
              "biloloha:eps_perm=2,eps_first=1"));
        },
        data, 4, mc, [](uint32_t, const RunResult&) { return 0.0; });
    EXPECT_EQ(calls.load(), 12u) << "threads=" << threads;
    EXPECT_EQ(saw_total.load(), 1u);
  }
}

TEST(MonteCarloTest, MetricReceivesConfigIndex) {
  const Dataset data = GenerateSyn(100, 8, 2, 0.25, 15);
  MonteCarloOptions mc;
  mc.runs = 2;
  mc.base_seed = kSeed;
  const auto grid = RunMonteCarloGrid(
      [&](uint32_t) {
        return MakeRunner(ProtocolSpec::MustParse(
              "biloloha:eps_perm=2,eps_first=1"));
      },
      data, 4, mc,
      [](uint32_t config, const RunResult&) {
        return static_cast<double>(config);
      });
  for (uint32_t c = 0; c < 4; ++c) {
    for (const double v : grid[c]) EXPECT_EQ(v, c);
  }
}

}  // namespace
}  // namespace loloha

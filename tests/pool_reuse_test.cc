// Shared-pool semantics: Submit/WaitGroup task execution, nested
// ParallelFor running inline, PoolLease borrow-or-own, and — the property
// the Monte-Carlo outer loop depends on — runners borrowing one shared
// pool producing bit-identical results to runners owning private pools.

#include <atomic>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/loloha.h"
#include "core/loloha_params.h"
#include "data/generators.h"
#include "sim/runner.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace loloha {
namespace {

TEST(WaitGroupTest, RunsEveryTaskExactlyOnce) {
  for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    WaitGroup wg;
    const int n = 100;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    for (int i = 0; i < n; ++i) {
      pool.Submit(wg, [&hits, i] { hits[i].fetch_add(1); });
    }
    pool.Wait(wg);
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(WaitGroupTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(4);
  WaitGroup wg;
  pool.Wait(wg);  // must not hang
}

TEST(WaitGroupTest, ReusableAcrossRounds) {
  ThreadPool pool(3);
  WaitGroup wg;
  std::atomic<int> count{0};
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 7; ++i) {
      pool.Submit(wg, [&count] { count.fetch_add(1); });
    }
    pool.Wait(wg);
  }
  EXPECT_EQ(count.load(), 70);
}

TEST(WaitGroupTest, TasksMaySubmitFurtherTasks) {
  for (const uint32_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    WaitGroup wg;
    std::atomic<int> count{0};
    for (int i = 0; i < 5; ++i) {
      pool.Submit(wg, [&] {
        count.fetch_add(1);
        pool.Submit(wg, [&count] { count.fetch_add(10); });
      });
    }
    pool.Wait(wg);
    EXPECT_EQ(count.load(), 55) << "threads=" << threads;
  }
}

TEST(PoolReuseTest, NestedParallelForRunsInlineInShardOrder) {
  for (const uint32_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    WaitGroup wg;
    std::vector<std::vector<uint32_t>> orders(3);
    for (int t = 0; t < 3; ++t) {
      pool.Submit(wg, [&pool, &orders, t] {
        EXPECT_TRUE(pool.OnPoolThread());
        // Nested loop must execute on this thread, in shard order.
        pool.ParallelFor(8, [&orders, t](uint32_t shard) {
          orders[t].push_back(shard);
        });
      });
    }
    pool.Wait(wg);
    for (int t = 0; t < 3; ++t) {
      ASSERT_EQ(orders[t].size(), 8u);
      for (uint32_t s = 0; s < 8; ++s) EXPECT_EQ(orders[t][s], s);
    }
  }
}

TEST(PoolReuseTest, ParallelForShardsMayNestParallelFor) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(16);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(4, [&](uint32_t outer) {
    pool.ParallelFor(4, [&](uint32_t inner) {
      hits[outer * 4 + inner].fetch_add(1);
    });
  });
  for (int i = 0; i < 16; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(PoolReuseTest, OnPoolThreadDistinguishesPools) {
  ThreadPool a(2);
  ThreadPool b(2);
  EXPECT_FALSE(a.OnPoolThread());
  WaitGroup wg;
  a.Submit(wg, [&] {
    EXPECT_TRUE(a.OnPoolThread());
    EXPECT_FALSE(b.OnPoolThread());
  });
  a.Wait(wg);
}

TEST(PoolLeaseTest, BorrowsWhenGivenAndOwnsOtherwise) {
  ThreadPool shared(3);
  const PoolLease borrowed(&shared, 1);
  EXPECT_EQ(&*borrowed, &shared);
  EXPECT_EQ(borrowed->num_threads(), 3u);

  const PoolLease owned(nullptr, 2);
  EXPECT_NE(&*owned, &shared);
  EXPECT_EQ(owned->num_threads(), 2u);
}

// Canonical spec at the suite's budgets (eps = 2, eps1 = 1).
ProtocolSpec SpecFor(ProtocolId id) {
  ProtocolSpec spec;
  spec.id = id;
  spec.eps_perm = 2.0;
  spec.eps_first = 1.0;
  return spec.Canonicalized();
}

// The tentpole property: a runner borrowing a shared pool must produce
// byte-identical output to the same runner with a private pool, at every
// pool size, including when the Run itself executes inside a pool task.
TEST(PoolReuseTest, BorrowedPoolBitIdenticalToOwnedPool) {
  const Dataset data = GenerateSyn(400, 24, 4, 0.25, 19);
  const uint64_t seed = 20230328;
  const std::vector<ProtocolId> protocols = {
      ProtocolId::kBiLoloha, ProtocolId::kLOsue, ProtocolId::kLGrr,
      ProtocolId::kBBitFlipPm};

  for (const ProtocolId id : protocols) {
    RunnerOptions owned;
    owned.num_threads = 1;
    const RunResult baseline = MakeRunner(SpecFor(id), owned)->Run(data, seed);

    for (const uint32_t threads : {1u, 4u}) {
      ThreadPool shared(threads);
      RunnerOptions borrowed;
      borrowed.num_threads = threads;
      borrowed.pool = &shared;
      const auto runner = MakeRunner(SpecFor(id), borrowed);

      // Direct call from the driving thread.
      const RunResult direct = runner->Run(data, seed);
      EXPECT_EQ(baseline.estimates, direct.estimates)
          << ProtocolName(id) << " threads=" << threads;
      EXPECT_EQ(baseline.per_user_epsilon, direct.per_user_epsilon);

      // Run inside a pool task (the Monte-Carlo outer-loop shape): the
      // inner sharding must detect the nesting and still match.
      RunResult nested;
      WaitGroup wg;
      shared.Submit(wg, [&] { nested = runner->Run(data, seed); });
      shared.Wait(wg);
      EXPECT_EQ(baseline.estimates, nested.estimates)
          << ProtocolName(id) << " nested, threads=" << threads;
      EXPECT_EQ(baseline.per_user_epsilon, nested.per_user_epsilon);
    }
  }
}

// Many runners sharing one pool concurrently (distinct result slots) —
// the actual panel-driver shape, cross-checked against serial execution.
TEST(PoolReuseTest, ConcurrentRunsOnSharedPoolMatchSerialRuns) {
  const Dataset data = GenerateSyn(300, 16, 3, 0.25, 21);
  const std::vector<ProtocolId> grid = {
      ProtocolId::kBiLoloha, ProtocolId::kOLoloha, ProtocolId::kLOsue,
      ProtocolId::kLGrr};

  std::vector<RunResult> serial(grid.size());
  {
    RunnerOptions options;
    options.num_threads = 1;
    for (size_t i = 0; i < grid.size(); ++i) {
      serial[i] = MakeRunner(SpecFor(grid[i]), options)->Run(data, 100 + i);
    }
  }

  ThreadPool pool(4);
  RunnerOptions options;
  options.num_threads = 4;
  options.pool = &pool;
  std::vector<RunResult> parallel(grid.size());
  WaitGroup wg;
  for (size_t i = 0; i < grid.size(); ++i) {
    pool.Submit(wg, [&, i] {
      parallel[i] = MakeRunner(SpecFor(grid[i]), options)->Run(data, 100 + i);
    });
  }
  pool.Wait(wg);

  for (size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(serial[i].estimates, parallel[i].estimates)
        << ProtocolName(grid[i]);
    EXPECT_EQ(serial[i].per_user_epsilon, parallel[i].per_user_epsilon);
  }
}

// Regression for the false-sharing fix: every per-shard accumulator row
// handed to a pool worker must start on its own 64-byte cache line and be
// padded so no two shards' rows share one — at *any* row length, in
// particular the small-k shapes where a plain num_shards * k buffer packs
// several shards per line.
TEST(CacheAlignedRowsTest, ShardRowsAre64ByteAlignedAndLinePrivate) {
  for (const size_t row_len : {size_t{1}, size_t{3}, size_t{7}, size_t{8},
                               size_t{16}, size_t{37}, size_t{64},
                               size_t{129}}) {
    CacheAlignedRows<uint64_t> rows(6, row_len);
    EXPECT_GE(rows.stride(), row_len);
    EXPECT_EQ(rows.stride() * sizeof(uint64_t) % kCacheLineBytes, 0u);
    for (uint32_t r = 0; r < rows.num_rows(); ++r) {
      const auto address = reinterpret_cast<uintptr_t>(rows.Row(r));
      EXPECT_EQ(address % kCacheLineBytes, 0u)
          << "row_len=" << row_len << " row=" << r;
      if (r > 0) {
        // Rows must not overlap — and must not even touch the same line.
        EXPECT_GE(reinterpret_cast<uintptr_t>(rows.Row(r)),
                  reinterpret_cast<uintptr_t>(rows.Row(r - 1)) +
                      row_len * sizeof(uint64_t));
      }
    }
  }
  // Signedness twin (the dBitFlipPM / LUE delta rows).
  CacheAlignedRows<int64_t> deltas(3, 5);
  for (uint32_t r = 0; r < 3; ++r) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(deltas.Row(r)) % kCacheLineBytes,
              0u);
  }
}

TEST(CacheAlignedRowsTest, MergeAndClearBehaveLikeFlatRows) {
  CacheAlignedRows<uint64_t> rows(4, 6);
  for (uint32_t r = 0; r < 4; ++r) {
    for (size_t i = 0; i < 6; ++i) rows.Row(r)[i] = r + i;
  }
  std::vector<uint64_t> merged(6, 100);
  rows.MergeInto(merged.data());
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(merged[i], 100 + 4 * i + 0 + 1 + 2 + 3);
  }
  rows.Clear();
  for (uint32_t r = 0; r < 4; ++r) {
    for (size_t i = 0; i < 6; ++i) EXPECT_EQ(rows.Row(r)[i], 0u);
  }
}

// Sharded LolohaPopulation construction: identical hash rows (and hence
// identical Step output) for every pool size; sharded-vs-serial pool of 1.
TEST(PoolReuseTest, LolohaShardedConstructionPoolSizeInvariant) {
  const uint32_t n = 700;
  const uint32_t k = 24;
  const LolohaParams params = MakeLolohaParams(k, 4, 2.0, 1.0);
  const uint64_t seed = 77;

  std::vector<std::vector<double>> per_pool;
  for (const uint32_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    LolohaPopulation population(params, n, seed, pool, 32);
    std::vector<uint32_t> values(n);
    for (uint32_t u = 0; u < n; ++u) values[u] = (u * 7) % k;
    std::vector<double> flat;
    for (uint32_t t = 0; t < 3; ++t) {
      for (double e : population.Step(values, 500 + t, pool, 32)) {
        flat.push_back(e);
      }
    }
    per_pool.push_back(std::move(flat));
  }
  EXPECT_EQ(per_pool[0], per_pool[1]);
  EXPECT_EQ(per_pool[0], per_pool[2]);
}

// Changing the construction shard count changes which hashes are drawn
// (new streams) but stays deterministic.
TEST(PoolReuseTest, LolohaShardedConstructionShardLayoutKeyed) {
  const LolohaParams params = MakeLolohaParams(16, 4, 2.0, 1.0);
  ThreadPool pool(2);
  std::vector<uint32_t> values(200);
  for (uint32_t u = 0; u < 200; ++u) values[u] = u % 16;

  auto step_once = [&](uint32_t ctor_shards) {
    LolohaPopulation population(params, 200, 9, pool, ctor_shards);
    return population.Step(values, 1234, pool, 16);
  };
  EXPECT_EQ(step_once(8), step_once(8));  // reproducible
  EXPECT_NE(step_once(8), step_once(16));  // layout-keyed streams
}

}  // namespace
}  // namespace loloha

#include "util/packed_bits.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace loloha {
namespace {

TEST(PackedBitsTest, SetAndGet) {
  PackedBits bits(130);  // spans three words
  EXPECT_EQ(bits.size(), 130u);
  for (uint32_t i = 0; i < 130; ++i) EXPECT_FALSE(bits.Get(i));
  bits.Set(0, true);
  bits.Set(63, true);
  bits.Set(64, true);
  bits.Set(129, true);
  EXPECT_TRUE(bits.Get(0));
  EXPECT_TRUE(bits.Get(63));
  EXPECT_TRUE(bits.Get(64));
  EXPECT_TRUE(bits.Get(129));
  EXPECT_FALSE(bits.Get(1));
  bits.Set(63, false);
  EXPECT_FALSE(bits.Get(63));
}

TEST(PackedBitsTest, PopCount) {
  PackedBits bits(200);
  EXPECT_EQ(bits.PopCount(), 0u);
  for (uint32_t i = 0; i < 200; i += 7) bits.Set(i, true);
  EXPECT_EQ(bits.PopCount(), 29u);
}

TEST(PackedBitsTest, AddAndSubCounts) {
  PackedBits bits(70);
  bits.Set(3, true);
  bits.Set(69, true);
  std::vector<uint64_t> counts(70, 5);
  bits.AddToCounts(counts);
  EXPECT_EQ(counts[3], 6u);
  EXPECT_EQ(counts[69], 6u);
  EXPECT_EQ(counts[0], 5u);
  bits.SubFromCounts(counts);
  EXPECT_EQ(counts[3], 5u);
  EXPECT_EQ(counts[69], 5u);
}

TEST(PackedBitsTest, ForEachSetBitAscending) {
  PackedBits bits(128);
  bits.Set(5, true);
  bits.Set(64, true);
  bits.Set(127, true);
  std::vector<uint32_t> seen;
  bits.ForEachSetBit([&seen](uint32_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<uint32_t>{5, 64, 127}));
}

TEST(PackedBitsTest, Equality) {
  PackedBits a(10);
  PackedBits b(10);
  EXPECT_TRUE(a == b);
  a.Set(4, true);
  EXPECT_FALSE(a == b);
  b.Set(4, true);
  EXPECT_TRUE(a == b);
}

TEST(PackedBitsTest, SampleOneHotNoisyHotBitProbability) {
  Rng rng(1);
  constexpr int kTrials = 20000;
  constexpr double kPHot = 0.8;
  constexpr double kPCold = 0.2;
  int hot = 0;
  for (int i = 0; i < kTrials; ++i) {
    const PackedBits bits =
        PackedBits::SampleOneHotNoisy(96, 40, kPHot, kPCold, rng);
    hot += bits.Get(40);
  }
  EXPECT_NEAR(hot / static_cast<double>(kTrials), kPHot, 0.02);
}

TEST(PackedBitsTest, SampleOneHotNoisyColdBitsProbability) {
  Rng rng(2);
  constexpr int kTrials = 5000;
  constexpr double kPCold = 0.3;
  int64_t cold_total = 0;
  for (int i = 0; i < kTrials; ++i) {
    const PackedBits bits =
        PackedBits::SampleOneHotNoisy(96, 0, 0.9, kPCold, rng);
    cold_total += bits.PopCount() - (bits.Get(0) ? 1 : 0);
  }
  const double mean_cold = static_cast<double>(cold_total) / kTrials / 95.0;
  EXPECT_NEAR(mean_cold, kPCold, 0.01);
}

TEST(PackedBitsTest, SampleOneHotNoisyNoBitsBeyondSize) {
  Rng rng(3);
  // p_cold = 1 would set every modeled bit; tail bits of the last word
  // must stay clear so popcount stays consistent.
  const PackedBits bits = PackedBits::SampleOneHotNoisy(70, 3, 1.0, 1.0, rng);
  EXPECT_EQ(bits.PopCount(), 70u);
}

}  // namespace
}  // namespace loloha

#include "data/io.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "data/generators.h"

namespace loloha {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream file(path);
  file << content;
}

TEST(DatasetCsvTest, SaveLoadRoundTrip) {
  const Dataset original = GenerateSyn(30, 12, 5, 0.3, 1);
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(SaveDatasetCsv(original, path));
  const auto loaded = LoadDatasetCsv(path, "loaded");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->n(), original.n());
  EXPECT_EQ(loaded->tau(), original.tau());
  // The generator may not hit all 12 values with n = 30; the loader
  // dictionary-encodes, so compare via the de-duplicated domain.
  EXPECT_EQ(loaded->k(), original.DistinctValuesGlobal());
  // Ordering of values is preserved up to dictionary relabeling; change
  // structure must be identical.
  EXPECT_DOUBLE_EQ(loaded->AverageChangeRate(),
                   original.AverageChangeRate());
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, LoadsHandWrittenMatrix) {
  const std::string path = TempPath("manual.csv");
  WriteFile(path, "10,20,10\n30,30,20\n");
  const auto data = LoadDatasetCsv(path, "m");
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->n(), 2u);
  EXPECT_EQ(data->tau(), 3u);
  EXPECT_EQ(data->k(), 3u);  // codes {10, 20, 30}
  EXPECT_EQ(data->value(0, 0), 0u);
  EXPECT_EQ(data->value(0, 1), 1u);
  EXPECT_EQ(data->value(1, 0), 2u);
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, ToleratesWhitespaceAndBlankLines) {
  const std::string path = TempPath("ws.csv");
  WriteFile(path, " 1 , 2 \n\n 2 , 1 \n");
  const auto data = LoadDatasetCsv(path, "ws");
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->n(), 2u);
  EXPECT_EQ(data->k(), 2u);
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, RejectsRaggedRows) {
  const std::string path = TempPath("ragged.csv");
  WriteFile(path, "1,2,3\n4,5\n");
  EXPECT_FALSE(LoadDatasetCsv(path, "r").has_value());
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, RejectsNonInteger) {
  const std::string path = TempPath("bad.csv");
  WriteFile(path, "1,x\n");
  EXPECT_FALSE(LoadDatasetCsv(path, "b").has_value());
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, RejectsMissingFileAndEmptyFile) {
  EXPECT_FALSE(LoadDatasetCsv(TempPath("nonexistent.csv"), "x").has_value());
  const std::string path = TempPath("empty.csv");
  WriteFile(path, "");
  EXPECT_FALSE(LoadDatasetCsv(path, "e").has_value());
  std::remove(path.c_str());
}

TEST(LoadColumnTest, ParsesLines) {
  const std::string path = TempPath("col.txt");
  WriteFile(path, "40\n20\n40\n60\n");
  const auto column = LoadColumn(path);
  ASSERT_TRUE(column.has_value());
  EXPECT_EQ(*column, (std::vector<int64_t>{40, 20, 40, 60}));
  std::remove(path.c_str());
}

TEST(ExpandColumnByPermutationTest, GlobalHistogramConstant) {
  const std::vector<int64_t> column = {40, 40, 40, 20, 20, 60, 60, 60, 60,
                                       10};
  const Dataset data = ExpandColumnByPermutation(column, 8, "adult", 3);
  EXPECT_EQ(data.n(), 10u);
  EXPECT_EQ(data.tau(), 8u);
  EXPECT_EQ(data.k(), 4u);
  const std::vector<double> f0 = data.TrueFrequenciesAt(0);
  for (uint32_t t = 1; t < 8; ++t) {
    const std::vector<double> ft = data.TrueFrequenciesAt(t);
    for (uint32_t v = 0; v < data.k(); ++v) {
      ASSERT_DOUBLE_EQ(ft[v], f0[v]);
    }
  }
  // Code 3 (value 60) holds 40% of the mass.
  EXPECT_DOUBLE_EQ(f0[3], 0.4);
}

TEST(ExpandColumnByPermutationTest, UsersActuallyShuffle) {
  std::vector<int64_t> column(100);
  for (size_t i = 0; i < column.size(); ++i) {
    column[i] = static_cast<int64_t>(i % 10);
  }
  const Dataset data = ExpandColumnByPermutation(column, 10, "p", 4);
  EXPECT_GT(data.AverageChangeRate(), 0.5);
}

}  // namespace
}  // namespace loloha

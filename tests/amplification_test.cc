#include "shuffle/amplification.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace loloha {
namespace {

constexpr double kDelta = 1e-6;

TEST(AmplificationAppliesTest, PreconditionBoundary) {
  // eps0 <= log(n / (16 log(2/delta))).
  EXPECT_TRUE(AmplificationApplies(0.5, 100000, kDelta));
  EXPECT_FALSE(AmplificationApplies(10.0, 1000, kDelta));
  EXPECT_FALSE(AmplificationApplies(0.5, 1, kDelta));
}

TEST(AmplifiedEpsilonTest, StrictlyTighterForLargeN) {
  for (const double eps0 : {0.25, 0.5, 1.0, 2.0}) {
    const double amplified = AmplifiedEpsilon(eps0, 1000000, kDelta);
    EXPECT_LT(amplified, eps0) << "eps0=" << eps0;
    EXPECT_GT(amplified, 0.0);
  }
}

TEST(AmplifiedEpsilonTest, MonotoneDecreasingInN) {
  double prev = 1e9;
  for (const uint64_t n : {10000ULL, 100000ULL, 1000000ULL, 10000000ULL}) {
    const double amplified = AmplifiedEpsilon(1.0, n, kDelta);
    EXPECT_LT(amplified, prev);
    prev = amplified;
  }
}

TEST(AmplifiedEpsilonTest, MonotoneIncreasingInLocalEps) {
  double prev = 0.0;
  for (const double eps0 : {0.1, 0.3, 0.6, 1.0, 1.5}) {
    const double amplified = AmplifiedEpsilon(eps0, 1000000, kDelta);
    EXPECT_GT(amplified, prev);
    prev = amplified;
  }
}

TEST(AmplifiedEpsilonTest, FallsBackToLocalWhenBoundInapplicable) {
  EXPECT_DOUBLE_EQ(AmplifiedEpsilon(8.0, 100, kDelta), 8.0);
}

TEST(AmplifiedEpsilonTest, RootNScaling) {
  // The dominant term scales as 1/sqrt(n): quadrupling n should roughly
  // halve the amplified epsilon in the small-eps regime.
  const double e1 = AmplifiedEpsilon(0.5, 100000, kDelta);
  const double e2 = AmplifiedEpsilon(0.5, 400000, kDelta);
  EXPECT_NEAR(e1 / e2, 2.0, 0.25);
}

TEST(MaxLocalEpsilonTest, InvertsTheBound) {
  const uint64_t n = 1000000;
  const double target = 0.1;
  const double eps_local = MaxLocalEpsilonForCentralTarget(target, n, kDelta);
  ASSERT_GT(eps_local, 0.0);
  EXPECT_NEAR(AmplifiedEpsilon(eps_local, n, kDelta), target, 1e-6);
  EXPECT_GT(eps_local, target);  // amplification buys local budget
}

TEST(MaxLocalEpsilonTest, ReturnsCapWhenTargetIsLoose) {
  const uint64_t n = 100000;
  const double cap =
      std::log(static_cast<double>(n) / (16.0 * std::log(2.0 / kDelta)));
  EXPECT_DOUBLE_EQ(MaxLocalEpsilonForCentralTarget(100.0, n, kDelta), cap);
}

TEST(ShuffleReportsTest, PermutationPreservesMultiset) {
  Rng rng(1);
  std::vector<int> reports(100);
  std::iota(reports.begin(), reports.end(), 0);
  std::vector<int> shuffled = reports;
  ShuffleReports(shuffled, rng);
  EXPECT_NE(shuffled, reports);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, reports);
}

TEST(ShuffleReportsTest, UniformPositions) {
  // Element 0 should land in every slot equally often.
  Rng rng(2);
  constexpr int kSize = 8;
  constexpr int kTrials = 80000;
  std::vector<int> counts(kSize, 0);
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<int> v(kSize);
    std::iota(v.begin(), v.end(), 0);
    ShuffleReports(v, rng);
    for (int i = 0; i < kSize; ++i) {
      if (v[i] == 0) {
        ++counts[i];
        break;
      }
    }
  }
  for (const int c : counts) {
    EXPECT_NEAR(c / static_cast<double>(kTrials), 1.0 / kSize, 0.01);
  }
}

}  // namespace
}  // namespace loloha

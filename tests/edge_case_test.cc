// Edge cases and contract enforcement: boundary domains, empty steps,
// and LOLOHA_CHECK death tests verifying that precondition violations
// abort rather than corrupt state.

#include <vector>

#include <gtest/gtest.h>

#include "core/loloha_params.h"
#include "longitudinal/chain.h"
#include "multidim/multidim.h"
#include "oracle/grr.h"
#include "oracle/hadamard.h"
#include "oracle/params.h"
#include "oracle/subset_selection.h"
#include "util/rng.h"

namespace loloha {
namespace {

TEST(EdgeCaseTest, GrrOnBinaryDomainIsClassicRandomizedResponse) {
  // k = 2 GRR == Warner's randomized response.
  const PerturbParams params = GrrParams(1.0, 2);
  EXPECT_NEAR(params.p + params.q, 1.0, 1e-12);
  GrrClient client(2, 1.0);
  Rng rng(1);
  int ones = 0;
  for (int i = 0; i < 50000; ++i) ones += client.Perturb(1, rng);
  EXPECT_NEAR(ones / 50000.0, params.p, 0.01);
}

TEST(EdgeCaseTest, HadamardSingleValueDomain) {
  // k = 1: K = 2, only column 1 is used. Estimation trivially recovers 1.
  const HadamardResponseClient client(1, 1.0);
  EXPECT_EQ(client.matrix_size(), 2u);
  HadamardResponseServer server(1, 1.0);
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    server.Accumulate(client.Perturb(0, rng));
  }
  EXPECT_NEAR(server.Estimate()[0], 1.0, 0.03);
}

TEST(EdgeCaseTest, SubsetSizeBoundsAtTinyDomains) {
  EXPECT_EQ(SubsetSize(2, 0.01), 1u);  // w in [1, k-1]
  EXPECT_EQ(SubsetSize(2, 10.0), 1u);
}

TEST(EdgeCaseTest, LolohaGEqualsKIsAllowed) {
  // g need not be smaller than k; with g = k the hash is just a random
  // relabeling and LOLOHA degenerates gracefully.
  const LolohaParams params = MakeLolohaParams(8, 8, 2.0, 1.0);
  EXPECT_EQ(params.g, 8u);
  EXPECT_GT(params.prr.p, 1.0 / 8.0);  // estimator still invertible
}

TEST(EdgeCaseTest, MultidimSingleAttributeSampleAlwaysPicksIt) {
  MultidimConfig config;
  config.domain_sizes = {6};
  config.eps_perm = 2.0;
  config.eps_first = 1.0;
  config.strategy = MultidimStrategy::kSample;
  config.g = 2;
  Rng rng(3);
  MultidimLolohaClient client(config, rng);
  ASSERT_TRUE(client.sampled_attribute().has_value());
  EXPECT_EQ(*client.sampled_attribute(), 0u);
}

TEST(EdgeCaseTest, MultidimServerEmptyAttributeYieldsEmptyVector) {
  MultidimConfig config;
  config.domain_sizes = {4, 4};
  config.eps_perm = 2.0;
  config.eps_first = 1.0;
  config.strategy = MultidimStrategy::kSample;
  config.g = 2;
  MultidimLolohaServer server(config);
  server.BeginStep();
  // No reports at all: both attributes empty.
  const auto estimates = server.EstimateStep();
  EXPECT_TRUE(estimates[0].empty());
  EXPECT_TRUE(estimates[1].empty());
}

using EdgeCaseDeathTest = ::testing::Test;

TEST(EdgeCaseDeathTest, ChainRejectsInvertedBudgets) {
  EXPECT_DEATH(LSueChain(1.0, 2.0), "ε1 < ε∞");
  EXPECT_DEATH(LolohaIrrEpsilon(1.0, 1.0), "0 < ε1 < ε∞");
}

TEST(EdgeCaseDeathTest, GrrRejectsDegenerateDomain) {
  EXPECT_DEATH(GrrParams(1.0, 1), "domain of size >= 2");
  EXPECT_DEATH(GrrParams(0.0, 4), "epsilon must be positive");
}

TEST(EdgeCaseDeathTest, LolohaRejectsTinyHashRange) {
  EXPECT_DEATH(MakeLolohaParams(10, 1, 2.0, 1.0), "at least 2");
}

TEST(EdgeCaseDeathTest, GrrClientRejectsOutOfDomainValue) {
  GrrClient client(4, 1.0);
  Rng rng(4);
  // Release builds compile LOLOHA_DCHECK out; route through the server
  // accumulate path, which uses a hard check.
  GrrServer server(4, 1.0);
  EXPECT_DEATH(server.Accumulate(7), "report < k_");
  (void)client;
}

}  // namespace
}  // namespace loloha

// Self-test for the debug-build lock-order deadlock detector
// (util/lock_order.h). Seeds deliberate inversions with test-reserved
// ranks and asserts the detector aborts with the report — including both
// witness stacks: the current thread's held stack and the first-seen
// witness recorded on the conflicting acquired-before edge.
//
// The death tests fork (threadsafe style: re-exec from main, so the
// child's process-wide graph starts clean) and each statement builds its
// own edge history before triggering the inversion, so tests do not
// depend on execution order.

#include "util/lock_order.h"
#include "util/thread_annotations.h"

#include <gtest/gtest.h>

namespace loloha {
namespace {

#if LOLOHA_LOCK_ORDER_CHECKS

constexpr LockRank kRankA{lock_rank::kTestBase + 0, "test.A"};
constexpr LockRank kRankB{lock_rank::kTestBase + 1, "test.B"};
constexpr LockRank kRankC{lock_rank::kTestBase + 2, "test.C"};

class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Fork-and-exec death tests: the child re-runs from main with a
    // fresh graph, so edges seeded inside the death statement are the
    // only ones it sees. (The default "fast" style would inherit this
    // process's graph and any pool threads.)
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    lock_order::ResetForTest();
  }
  void TearDown() override { lock_order::ResetForTest(); }
};

// The canonical deadlock: A-then-B observed, later B-then-A attempted.
// Both orders on ONE thread seconds apart are enough — the detector
// proves the schedule exists without needing it to happen.
void SeedInversionAB() {
  Mutex a(kRankA);
  Mutex b(kRankB);
  {
    MutexLock la(a);
    MutexLock lb(b);  // records edge A -> B
  }
  {
    MutexLock lb(b);
    MutexLock la(a);  // closes the cycle: aborts here
  }
}

TEST_F(LockOrderTest, SeededInversionAborts) {
  EXPECT_DEATH(SeedInversionAB(),
               "lock-order inversion: acquiring test\\.A \\(rank 56\\) "
               "while holding test\\.B \\(rank 57\\)");
}

TEST_F(LockOrderTest, ReportCarriesCurrentThreadWitnessStack) {
  EXPECT_DEATH(SeedInversionAB(),
               "this thread: thread [0-9a-f]+ held \\[test\\.B\\] "
               "while acquiring test\\.A");
}

TEST_F(LockOrderTest, ReportCarriesFirstSeenWitnessStack) {
  // The conflicting edge A -> B replays the witness recorded when it was
  // first observed — the *other* side of the would-be deadlock.
  EXPECT_DEATH(SeedInversionAB(),
               "test\\.A -> test\\.B  first seen: thread [0-9a-f]+ held "
               "\\[test\\.A\\] while acquiring test\\.B");
}

TEST_F(LockOrderTest, TransitiveInversionAborts) {
  // A -> B and B -> C are each fine; C-then-A closes the 3-cycle even
  // though A and C were never directly nested.
  EXPECT_DEATH(
      {
        Mutex a(kRankA);
        Mutex b(kRankB);
        Mutex c(kRankC);
        {
          MutexLock la(a);
          MutexLock lb(b);
        }
        {
          MutexLock lb(b);
          MutexLock lc(c);
        }
        MutexLock lc(c);
        MutexLock la(a);
      },
      "lock-order inversion: acquiring test\\.A \\(rank 56\\) while "
      "holding test\\.C \\(rank 58\\)");
}

TEST_F(LockOrderTest, SameRankNestingAborts) {
  // Sibling instances (e.g. two ingest shard queues) share a rank
  // because the code never holds two at once.
  EXPECT_DEATH(
      {
        Mutex s1(kRankA);
        Mutex s2(kRankA);
        MutexLock l1(s1);
        MutexLock l2(s2);
      },
      "lock-order inversion: acquiring test\\.A \\(rank 56\\) while "
      "holding another lock of the same rank");
}

TEST_F(LockOrderTest, ConsistentOrderIsClean) {
  Mutex a(kRankA);
  Mutex b(kRankB);
  Mutex c(kRankC);
  for (int i = 0; i < 3; ++i) {
    MutexLock la(a);
    EXPECT_EQ(lock_order::HeldCountForTest(), 1);
    MutexLock lb(b);
    MutexLock lc(c);
    EXPECT_EQ(lock_order::HeldCountForTest(), 3);
  }
  EXPECT_EQ(lock_order::HeldCountForTest(), 0);
}

TEST_F(LockOrderTest, UnrankedMutexesAreInvisible) {
  // Rankless test scaffolding never contributes edges, in either
  // nesting direction.
  Mutex plain_a;
  Mutex plain_b;
  {
    MutexLock la(plain_a);
    MutexLock lb(plain_b);
    EXPECT_EQ(lock_order::HeldCountForTest(), 0);
  }
  {
    MutexLock lb(plain_b);
    MutexLock la(plain_a);
  }
}

TEST_F(LockOrderTest, HandOverHandReleaseIsTracked) {
  // Non-LIFO release: release the outer lock first; the held stack must
  // drop the right entry, not the innermost one.
  Mutex a(kRankA);
  Mutex b(kRankB);
  a.Lock();
  b.Lock();
  a.Unlock();
  EXPECT_EQ(lock_order::HeldCountForTest(), 1);
  // A fresh A-acquisition now nests under B — but B -> A conflicts with
  // the A -> B edge recorded above, so only verify the count here.
  b.Unlock();
  EXPECT_EQ(lock_order::HeldCountForTest(), 0);
}

// The production rank table's expected nesting (Collector.mu held across
// ParallelFor, which takes ThreadPool.mu) must stay clean.
TEST_F(LockOrderTest, ProductionNestingCollectorThenPoolIsClean) {
  Mutex collector(lock_rank::kCollector);
  Mutex pool(lock_rank::kThreadPool);
  MutexLock lc(collector);
  MutexLock lp(pool);
  EXPECT_EQ(lock_order::HeldCountForTest(), 2);
}

#else  // !LOLOHA_LOCK_ORDER_CHECKS

TEST(LockOrderTest, ChecksCompiledOut) {
  // Release builds: the detector is a no-op and Mutex stores no rank.
  Mutex a(LockRank{1, "release.A"});
  MutexLock la(a);
  EXPECT_EQ(lock_order::HeldCountForTest(), 0);
}

#endif  // LOLOHA_LOCK_ORDER_CHECKS

}  // namespace
}  // namespace loloha

#include "util/hash.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace loloha {
namespace {

TEST(UniversalHashTest, RangeRespected) {
  Rng rng(1);
  for (const uint32_t g : {2u, 3u, 16u, 150u}) {
    const UniversalHash hash = UniversalHash::Sample(g, rng);
    EXPECT_EQ(hash.range(), g);
    for (uint64_t x = 0; x < 1000; ++x) {
      EXPECT_LT(hash(x), g);
    }
  }
}

TEST(UniversalHashTest, DeterministicForFixedCoefficients) {
  const UniversalHash hash(12345, 67890, 7);
  for (uint64_t x = 0; x < 100; ++x) {
    EXPECT_EQ(hash(x), hash(x));
  }
}

TEST(UniversalHashTest, EqualityComparesCoefficients) {
  const UniversalHash a(10, 20, 4);
  const UniversalHash b(10, 20, 4);
  const UniversalHash c(11, 20, 4);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(UniversalHashTest, PairwiseCollisionRateAtMostOneOverG) {
  // Universal property (Sec. 3.1): Pr_H[H(v1) = H(v2)] <= 1/g, estimated
  // over random draws of H for several fixed pairs.
  Rng rng(42);
  constexpr int kFamilies = 20000;
  for (const uint32_t g : {2u, 4u, 10u}) {
    const std::pair<uint64_t, uint64_t> pairs[] = {
        {0, 1}, {5, 123456}, {7, 7000000007ULL}};
    for (const auto& [v1, v2] : pairs) {
      int collisions = 0;
      for (int i = 0; i < kFamilies; ++i) {
        const UniversalHash hash = UniversalHash::Sample(g, rng);
        collisions += (hash(v1) == hash(v2)) ? 1 : 0;
      }
      const double rate = static_cast<double>(collisions) / kFamilies;
      // Allow ~4 sigma of sampling slack above 1/g.
      const double bound = 1.0 / g + 4.0 * std::sqrt(1.0 / g / kFamilies);
      EXPECT_LE(rate, bound) << "g=" << g << " pair=(" << v1 << "," << v2
                             << ")";
    }
  }
}

TEST(UniversalHashTest, OutputApproximatelyUniform) {
  Rng rng(7);
  constexpr uint32_t kG = 8;
  constexpr int kInputs = 80000;
  const UniversalHash hash = UniversalHash::Sample(kG, rng);
  std::vector<int> counts(kG, 0);
  for (int x = 0; x < kInputs; ++x) ++counts[hash(x)];
  const double expected = static_cast<double>(kInputs) / kG;
  double chi2 = 0.0;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // df = 7; this is a loose bound — multiply-mod-prime on consecutive
  // inputs is not perfectly equidistributed but must be close.
  EXPECT_LT(chi2, 100.0);
}

TEST(UniversalHashTest, SampleDrawsDistinctFunctions) {
  Rng rng(3);
  const UniversalHash a = UniversalHash::Sample(4, rng);
  const UniversalHash b = UniversalHash::Sample(4, rng);
  EXPECT_FALSE(a == b);
}

TEST(UniversalHashTest, LargeInputsReducedModPrime) {
  // Inputs above the prime must still map into [0, g).
  const UniversalHash hash(987654321, 123456789, 5);
  for (const uint64_t x :
       {UniversalHash::kPrime - 1, UniversalHash::kPrime,
        UniversalHash::kPrime + 1, ~uint64_t{0}}) {
    EXPECT_LT(hash(x), 5u);
  }
}

TEST(Mix64Test, AvalanchesSingleBitFlips) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  constexpr int kTrials = 64;
  for (int bit = 0; bit < kTrials; ++bit) {
    const uint64_t a = Mix64(0x123456789abcdefULL);
    const uint64_t b = Mix64(0x123456789abcdefULL ^ (uint64_t{1} << bit));
    total_flips += __builtin_popcountll(a ^ b);
  }
  const double mean_flips = static_cast<double>(total_flips) / kTrials;
  EXPECT_GT(mean_flips, 24.0);
  EXPECT_LT(mean_flips, 40.0);
}

}  // namespace
}  // namespace loloha

#include "core/loloha_params.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "oracle/estimator.h"
#include "util/mathutil.h"

namespace loloha {
namespace {

class LolohaParamSweep
    : public testing::TestWithParam<std::tuple<double, double, uint32_t>> {
 protected:
  double eps_perm() const { return std::get<0>(GetParam()); }
  double eps_first() const {
    return std::get<0>(GetParam()) * std::get<1>(GetParam());
  }
  uint32_t g() const { return std::get<2>(GetParam()); }
};

INSTANTIATE_TEST_SUITE_P(
    Grid, LolohaParamSweep,
    testing::Combine(testing::Values(0.5, 1.0, 2.0, 3.5, 5.0),
                     testing::Values(0.1, 0.3, 0.5, 0.6),
                     testing::Values(2u, 3u, 8u, 16u)));

TEST_P(LolohaParamSweep, IrrEpsilonIdentity) {
  // The defining property of ε_IRR (Thm. 3.4's proof):
  // e^{ε_IRR} e^{ε∞} + 1 = e^{ε1} (e^{ε_IRR} + e^{ε∞}).
  const double eps_irr = LolohaIrrEpsilon(eps_perm(), eps_first());
  const double lhs = std::exp(eps_irr + eps_perm()) + 1.0;
  const double rhs =
      std::exp(eps_first()) * (std::exp(eps_irr) + std::exp(eps_perm()));
  EXPECT_LT(RelDiff(lhs, rhs), 1e-10);
}

TEST_P(LolohaParamSweep, PairwiseRatioEqualsEps1) {
  // (p1p2 + q1q2)/(p1q2 + q1p2) = e^{ε1} — Theorem 3.4's bound.
  const LolohaParams params =
      MakeLolohaParams(100, g(), eps_perm(), eps_first());
  const double ratio =
      (params.prr.p * params.irr.p + params.prr.q * params.irr.q) /
      (params.prr.p * params.irr.q + params.prr.q * params.irr.p);
  EXPECT_LT(RelDiff(std::log(ratio), eps_first()), 1e-9);
}

TEST_P(LolohaParamSweep, ExactFirstReportEpsilonBoundedByEps1) {
  const LolohaParams params =
      MakeLolohaParams(100, g(), eps_perm(), eps_first());
  const double exact = LolohaExactFirstReportEpsilon(params);
  EXPECT_LE(exact, eps_first() + 1e-9);
  if (g() == 2) {
    EXPECT_LT(RelDiff(exact, eps_first()), 1e-9);  // tight at g = 2
  } else {
    EXPECT_LT(exact, eps_first());  // strictly more private for g > 2
  }
}

TEST_P(LolohaParamSweep, PrrSatisfiesEpsPerm) {
  const LolohaParams params =
      MakeLolohaParams(100, g(), eps_perm(), eps_first());
  EXPECT_LT(RelDiff(params.prr.p / params.prr.q, std::exp(eps_perm())),
            1e-10);
}

TEST_P(LolohaParamSweep, WorstCaseBudgetIsGEpsPerm) {
  const LolohaParams params =
      MakeLolohaParams(100, g(), eps_perm(), eps_first());
  EXPECT_DOUBLE_EQ(params.WorstCaseLongitudinalEpsilon(),
                   g() * eps_perm());
}

TEST_P(LolohaParamSweep, EstimatorFirstUsesOneOverG) {
  const LolohaParams params =
      MakeLolohaParams(100, g(), eps_perm(), eps_first());
  EXPECT_DOUBLE_EQ(params.EstimatorFirst().q, 1.0 / g());
  EXPECT_DOUBLE_EQ(params.EstimatorFirst().p, params.prr.p);
}

class OptimalGSweep
    : public testing::TestWithParam<std::tuple<double, double>> {};

INSTANTIATE_TEST_SUITE_P(
    Grid, OptimalGSweep,
    testing::Combine(testing::Values(0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0,
                                     4.5, 5.0),
                     testing::Values(0.1, 0.2, 0.3, 0.4, 0.5, 0.6)));

TEST_P(OptimalGSweep, Eq6MatchesBruteForceArgmin) {
  const auto [eps_perm, alpha] = GetParam();
  const double eps_first = alpha * eps_perm;
  const uint32_t g_eq6 = OptimalLolohaG(eps_perm, eps_first);
  const uint32_t g_bf = BruteForceOptimalG(eps_perm, eps_first, 1e4);
  // Eq. (6) comes from a continuous relaxation; allow the rounded result
  // to deviate by one grid point but demand near-optimal variance.
  EXPECT_LE(std::abs(static_cast<int>(g_eq6) - static_cast<int>(g_bf)), 1);
  const double v_eq6 =
      LolohaApproximateVariance(1e4, g_eq6, eps_perm, eps_first);
  const double v_bf =
      LolohaApproximateVariance(1e4, g_bf, eps_perm, eps_first);
  EXPECT_LE(v_eq6, v_bf * 1.05);
}

TEST(OptimalGTest, BinaryInHighPrivacyRegimes) {
  // Fig. 1: for low ε∞ (and low α) the optimum is g = 2.
  EXPECT_EQ(OptimalLolohaG(0.5, 0.05), 2u);
  EXPECT_EQ(OptimalLolohaG(1.0, 0.1), 2u);
  EXPECT_EQ(OptimalLolohaG(0.5, 0.3), 2u);
}

TEST(OptimalGTest, GrowsInLowPrivacyRegimes) {
  // Fig. 1: for ε∞ = 5 and α = 0.6 the optimal g exceeds 10.
  EXPECT_GT(OptimalLolohaG(5.0, 3.0), 10u);
  // Monotone-ish growth along ε∞ for fixed α = 0.5.
  EXPECT_LE(OptimalLolohaG(2.0, 1.0), OptimalLolohaG(5.0, 2.5));
}

TEST(LolohaVarianceTest, MatchesEq5Directly) {
  const LolohaParams params = MakeLolohaParams(2, 4, 2.0, 1.0);
  const double v = LolohaApproximateVariance(1000.0, 4, 2.0, 1.0);
  const double expected =
      ApproximateVariance(1000.0, params.EstimatorFirst(), params.irr);
  EXPECT_DOUBLE_EQ(v, expected);
}

TEST(LolohaMaxErrorBoundTest, MatchesProp36Formula) {
  const LolohaParams params = MakeLolohaParams(100, 2, 2.0, 1.0);
  const double n = 10000.0;
  const double beta = 0.05;
  const double dp1 = params.prr.p - 0.5;
  const double dp2 = params.irr.p - params.irr.q;
  EXPECT_LT(RelDiff(LolohaMaxErrorBound(params, n, beta),
                    std::sqrt(100.0 / (4.0 * n * beta * dp1 * dp2))),
            1e-12);
}

TEST(LolohaMaxErrorBoundTest, TightensWithMoreUsers) {
  const LolohaParams params = MakeLolohaParams(100, 2, 2.0, 1.0);
  EXPECT_LT(LolohaMaxErrorBound(params, 20000.0, 0.05),
            LolohaMaxErrorBound(params, 10000.0, 0.05));
}

TEST(MakeLolohaParamsTest, BiAndOptimalFactories) {
  const LolohaParams bi = MakeBiLolohaParams(50, 2.0, 1.0);
  EXPECT_EQ(bi.g, 2u);
  const LolohaParams opt = MakeOLolohaParams(50, 5.0, 3.0);
  EXPECT_EQ(opt.g, OptimalLolohaG(5.0, 3.0));
  EXPECT_EQ(opt.k, 50u);
}

}  // namespace
}  // namespace loloha

#include "longitudinal/chain.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "oracle/estimator.h"
#include "util/mathutil.h"

namespace loloha {
namespace {

// (eps_perm, alpha) sweep used by most chain tests.
class ChainSweep
    : public testing::TestWithParam<std::tuple<double, double>> {
 protected:
  double eps_perm() const { return std::get<0>(GetParam()); }
  double eps_first() const {
    return std::get<0>(GetParam()) * std::get<1>(GetParam());
  }
};

INSTANTIATE_TEST_SUITE_P(
    Grid, ChainSweep,
    testing::Combine(testing::Values(0.5, 1.0, 2.0, 3.0, 5.0),
                     testing::Values(0.1, 0.3, 0.5, 0.6, 0.9)));

TEST_P(ChainSweep, LSueFirstReportSatisfiesEps1Exactly) {
  const ChainedParams chain = LSueChain(eps_perm(), eps_first());
  EXPECT_TRUE(ValidParams(chain.first));
  EXPECT_TRUE(ValidParams(chain.second));
  EXPECT_LT(RelDiff(UeChainFirstReportEpsilon(chain), eps_first()), 1e-9);
}

TEST_P(ChainSweep, LSueIsSymmetricInBothRounds) {
  const ChainedParams chain = LSueChain(eps_perm(), eps_first());
  EXPECT_NEAR(chain.first.p + chain.first.q, 1.0, 1e-12);
  EXPECT_NEAR(chain.second.p + chain.second.q, 1.0, 1e-12);
}

TEST_P(ChainSweep, LSueClosedFormMatchesNumericSolver) {
  const ChainedParams chain = LSueChain(eps_perm(), eps_first());
  const PerturbParams solved =
      SolveSymmetricUeIrr(chain.first, eps_first());
  EXPECT_LT(RelDiff(chain.second.p, solved.p), 1e-9);
}

TEST_P(ChainSweep, LOsueFirstReportSatisfiesEps1Exactly) {
  const ChainedParams chain = LOsueChain(eps_perm(), eps_first());
  EXPECT_LT(RelDiff(UeChainFirstReportEpsilon(chain), eps_first()), 1e-9);
}

TEST_P(ChainSweep, LOsueClosedFormMatchesNumericSolver) {
  const ChainedParams chain = LOsueChain(eps_perm(), eps_first());
  const PerturbParams solved =
      SolveSymmetricUeIrr(chain.first, eps_first());
  EXPECT_LT(RelDiff(chain.second.p, solved.p), 1e-9);
}

TEST_P(ChainSweep, LOsueCollapsesToOueAtEps1) {
  // The collapsed (p_s, q_s) of L-OSUE is exactly OUE(ε1): p_s = 1/2,
  // q_s = 1/(e^{ε1}+1). This is why its variance equals OUE's.
  const ChainedParams chain = LOsueChain(eps_perm(), eps_first());
  const PerturbParams collapsed = CollapseChain(chain.first, chain.second);
  EXPECT_NEAR(collapsed.p, 0.5, 1e-12);
  EXPECT_LT(RelDiff(collapsed.q, 1.0 / (std::exp(eps_first()) + 1.0)),
            1e-9);
}

TEST_P(ChainSweep, PermanentRoundAloneSatisfiesEpsPerm) {
  const ChainedParams sue = LSueChain(eps_perm(), eps_first());
  EXPECT_LT(RelDiff(UeEpsilon(sue.first), eps_perm()), 1e-9);
  const ChainedParams osue = LOsueChain(eps_perm(), eps_first());
  EXPECT_LT(RelDiff(UeEpsilon(osue.first), eps_perm()), 1e-9);
}

TEST_P(ChainSweep, LOueFirstReportSatisfiesEps1) {
  // An OUE-style IRR cannot reach ε1 arbitrarily close to ε∞ (its maximum
  // effective epsilon at q2 -> 0 is below ε∞); stay within the feasible
  // region covered by the paper's α <= 0.6.
  if (eps_first() > 0.6 * eps_perm()) GTEST_SKIP();
  const ChainedParams chain = LOueChain(eps_perm(), eps_first());
  EXPECT_DOUBLE_EQ(chain.second.p, 0.5);
  EXPECT_LT(RelDiff(UeChainFirstReportEpsilon(chain), eps_first()), 1e-8);
}

class GrrChainSweep
    : public testing::TestWithParam<std::tuple<double, double, uint32_t>> {
 protected:
  double eps_perm() const { return std::get<0>(GetParam()); }
  double eps_first() const {
    return std::get<0>(GetParam()) * std::get<1>(GetParam());
  }
  uint32_t k() const { return std::get<2>(GetParam()); }
};

INSTANTIATE_TEST_SUITE_P(
    Grid, GrrChainSweep,
    testing::Combine(testing::Values(1.0, 2.0, 5.0),
                     testing::Values(0.3, 0.5, 0.6),
                     testing::Values(2u, 3u, 10u, 96u, 360u)));

TEST_P(GrrChainSweep, PaperFormSetsPairwiseRatioToEps1) {
  const ChainedParams chain = LGrrChain(eps_perm(), eps_first(), k());
  EXPECT_TRUE(ValidParams(chain.first));
  EXPECT_TRUE(ValidParams(chain.second));
  EXPECT_LT(RelDiff(GrrChainPairwiseEpsilon(chain), eps_first()), 1e-9);
}

TEST_P(GrrChainSweep, PaperFormNeverExceedsEps1) {
  // The exact first-report epsilon is <= ε1 (equality iff k = 2).
  const ChainedParams chain = LGrrChain(eps_perm(), eps_first(), k());
  const double exact = GrrChainFirstReportEpsilon(chain, k());
  EXPECT_LE(exact, eps_first() + 1e-9);
  if (k() == 2) {
    EXPECT_LT(RelDiff(exact, eps_first()), 1e-9);
  } else {
    EXPECT_LT(exact, eps_first());
  }
}

TEST_P(GrrChainSweep, ExactFormHitsEps1ForAllK) {
  const ChainedParams chain = LGrrChainExact(eps_perm(), eps_first(), k());
  EXPECT_LT(RelDiff(GrrChainFirstReportEpsilon(chain, k()), eps_first()),
            1e-9);
}

TEST_P(GrrChainSweep, ExactAndPaperFormsAgreeAtKTwo) {
  if (k() != 2) GTEST_SKIP();
  const ChainedParams paper = LGrrChain(eps_perm(), eps_first(), 2);
  const ChainedParams exact = LGrrChainExact(eps_perm(), eps_first(), 2);
  EXPECT_LT(RelDiff(paper.second.p, exact.second.p), 1e-9);
}

TEST_P(GrrChainSweep, ProbabilitiesNormalized) {
  const ChainedParams chain = LGrrChain(eps_perm(), eps_first(), k());
  EXPECT_NEAR(chain.first.p + (k() - 1) * chain.first.q, 1.0, 1e-12);
  EXPECT_NEAR(chain.second.p + (k() - 1) * chain.second.q, 1.0, 1e-12);
}

TEST(ChainTest, RapporDeploymentUsesThreeQuarters) {
  const ChainedParams chain = RapporDeploymentChain(2.0);
  EXPECT_DOUBLE_EQ(chain.second.p, 0.75);
  EXPECT_DOUBLE_EQ(chain.second.q, 0.25);
  EXPECT_LT(RelDiff(UeEpsilon(chain.first), 2.0), 1e-9);
}

TEST(ChainTest, TighterEps1MeansNoisierIrr) {
  // Lower ε1 (first report better protected) must push p2 toward 1/2.
  const ChainedParams loose = LSueChain(3.0, 2.0);
  const ChainedParams tight = LSueChain(3.0, 0.5);
  EXPECT_GT(loose.second.p, tight.second.p);
  EXPECT_GT(tight.second.p, 0.5);
}

TEST(ChainTest, LSoueFirstReportSatisfiesEps1) {
  const ChainedParams chain = LSoueChain(2.0, 1.0);
  EXPECT_DOUBLE_EQ(chain.second.p, 0.5);
  EXPECT_LT(RelDiff(UeChainFirstReportEpsilon(chain), 1.0), 1e-8);
}

}  // namespace
}  // namespace loloha

#include "longitudinal/lgrr.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace loloha {
namespace {

TEST(LongitudinalGrrClientTest, ReportsWithinDomain) {
  const uint32_t k = 16;
  LongitudinalGrrClient client(k, LGrrChain(2.0, 1.0, k));
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(client.Report(static_cast<uint32_t>(i % k), rng), k);
  }
}

TEST(LongitudinalGrrClientTest, MemoizesPerDistinctValue) {
  const uint32_t k = 16;
  LongitudinalGrrClient client(k, LGrrChain(2.0, 1.0, k));
  Rng rng(2);
  client.Report(1, rng);
  client.Report(1, rng);
  EXPECT_EQ(client.distinct_memos(), 1u);
  client.Report(2, rng);
  client.Report(1, rng);
  EXPECT_EQ(client.distinct_memos(), 2u);
}

TEST(LongitudinalGrrClientTest, NoiselessIrrReplaysMemo) {
  const uint32_t k = 8;
  ChainedParams chain = LGrrChain(2.0, 1.0, k);
  chain.second = PerturbParams{1.0 - 1e-15, 1e-15 / (k - 1)};
  LongitudinalGrrClient client(k, chain);
  Rng rng(3);
  const uint32_t first = client.Report(4, rng);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(client.Report(4, rng), first);
  }
}

TEST(LongitudinalGrrTest, EndToEndUnbiased) {
  const uint32_t k = 8;
  const double eps_perm = 3.0;
  const double eps_first = 1.5;
  const ChainedParams chain = LGrrChain(eps_perm, eps_first, k);
  LongitudinalGrrServer server(k, chain);
  Rng rng(4);
  constexpr int kUsers = 60000;
  std::vector<LongitudinalGrrClient> clients(
      kUsers, LongitudinalGrrClient(k, chain));
  server.BeginStep();
  for (int u = 0; u < kUsers; ++u) {
    const uint32_t v = (u % 5 < 3) ? 1u : 6u;  // 60% / 40%
    server.Accumulate(clients[u].Report(v, rng));
  }
  const std::vector<double> est = server.EstimateStep();
  EXPECT_NEAR(est[1], 0.6, 0.03);
  EXPECT_NEAR(est[6], 0.4, 0.03);
  EXPECT_NEAR(est[3], 0.0, 0.03);
}

TEST(LongitudinalGrrTest, EstimatesSumToOneExactly) {
  // GRR reports are single values, so sum_v C(v) = n and Eq. (3) makes
  // the estimates sum to exactly 1.
  const uint32_t k = 6;
  const ChainedParams chain = LGrrChain(2.0, 1.0, k);
  LongitudinalGrrServer server(k, chain);
  Rng rng(5);
  LongitudinalGrrClient client(k, chain);
  server.BeginStep();
  for (int i = 0; i < 1000; ++i) {
    server.Accumulate(client.Report(static_cast<uint32_t>(i % k), rng));
  }
  const std::vector<double> est = server.EstimateStep();
  double sum = 0.0;
  for (const double e : est) sum += e;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(LongitudinalGrrTest, MultiStepEstimatesTrackChangingTruth) {
  const uint32_t k = 4;
  const ChainedParams chain = LGrrChain(4.0, 2.0, k);
  LongitudinalGrrServer server(k, chain);
  Rng rng(6);
  constexpr int kUsers = 50000;
  std::vector<LongitudinalGrrClient> clients(
      kUsers, LongitudinalGrrClient(k, chain));
  for (uint32_t t = 0; t < 3; ++t) {
    server.BeginStep();
    for (int u = 0; u < kUsers; ++u) {
      server.Accumulate(clients[u].Report(t % k, rng));
    }
    const std::vector<double> est = server.EstimateStep();
    EXPECT_NEAR(est[t % k], 1.0, 0.05) << "t=" << t;
  }
}

}  // namespace
}  // namespace loloha

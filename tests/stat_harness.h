// Test-support statistics for the end-to-end acceptance suite: chi-square
// goodness-of-fit machinery (regularized incomplete gamma, Pearson and
// binomial-cell statistics), a normal CDF/sampler, and the empirical-vs-
// theoretical MSE driver the statistical_acceptance_test asserts against.
//
// Everything here is deterministic given a seed — the suite's tolerances
// are statistical, but its *outcomes* are not: a fixed StreamSeed produces
// the same statistic on every run and platform (the library's Rng and
// binomial sampler draw identically everywhere), so a passing threshold
// never flakes.

#ifndef LOLOHA_TESTS_STAT_HARNESS_H_
#define LOLOHA_TESTS_STAT_HARNESS_H_

#include <cstdint>
#include <vector>

#include "core/theory.h"
#include "data/dataset.h"
#include "util/rng.h"

namespace loloha::stat {

// Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a), a > 0,
// x >= 0 (series expansion for x < a + 1, continued fraction otherwise).
double RegularizedGammaP(double a, double x);

// Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

// Upper-tail p-value of a chi-square statistic with df degrees of
// freedom: Q(df / 2, statistic / 2).
double ChiSquarePValue(double statistic, double df);

// Pearson statistic Σ_c (observed_c - n p_c)² / (n p_c) of observed
// category counts against expected probabilities (df = cells - 1). The
// probabilities must sum to ~1; n is taken from the observed counts.
double ChiSquareStatistic(const std::vector<uint64_t>& observed,
                          const std::vector<double>& expected_probs);

// One independent Binomial(trials, p) observation.
struct BinomialCell {
  uint64_t successes = 0;
  uint64_t trials = 0;
  double p = 0.0;
};

// Σ_c (successes_c - trials_c p_c)² / (trials_c p_c (1 - p_c)) — squared
// z-scores of independent binomial cells, ~ ChiSquare(#cells) under the
// null (df = cells: every cell's p is fixed a priori, nothing estimated).
double BinomialZSquareStatistic(const std::vector<BinomialCell>& cells);

// Standard normal CDF.
double NormalCdf(double z);

// One standard normal draw (Box–Muller over the repo Rng; deterministic
// per stream).
double GaussianSample(Rng& rng);

// Empirical-vs-theoretical MSE for one protocol: runs `runs` independent
// Monte-Carlo repetitions of the full longitudinal collection over `data`
// (seeds StreamSeed(base_seed, run, 0)) and compares the mean MSE_avg
// (Eq. 7) against the paper's approximate variance V* (Eq. 5 /
// dBitFlipPM's sampled one-round variance) at the same configuration.
struct MseAcceptance {
  double empirical_mse = 0.0;   // mean MSE_avg over the runs
  double predicted_mse = 0.0;   // V* at (n, k, ε∞, ε1)
  double ratio = 0.0;           // empirical / predicted
};

MseAcceptance MseAgainstTheory(ProtocolId id, const Dataset& data,
                               double eps_perm, double eps_first,
                               uint32_t runs, uint64_t base_seed);

}  // namespace loloha::stat

#endif  // LOLOHA_TESTS_STAT_HARNESS_H_

// The sharding identity behind the network front (server/net): N
// collectors partitioned by user id, their integer StepAggregates summed
// and estimated once, must reproduce a single collector's EndStep()
// byte for byte.

#include "server/collector.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/loloha.h"
#include "core/loloha_params.h"
#include "longitudinal/dbitflip.h"
#include "sim/protocol_spec.h"
#include "util/rng.h"
#include "wire/encoding.h"

namespace loloha {
namespace {

constexpr uint32_t kUsers = 4000;
constexpr uint32_t kDomain = 64;
constexpr uint32_t kSteps = 3;

// One hello and kSteps reports per user, pre-encoded with a fixed seed.
struct Traffic {
  std::vector<Message> hellos;
  std::vector<std::vector<Message>> steps;
};

Traffic LolohaTraffic(const ProtocolSpec& spec, uint64_t seed) {
  const LolohaParams params = LolohaParamsForSpec(spec, kDomain);
  Rng rng(seed);
  Traffic traffic;
  std::vector<LolohaClient> clients;
  clients.reserve(kUsers);
  for (uint32_t u = 0; u < kUsers; ++u) {
    clients.emplace_back(params, rng);
    traffic.hellos.push_back(Message{u, EncodeLolohaHello(clients[u].hash())});
  }
  traffic.steps.resize(kSteps);
  for (uint32_t t = 0; t < kSteps; ++t) {
    for (uint32_t u = 0; u < kUsers; ++u) {
      traffic.steps[t].push_back(Message{
          u, EncodeLolohaReport(clients[u].Report((u + t) % kDomain, rng))});
    }
  }
  return traffic;
}

Traffic DBitFlipTraffic(const ProtocolSpec& spec, uint64_t seed) {
  const Bucketizer bucketizer(kDomain, spec.buckets);
  Rng rng(seed);
  Traffic traffic;
  std::vector<DBitFlipClient> clients;
  clients.reserve(kUsers);
  for (uint32_t u = 0; u < kUsers; ++u) {
    clients.emplace_back(bucketizer, spec.d, spec.eps_perm, rng);
    traffic.hellos.push_back(Message{u, EncodeDBitHello(clients[u].sampled())});
  }
  traffic.steps.resize(kSteps);
  for (uint32_t t = 0; t < kSteps; ++t) {
    for (uint32_t u = 0; u < kUsers; ++u) {
      traffic.steps[t].push_back(Message{
          u, EncodeDBitReport(clients[u].Report((2 * u + t) % kDomain, rng)
                                  .bits)});
    }
  }
  return traffic;
}

Traffic MakeTraffic(const ProtocolSpec& spec, uint64_t seed) {
  return spec.IsLolohaVariant() ? LolohaTraffic(spec, seed)
                                : DBitFlipTraffic(spec, seed);
}

class CollectorAggregateTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CollectorAggregateTest, EndStepEqualsEstimateOfAggregate) {
  const ProtocolSpec spec = ProtocolSpec::MustParse(GetParam());
  const Traffic traffic = MakeTraffic(spec, 11);

  const std::unique_ptr<Collector> direct = MakeCollector(spec, kDomain);
  const std::unique_ptr<Collector> via_aggregate = MakeCollector(spec, kDomain);
  direct->IngestBatch(traffic.hellos);
  via_aggregate->IngestBatch(traffic.hellos);
  for (const auto& step : traffic.steps) {
    direct->IngestBatch(step);
    via_aggregate->IngestBatch(step);
    const std::vector<double> from_end_step = direct->EndStep();
    const StepAggregate aggregate = via_aggregate->EndStepAggregate();
    EXPECT_EQ(aggregate.reports, step.size());
    EXPECT_EQ(from_end_step, via_aggregate->EstimateAggregate(aggregate));
  }
  EXPECT_EQ(direct->stats(), via_aggregate->stats());
}

TEST_P(CollectorAggregateTest, FourWayShardMergeIsByteIdentical) {
  const ProtocolSpec spec = ProtocolSpec::MustParse(GetParam());
  const Traffic traffic = MakeTraffic(spec, 29);
  constexpr uint32_t kShards = 4;

  const std::unique_ptr<Collector> direct = MakeCollector(spec, kDomain);
  std::vector<std::unique_ptr<Collector>> shards;
  for (uint32_t s = 0; s < kShards; ++s) {
    shards.push_back(MakeCollector(spec, kDomain));
  }

  const auto route = [&](const std::vector<Message>& messages) {
    std::vector<std::vector<Message>> parts(kShards);
    for (const Message& message : messages) {
      parts[message.user_id % kShards].push_back(message);
    }
    for (uint32_t s = 0; s < kShards; ++s) shards[s]->IngestBatch(parts[s]);
  };

  direct->IngestBatch(traffic.hellos);
  route(traffic.hellos);
  for (const auto& step : traffic.steps) {
    direct->IngestBatch(step);
    route(step);
    StepAggregate merged;
    for (uint32_t s = 0; s < kShards; ++s) {
      MergeStepAggregate(shards[s]->EndStepAggregate(), &merged);
    }
    EXPECT_EQ(merged.reports, step.size());
    // Bit-for-bit: integer sums commute across the shard split, and the
    // float estimator runs exactly once on the merged sums.
    EXPECT_EQ(direct->EndStep(), shards[0]->EstimateAggregate(merged));
  }

  CollectorStats sharded_totals;
  uint64_t sharded_users = 0;
  for (uint32_t s = 0; s < kShards; ++s) {
    const CollectorStats stats = shards[s]->stats();
    sharded_totals.hellos_accepted += stats.hellos_accepted;
    sharded_totals.reports_accepted += stats.reports_accepted;
    sharded_totals.rejected_malformed += stats.rejected_malformed;
    sharded_totals.rejected_unknown_user += stats.rejected_unknown_user;
    sharded_totals.rejected_duplicate += stats.rejected_duplicate;
    sharded_users += shards[s]->registered_users();
  }
  EXPECT_EQ(direct->stats(), sharded_totals);
  EXPECT_EQ(direct->registered_users(), sharded_users);
}

INSTANTIATE_TEST_SUITE_P(Protocols, CollectorAggregateTest,
                         ::testing::Values("ololoha:eps_perm=2,eps_first=1",
                                           "loloha:g=2,eps_perm=2,eps_first=1",
                                           "bbitflip:eps_perm=3,buckets=16,d=8",
                                           "1bitflip:eps_perm=2,buckets=16"));

TEST(MergeStepAggregateTest, EmptyTargetAdoptsShape) {
  StepAggregate from;
  from.support = {1, 2, 3};
  from.samplers = {4, 5, 6};
  from.reports = 7;
  StepAggregate into;
  MergeStepAggregate(from, &into);
  EXPECT_EQ(into, from);
  MergeStepAggregate(from, &into);
  EXPECT_EQ(into.support, (std::vector<uint64_t>{2, 4, 6}));
  EXPECT_EQ(into.samplers, (std::vector<uint64_t>{8, 10, 12}));
  EXPECT_EQ(into.reports, 14u);
}

TEST(MergeStepAggregateTest, EmptyStepsMergeToEmptyEstimates) {
  const ProtocolSpec spec =
      ProtocolSpec::MustParse("ololoha:eps_perm=2,eps_first=1");
  const std::unique_ptr<Collector> a = MakeCollector(spec, kDomain);
  const std::unique_ptr<Collector> b = MakeCollector(spec, kDomain);
  StepAggregate merged;
  MergeStepAggregate(a->EndStepAggregate(), &merged);
  MergeStepAggregate(b->EndStepAggregate(), &merged);
  EXPECT_EQ(merged.reports, 0u);
  EXPECT_TRUE(a->EstimateAggregate(merged).empty());
}

}  // namespace
}  // namespace loloha

// Cross-module integration tests: run whole (scaled-down) slices of the
// paper's evaluation pipeline and assert the *shape* of the results — who
// beats whom, how privacy loss separates — exactly the claims Figs. 3-4
// and Table 2 make.

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/loloha.h"
#include "core/loloha_params.h"
#include "data/generators.h"
#include "sim/accountant.h"
#include "sim/attack.h"
#include "sim/metrics.h"
#include "sim/runner.h"

namespace loloha {
namespace {

// Small Syn-like slice: enough users/steps for stable MSE ordering.
Dataset EvalDataset(uint64_t seed) {
  return GenerateSyn(/*n=*/4000, /*k=*/60, /*tau=*/15, /*p_change=*/0.25,
                     seed);
}

double RunMse(ProtocolId id, const Dataset& data, double eps, double eps1,
              uint64_t seed, int runs = 2) {
  ProtocolSpec spec;
  spec.id = id;
  spec.eps_perm = eps;
  spec.eps_first = eps1;
  spec = spec.Canonicalized();
  double total = 0.0;
  for (int r = 0; r < runs; ++r) {
    const RunResult result = MakeRunner(spec)->Run(data, seed + 1000 * r);
    total += MseAvg(data, result.estimates);
  }
  return total / runs;
}

TEST(Figure3Shape, OLolohaCompetitiveWithLOsue) {
  const Dataset data = EvalDataset(1);
  const double mse_olo =
      RunMse(ProtocolId::kOLoloha, data, 4.0, 2.0, 11);
  const double mse_osue =
      RunMse(ProtocolId::kLOsue, data, 4.0, 2.0, 12);
  EXPECT_LT(mse_olo, 2.5 * mse_osue);
  EXPECT_LT(mse_osue, 2.5 * mse_olo);
}

TEST(Figure3Shape, OneBitFlipWorstUtilityAmongSaneProtocols) {
  // Fig. 3: 1BitFlipPM trails every double-randomization protocol except
  // L-GRR (for large k).
  const Dataset data = EvalDataset(2);
  const double mse_1bit =
      RunMse(ProtocolId::kOneBitFlipPm, data, 2.0, 1.0, 13);
  const double mse_olo = RunMse(ProtocolId::kOLoloha, data, 2.0, 1.0, 14);
  const double mse_bi = RunMse(ProtocolId::kBiLoloha, data, 2.0, 1.0, 15);
  EXPECT_GT(mse_1bit, mse_olo);
  EXPECT_GT(mse_1bit, mse_bi);
}

TEST(Figure3Shape, BBitFlipBestUtility) {
  // Fig. 3: bBitFlipPM outperforms the double-randomization protocols
  // (one round of sanitization, all bits reported).
  const Dataset data = EvalDataset(3);
  const double mse_bbit =
      RunMse(ProtocolId::kBBitFlipPm, data, 2.0, 1.0, 16);
  const double mse_rappor =
      RunMse(ProtocolId::kRappor, data, 2.0, 1.0, 17);
  const double mse_bi = RunMse(ProtocolId::kBiLoloha, data, 2.0, 1.0, 18);
  EXPECT_LT(mse_bbit, mse_rappor);
  EXPECT_LT(mse_bbit, mse_bi);
}

TEST(Figure3Shape, LGrrWorstForLargeDomain) {
  const Dataset data = EvalDataset(4);
  const double mse_lgrr = RunMse(ProtocolId::kLGrr, data, 2.0, 1.0, 19, 1);
  const double mse_osue =
      RunMse(ProtocolId::kLOsue, data, 2.0, 1.0, 20, 1);
  EXPECT_GT(mse_lgrr, 3.0 * mse_osue);
}

TEST(Figure3Shape, MseMatchesTheoreticalVariance) {
  // E[MSE_t] ~= avg_v V[f_hat(v)] ~ V* for sparse truth. Check the
  // empirical MSE of OLOLOHA lands within a factor ~2 of Eq. (5).
  const Dataset data = EvalDataset(5);
  const double eps = 3.0;
  const double eps1 = 1.5;
  const double mse = RunMse(ProtocolId::kOLoloha, data, eps, eps1, 21, 3);
  const double vstar = ProtocolApproxVariance(ProtocolId::kOLoloha,
                                              data.n(), data.k(), eps, eps1);
  EXPECT_GT(mse, 0.4 * vstar);
  EXPECT_LT(mse, 2.5 * vstar);
}

TEST(Figure4Shape, LolohaLeaksOrdersOfMagnitudeLess) {
  // Adult-like churn: value-memoizing protocols leak ~distinct-values *
  // eps; BiLOLOHA caps at 2 eps.
  const Dataset data = GenerateAdultLike(800, 80, 6);
  const double eps = 1.0;
  const double value_loss = EpsAvg(ValueMemoEpsilons(data, eps));
  const double bi_loss = EpsAvg(LolohaEpsilons(data, 2, eps, 22));
  const double one_bit_loss =
      EpsAvg(DBitFlipEpsilons(data, 96, 1, eps, 23));
  EXPECT_GT(value_loss, 10.0 * bi_loss);
  EXPECT_LE(bi_loss, 2.0 * eps);
  EXPECT_LE(one_bit_loss, 2.0 * eps);
}

TEST(Figure4Shape, RunnersAgreeWithAccountant) {
  // The online accounting inside the runners and the offline accountant
  // measure the same quantity (up to the independent randomness of hash /
  // sampled-set draws). Compare means for the deterministic value-memo
  // case, where both are exact.
  const Dataset data = GenerateSyn(500, 30, 10, 0.4, 7);
  const RunResult rappor =
      MakeRunner(ProtocolSpec::MustParse("l-sue:eps_perm=2,eps_first=1"))
          ->Run(data, 24);
  const std::vector<double> offline = ValueMemoEpsilons(data, 2.0);
  ASSERT_EQ(rappor.per_user_epsilon.size(), offline.size());
  for (size_t u = 0; u < offline.size(); ++u) {
    ASSERT_DOUBLE_EQ(rappor.per_user_epsilon[u], offline[u]);
  }
}

TEST(Figure4Shape, LolohaRunnerMatchesAccountantInDistribution) {
  const Dataset data = GenerateSyn(2000, 30, 10, 0.4, 8);
  const RunResult bi =
      MakeRunner(ProtocolSpec::MustParse("biloloha:eps_perm=2,eps_first=1"))
          ->Run(data, 25);
  const double online = EpsAvg(bi.per_user_epsilon);
  const double offline = EpsAvg(LolohaEpsilons(data, 2, 2.0, 26));
  EXPECT_NEAR(online, offline, 0.15);
}

TEST(Table2Shape, DetectionExtremes) {
  const Dataset data = GenerateSyn(1200, 90, 80, 0.25, 9);
  const double d1 =
      DBitFlipDetection(data, 90, 1, 1.0, 27).PercentFullyDetected();
  const double db =
      DBitFlipDetection(data, 90, 90, 1.0, 28).PercentFullyDetected();
  EXPECT_LT(d1, 2.0);
  EXPECT_GT(db, 99.0);
}

TEST(MemoizationAblation, MemoizationPreventsAveragingAttack) {
  // A constant user's repeated LOLOHA reports reuse one memoized cell, so
  // the *average* report distribution stays eps_inf-private. Without
  // memoization (fresh PRR each step) the empirical frequency of the true
  // cell concentrates, enabling an averaging attack. We measure the
  // attacker's advantage: |empirical keep-rate - p1| over tau reports.
  const uint32_t g = 2;
  const double eps = 1.0;
  const LolohaParams params = MakeLolohaParams(16, g, eps, 0.5);
  Rng rng(29);
  constexpr int kSteps = 400;

  // With memoization: the IRR keep-rate concentrates around p2 (centered
  // on the *memoized* cell, which is itself private), so observing many
  // reports pins down only x', not H(v).
  LolohaClient client(params, rng);
  int count_cell0 = 0;
  for (int t = 0; t < kSteps; ++t) {
    count_cell0 += (client.Report(3, rng) == client.hash()(3)) ? 1 : 0;
  }
  const double with_memo = count_cell0 / static_cast<double>(kSteps);

  // Without memoization (fresh PRR + IRR every step), the keep-rate
  // concentrates on the *true* hash cell at the collapsed probability,
  // revealing it as tau grows.
  const PerturbParams collapsed{
      params.prr.p * params.irr.p + (1 - params.prr.p) * params.irr.q,
      params.prr.q * params.irr.p + (1 - params.prr.q) * params.irr.p};
  // The attacker can distinguish the two hypotheses (cell vs other) iff
  // the keep-rate is far from the symmetric point 1/2 (g = 2). With
  // memoization the rate is either ~p2 or ~1-p2 depending on the hidden
  // memoized value — the attacker learns x', not H(v); without it the
  // rate is always on the H(v) side. Verify the memoized rate matches one
  // of the two symmetric levels around 1/2.
  const double p2 = params.irr.p;
  const double dist_to_levels =
      std::min(std::fabs(with_memo - p2), std::fabs(with_memo - (1 - p2)));
  EXPECT_LT(dist_to_levels, 0.1);
  (void)collapsed;
}

}  // namespace
}  // namespace loloha

// Empirical LDP verification: estimate each mechanism's output
// distribution under two different inputs by Monte-Carlo and check that
// the worst-case likelihood ratio stays within e^eps (up to sampling
// tolerance). This tests the *implementations*, not the formulas — a
// miscoded branch that leaks more than eps fails here even if the
// parameter math is right.

#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "core/loloha.h"
#include "core/loloha_params.h"
#include "longitudinal/chain.h"
#include "longitudinal/lgrr.h"
#include "oracle/grr.h"
#include "oracle/hadamard.h"
#include "oracle/subset_selection.h"
#include "oracle/unary.h"
#include "util/rng.h"

namespace loloha {
namespace {

// Max log-ratio between two empirical distributions over outputs that
// both inputs produced; outputs seen from only one input count via a
// +1 smoothing on both sides (keeps the statistic finite and
// conservative at these sample sizes).
// `min_count` drops outputs too rare to estimate reliably (their
// empirical ratio is dominated by sampling noise, not leakage); the
// default keeps every output with +1 smoothing.
double MaxEmpiricalLogRatio(const std::map<uint64_t, uint64_t>& a,
                            const std::map<uint64_t, uint64_t>& b,
                            uint64_t trials, uint64_t min_count = 0) {
  double worst = 0.0;
  auto ratio = [trials](uint64_t ca, uint64_t cb) {
    const double pa = (static_cast<double>(ca) + 1.0) / (trials + 1.0);
    const double pb = (static_cast<double>(cb) + 1.0) / (trials + 1.0);
    return std::log(pa / pb);
  };
  for (const auto& [output, count_a] : a) {
    const auto it = b.find(output);
    const uint64_t count_b = it == b.end() ? 0 : it->second;
    if (count_a + count_b < min_count) continue;
    worst = std::max(worst, std::fabs(ratio(count_a, count_b)));
  }
  for (const auto& [output, count_b] : b) {
    if (a.count(output) || count_b < min_count) continue;
    worst = std::max(worst, std::fabs(ratio(0, count_b)));
  }
  return worst;
}

constexpr uint64_t kTrials = 400000;
// Sampling slack: with ~4e5 trials and output probabilities >= ~0.05,
// empirical log-ratios wobble by a few percent.
constexpr double kSlack = 0.08;

TEST(PrivacyVerification, GrrRespectsEpsilon) {
  const double eps = 1.0;
  const GrrClient client(6, eps);
  Rng rng(1);
  std::map<uint64_t, uint64_t> out1;
  std::map<uint64_t, uint64_t> out2;
  for (uint64_t i = 0; i < kTrials; ++i) {
    ++out1[client.Perturb(0, rng)];
    ++out2[client.Perturb(3, rng)];
  }
  const double observed = MaxEmpiricalLogRatio(out1, out2, kTrials);
  EXPECT_LE(observed, eps + kSlack);
  EXPECT_GE(observed, eps - kSlack);  // GRR's bound is tight
}

TEST(PrivacyVerification, SueRespectsEpsilonPerBitPair) {
  // UE leaks through each bit independently; the worst pair of inputs
  // differs in two bits, each contributing eps/2.
  const double eps = 1.5;
  const UeClient client(4, eps, UeKind::kSymmetric);
  Rng rng(2);
  std::map<uint64_t, uint64_t> out1;
  std::map<uint64_t, uint64_t> out2;
  auto pack = [](const std::vector<uint8_t>& bits) {
    uint64_t key = 0;
    for (size_t i = 0; i < bits.size(); ++i) key |= uint64_t{bits[i]} << i;
    return key;
  };
  for (uint64_t i = 0; i < kTrials; ++i) {
    ++out1[pack(client.Perturb(0, rng))];
    ++out2[pack(client.Perturb(2, rng))];
  }
  const double observed = MaxEmpiricalLogRatio(out1, out2, kTrials);
  EXPECT_LE(observed, eps + kSlack);
}

TEST(PrivacyVerification, HadamardResponseRespectsEpsilon) {
  const double eps = 1.0;
  const HadamardResponseClient client(6, eps);
  Rng rng(3);
  std::map<uint64_t, uint64_t> out1;
  std::map<uint64_t, uint64_t> out2;
  for (uint64_t i = 0; i < kTrials; ++i) {
    ++out1[client.Perturb(1, rng)];
    ++out2[client.Perturb(4, rng)];
  }
  EXPECT_LE(MaxEmpiricalLogRatio(out1, out2, kTrials), eps + kSlack);
}

TEST(PrivacyVerification, SubsetSelectionRespectsEpsilon) {
  const double eps = 1.0;
  const SubsetSelectionClient client(6, eps);
  Rng rng(4);
  std::map<uint64_t, uint64_t> out1;
  std::map<uint64_t, uint64_t> out2;
  auto pack = [](const std::vector<uint32_t>& subset) {
    uint64_t key = 0;
    for (const uint32_t v : subset) key |= uint64_t{1} << v;
    return key;
  };
  for (uint64_t i = 0; i < kTrials; ++i) {
    ++out1[pack(client.Perturb(0, rng))];
    ++out2[pack(client.Perturb(5, rng))];
  }
  EXPECT_LE(MaxEmpiricalLogRatio(out1, out2, kTrials), eps + kSlack);
}

TEST(PrivacyVerification, LolohaFirstReportRespectsEps1) {
  // Theorem 3.4: hash + PRR + IRR is eps1-LDP on the first report. The
  // hash is part of the output; condition on a FIXED hash (the worst
  // case) and compare two colliding-or-not inputs via the cell pipeline.
  const double eps_perm = 2.0;
  const double eps_first = 1.0;
  const LolohaParams params = MakeLolohaParams(16, 4, eps_perm, eps_first);
  Rng rng(5);
  std::map<uint64_t, uint64_t> out1;
  std::map<uint64_t, uint64_t> out2;
  for (uint64_t i = 0; i < kTrials; ++i) {
    // Fresh client per trial: first report only. Use values that hash to
    // different cells for this client (worst case); skip colliding draws.
    LolohaClient client(params, rng);
    if (client.hash()(2) == client.hash()(9)) continue;
    // Condition on the hash mapping by keying outputs on (h(2), h(9), x).
    const uint64_t context =
        (uint64_t{client.hash()(2)} << 8) | client.hash()(9);
    if (i % 2 == 0) {
      ++out1[(context << 16) | client.Report(2, rng)];
    } else {
      ++out2[(context << 16) | client.Report(9, rng)];
    }
  }
  // Outputs are keyed by (hash-context, report); both sides see the same
  // context distribution, so the ratio bound still reflects eps1 — but
  // each context bucket has fewer samples, so allow wider slack.
  EXPECT_LE(MaxEmpiricalLogRatio(out1, out2, kTrials / 2),
            eps_first + 0.35);
}

TEST(PrivacyVerification, LolohaMemoizedPairLeaksAtMostTwoEpsPerm) {
  // Definition 3.2 / Thm. 3.5 at g = 2: release BOTH memoized cells (the
  // worst possible longitudinal observation, tau -> infinity with a
  // noiseless IRR) and verify the pair is 2*eps_perm-LDP w.r.t. the
  // *cell* inputs.
  const double eps_perm = 0.7;
  const PerturbParams prr = GrrParams(eps_perm, 2);
  Rng rng(6);
  std::map<uint64_t, uint64_t> out1;
  std::map<uint64_t, uint64_t> out2;
  auto memo_pair = [&](uint32_t cell_a, uint32_t cell_b) -> uint64_t {
    const uint32_t ma =
        rng.Bernoulli(prr.p) ? cell_a : 1 - cell_a;
    const uint32_t mb =
        rng.Bernoulli(prr.p) ? cell_b : 1 - cell_b;
    return (ma << 1) | mb;
  };
  for (uint64_t i = 0; i < kTrials; ++i) {
    ++out1[memo_pair(0, 0)];
    ++out2[memo_pair(1, 1)];  // both cells flipped: worst input pair
  }
  const double observed = MaxEmpiricalLogRatio(out1, out2, kTrials);
  EXPECT_LE(observed, 2 * eps_perm + kSlack);
  EXPECT_GE(observed, 2 * eps_perm - kSlack);  // tight
}

TEST(PrivacyVerification, LGrrFirstReportWithinEps1) {
  const double eps_perm = 2.0;
  const double eps_first = 1.0;
  const uint32_t k = 5;
  const ChainedParams chain = LGrrChain(eps_perm, eps_first, k);
  Rng rng(7);
  std::map<uint64_t, uint64_t> out1;
  std::map<uint64_t, uint64_t> out2;
  for (uint64_t i = 0; i < kTrials; ++i) {
    LongitudinalGrrClient c1(k, chain);
    LongitudinalGrrClient c2(k, chain);
    ++out1[c1.Report(0, rng)];
    ++out2[c2.Report(3, rng)];
  }
  EXPECT_LE(MaxEmpiricalLogRatio(out1, out2, kTrials), eps_first + kSlack);
}

TEST(PrivacyVerification, AveragedReportsDoNotExceedLongitudinalBudget) {
  // 50 IRR reports from one memoized LOLOHA cell: the joint leakage about
  // the true CELL must stay within eps_perm (the memo caps it), even
  // though 50 fresh eps_irr reports would naively compose to 50x that.
  // Empirically: compare the distribution of (sum of 50 reports) under
  // the two cell inputs.
  const double eps_perm = 1.0;
  const LolohaParams params = MakeLolohaParams(8, 2, eps_perm, 0.5);
  Rng rng(8);
  std::map<uint64_t, uint64_t> out1;
  std::map<uint64_t, uint64_t> out2;
  constexpr int kReports = 50;
  auto run = [&](uint32_t cell) -> uint64_t {
    // PRR once, then kReports IRR draws; output = count of 1-reports.
    uint32_t memo = rng.Bernoulli(params.prr.p) ? cell : 1 - cell;
    uint64_t ones = 0;
    for (int t = 0; t < kReports; ++t) {
      uint32_t report = memo;
      if (!rng.Bernoulli(params.irr.p)) report = 1 - report;
      ones += report;
    }
    return ones;
  };
  for (uint64_t i = 0; i < kTrials / 4; ++i) {
    ++out1[run(0)];
    ++out2[run(1)];
  }
  // Outputs rarer than ~1e-3 carry too much sampling noise to bound;
  // the remaining (bulk) outputs must respect the memoization cap.
  EXPECT_LE(MaxEmpiricalLogRatio(out1, out2, kTrials / 4,
                                 /*min_count=*/200),
            eps_perm + 0.25);
}

}  // namespace
}  // namespace loloha

// Loopback end-to-end tests for the TCP ingestion front: a real server
// thread, real sockets, and the PR's central claim — estimates and
// counters byte-identical to direct in-process ingestion at any shard
// count — plus the failure paths (malformed wire payloads, garbage
// frames, truncation at EOF) and the stats endpoint.

#include "server/net/ingest_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/loloha.h"
#include "core/loloha_params.h"
#include "longitudinal/dbitflip.h"
#include "server/collector.h"
#include "server/net/framing.h"
#include "sim/protocol_spec.h"
#include "util/rng.h"
#include "wire/encoding.h"

namespace loloha {
namespace {

// ---------------------------------------------------------------------------
// Blocking loopback client helpers.
// ---------------------------------------------------------------------------

int ConnectLoopback(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return -1;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool WriteAll(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

bool ReadExact(int fd, char* buf, size_t size) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n = read(fd, buf + off, size - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

uint32_t HeaderPayloadLen(const char* header) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(header[i])) << (8 * i);
  }
  return v;
}

bool ReadFrame(int fd, Frame* frame) {
  char header[kFrameHeaderBytes];
  if (!ReadExact(fd, header, sizeof(header))) return false;
  const uint32_t payload_len = HeaderPayloadLen(header);
  std::string payload(payload_len, '\0');
  if (payload_len > 0 && !ReadExact(fd, payload.data(), payload_len)) {
    return false;
  }
  FrameParser parser;
  parser.Feed(header, sizeof(header));
  parser.Feed(payload.data(), payload.size());
  return parser.Next(frame) == FrameStatus::kFrame;
}

// Reads until the peer closes — the stats endpoint's one-shot contract.
std::string ReadUntilEof(int fd) {
  std::string text;
  char buf[4096];
  for (;;) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return text;
    text.append(buf, static_cast<size_t>(n));
  }
}

// A server running on its own thread, stopped and joined on scope exit.
class ServerFixture {
 public:
  ServerFixture(const ProtocolSpec& spec, uint32_t k,
                const IngestServerConfig& config)
      : server_(spec, k, config) {
    start_ok_ = server_.Start();
    if (start_ok_) thread_ = std::thread([this] { server_.Run(); });
  }
  ~ServerFixture() { Join(); }

  // Idempotent; after the first call the server is fully drained.
  void Join() {
    if (thread_.joinable()) {
      server_.Stop();
      thread_.join();
    }
  }

  // Waits for the server to exit on its own (a kShutdown frame) instead
  // of forcing Stop() — Stop() can win the race against frames still
  // sitting unread in kernel socket buffers.
  void AwaitExit() {
    if (thread_.joinable()) thread_.join();
  }

  bool start_ok() const { return start_ok_; }
  IngestServer& server() { return server_; }

 private:
  IngestServer server_;
  bool start_ok_ = false;
  std::thread thread_;
};

// ---------------------------------------------------------------------------
// Traffic (pre-encoded, fixed seed).
// ---------------------------------------------------------------------------

struct Traffic {
  std::vector<Message> hellos;
  std::vector<std::vector<Message>> steps;
};

constexpr uint32_t kUsers = 600;
constexpr uint32_t kDomain = 32;
constexpr uint32_t kSteps = 2;

Traffic MakeTraffic(const ProtocolSpec& spec, uint64_t seed) {
  Rng rng(seed);
  Traffic traffic;
  traffic.steps.resize(kSteps);
  if (spec.IsLolohaVariant()) {
    const LolohaParams params = LolohaParamsForSpec(spec, kDomain);
    std::vector<LolohaClient> clients;
    for (uint32_t u = 0; u < kUsers; ++u) {
      clients.emplace_back(params, rng);
      traffic.hellos.push_back(
          Message{u, EncodeLolohaHello(clients[u].hash())});
    }
    for (uint32_t t = 0; t < kSteps; ++t) {
      for (uint32_t u = 0; u < kUsers; ++u) {
        traffic.steps[t].push_back(Message{
            u, EncodeLolohaReport(clients[u].Report((u + t) % kDomain, rng))});
      }
    }
  } else {
    const Bucketizer bucketizer(kDomain, spec.buckets);
    std::vector<DBitFlipClient> clients;
    for (uint32_t u = 0; u < kUsers; ++u) {
      clients.emplace_back(bucketizer, spec.d, spec.eps_perm, rng);
      traffic.hellos.push_back(
          Message{u, EncodeDBitHello(clients[u].sampled())});
    }
    for (uint32_t t = 0; t < kSteps; ++t) {
      for (uint32_t u = 0; u < kUsers; ++u) {
        traffic.steps[t].push_back(Message{
            u,
            EncodeDBitReport(clients[u].Report((u + t) % kDomain, rng).bits)});
      }
    }
  }
  return traffic;
}

// Sends messages[u] over connection u % conns.size(), fences each
// connection with a barrier, and waits for every ack.
void SendPhase(const std::vector<int>& conns,
               const std::vector<Message>& messages) {
  for (size_t c = 0; c < conns.size(); ++c) {
    std::string buf;
    for (size_t u = c; u < messages.size(); u += conns.size()) {
      AppendDataFrame(messages[u].user_id, messages[u].bytes, &buf);
    }
    AppendControlFrame(FrameType::kBarrier, &buf);
    ASSERT_TRUE(WriteAll(conns[c], buf));
  }
  for (const int fd : conns) {
    Frame frame;
    ASSERT_TRUE(ReadFrame(fd, &frame));
    ASSERT_EQ(frame.type, FrameType::kBarrierAck);
  }
}

// ---------------------------------------------------------------------------
// Byte-identity across the network path, spec x shard count.
// ---------------------------------------------------------------------------

class IngestServerIdentityTest
    : public ::testing::TestWithParam<std::tuple<const char*, uint32_t>> {};

TEST_P(IngestServerIdentityTest, MatchesDirectIngestExactly) {
  const ProtocolSpec spec = ProtocolSpec::MustParse(std::get<0>(GetParam()));
  const uint32_t shards = std::get<1>(GetParam());
  const Traffic traffic = MakeTraffic(spec, 97);

  std::vector<std::vector<double>> reference;
  CollectorStats reference_stats;
  {
    const std::unique_ptr<Collector> collector = MakeCollector(spec, kDomain);
    collector->IngestBatch(traffic.hellos);
    for (const auto& step : traffic.steps) {
      collector->IngestBatch(step);
      reference.push_back(collector->EndStep());
    }
    reference_stats = collector->stats();
  }

  IngestServerConfig config;
  config.num_shards = shards;
  config.flush_max_batch = 64;  // exercise multiple flushes per step
  ServerFixture fixture(spec, kDomain, config);
  ASSERT_TRUE(fixture.start_ok());

  std::vector<int> conns;
  for (int c = 0; c < 3; ++c) {
    const int fd = ConnectLoopback(fixture.server().port());
    ASSERT_GE(fd, 0);
    conns.push_back(fd);
  }
  const int control = ConnectLoopback(fixture.server().port());
  ASSERT_GE(control, 0);

  SendPhase(conns, traffic.hellos);
  std::vector<std::vector<double>> observed;
  std::string end_step;
  AppendControlFrame(FrameType::kEndStep, &end_step);
  for (const auto& step : traffic.steps) {
    SendPhase(conns, step);
    ASSERT_TRUE(WriteAll(control, end_step));
    Frame frame;
    ASSERT_TRUE(ReadFrame(control, &frame));
    ASSERT_EQ(frame.type, FrameType::kEstimates);
    observed.push_back(frame.estimates);
  }
  for (const int fd : conns) close(fd);
  close(control);
  fixture.Join();

  // The central contract: the network front changes nothing, bit for bit.
  EXPECT_EQ(observed, reference);
  EXPECT_EQ(fixture.server().step_estimates(), reference);
  EXPECT_EQ(fixture.server().TotalStats(), reference_stats);
  EXPECT_EQ(fixture.server().TotalRegisteredUsers(), kUsers);
  const IngestServerStats stats = fixture.server().server_stats();
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.steps_completed, kSteps);
  EXPECT_EQ(stats.frames_data, uint64_t{kUsers} * (1 + kSteps));
}

INSTANTIATE_TEST_SUITE_P(
    SpecsAndShards, IngestServerIdentityTest,
    ::testing::Combine(::testing::Values("ololoha:eps_perm=2,eps_first=1",
                                         "bbitflip:eps_perm=3,buckets=8,d=4"),
                       ::testing::Values(1u, 4u)));

// ---------------------------------------------------------------------------
// Failure paths and observability.
// ---------------------------------------------------------------------------

ProtocolSpec TestSpec() {
  return ProtocolSpec::MustParse("ololoha:eps_perm=2,eps_first=1");
}

TEST(IngestServerTest, MalformedWirePayloadIsCountedNotFatal) {
  const ProtocolSpec spec = TestSpec();
  const Traffic traffic = MakeTraffic(spec, 3);
  ServerFixture fixture(spec, kDomain, IngestServerConfig{});
  ASSERT_TRUE(fixture.start_ok());
  const int fd = ConnectLoopback(fixture.server().port());
  ASSERT_GE(fd, 0);

  // Register user 0, then send a structurally valid frame whose payload
  // is garbage to the wire decoder: the collector rejects the message
  // (and an unregistered sender's likewise), the connection lives.
  std::string buf;
  AppendDataFrame(0, traffic.hellos[0].bytes, &buf);
  AppendDataFrame(0, "not a wire message", &buf);
  AppendDataFrame(999999, "also not a wire message", &buf);
  AppendControlFrame(FrameType::kBarrier, &buf);
  ASSERT_TRUE(WriteAll(fd, buf));
  Frame frame;
  ASSERT_TRUE(ReadFrame(fd, &frame));
  EXPECT_EQ(frame.type, FrameType::kBarrierAck);
  close(fd);
  fixture.Join();

  const CollectorStats stats = fixture.server().TotalStats();
  EXPECT_EQ(stats.hellos_accepted, 1u);
  EXPECT_EQ(stats.rejected_malformed, 1u);
  EXPECT_EQ(stats.rejected_unknown_user, 1u);
  EXPECT_EQ(fixture.server().server_stats().protocol_errors, 0u);
}

TEST(IngestServerTest, GarbageFrameClosesConnectionServerSurvives) {
  ServerFixture fixture(TestSpec(), kDomain, IngestServerConfig{});
  ASSERT_TRUE(fixture.start_ok());
  const int bad = ConnectLoopback(fixture.server().port());
  ASSERT_GE(bad, 0);

  // Frame type 0 is a framing violation: the server must close this
  // connection (we observe EOF) without taking the process down.
  ASSERT_TRUE(WriteAll(bad, std::string("\x00\x00\x00\x00\x00", 5)));
  char byte;
  EXPECT_FALSE(ReadExact(bad, &byte, 1));  // EOF: closed by the server
  close(bad);

  // The server still serves a healthy connection afterwards.
  const int good = ConnectLoopback(fixture.server().port());
  ASSERT_GE(good, 0);
  std::string barrier;
  AppendControlFrame(FrameType::kBarrier, &barrier);
  ASSERT_TRUE(WriteAll(good, barrier));
  Frame frame;
  ASSERT_TRUE(ReadFrame(good, &frame));
  EXPECT_EQ(frame.type, FrameType::kBarrierAck);
  close(good);
  fixture.Join();
  EXPECT_EQ(fixture.server().server_stats().protocol_errors, 1u);
}

TEST(IngestServerTest, TruncatedFrameAtEofIsProtocolError) {
  ServerFixture fixture(TestSpec(), kDomain, IngestServerConfig{});
  ASSERT_TRUE(fixture.start_ok());
  const int fd = ConnectLoopback(fixture.server().port());
  ASSERT_GE(fd, 0);

  std::string buf;
  AppendDataFrame(1, "abcdefgh", &buf);
  // Send all but the tail and hang up mid-frame. Fence with a second
  // connection's barrier so the bytes are processed before Join.
  ASSERT_TRUE(WriteAll(fd, buf.substr(0, buf.size() - 3)));
  close(fd);

  const int fence = ConnectLoopback(fixture.server().port());
  ASSERT_GE(fence, 0);
  std::string barrier;
  AppendControlFrame(FrameType::kBarrier, &barrier);
  ASSERT_TRUE(WriteAll(fence, barrier));
  Frame frame;
  ASSERT_TRUE(ReadFrame(fence, &frame));
  close(fence);
  fixture.Join();
  EXPECT_EQ(fixture.server().server_stats().protocol_errors, 1u);
}

TEST(IngestServerTest, StatsEndpointServesSnapshotAndCloses) {
  const ProtocolSpec spec = TestSpec();
  const Traffic traffic = MakeTraffic(spec, 5);
  ServerFixture fixture(spec, kDomain, IngestServerConfig{});
  ASSERT_TRUE(fixture.start_ok());

  const int fd = ConnectLoopback(fixture.server().port());
  ASSERT_GE(fd, 0);
  SendPhase({fd}, traffic.hellos);

  const int stats_fd = ConnectLoopback(fixture.server().stats_port());
  ASSERT_GE(stats_fd, 0);
  const std::string text = ReadUntilEof(stats_fd);
  close(stats_fd);
  close(fd);
  fixture.Join();

  EXPECT_NE(text.find("loloha_ingest_server\n"), std::string::npos);
  EXPECT_NE(text.find("protocol: " + spec.ToString() + "\n"),
            std::string::npos);
  EXPECT_NE(text.find("registered_users: 600\n"), std::string::npos);
  EXPECT_NE(text.find("hellos_accepted: 600\n"), std::string::npos);
  EXPECT_NE(text.find("protocol_errors: 0\n"), std::string::npos);
}

TEST(IngestServerTest, ShutdownFrameDrainsAndStops) {
  const ProtocolSpec spec = TestSpec();
  const Traffic traffic = MakeTraffic(spec, 17);
  IngestServerConfig config;
  config.num_shards = 2;
  ServerFixture fixture(spec, kDomain, config);
  ASSERT_TRUE(fixture.start_ok());

  const int fd = ConnectLoopback(fixture.server().port());
  ASSERT_GE(fd, 0);
  // No barrier: the shutdown drain alone must deliver every hello.
  std::string buf;
  for (const Message& hello : traffic.hellos) {
    AppendDataFrame(hello.user_id, hello.bytes, &buf);
  }
  AppendControlFrame(FrameType::kShutdown, &buf);
  ASSERT_TRUE(WriteAll(fd, buf));

  fixture.AwaitExit();  // returns only because kShutdown stopped the loop
  close(fd);
  EXPECT_EQ(fixture.server().TotalStats().hellos_accepted, kUsers);
  EXPECT_EQ(fixture.server().server_stats().connections_active, 0u);
}

TEST(IngestServerTest, MonitorObservesSteps) {
  const ProtocolSpec spec = TestSpec();
  const Traffic traffic = MakeTraffic(spec, 23);
  IngestServerConfig config;
  config.enable_monitor = true;
  ServerFixture fixture(spec, kDomain, config);
  ASSERT_TRUE(fixture.start_ok());

  const int fd = ConnectLoopback(fixture.server().port());
  ASSERT_GE(fd, 0);
  SendPhase({fd}, traffic.hellos);
  std::string end_step;
  AppendControlFrame(FrameType::kEndStep, &end_step);
  for (const auto& step : traffic.steps) {
    SendPhase({fd}, step);
    ASSERT_TRUE(WriteAll(fd, end_step));
    Frame frame;
    ASSERT_TRUE(ReadFrame(fd, &frame));
    ASSERT_EQ(frame.type, FrameType::kEstimates);
  }

  const int stats_fd = ConnectLoopback(fixture.server().stats_port());
  ASSERT_GE(stats_fd, 0);
  const std::string text = ReadUntilEof(stats_fd);
  close(stats_fd);
  close(fd);
  fixture.Join();
  EXPECT_NE(text.find("monitor_enabled: 1\n"), std::string::npos);
  EXPECT_NE(text.find("monitor_steps_observed: 2\n"), std::string::npos);
}

TEST(IngestServerTest, BackpressureStallsResolveWithoutLoss) {
  const ProtocolSpec spec = TestSpec();
  const Traffic traffic = MakeTraffic(spec, 41);
  IngestServerConfig config;
  config.num_shards = 1;
  config.flush_max_batch = 4;  // tiny batches ...
  config.queue_capacity = 1;   // ... into a queue of one: constant stalls
  ServerFixture fixture(spec, kDomain, config);
  ASSERT_TRUE(fixture.start_ok());

  const int fd = ConnectLoopback(fixture.server().port());
  ASSERT_GE(fd, 0);
  SendPhase({fd}, traffic.hellos);
  std::string end_step;
  AppendControlFrame(FrameType::kEndStep, &end_step);
  SendPhase({fd}, traffic.steps[0]);
  ASSERT_TRUE(WriteAll(fd, end_step));
  Frame frame;
  ASSERT_TRUE(ReadFrame(fd, &frame));
  ASSERT_EQ(frame.type, FrameType::kEstimates);
  close(fd);
  fixture.Join();

  // Gating may or may not trigger depending on timing, but nothing is
  // ever dropped.
  const CollectorStats stats = fixture.server().TotalStats();
  EXPECT_EQ(stats.hellos_accepted, kUsers);
  EXPECT_EQ(stats.reports_accepted, kUsers);
  EXPECT_EQ(fixture.server().server_stats().protocol_errors, 0u);
}

}  // namespace
}  // namespace loloha

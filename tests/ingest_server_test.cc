// Loopback end-to-end tests for the TCP ingestion front: a real server
// thread, real sockets, and the PR's central claim — estimates and
// counters byte-identical to direct in-process ingestion at any shard
// count — plus the failure paths (malformed wire payloads, garbage
// frames, truncation at EOF), the stats endpoint, and a full
// stop/restore/resume cycle over shard snapshots. The client plumbing
// and traffic generator live in net_test_util.h, shared with
// crash_recovery_test.cc.

#include "server/net/ingest_server.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "net_test_util.h"
#include "server/collector.h"
#include "server/net/framing.h"
#include "server/store/user_state_store.h"
#include "sim/protocol_spec.h"
#include "wire/encoding.h"

namespace loloha {
namespace {

using net_test::ConnectLoopback;
using net_test::MakeTraffic;
using net_test::ReadExact;
using net_test::ReadFrame;
using net_test::ReadUntilEof;
using net_test::SendPhase;
using net_test::ServerFixture;
using net_test::Traffic;
using net_test::WriteAll;

constexpr uint32_t kUsers = 600;
constexpr uint32_t kDomain = 32;
constexpr uint32_t kSteps = 2;

// ---------------------------------------------------------------------------
// Byte-identity across the network path, spec x shard count.
// ---------------------------------------------------------------------------

class IngestServerIdentityTest
    : public ::testing::TestWithParam<std::tuple<const char*, uint32_t>> {};

TEST_P(IngestServerIdentityTest, MatchesDirectIngestExactly) {
  const ProtocolSpec spec = ProtocolSpec::MustParse(std::get<0>(GetParam()));
  const uint32_t shards = std::get<1>(GetParam());
  const Traffic traffic = MakeTraffic(spec, 97, kUsers, kDomain, kSteps);

  std::vector<std::vector<double>> reference;
  CollectorStats reference_stats;
  {
    const std::unique_ptr<Collector> collector = MakeCollector(spec, kDomain);
    collector->IngestBatch(traffic.hellos);
    for (const auto& step : traffic.steps) {
      collector->IngestBatch(step);
      reference.push_back(collector->EndStep());
    }
    reference_stats = collector->stats();
  }

  IngestServerConfig config;
  config.num_shards = shards;
  config.flush_max_batch = 64;  // exercise multiple flushes per step
  ServerFixture fixture(spec, kDomain, config);
  ASSERT_TRUE(fixture.start_ok());

  std::vector<int> conns;
  for (int c = 0; c < 3; ++c) {
    const int fd = ConnectLoopback(fixture.server().port());
    ASSERT_GE(fd, 0);
    conns.push_back(fd);
  }
  const int control = ConnectLoopback(fixture.server().port());
  ASSERT_GE(control, 0);

  SendPhase(conns, traffic.hellos);
  std::vector<std::vector<double>> observed;
  std::string end_step;
  AppendControlFrame(FrameType::kEndStep, &end_step);
  for (const auto& step : traffic.steps) {
    SendPhase(conns, step);
    ASSERT_TRUE(WriteAll(control, end_step));
    Frame frame;
    ASSERT_TRUE(ReadFrame(control, &frame));
    ASSERT_EQ(frame.type, FrameType::kEstimates);
    observed.push_back(frame.estimates);
  }
  for (const int fd : conns) close(fd);
  close(control);
  fixture.Join();

  // The central contract: the network front changes nothing, bit for bit.
  EXPECT_EQ(observed, reference);
  EXPECT_EQ(fixture.server().step_estimates(), reference);
  EXPECT_EQ(fixture.server().TotalStats(), reference_stats);
  EXPECT_EQ(fixture.server().TotalRegisteredUsers(), kUsers);
  const IngestServerStats stats = fixture.server().server_stats();
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.steps_completed, kSteps);
  EXPECT_EQ(stats.frames_data, uint64_t{kUsers} * (1 + kSteps));
}

INSTANTIATE_TEST_SUITE_P(
    SpecsAndShards, IngestServerIdentityTest,
    ::testing::Combine(::testing::Values("ololoha:eps_perm=2,eps_first=1",
                                         "bbitflip:eps_perm=3,buckets=8,d=4"),
                       ::testing::Values(1u, 4u)));

// ---------------------------------------------------------------------------
// Failure paths and observability.
// ---------------------------------------------------------------------------

ProtocolSpec TestSpec() {
  return ProtocolSpec::MustParse("ololoha:eps_perm=2,eps_first=1");
}

TEST(IngestServerTest, MalformedWirePayloadIsCountedNotFatal) {
  const ProtocolSpec spec = TestSpec();
  const Traffic traffic = MakeTraffic(spec, 3, kUsers, kDomain, kSteps);
  ServerFixture fixture(spec, kDomain, IngestServerConfig{});
  ASSERT_TRUE(fixture.start_ok());
  const int fd = ConnectLoopback(fixture.server().port());
  ASSERT_GE(fd, 0);

  // Register user 0, then send a structurally valid frame whose payload
  // is garbage to the wire decoder: the collector rejects the message
  // (and an unregistered sender's likewise), the connection lives.
  std::string buf;
  AppendDataFrame(0, traffic.hellos[0].bytes, &buf);
  AppendDataFrame(0, "not a wire message", &buf);
  AppendDataFrame(999999, "also not a wire message", &buf);
  AppendControlFrame(FrameType::kBarrier, &buf);
  ASSERT_TRUE(WriteAll(fd, buf));
  Frame frame;
  ASSERT_TRUE(ReadFrame(fd, &frame));
  EXPECT_EQ(frame.type, FrameType::kBarrierAck);
  close(fd);
  fixture.Join();

  const CollectorStats stats = fixture.server().TotalStats();
  EXPECT_EQ(stats.hellos_accepted, 1u);
  EXPECT_EQ(stats.rejected_malformed, 1u);
  EXPECT_EQ(stats.rejected_unknown_user, 1u);
  EXPECT_EQ(fixture.server().server_stats().protocol_errors, 0u);
}

TEST(IngestServerTest, GarbageFrameClosesConnectionServerSurvives) {
  ServerFixture fixture(TestSpec(), kDomain, IngestServerConfig{});
  ASSERT_TRUE(fixture.start_ok());
  const int bad = ConnectLoopback(fixture.server().port());
  ASSERT_GE(bad, 0);

  // Frame type 0 is a framing violation: the server must close this
  // connection (we observe EOF) without taking the process down.
  ASSERT_TRUE(WriteAll(bad, std::string("\x00\x00\x00\x00\x00", 5)));
  char byte;
  EXPECT_FALSE(ReadExact(bad, &byte, 1));  // EOF: closed by the server
  close(bad);

  // The server still serves a healthy connection afterwards.
  const int good = ConnectLoopback(fixture.server().port());
  ASSERT_GE(good, 0);
  std::string barrier;
  AppendControlFrame(FrameType::kBarrier, &barrier);
  ASSERT_TRUE(WriteAll(good, barrier));
  Frame frame;
  ASSERT_TRUE(ReadFrame(good, &frame));
  EXPECT_EQ(frame.type, FrameType::kBarrierAck);
  close(good);
  fixture.Join();
  EXPECT_EQ(fixture.server().server_stats().protocol_errors, 1u);
}

TEST(IngestServerTest, TruncatedFrameAtEofIsProtocolError) {
  ServerFixture fixture(TestSpec(), kDomain, IngestServerConfig{});
  ASSERT_TRUE(fixture.start_ok());
  const int fd = ConnectLoopback(fixture.server().port());
  ASSERT_GE(fd, 0);

  std::string buf;
  AppendDataFrame(1, "abcdefgh", &buf);
  // Send all but the tail and hang up mid-frame. Fence with a second
  // connection's barrier so the bytes are processed before Join.
  ASSERT_TRUE(WriteAll(fd, buf.substr(0, buf.size() - 3)));
  close(fd);

  const int fence = ConnectLoopback(fixture.server().port());
  ASSERT_GE(fence, 0);
  std::string barrier;
  AppendControlFrame(FrameType::kBarrier, &barrier);
  ASSERT_TRUE(WriteAll(fence, barrier));
  Frame frame;
  ASSERT_TRUE(ReadFrame(fence, &frame));
  close(fence);
  fixture.Join();
  EXPECT_EQ(fixture.server().server_stats().protocol_errors, 1u);
}

TEST(IngestServerTest, StatsEndpointServesSnapshotAndCloses) {
  const ProtocolSpec spec = TestSpec();
  const Traffic traffic = MakeTraffic(spec, 5, kUsers, kDomain, kSteps);
  ServerFixture fixture(spec, kDomain, IngestServerConfig{});
  ASSERT_TRUE(fixture.start_ok());

  const int fd = ConnectLoopback(fixture.server().port());
  ASSERT_GE(fd, 0);
  SendPhase({fd}, traffic.hellos);

  const int stats_fd = ConnectLoopback(fixture.server().stats_port());
  ASSERT_GE(stats_fd, 0);
  const std::string text = ReadUntilEof(stats_fd);
  close(stats_fd);
  close(fd);
  fixture.Join();

  EXPECT_NE(text.find("loloha_ingest_server\n"), std::string::npos);
  EXPECT_NE(text.find("protocol: " + spec.ToString() + "\n"),
            std::string::npos);
  EXPECT_NE(text.find("registered_users: 600\n"), std::string::npos);
  EXPECT_NE(text.find("hellos_accepted: 600\n"), std::string::npos);
  EXPECT_NE(text.find("protocol_errors: 0\n"), std::string::npos);
}

TEST(IngestServerTest, ShutdownFrameDrainsAndStops) {
  const ProtocolSpec spec = TestSpec();
  const Traffic traffic = MakeTraffic(spec, 17, kUsers, kDomain, kSteps);
  IngestServerConfig config;
  config.num_shards = 2;
  ServerFixture fixture(spec, kDomain, config);
  ASSERT_TRUE(fixture.start_ok());

  const int fd = ConnectLoopback(fixture.server().port());
  ASSERT_GE(fd, 0);
  // No barrier: the shutdown drain alone must deliver every hello.
  std::string buf;
  for (const Message& hello : traffic.hellos) {
    AppendDataFrame(hello.user_id, hello.bytes, &buf);
  }
  AppendControlFrame(FrameType::kShutdown, &buf);
  ASSERT_TRUE(WriteAll(fd, buf));

  fixture.AwaitExit();  // returns only because kShutdown stopped the loop
  close(fd);
  EXPECT_EQ(fixture.server().TotalStats().hellos_accepted, kUsers);
  EXPECT_EQ(fixture.server().server_stats().connections_active, 0u);
}

TEST(IngestServerTest, MonitorObservesSteps) {
  const ProtocolSpec spec = TestSpec();
  const Traffic traffic = MakeTraffic(spec, 23, kUsers, kDomain, kSteps);
  IngestServerConfig config;
  config.enable_monitor = true;
  ServerFixture fixture(spec, kDomain, config);
  ASSERT_TRUE(fixture.start_ok());

  const int fd = ConnectLoopback(fixture.server().port());
  ASSERT_GE(fd, 0);
  SendPhase({fd}, traffic.hellos);
  std::string end_step;
  AppendControlFrame(FrameType::kEndStep, &end_step);
  for (const auto& step : traffic.steps) {
    SendPhase({fd}, step);
    ASSERT_TRUE(WriteAll(fd, end_step));
    Frame frame;
    ASSERT_TRUE(ReadFrame(fd, &frame));
    ASSERT_EQ(frame.type, FrameType::kEstimates);
  }

  const int stats_fd = ConnectLoopback(fixture.server().stats_port());
  ASSERT_GE(stats_fd, 0);
  const std::string text = ReadUntilEof(stats_fd);
  close(stats_fd);
  close(fd);
  fixture.Join();
  EXPECT_NE(text.find("monitor_enabled: 1\n"), std::string::npos);
  EXPECT_NE(text.find("monitor_steps_observed: 2\n"), std::string::npos);
}

TEST(IngestServerTest, BackpressureStallsResolveWithoutLoss) {
  const ProtocolSpec spec = TestSpec();
  const Traffic traffic = MakeTraffic(spec, 41, kUsers, kDomain, kSteps);
  IngestServerConfig config;
  config.num_shards = 1;
  config.flush_max_batch = 4;  // tiny batches ...
  config.queue_capacity = 1;   // ... into a queue of one: constant stalls
  ServerFixture fixture(spec, kDomain, config);
  ASSERT_TRUE(fixture.start_ok());

  const int fd = ConnectLoopback(fixture.server().port());
  ASSERT_GE(fd, 0);
  SendPhase({fd}, traffic.hellos);
  std::string end_step;
  AppendControlFrame(FrameType::kEndStep, &end_step);
  SendPhase({fd}, traffic.steps[0]);
  ASSERT_TRUE(WriteAll(fd, end_step));
  Frame frame;
  ASSERT_TRUE(ReadFrame(fd, &frame));
  ASSERT_EQ(frame.type, FrameType::kEstimates);
  close(fd);
  fixture.Join();

  // Gating may or may not trigger depending on timing, but nothing is
  // ever dropped.
  const CollectorStats stats = fixture.server().TotalStats();
  EXPECT_EQ(stats.hellos_accepted, kUsers);
  EXPECT_EQ(stats.reports_accepted, kUsers);
  EXPECT_EQ(fixture.server().server_stats().protocol_errors, 0u);
}

// ---------------------------------------------------------------------------
// Restart: stop the server, restore a fresh one from shard snapshots,
// and resume the deployment with nothing lost.
// ---------------------------------------------------------------------------

// ctest runs suites in parallel from one build dir: keep scratch
// directories unique per process.
std::string TempSnapshotDir(const char* stem) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s_%d", stem, static_cast<int>(getpid()));
  ::mkdir(buf, 0755);
  return buf;
}

void RemoveSnapshotDir(const std::string& dir, uint32_t shards) {
  for (uint32_t shard = 0; shard < shards; ++shard) {
    char name[160];
    std::snprintf(name, sizeof(name), "%s/shard_%u-of-%u.snap", dir.c_str(),
                  shard, shards);
    std::remove(name);
  }
  ::rmdir(dir.c_str());
}

TEST(IngestServerTest, RestartRestoresShardsAndResumesByteIdentical) {
  const ProtocolSpec spec = TestSpec();
  const Traffic traffic = MakeTraffic(spec, 71, kUsers, kDomain, kSteps);
  const std::string dir = TempSnapshotDir("ingest_restart");

  // Uninterrupted reference: one collector sees the whole deployment.
  std::vector<std::vector<double>> reference;
  CollectorStats reference_stats;
  {
    const std::unique_ptr<Collector> collector = MakeCollector(spec, kDomain);
    collector->IngestBatch(traffic.hellos);
    for (const auto& step : traffic.steps) {
      collector->IngestBatch(step);
      reference.push_back(collector->EndStep());
    }
    reference_stats = collector->stats();
  }

  IngestServerConfig config;
  config.num_shards = 2;
  config.collector_options.store.kind = StoreKind::kSnapshot;
  config.snapshot_dir = dir;

  std::string end_step;
  AppendControlFrame(FrameType::kEndStep, &end_step);

  // Life 1: register the fleet, close step 1 (which checkpoints every
  // shard), then go down without ceremony.
  {
    ServerFixture fixture(spec, kDomain, config);
    ASSERT_TRUE(fixture.start_ok());
    const int fd = ConnectLoopback(fixture.server().port());
    ASSERT_GE(fd, 0);
    SendPhase({fd}, traffic.hellos);
    SendPhase({fd}, traffic.steps[0]);
    ASSERT_TRUE(WriteAll(fd, end_step));
    Frame frame;
    ASSERT_TRUE(ReadFrame(fd, &frame));
    ASSERT_EQ(frame.type, FrameType::kEstimates);
    EXPECT_EQ(frame.estimates, reference[0]);
    close(fd);
    fixture.Join();
  }

  // Life 2: a brand-new server restores the shard snapshots and serves
  // step 2 as if nothing happened — estimates and the cumulative
  // counters (stamped into the snapshots) stay byte-identical.
  config.restore_snapshots = true;
  {
    ServerFixture fixture(spec, kDomain, config);
    ASSERT_TRUE(fixture.start_ok());
    EXPECT_EQ(fixture.server().server_stats().shards_restored, 2u);
    EXPECT_EQ(fixture.server().TotalRegisteredUsers(), kUsers);

    const int fd = ConnectLoopback(fixture.server().port());
    ASSERT_GE(fd, 0);
    SendPhase({fd}, traffic.steps[1]);
    ASSERT_TRUE(WriteAll(fd, end_step));
    Frame frame;
    ASSERT_TRUE(ReadFrame(fd, &frame));
    ASSERT_EQ(frame.type, FrameType::kEstimates);
    EXPECT_EQ(frame.estimates, reference[1]);
    EXPECT_EQ(fixture.server().TotalStats(), reference_stats);
    close(fd);
    fixture.Join();
  }
  RemoveSnapshotDir(dir, 2);
}

TEST(IngestServerTest, PartialSnapshotSetRefusesToStart) {
  const ProtocolSpec spec = TestSpec();
  const Traffic traffic = MakeTraffic(spec, 73, kUsers, kDomain, 1);
  const std::string dir = TempSnapshotDir("ingest_partial");

  IngestServerConfig config;
  config.num_shards = 2;
  config.collector_options.store.kind = StoreKind::kSnapshot;
  config.snapshot_dir = dir;
  {
    ServerFixture fixture(spec, kDomain, config);
    ASSERT_TRUE(fixture.start_ok());
    const int fd = ConnectLoopback(fixture.server().port());
    ASSERT_GE(fd, 0);
    SendPhase({fd}, traffic.hellos);
    SendPhase({fd}, traffic.steps[0]);
    std::string end_step;
    AppendControlFrame(FrameType::kEndStep, &end_step);
    ASSERT_TRUE(WriteAll(fd, end_step));
    Frame frame;
    ASSERT_TRUE(ReadFrame(fd, &frame));
    close(fd);
    fixture.Join();
  }

  // Delete one shard's snapshot: restore must refuse (all-or-none),
  // never start half a fleet.
  std::remove((dir + "/shard_0-of-2.snap").c_str());
  config.restore_snapshots = true;
  {
    IngestServer server(spec, kDomain, config);
    EXPECT_FALSE(server.Start());
  }
  RemoveSnapshotDir(dir, 2);
}

}  // namespace
}  // namespace loloha

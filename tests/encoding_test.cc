#include "wire/encoding.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace loloha {
namespace {

TEST(WireGrrTest, RoundTrip) {
  const std::string bytes = EncodeGrrReport(42);
  uint32_t value = 0;
  ASSERT_TRUE(DecodeGrrReport(bytes, 100, &value));
  EXPECT_EQ(value, 42u);
}

TEST(WireGrrTest, RejectsOutOfDomain) {
  const std::string bytes = EncodeGrrReport(100);
  uint32_t value = 0;
  EXPECT_FALSE(DecodeGrrReport(bytes, 100, &value));
}

TEST(WireGrrTest, RejectsTruncated) {
  std::string bytes = EncodeGrrReport(5);
  bytes.pop_back();
  uint32_t value = 0;
  EXPECT_FALSE(DecodeGrrReport(bytes, 100, &value));
}

TEST(WireGrrTest, RejectsTrailingGarbage) {
  std::string bytes = EncodeGrrReport(5);
  bytes.push_back('\0');
  uint32_t value = 0;
  EXPECT_FALSE(DecodeGrrReport(bytes, 100, &value));
}

TEST(WireGrrTest, RejectsWrongTag) {
  std::string bytes = EncodeGrrReport(5);
  bytes[0] = static_cast<char>(WireType::kUeReport);
  uint32_t value = 0;
  EXPECT_FALSE(DecodeGrrReport(bytes, 100, &value));
}

TEST(WireGrrTest, RejectsWrongVersion) {
  std::string bytes = EncodeGrrReport(5);
  bytes[1] = kWireVersion + 1;
  uint32_t value = 0;
  EXPECT_FALSE(DecodeGrrReport(bytes, 100, &value));
}

TEST(WireUeTest, RoundTripVariousLengths) {
  for (const uint32_t k : {1u, 7u, 8u, 9u, 64u, 96u, 360u}) {
    std::vector<uint8_t> bits(k);
    for (uint32_t i = 0; i < k; ++i) bits[i] = (i % 3 == 0) ? 1 : 0;
    const std::string bytes = EncodeUeReport(bits);
    std::vector<uint8_t> decoded;
    ASSERT_TRUE(DecodeUeReport(bytes, k, &decoded)) << "k=" << k;
    EXPECT_EQ(decoded, bits);
  }
}

TEST(WireUeTest, EncodedSizeIsCompact) {
  const std::vector<uint8_t> bits(360, 1);
  // 2 header + 4 length + 45 packed bytes.
  EXPECT_EQ(EncodeUeReport(bits).size(), 51u);
}

TEST(WireUeTest, RejectsLengthMismatch) {
  const std::vector<uint8_t> bits(16, 0);
  const std::string bytes = EncodeUeReport(bits);
  std::vector<uint8_t> decoded;
  EXPECT_FALSE(DecodeUeReport(bytes, 17, &decoded));
}

TEST(WireUeTest, RejectsNonCanonicalPadding) {
  std::vector<uint8_t> bits(9, 0);
  std::string bytes = EncodeUeReport(bits);
  bytes[bytes.size() - 1] = static_cast<char>(0x80);  // pad bit set
  std::vector<uint8_t> decoded;
  EXPECT_FALSE(DecodeUeReport(bytes, 9, &decoded));
}

TEST(WireLhTest, RoundTrip) {
  Rng rng(1);
  LhReport report;
  report.hash = UniversalHash::Sample(8, rng);
  report.cell = 5;
  const std::string bytes = EncodeLhReport(report);
  LhReport decoded;
  ASSERT_TRUE(DecodeLhReport(bytes, 8, &decoded));
  EXPECT_TRUE(decoded.hash == report.hash);
  EXPECT_EQ(decoded.cell, 5u);
}

TEST(WireLhTest, RejectsRangeMismatchAndBadCoefficients) {
  Rng rng(2);
  LhReport report;
  report.hash = UniversalHash::Sample(8, rng);
  report.cell = 0;
  const std::string bytes = EncodeLhReport(report);
  LhReport decoded;
  EXPECT_FALSE(DecodeLhReport(bytes, 4, &decoded));

  // Corrupt the `a` coefficient to zero (invalid for the family).
  std::string corrupt = bytes;
  for (int i = 2; i < 10; ++i) corrupt[i] = 0;
  EXPECT_FALSE(DecodeLhReport(corrupt, 8, &decoded));
}

TEST(WireLolohaTest, HelloRoundTrip) {
  Rng rng(3);
  const UniversalHash hash = UniversalHash::Sample(4, rng);
  UniversalHash decoded;
  ASSERT_TRUE(DecodeLolohaHello(EncodeLolohaHello(hash), 4, &decoded));
  EXPECT_TRUE(decoded == hash);
}

TEST(WireLolohaTest, ReportRoundTripAndRangeCheck) {
  uint32_t cell = 0;
  ASSERT_TRUE(DecodeLolohaReport(EncodeLolohaReport(3), 4, &cell));
  EXPECT_EQ(cell, 3u);
  EXPECT_FALSE(DecodeLolohaReport(EncodeLolohaReport(4), 4, &cell));
}

TEST(WireDBitTest, HelloRoundTrip) {
  const std::vector<uint32_t> sampled = {7, 2, 9};
  std::vector<uint32_t> decoded;
  ASSERT_TRUE(DecodeDBitHello(EncodeDBitHello(sampled), 10, 3, &decoded));
  EXPECT_EQ(decoded, sampled);
}

TEST(WireDBitTest, HelloRejectsDuplicatesAndOutOfRange) {
  std::vector<uint32_t> decoded;
  EXPECT_FALSE(
      DecodeDBitHello(EncodeDBitHello({1, 1, 2}), 10, 3, &decoded));
  EXPECT_FALSE(
      DecodeDBitHello(EncodeDBitHello({1, 10, 2}), 10, 3, &decoded));
  EXPECT_FALSE(DecodeDBitHello(EncodeDBitHello({1, 2}), 10, 3, &decoded));
}

TEST(WireDBitTest, ReportRoundTrip) {
  const std::vector<uint8_t> bits = {1, 0, 1, 1, 0};
  std::vector<uint8_t> decoded;
  ASSERT_TRUE(DecodeDBitReport(EncodeDBitReport(bits), 5, &decoded));
  EXPECT_EQ(decoded, bits);
}

TEST(WirePeekTest, IdentifiesTypes) {
  WireType type;
  ASSERT_TRUE(PeekWireType(EncodeGrrReport(1), &type));
  EXPECT_EQ(type, WireType::kGrrReport);
  ASSERT_TRUE(PeekWireType(EncodeLolohaReport(0), &type));
  EXPECT_EQ(type, WireType::kLolohaReport);
  EXPECT_FALSE(PeekWireType("", &type));
  EXPECT_FALSE(PeekWireType("\x63", &type));
}

TEST(WireFuzzTest, RandomBytesNeverDecode) {
  // Decoders must reject arbitrary noise (no crash, no acceptance of
  // out-of-contract data).
  Rng rng(4);
  int accepted = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string bytes(rng.UniformInt(40), '\0');
    for (char& c : bytes) c = static_cast<char>(rng.UniformInt(256));
    uint32_t v;
    std::vector<uint8_t> bits;
    LhReport lh;
    UniversalHash hash;
    std::vector<uint32_t> sampled;
    if (DecodeGrrReport(bytes, 16, &v)) ++accepted;
    if (DecodeUeReport(bytes, 16, &bits)) ++accepted;
    if (DecodeLhReport(bytes, 4, &lh)) ++accepted;
    if (DecodeLolohaHello(bytes, 4, &hash)) ++accepted;
    if (DecodeLolohaReport(bytes, 4, &v)) ++accepted;
    if (DecodeDBitHello(bytes, 16, 4, &sampled)) ++accepted;
    if (DecodeDBitReport(bytes, 16, &bits)) ++accepted;
  }
  // A tag+version+payload collision is possible but must be very rare.
  EXPECT_LT(accepted, 5);
}

TEST(WireFuzzTest, TruncationsOfValidMessagesNeverDecode) {
  Rng rng(5);
  const UniversalHash hash = UniversalHash::Sample(4, rng);
  const std::string full = EncodeLolohaHello(hash);
  UniversalHash decoded;
  for (size_t len = 0; len < full.size(); ++len) {
    EXPECT_FALSE(DecodeLolohaHello(full.substr(0, len), 4, &decoded));
  }
}

}  // namespace
}  // namespace loloha

#include "hh/pem.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace loloha {
namespace {

PemConfig SmallConfig() {
  PemConfig config;
  config.domain_bits = 12;
  config.levels = 3;
  config.epsilon = 3.0;
  config.threshold = 0.02;
  config.max_candidates = 32;
  return config;
}

TEST(PemServerTest, PrefixBitsPartitionDomain) {
  PemConfig config = SmallConfig();
  const PemServer server(config);
  EXPECT_EQ(server.PrefixBits(0), 4u);
  EXPECT_EQ(server.PrefixBits(1), 8u);
  EXPECT_EQ(server.PrefixBits(2), 12u);

  config.domain_bits = 13;  // uneven split front-loads the extra bit
  const PemServer uneven(config);
  EXPECT_EQ(uneven.PrefixBits(0), 5u);
  EXPECT_EQ(uneven.PrefixBits(1), 9u);
  EXPECT_EQ(uneven.PrefixBits(2), 13u);
}

TEST(PemClientTest, RoundRobinLevels) {
  const PemConfig config = SmallConfig();
  EXPECT_EQ(PemClient(config, 0).level(), 0u);
  EXPECT_EQ(PemClient(config, 1).level(), 1u);
  EXPECT_EQ(PemClient(config, 2).level(), 2u);
  EXPECT_EQ(PemClient(config, 3).level(), 0u);
}

TEST(PemEndToEnd, FindsPlantedHeavyHitters) {
  const PemConfig config = SmallConfig();
  constexpr uint32_t kUsers = 60000;
  // Two heavy values at 30% / 20%, the rest uniform background noise.
  const uint64_t kHeavy1 = 0xABC;  // 12-bit values
  const uint64_t kHeavy2 = 0x123;
  Rng rng(1);
  PemServer server(config);
  for (uint32_t u = 0; u < kUsers; ++u) {
    uint64_t value;
    const uint32_t roll = static_cast<uint32_t>(rng.UniformInt(10));
    if (roll < 3) {
      value = kHeavy1;
    } else if (roll < 5) {
      value = kHeavy2;
    } else {
      value = rng.UniformInt(uint64_t{1} << config.domain_bits);
    }
    const PemClient client(config, u);
    server.Accumulate(client.Report(value, rng));
  }
  const std::vector<PemHitter> hitters = server.Identify();
  ASSERT_GE(hitters.size(), 2u);
  EXPECT_EQ(hitters[0].value, kHeavy1);
  EXPECT_NEAR(hitters[0].estimate, 0.3, 0.08);
  EXPECT_EQ(hitters[1].value, kHeavy2);
  EXPECT_NEAR(hitters[1].estimate, 0.2, 0.08);
}

TEST(PemEndToEnd, NoHittersOnUniformData) {
  PemConfig config = SmallConfig();
  config.threshold = 0.05;  // uniform mass per value is ~2^-12
  constexpr uint32_t kUsers = 30000;
  Rng rng(2);
  PemServer server(config);
  for (uint32_t u = 0; u < kUsers; ++u) {
    const uint64_t value = rng.UniformInt(uint64_t{1} << config.domain_bits);
    server.Accumulate(PemClient(config, u).Report(value, rng));
  }
  EXPECT_TRUE(server.Identify().empty());
}

TEST(PemEndToEnd, SingleLevelDegeneratesToPlainOracle) {
  PemConfig config;
  config.domain_bits = 6;
  config.levels = 1;
  config.epsilon = 3.0;
  config.threshold = 0.1;
  constexpr uint32_t kUsers = 40000;
  Rng rng(3);
  PemServer server(config);
  for (uint32_t u = 0; u < kUsers; ++u) {
    const uint64_t value = (u % 2 == 0) ? 17u : 42u;
    server.Accumulate(PemClient(config, u).Report(value, rng));
  }
  const std::vector<PemHitter> hitters = server.Identify();
  ASSERT_EQ(hitters.size(), 2u);
  std::set<uint64_t> found = {hitters[0].value, hitters[1].value};
  EXPECT_TRUE(found.count(17));
  EXPECT_TRUE(found.count(42));
}

TEST(PemServerTest, EmptyLevelsYieldNothing) {
  const PemServer server(SmallConfig());
  EXPECT_TRUE(server.Identify().empty());
}

TEST(PemEndToEnd, MaxCandidatesCapsTheFrontier) {
  PemConfig config = SmallConfig();
  config.max_candidates = 2;  // only two prefixes survive each level
  config.threshold = 0.0;
  constexpr uint32_t kUsers = 45000;
  Rng rng(4);
  PemServer server(config);
  const uint64_t kHeavy = 0xF0F;
  for (uint32_t u = 0; u < kUsers; ++u) {
    const uint64_t value =
        (u % 2 == 0) ? kHeavy
                     : rng.UniformInt(uint64_t{1} << config.domain_bits);
    server.Accumulate(PemClient(config, u).Report(value, rng));
  }
  const std::vector<PemHitter> hitters = server.Identify();
  ASSERT_FALSE(hitters.empty());
  EXPECT_LE(hitters.size(), 2u);
  EXPECT_EQ(hitters[0].value, kHeavy);
}

}  // namespace
}  // namespace loloha

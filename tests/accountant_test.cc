#include "sim/accountant.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"

namespace loloha {
namespace {

Dataset ThreeUserDataset() {
  // k = 6, 3 users, 4 steps.
  Dataset data("acc", 6, 3, 4);
  const uint32_t seq[3][4] = {
      {0, 0, 0, 0},   // constant: 1 distinct value
      {0, 1, 0, 1},   // 2 distinct values
      {0, 1, 2, 3}};  // 4 distinct values
  for (uint32_t u = 0; u < 3; ++u) {
    for (uint32_t t = 0; t < 4; ++t) data.set_value(u, t, seq[u][t]);
  }
  return data;
}

TEST(ValueMemoEpsilonsTest, CountsDistinctValues) {
  const Dataset data = ThreeUserDataset();
  const std::vector<double> eps = ValueMemoEpsilons(data, 2.0);
  EXPECT_DOUBLE_EQ(eps[0], 2.0);
  EXPECT_DOUBLE_EQ(eps[1], 4.0);
  EXPECT_DOUBLE_EQ(eps[2], 8.0);
}

TEST(ValueMemoEpsilonsTest, CappedByKEpsOnFullSweep) {
  Dataset data("sweep", 4, 1, 8);
  for (uint32_t t = 0; t < 8; ++t) data.set_value(0, t, t % 4);
  const std::vector<double> eps = ValueMemoEpsilons(data, 1.5);
  EXPECT_DOUBLE_EQ(eps[0], 4 * 1.5);  // k distinct values -> k eps
}

TEST(LolohaEpsilonsTest, BoundedByGEps) {
  const Dataset data = GenerateSyn(400, 100, 30, 0.5, 1);
  for (const uint32_t g : {2u, 4u}) {
    const std::vector<double> eps = LolohaEpsilons(data, g, 2.0, 7);
    for (const double e : eps) {
      EXPECT_LE(e, g * 2.0);
      EXPECT_GE(e, 2.0);  // at least one cell is always exercised
    }
  }
}

TEST(LolohaEpsilonsTest, ConstantUserSpendsExactlyOneEps) {
  const Dataset data = GenerateStatic(200, 50, 10, 1.0, 2);
  const std::vector<double> eps = LolohaEpsilons(data, 4, 3.0, 8);
  for (const double e : eps) EXPECT_DOUBLE_EQ(e, 3.0);
}

TEST(LolohaEpsilonsTest, FarBelowValueMemoOnChurningData) {
  // The paper's Fig. 4 headline: LOLOHA's loss is orders of magnitude
  // below the value-memoizing protocols when users change a lot.
  const Dataset data = GenerateAdultLike(500, 60, 3);
  const double value_avg = [&] {
    const std::vector<double> e = ValueMemoEpsilons(data, 1.0);
    double s = 0;
    for (const double x : e) s += x;
    return s / e.size();
  }();
  const double loloha_avg = [&] {
    const std::vector<double> e = LolohaEpsilons(data, 2, 1.0, 9);
    double s = 0;
    for (const double x : e) s += x;
    return s / e.size();
  }();
  EXPECT_GT(value_avg, 10.0 * loloha_avg);
}

TEST(DBitFlipEpsilonsTest, FullSamplingEqualsBucketMemo) {
  // d = b: every bucket is sampled, so states == distinct buckets and the
  // loss matches value-memo accounting on the bucketized sequence.
  Dataset data("db", 8, 2, 4);
  const uint32_t seq[2][4] = {{0, 2, 4, 6}, {1, 1, 1, 1}};
  for (uint32_t u = 0; u < 2; ++u) {
    for (uint32_t t = 0; t < 4; ++t) data.set_value(u, t, seq[u][t]);
  }
  // b = 4: buckets are {0,1}->0, {2,3}->1, {4,5}->2, {6,7}->3.
  const std::vector<double> eps = DBitFlipEpsilons(data, 4, 4, 1.0, 10);
  EXPECT_DOUBLE_EQ(eps[0], 4.0);  // buckets 0,1,2,3
  EXPECT_DOUBLE_EQ(eps[1], 1.0);  // bucket 0 only
}

TEST(DBitFlipEpsilonsTest, SingleBitCappedAtTwoEps) {
  const Dataset data = GenerateSyn(300, 60, 40, 0.5, 4);
  const std::vector<double> eps = DBitFlipEpsilons(data, 60, 1, 2.0, 11);
  for (const double e : eps) {
    EXPECT_LE(e, 2.0 * 2.0);  // min(d+1, b) = 2 states
    EXPECT_GE(e, 2.0);
  }
}

TEST(DBitFlipEpsilonsTest, CapMatchesTable1Bound) {
  const Dataset data = GenerateSyn(200, 40, 60, 0.9, 5);
  for (const uint32_t d : {1u, 3u, 10u}) {
    const std::vector<double> eps = DBitFlipEpsilons(data, 10, d, 1.0, 12);
    const double cap = std::min(d + 1, 10u) * 1.0;
    for (const double e : eps) EXPECT_LE(e, cap);
  }
}

}  // namespace
}  // namespace loloha

// Property sweep: for every wire type and hundreds of randomized valid
// payloads, Encode followed by Decode is the identity, and the encoding
// is canonical (byte-identical on re-encode).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "wire/encoding.h"

namespace loloha {
namespace {

class WireRoundTripSweep : public testing::TestWithParam<uint64_t> {
 protected:
  Rng rng_{GetParam()};
};

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundTripSweep,
                         testing::Range<uint64_t>(1, 26));

TEST_P(WireRoundTripSweep, GrrIdentity) {
  const uint32_t k = 2 + static_cast<uint32_t>(rng_.UniformInt(2000));
  for (int i = 0; i < 20; ++i) {
    const uint32_t value = static_cast<uint32_t>(rng_.UniformInt(k));
    const std::string bytes = EncodeGrrReport(value);
    uint32_t decoded = k;
    ASSERT_TRUE(DecodeGrrReport(bytes, k, &decoded));
    EXPECT_EQ(decoded, value);
    EXPECT_EQ(EncodeGrrReport(decoded), bytes);
  }
}

TEST_P(WireRoundTripSweep, UeIdentity) {
  const uint32_t k = 1 + static_cast<uint32_t>(rng_.UniformInt(512));
  std::vector<uint8_t> bits(k);
  for (uint32_t i = 0; i < k; ++i) bits[i] = rng_.Bernoulli(0.5) ? 1 : 0;
  const std::string bytes = EncodeUeReport(bits);
  std::vector<uint8_t> decoded;
  ASSERT_TRUE(DecodeUeReport(bytes, k, &decoded));
  EXPECT_EQ(decoded, bits);
  EXPECT_EQ(EncodeUeReport(decoded), bytes);
}

TEST_P(WireRoundTripSweep, LhIdentity) {
  const uint32_t g = 2 + static_cast<uint32_t>(rng_.UniformInt(200));
  LhReport report;
  report.hash = UniversalHash::Sample(g, rng_);
  report.cell = static_cast<uint32_t>(rng_.UniformInt(g));
  const std::string bytes = EncodeLhReport(report);
  LhReport decoded;
  ASSERT_TRUE(DecodeLhReport(bytes, g, &decoded));
  EXPECT_TRUE(decoded.hash == report.hash);
  EXPECT_EQ(decoded.cell, report.cell);
  EXPECT_EQ(EncodeLhReport(decoded), bytes);
}

TEST_P(WireRoundTripSweep, LolohaIdentity) {
  const uint32_t g = 2 + static_cast<uint32_t>(rng_.UniformInt(30));
  const UniversalHash hash = UniversalHash::Sample(g, rng_);
  UniversalHash decoded_hash;
  ASSERT_TRUE(DecodeLolohaHello(EncodeLolohaHello(hash), g, &decoded_hash));
  EXPECT_TRUE(decoded_hash == hash);

  const uint32_t cell = static_cast<uint32_t>(rng_.UniformInt(g));
  uint32_t decoded_cell = g;
  ASSERT_TRUE(
      DecodeLolohaReport(EncodeLolohaReport(cell), g, &decoded_cell));
  EXPECT_EQ(decoded_cell, cell);
}

TEST_P(WireRoundTripSweep, DBitIdentity) {
  const uint32_t b = 4 + static_cast<uint32_t>(rng_.UniformInt(400));
  const uint32_t d = 1 + static_cast<uint32_t>(rng_.UniformInt(b));
  // Distinct sampled set via partial Fisher-Yates.
  std::vector<uint32_t> pool(b);
  for (uint32_t j = 0; j < b; ++j) pool[j] = j;
  std::vector<uint32_t> sampled;
  for (uint32_t l = 0; l < d; ++l) {
    const uint32_t pick =
        l + static_cast<uint32_t>(rng_.UniformInt(b - l));
    std::swap(pool[l], pool[pick]);
    sampled.push_back(pool[l]);
  }
  std::vector<uint32_t> decoded_sampled;
  ASSERT_TRUE(
      DecodeDBitHello(EncodeDBitHello(sampled), b, d, &decoded_sampled));
  EXPECT_EQ(decoded_sampled, sampled);

  std::vector<uint8_t> bits(d);
  for (uint32_t l = 0; l < d; ++l) bits[l] = rng_.Bernoulli(0.5) ? 1 : 0;
  std::vector<uint8_t> decoded_bits;
  ASSERT_TRUE(
      DecodeDBitReport(EncodeDBitReport(bits), d, &decoded_bits));
  EXPECT_EQ(decoded_bits, bits);
}

TEST_P(WireRoundTripSweep, CrossTypeDecodersRejectEachOther) {
  // A valid message of one type must never decode as another.
  const std::string grr = EncodeGrrReport(1);
  const std::string loloha = EncodeLolohaReport(1);
  std::vector<uint8_t> bits;
  uint32_t value;
  EXPECT_FALSE(DecodeLolohaReport(grr, 4, &value));
  EXPECT_FALSE(DecodeGrrReport(loloha, 4, &value));
  EXPECT_FALSE(DecodeUeReport(grr, 4, &bits));
  EXPECT_FALSE(DecodeDBitReport(loloha, 4, &bits));
}

}  // namespace
}  // namespace loloha

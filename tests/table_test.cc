#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace loloha {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer", "2"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header and separator and two rows -> 4 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTableTest, CsvBasic) {
  TextTable table({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\n");
}

TEST(TextTableTest, CsvEscapesSpecialCharacters) {
  TextTable table({"x"});
  table.AddRow({"has,comma"});
  table.AddRow({"has\"quote"});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TextTableTest, NumRows) {
  TextTable table({"x"});
  EXPECT_EQ(table.num_rows(), 0u);
  table.AddRow({"1"});
  table.AddRow({"2"});
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TextTableTest, WriteCsvRoundTrips) {
  TextTable table({"h1", "h2"});
  table.AddRow({"v1", "v2"});
  const std::string path = testing::TempDir() + "/loloha_table_test.csv";
  ASSERT_TRUE(table.WriteCsv(path));
  std::ifstream file(path);
  std::stringstream content;
  content << file.rdbuf();
  EXPECT_EQ(content.str(), "h1,h2\nv1,v2\n");
  std::remove(path.c_str());
}

TEST(FormatDoubleTest, SignificantDigits) {
  EXPECT_EQ(FormatDouble(1.0), "1");
  EXPECT_EQ(FormatDouble(0.25), "0.25");
  EXPECT_EQ(FormatDouble(1.23456789, 4), "1.235");
  EXPECT_EQ(FormatDouble(1e-5, 3), "1e-05");
}

}  // namespace
}  // namespace loloha

#include "core/loloha.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/loloha_params.h"
#include "util/rng.h"

namespace loloha {
namespace {

LolohaParams TestParams(uint32_t k = 32, uint32_t g = 4) {
  return MakeLolohaParams(k, g, 2.0, 1.0);
}

TEST(LolohaClientTest, ReportsWithinHashRange) {
  Rng rng(1);
  LolohaClient client(TestParams(), rng);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(client.Report(static_cast<uint32_t>(i % 32), rng), 4u);
  }
}

TEST(LolohaClientTest, MemoizesPerHashCellNotPerValue) {
  Rng rng(2);
  const LolohaParams params = TestParams(/*k=*/1000, /*g=*/2);
  LolohaClient client(params, rng);
  // Visit many distinct values: memos are bounded by g = 2.
  for (uint32_t v = 0; v < 1000; v += 7) client.Report(v, rng);
  EXPECT_LE(client.distinct_memos(), 2u);
  EXPECT_GE(client.distinct_memos(), 1u);
}

TEST(LolohaClientTest, NoiselessPipelineReplaysMemoizedCell) {
  Rng rng(3);
  LolohaParams params = TestParams();
  // Make PRR and IRR near-deterministic keeps.
  params.prr = PerturbParams{1.0 - 1e-15, 1e-15};
  params.irr = PerturbParams{1.0 - 1e-15, 1e-15};
  LolohaClient client(params, rng);
  const uint32_t report = client.Report(5, rng);
  EXPECT_EQ(report, client.hash()(5));
  for (int i = 0; i < 20; ++i) EXPECT_EQ(client.Report(5, rng), report);
}

TEST(LolohaClientTest, CollidingValuesShareTheMemo) {
  Rng rng(4);
  LolohaParams params = TestParams(/*k=*/64, /*g=*/2);
  params.irr = PerturbParams{1.0 - 1e-15, 1e-15};  // quiet IRR
  LolohaClient client(params, rng);
  // Find two values with the same hash cell.
  uint32_t v1 = 0;
  uint32_t v2 = 1;
  bool found = false;
  for (uint32_t a = 0; a < 64 && !found; ++a) {
    for (uint32_t b = a + 1; b < 64 && !found; ++b) {
      if (client.hash()(a) == client.hash()(b)) {
        v1 = a;
        v2 = b;
        found = true;
      }
    }
  }
  ASSERT_TRUE(found);
  const uint32_t r1 = client.Report(v1, rng);
  EXPECT_EQ(client.Report(v2, rng), r1);
  EXPECT_EQ(client.distinct_memos(), 1u);
}

TEST(LolohaServerTest, EndToEndUnbiased) {
  Rng rng(5);
  const LolohaParams params = MakeLolohaParams(24, 4, 3.0, 1.5);
  constexpr int kUsers = 60000;
  std::vector<LolohaClient> clients;
  clients.reserve(kUsers);
  for (int u = 0; u < kUsers; ++u) clients.emplace_back(params, rng);
  LolohaServer server(params);
  server.BeginStep();
  for (int u = 0; u < kUsers; ++u) {
    const uint32_t v = (u % 4 == 0) ? 3u : 17u;  // 25% / 75%
    server.Accumulate(clients[u].hash(), clients[u].Report(v, rng));
  }
  const std::vector<double> est = server.EstimateStep();
  EXPECT_NEAR(est[3], 0.25, 0.03);
  EXPECT_NEAR(est[17], 0.75, 0.03);
  EXPECT_NEAR(est[10], 0.0, 0.03);
}

TEST(LolohaPopulationTest, MatchesClientServerPath) {
  const LolohaParams params = MakeLolohaParams(16, 2, 2.0, 1.0);
  const uint32_t n = 30000;
  std::vector<uint32_t> values(n);
  for (uint32_t u = 0; u < n; ++u) values[u] = u % 16;

  Rng rng_pop(6);
  LolohaPopulation population(params, n, rng_pop);
  const std::vector<double> est_pop = population.Step(values, rng_pop);

  Rng rng_cli(7);
  std::vector<LolohaClient> clients;
  clients.reserve(n);
  for (uint32_t u = 0; u < n; ++u) clients.emplace_back(params, rng_cli);
  LolohaServer server(params);
  server.BeginStep();
  for (uint32_t u = 0; u < n; ++u) {
    server.Accumulate(clients[u].hash(), clients[u].Report(values[u], rng_cli));
  }
  const std::vector<double> est_cli = server.EstimateStep();

  for (uint32_t v = 0; v < 16; ++v) {
    EXPECT_NEAR(est_pop[v], 1.0 / 16, 0.04);
    EXPECT_NEAR(est_cli[v], 1.0 / 16, 0.04);
  }
}

TEST(LolohaPopulationTest, MemoBoundedByG) {
  Rng rng(8);
  const LolohaParams params = MakeLolohaParams(500, 3, 2.0, 1.0);
  const uint32_t n = 50;
  LolohaPopulation population(params, n, rng);
  std::vector<uint32_t> values(n);
  for (uint32_t t = 0; t < 40; ++t) {
    for (uint32_t u = 0; u < n; ++u) {
      values[u] = static_cast<uint32_t>(rng.UniformInt(500));
    }
    population.Step(values, rng);
  }
  for (uint32_t u = 0; u < n; ++u) {
    EXPECT_LE(population.DistinctMemos(u), 3u);
    EXPECT_GE(population.DistinctMemos(u), 1u);
  }
}

TEST(LolohaPopulationTest, EstimatesSumApproximatelyToOne) {
  // Support counts satisfy sum_v C(v) = sum_u |H_u^{-1}(x_u)|, which is k/g
  // per user only in expectation, so the estimate total is ~1 with a
  // standard deviation of ~0.1 at this configuration; use a 4-sigma band.
  Rng rng(9);
  const LolohaParams params = MakeLolohaParams(60, 4, 2.0, 1.0);
  const uint32_t n = 30000;
  LolohaPopulation population(params, n, rng);
  std::vector<uint32_t> values(n);
  for (uint32_t u = 0; u < n; ++u) {
    values[u] = static_cast<uint32_t>(rng.UniformInt(60));
  }
  const std::vector<double> est = population.Step(values, rng);
  double sum = 0.0;
  for (const double e : est) sum += e;
  EXPECT_NEAR(sum, 1.0, 0.4);
}

TEST(LolohaTest, BiLolohaTracksMovingPointMass) {
  Rng rng(10);
  const LolohaParams params = MakeBiLolohaParams(10, 4.0, 2.0);
  const uint32_t n = 60000;
  LolohaPopulation population(params, n, rng);
  for (uint32_t t = 0; t < 3; ++t) {
    const std::vector<uint32_t> values(n, t);  // everyone holds value t
    const std::vector<double> est = population.Step(values, rng);
    EXPECT_NEAR(est[t], 1.0, 0.05) << "t=" << t;
  }
}

}  // namespace
}  // namespace loloha

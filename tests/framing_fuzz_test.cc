// Frame-stream mutation regression test (server/net/framing.h), built
// on the shared truncate/flip/extend/splice vocabulary in
// tests/fuzz_util.h. The coverage-guided twin is fuzz/fuzz_framing.cc;
// this test enforces the same properties on a few thousand seeded
// trials per ctest run, on every toolchain:
//
//   * arbitrary mutation of a valid session never crashes the parser;
//   * chunking independence — the whole mutated buffer fed at once and
//     fed one byte at a time extract identical frame sequences and end
//     in the same terminal state;
//   * a truncated valid stream is never a protocol error (kNeedMore,
//     with the already-complete frames extracted intact);
//   * the error state is sticky.

#include "server/net/framing.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz_util.h"
#include "util/rng.h"
#include "wire/encoding.h"

namespace loloha {
namespace {

// A realistic session: three report frames, a barrier, an estimates
// reply, and an end-step.
std::string MakeValidSession() {
  std::string out;
  for (uint64_t user = 0; user < 3; ++user) {
    AppendDataFrame(user * 17 + 1,
                    EncodeLolohaReport(static_cast<uint32_t>(user)), &out);
  }
  AppendControlFrame(FrameType::kBarrier, &out);
  const double estimates[] = {0.25, -1.5, 3e9};
  AppendEstimatesFrame(estimates, &out);
  AppendControlFrame(FrameType::kEndStep, &out);
  return out;
}

// A second, differently shaped session for splice donors.
std::string MakeDonorSession() {
  std::string out;
  AppendControlFrame(FrameType::kShutdown, &out);
  AppendDataFrame(999, EncodeGrrReport(5), &out);
  AppendControlFrame(FrameType::kBarrierAck, &out);
  return out;
}

struct Drained {
  std::vector<Frame> frames;
  FrameStatus terminal = FrameStatus::kNeedMore;
};

Drained DrainWhole(const std::string& bytes) {
  FrameParser parser;
  parser.Feed(bytes.data(), bytes.size());
  Drained out;
  Frame frame;
  FrameStatus status;
  while ((status = parser.Next(&frame)) == FrameStatus::kFrame) {
    out.frames.push_back(frame);
  }
  out.terminal = status;
  return out;
}

Drained DrainByteAtATime(const std::string& bytes) {
  FrameParser parser;
  Drained out;
  Frame frame;
  FrameStatus status = FrameStatus::kNeedMore;
  for (size_t i = 0; i < bytes.size(); ++i) {
    parser.Feed(bytes.data() + i, 1);
    while ((status = parser.Next(&frame)) == FrameStatus::kFrame) {
      out.frames.push_back(frame);
    }
  }
  if (bytes.empty()) status = parser.Next(&frame);
  out.terminal = status;
  return out;
}

bool FramesEqual(const Frame& a, const Frame& b) {
  if (a.type != b.type || a.message.user_id != b.message.user_id ||
      a.message.bytes != b.message.bytes ||
      a.estimates.size() != b.estimates.size()) {
    return false;
  }
  // Estimates are raw IEEE-754 bits off the wire; compare bitwise so a
  // NaN payload cannot defeat the comparison.
  return a.estimates.empty() ||
         std::memcmp(a.estimates.data(), b.estimates.data(),
                     a.estimates.size() * sizeof(double)) == 0;
}

TEST(FramingFuzzTest, SeededMutationsKeepChunkingIndependence) {
  const std::string good = MakeValidSession();
  const std::string donor = MakeDonorSession();

  for (uint32_t trial = 0; trial < 3000; ++trial) {
    Rng rng(StreamSeed(0xF4A3E, trial, 0));
    const std::string mutated = fuzz_util::Mutate(good, donor, rng);

    const Drained whole = DrainWhole(mutated);
    const Drained stream = DrainByteAtATime(mutated);
    ASSERT_EQ(whole.frames.size(), stream.frames.size()) << "trial " << trial;
    for (size_t i = 0; i < whole.frames.size(); ++i) {
      ASSERT_TRUE(FramesEqual(whole.frames[i], stream.frames[i]))
          << "trial " << trial << " frame " << i;
    }
    ASSERT_EQ(whole.terminal, stream.terminal) << "trial " << trial;
  }
}

TEST(FramingFuzzTest, EveryTruncationOfAValidStreamIsNeedMoreNotError) {
  // Exhaustive over every prefix length: cutting a valid stream mid-
  // frame loses the tail but must never be mistaken for corruption —
  // the already-complete frames decode and the parser simply waits.
  const std::string good = MakeValidSession();
  const Drained full = DrainWhole(good);
  ASSERT_EQ(full.terminal, FrameStatus::kNeedMore);
  ASSERT_EQ(full.frames.size(), 6u);

  for (size_t len = 0; len < good.size(); ++len) {
    const Drained cut = DrainWhole(good.substr(0, len));
    EXPECT_EQ(cut.terminal, FrameStatus::kNeedMore) << "len=" << len;
    EXPECT_LE(cut.frames.size(), full.frames.size()) << "len=" << len;
    for (size_t i = 0; i < cut.frames.size(); ++i) {
      EXPECT_TRUE(FramesEqual(cut.frames[i], full.frames[i]))
          << "len=" << len << " frame " << i;
    }
  }
}

TEST(FramingFuzzTest, ErrorStateIsStickyAcrossValidBytes) {
  // A corrupted type byte kills the stream; appending a well-formed
  // frame afterwards must not resynchronize it.
  std::string bytes = MakeValidSession();
  bytes[4] = '\x63';  // first frame's type byte -> unknown type 99
  FrameParser parser;
  parser.Feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(parser.Next(&frame), FrameStatus::kError);
  std::string fresh;
  AppendControlFrame(FrameType::kBarrier, &fresh);
  parser.Feed(fresh.data(), fresh.size());
  EXPECT_EQ(parser.Next(&frame), FrameStatus::kError);
}

TEST(FramingFuzzTest, GarbageBuffersNeverCrash) {
  for (uint32_t trial = 0; trial < 500; ++trial) {
    Rng rng(StreamSeed(0xF4A3E, trial, 1));
    std::string garbage(rng.UniformInt(256), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.UniformU64());
    const Drained whole = DrainWhole(garbage);
    const Drained stream = DrainByteAtATime(garbage);
    EXPECT_EQ(whole.frames.size(), stream.frames.size()) << "trial " << trial;
    EXPECT_EQ(whole.terminal, stream.terminal) << "trial " << trial;
  }
}

}  // namespace
}  // namespace loloha

#include "multidim/multidim.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/theory.h"
#include "util/rng.h"

namespace loloha {
namespace {

MultidimConfig TwoAttrConfig(MultidimStrategy strategy) {
  MultidimConfig config;
  config.domain_sizes = {8, 12};
  config.eps_perm = 2.0;
  config.eps_first = 1.0;
  config.strategy = strategy;
  config.g = 2;
  return config;
}

TEST(ResolveMultidimParamsTest, SplitDividesBudget) {
  const auto params =
      ResolveMultidimParams(TwoAttrConfig(MultidimStrategy::kSplit));
  ASSERT_EQ(params.size(), 2u);
  EXPECT_DOUBLE_EQ(params[0].eps_perm, 1.0);
  EXPECT_DOUBLE_EQ(params[0].eps_first, 0.5);
  EXPECT_EQ(params[0].k, 8u);
  EXPECT_EQ(params[1].k, 12u);
}

TEST(ResolveMultidimParamsTest, SampleKeepsFullBudget) {
  const auto params =
      ResolveMultidimParams(TwoAttrConfig(MultidimStrategy::kSample));
  EXPECT_DOUBLE_EQ(params[0].eps_perm, 2.0);
  EXPECT_DOUBLE_EQ(params[0].eps_first, 1.0);
}

TEST(MultidimClientTest, SplitReportsEveryAttribute) {
  Rng rng(1);
  MultidimLolohaClient client(TwoAttrConfig(MultidimStrategy::kSplit), rng);
  const auto reports = client.Report({3, 7}, rng);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].attribute, 0u);
  EXPECT_EQ(reports[1].attribute, 1u);
  EXPECT_FALSE(client.sampled_attribute().has_value());
}

TEST(MultidimClientTest, SampleReportsOneFixedAttribute) {
  Rng rng(2);
  MultidimLolohaClient client(TwoAttrConfig(MultidimStrategy::kSample),
                              rng);
  ASSERT_TRUE(client.sampled_attribute().has_value());
  const uint32_t j = *client.sampled_attribute();
  for (int t = 0; t < 10; ++t) {
    const auto reports = client.Report({3, 7}, rng);
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].attribute, j);  // fixed across time
  }
  EXPECT_EQ(client.HashFor(1 - j), nullptr);
  EXPECT_NE(client.HashFor(j), nullptr);
}

class MultidimEndToEnd : public testing::TestWithParam<MultidimStrategy> {};

INSTANTIATE_TEST_SUITE_P(Strategies, MultidimEndToEnd,
                         testing::Values(MultidimStrategy::kSplit,
                                         MultidimStrategy::kSample));

TEST_P(MultidimEndToEnd, RecoversBothMarginals) {
  MultidimConfig config;
  config.domain_sizes = {6, 10};
  config.eps_perm = 4.0;
  config.eps_first = 2.0;
  config.strategy = GetParam();
  config.g = 2;

  Rng rng(3);
  constexpr uint32_t kUsers = 60000;
  std::vector<MultidimLolohaClient> clients;
  clients.reserve(kUsers);
  for (uint32_t u = 0; u < kUsers; ++u) clients.emplace_back(config, rng);

  MultidimLolohaServer server(config);
  server.BeginStep();
  for (uint32_t u = 0; u < kUsers; ++u) {
    // Attribute 0: 50/50 between 1 and 4; attribute 1: all on 9.
    const std::vector<uint32_t> values = {(u % 2) ? 1u : 4u, 9u};
    server.Accumulate(clients[u], clients[u].Report(values, rng));
  }
  const auto estimates = server.EstimateStep();
  ASSERT_EQ(estimates.size(), 2u);
  ASSERT_EQ(estimates[0].size(), 6u);
  ASSERT_EQ(estimates[1].size(), 10u);
  EXPECT_NEAR(estimates[0][1], 0.5, 0.06);
  EXPECT_NEAR(estimates[0][4], 0.5, 0.06);
  EXPECT_NEAR(estimates[1][9], 1.0, 0.06);
}

TEST(MultidimTest, SampleBeatsSplitInVariance) {
  // The standard result the header documents: at m = 4 attributes, SMP's
  // V* (full eps, n/m users) is below SPL's (eps/m, n users).
  const double n = 10000.0;
  const double m = 4.0;
  const double eps = 2.0;
  const double eps1 = 1.0;
  const double v_smp =
      ProtocolApproxVariance(ProtocolId::kBiLoloha, n / m, 16, eps, eps1);
  const double v_spl = ProtocolApproxVariance(ProtocolId::kBiLoloha, n, 16,
                                              eps / m, eps1 / m);
  EXPECT_LT(v_smp, v_spl);
}

TEST(MultidimTest, PrivacySpentBoundedByBudget) {
  MultidimConfig config = TwoAttrConfig(MultidimStrategy::kSplit);
  Rng rng(4);
  MultidimLolohaClient client(config, rng);
  for (int t = 0; t < 50; ++t) {
    client.Report({static_cast<uint32_t>(t % 8),
                   static_cast<uint32_t>(t % 12)},
                  rng);
  }
  // SPL: each attribute's loss capped at g * eps_perm / m = 2 * 1.0.
  EXPECT_LE(client.PrivacySpent(), 2 * (2.0 * config.eps_perm / 2.0));
}

}  // namespace
}  // namespace loloha

#include "oracle/unary.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "oracle/estimator.h"
#include "util/rng.h"

namespace loloha {
namespace {

TEST(UeClientTest, ReportHasDomainLength) {
  const UeClient client(20, 1.0, UeKind::kSymmetric);
  Rng rng(1);
  EXPECT_EQ(client.Perturb(3, rng).size(), 20u);
}

TEST(UeClientTest, TrueBitKeptWithProbabilityP) {
  const UeClient client(10, 2.0, UeKind::kOptimized);
  Rng rng(2);
  constexpr int kTrials = 100000;
  int set = 0;
  for (int i = 0; i < kTrials; ++i) set += client.Perturb(4, rng)[4];
  EXPECT_NEAR(set / static_cast<double>(kTrials), client.params().p, 0.006);
}

TEST(UeClientTest, FalseBitsSetWithProbabilityQ) {
  const UeClient client(10, 2.0, UeKind::kOptimized);
  Rng rng(3);
  constexpr int kTrials = 50000;
  int64_t set = 0;
  for (int i = 0; i < kTrials; ++i) {
    const std::vector<uint8_t> report = client.Perturb(4, rng);
    for (uint32_t v = 0; v < 10; ++v) {
      if (v != 4) set += report[v];
    }
  }
  EXPECT_NEAR(set / (9.0 * kTrials), client.params().q, 0.004);
}

TEST(UeClientTest, PerturbVectorFlipsEachBitIndependently) {
  const UeClient client(6, PerturbParams{0.9, 0.1});
  Rng rng(4);
  const std::vector<uint8_t> input = {1, 0, 1, 0, 1, 0};
  constexpr int kTrials = 50000;
  std::vector<int> ones(6, 0);
  for (int i = 0; i < kTrials; ++i) {
    const std::vector<uint8_t> out = client.PerturbVector(input, rng);
    for (uint32_t v = 0; v < 6; ++v) ones[v] += out[v];
  }
  for (uint32_t v = 0; v < 6; ++v) {
    const double expected = input[v] ? 0.9 : 0.1;
    EXPECT_NEAR(ones[v] / static_cast<double>(kTrials), expected, 0.01);
  }
}

class UeEndToEnd : public testing::TestWithParam<UeKind> {};

TEST_P(UeEndToEnd, RecoversDistribution) {
  const UeKind kind = GetParam();
  const uint32_t k = 16;
  const double eps = 2.0;
  const UeClient client(k, eps, kind);
  UeServer server(k, eps, kind);
  Rng rng(5);
  constexpr int kUsers = 60000;
  for (int i = 0; i < kUsers; ++i) {
    // 50% value 0, 25% value 1, 25% value 2.
    const int r = i % 4;
    const uint32_t v = r < 2 ? 0u : (r == 2 ? 1u : 2u);
    server.Accumulate(client.Perturb(v, rng));
  }
  const std::vector<double> est = server.Estimate();
  EXPECT_NEAR(est[0], 0.50, 0.025);
  EXPECT_NEAR(est[1], 0.25, 0.025);
  EXPECT_NEAR(est[2], 0.25, 0.025);
  EXPECT_NEAR(est[9], 0.0, 0.025);
}

INSTANTIATE_TEST_SUITE_P(BothKinds, UeEndToEnd,
                         testing::Values(UeKind::kSymmetric,
                                         UeKind::kOptimized));

TEST(UeTest, OueBeatsSueInVariance) {
  // The whole point of OUE: lower estimator variance at the same eps.
  for (const double eps : {1.0, 2.0, 3.0}) {
    const double v_oue = OneRoundVariance(1000.0, 0.0, OueParams(eps));
    const double v_sue = OneRoundVariance(1000.0, 0.0, SueParams(eps));
    EXPECT_LT(v_oue, v_sue) << "eps=" << eps;
  }
}

TEST(UeServerTest, ResetClearsState) {
  UeServer server(4, 1.0, UeKind::kSymmetric);
  server.Accumulate({1, 0, 0, 0});
  EXPECT_EQ(server.num_reports(), 1u);
  server.Reset();
  EXPECT_EQ(server.num_reports(), 0u);
}

TEST(UeServerTest, AccumulateBatchMatchesPerReportAccumulate) {
  const uint32_t k = 37;  // odd width: exercises the SIMD kernel tails
  const uint32_t reports = 300;  // crosses the 255-row flush boundary
  Rng rng(91);
  UeClient client(k, 1.0, UeKind::kOptimized);
  std::vector<uint8_t> matrix;
  matrix.reserve(static_cast<size_t>(reports) * k);
  UeServer per_report(k, 1.0, UeKind::kOptimized);
  for (uint32_t r = 0; r < reports; ++r) {
    const std::vector<uint8_t> report =
        client.Perturb(r % k, rng);
    per_report.Accumulate(report);
    matrix.insert(matrix.end(), report.begin(), report.end());
  }
  UeServer batched(k, 1.0, UeKind::kOptimized);
  batched.AccumulateBatch(matrix.data(), reports);
  EXPECT_EQ(batched.num_reports(), per_report.num_reports());
  EXPECT_EQ(batched.Estimate(), per_report.Estimate());
}

}  // namespace
}  // namespace loloha

#include "util/histogram.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace loloha {
namespace {

TEST(CountValuesTest, CountsOccurrences) {
  const std::vector<uint32_t> values = {0, 1, 1, 2, 2, 2};
  const std::vector<uint64_t> counts = CountValues(values, 4);
  EXPECT_EQ(counts, (std::vector<uint64_t>{1, 2, 3, 0}));
}

TEST(NormalizeCountsTest, SumsToOne) {
  const std::vector<double> freqs = NormalizeCounts({1, 2, 3, 4});
  double sum = 0.0;
  for (const double f : freqs) sum += f;
  EXPECT_DOUBLE_EQ(sum, 1.0);
  EXPECT_DOUBLE_EQ(freqs[0], 0.1);
  EXPECT_DOUBLE_EQ(freqs[3], 0.4);
}

TEST(NormalizeCountsTest, AllZeroStaysZero) {
  const std::vector<double> freqs = NormalizeCounts({0, 0, 0});
  EXPECT_EQ(freqs, (std::vector<double>{0.0, 0.0, 0.0}));
}

TEST(TrueFrequenciesTest, MatchesManualHistogram) {
  const std::vector<uint32_t> values = {3, 3, 0, 1};
  const std::vector<double> freqs = TrueFrequencies(values, 4);
  EXPECT_DOUBLE_EQ(freqs[0], 0.25);
  EXPECT_DOUBLE_EQ(freqs[1], 0.25);
  EXPECT_DOUBLE_EQ(freqs[2], 0.0);
  EXPECT_DOUBLE_EQ(freqs[3], 0.5);
}

TEST(MeanSquaredErrorTest, ZeroForIdenticalVectors) {
  const std::vector<double> a = {0.1, 0.2, 0.7};
  EXPECT_DOUBLE_EQ(MeanSquaredError(a, a), 0.0);
}

TEST(MeanSquaredErrorTest, MatchesHandComputation) {
  const std::vector<double> a = {0.0, 1.0};
  const std::vector<double> b = {0.5, 0.5};
  // ((0.5)^2 + (0.5)^2) / 2 = 0.25
  EXPECT_DOUBLE_EQ(MeanSquaredError(a, b), 0.25);
}

TEST(TotalVariationTest, MatchesHandComputation) {
  const std::vector<double> a = {0.5, 0.5, 0.0};
  const std::vector<double> b = {0.25, 0.25, 0.5};
  EXPECT_DOUBLE_EQ(TotalVariation(a, b), 0.5);
}

TEST(MaxAbsErrorTest, PicksWorstCoordinate) {
  const std::vector<double> a = {0.1, 0.9, 0.3};
  const std::vector<double> b = {0.2, 0.5, 0.3};
  EXPECT_DOUBLE_EQ(MaxAbsError(a, b), 0.4);
}

TEST(KlDivergenceTest, ZeroForIdenticalDistributions) {
  const std::vector<double> p = {0.3, 0.7};
  EXPECT_NEAR(KlDivergence(p, p), 0.0, 1e-12);
}

TEST(KlDivergenceTest, PositiveForDifferentDistributions) {
  const std::vector<double> p = {0.9, 0.1};
  const std::vector<double> q = {0.5, 0.5};
  const double expected =
      0.9 * std::log(0.9 / 0.5) + 0.1 * std::log(0.1 / 0.5);
  EXPECT_NEAR(KlDivergence(p, q), expected, 1e-12);
}

TEST(KlDivergenceTest, ClampsZeroTargetCoordinates) {
  const std::vector<double> p = {1.0, 0.0};
  const std::vector<double> q = {0.0, 1.0};
  EXPECT_TRUE(std::isfinite(KlDivergence(p, q)));
}

TEST(ProjectToSimplexTest, ClipsAndRenormalizes) {
  const std::vector<double> raw = {-0.1, 0.5, 0.7};
  const std::vector<double> projected = ProjectToSimplex(raw);
  EXPECT_DOUBLE_EQ(projected[0], 0.0);
  EXPECT_NEAR(projected[1] + projected[2], 1.0, 1e-12);
  EXPECT_NEAR(projected[1] / projected[2], 0.5 / 0.7, 1e-12);
}

TEST(ProjectToSimplexTest, AllNegativeYieldsZeros) {
  const std::vector<double> projected = ProjectToSimplex({-1.0, -2.0});
  EXPECT_EQ(projected, (std::vector<double>{0.0, 0.0}));
}

}  // namespace
}  // namespace loloha

#include "core/theory.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/loloha_params.h"
#include "util/mathutil.h"

namespace loloha {
namespace {

TEST(ProtocolNameTest, MatchesPaperLegends) {
  EXPECT_EQ(ProtocolName(ProtocolId::kRappor), "RAPPOR");
  EXPECT_EQ(ProtocolName(ProtocolId::kLOsue), "L-OSUE");
  EXPECT_EQ(ProtocolName(ProtocolId::kLGrr), "L-GRR");
  EXPECT_EQ(ProtocolName(ProtocolId::kBiLoloha), "BiLOLOHA");
  EXPECT_EQ(ProtocolName(ProtocolId::kOLoloha), "OLOLOHA");
  EXPECT_EQ(ProtocolName(ProtocolId::kOneBitFlipPm), "1BitFlipPM");
  EXPECT_EQ(ProtocolName(ProtocolId::kBBitFlipPm), "bBitFlipPM");
}

TEST(ProtocolVarianceTest, LOsueMatchesPaperClosedForm) {
  // Sec. 4: V*_{L-OSUE} = 4 e^{ε1} / (n (e^{ε1} - 1)^2).
  for (const double eps : {1.0, 2.0, 4.0}) {
    const double eps1 = 0.5 * eps;
    const double n = 10000.0;
    const double expected = 4.0 * std::exp(eps1) /
                            (n * std::pow(std::exp(eps1) - 1.0, 2.0));
    const double v =
        ProtocolApproxVariance(ProtocolId::kLOsue, n, 100, eps, eps1);
    EXPECT_LT(RelDiff(v, expected), 1e-9) << "eps=" << eps;
  }
}

TEST(ProtocolVarianceTest, DBitFlipMatchesPaperClosedForm) {
  // Sec. 4 (rewritten): V*_{dBitFlipPM} = b e^{ε∞/2} /
  // (d n (e^{ε∞/2} - 1)^2) — the SUE variance scaled by b/d sampling.
  const double n = 10000.0;
  for (const double eps : {0.5, 2.0, 5.0}) {
    for (const uint32_t d : {1u, 10u, 100u}) {
      const uint32_t b = 100;
      const double e = std::exp(eps / 2.0);
      const double expected =
          static_cast<double>(b) * e /
          (d * n * (e - 1.0) * (e - 1.0));
      EXPECT_LT(RelDiff(DBitFlipApproxVariance(n, b, d, eps), expected),
                1e-9);
    }
  }
}

TEST(ProtocolVarianceTest, OLolohaTracksLOsueClosely) {
  // Fig. 2's headline: OLOLOHA ~ L-OSUE across the grid (within a small
  // constant factor), mirroring OLH ~ OUE.
  for (const double eps : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    for (const double alpha : {0.3, 0.5, 0.6}) {
      const double v_olo = ProtocolApproxVariance(
          ProtocolId::kOLoloha, 1e4, 360, eps, alpha * eps);
      const double v_osue = ProtocolApproxVariance(
          ProtocolId::kLOsue, 1e4, 360, eps, alpha * eps);
      EXPECT_LT(v_olo / v_osue, 2.0) << "eps=" << eps << " a=" << alpha;
      EXPECT_GT(v_olo / v_osue, 0.9);
    }
  }
}

TEST(ProtocolVarianceTest, BiLolohaWorstInLowPrivacyRegime) {
  // Fig. 2, low-privacy corner (ε∞ = 5, α = 0.6): BiLOLOHA and RAPPOR
  // trail L-OSUE / OLOLOHA.
  const double n = 1e4;
  const double eps = 5.0;
  const double eps1 = 3.0;
  const double v_bi =
      ProtocolApproxVariance(ProtocolId::kBiLoloha, n, 360, eps, eps1);
  const double v_osue =
      ProtocolApproxVariance(ProtocolId::kLOsue, n, 360, eps, eps1);
  EXPECT_GT(v_bi, v_osue);
}

TEST(ProtocolVarianceTest, AllSimilarInHighPrivacyRegime) {
  // Fig. 2, α <= 0.3 and small ε∞: the four protocols are within a small
  // factor of one another.
  const double n = 1e4;
  const double eps = 1.0;
  const double eps1 = 0.2;
  const double v[] = {
      ProtocolApproxVariance(ProtocolId::kRappor, n, 360, eps, eps1),
      ProtocolApproxVariance(ProtocolId::kLOsue, n, 360, eps, eps1),
      ProtocolApproxVariance(ProtocolId::kBiLoloha, n, 360, eps, eps1),
      ProtocolApproxVariance(ProtocolId::kOLoloha, n, 360, eps, eps1)};
  for (const double a : v) {
    for (const double b : v) {
      EXPECT_LT(a / b, 1.6);
    }
  }
}

TEST(ProtocolVarianceTest, LGrrSensitiveToDomainSize) {
  // Sec. 4: L-GRR degrades sharply with k.
  const double v_small =
      ProtocolApproxVariance(ProtocolId::kLGrr, 1e4, 4, 2.0, 1.0);
  const double v_large =
      ProtocolApproxVariance(ProtocolId::kLGrr, 1e4, 360, 2.0, 1.0);
  EXPECT_GT(v_large, 50.0 * v_small);
}

TEST(CharacteristicsTest, Table1CommunicationBits) {
  const uint32_t k = 1024;
  EXPECT_DOUBLE_EQ(
      Characteristics(ProtocolId::kRappor, k, k, 1, 2.0, 1.0)
          .comm_bits_per_report,
      1024.0);
  EXPECT_DOUBLE_EQ(
      Characteristics(ProtocolId::kLGrr, k, k, 1, 2.0, 1.0)
          .comm_bits_per_report,
      10.0);  // ceil(log2 1024)
  EXPECT_DOUBLE_EQ(
      Characteristics(ProtocolId::kBiLoloha, k, k, 1, 2.0, 1.0)
          .comm_bits_per_report,
      1.0);  // ceil(log2 2)
  EXPECT_DOUBLE_EQ(
      Characteristics(ProtocolId::kOneBitFlipPm, k, 256, 1, 2.0, 1.0)
          .comm_bits_per_report,
      1.0);
}

TEST(CharacteristicsTest, Table1BudgetConsumption) {
  const uint32_t k = 360;
  const double eps = 2.0;
  EXPECT_DOUBLE_EQ(
      Characteristics(ProtocolId::kRappor, k, k, 1, eps, 1.0)
          .worst_case_budget,
      k * eps);
  EXPECT_DOUBLE_EQ(
      Characteristics(ProtocolId::kBiLoloha, k, k, 1, eps, 1.0)
          .worst_case_budget,
      2 * eps);
  // dBitFlipPM: min(d+1, b) eps.
  EXPECT_DOUBLE_EQ(
      Characteristics(ProtocolId::kOneBitFlipPm, k, 90, 1, eps, 1.0)
          .worst_case_budget,
      2 * eps);
  EXPECT_DOUBLE_EQ(
      Characteristics(ProtocolId::kBBitFlipPm, k, 90, 90, eps, 1.0)
          .worst_case_budget,
      90 * eps);
}

TEST(CharacteristicsTest, LolohaBudgetScalesWithOptimalG) {
  const auto c =
      Characteristics(ProtocolId::kOLoloha, 360, 360, 1, 5.0, 3.0);
  const uint32_t g = OptimalLolohaG(5.0, 3.0);
  EXPECT_DOUBLE_EQ(c.worst_case_budget, g * 5.0);
  EXPECT_GT(g, 2u);
}

TEST(Figure2ProtocolsTest, FourDoubleRandomizationProtocols) {
  const auto protocols = Figure2Protocols();
  EXPECT_EQ(protocols.size(), 4u);
}

}  // namespace
}  // namespace loloha

#include "longitudinal/lue.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "oracle/estimator.h"
#include "util/rng.h"

namespace loloha {
namespace {

ChainedParams TestChain() { return LOsueChain(2.0, 1.0); }

TEST(LongitudinalUeClientTest, ReportHasDomainLength) {
  LongitudinalUeClient client(12, TestChain());
  Rng rng(1);
  EXPECT_EQ(client.Report(3, rng).size(), 12u);
}

TEST(LongitudinalUeClientTest, MemoizesPerDistinctValue) {
  LongitudinalUeClient client(12, TestChain());
  Rng rng(2);
  EXPECT_EQ(client.distinct_memos(), 0u);
  client.Report(3, rng);
  EXPECT_EQ(client.distinct_memos(), 1u);
  client.Report(3, rng);
  EXPECT_EQ(client.distinct_memos(), 1u);  // reuse, no new PRR
  client.Report(7, rng);
  EXPECT_EQ(client.distinct_memos(), 2u);
  client.Report(3, rng);
  EXPECT_EQ(client.distinct_memos(), 2u);  // revisit reuses old memo
}

TEST(LongitudinalUeClientTest, RepeatedReportsShareTheMemoizedBasis) {
  // With a noiseless IRR, repeated reports of the same value must be
  // byte-identical — that is the memoization guarantee.
  ChainedParams chain = TestChain();
  chain.second = PerturbParams{1.0 - 1e-15, 1e-15};
  LongitudinalUeClient client(16, chain);
  Rng rng(3);
  const std::vector<uint8_t> first = client.Report(5, rng);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(client.Report(5, rng), first);
  }
}

TEST(LongitudinalUeServerTest, UnbiasedOnStaticPopulation) {
  const uint32_t k = 10;
  const ChainedParams chain = LOsueChain(3.0, 1.5);
  LongitudinalUeServer server(k, chain);
  Rng rng(4);
  constexpr int kUsers = 40000;
  std::vector<LongitudinalUeClient> clients(
      kUsers, LongitudinalUeClient(k, chain));
  server.BeginStep();
  for (int u = 0; u < kUsers; ++u) {
    const uint32_t v = (u % 4 == 0) ? 2u : 8u;  // 25% / 75%
    server.Accumulate(clients[u].Report(v, rng));
  }
  const std::vector<double> est = server.EstimateStep();
  EXPECT_NEAR(est[2], 0.25, 0.03);
  EXPECT_NEAR(est[8], 0.75, 0.03);
  EXPECT_NEAR(est[5], 0.0, 0.03);
}

TEST(LongitudinalUePopulationTest, MatchesClientPathDistribution) {
  // The population simulator must agree with the per-user client/server
  // path in distribution: compare means of f_hat(0) over repeated runs.
  const uint32_t k = 6;
  const uint32_t n = 3000;
  const ChainedParams chain = LSueChain(2.0, 1.0);
  std::vector<uint32_t> values(n);
  for (uint32_t u = 0; u < n; ++u) values[u] = u % k;  // uniform

  constexpr int kRuns = 40;
  double pop_mean = 0.0;
  double client_mean = 0.0;
  double pop_m2 = 0.0;
  for (int r = 0; r < kRuns; ++r) {
    Rng rng_pop(1000 + r);
    LongitudinalUePopulation population(k, n, chain);
    const double est_pop = population.Step(values, rng_pop)[0];
    pop_mean += est_pop;
    pop_m2 += est_pop * est_pop;

    Rng rng_cli(2000 + r);
    LongitudinalUeServer server(k, chain);
    server.BeginStep();
    for (uint32_t u = 0; u < n; ++u) {
      LongitudinalUeClient client(k, chain);
      server.Accumulate(client.Report(values[u], rng_cli));
    }
    client_mean += server.EstimateStep()[0];
  }
  pop_mean /= kRuns;
  client_mean /= kRuns;
  const double pop_var = pop_m2 / kRuns - pop_mean * pop_mean;
  const double sigma = std::sqrt(2.0 * pop_var / kRuns);
  EXPECT_NEAR(pop_mean, client_mean, 5 * sigma + 1e-9);
  EXPECT_NEAR(pop_mean, 1.0 / k, 5 * std::sqrt(pop_var / kRuns) + 1e-9);
}

TEST(LongitudinalUePopulationTest, EstimatesSumToOne) {
  // Eq. (3) preserves totals: sum_v f_hat(v) = 1 identically for UE
  // protocols is NOT guaranteed (bits are independent), but the expected
  // sum is 1; check it is close.
  const uint32_t k = 20;
  const uint32_t n = 20000;
  const ChainedParams chain = LOsueChain(2.0, 1.0);
  LongitudinalUePopulation population(k, n, chain);
  std::vector<uint32_t> values(n);
  Rng rng(5);
  for (uint32_t u = 0; u < n; ++u) {
    values[u] = static_cast<uint32_t>(rng.UniformInt(k));
  }
  const std::vector<double> est = population.Step(values, rng);
  double sum = 0.0;
  for (const double e : est) sum += e;
  EXPECT_NEAR(sum, 1.0, 0.2);
}

TEST(LongitudinalUePopulationTest, TracksDistinctMemosPerUser) {
  const uint32_t k = 8;
  const uint32_t n = 4;
  LongitudinalUePopulation population(k, n, TestChain());
  Rng rng(6);
  population.Step({0, 1, 2, 3}, rng);
  population.Step({0, 1, 2, 4}, rng);  // only user 3 changes
  population.Step({0, 1, 2, 3}, rng);  // user 3 revisits: no new memo
  EXPECT_EQ(population.DistinctMemos(0), 1u);
  EXPECT_EQ(population.DistinctMemos(3), 2u);
}

TEST(LongitudinalUePopulationTest, UnbiasedUnderChanges) {
  // Users change values every step; per-step estimates must still track
  // the moving truth (memoization does not bias the estimator).
  const uint32_t k = 5;
  const uint32_t n = 30000;
  const ChainedParams chain = LOsueChain(3.0, 1.2);
  LongitudinalUePopulation population(k, n, chain);
  Rng rng(7);
  for (int t = 0; t < 3; ++t) {
    std::vector<uint32_t> values(n);
    // At step t, everyone holds value t (extreme point mass).
    for (uint32_t u = 0; u < n; ++u) values[u] = t;
    const std::vector<double> est = population.Step(values, rng);
    EXPECT_NEAR(est[t], 1.0, 0.05) << "t=" << t;
    EXPECT_NEAR(est[(t + 1) % k], 0.0, 0.05);
  }
}

TEST(LueChainTest, VariantDispatch) {
  EXPECT_STREQ(LueVariantName(LueVariant::kLSue), "RAPPOR");
  EXPECT_STREQ(LueVariantName(LueVariant::kLOsue), "L-OSUE");
  const ChainedParams sue = LueChain(LueVariant::kLSue, 2.0, 1.0);
  EXPECT_NEAR(sue.first.p + sue.first.q, 1.0, 1e-12);
  const ChainedParams osue = LueChain(LueVariant::kLOsue, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(osue.first.p, 0.5);
}

TEST(LongitudinalUeServerTest, AccumulateBatchMatchesPerReportAccumulate) {
  const uint32_t k = 21;
  const ChainedParams chain = LueChain(LueVariant::kLOsue, 2.0, 1.0);
  Rng rng(92);
  std::vector<LongitudinalUeClient> clients(300,
                                            LongitudinalUeClient(k, chain));
  std::vector<uint8_t> matrix;
  matrix.reserve(clients.size() * k);
  LongitudinalUeServer per_report(k, chain);
  per_report.BeginStep();
  for (size_t u = 0; u < clients.size(); ++u) {
    const std::vector<uint8_t> report =
        clients[u].Report(static_cast<uint32_t>(u) % k, rng);
    per_report.Accumulate(report);
    matrix.insert(matrix.end(), report.begin(), report.end());
  }
  LongitudinalUeServer batched(k, chain);
  batched.BeginStep();
  batched.AccumulateBatch(matrix.data(), clients.size());
  EXPECT_EQ(batched.EstimateStep(), per_report.EstimateStep());
}

}  // namespace
}  // namespace loloha

// Golden-value regression tests: pin exact numeric outputs of the key
// closed forms so that refactors cannot silently change the mathematics.
// Values were computed from the paper's formulas (and cross-checked
// against the numeric solvers) at the time the suite was written.

#include <cmath>

#include <gtest/gtest.h>

#include "core/loloha_params.h"
#include "core/theory.h"
#include "longitudinal/chain.h"
#include "oracle/params.h"
#include "shuffle/amplification.h"

namespace loloha {
namespace {

constexpr double kTol = 1e-9;

TEST(GoldenTest, GrrParamsAtEps1K10) {
  const PerturbParams p = GrrParams(1.0, 10);
  EXPECT_NEAR(p.p, std::exp(1.0) / (std::exp(1.0) + 9.0), kTol);
  EXPECT_NEAR(p.p, 0.23196931668, 1e-10);
  EXPECT_NEAR(p.q, 0.08533674259, 1e-10);
}

TEST(GoldenTest, SueOueParamsAtEps2) {
  const PerturbParams sue = SueParams(2.0);
  EXPECT_NEAR(sue.p, 0.73105857863, 1e-10);  // e/(e+1)
  const PerturbParams oue = OueParams(2.0);
  EXPECT_NEAR(oue.q, 0.11920292202, 1e-10);  // 1/(e^2+1)
}

TEST(GoldenTest, LolohaIrrEpsilon) {
  // eps_irr = ln((e^{3} - 1)/(e^{2} - e)) at (eps_inf=2, eps1=1).
  EXPECT_NEAR(LolohaIrrEpsilon(2.0, 1.0),
              std::log((std::exp(3.0) - 1.0) /
                       (std::exp(2.0) - std::exp(1.0))),
              kTol);
  EXPECT_NEAR(LolohaIrrEpsilon(2.0, 1.0), 1.40760596444, 1e-10);
  EXPECT_NEAR(LolohaIrrEpsilon(5.0, 3.0), 3.14507793896, 1e-8);
}

TEST(GoldenTest, OptimalGFig1Row) {
  // The eps_inf = 5 row of Fig. 1 as produced by Eq. (6).
  EXPECT_EQ(OptimalLolohaG(5.0, 0.1 * 5.0), 3u);
  EXPECT_EQ(OptimalLolohaG(5.0, 0.2 * 5.0), 4u);
  EXPECT_EQ(OptimalLolohaG(5.0, 0.3 * 5.0), 5u);
  EXPECT_EQ(OptimalLolohaG(5.0, 0.4 * 5.0), 8u);
  EXPECT_EQ(OptimalLolohaG(5.0, 0.5 * 5.0), 11u);
  EXPECT_EQ(OptimalLolohaG(5.0, 0.6 * 5.0), 17u);
}

TEST(GoldenTest, OptimalGHighPrivacyColumn) {
  // Fig. 1: everything at eps_inf <= 1 is binary.
  for (const double alpha : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6}) {
    EXPECT_EQ(OptimalLolohaG(0.5, alpha * 0.5), 2u);
    EXPECT_EQ(OptimalLolohaG(1.0, alpha * 1.0), 2u);
  }
}

TEST(GoldenTest, LOsueVarianceClosedForm) {
  // V* = 4 e^{eps1}/(n (e^{eps1}-1)^2) at eps1 = 1, n = 10^4.
  const double v =
      ProtocolApproxVariance(ProtocolId::kLOsue, 1e4, 360, 2.0, 1.0);
  EXPECT_NEAR(v, 4.0 * std::exp(1.0) /
                     (1e4 * std::pow(std::exp(1.0) - 1.0, 2.0)),
              1e-12);
  EXPECT_NEAR(v, 3.68269437683e-4, 1e-12);
}

TEST(GoldenTest, LSueIrrClosedForm) {
  // p2 = (e^{(eps_inf+eps1)/2} - 1)/((e^{eps_inf/2}-1)(e^{eps1/2}+1)).
  const ChainedParams chain = LSueChain(2.0, 1.0);
  const double expected = (std::exp(1.5) - 1.0) /
                          ((std::exp(1.0) - 1.0) * (std::exp(0.5) + 1.0));
  EXPECT_NEAR(chain.second.p, expected, kTol);
  EXPECT_NEAR(chain.second.p, 0.76499628780, 1e-8);
}

TEST(GoldenTest, LGrrIrrPaperClosedForm) {
  // Paper's p2 at (eps_inf=1, eps1=0.5, k=3).
  const ChainedParams chain = LGrrChain(1.0, 0.5, 3);
  const double a = std::exp(1.0);
  const double c = std::exp(0.5);
  const double expected =
      (a * c - 1.0) / (-3.0 * c + 2.0 * a + c + a * c - 1.0);
  EXPECT_NEAR(chain.second.p, expected, kTol);
}

TEST(GoldenTest, BiLolohaVarianceAtPaperPoint) {
  // Spot value used in Fig. 2 comparisons (n=10^4, eps_inf=1, alpha=0.5).
  const double v = LolohaApproximateVariance(1e4, 2, 1.0, 0.5);
  // Compute independently from first principles.
  const double eps_irr = LolohaIrrEpsilon(1.0, 0.5);
  const double p1 = std::exp(1.0) / (std::exp(1.0) + 1.0);
  const double p2 = std::exp(eps_irr) / (std::exp(eps_irr) + 1.0);
  const double q2 = 1.0 - p2;
  const double qs = 0.5 * p2 + 0.5 * q2;  // q1' = 1/2
  const double expected = qs * (1.0 - qs) /
                          (1e4 * std::pow((p1 - 0.5) * (p2 - q2), 2.0));
  EXPECT_NEAR(v, expected, 1e-12);
}

TEST(GoldenTest, DBitVarianceAtPaperPoint) {
  // b = 360, d = 1, eps_inf = 1, n = 10^4.
  const double e = std::exp(0.5);
  const double expected = 360.0 * e / (1e4 * (e - 1.0) * (e - 1.0));
  EXPECT_NEAR(DBitFlipApproxVariance(1e4, 360, 1, 1.0), expected, 1e-12);
}

TEST(GoldenTest, AmplifiedEpsilonSpotValue) {
  // Deterministic formula: pin one evaluation.
  const double e0 = std::exp(1.0);
  const double n = 1e6;
  const double delta = 1e-6;
  const double term =
      4.0 * std::sqrt(2.0 * std::log(4.0 / delta) / ((e0 + 1.0) * n)) +
      4.0 / n;
  EXPECT_NEAR(AmplifiedEpsilon(1.0, 1000000, 1e-6),
              std::log1p((e0 - 1.0) * term), 1e-12);
}

TEST(GoldenTest, WorstCaseBudgets) {
  EXPECT_DOUBLE_EQ(
      Characteristics(ProtocolId::kRappor, 1412, 353, 1, 0.5, 0.25)
          .worst_case_budget,
      706.0);
  EXPECT_DOUBLE_EQ(
      Characteristics(ProtocolId::kBBitFlipPm, 1412, 353, 353, 0.5, 0.25)
          .worst_case_budget,
      176.5);
  EXPECT_DOUBLE_EQ(
      Characteristics(ProtocolId::kBiLoloha, 1412, 353, 1, 0.5, 0.25)
          .worst_case_budget,
      1.0);
}

}  // namespace
}  // namespace loloha

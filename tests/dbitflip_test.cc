#include "longitudinal/dbitflip.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace loloha {
namespace {

TEST(BucketizerTest, EqualWidthMapping) {
  const Bucketizer bucketizer(100, 10);
  EXPECT_EQ(bucketizer.Bucket(0), 0u);
  EXPECT_EQ(bucketizer.Bucket(9), 0u);
  EXPECT_EQ(bucketizer.Bucket(10), 1u);
  EXPECT_EQ(bucketizer.Bucket(99), 9u);
}

TEST(BucketizerTest, IdentityWhenBEqualsK) {
  const Bucketizer bucketizer(17, 17);
  for (uint32_t v = 0; v < 17; ++v) EXPECT_EQ(bucketizer.Bucket(v), v);
}

TEST(BucketizerTest, NonDivisibleDomainCoversAllBuckets) {
  const Bucketizer bucketizer(97, 10);
  std::set<uint32_t> seen;
  for (uint32_t v = 0; v < 97; ++v) {
    const uint32_t bucket = bucketizer.Bucket(v);
    EXPECT_LT(bucket, 10u);
    seen.insert(bucket);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(DBitFlipClientTest, SamplesDistinctIndices) {
  const Bucketizer bucketizer(100, 20);
  Rng rng(1);
  const DBitFlipClient client(bucketizer, 5, 1.0, rng);
  const std::set<uint32_t> unique(client.sampled().begin(),
                                  client.sampled().end());
  EXPECT_EQ(unique.size(), 5u);
  for (const uint32_t j : unique) EXPECT_LT(j, 20u);
}

TEST(DBitFlipClientTest, ReportsAreMemoizedVerbatim) {
  const Bucketizer bucketizer(100, 10);
  Rng rng(2);
  DBitFlipClient client(bucketizer, 10, 1.0, rng);
  const DBitReport first = client.Report(42, rng);
  for (int i = 0; i < 20; ++i) {
    // Any value in the same bucket replays the identical bits.
    EXPECT_EQ(client.Report(45, rng).bits, first.bits);
  }
}

TEST(DBitFlipClientTest, DistinctStatesCapped) {
  const Bucketizer bucketizer(100, 10);
  Rng rng(3);
  DBitFlipClient client(bucketizer, 1, 1.0, rng);
  // March through every bucket; states must cap at min(d+1, b) = 2.
  for (uint32_t v = 0; v < 100; v += 5) client.Report(v, rng);
  EXPECT_EQ(client.distinct_buckets(), 10u);
  EXPECT_LE(client.distinct_states(), 2u);
}

TEST(DBitFlipClientTest, FullSamplingCountsEveryBucket) {
  const Bucketizer bucketizer(50, 10);
  Rng rng(4);
  DBitFlipClient client(bucketizer, 10, 1.0, rng);
  for (uint32_t v = 0; v < 50; v += 5) client.Report(v, rng);
  EXPECT_EQ(client.distinct_states(), 10u);
}

TEST(DBitFlipEndToEnd, FullSamplingRecoversBucketHistogram) {
  const uint32_t k = 40;
  const uint32_t b = 8;
  const uint32_t d = b;
  const double eps = 3.0;
  const Bucketizer bucketizer(k, b);
  DBitFlipServer server(bucketizer, d, eps);
  Rng rng(5);
  constexpr int kUsers = 50000;
  std::vector<DBitFlipClient> clients;
  clients.reserve(kUsers);
  for (int u = 0; u < kUsers; ++u) {
    clients.emplace_back(bucketizer, d, eps, rng);
    server.RegisterUser(clients.back().sampled());
  }
  server.BeginStep();
  for (int u = 0; u < kUsers; ++u) {
    // 50% in bucket 0 (values 0..4), 50% in bucket 4 (values 20..24).
    const uint32_t v = (u % 2 == 0) ? 2u : 22u;
    server.Accumulate(clients[u].Report(v, rng));
  }
  const std::vector<double> est = server.EstimateStep();
  EXPECT_NEAR(est[0], 0.5, 0.03);
  EXPECT_NEAR(est[4], 0.5, 0.03);
  EXPECT_NEAR(est[2], 0.0, 0.03);
}

TEST(DBitFlipEndToEnd, SparseSamplingStillUnbiased) {
  const uint32_t k = 40;
  const uint32_t b = 8;
  const uint32_t d = 1;
  const double eps = 3.0;
  const Bucketizer bucketizer(k, b);
  DBitFlipServer server(bucketizer, d, eps);
  Rng rng(6);
  constexpr int kUsers = 120000;
  std::vector<DBitFlipClient> clients;
  clients.reserve(kUsers);
  for (int u = 0; u < kUsers; ++u) {
    clients.emplace_back(bucketizer, d, eps, rng);
    server.RegisterUser(clients.back().sampled());
  }
  server.BeginStep();
  for (int u = 0; u < kUsers; ++u) {
    server.Accumulate(clients[u].Report((u % 2 == 0) ? 2u : 22u, rng));
  }
  const std::vector<double> est = server.EstimateStep();
  EXPECT_NEAR(est[0], 0.5, 0.05);
  EXPECT_NEAR(est[4], 0.5, 0.05);
}

TEST(DBitFlipPopulationTest, MatchesClientServerPath) {
  const uint32_t k = 30;
  const uint32_t b = 6;
  const uint32_t d = 3;
  const double eps = 2.0;
  const uint32_t n = 20000;
  const Bucketizer bucketizer(k, b);
  std::vector<uint32_t> values(n);
  for (uint32_t u = 0; u < n; ++u) values[u] = u % k;

  Rng rng_pop(7);
  DBitFlipPopulation population(bucketizer, d, eps, n, rng_pop);
  const std::vector<double> est_pop = population.Step(values, rng_pop);

  Rng rng_cli(8);
  DBitFlipServer server(bucketizer, d, eps);
  std::vector<DBitFlipClient> clients;
  clients.reserve(n);
  for (uint32_t u = 0; u < n; ++u) {
    clients.emplace_back(bucketizer, d, eps, rng_cli);
    server.RegisterUser(clients.back().sampled());
  }
  server.BeginStep();
  for (uint32_t u = 0; u < n; ++u) {
    server.Accumulate(clients[u].Report(values[u], rng_cli));
  }
  const std::vector<double> est_cli = server.EstimateStep();

  // Same mechanism, independent randomness: both must be near the true
  // uniform bucket histogram 1/6.
  for (uint32_t j = 0; j < b; ++j) {
    EXPECT_NEAR(est_pop[j], 1.0 / b, 0.05);
    EXPECT_NEAR(est_cli[j], 1.0 / b, 0.05);
  }
}

TEST(DBitFlipPopulationTest, MemoizationStableAcrossSteps) {
  // With constant values, the incremental support must not drift: every
  // step returns the identical estimate (reports are replayed verbatim).
  const uint32_t k = 20;
  const uint32_t b = 5;
  const Bucketizer bucketizer(k, b);
  const uint32_t n = 1000;
  Rng rng(9);
  DBitFlipPopulation population(bucketizer, b, 1.0, n, rng);
  std::vector<uint32_t> values(n);
  for (uint32_t u = 0; u < n; ++u) values[u] = u % k;
  const std::vector<double> first = population.Step(values, rng);
  for (int t = 0; t < 5; ++t) {
    EXPECT_EQ(population.Step(values, rng), first);
  }
}

TEST(DBitFlipPopulationTest, DistinctStatesTracked) {
  const uint32_t k = 12;
  const uint32_t b = 12;
  const Bucketizer bucketizer(k, b);
  Rng rng(10);
  DBitFlipPopulation population(bucketizer, 12, 1.0, 2, rng);
  population.Step({0, 3}, rng);
  population.Step({1, 3}, rng);
  EXPECT_EQ(population.DistinctStates(0), 2u);
  EXPECT_EQ(population.DistinctStates(1), 1u);
}

}  // namespace
}  // namespace loloha

#include "util/cli.h"

#include <vector>

#include <gtest/gtest.h>

namespace loloha {
namespace {

CommandLine Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return CommandLine(static_cast<int>(args.size()),
                     const_cast<char**>(args.data()));
}

TEST(CommandLineTest, EqualsSyntax) {
  const CommandLine cli = Parse({"--runs=5", "--eps=2.5", "--name=syn"});
  EXPECT_EQ(cli.GetInt("runs", 0), 5);
  EXPECT_DOUBLE_EQ(cli.GetDouble("eps", 0.0), 2.5);
  EXPECT_EQ(cli.GetString("name", ""), "syn");
}

TEST(CommandLineTest, SpaceSyntax) {
  const CommandLine cli = Parse({"--runs", "7"});
  EXPECT_EQ(cli.GetInt("runs", 0), 7);
}

TEST(CommandLineTest, BooleanFlag) {
  const CommandLine cli = Parse({"--quick"});
  EXPECT_TRUE(cli.HasFlag("quick"));
  EXPECT_FALSE(cli.HasFlag("full"));
}

TEST(CommandLineTest, DefaultsWhenMissing) {
  const CommandLine cli = Parse({});
  EXPECT_EQ(cli.GetInt("runs", 3), 3);
  EXPECT_DOUBLE_EQ(cli.GetDouble("eps", 1.5), 1.5);
  EXPECT_EQ(cli.GetString("name", "default"), "default");
}

TEST(CommandLineTest, BooleanFollowedByFlag) {
  const CommandLine cli = Parse({"--quick", "--runs=2"});
  EXPECT_TRUE(cli.HasFlag("quick"));
  EXPECT_EQ(cli.GetInt("runs", 0), 2);
}

TEST(CommandLineTest, ProgramName) {
  const CommandLine cli = Parse({});
  EXPECT_EQ(cli.program_name(), "prog");
}

}  // namespace
}  // namespace loloha

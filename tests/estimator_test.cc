#include "oracle/estimator.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "oracle/params.h"
#include "util/mathutil.h"

namespace loloha {
namespace {

TEST(EstimateFrequencyTest, InvertsExpectedCountExactly) {
  // Analytic unbiasedness: if C = n*(f*p + (1-f)*q), Eq. (1) returns f.
  const PerturbParams params{0.7, 0.1};
  const double n = 1e4;
  for (const double f : {0.0, 0.01, 0.2, 0.5, 1.0}) {
    const double expected_count = n * (f * params.p + (1.0 - f) * params.q);
    EXPECT_NEAR(EstimateFrequency(expected_count, n, params), f, 1e-12);
  }
}

TEST(EstimateFrequencyTest, ZeroCountGivesNegativeEstimate) {
  const PerturbParams params{0.7, 0.1};
  EXPECT_LT(EstimateFrequency(0.0, 100.0, params), 0.0);
}

TEST(EstimateFrequenciesTest, VectorVersionMatchesScalar) {
  const PerturbParams params{0.6, 0.2};
  const std::vector<double> counts = {10, 20, 70};
  const std::vector<double> est = EstimateFrequencies(counts, 100.0, params);
  for (size_t v = 0; v < counts.size(); ++v) {
    EXPECT_DOUBLE_EQ(est[v], EstimateFrequency(counts[v], 100.0, params));
  }
}

TEST(CollapseChainTest, MatchesManualComposition) {
  const PerturbParams first{0.8, 0.2};
  const PerturbParams second{0.9, 0.3};
  const PerturbParams collapsed = CollapseChain(first, second);
  EXPECT_DOUBLE_EQ(collapsed.p, 0.8 * 0.9 + 0.2 * 0.3);
  EXPECT_DOUBLE_EQ(collapsed.q, 0.2 * 0.9 + 0.8 * 0.3);
}

TEST(EstimateFrequencyChainedTest, EquivalentToCollapsedOneRound) {
  const PerturbParams first{0.8, 0.25};
  const PerturbParams second{0.7, 0.35};
  const PerturbParams collapsed = CollapseChain(first, second);
  const double n = 5000.0;
  for (const double count : {0.0, 123.0, 2500.0, 5000.0}) {
    EXPECT_LT(RelDiff(EstimateFrequencyChained(count, n, first, second),
                      EstimateFrequency(count, n, collapsed)),
              1e-9);
  }
}

TEST(EstimateFrequencyChainedTest, InvertsExpectedCountExactly) {
  const PerturbParams first{0.85, 0.15};
  const PerturbParams second{0.75, 0.25};
  const PerturbParams collapsed = CollapseChain(first, second);
  const double n = 1e5;
  for (const double f : {0.0, 0.05, 0.3, 1.0}) {
    const double expected_count =
        n * (f * collapsed.p + (1.0 - f) * collapsed.q);
    EXPECT_NEAR(
        EstimateFrequencyChained(expected_count, n, first, second), f,
        1e-10);
  }
}

TEST(VarianceTest, ApproximateEqualsExactAtZeroFrequency) {
  const PerturbParams first{0.8, 0.2};
  const PerturbParams second{0.7, 0.3};
  EXPECT_DOUBLE_EQ(ApproximateVariance(1000.0, first, second),
                   ExactVariance(1000.0, 0.0, first, second));
}

TEST(VarianceTest, ScalesInverselyWithN) {
  const PerturbParams first{0.8, 0.2};
  const PerturbParams second{0.7, 0.3};
  const double v1 = ApproximateVariance(1000.0, first, second);
  const double v2 = ApproximateVariance(2000.0, first, second);
  EXPECT_LT(RelDiff(v1 / v2, 2.0), 1e-12);
}

TEST(VarianceTest, ExactVarianceMaximalNearHalfGamma) {
  // gamma*(1-gamma) peaks at gamma = 1/2; variance at the f achieving
  // gamma = 1/2 must dominate the f = 0 and f = 1 variances.
  const PerturbParams first{0.9, 0.1};
  const PerturbParams second{0.8, 0.2};
  const PerturbParams collapsed = CollapseChain(first, second);
  const double f_half =
      (0.5 - collapsed.q) / (collapsed.p - collapsed.q);
  const double v_half = ExactVariance(1000.0, f_half, first, second);
  EXPECT_GE(v_half, ExactVariance(1000.0, 0.0, first, second));
  EXPECT_GE(v_half, ExactVariance(1000.0, 1.0, first, second));
}

TEST(OneRoundVarianceTest, MatchesKnownOueFormula) {
  // OUE: V* = 4 e^eps / (n (e^eps - 1)^2)  [Wang et al. 2017].
  for (const double eps : {0.5, 1.0, 2.0, 4.0}) {
    const double n = 10000.0;
    const double expected =
        4.0 * std::exp(eps) / (n * std::pow(std::exp(eps) - 1.0, 2.0));
    EXPECT_LT(
        RelDiff(OneRoundVariance(n, 0.0, OueParams(eps)), expected), 1e-10)
        << "eps=" << eps;
  }
}

TEST(OneRoundVarianceTest, MatchesKnownSueFormula) {
  // SUE: V* = e^{eps/2} / (n (e^{eps/2} - 1)^2).
  for (const double eps : {0.5, 1.0, 2.0, 4.0}) {
    const double n = 10000.0;
    const double e = std::exp(eps / 2.0);
    const double expected = e / (n * (e - 1.0) * (e - 1.0));
    EXPECT_LT(
        RelDiff(OneRoundVariance(n, 0.0, SueParams(eps)), expected), 1e-10);
  }
}

TEST(VarianceTest, DegenerateSecondRoundReducesToOneRound) {
  // With p2 -> 1, q2 -> 0 the chain is just the first round. Use a second
  // round extremely close to the identity.
  const PerturbParams first{0.8, 0.2};
  const PerturbParams identity{1.0 - 1e-12, 1e-12};
  EXPECT_LT(RelDiff(ExactVariance(500.0, 0.3, first, identity),
                    OneRoundVariance(500.0, 0.3, first)),
            1e-6);
}

}  // namespace
}  // namespace loloha

// Shared seeded-mutation vocabulary for the in-tree fuzz regression
// tests (snapshot_fuzz_test.cc, framing_fuzz_test.cc,
// plan_fuzz_test.cc).
//
// These tests and the coverage-guided harnesses under fuzz/ attack the
// same parsers from two angles: libFuzzer evolves its own corpus
// (nightly, clang-only), while these mutators run a few thousand
// deterministic trials on every `ctest` invocation on every toolchain.
// One mutation vocabulary — truncate / flip / extend / splice — keeps
// the two in sync: a crasher class one side can express, the other can
// reproduce as a checked-in regression trial.
//
// All randomness flows through loloha::Rng (repo determinism lint): a
// failing trial is identified by its seed stream alone and replays
// identically on any machine. Draw order inside each mutator is part of
// that contract — reordering draws silently re-labels every trial.

#ifndef LOLOHA_TESTS_FUZZ_UTIL_H_
#define LOLOHA_TESTS_FUZZ_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace loloha {
namespace fuzz_util {

// Truncate to a uniform length in [0, size) — always strictly shorter.
inline std::string Truncate(const std::string& input, Rng& rng) {
  if (input.empty()) return input;
  std::string out = input;
  out.resize(rng.UniformInt(input.size()));
  return out;
}

// XOR 1..max_flips bytes with non-zero masks (every flip is a real
// change). Touched offsets are appended to *flipped when non-null, so a
// caller can reason about which bytes a surviving parse absorbed.
inline std::string FlipBytes(const std::string& input, Rng& rng,
                             std::vector<size_t>* flipped = nullptr,
                             uint64_t max_flips = 8) {
  if (input.empty()) return input;
  std::string out = input;
  const uint64_t flips = 1 + rng.UniformInt(max_flips);
  for (uint64_t i = 0; i < flips; ++i) {
    const size_t at = rng.UniformInt(out.size());
    out[at] = static_cast<char>(out[at] ^
                                static_cast<char>(1 + rng.UniformInt(255)));
    if (flipped != nullptr) flipped->push_back(at);
  }
  return out;
}

// Append 1..max_extra trailing garbage bytes.
inline std::string Extend(const std::string& input, Rng& rng,
                          uint64_t max_extra = 64) {
  std::string out = input;
  const uint64_t extra = 1 + rng.UniformInt(max_extra);
  for (uint64_t i = 0; i < extra; ++i) {
    out.push_back(static_cast<char>(rng.UniformU64()));
  }
  return out;
}

// Crossover: a uniform prefix of `a` glued to a uniform suffix of `b`.
// Splice(x, x, ...) is the classic mid-stream corruption shape —
// dropped or repeated runs with valid bytes on both sides (a resumed
// download, a torn write), which flips/truncation cannot express.
inline std::string Splice(const std::string& a, const std::string& b,
                          Rng& rng) {
  const size_t cut_a = rng.UniformInt(a.size() + 1);
  const size_t cut_b = rng.UniformInt(b.size() + 1);
  return a.substr(0, cut_a) + b.substr(cut_b);
}

enum class MutationMode : uint32_t {
  kTruncate = 0,
  kFlip = 1,
  kExtend = 2,
  kSplice = 3,
};

struct Mutation {
  MutationMode mode = MutationMode::kTruncate;
  std::vector<size_t> flipped;  // offsets touched, kFlip only
};

// One mutation drawn uniformly from the four mutators; `donor` supplies
// the kSplice suffix (pass `base` itself for self-splice). The applied
// mode and any flipped offsets are reported through *mutation.
inline std::string Mutate(const std::string& base, const std::string& donor,
                          Rng& rng, Mutation* mutation = nullptr) {
  const auto mode = static_cast<MutationMode>(rng.UniformInt(4));
  if (mutation != nullptr) {
    mutation->mode = mode;
    mutation->flipped.clear();
  }
  switch (mode) {
    case MutationMode::kTruncate:
      return Truncate(base, rng);
    case MutationMode::kFlip:
      return FlipBytes(base, rng,
                       mutation != nullptr ? &mutation->flipped : nullptr);
    case MutationMode::kExtend:
      return Extend(base, rng);
    case MutationMode::kSplice:
    default:
      return Splice(base, donor, rng);
  }
}

}  // namespace fuzz_util
}  // namespace loloha

#endif  // LOLOHA_TESTS_FUZZ_UTIL_H_

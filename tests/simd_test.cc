// Bit-identity of the SIMD kernels (util/simd.h) against their scalar
// references, with deliberate odd lengths so vector tails are exercised,
// plus the HashRowU16 strength-reduction against UniversalHash.

#include "util/simd.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/hash.h"
#include "util/rng.h"

namespace loloha {
namespace {

// Lengths around and below the widest vector width (32 bytes = 16 u16
// lanes), primes, and zero.
const size_t kLengths[] = {0, 1, 2, 3, 7, 15, 16, 17, 31, 32, 33,
                           63, 64, 65, 100, 127, 251, 1000, 1001};

std::vector<uint16_t> RandomU16(size_t n, uint16_t cardinality, Rng& rng) {
  std::vector<uint16_t> data(n);
  for (auto& x : data) {
    x = static_cast<uint16_t>(rng.UniformInt(cardinality));
  }
  return data;
}

TEST(SimdTest, CountEqualU16MatchesScalarOnOddLengthsAndTails) {
  Rng rng(42);
  for (const size_t n : kLengths) {
    const std::vector<uint16_t> data = RandomU16(n, 7, rng);
    for (uint16_t target = 0; target < 8; ++target) {
      EXPECT_EQ(CountEqualU16(data.data(), n, target),
                CountEqualU16Scalar(data.data(), n, target))
          << "n=" << n << " target=" << target;
    }
  }
}

TEST(SimdTest, CountEqualU16AllAndNone) {
  const std::vector<uint16_t> same(1003, 5);
  EXPECT_EQ(CountEqualU16(same.data(), same.size(), 5), 1003u);
  EXPECT_EQ(CountEqualU16(same.data(), same.size(), 6), 0u);
}

TEST(SimdTest, AddEqualMaskU16MatchesScalarOnOddLengths) {
  Rng rng(43);
  for (const size_t n : kLengths) {
    const std::vector<uint16_t> data = RandomU16(n, 5, rng);
    std::vector<uint16_t> acc_simd(n, 0);
    std::vector<uint16_t> acc_scalar(n, 0);
    // Several passes with different targets: accumulation must stack.
    for (uint16_t target = 0; target < 5; ++target) {
      AddEqualMaskU16(data.data(), n, target, acc_simd.data());
      AddEqualMaskU16Scalar(data.data(), n, target, acc_scalar.data());
    }
    EXPECT_EQ(acc_simd, acc_scalar) << "n=" << n;
    // Every element matched exactly one of the 5 targets.
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(acc_simd[i], 1u);
  }
}

TEST(SimdTest, FlushU16ToU64AddsAndClears) {
  std::vector<uint16_t> acc = {1, 0, 65535, 7};
  std::vector<uint64_t> wide = {10, 20, 30, 40};
  FlushU16ToU64(acc.data(), acc.size(), wide.data());
  EXPECT_EQ(wide, (std::vector<uint64_t>{11, 20, 65565, 47}));
  EXPECT_EQ(acc, (std::vector<uint16_t>{0, 0, 0, 0}));
}

TEST(SimdTest, SumColumnsU8MatchesNaive) {
  Rng rng(44);
  for (const size_t cols : {1ul, 3ul, 17ul, 64ul, 65ul}) {
    for (const size_t rows : {0ul, 1ul, 2ul, 254ul, 255ul, 256ul, 300ul}) {
      std::vector<uint8_t> matrix(rows * cols);
      for (auto& x : matrix) {
        x = static_cast<uint8_t>(rng.UniformInt(256));
      }
      std::vector<uint64_t> expected(cols, 5);  // nonzero initial sums
      for (size_t r = 0; r < rows; ++r) {
        for (size_t c = 0; c < cols; ++c) {
          expected[c] += matrix[r * cols + c];
        }
      }
      std::vector<uint64_t> sums(cols, 5);
      std::vector<uint16_t> scratch(cols);
      SumColumnsU8(matrix.data(), rows, cols, sums.data(), scratch.data());
      EXPECT_EQ(sums, expected) << "rows=" << rows << " cols=" << cols;
    }
  }
}

TEST(SimdTest, HashRowU16MatchesUniversalHash) {
  Rng rng(45);
  for (const uint32_t g : {2u, 3u, 7u, 150u, 65535u}) {
    for (const uint32_t k : {1u, 2u, 33u, 360u}) {
      const UniversalHash hash = UniversalHash::Sample(g, rng);
      std::vector<uint16_t> row(k);
      HashRowU16(hash.a(), hash.b(), g, k, row.data());
      for (uint32_t v = 0; v < k; ++v) {
        ASSERT_EQ(row[v], hash(v)) << "g=" << g << " k=" << k << " v=" << v;
      }
    }
  }
}

TEST(SimdTest, HashRowU16ExtremeCoefficients) {
  // a and b at the family's edges; the incremental reduction must wrap
  // exactly like the closed-form evaluation.
  constexpr uint64_t kPrime = UniversalHash::kPrime;
  for (const uint64_t a : {uint64_t{1}, kPrime - 1}) {
    for (const uint64_t b : {uint64_t{0}, kPrime - 1}) {
      const UniversalHash hash(a, b, 17);
      std::vector<uint16_t> row(100);
      HashRowU16(a, b, 17, 100, row.data());
      for (uint32_t v = 0; v < 100; ++v) {
        ASSERT_EQ(row[v], hash(v)) << "a=" << a << " b=" << b << " v=" << v;
      }
    }
  }
}

TEST(SimdTest, CompileTimeDispatchIsDeclared) {
  // Sanity: the dispatch constant is one of the supported widths.
  EXPECT_TRUE(kSimdWidthBytes == 0 || kSimdWidthBytes == 16 ||
              kSimdWidthBytes == 32);
}

}  // namespace
}  // namespace loloha

#include "server/monitor.h"

#include <cmath>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/loloha.h"
#include "core/loloha_params.h"
#include "tests/stat_harness.h"
#include "util/rng.h"

namespace loloha {
namespace {

PerturbParams First() { return PerturbParams{0.8, 0.25}; }
PerturbParams Second() { return PerturbParams{0.7, 0.3}; }

TEST(TrendMonitorTest, FirstStepOnlyInitializes) {
  TrendMonitor monitor(3, 1000.0, First(), Second(), 0.5, 3.0);
  const std::vector<double> step0 = {0.5, 0.3, 0.2};
  EXPECT_TRUE(monitor.Observe(step0).empty());
  EXPECT_EQ(monitor.baseline(), step0);
  EXPECT_EQ(monitor.steps_observed(), 1u);
}

TEST(TrendMonitorTest, StableSeriesTriggersNothing) {
  TrendMonitor monitor(3, 1000.0, First(), Second(), 0.5, 4.0);
  monitor.Observe({0.5, 0.3, 0.2});
  for (int t = 0; t < 10; ++t) {
    EXPECT_TRUE(monitor.Observe({0.5, 0.3, 0.2}).empty());
  }
}

TEST(TrendMonitorTest, LargeJumpTriggersAlert) {
  TrendMonitor monitor(3, 100000.0, First(), Second(), 0.5, 4.0);
  monitor.Observe({0.5, 0.3, 0.2});
  const auto alerts = monitor.Observe({0.1, 0.7, 0.2});
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].value, 0u);
  EXPECT_LT(alerts[0].z_score, 0.0);
  EXPECT_EQ(alerts[1].value, 1u);
  EXPECT_GT(alerts[1].z_score, 0.0);
}

TEST(TrendMonitorTest, SmallerNMeansWiderNoiseFloor) {
  TrendMonitor tight(2, 100000.0, First(), Second(), 0.5, 4.0);
  TrendMonitor loose(2, 100.0, First(), Second(), 0.5, 4.0);
  EXPECT_LT(tight.NoiseStdDev(0.3), loose.NoiseStdDev(0.3));
}

TEST(TrendMonitorTest, BaselineTracksDriftViaEwma) {
  TrendMonitor monitor(1, 1000.0, First(), Second(), 0.5, 1000.0);
  monitor.Observe({0.0});
  monitor.Observe({1.0});
  EXPECT_DOUBLE_EQ(monitor.baseline()[0], 0.5);
  monitor.Observe({1.0});
  EXPECT_DOUBLE_EQ(monitor.baseline()[0], 0.75);
}

TEST(TrendMonitorTest, OneRoundConstructorUsesOneRoundNoise) {
  const PerturbParams params{0.75, 0.25};
  TrendMonitor monitor(2, 5000.0, params, 0.5, 4.0);
  // sigma^2 = gamma(1-gamma) / (n (p-q)^2) with gamma at f = 0.2.
  const double gamma = 0.2 * 0.5 + 0.25;
  const double expected =
      std::sqrt(gamma * (1 - gamma) / (5000.0 * 0.25));
  EXPECT_NEAR(monitor.NoiseStdDev(0.2), expected, 1e-6);
}

TEST(TrendMonitorTest, FalsePositiveRateControlledOnRealProtocol) {
  // Feed genuine LOLOHA estimates of a STATIC population; at z = 5 the
  // monitor should essentially never alert across k * steps checks.
  const LolohaParams params = MakeLolohaParams(24, 2, 2.0, 1.0);
  const uint32_t n = 20000;
  Rng rng(1);
  LolohaPopulation population(params, n, rng);
  std::vector<uint32_t> values(n);
  for (uint32_t u = 0; u < n; ++u) values[u] = u % 24;

  TrendMonitor monitor(24, n, params.EstimatorFirst(), params.irr, 0.3,
                       5.0);
  size_t alerts = 0;
  for (int t = 0; t < 12; ++t) {
    alerts += monitor.Observe(population.Step(values, rng)).size();
  }
  EXPECT_EQ(alerts, 0u);
}

// Simulated stationary traffic at exactly the monitor's noise model:
// estimates are f + sigma * N(0, 1) with sigma = NoiseStdDev(f). The
// measured false-positive rate must track the z_threshold's two-sided
// normal tail. The EWMA baseline carries its own noise (variance
// s / (2 - s) of one step's), so the effective threshold is
// z / sqrt(1 + s / (2 - s)) — the asserted band brackets the model rate
// computed at that inflation, deterministic under the fixed seed.
TEST(TrendMonitorTest, FalsePositiveRateMatchesZThresholdNoiseModel) {
  const uint32_t k = 40;
  const double n = 50000.0;
  const double smoothing = 0.2;
  const double z = 3.0;
  TrendMonitor monitor(k, n, First(), Second(), smoothing, z);

  const double f = 1.0 / k;
  const double sigma = monitor.NoiseStdDev(f);
  Rng rng(StreamSeed(20230328, 42, 0));
  const uint32_t steps = 500;
  uint64_t alerts = 0;
  for (uint32_t t = 0; t < steps; ++t) {
    std::vector<double> estimates(k);
    for (uint32_t v = 0; v < k; ++v) {
      estimates[v] = f + sigma * stat::GaussianSample(rng);
    }
    alerts += monitor.Observe(estimates).size();
  }
  const double checks = static_cast<double>(k) * (steps - 1);
  const double measured_rate = static_cast<double>(alerts) / checks;
  const double z_effective =
      z / std::sqrt(1.0 + smoothing / (2.0 - smoothing));
  const double model_rate = 2.0 * stat::NormalCdf(-z_effective);
  EXPECT_GT(measured_rate, 0.25 * model_rate)
      << "alerts=" << alerts << " model=" << model_rate;
  EXPECT_LT(measured_rate, 2.5 * model_rate)
      << "alerts=" << alerts << " model=" << model_rate;
}

// Same stationary noise model with one injected mean shift: the shifted
// cell must alert at the shift step, and only it.
TEST(TrendMonitorTest, InjectedShiftIsDetectedExactlyOnce) {
  const uint32_t k = 12;
  const double n = 50000.0;
  TrendMonitor monitor(k, n, First(), Second(), 0.3, 4.0);

  const double f = 1.0 / k;
  const double sigma = monitor.NoiseStdDev(f);
  Rng rng(StreamSeed(20230328, 43, 0));
  auto stationary_step = [&] {
    std::vector<double> estimates(k);
    for (uint32_t v = 0; v < k; ++v) {
      estimates[v] = f + sigma * stat::GaussianSample(rng);
    }
    return estimates;
  };
  for (int t = 0; t < 8; ++t) {
    monitor.Observe(stationary_step());
  }
  std::vector<double> shifted = stationary_step();
  shifted[5] += 10.0 * sigma;  // far past z = 4 even against EWMA noise
  const std::vector<TrendAlert> alerts = monitor.Observe(shifted);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].value, 5u);
  EXPECT_GT(alerts[0].z_score, 4.0);
}

TEST(TrendMonitorTest, BatchedObserveMatchesSequentialObserve) {
  const uint32_t k = 6;
  TrendMonitor sequential(k, 500.0, First(), Second(), 0.4, 2.0);
  // Noise at ~1.5x the monitor's own floor so z = 2 fires regularly.
  const double noise = 1.5 * sequential.NoiseStdDev(0.1);
  Rng rng(StreamSeed(20230328, 44, 0));
  std::vector<std::vector<double>> series;
  for (int t = 0; t < 20; ++t) {
    std::vector<double> estimates(k);
    for (uint32_t v = 0; v < k; ++v) {
      estimates[v] = 0.1 + noise * stat::GaussianSample(rng);
    }
    series.push_back(std::move(estimates));
  }

  std::vector<TrendAlert> expected;
  for (const auto& estimates : series) {
    const auto alerts = sequential.Observe(estimates);
    expected.insert(expected.end(), alerts.begin(), alerts.end());
  }
  ASSERT_FALSE(expected.empty());  // z = 2 on noisy input must fire some

  TrendMonitor batched(k, 500.0, First(), Second(), 0.4, 2.0);
  const std::vector<TrendAlert> actual =
      batched.Observe(std::span<const std::vector<double>>(series));
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(batched.baseline(), sequential.baseline());
  EXPECT_EQ(batched.steps_observed(), sequential.steps_observed());
}

TEST(TrendMonitorTest, DetectsRealPopulationShift) {
  const LolohaParams params = MakeLolohaParams(8, 2, 3.0, 1.5);
  const uint32_t n = 50000;
  Rng rng(2);
  LolohaPopulation population(params, n, rng);

  TrendMonitor monitor(8, n, params.EstimatorFirst(), params.irr, 0.5,
                       4.0);
  std::vector<uint32_t> values(n, 1u);  // everyone on value 1
  for (int t = 0; t < 4; ++t) {
    monitor.Observe(population.Step(values, rng));
  }
  // Half the population moves to value 6.
  for (uint32_t u = 0; u < n / 2; ++u) values[u] = 6u;
  const auto alerts = monitor.Observe(population.Step(values, rng));
  bool saw_drop_on_1 = false;
  bool saw_rise_on_6 = false;
  for (const TrendAlert& alert : alerts) {
    if (alert.value == 1 && alert.z_score < 0) saw_drop_on_1 = true;
    if (alert.value == 6 && alert.z_score > 0) saw_rise_on_6 = true;
  }
  EXPECT_TRUE(saw_drop_on_1);
  EXPECT_TRUE(saw_rise_on_6);
}

}  // namespace
}  // namespace loloha

#include "util/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace loloha {
namespace {

TEST(ShardBoundsTest, PartitionsWithoutGapsOrOverlap) {
  for (const uint64_t total : {0ull, 1ull, 7ull, 64ull, 1000ull, 1001ull}) {
    for (const uint32_t shards : {1u, 2u, 3u, 16u, 64u}) {
      uint64_t expected_begin = 0;
      for (uint32_t s = 0; s < shards; ++s) {
        const ShardRange range = ShardBounds(total, shards, s);
        EXPECT_EQ(range.begin, expected_begin)
            << "total=" << total << " shards=" << shards << " s=" << s;
        EXPECT_LE(range.begin, range.end);
        expected_begin = range.end;
      }
      EXPECT_EQ(expected_begin, total);
    }
  }
}

TEST(ShardBoundsTest, BalancedWithinOneItem) {
  const uint64_t total = 103;
  const uint32_t shards = 10;
  for (uint32_t s = 0; s < shards; ++s) {
    const ShardRange range = ShardBounds(total, shards, s);
    const uint64_t size = range.end - range.begin;
    EXPECT_GE(size, 10u);
    EXPECT_LE(size, 11u);
  }
}

TEST(ShardBoundsTest, MoreShardsThanItemsYieldsEmptyTails) {
  const ShardRange last = ShardBounds(3, 8, 7);
  EXPECT_EQ(last.begin, last.end);
  uint64_t covered = 0;
  for (uint32_t s = 0; s < 8; ++s) {
    const ShardRange range = ShardBounds(3, 8, s);
    covered += range.end - range.begin;
  }
  EXPECT_EQ(covered, 3u);
}

TEST(ThreadPoolTest, RunsEveryShardExactlyOnce) {
  for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    const uint32_t shards = 37;
    std::vector<std::atomic<int>> hits(shards);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(shards, [&](uint32_t shard) {
      ASSERT_LT(shard, shards);
      hits[shard].fetch_add(1);
    });
    for (uint32_t s = 0; s < shards; ++s) {
      EXPECT_EQ(hits[s].load(), 1) << "threads=" << threads << " s=" << s;
    }
  }
}

TEST(ThreadPoolTest, ZeroShardsIsANoOp) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(0, [&](uint32_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  int count = 0;
  pool.ParallelFor(5, [&](uint32_t) { ++count; });
  EXPECT_EQ(count, 5);
}

TEST(ThreadPoolTest, ReusableAcrossManyInvocations) {
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  const uint32_t shards = 16;
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(shards, [&](uint32_t shard) {
      sum.fetch_add(shard + 1);
    });
  }
  // 50 rounds of sum(1..16).
  EXPECT_EQ(sum.load(), 50ull * (shards * (shards + 1)) / 2);
}

TEST(ThreadPoolTest, ShardedSumMatchesSequential) {
  const uint64_t n = 100000;
  const uint32_t shards = 64;
  uint64_t expected = 0;
  for (uint64_t i = 0; i < n; ++i) expected += i * i;

  for (const uint32_t threads : {1u, 3u, 8u}) {
    ThreadPool pool(threads);
    std::vector<uint64_t> partial(shards, 0);
    pool.ParallelFor(shards, [&](uint32_t shard) {
      const ShardRange range = ShardBounds(n, shards, shard);
      uint64_t local = 0;
      for (uint64_t i = range.begin; i < range.end; ++i) local += i * i;
      partial[shard] = local;
    });
    uint64_t total = 0;
    for (const uint64_t p : partial) total += p;
    EXPECT_EQ(total, expected) << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
}

TEST(StreamSeedTest, DeterministicAndSensitiveToEveryArgument) {
  const uint64_t base = StreamSeed(42, 7, 3);
  EXPECT_EQ(StreamSeed(42, 7, 3), base);
  EXPECT_NE(StreamSeed(43, 7, 3), base);
  EXPECT_NE(StreamSeed(42, 8, 3), base);
  EXPECT_NE(StreamSeed(42, 7, 4), base);
  // (stream, substream) must not be interchangeable.
  EXPECT_NE(StreamSeed(42, 3, 7), base);
}

TEST(StreamSeedTest, NeighboringShardsGetIndependentStreams) {
  // Smoke check: streams of adjacent shards should not be correlated in
  // an obvious way — their first draws should differ.
  Rng a(StreamSeed(123, 0, 0));
  Rng b(StreamSeed(123, 1, 0));
  EXPECT_NE(a.UniformU64(), b.UniformU64());
}

}  // namespace
}  // namespace loloha

#include "oracle/local_hash.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "oracle/estimator.h"
#include "util/rng.h"

namespace loloha {
namespace {

TEST(LhClientTest, ReportCellWithinRange) {
  const LhClient client(100, 4, 1.0);
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const LhReport report = client.Perturb(42, rng);
    EXPECT_LT(report.cell, 4u);
    EXPECT_EQ(report.hash.range(), 4u);
  }
}

TEST(LhClientTest, PerturbCellKeepProbability) {
  const LhClient client(100, 8, 2.0);
  Rng rng(2);
  constexpr int kTrials = 100000;
  int kept = 0;
  for (int i = 0; i < kTrials; ++i) kept += (client.PerturbCell(3, rng) == 3);
  EXPECT_NEAR(kept / static_cast<double>(kTrials), client.params().p, 0.006);
}

class LhEndToEnd : public testing::TestWithParam<uint32_t> {};

TEST_P(LhEndToEnd, RecoversDistribution) {
  const uint32_t g = GetParam();
  const uint32_t k = 50;
  const double eps = 2.0;
  const LhClient client(k, g, eps);
  LhServer server(k, g, eps);
  Rng rng(3);
  constexpr int kUsers = 80000;
  for (int i = 0; i < kUsers; ++i) {
    const uint32_t v = (i % 5 == 0) ? 10u : 20u;  // 20% / 80%
    server.Accumulate(client.Perturb(v, rng));
  }
  const std::vector<double> est = server.Estimate();
  EXPECT_NEAR(est[10], 0.2, 0.03);
  EXPECT_NEAR(est[20], 0.8, 0.03);
  EXPECT_NEAR(est[0], 0.0, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Ranges, LhEndToEnd, testing::Values(2u, 4u, 8u));

TEST(LhTest, BlhUsesRangeTwo) {
  const LhClient client = MakeBlhClient(100, 1.0);
  EXPECT_EQ(client.g(), 2u);
}

TEST(LhTest, OlhUsesOptimalRange) {
  const LhClient client = MakeOlhClient(100, 2.0);
  EXPECT_EQ(client.g(), 8u);  // round(e^2 + 1)
}

TEST(LhTest, SupportProbabilityOfNonHolderIsOneOverG) {
  // For a user holding w, the probability that a *different* value v is
  // supported (H(v) == reported cell) is 1/g under a universal family —
  // the q of the LH estimator.
  const uint32_t k = 64;
  const uint32_t g = 4;
  const LhClient client(k, g, 2.0);
  Rng rng(4);
  constexpr int kTrials = 100000;
  int support = 0;
  for (int i = 0; i < kTrials; ++i) {
    const LhReport report = client.Perturb(/*value=*/7, rng);
    support += (report.hash(13) == report.cell) ? 1 : 0;
  }
  EXPECT_NEAR(support / static_cast<double>(kTrials), 1.0 / g, 0.006);
}

TEST(LhTest, HolderSupportProbabilityIsP) {
  const uint32_t k = 64;
  const uint32_t g = 4;
  const LhClient client(k, g, 2.0);
  Rng rng(5);
  constexpr int kTrials = 100000;
  int support = 0;
  for (int i = 0; i < kTrials; ++i) {
    const LhReport report = client.Perturb(7, rng);
    support += (report.hash(7) == report.cell) ? 1 : 0;
  }
  EXPECT_NEAR(support / static_cast<double>(kTrials), client.params().p,
              0.006);
}

TEST(LhServerTest, ResetClearsState) {
  Rng rng(6);
  LhServer server(10, 2, 1.0);
  server.Accumulate(LhClient(10, 2, 1.0).Perturb(0, rng));
  EXPECT_EQ(server.num_reports(), 1u);
  server.Reset();
  EXPECT_EQ(server.num_reports(), 0u);
}

}  // namespace
}  // namespace loloha

// IngestBatch vs per-report equivalence, exercised through the abstract
// Collector interface: every case constructs its collectors from a
// declarative ProtocolSpec via MakeCollector, so one parameterized suite
// covers both implementations (LOLOHA and dBitFlipPM). The batched path
// must be message-for-message and counter-for-counter identical to
// dispatching each message through HandleHello / HandleReport in order —
// estimates, CollectorStats, and rejection classification — at every
// thread count, for well-formed traffic and for adversarial batches
// (interleaved hellos, mid-batch step boundaries, corrupted wire bytes,
// duplicates, unknown users).

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/loloha.h"
#include "server/collector.h"
#include "sim/protocol_spec.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "wire/encoding.h"

namespace loloha {
namespace {

// The per-report reference: dispatches exactly like IngestBatch (hellos by
// tag, everything else through HandleReport) and counts acceptances.
uint64_t ApplySerial(Collector& collector, std::span<const Message> batch,
                     WireType hello_tag) {
  uint64_t accepted = 0;
  for (const Message& message : batch) {
    WireType type = hello_tag;
    const bool is_hello =
        PeekWireType(message.bytes, &type) && type == hello_tag;
    const bool ok = is_hello
                        ? collector.HandleHello(message.user_id, message.bytes)
                        : collector.HandleReport(message.user_id,
                                                 message.bytes);
    accepted += ok ? 1 : 0;
  }
  return accepted;
}

void ExpectStatsEq(const CollectorStats& batch, const CollectorStats& serial) {
  EXPECT_EQ(batch.hellos_accepted, serial.hellos_accepted);
  EXPECT_EQ(batch.reports_accepted, serial.reports_accepted);
  EXPECT_EQ(batch.rejected_malformed, serial.rejected_malformed);
  EXPECT_EQ(batch.rejected_unknown_user, serial.rejected_unknown_user);
  EXPECT_EQ(batch.rejected_duplicate, serial.rejected_duplicate);
  EXPECT_TRUE(batch == serial);
}

// Protocol-tagged traffic: a hello batch, then per-step report batches
// with adversarial messages salted in (duplicates, unknown users,
// corrupted bytes, interleaved hellos — including users whose hello
// arrives mid-batch, after some of their reports).
struct Traffic {
  std::vector<Message> hellos;
  std::vector<std::vector<Message>> steps;
};

Traffic MakeLolohaTraffic(const LolohaParams& params, uint32_t users,
                          uint32_t tau, uint64_t seed) {
  Rng rng(seed);
  Traffic traffic;
  std::vector<LolohaClient> clients;
  clients.reserve(users + 2);
  for (uint32_t u = 0; u < users + 2; ++u) clients.emplace_back(params, rng);

  // Users [0, users) hello up front; users `users` and `users + 1` hello
  // mid-batch inside step 0 (interleaved with their own reports).
  for (uint32_t u = 0; u < users; ++u) {
    traffic.hellos.push_back(
        Message{u, EncodeLolohaHello(clients[u].hash())});
  }
  // Conflicting re-hello (rejected duplicate) and idempotent re-hello.
  traffic.hellos.push_back(
      Message{0, EncodeLolohaHello(clients[1].hash())});
  traffic.hellos.push_back(
      Message{2, EncodeLolohaHello(clients[2].hash())});

  for (uint32_t t = 0; t < tau; ++t) {
    std::vector<Message> step;
    for (uint32_t u = 0; u < users; ++u) {
      const uint32_t value = (u + t) % params.k;
      step.push_back(
          Message{u, EncodeLolohaReport(clients[u].Report(value, rng))});
      if (u % 7 == 0) {  // in-batch duplicate
        step.push_back(Message{
            u, EncodeLolohaReport(clients[u].Report(value, rng))});
      }
      if (u % 11 == 3) {  // unknown user
        step.push_back(Message{900000 + u, EncodeLolohaReport(0)});
      }
      if (u % 13 == 5) {  // corrupted bytes, three flavours
        std::string corrupt = EncodeLolohaReport(1);
        corrupt[1] = static_cast<char>(0x7f);  // wrong version
        step.push_back(Message{u + 1, corrupt});
        step.push_back(Message{u + 1, std::string("\x05", 1)});  // truncated
        step.push_back(
            Message{u + 1, EncodeLolohaReport(params.g)});  // out of range
      }
    }
    if (t == 0) {
      // Report before its hello (rejected unknown), then the hello, then a
      // report that must be accepted — all inside one batch.
      const uint32_t late_a = users;
      const uint32_t late_b = users + 1;
      step.push_back(Message{
          late_a, EncodeLolohaReport(clients[late_a].Report(0, rng))});
      step.push_back(
          Message{late_a, EncodeLolohaHello(clients[late_a].hash())});
      step.push_back(Message{
          late_a, EncodeLolohaReport(clients[late_a].Report(0, rng))});
      step.push_back(
          Message{late_b, EncodeLolohaHello(clients[late_b].hash())});
      step.push_back(Message{
          late_b, EncodeLolohaReport(clients[late_b].Report(5, rng))});
      // A GRR-typed message (foreign tag) lands in the report path.
      step.push_back(Message{3, EncodeGrrReport(1)});
    }
    traffic.steps.push_back(std::move(step));
  }
  return traffic;
}

Traffic MakeDBitTraffic(const Bucketizer& bucketizer, uint32_t d, double eps,
                        uint32_t users, uint32_t tau, uint64_t seed) {
  Rng rng(seed);
  Traffic traffic;
  std::vector<DBitFlipClient> clients;
  clients.reserve(users + 1);
  for (uint32_t u = 0; u < users + 1; ++u) {
    clients.emplace_back(bucketizer, d, eps, rng);
  }
  for (uint32_t u = 0; u < users; ++u) {
    traffic.hellos.push_back(
        Message{u, EncodeDBitHello(clients[u].sampled())});
  }
  // Conflicting re-hello: same user, (almost surely) different samples.
  traffic.hellos.push_back(
      Message{0, EncodeDBitHello(clients[users].sampled())});

  for (uint32_t t = 0; t < tau; ++t) {
    std::vector<Message> step;
    for (uint32_t u = 0; u < users; ++u) {
      const uint32_t value = (u + 3 * t) % bucketizer.k();
      const DBitReport report = clients[u].Report(value, rng);
      step.push_back(Message{u, EncodeDBitReport(report.bits)});
      if (u % 6 == 1) {  // in-batch duplicate
        step.push_back(Message{u, EncodeDBitReport(report.bits)});
      }
      if (u % 9 == 2) {  // unknown user
        step.push_back(
            Message{800000 + u, EncodeDBitReport(report.bits)});
      }
      if (u % 10 == 4) {  // corrupted: truncation and a foreign tag
        std::string corrupt = EncodeDBitReport(report.bits);
        corrupt.resize(corrupt.size() - 1);
        step.push_back(Message{u + 1, corrupt});
        step.push_back(Message{u + 1, EncodeGrrReport(0)});
      }
    }
    if (t == 0) {
      // Mid-batch hello: rejected report, hello, accepted report.
      const uint32_t late = users;
      const DBitReport report = clients[late].Report(1, rng);
      step.push_back(Message{late, EncodeDBitReport(report.bits)});
      step.push_back(Message{late, EncodeDBitHello(clients[late].sampled())});
      const DBitReport again = clients[late].Report(1, rng);
      step.push_back(Message{late, EncodeDBitReport(again.bits)});
    }
    traffic.steps.push_back(std::move(step));
  }
  return traffic;
}

// One suite, parameterized by (spec string, domain size): the same
// equivalence contract holds for every collector MakeCollector can build.
struct SuiteParam {
  const char* name;
  const char* spec;
  uint32_t k;
  uint32_t users;
};

class CollectorBatchSuite : public ::testing::TestWithParam<SuiteParam> {
 protected:
  ProtocolSpec spec() const {
    return ProtocolSpec::MustParse(GetParam().spec);
  }
  uint32_t k() const { return GetParam().k; }

  std::unique_ptr<Collector> NewCollector(
      const CollectorOptions& options = {}) const {
    return MakeCollector(spec(), k(), options);
  }

  WireType hello_tag() const {
    return spec().id == ProtocolId::kBiLoloha ||
                   spec().id == ProtocolId::kOLoloha
               ? WireType::kLolohaHello
               : WireType::kDBitHello;
  }

  Traffic MakeTraffic(uint32_t users, uint32_t tau, uint64_t seed) const {
    const ProtocolSpec s = spec();
    if (hello_tag() == WireType::kLolohaHello) {
      return MakeLolohaTraffic(LolohaParamsForSpec(s, k()), users, tau,
                               seed);
    }
    const uint32_t b = ResolveBuckets(s, k());
    return MakeDBitTraffic(Bucketizer(k(), b), ResolveD(s, b), s.eps_perm,
                           users, tau, seed);
  }
};

INSTANTIATE_TEST_SUITE_P(
    Specs, CollectorBatchSuite,
    ::testing::Values(
        SuiteParam{"Loloha", "ololoha:g=4,eps_perm=2,eps_first=1", 24, 300},
        SuiteParam{"DBitFlip", "bbitflip:eps_perm=3,buckets=8,d=5", 40, 250}),
    // Named param_info: INSTANTIATE_TEST_SUITE_P splices the lambda into
    // a gtest function whose own parameter is `info` (-Wshadow).
    [](const ::testing::TestParamInfo<SuiteParam>& param_info) {
      return param_info.param.name;
    });

TEST_P(CollectorBatchSuite, BatchMatchesPerReportAtEveryThreadCount) {
  const Traffic traffic = MakeTraffic(GetParam().users, 3, 77);

  const std::unique_ptr<Collector> serial = NewCollector();
  const uint64_t serial_accepted =
      ApplySerial(*serial, traffic.hellos, hello_tag());
  std::vector<std::vector<double>> serial_estimates;
  std::vector<uint64_t> serial_step_accepted;
  for (const auto& step : traffic.steps) {
    serial_step_accepted.push_back(
        ApplySerial(*serial, step, hello_tag()));
    serial_estimates.push_back(serial->EndStep());
  }

  for (const uint32_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    CollectorOptions options;
    options.pool = &pool;
    options.num_shards = 5;  // deliberately unaligned with the pool width
    const std::unique_ptr<Collector> batched = NewCollector(options);
    EXPECT_EQ(batched->IngestBatch(traffic.hellos), serial_accepted)
        << "threads=" << threads;
    for (size_t t = 0; t < traffic.steps.size(); ++t) {
      EXPECT_EQ(batched->IngestBatch(traffic.steps[t]),
                serial_step_accepted[t])
          << "threads=" << threads << " step=" << t;
      EXPECT_EQ(batched->EndStep(), serial_estimates[t])
          << "threads=" << threads << " step=" << t;
    }
    ExpectStatsEq(batched->stats(), serial->stats());
    EXPECT_EQ(batched->registered_users(), serial->registered_users());
  }
}

TEST_P(CollectorBatchSuite, ArbitrarySplitsAcrossStepBoundariesMatch) {
  const Traffic traffic = MakeTraffic(200, 3, 78);

  const std::unique_ptr<Collector> serial = NewCollector();
  ApplySerial(*serial, traffic.hellos, hello_tag());
  std::vector<std::vector<double>> serial_estimates;
  for (const auto& step : traffic.steps) {
    ApplySerial(*serial, step, hello_tag());
    serial_estimates.push_back(serial->EndStep());
  }

  // Feed the same stream in ragged chunks (1, 2, 3, ... messages), with
  // the step boundary landing mid-chunk-sequence wherever it falls.
  ThreadPool pool(3);
  CollectorOptions options;
  options.pool = &pool;
  const std::unique_ptr<Collector> batched = NewCollector(options);
  size_t chunk = 1;
  std::span<const Message> hellos(traffic.hellos);
  while (!hellos.empty()) {
    const size_t take = std::min(chunk++, hellos.size());
    batched->IngestBatch(hellos.first(take));
    hellos = hellos.subspan(take);
  }
  for (size_t t = 0; t < traffic.steps.size(); ++t) {
    std::span<const Message> rest(traffic.steps[t]);
    while (!rest.empty()) {
      const size_t take = std::min(chunk, rest.size());
      chunk = chunk % 5 + 1;
      batched->IngestBatch(rest.first(take));
      rest = rest.subspan(take);
    }
    EXPECT_EQ(batched->EndStep(), serial_estimates[t]) << "step=" << t;
  }
  ExpectStatsEq(batched->stats(), serial->stats());
}

TEST_P(CollectorBatchSuite, MixedPerReportAndBatchWithinOneStep) {
  const Traffic traffic = MakeTraffic(150, 1, 79);

  const std::unique_ptr<Collector> serial = NewCollector();
  ApplySerial(*serial, traffic.hellos, hello_tag());
  ApplySerial(*serial, traffic.steps[0], hello_tag());
  const std::vector<double> expected = serial->EndStep();

  const std::unique_ptr<Collector> mixed = NewCollector();
  mixed->IngestBatch(traffic.hellos);
  const auto& step = traffic.steps[0];
  const size_t half = step.size() / 2;
  // First half one message at a time, second half as a batch.
  ApplySerial(*mixed, std::span<const Message>(step).first(half),
              hello_tag());
  mixed->IngestBatch(std::span<const Message>(step).subspan(half));
  EXPECT_EQ(mixed->EndStep(), expected);
  ExpectStatsEq(mixed->stats(), serial->stats());
}

TEST_P(CollectorBatchSuite, EmptyBatchIsANoOp) {
  const std::unique_ptr<Collector> collector = NewCollector();
  EXPECT_EQ(collector->IngestBatch({}), 0u);
  EXPECT_EQ(collector->registered_users(), 0u);
  EXPECT_TRUE(collector->stats() == CollectorStats{});
}

TEST(DBitFlipCollectorBatchTest, RejectionClassificationMatchesPerReport) {
  // A batch that is *only* adversarial input: every counter must agree.
  const ProtocolSpec spec =
      ProtocolSpec::MustParse("bbitflip:eps_perm=2,buckets=4,d=3");
  const uint32_t k = 20;
  const Bucketizer bucketizer(k, 4);
  const uint32_t d = 3;
  Rng rng(17);
  DBitFlipClient client(bucketizer, d, 2.0, rng);
  const DBitReport report = client.Report(2, rng);

  std::vector<Message> batch;
  batch.push_back(Message{5, EncodeDBitReport(report.bits)});  // unknown
  batch.push_back(Message{5, EncodeDBitHello(client.sampled())});
  batch.push_back(Message{5, std::string()});                // empty bytes
  batch.push_back(Message{5, EncodeDBitReport(report.bits)});  // accepted
  batch.push_back(Message{5, EncodeDBitReport(report.bits)});  // duplicate
  std::string wrong_count = EncodeDBitHello({0, 1});  // d mismatch
  batch.push_back(Message{6, wrong_count});

  const std::unique_ptr<Collector> serial = MakeCollector(spec, k);
  const uint64_t serial_accepted =
      ApplySerial(*serial, batch, WireType::kDBitHello);

  const std::unique_ptr<Collector> batched = MakeCollector(spec, k);
  EXPECT_EQ(batched->IngestBatch(batch), serial_accepted);
  ExpectStatsEq(batched->stats(), serial->stats());
  EXPECT_EQ(batched->EndStep(), serial->EndStep());
}

// The batch decoder's packed-bits fast path (DecodeDBitReportBatch) must
// classify exactly like the scalar DecodeDBitReport across the malformed
// flavours: wrong tag, wrong version, truncated/oversized payload, count
// mismatch, nonzero pad bits.
TEST(DBitFlipCollectorBatchTest, PackedBitsFastPathMatchesScalarDecode) {
  const uint32_t d = 11;  // deliberately not a multiple of 8
  std::vector<uint8_t> bits(d, 0);
  for (uint32_t i = 0; i < d; i += 3) bits[i] = 1;
  const std::string good = EncodeDBitReport(bits);

  std::vector<Message> batch;
  batch.push_back(Message{0, good});
  std::string wrong_tag = good;
  wrong_tag[0] = static_cast<char>(WireType::kUeReport);
  batch.push_back(Message{1, wrong_tag});
  std::string wrong_version = good;
  wrong_version[1] = static_cast<char>(0x7f);
  batch.push_back(Message{2, wrong_version});
  std::string truncated = good;
  truncated.resize(truncated.size() - 1);
  batch.push_back(Message{3, truncated});
  std::string oversized = good;
  oversized.push_back('\0');
  batch.push_back(Message{4, oversized});
  std::string dirty_pad = good;
  dirty_pad.back() = static_cast<char>(0xf8);  // bits 11..15 of pad set
  batch.push_back(Message{5, dirty_pad});
  std::vector<uint8_t> wrong_d(d + 1, 0);
  batch.push_back(Message{6, EncodeDBitReport(wrong_d)});
  batch.push_back(Message{7, std::string()});
  batch.push_back(Message{8, good});

  std::vector<uint8_t> arena(batch.size() * d, 0xcc);
  std::vector<uint8_t> ok(batch.size(), 0xcc);
  const size_t well_formed = DecodeDBitReportBatch(batch, d, arena.data(),
                                                   ok.data());
  EXPECT_EQ(well_formed, 2u);
  for (size_t i = 0; i < batch.size(); ++i) {
    std::vector<uint8_t> scalar;
    EXPECT_EQ(ok[i] != 0, DecodeDBitReport(batch[i].bytes, d, &scalar))
        << "message " << i;
    if (ok[i]) {
      EXPECT_EQ(std::vector<uint8_t>(arena.begin() + i * d,
                                     arena.begin() + (i + 1) * d),
                scalar)
          << "message " << i;
    }
  }
}

}  // namespace
}  // namespace loloha

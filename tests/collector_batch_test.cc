// IngestBatch vs per-report equivalence: the batched ingestion path must
// be message-for-message and counter-for-counter identical to dispatching
// each message through HandleHello / HandleReport in order — estimates,
// CollectorStats, and rejection classification — at every thread count,
// for well-formed traffic and for adversarial batches (interleaved
// hellos, mid-batch step boundaries, corrupted wire bytes, duplicates,
// unknown users).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/loloha.h"
#include "server/collector.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "wire/encoding.h"

namespace loloha {
namespace {

LolohaParams TestParams() { return MakeLolohaParams(24, 4, 2.0, 1.0); }

// The per-report reference: dispatches exactly like IngestBatch (hellos by
// tag, everything else through HandleReport) and counts acceptances.
template <typename Collector>
uint64_t ApplySerial(Collector& collector, std::span<const Message> batch,
                     WireType hello_tag) {
  uint64_t accepted = 0;
  for (const Message& message : batch) {
    WireType type = hello_tag;
    const bool is_hello =
        PeekWireType(message.bytes, &type) && type == hello_tag;
    const bool ok = is_hello
                        ? collector.HandleHello(message.user_id, message.bytes)
                        : collector.HandleReport(message.user_id,
                                                 message.bytes);
    accepted += ok ? 1 : 0;
  }
  return accepted;
}

void ExpectStatsEq(const CollectorStats& batch, const CollectorStats& serial) {
  EXPECT_EQ(batch.hellos_accepted, serial.hellos_accepted);
  EXPECT_EQ(batch.reports_accepted, serial.reports_accepted);
  EXPECT_EQ(batch.rejected_malformed, serial.rejected_malformed);
  EXPECT_EQ(batch.rejected_unknown_user, serial.rejected_unknown_user);
  EXPECT_EQ(batch.rejected_duplicate, serial.rejected_duplicate);
  EXPECT_TRUE(batch == serial);
}

// Builds tau steps of LOLOHA traffic: a hello batch, then per-step report
// batches with adversarial messages salted in (duplicates, unknown users,
// corrupted bytes, interleaved hellos — including users whose hello
// arrives mid-batch, after some of their reports).
struct LolohaTraffic {
  std::vector<Message> hellos;
  std::vector<std::vector<Message>> steps;
};

LolohaTraffic MakeLolohaTraffic(const LolohaParams& params, uint32_t users,
                                uint32_t tau, uint64_t seed) {
  Rng rng(seed);
  LolohaTraffic traffic;
  std::vector<LolohaClient> clients;
  clients.reserve(users + 2);
  for (uint32_t u = 0; u < users + 2; ++u) clients.emplace_back(params, rng);

  // Users [0, users) hello up front; users `users` and `users + 1` hello
  // mid-batch inside step 0 (interleaved with their own reports).
  for (uint32_t u = 0; u < users; ++u) {
    traffic.hellos.push_back(
        Message{u, EncodeLolohaHello(clients[u].hash())});
  }
  // Conflicting re-hello (rejected duplicate) and idempotent re-hello.
  traffic.hellos.push_back(
      Message{0, EncodeLolohaHello(clients[1].hash())});
  traffic.hellos.push_back(
      Message{2, EncodeLolohaHello(clients[2].hash())});

  for (uint32_t t = 0; t < tau; ++t) {
    std::vector<Message> step;
    for (uint32_t u = 0; u < users; ++u) {
      const uint32_t value = (u + t) % params.k;
      step.push_back(
          Message{u, EncodeLolohaReport(clients[u].Report(value, rng))});
      if (u % 7 == 0) {  // in-batch duplicate
        step.push_back(Message{
            u, EncodeLolohaReport(clients[u].Report(value, rng))});
      }
      if (u % 11 == 3) {  // unknown user
        step.push_back(Message{900000 + u, EncodeLolohaReport(0)});
      }
      if (u % 13 == 5) {  // corrupted bytes, three flavours
        std::string corrupt = EncodeLolohaReport(1);
        corrupt[1] = static_cast<char>(0x7f);  // wrong version
        step.push_back(Message{u + 1, corrupt});
        step.push_back(Message{u + 1, std::string("\x05", 1)});  // truncated
        step.push_back(
            Message{u + 1, EncodeLolohaReport(params.g)});  // out of range
      }
    }
    if (t == 0) {
      // Report before its hello (rejected unknown), then the hello, then a
      // report that must be accepted — all inside one batch.
      const uint32_t late_a = users;
      const uint32_t late_b = users + 1;
      step.push_back(Message{
          late_a, EncodeLolohaReport(clients[late_a].Report(0, rng))});
      step.push_back(
          Message{late_a, EncodeLolohaHello(clients[late_a].hash())});
      step.push_back(Message{
          late_a, EncodeLolohaReport(clients[late_a].Report(0, rng))});
      step.push_back(
          Message{late_b, EncodeLolohaHello(clients[late_b].hash())});
      step.push_back(Message{
          late_b, EncodeLolohaReport(clients[late_b].Report(5, rng))});
      // A GRR-typed message (foreign tag) lands in the report path.
      step.push_back(Message{3, EncodeGrrReport(1)});
    }
    traffic.steps.push_back(std::move(step));
  }
  return traffic;
}

TEST(LolohaCollectorBatchTest, BatchMatchesPerReportAtEveryThreadCount) {
  const LolohaParams params = TestParams();
  const LolohaTraffic traffic = MakeLolohaTraffic(params, 300, 3, 77);

  LolohaCollector serial(params);
  uint64_t serial_accepted =
      ApplySerial(serial, traffic.hellos, WireType::kLolohaHello);
  std::vector<std::vector<double>> serial_estimates;
  std::vector<uint64_t> serial_step_accepted;
  for (const auto& step : traffic.steps) {
    serial_step_accepted.push_back(
        ApplySerial(serial, step, WireType::kLolohaHello));
    serial_estimates.push_back(serial.EndStep());
  }

  for (const uint32_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    CollectorOptions options;
    options.pool = &pool;
    options.num_shards = 5;  // deliberately unaligned with the pool width
    LolohaCollector batched(params, options);
    EXPECT_EQ(batched.IngestBatch(traffic.hellos), serial_accepted)
        << "threads=" << threads;
    for (size_t t = 0; t < traffic.steps.size(); ++t) {
      EXPECT_EQ(batched.IngestBatch(traffic.steps[t]),
                serial_step_accepted[t])
          << "threads=" << threads << " step=" << t;
      EXPECT_EQ(batched.EndStep(), serial_estimates[t])
          << "threads=" << threads << " step=" << t;
    }
    ExpectStatsEq(batched.stats(), serial.stats());
    EXPECT_EQ(batched.registered_users(), serial.registered_users());
  }
}

TEST(LolohaCollectorBatchTest, ArbitrarySplitsAcrossStepBoundariesMatch) {
  const LolohaParams params = TestParams();
  const LolohaTraffic traffic = MakeLolohaTraffic(params, 200, 3, 78);

  LolohaCollector serial(params);
  ApplySerial(serial, traffic.hellos, WireType::kLolohaHello);
  std::vector<std::vector<double>> serial_estimates;
  for (const auto& step : traffic.steps) {
    ApplySerial(serial, step, WireType::kLolohaHello);
    serial_estimates.push_back(serial.EndStep());
  }

  // Feed the same stream in ragged chunks (1, 2, 3, ... messages), with
  // the step boundary landing mid-chunk-sequence wherever it falls.
  ThreadPool pool(3);
  CollectorOptions options;
  options.pool = &pool;
  LolohaCollector batched(params, options);
  size_t chunk = 1;
  std::span<const Message> hellos(traffic.hellos);
  while (!hellos.empty()) {
    const size_t take = std::min(chunk++, hellos.size());
    batched.IngestBatch(hellos.first(take));
    hellos = hellos.subspan(take);
  }
  for (size_t t = 0; t < traffic.steps.size(); ++t) {
    std::span<const Message> rest(traffic.steps[t]);
    while (!rest.empty()) {
      const size_t take = std::min(chunk, rest.size());
      chunk = chunk % 5 + 1;
      batched.IngestBatch(rest.first(take));
      rest = rest.subspan(take);
    }
    EXPECT_EQ(batched.EndStep(), serial_estimates[t]) << "step=" << t;
  }
  ExpectStatsEq(batched.stats(), serial.stats());
}

TEST(LolohaCollectorBatchTest, MixedPerReportAndBatchWithinOneStep) {
  const LolohaParams params = TestParams();
  const LolohaTraffic traffic = MakeLolohaTraffic(params, 150, 1, 79);

  LolohaCollector serial(params);
  ApplySerial(serial, traffic.hellos, WireType::kLolohaHello);
  ApplySerial(serial, traffic.steps[0], WireType::kLolohaHello);
  const std::vector<double> expected = serial.EndStep();

  LolohaCollector mixed(params);
  mixed.IngestBatch(traffic.hellos);
  const auto& step = traffic.steps[0];
  const size_t half = step.size() / 2;
  // First half one message at a time, second half as a batch.
  ApplySerial(mixed, std::span<const Message>(step).first(half),
              WireType::kLolohaHello);
  mixed.IngestBatch(std::span<const Message>(step).subspan(half));
  EXPECT_EQ(mixed.EndStep(), expected);
  ExpectStatsEq(mixed.stats(), serial.stats());
}

TEST(LolohaCollectorBatchTest, EmptyBatchIsANoOp) {
  LolohaCollector collector(TestParams());
  EXPECT_EQ(collector.IngestBatch({}), 0u);
  EXPECT_TRUE(collector.EndStep().empty());
  EXPECT_TRUE(collector.stats() == CollectorStats{});
}

// Traffic generator for the dBitFlipPM collector, same adversarial mix.
struct DBitTraffic {
  std::vector<Message> hellos;
  std::vector<std::vector<Message>> steps;
};

DBitTraffic MakeDBitTraffic(const Bucketizer& bucketizer, uint32_t d,
                            double eps, uint32_t users, uint32_t tau,
                            uint64_t seed) {
  Rng rng(seed);
  DBitTraffic traffic;
  std::vector<DBitFlipClient> clients;
  clients.reserve(users + 1);
  for (uint32_t u = 0; u < users + 1; ++u) {
    clients.emplace_back(bucketizer, d, eps, rng);
  }
  for (uint32_t u = 0; u < users; ++u) {
    traffic.hellos.push_back(
        Message{u, EncodeDBitHello(clients[u].sampled())});
  }
  // Conflicting re-hello: same user, (almost surely) different samples.
  traffic.hellos.push_back(
      Message{0, EncodeDBitHello(clients[users].sampled())});

  for (uint32_t t = 0; t < tau; ++t) {
    std::vector<Message> step;
    for (uint32_t u = 0; u < users; ++u) {
      const uint32_t value = (u + 3 * t) % bucketizer.k();
      const DBitReport report = clients[u].Report(value, rng);
      step.push_back(Message{u, EncodeDBitReport(report.bits)});
      if (u % 6 == 1) {  // in-batch duplicate
        step.push_back(Message{u, EncodeDBitReport(report.bits)});
      }
      if (u % 9 == 2) {  // unknown user
        step.push_back(
            Message{800000 + u, EncodeDBitReport(report.bits)});
      }
      if (u % 10 == 4) {  // corrupted: truncation and a foreign tag
        std::string corrupt = EncodeDBitReport(report.bits);
        corrupt.resize(corrupt.size() - 1);
        step.push_back(Message{u + 1, corrupt});
        step.push_back(Message{u + 1, EncodeGrrReport(0)});
      }
    }
    if (t == 0) {
      // Mid-batch hello: rejected report, hello, accepted report.
      const uint32_t late = users;
      const DBitReport report = clients[late].Report(1, rng);
      step.push_back(Message{late, EncodeDBitReport(report.bits)});
      step.push_back(Message{late, EncodeDBitHello(clients[late].sampled())});
      const DBitReport again = clients[late].Report(1, rng);
      step.push_back(Message{late, EncodeDBitReport(again.bits)});
    }
    traffic.steps.push_back(std::move(step));
  }
  return traffic;
}

TEST(DBitFlipCollectorBatchTest, BatchMatchesPerReportAtEveryThreadCount) {
  const Bucketizer bucketizer(40, 8);
  const uint32_t d = 5;
  const double eps = 3.0;
  const DBitTraffic traffic =
      MakeDBitTraffic(bucketizer, d, eps, 250, 3, 91);

  DBitFlipCollector serial(bucketizer, d, eps);
  const uint64_t serial_hello_accepted =
      ApplySerial(serial, traffic.hellos, WireType::kDBitHello);
  std::vector<std::vector<double>> serial_estimates;
  std::vector<uint64_t> serial_step_accepted;
  for (const auto& step : traffic.steps) {
    serial_step_accepted.push_back(
        ApplySerial(serial, step, WireType::kDBitHello));
    serial_estimates.push_back(serial.EndStep());
  }

  for (const uint32_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    CollectorOptions options;
    options.pool = &pool;
    options.num_shards = 7;
    DBitFlipCollector batched(bucketizer, d, eps, options);
    EXPECT_EQ(batched.IngestBatch(traffic.hellos), serial_hello_accepted);
    for (size_t t = 0; t < traffic.steps.size(); ++t) {
      EXPECT_EQ(batched.IngestBatch(traffic.steps[t]),
                serial_step_accepted[t])
          << "threads=" << threads << " step=" << t;
      EXPECT_EQ(batched.EndStep(), serial_estimates[t])
          << "threads=" << threads << " step=" << t;
    }
    ExpectStatsEq(batched.stats(), serial.stats());
    EXPECT_EQ(batched.registered_users(), serial.registered_users());
  }
}

TEST(DBitFlipCollectorBatchTest, RejectionClassificationMatchesPerReport) {
  // A batch that is *only* adversarial input: every counter must agree.
  const Bucketizer bucketizer(20, 4);
  const uint32_t d = 3;
  Rng rng(17);
  DBitFlipClient client(bucketizer, d, 2.0, rng);
  const DBitReport report = client.Report(2, rng);

  std::vector<Message> batch;
  batch.push_back(Message{5, EncodeDBitReport(report.bits)});  // unknown
  batch.push_back(Message{5, EncodeDBitHello(client.sampled())});
  batch.push_back(Message{5, std::string()});                // empty bytes
  batch.push_back(Message{5, EncodeDBitReport(report.bits)});  // accepted
  batch.push_back(Message{5, EncodeDBitReport(report.bits)});  // duplicate
  std::string wrong_count = EncodeDBitHello({0, 1});  // d mismatch
  batch.push_back(Message{6, wrong_count});

  DBitFlipCollector serial(bucketizer, d, 2.0);
  const uint64_t serial_accepted =
      ApplySerial(serial, batch, WireType::kDBitHello);

  DBitFlipCollector batched(bucketizer, d, 2.0);
  EXPECT_EQ(batched.IngestBatch(batch), serial_accepted);
  ExpectStatsEq(batched.stats(), serial.stats());
  EXPECT_EQ(batched.EndStep(), serial.EndStep());
}

}  // namespace
}  // namespace loloha

#include "data/generators.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/histogram.h"

namespace loloha {
namespace {

TEST(SynGeneratorTest, DimensionsMatchPaper) {
  const Dataset data = GenerateSyn(500, 360, 20, 0.25, 1);
  EXPECT_EQ(data.k(), 360u);
  EXPECT_EQ(data.n(), 500u);
  EXPECT_EQ(data.tau(), 20u);
  EXPECT_EQ(data.name(), "Syn");
}

TEST(SynGeneratorTest, DeterministicForSeed) {
  const Dataset a = GenerateSyn(100, 50, 10, 0.25, 7);
  const Dataset b = GenerateSyn(100, 50, 10, 0.25, 7);
  for (uint32_t u = 0; u < 100; ++u) {
    for (uint32_t t = 0; t < 10; ++t) {
      ASSERT_EQ(a.value(u, t), b.value(u, t));
    }
  }
  const Dataset c = GenerateSyn(100, 50, 10, 0.25, 8);
  bool any_diff = false;
  for (uint32_t u = 0; u < 100 && !any_diff; ++u) {
    for (uint32_t t = 0; t < 10; ++t) {
      if (a.value(u, t) != c.value(u, t)) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(SynGeneratorTest, ChangeRateNearPCh) {
  // A redraw hits the same value with probability 1/k, so the observed
  // change rate is p_ch * (1 - 1/k).
  const Dataset data = GenerateSyn(2000, 360, 40, 0.25, 2);
  const double expected = 0.25 * (1.0 - 1.0 / 360.0);
  EXPECT_NEAR(data.AverageChangeRate(), expected, 0.01);
}

TEST(SynGeneratorTest, MarginalApproximatelyUniform) {
  const Dataset data = GenerateSyn(20000, 36, 5, 0.25, 3);
  const std::vector<double> f = data.TrueFrequenciesAt(4);
  for (const double fv : f) EXPECT_NEAR(fv, 1.0 / 36, 0.01);
}

TEST(SynGeneratorTest, ZeroChangeProbabilityFreezesValues) {
  const Dataset data = GenerateSyn(200, 50, 10, 0.0, 4);
  EXPECT_DOUBLE_EQ(data.AverageChangeRate(), 0.0);
}

TEST(AdultGeneratorTest, DomainIs96) {
  const Dataset data = GenerateAdultLike(5000, 10, 5);
  EXPECT_EQ(data.k(), 96u);
  EXPECT_EQ(data.name(), "Adult");
}

TEST(AdultGeneratorTest, GlobalHistogramConstantOverTime) {
  // The paper permutes the same column every step: per-step histograms
  // must be identical.
  const Dataset data = GenerateAdultLike(3000, 6, 6);
  const std::vector<double> f0 = data.TrueFrequenciesAt(0);
  for (uint32_t t = 1; t < data.tau(); ++t) {
    const std::vector<double> ft = data.TrueFrequenciesAt(t);
    for (uint32_t v = 0; v < data.k(); ++v) {
      ASSERT_DOUBLE_EQ(ft[v], f0[v]) << "t=" << t << " v=" << v;
    }
  }
}

TEST(AdultGeneratorTest, FortyHourSpikeDominates) {
  const Dataset data = GenerateAdultLike(30000, 2, 7);
  const std::vector<double> f = data.TrueFrequenciesAt(0);
  uint32_t mode = 0;
  for (uint32_t v = 1; v < 96; ++v) {
    if (f[v] > f[mode]) mode = v;
  }
  EXPECT_EQ(mode, 39u);  // code 39 == 40 hours
  EXPECT_GT(f[39], 0.25);
  EXPECT_LT(f[39], 0.60);
}

TEST(AdultGeneratorTest, UsersChangeAlmostEveryStep) {
  const Dataset data = GenerateAdultLike(2000, 10, 8);
  EXPECT_GT(data.AverageChangeRate(), 0.5);
}

TEST(ReplicateWeightGeneratorTest, DataDrivenDomainNearPaperK) {
  const Dataset mt = GenerateDbMtPaper(9);
  EXPECT_EQ(mt.n(), 10336u);
  EXPECT_EQ(mt.tau(), 80u);
  // Paper: k = 1412. The synthetic substitution must land in the same
  // regime (large four-digit domain).
  EXPECT_GT(mt.k(), 900u);
  EXPECT_LT(mt.k(), 2200u);
  EXPECT_EQ(mt.DistinctValuesGlobal(), mt.k());
}

TEST(ReplicateWeightGeneratorTest, DbDeSmallerThanDbMt) {
  const Dataset de = GenerateDbDePaper(10);
  EXPECT_EQ(de.n(), 9123u);
  EXPECT_GT(de.k(), 800u);
  EXPECT_LT(de.k(), 2000u);
  // The paper's ordering: k_MT (1412) > k_DE (1234).
  const Dataset mt = GenerateDbMtPaper(10);
  EXPECT_GT(mt.k(), de.k());
}

TEST(ReplicateWeightGeneratorTest, CountersChangeFrequently) {
  const Dataset data =
      GenerateReplicateWeights("w", 500, 20, 0.06, 2, 11);
  EXPECT_GT(data.AverageChangeRate(), 0.5);
}

TEST(ReplicateWeightGeneratorTest, PerUserValuesStayNearBase) {
  // Replicates jitter around a per-user base: a user's distinct-value
  // footprint must be far below tau*... well below the global domain.
  const Dataset data =
      GenerateReplicateWeights("w", 300, 40, 0.06, 2, 12);
  EXPECT_LT(data.MeanDistinctValuesPerUser(), 40.0);
  EXPECT_GT(data.MeanDistinctValuesPerUser(), 3.0);
}

TEST(ZipfGeneratorTest, SkewedMarginal) {
  const Dataset data = GenerateZipf(20000, 50, 2, 1.2, 0.2, 13);
  const std::vector<double> f = data.TrueFrequenciesAt(0);
  EXPECT_GT(f[0], f[10]);
  EXPECT_GT(f[0], 0.2);
}

TEST(StaticGeneratorTest, NoChangesEver) {
  const Dataset data = GenerateStatic(500, 20, 15, 1.0, 14);
  EXPECT_DOUBLE_EQ(data.AverageChangeRate(), 0.0);
  EXPECT_DOUBLE_EQ(data.MeanDistinctValuesPerUser(), 1.0);
}

}  // namespace
}  // namespace loloha

// Experiment-plan mutation regression test (sim/experiment.h), built on
// the shared truncate/flip/extend/splice vocabulary in
// tests/fuzz_util.h. The coverage-guided twin is fuzz/fuzz_plan.cc;
// this test enforces the same properties on seeded trials per ctest
// run, on every toolchain:
//
//   * arbitrary mutation of a valid plan text never crashes the parser;
//   * every rejection carries a diagnostic;
//   * every accepted-and-validated plan survives the canonical
//     ToString/re-parse round trip exactly (the invariant the
//     distributed slice fingerprint depends on).

#include "sim/experiment.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz_util.h"
#include "util/rng.h"

namespace loloha {
namespace {

constexpr char kBasePlan[] = R"([experiment]
name = fuzz_base
kind = variance
protocols = ololoha; l-osue:eps_perm=2,eps_first=1
n = 1000
k = 16

[grid]
eps_perm = 0.5, 1, 2
alpha = 0.25, 0.5

[run]
seed = 20230328

[output]
csv = results/fuzz_base.csv
)";

constexpr char kDonorPlan[] = R"([experiment]
name = fuzz_donor
kind = mse
protocols = bbitflip:eps_perm=2,buckets=4,d=3
datasets = syn
n = 500
k = 8

[grid]
eps_perm = 1, 2
alpha = 0.5

[run]
seed = 7
runs = 2
)";

void CheckParseProperties(const std::string& text, uint32_t trial) {
  ExperimentPlan plan;
  std::string error;
  if (!ParseExperimentPlan(text, &plan, &error)) {
    ASSERT_FALSE(error.empty()) << "trial " << trial;
    return;
  }
  if (!plan.Validate(&error)) {
    ASSERT_FALSE(error.empty()) << "trial " << trial;
    return;
  }
  const std::string canonical = plan.ToString();
  ExperimentPlan reparsed;
  error.clear();
  ASSERT_TRUE(ParseExperimentPlan(canonical, &reparsed, &error))
      << "trial " << trial << ": " << error;
  ASSERT_EQ(reparsed, plan) << "trial " << trial;
  ASSERT_EQ(reparsed.ToString(), canonical) << "trial " << trial;
}

TEST(PlanFuzzTest, BasePlansAreValid) {
  // The trial base/donor texts must themselves parse and validate, or
  // the mutation corpus below starts from dead inputs.
  for (const char* text : {kBasePlan, kDonorPlan}) {
    ExperimentPlan plan;
    std::string error;
    ASSERT_TRUE(ParseExperimentPlan(text, &plan, &error)) << error;
    EXPECT_TRUE(plan.Validate(&error)) << error;
  }
}

TEST(PlanFuzzTest, SeededMutationsNeverCrashAndKeepRoundTrip) {
  const std::string base = kBasePlan;
  const std::string donor = kDonorPlan;
  for (uint32_t trial = 0; trial < 3000; ++trial) {
    Rng rng(StreamSeed(0x91A4, trial, 0));
    const std::string mutated = fuzz_util::Mutate(base, donor, rng);
    CheckParseProperties(mutated, trial);
  }
}

TEST(PlanFuzzTest, LineSplicesNeverCrashAndKeepRoundTrip) {
  // The grammar is line-oriented, so byte-level splices mostly die on
  // the first malformed line. Splice at line granularity as well: keep
  // whole lines from both plans — far more of these parse, which is
  // what drives the round-trip oracle through interesting states.
  const std::string base = kBasePlan;
  const std::string donor = kDonorPlan;
  std::vector<std::string> base_lines;
  std::vector<std::string> donor_lines;
  {
    std::string cur;
    for (char c : base) {
      if (c == '\n') {
        base_lines.push_back(cur + '\n');
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    for (char c : donor) {
      if (c == '\n') {
        donor_lines.push_back(cur + '\n');
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
  }
  for (uint32_t trial = 0; trial < 2000; ++trial) {
    Rng rng(StreamSeed(0x91A4, trial, 1));
    const size_t keep_base = rng.UniformInt(base_lines.size() + 1);
    const size_t skip_donor = rng.UniformInt(donor_lines.size() + 1);
    std::string mutated;
    for (size_t i = 0; i < keep_base; ++i) mutated += base_lines[i];
    for (size_t i = skip_donor; i < donor_lines.size(); ++i) {
      mutated += donor_lines[i];
    }
    CheckParseProperties(mutated, trial);
  }
}

}  // namespace
}  // namespace loloha

#include "oracle/subset_selection.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/mathutil.h"
#include "util/rng.h"

namespace loloha {
namespace {

TEST(SubsetSizeTest, RoundsKOverEpsPlusOne) {
  // k / (e^1 + 1) = 100 / 3.718 = 26.9 -> 27.
  EXPECT_EQ(SubsetSize(100, 1.0), 27u);
  // Large eps: floors at 1 (recovering GRR-like behaviour).
  EXPECT_EQ(SubsetSize(10, 5.0), 1u);
  // Tiny eps: capped at k - 1.
  EXPECT_EQ(SubsetSize(4, 0.001), 2u);
}

TEST(SubsetParamsTest, LdpRatioHolds) {
  // p(k-w) / ((1-p) w) = e^eps by construction of p_include.
  for (const double eps : {0.5, 1.0, 2.0}) {
    for (const uint32_t k : {10u, 100u, 360u}) {
      const uint32_t w = SubsetSize(k, eps);
      const double e = std::exp(eps);
      const double p = w * e / (w * e + static_cast<double>(k - w));
      EXPECT_LT(RelDiff(p * (k - w) / ((1.0 - p) * w), e), 1e-10);
    }
  }
}

TEST(SubsetSelectionClientTest, SubsetHasExactlyWDistinctValues) {
  const SubsetSelectionClient client(50, 1.0);
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const std::vector<uint32_t> subset = client.Perturb(7, rng);
    EXPECT_EQ(subset.size(), client.w());
    std::set<uint32_t> unique(subset.begin(), subset.end());
    EXPECT_EQ(unique.size(), subset.size());
    for (const uint32_t v : subset) EXPECT_LT(v, 50u);
  }
}

TEST(SubsetSelectionClientTest, TrueValueIncludedWithP) {
  const SubsetSelectionClient client(40, 2.0);
  Rng rng(2);
  constexpr int kTrials = 50000;
  int included = 0;
  for (int i = 0; i < kTrials; ++i) {
    const std::vector<uint32_t> subset = client.Perturb(13, rng);
    for (const uint32_t v : subset) {
      if (v == 13) {
        ++included;
        break;
      }
    }
  }
  EXPECT_NEAR(included / static_cast<double>(kTrials),
              client.include_probability(), 0.007);
}

TEST(SubsetSelectionClientTest, OtherValuesIncludedWithQ) {
  const uint32_t k = 40;
  const double eps = 2.0;
  const SubsetSelectionClient client(k, eps);
  const PerturbParams params = SubsetParams(k, client.w(), eps);
  Rng rng(3);
  constexpr int kTrials = 50000;
  int included = 0;
  for (int i = 0; i < kTrials; ++i) {
    const std::vector<uint32_t> subset = client.Perturb(13, rng);
    for (const uint32_t v : subset) {
      if (v == 25) {
        ++included;
        break;
      }
    }
  }
  EXPECT_NEAR(included / static_cast<double>(kTrials), params.q, 0.007);
}

TEST(SubsetSelectionTest, RecoversSkewedDistribution) {
  const uint32_t k = 30;
  const double eps = 1.0;
  const SubsetSelectionClient client(k, eps);
  SubsetSelectionServer server(k, eps);
  Rng rng(4);
  constexpr int kUsers = 60000;
  for (int u = 0; u < kUsers; ++u) {
    const uint32_t v = (u % 4 == 0) ? 2u : 20u;
    server.Accumulate(client.Perturb(v, rng));
  }
  const std::vector<double> est = server.Estimate();
  EXPECT_NEAR(est[2], 0.25, 0.03);
  EXPECT_NEAR(est[20], 0.75, 0.03);
  EXPECT_NEAR(est[9], 0.0, 0.03);
}

TEST(SubsetSelectionTest, DegeneratesToGrrWhenWIsOne) {
  // w = 1: the subset is a single value — GRR's report shape.
  const SubsetSelectionClient client(10, 5.0);
  EXPECT_EQ(client.w(), 1u);
  Rng rng(5);
  const std::vector<uint32_t> subset = client.Perturb(4, rng);
  EXPECT_EQ(subset.size(), 1u);
}

TEST(SubsetSelectionTest, ResetClearsState) {
  SubsetSelectionServer server(10, 1.0);
  server.Accumulate({1, 2, 3});
  EXPECT_EQ(server.num_reports(), 1u);
  server.Reset();
  EXPECT_EQ(server.num_reports(), 0u);
}

}  // namespace
}  // namespace loloha

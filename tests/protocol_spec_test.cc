// ProtocolSpec: Parse/ToString round-trip property, rejection of
// malformed and out-of-range specs, and registry completeness — every
// ProtocolId has a unique canonical name, resolves back through the
// registry, and is constructible end to end (spec string -> runner).

#include "sim/protocol_spec.h"

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/loloha_params.h"
#include "data/generators.h"
#include "server/collector.h"
#include "sim/runner.h"
#include "util/rng.h"

namespace loloha {
namespace {

TEST(ProtocolSpecParse, IssueExamples) {
  ProtocolSpec spec;
  ASSERT_TRUE(ProtocolSpec::Parse("loloha:g=2,eps_perm=1.0,eps_first=0.5",
                                  &spec));
  EXPECT_EQ(spec.id, ProtocolId::kBiLoloha);
  EXPECT_EQ(spec.g, 2u);
  EXPECT_DOUBLE_EQ(spec.eps_perm, 1.0);
  EXPECT_DOUBLE_EQ(spec.eps_first, 0.5);

  ASSERT_TRUE(ProtocolSpec::Parse("loloha:eps_perm=1,eps_first=0.5", &spec));
  EXPECT_EQ(spec.id, ProtocolId::kOLoloha) << "g unset selects OLOLOHA";
  EXPECT_EQ(spec.g, 0u);

  ASSERT_TRUE(
      ProtocolSpec::Parse("bbitflip:eps_perm=2,bucket_divisor=4", &spec));
  EXPECT_EQ(spec.id, ProtocolId::kBBitFlipPm);
  EXPECT_EQ(spec.bucket_divisor, 4u);
  EXPECT_DOUBLE_EQ(spec.eps_first, 0.0) << "one-round: eps_first forced to 0";
}

TEST(ProtocolSpecParse, NamesAreCaseInsensitiveAndAliased) {
  ProtocolSpec spec;
  ASSERT_TRUE(ProtocolSpec::Parse("OLOLOHA:eps_perm=2,eps_first=1", &spec));
  EXPECT_EQ(spec.id, ProtocolId::kOLoloha);
  ASSERT_TRUE(ProtocolSpec::Parse("rappor", &spec));
  EXPECT_EQ(spec.id, ProtocolId::kRappor);
  ASSERT_TRUE(ProtocolSpec::Parse("dbitflip:eps_perm=1", &spec));
  EXPECT_EQ(spec.id, ProtocolId::kBBitFlipPm);
  ASSERT_TRUE(ProtocolSpec::Parse("Naive-OLH:eps_perm=0.25", &spec));
  EXPECT_EQ(spec.id, ProtocolId::kNaiveOlh);
}

TEST(ProtocolSpecParse, KeysAcceptedInAnyOrder) {
  ProtocolSpec a;
  ProtocolSpec b;
  ASSERT_TRUE(ProtocolSpec::Parse("ololoha:eps_perm=2,eps_first=1,g=5", &a));
  ASSERT_TRUE(ProtocolSpec::Parse("ololoha:g=5,eps_first=1,eps_perm=2", &b));
  EXPECT_EQ(a, b);
}

// Round-trip property: for every registry protocol and a deterministic
// sample of budgets/extras, Parse(ToString(spec)) == spec.
TEST(ProtocolSpecRoundTrip, PropertyOverRegistryAndBudgetSamples) {
  Rng rng(20230328);
  uint32_t checked = 0;
  for (const ProtocolSpecName& entry : ProtocolSpecRegistry()) {
    for (int i = 0; i < 40; ++i) {
      ProtocolSpec spec;
      spec.id = entry.id;
      // Budgets across magnitudes, including awkward decimal fractions.
      spec.eps_perm = 0.05 + 10.0 * rng.UniformDouble();
      spec.eps_first = spec.eps_perm * (0.05 + 0.9 * rng.UniformDouble());
      if (!spec.IsTwoRound()) spec.eps_first = 0.0;
      switch (entry.id) {
        case ProtocolId::kBiLoloha:
          spec.g = 2;
          break;
        case ProtocolId::kOLoloha:
          spec.g = (i % 3 == 0) ? 0 : 2 + static_cast<uint32_t>(
                                              rng.UniformInt(30));
          break;
        case ProtocolId::kOneBitFlipPm:
        case ProtocolId::kBBitFlipPm:
          spec.d = entry.id == ProtocolId::kOneBitFlipPm
                       ? 1
                       : static_cast<uint32_t>(rng.UniformInt(8));
          if (i % 2 == 0) {
            spec.buckets = 2 + static_cast<uint32_t>(rng.UniformInt(100));
          } else {
            spec.bucket_divisor =
                1 + static_cast<uint32_t>(rng.UniformInt(7));
          }
          break;
        default:
          break;
      }
      ASSERT_TRUE(spec.Validate()) << spec.ToString();
      const std::string text = spec.ToString();
      ProtocolSpec reparsed;
      std::string error;
      ASSERT_TRUE(ProtocolSpec::Parse(text, &reparsed, &error))
          << text << ": " << error;
      EXPECT_EQ(reparsed, spec) << text;
      EXPECT_EQ(reparsed.ToString(), text) << "canonical form is a fixpoint";
      ++checked;
    }
  }
  EXPECT_EQ(checked, 40 * ProtocolSpecRegistry().size());
}

TEST(ProtocolSpecRoundTrip, ParsedSpecsRoundTrip) {
  for (const char* text : {
           "loloha:g=2,eps_perm=1.0,eps_first=0.5",
           "ololoha:eps_perm=2,eps_first=1",
           "l-osue:eps_perm=1,eps_first=0.4",
           "bbitflip:eps_perm=2,bucket_divisor=4",
           "bbitflip:eps_perm=1,d=16,buckets=64",
           "1bitflip:eps_perm=2",
           "naive-olh:eps_perm=0.125",
           "l-grr:eps_perm=3,eps_first=1.2",
       }) {
    ProtocolSpec spec;
    ASSERT_TRUE(ProtocolSpec::Parse(text, &spec)) << text;
    ProtocolSpec reparsed;
    ASSERT_TRUE(ProtocolSpec::Parse(spec.ToString(), &reparsed))
        << spec.ToString();
    EXPECT_EQ(reparsed, spec) << text;
  }
}

TEST(ProtocolSpecParse, RejectsMalformedAndOutOfRange) {
  for (const char* text : {
           // Structure.
           "", ":eps_perm=1", "l-grr:", "l-grr:eps_perm", "l-grr:=1",
           "l-grr:eps_perm=", "l-grr:eps_perm=1,", "l-grr:,eps_perm=1",
           "l-grr:eps_perm=1,,eps_first=0.5",
           // Names and keys.
           "unknown-protocol", "l-grr:eps=1", "l-grr:budget=1",
           "l-grr:eps_perm=1,eps_perm=2,eps_first=0.5",
           // Numbers.
           "l-grr:eps_perm=abc,eps_first=0.5",
           "l-grr:eps_perm=1x,eps_first=0.5", "ololoha:g=-3,eps_perm=1",
           "ololoha:g=4294967296,eps_perm=1,eps_first=0.5",
           // Budget ranges.
           "l-grr:eps_perm=0,eps_first=0", "l-grr:eps_perm=-1,eps_first=0.5",
           "l-grr:eps_perm=inf,eps_first=0.5",
           "l-sue:eps_perm=1,eps_first=1", "l-sue:eps_perm=1,eps_first=2",
           "l-sue:eps_perm=1,eps_first=0",
           // Extras on the wrong protocol / out of range.
           "l-grr:g=4,eps_perm=1,eps_first=0.5", "loloha:g=1",
           "biloloha:g=3", "1bitflip:d=2,eps_perm=1",
           "1bitflip:eps_perm=1,eps_first=0.5",
           "naive-olh:eps_perm=1,eps_first=0.5",
           "naive-olh:eps_perm=1,buckets=4", "bbitflip:eps_perm=1,buckets=1",
           "bbitflip:eps_perm=1,bucket_divisor=0",
           "l-sue:eps_perm=1,eps_first=0.5,bucket_divisor=4",
       }) {
    ProtocolSpec spec;
    std::string error;
    EXPECT_FALSE(ProtocolSpec::Parse(text, &spec, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(ProtocolSpecRegistryTest, EveryProtocolIdCoveredWithUniqueNames) {
  std::set<std::string> names;
  std::set<ProtocolId> ids;
  for (const ProtocolSpecName& entry : ProtocolSpecRegistry()) {
    EXPECT_TRUE(names.insert(entry.name).second)
        << "duplicate name " << entry.name;
    EXPECT_TRUE(ids.insert(entry.id).second) << "duplicate id";
    // The canonical name resolves back to its id.
    ProtocolId resolved;
    ASSERT_TRUE(ProtocolIdFromSpecName(entry.name, &resolved)) << entry.name;
    EXPECT_EQ(resolved, entry.id) << entry.name;
    EXPECT_STREQ(ProtocolSpecCanonicalName(entry.id), entry.name);
    // Display and paper names exist.
    EXPECT_NE(ProtocolName(entry.id), "?");
  }
  // The registry covers the whole enum: the paper's nine ids + Naive-OLH.
  EXPECT_EQ(ids.size(), 10u);
  EXPECT_TRUE(ids.count(ProtocolId::kNaiveOlh));
}

TEST(ProtocolSpecRegistryTest, EveryRegistryProtocolConstructsAndRuns) {
  const Dataset data = GenerateSyn(120, 12, 2, 0.25, 5);
  for (const ProtocolSpecName& entry : ProtocolSpecRegistry()) {
    const std::string text =
        std::string(entry.name) + ":eps_perm=2" +
        (ProtocolSpec::MustParse(entry.name).IsTwoRound() ? ",eps_first=1"
                                                          : "");
    const ProtocolSpec spec = ProtocolSpec::MustParse(text);
    const auto runner = MakeRunner(spec);
    ASSERT_NE(runner, nullptr) << text;
    const RunResult result = runner->Run(data, 3);
    EXPECT_EQ(result.estimates.size(), data.tau()) << text;
    EXPECT_EQ(result.protocol, spec.DisplayName()) << text;
    EXPECT_GT(result.bins, 0u) << text;
  }
}

TEST(ProtocolSpecResolve, LolohaG) {
  EXPECT_EQ(ResolveLolohaG(ProtocolSpec::MustParse(
                "biloloha:eps_perm=2,eps_first=1")),
            2u);
  EXPECT_EQ(ResolveLolohaG(ProtocolSpec::MustParse(
                "ololoha:g=7,eps_perm=2,eps_first=1")),
            7u);
  const ProtocolSpec optimal =
      ProtocolSpec::MustParse("ololoha:eps_perm=2,eps_first=1");
  EXPECT_EQ(ResolveLolohaG(optimal), OptimalLolohaG(2.0, 1.0));
  // Full parameter derivation goes through the same resolution.
  const LolohaParams params = LolohaParamsForSpec(optimal, 64);
  EXPECT_EQ(params.g, OptimalLolohaG(2.0, 1.0));
  EXPECT_EQ(params.k, 64u);
}

TEST(ProtocolSpecResolve, BucketsAndD) {
  const ProtocolSpec divisor =
      ProtocolSpec::MustParse("bbitflip:eps_perm=2,bucket_divisor=4");
  EXPECT_EQ(ResolveBuckets(divisor, 100), 25u);
  EXPECT_EQ(ResolveD(divisor, 25), 25u);  // d = b by default
  const ProtocolSpec pinned =
      ProtocolSpec::MustParse("bbitflip:eps_perm=2,buckets=8,d=3");
  EXPECT_EQ(ResolveBuckets(pinned, 100), 8u) << "explicit buckets win";
  EXPECT_EQ(ResolveD(pinned, 8), 3u);
  const ProtocolSpec one = ProtocolSpec::MustParse("1bitflip:eps_perm=2");
  EXPECT_EQ(ResolveD(one, 8), 1u);
}

TEST(ProtocolSpecResolve, ApproxVarianceHonorsPinnedExtras) {
  const double n = 10000.0;
  const uint32_t k = 360;
  // Id-only paths agree with ProtocolApproxVariance...
  const ProtocolSpec osue =
      ProtocolSpec::MustParse("l-osue:eps_perm=2,eps_first=1");
  EXPECT_DOUBLE_EQ(ApproxVarianceForSpec(osue, n, k),
                   ProtocolApproxVariance(ProtocolId::kLOsue, n, k, 2.0, 1.0));
  const ProtocolSpec ololoha =
      ProtocolSpec::MustParse("ololoha:eps_perm=2,eps_first=1");
  EXPECT_DOUBLE_EQ(
      ApproxVarianceForSpec(ololoha, n, k),
      ProtocolApproxVariance(ProtocolId::kOLoloha, n, k, 2.0, 1.0));
  // ...while pinned extras change the answer the id alone cannot express.
  const ProtocolSpec pinned_g =
      ProtocolSpec::MustParse("ololoha:g=16,eps_perm=2,eps_first=1");
  EXPECT_DOUBLE_EQ(ApproxVarianceForSpec(pinned_g, n, k),
                   LolohaApproximateVariance(n, 16, 2.0, 1.0));
  const ProtocolSpec bucketed =
      ProtocolSpec::MustParse("bbitflip:eps_perm=2,bucket_divisor=4,d=8");
  EXPECT_DOUBLE_EQ(ApproxVarianceForSpec(bucketed, n, k),
                   DBitFlipApproxVariance(n, k / 4, 8, 2.0));
  EXPECT_NE(ApproxVarianceForSpec(bucketed, n, k),
            ProtocolApproxVariance(ProtocolId::kBBitFlipPm, n, k, 2.0, 0.0));
}

TEST(ProtocolSpecCanonicalized, PinsIdDeterminedExtras) {
  ProtocolSpec spec;
  spec.id = ProtocolId::kBiLoloha;
  spec.eps_perm = 2.0;
  spec.eps_first = 1.0;
  EXPECT_EQ(spec.Canonicalized().g, 2u);
  spec.id = ProtocolId::kOneBitFlipPm;
  EXPECT_EQ(spec.Canonicalized().d, 1u);
  EXPECT_DOUBLE_EQ(spec.Canonicalized().eps_first, 0.0);
  // Canonicalized specs equal their Parse(ToString) round trip.
  const ProtocolSpec canonical = spec.Canonicalized();
  EXPECT_EQ(ProtocolSpec::MustParse(canonical.ToString()), canonical);
}

TEST(ProtocolSpecDisplayName, MatchesPaperLegend) {
  EXPECT_EQ(ProtocolSpec::MustParse("l-sue").DisplayName(), "RAPPOR");
  EXPECT_EQ(ProtocolSpec::MustParse("biloloha").DisplayName(), "BiLOLOHA");
  EXPECT_EQ(ProtocolSpec::MustParse("ololoha").DisplayName(), "OLOLOHA");
  EXPECT_EQ(ProtocolSpec::MustParse("ololoha:g=5,eps_perm=1,eps_first=0.5")
                .DisplayName(),
            "LOLOHA(g=5)");
  EXPECT_EQ(ProtocolSpec::MustParse("bbitflip").DisplayName(), "bBitFlipPM");
  EXPECT_EQ(
      ProtocolSpec::MustParse("bbitflip:eps_perm=1,d=16").DisplayName(),
      "16BitFlipPM");
  EXPECT_EQ(ProtocolSpec::MustParse("naive-olh").DisplayName(), "Naive-OLH");
}

TEST(ProtocolSpecFactories, StringPathMatchesProgrammaticSpecs) {
  // Parsing a spec string and constructing the spec by hand must build
  // the exact same runner: identical estimates bit for bit.
  const Dataset data = GenerateSyn(150, 20, 2, 0.25, 6);
  for (const ProtocolId id : Figure3Protocols(true)) {
    ProtocolSpec spec;
    spec.id = id;
    spec.eps_perm = 2.0;
    spec.eps_first = spec.IsTwoRound() ? 1.0 : 0.0;
    if (!spec.IsTwoRound()) spec.bucket_divisor = 4;
    spec = spec.Canonicalized();
    const ProtocolSpec parsed = ProtocolSpec::MustParse(spec.ToString());
    ASSERT_EQ(parsed, spec) << ProtocolName(id);
    const RunResult programmatic = MakeRunner(spec)->Run(data, 17);
    const RunResult from_string = MakeRunner(parsed)->Run(data, 17);
    EXPECT_EQ(programmatic.estimates, from_string.estimates)
        << ProtocolName(id);
    EXPECT_EQ(programmatic.per_user_epsilon, from_string.per_user_epsilon);
    EXPECT_EQ(programmatic.protocol, from_string.protocol);
  }
  ProtocolSpec naive;
  naive.id = ProtocolId::kNaiveOlh;
  naive.eps_perm = 1.5;
  const RunResult naive_programmatic =
      MakeRunner(naive.Canonicalized())->Run(data, 19);
  const RunResult naive_spec =
      MakeRunner(ProtocolSpec::MustParse("naive-olh:eps_perm=1.5"))
          ->Run(data, 19);
  EXPECT_EQ(naive_programmatic.estimates, naive_spec.estimates);
}

TEST(ProtocolSpecFactories, MakeCollectorServesLolohaAndDBitFlip) {
  for (const char* text : {"biloloha:eps_perm=2,eps_first=1",
                           "ololoha:g=4,eps_perm=2,eps_first=1",
                           "bbitflip:eps_perm=3,bucket_divisor=4",
                           "1bitflip:eps_perm=3,buckets=8"}) {
    const auto collector =
        MakeCollector(ProtocolSpec::MustParse(text), /*k=*/32);
    ASSERT_NE(collector, nullptr) << text;
    EXPECT_EQ(collector->registered_users(), 0u);
    EXPECT_EQ(collector->stats(), CollectorStats{});
  }
}

TEST(ProtocolSpecFigure3, SpecsMirrorTheLegend) {
  const std::vector<ProtocolSpec> with = Figure3Specs(true, 1);
  const std::vector<ProtocolSpec> without = Figure3Specs(false, 4);
  ASSERT_EQ(with.size(), 7u);
  ASSERT_EQ(without.size(), 5u);
  const std::vector<ProtocolId> ids = Figure3Protocols(true);
  for (size_t i = 0; i < with.size(); ++i) {
    EXPECT_EQ(with[i].id, ids[i]);
    ASSERT_TRUE(with[i].Validate());
  }
  for (const ProtocolSpec& spec : without) {
    EXPECT_EQ(spec.bucket_divisor,
              spec.IsTwoRound() ? 1u : 4u);
  }
}

}  // namespace
}  // namespace loloha

// Monitoring preferred web domains — the large-k motivating scenario from
// the paper's introduction (longitudinal privacy linear in k is "excessive
// for large domains, such as Internet domains").
//
// Compares RAPPOR, L-OSUE, BiLOLOHA and OLOLOHA on a k = 5000 domain over
// repeated collections: communication cost per report, worst-case
// longitudinal budget, measured accuracy, and measured privacy spend.
//
//   $ ./build/examples/url_monitoring

#include <cstdio>
#include <vector>

#include "core/theory.h"
#include "data/generators.h"
#include "sim/metrics.h"
#include "sim/runner.h"
#include "util/table.h"

int main() {
  using namespace loloha;

  // Zipf-distributed domain popularity (web traffic is heavy-tailed);
  // users occasionally change their preferred domain.
  const uint32_t k = 5000;
  const Dataset data = GenerateZipf(/*n=*/4000, k, /*tau=*/6, /*s=*/1.1,
                                    /*p_change=*/0.3, /*seed=*/17);

  const double eps_perm = 2.0;
  const double eps_first = 1.0;

  TextTable table({"protocol", "bits/report", "worst-case budget",
                   "measured eps_avg", "MSE_avg"});
  for (const ProtocolId id :
       {ProtocolId::kRappor, ProtocolId::kLOsue, ProtocolId::kBiLoloha,
        ProtocolId::kOLoloha}) {
    const RunResult result =
        MakeRunner(id, eps_perm, eps_first)->Run(data, 3);
    const ProtocolCharacteristics chars =
        Characteristics(id, k, k, 1, eps_perm, eps_first);
    table.AddRow({result.protocol,
                  FormatDouble(result.comm_bits_per_report, 6),
                  FormatDouble(chars.worst_case_budget, 6),
                  FormatDouble(EpsAvg(result.per_user_epsilon), 4),
                  FormatDouble(MseAvg(data, result.estimates), 3)});
  }

  std::printf(
      "Web-domain monitoring: k=%u domains, n=%u users, tau=%u "
      "collections, eps_inf=%g, eps1=%g\n\n%s\n",
      k, data.n(), data.tau(), eps_perm, eps_first,
      table.ToString().c_str());
  std::printf(
      "Takeaway: a RAPPOR user ships %u bits per report and risks "
      "k*eps = %g of budget;\na BiLOLOHA user ships 1 bit and never "
      "exceeds 2*eps = %g, at comparable accuracy.\n",
      k, k * eps_perm, 2 * eps_perm);
  return 0;
}

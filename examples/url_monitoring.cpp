// Monitoring preferred web domains — the large-k motivating scenario from
// the paper's introduction (longitudinal privacy linear in k is "excessive
// for large domains, such as Internet domains").
//
// Part 1 compares RAPPOR, L-OSUE, BiLOLOHA and OLOLOHA on a k = 5000
// domain over repeated collections: communication cost per report,
// worst-case longitudinal budget, measured accuracy, and measured privacy
// spend. Part 2 then runs the winning configuration through the
// production server surface: wire-encoded report batches ingested with
// LolohaCollector::IngestBatch (bulk decode + sharded SIMD support
// counting) and watched by a TrendMonitor.
//
//   $ ./build/examples/url_monitoring

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/loloha.h"
#include "core/theory.h"
#include "data/generators.h"
#include "server/collector.h"
#include "server/monitor.h"
#include "sim/metrics.h"
#include "sim/runner.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "wire/encoding.h"

int main() {
  using namespace loloha;

  // Zipf-distributed domain popularity (web traffic is heavy-tailed);
  // users occasionally change their preferred domain.
  const uint32_t k = 5000;
  const Dataset data = GenerateZipf(/*n=*/4000, k, /*tau=*/6, /*s=*/1.1,
                                    /*p_change=*/0.3, /*seed=*/17);

  const double eps_perm = 2.0;
  const double eps_first = 1.0;

  // Every contender is one declarative spec string; the factory resolves
  // names, budgets, and protocol extras.
  const std::string budgets = ":eps_perm=2,eps_first=1";
  TextTable table({"protocol", "bits/report", "worst-case budget",
                   "measured eps_avg", "MSE_avg"});
  for (const std::string& name :
       {std::string("l-sue"), std::string("l-osue"), std::string("biloloha"),
        std::string("ololoha")}) {
    const ProtocolSpec spec = ProtocolSpec::MustParse(name + budgets);
    const RunResult result = MakeRunner(spec)->Run(data, 3);
    const ProtocolCharacteristics chars =
        Characteristics(spec.id, k, k, 1, spec.eps_perm, spec.eps_first);
    table.AddRow({result.protocol,
                  FormatDouble(result.comm_bits_per_report, 6),
                  FormatDouble(chars.worst_case_budget, 6),
                  FormatDouble(EpsAvg(result.per_user_epsilon), 4),
                  FormatDouble(MseAvg(data, result.estimates), 3)});
  }

  std::printf(
      "Web-domain monitoring: k=%u domains, n=%u users, tau=%u "
      "collections, eps_inf=%g, eps1=%g\n\n%s\n",
      k, data.n(), data.tau(), eps_perm, eps_first,
      table.ToString().c_str());
  std::printf(
      "Takeaway: a RAPPOR user ships %u bits per report and risks "
      "k*eps = %g of budget;\na BiLOLOHA user ships 1 bit and never "
      "exceeds 2*eps = %g, at comparable accuracy.\n\n",
      k, k * eps_perm, 2 * eps_perm);

  // -------------------------------------------------------------------
  // Part 2 — the same workload through the deployment surface: batched
  // wire ingestion + trend monitoring.
  // -------------------------------------------------------------------
  const ProtocolSpec winner = ProtocolSpec::MustParse("biloloha" + budgets);
  const LolohaParams params = LolohaParamsForSpec(winner, k);
  Rng rng(23);
  ThreadPool pool(ThreadPool::HardwareThreads());
  CollectorOptions server_options;
  server_options.pool = &pool;
  const std::unique_ptr<Collector> collector =
      MakeCollector(winner, k, server_options);

  std::vector<LolohaClient> clients;
  clients.reserve(data.n());
  std::vector<Message> hellos;
  hellos.reserve(data.n());
  for (uint32_t u = 0; u < data.n(); ++u) {
    clients.emplace_back(params, rng);
    hellos.push_back(Message{u, EncodeLolohaHello(clients[u].hash())});
  }
  collector->IngestBatch(hellos);

  TrendMonitor monitor(k, data.n(), params.EstimatorFirst(), params.irr,
                       /*smoothing=*/0.4, /*z_threshold=*/5.0);
  std::vector<std::vector<double>> estimates;
  double ingest_seconds = 0.0;
  uint64_t ingested = 0;
  for (uint32_t t = 0; t < data.tau(); ++t) {
    std::vector<Message> batch;
    batch.reserve(data.n());
    const uint32_t* values = data.StepValuesData(t);
    for (uint32_t u = 0; u < data.n(); ++u) {
      batch.push_back(
          Message{u, EncodeLolohaReport(clients[u].Report(values[u], rng))});
    }
    const auto start = std::chrono::steady_clock::now();
    ingested += collector->IngestBatch(batch);
    estimates.push_back(collector->EndStep());
    ingest_seconds += std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  }
  const std::vector<TrendAlert> alerts =
      monitor.Observe(std::span<const std::vector<double>>(estimates));
  std::printf(
      "Server ingestion (BiLOLOHA, batched): %llu reports at %.0f "
      "reports/s\n(k=%u support scans through the SIMD kernels on %u "
      "threads), %zu trend alerts at z >= 5.\n",
      static_cast<unsigned long long>(ingested),
      static_cast<double>(ingested) / ingest_seconds, k,
      pool.num_threads(), alerts.size());
  return 0;
}

// Heavy-hitter discovery over a huge domain — finding the most common
// typed emojis / visited URLs without enumerating the domain (the
// application the paper cites frequency oracles for; cf. Apple's emoji
// deployment).
//
// The domain here is 2^20 (~1M values), far too large for a direct
// frequency oracle sweep; PEM narrows it down level by level using only
// one eps-LDP report per user.
//
//   $ ./build/examples/heavy_hitters

#include <cstdio>
#include <vector>

#include "hh/pem.h"
#include "util/rng.h"

int main() {
  using namespace loloha;

  PemConfig config;
  config.domain_bits = 20;
  config.levels = 4;
  config.epsilon = 3.0;
  config.threshold = 0.015;
  config.max_candidates = 48;

  // Ground truth: five "popular emojis" with 38% of the traffic, the rest
  // uniform background over the million-value domain.
  const struct {
    uint64_t value;
    double mass;
  } kPlanted[] = {{0x9F602, 0.14},   // grinning face, say
                  {0x2764F, 0.10},   // heart
                  {0x9F44D, 0.07},   // thumbs up
                  {0x9F923, 0.04},   // rofl
                  {0x9F614, 0.03}};  // pensive

  constexpr uint32_t kUsers = 400000;
  Rng rng(2023);
  PemServer server(config);
  for (uint32_t u = 0; u < kUsers; ++u) {
    uint64_t value = 0;
    double roll = rng.UniformDouble();
    bool assigned = false;
    for (const auto& planted : kPlanted) {
      if (roll < planted.mass) {
        value = planted.value;
        assigned = true;
        break;
      }
      roll -= planted.mass;
    }
    if (!assigned) {
      value = rng.UniformInt(uint64_t{1} << config.domain_bits);
    }
    const PemClient client(config, u);
    server.Accumulate(client.Report(value, rng));
  }

  const std::vector<PemHitter> hitters = server.Identify();
  std::printf(
      "PEM over a 2^%u domain, %u users, eps=%g, %u levels:\n\n"
      "  %-10s %-10s %s\n",
      config.domain_bits, kUsers, config.epsilon, config.levels, "value",
      "estimate", "truth");
  for (const PemHitter& hitter : hitters) {
    double truth = 0.0;
    for (const auto& planted : kPlanted) {
      if (planted.value == hitter.value) truth = planted.mass;
    }
    std::printf("  0x%-8llx %-10.4f %.4f%s\n",
                static_cast<unsigned long long>(hitter.value),
                hitter.estimate, truth,
                truth == 0.0 ? "  (false positive)" : "");
  }
  std::printf("\nplanted: 5 heavy values; found: %zu\n", hitters.size());
  return hitters.size() >= 4 ? 0 : 1;
}

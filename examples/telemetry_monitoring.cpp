// Telemetry monitoring, end to end: the dBitFlipPM deployment scenario the
// paper's Syn dataset models (collecting app-usage minutes every 6 hours),
// but run through the full production surface of this library —
//
//   clients  ->  wire encoding  ->  (shuffler)  ->  batched collector  ->
//   estimates + trend monitor + confidence intervals + privacy accounting.
//
// Ingestion uses the batched server path: each collection step arrives as
// one shuffled span of wire messages fed to LolohaCollector::IngestBatch,
// which decodes in bulk and runs the support scans sharded over a thread
// pool through the SIMD kernels — byte-identical to per-report handling,
// several times the throughput.
//
//   $ ./build/examples/telemetry_monitoring
//   $ ./build/examples/telemetry_monitoring --protocol=biloloha:eps_perm=1,eps_first=0.4

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/inference.h"
#include "core/loloha.h"
#include "core/loloha_params.h"
#include "data/generators.h"
#include "server/collector.h"
#include "server/monitor.h"
#include "shuffle/amplification.h"
#include "sim/metrics.h"
#include "sim/protocol_spec.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "wire/encoding.h"

int main(int argc, char** argv) {
  using namespace loloha;

  // The Syn workload: k = 360 usage buckets (minutes in 6h), users change
  // behaviour with probability 0.25 between collections.
  const Dataset data = GenerateSyn(/*n=*/5000, /*k=*/360, /*tau=*/8,
                                   /*p_change=*/0.25, /*seed=*/7);

  // Budget: ε∞ = 1.5 per hash cell, first report at ε1 = 0.6. Any LOLOHA
  // spec works here; the server side below is built from the same spec.
  const CommandLine cli(argc, argv);
  const ProtocolSpec spec = ProtocolSpec::MustParse(
      cli.GetString("protocol", "ololoha:eps_perm=1.5,eps_first=0.6"));
  if (!spec.IsLolohaVariant()) {
    std::fprintf(stderr,
                 "--protocol: this deployment runs the LOLOHA collector; "
                 "got '%s'\n",
                 spec.ToString().c_str());
    return 2;
  }
  const double eps_perm = spec.eps_perm;
  const LolohaParams params = LolohaParamsForSpec(spec, data.k());
  std::printf("protocol: %s g=%u, report size %zu bytes on the wire\n",
              spec.DisplayName().c_str(), params.g,
              EncodeLolohaReport(0).size());

  Rng rng(99);
  std::vector<LolohaClient> clients;
  clients.reserve(data.n());

  // The collector borrows a process-wide pool for its batched ingestion;
  // the spec string is all MakeCollector needs besides the domain size.
  ThreadPool pool(ThreadPool::HardwareThreads());
  CollectorOptions server_options;
  server_options.pool = &pool;
  const std::unique_ptr<Collector> collector =
      MakeCollector(spec, data.k(), server_options);

  // Registration phase: every client's hello ships as one batch.
  std::vector<Message> hellos;
  hellos.reserve(data.n());
  for (uint32_t u = 0; u < data.n(); ++u) {
    clients.emplace_back(params, rng);
    hellos.push_back(Message{u, EncodeLolohaHello(clients[u].hash())});
  }
  if (collector->IngestBatch(hellos) != data.n()) {
    std::fprintf(stderr, "hello batch partially rejected\n");
    return 1;
  }

  // Collection phase. Reports pass through a shuffler: identifiers are
  // needed for LOLOHA's per-user hash, so the shuffle here models batch
  // *timing* anonymization; the privacy-amplification figure below is
  // what a fully identifier-free BiLOLOHA PRR batch would enjoy.
  std::vector<std::vector<double>> estimates;
  for (uint32_t t = 0; t < data.tau(); ++t) {
    std::vector<Message> batch;
    batch.reserve(data.n());
    const uint32_t* values = data.StepValuesData(t);
    for (uint32_t u = 0; u < data.n(); ++u) {
      batch.push_back(
          Message{u, EncodeLolohaReport(clients[u].Report(values[u], rng))});
    }
    ShuffleReports(batch, rng);
    collector->IngestBatch(batch);
    estimates.push_back(collector->EndStep());
  }

  // Trend monitoring over the whole series at once (batched Observe):
  // which buckets moved beyond 4 sigma of the estimator noise?
  TrendMonitor monitor(data.k(), data.n(), params.EstimatorFirst(),
                       params.irr, /*smoothing=*/0.4, /*z_threshold=*/4.0);
  const std::vector<TrendAlert> alerts =
      monitor.Observe(std::span<const std::vector<double>>(estimates));
  std::printf("trend monitor: %zu alerts over %u steps (z >= 4)\n",
              alerts.size(), data.tau());

  // Accuracy: Eq. (7) + a 95% CI on the most popular bucket.
  const double mse = MseAvg(data, estimates);
  const std::vector<double> truth = data.TrueFrequenciesAt(data.tau() - 1);
  uint32_t mode = 0;
  for (uint32_t v = 1; v < data.k(); ++v) {
    if (truth[v] > truth[mode]) mode = v;
  }
  const double est = estimates.back()[mode];
  const ConfidenceInterval ci = ChainedEstimateCi(
      est, data.n(), params.EstimatorFirst(), params.irr, 0.95);
  std::printf("MSE_avg over %u steps: %.3e\n", data.tau(), mse);
  std::printf("bucket %u: true %.4f, estimate %.4f, 95%% CI [%.4f, %.4f]\n",
              mode, truth[mode], est, ci.lo, ci.hi);

  // Privacy: per-user longitudinal spend vs. the worst case, plus what
  // shuffling would amplify a single PRR batch to.
  double spent = 0.0;
  for (const LolohaClient& client : clients) {
    spent += eps_perm * client.distinct_memos();
  }
  std::printf("avg longitudinal spend: %.3f (worst case %g)\n",
              spent / data.n(), params.WorstCaseLongitudinalEpsilon());
  std::printf("shuffle amplification of one eps=%.2f batch over n=%u: "
              "central eps = %.4f (delta = 1e-6)\n",
              eps_perm, data.n(),
              AmplifiedEpsilon(eps_perm, data.n(), 1e-6));

  const CollectorStats& stats = collector->stats();
  std::printf("collector: %llu hellos, %llu reports, %llu rejected\n",
              static_cast<unsigned long long>(stats.hellos_accepted),
              static_cast<unsigned long long>(stats.reports_accepted),
              static_cast<unsigned long long>(stats.rejected_malformed +
                                              stats.rejected_duplicate +
                                              stats.rejected_unknown_user));
  return 0;
}

// Multidimensional longitudinal survey: a health-style panel where each
// user reports three attributes every week (activity level, sleep bucket,
// mood) and the server wants one evolving histogram per attribute.
//
// Demonstrates the two budget strategies of src/multidim (SPL: split the
// budget across attributes; SMP: each user reports one sampled attribute
// at full budget) and measures their accuracy head to head.
//
//   $ ./build/examples/multidim_survey

#include <cstdio>
#include <vector>

#include "multidim/multidim.h"
#include "util/alias_sampler.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace loloha;

// Runs `tau` collection steps under one strategy and returns the average
// MSE across attributes and steps.
double RunStrategy(MultidimStrategy strategy, uint32_t n, uint32_t tau,
                   uint64_t seed) {
  MultidimConfig config;
  config.domain_sizes = {5, 8, 7};  // activity, sleep, mood
  config.eps_perm = 3.0;
  config.eps_first = 1.2;
  config.strategy = strategy;
  config.g = 2;  // BiLOLOHA per attribute: strongest longitudinal privacy

  Rng rng(seed);
  std::vector<MultidimLolohaClient> clients;
  clients.reserve(n);
  for (uint32_t u = 0; u < n; ++u) clients.emplace_back(config, rng);

  // Skewed per-attribute marginals.
  const AliasSampler activity({0.4, 0.3, 0.15, 0.1, 0.05});
  const AliasSampler sleep({0.05, 0.1, 0.2, 0.3, 0.2, 0.1, 0.03, 0.02});
  const AliasSampler mood({0.1, 0.15, 0.3, 0.2, 0.1, 0.1, 0.05});

  MultidimLolohaServer server(config);
  std::vector<std::vector<uint32_t>> values(
      n, std::vector<uint32_t>(config.domain_sizes.size()));
  double mse_total = 0.0;
  uint32_t mse_terms = 0;
  for (uint32_t t = 0; t < tau; ++t) {
    // 20% of users re-draw each attribute per step.
    for (uint32_t u = 0; u < n; ++u) {
      if (t == 0 || rng.Bernoulli(0.2)) values[u][0] = activity.Sample(rng);
      if (t == 0 || rng.Bernoulli(0.2)) values[u][1] = sleep.Sample(rng);
      if (t == 0 || rng.Bernoulli(0.2)) values[u][2] = mood.Sample(rng);
    }
    server.BeginStep();
    for (uint32_t u = 0; u < n; ++u) {
      server.Accumulate(clients[u], clients[u].Report(values[u], rng));
    }
    const auto estimates = server.EstimateStep();

    for (uint32_t j = 0; j < config.domain_sizes.size(); ++j) {
      if (estimates[j].empty()) continue;
      std::vector<uint32_t> column(n);
      for (uint32_t u = 0; u < n; ++u) column[u] = values[u][j];
      const std::vector<double> truth =
          TrueFrequencies(column, config.domain_sizes[j]);
      mse_total += MeanSquaredError(truth, estimates[j]);
      ++mse_terms;
    }
  }
  return mse_total / mse_terms;
}

}  // namespace

int main() {
  constexpr uint32_t kUsers = 30000;
  constexpr uint32_t kSteps = 5;

  const double mse_spl =
      RunStrategy(MultidimStrategy::kSplit, kUsers, kSteps, 1);
  const double mse_smp =
      RunStrategy(MultidimStrategy::kSample, kUsers, kSteps, 2);

  TextTable table({"strategy", "per-attr budget", "users per attr",
                   "MSE_avg"});
  table.AddRow({"SPL (split)", "eps/3", std::to_string(kUsers),
                FormatDouble(mse_spl, 4)});
  table.AddRow({"SMP (sample)", "eps", std::to_string(kUsers / 3),
                FormatDouble(mse_smp, 4)});
  std::printf(
      "Multidimensional survey: 3 attributes, n=%u, tau=%u, eps_inf=3.0, "
      "eps1=1.2, BiLOLOHA per attribute\n\n%s\nSMP wins: LDP noise grows "
      "super-linearly as eps shrinks, while splitting users only scales "
      "variance linearly.\n",
      kUsers, kSteps, table.ToString().c_str());
  return mse_smp < mse_spl ? 0 : 1;
}

// Quickstart: one LOLOHA client fleet monitored over a handful of
// collection steps, end to end through the public API.
//
//   $ ./build/examples/quickstart
//   $ ./build/examples/quickstart --protocol=biloloha:eps_perm=2,eps_first=1
//   $ ./build/examples/quickstart --list-protocols
//
// The protocol comes from a declarative ProtocolSpec string (the same
// grammar every bench accepts): OLOLOHA picks the variance-optimal hash
// range g (Eq. 6), "loloha:g=2" / "biloloha" fixes g = 2 for the
// strongest longitudinal protection. Walks through: parameter selection,
// the client loop (Algorithm 1), server aggregation (Algorithm 2), and
// the privacy accounting of Definition 3.2.

#include <cstdio>
#include <vector>

#include "core/loloha.h"
#include "core/loloha_params.h"
#include "sim/experiment.h"
#include "sim/protocol_spec.h"
#include "util/cli.h"
#include "util/histogram.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace loloha;

  // Domain: k = 32 categories (say, app screens); budgets ε∞ = 2, ε1 = 1.
  constexpr uint32_t kDomain = 32;
  const CommandLine cli(argc, argv);
  if (cli.HasFlag("list-protocols")) {
    PrintProtocolRegistry(stdout);
    return 0;
  }
  ProtocolSpec spec;
  std::string error;
  if (!ProtocolSpec::Parse(
          cli.GetString("protocol", "ololoha:eps_perm=2,eps_first=1"), &spec,
          &error)) {
    std::fprintf(stderr, "--protocol: %s\n", error.c_str());
    return 2;
  }
  if (!spec.IsLolohaVariant()) {
    std::fprintf(stderr,
                 "--protocol: this example walks the LOLOHA client/server "
                 "loop; got '%s'\n",
                 spec.ToString().c_str());
    return 2;
  }
  const double eps_perm = spec.eps_perm;

  const LolohaParams params = LolohaParamsForSpec(spec, kDomain);
  std::printf("%s (spec \"%s\"): g=%u  eps_irr=%.4f  (worst-case "
              "longitudinal budget g*eps_inf = %.2f)\n",
              spec.DisplayName().c_str(), spec.ToString().c_str(), params.g,
              params.eps_irr, params.WorstCaseLongitudinalEpsilon());

  // A fleet of n users; user u's true value drifts over time.
  constexpr uint32_t kUsers = 20000;
  constexpr uint32_t kSteps = 5;
  Rng rng(2023);

  std::vector<LolohaClient> clients;
  clients.reserve(kUsers);
  for (uint32_t u = 0; u < kUsers; ++u) clients.emplace_back(params, rng);

  LolohaServer server(params);
  std::vector<uint32_t> values(kUsers);
  for (uint32_t u = 0; u < kUsers; ++u) {
    values[u] = static_cast<uint32_t>(rng.UniformInt(8));  // concentrated
  }

  for (uint32_t t = 0; t < kSteps; ++t) {
    // Values evolve: 10% of users move to a uniformly random category.
    for (uint32_t u = 0; u < kUsers; ++u) {
      if (rng.Bernoulli(0.1)) {
        values[u] = static_cast<uint32_t>(rng.UniformInt(kDomain));
      }
    }

    server.BeginStep();
    for (uint32_t u = 0; u < kUsers; ++u) {
      const uint32_t report = clients[u].Report(values[u], rng);
      server.Accumulate(clients[u].hash(), report);
    }
    const std::vector<double> estimate = server.EstimateStep();
    const std::vector<double> truth = TrueFrequencies(values, kDomain);

    std::printf("step %u: MSE=%.3e  (f(0)=%.4f est=%.4f)\n", t,
                MeanSquaredError(truth, estimate), truth[0], estimate[0]);
  }

  // Privacy accounting: each user spent eps_inf per distinct hash cell.
  double eps_sum = 0.0;
  for (const LolohaClient& client : clients) {
    eps_sum += eps_perm * client.distinct_memos();
  }
  std::printf("average longitudinal loss after %u steps: %.3f "
              "(cap %.3f)\n",
              kSteps, eps_sum / kUsers,
              params.WorstCaseLongitudinalEpsilon());
  return 0;
}

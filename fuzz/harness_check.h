// Shared assertion macro for the fuzz harnesses (fuzz/fuzz_*.cc).
//
// The harnesses run in three build modes — libFuzzer (clang
// -fsanitize=fuzzer), standalone corpus replay (fuzz/replay_main.cc on
// any toolchain), and under whatever sanitizers the job adds — so the
// oracle check must not depend on NDEBUG the way assert() does.
// FUZZ_CHECK always evaluates, always aborts on failure, and prints the
// failing condition with its location so a crasher artifact is
// self-describing.

#ifndef LOLOHA_FUZZ_HARNESS_CHECK_H_
#define LOLOHA_FUZZ_HARNESS_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define FUZZ_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "FUZZ_CHECK failed: %s at %s:%d\n", #cond, \
                   __FILE__, __LINE__);                               \
      std::abort();                                                   \
    }                                                                 \
  } while (0)

#define FUZZ_CHECK_MSG(cond, msg)                                        \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "FUZZ_CHECK failed: %s (%s) at %s:%d\n",      \
                   #cond, (msg), __FILE__, __LINE__);                    \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#endif  // LOLOHA_FUZZ_HARNESS_CHECK_H_

// Snapshot-image harness: ParseSnapshot consumes mmap'd bytes from disk
// — a crashed writer, a truncated copy, or a hostile file must never
// crash the restore path ("never crashes on arbitrary input" is the
// documented contract in server/store/snapshot_file.h).
//
// Properties checked on every input:
//   * No crash / sanitizer report on arbitrary bytes.
//   * Rejections are diagnosed: a failed parse always sets *error.
//   * Round trip: an accepted image re-serializes to an image that
//     parses back to the identical SnapshotData — what restore loads is
//     exactly what a re-checkpoint would write.

#include <cstddef>
#include <cstdint>
#include <string>

#include "fuzz/harness_check.h"
#include "server/store/snapshot_file.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace loloha;
  SnapshotData parsed;
  std::string error;
  if (!ParseSnapshot(data, size, &parsed, &error)) {
    FUZZ_CHECK_MSG(!error.empty(), "rejection without a diagnostic");
    return 0;
  }
  const std::string bytes = SerializeSnapshot(parsed);
  SnapshotData reparsed;
  error.clear();
  FUZZ_CHECK_MSG(ParseSnapshot(reinterpret_cast<const uint8_t*>(bytes.data()),
                               bytes.size(), &reparsed, &error),
                 error.c_str());
  FUZZ_CHECK(reparsed == parsed);
  return 0;
}

// Experiment-plan harness: plan files are user-authored text
// (`loloha_experiments --plan=...`), so the [section]/key=value parser
// sees whatever an operator — or a corrupted checkout — hands it.
//
// Properties checked on every input:
//   * No crash / sanitizer report on arbitrary text.
//   * Rejections are diagnosed: a failed parse always sets *error.
//   * Canonicalization round trip (the documented contract in
//     sim/experiment.h): for any accepted plan that validates,
//     ParseExperimentPlan(plan.ToString()) reproduces the plan exactly.
//     This is the invariant the distributed path leans on — the slice
//     fingerprint is the canonical text, so ToString drift would make
//     honest partials un-mergeable.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "fuzz/harness_check.h"
#include "sim/experiment.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace loloha;
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  ExperimentPlan plan;
  std::string error;
  if (!ParseExperimentPlan(text, &plan, &error)) {
    FUZZ_CHECK_MSG(!error.empty(), "rejection without a diagnostic");
    return 0;
  }
  if (!plan.Validate(&error)) {
    FUZZ_CHECK_MSG(!error.empty(), "validation failure without a diagnostic");
    return 0;
  }
  const std::string canonical = plan.ToString();
  ExperimentPlan reparsed;
  error.clear();
  FUZZ_CHECK_MSG(ParseExperimentPlan(canonical, &reparsed, &error),
                 error.c_str());
  FUZZ_CHECK(reparsed == plan);
  // Canonical text is a fixed point: re-canonicalizing changes nothing.
  FUZZ_CHECK(reparsed.ToString() == canonical);
  return 0;
}

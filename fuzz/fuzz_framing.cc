// FrameParser harness: the TCP framing layer is the outermost trust
// boundary — every byte comes straight off a socket.
//
// Properties checked on every input:
//   * No crash / sanitizer report on arbitrary bytes (the baseline).
//   * Chunking independence: feeding the whole buffer at once and
//     feeding it one byte at a time must extract the identical frame
//     sequence and end in the identical terminal state — TCP segmenting
//     must never change what the server decodes.
//   * Sticky error: after kError, every further Next() returns kError.
//   * A small-cap parser (64-byte payload limit) is run over the same
//     bytes so the oversize-length rejection path is exercised even on
//     inputs too short to overflow the default 1 MiB cap.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "fuzz/harness_check.h"
#include "server/net/framing.h"

namespace loloha {
namespace {

struct Drained {
  std::vector<Frame> frames;
  FrameStatus terminal = FrameStatus::kNeedMore;
  size_t buffered = 0;
};

void DrainReady(FrameParser* parser, Drained* out) {
  Frame frame;
  FrameStatus status;
  while ((status = parser->Next(&frame)) == FrameStatus::kFrame) {
    out->frames.push_back(frame);
  }
  out->terminal = status;
}

Drained RunWholeBuffer(const uint8_t* data, size_t size,
                       uint32_t max_payload) {
  FrameParser parser(max_payload);
  parser.Feed(reinterpret_cast<const char*>(data), size);
  Drained out;
  DrainReady(&parser, &out);
  out.buffered = parser.buffered();
  return out;
}

Drained RunByteAtATime(const uint8_t* data, size_t size,
                       uint32_t max_payload) {
  FrameParser parser(max_payload);
  Drained out;
  for (size_t i = 0; i < size; ++i) {
    parser.Feed(reinterpret_cast<const char*>(data) + i, 1);
    DrainReady(&parser, &out);
  }
  if (size == 0) DrainReady(&parser, &out);
  out.buffered = parser.buffered();
  return out;
}

bool FramesEqual(const Frame& a, const Frame& b) {
  if (a.type != b.type) return false;
  if (a.message.user_id != b.message.user_id) return false;
  if (a.message.bytes != b.message.bytes) return false;
  // kEstimates payloads are raw IEEE-754 bit patterns; compare as bits
  // so a NaN payload does not defeat the oracle.
  if (a.estimates.size() != b.estimates.size()) return false;
  return a.estimates.empty() ||
         std::memcmp(a.estimates.data(), b.estimates.data(),
                     a.estimates.size() * sizeof(double)) == 0;
}

void CheckEquivalent(const Drained& whole, const Drained& stream) {
  FUZZ_CHECK(whole.frames.size() == stream.frames.size());
  for (size_t i = 0; i < whole.frames.size(); ++i) {
    FUZZ_CHECK(FramesEqual(whole.frames[i], stream.frames[i]));
  }
  FUZZ_CHECK(whole.terminal == stream.terminal);
  // buffered() is only meaningful in the kNeedMore state (truncated-
  // frame detection at EOF); after kError, Feed drops bytes, so the
  // residual count legitimately depends on when the error was hit.
  if (whole.terminal == FrameStatus::kNeedMore) {
    FUZZ_CHECK(whole.buffered == stream.buffered);
  }
}

void CheckStickyError(const uint8_t* data, size_t size,
                      uint32_t max_payload) {
  FrameParser parser(max_payload);
  parser.Feed(reinterpret_cast<const char*>(data), size);
  Frame frame;
  FrameStatus status;
  while ((status = parser.Next(&frame)) == FrameStatus::kFrame) {
  }
  if (status == FrameStatus::kError) {
    FUZZ_CHECK(parser.Next(&frame) == FrameStatus::kError);
    // Even fresh bytes cannot resynchronize a broken stream.
    const char valid_barrier[5] = {0, 0, 0, 0, 2};
    parser.Feed(valid_barrier, sizeof(valid_barrier));
    FUZZ_CHECK(parser.Next(&frame) == FrameStatus::kError);
  }
}

}  // namespace
}  // namespace loloha

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace loloha;
  for (uint32_t max_payload : {kDefaultMaxFramePayload, uint32_t{64}}) {
    Drained whole = RunWholeBuffer(data, size, max_payload);
    Drained stream = RunByteAtATime(data, size, max_payload);
    CheckEquivalent(whole, stream);
    CheckStickyError(data, size, max_payload);
  }
  return 0;
}

// Standalone corpus-replay driver.
//
// On toolchains without libFuzzer (gcc, or clang without the fuzzer
// runtime) each harness links against this main instead of
// -fsanitize=fuzzer, turning it into a deterministic corpus replayer:
// every file argument — and every regular file under every directory
// argument, in sorted order — is fed to LLVMFuzzerTestOneInput once.
// The `fuzz.replay.<target>` ctest legs run these over the checked-in
// corpora on every build, so the harness oracles (chunking
// independence, round trips, diagnosed rejections) are enforced by the
// ordinary ASan/UBSan CI jobs, not just by nightly fuzzing.
//
// Exit status: 0 after replaying every input (a harness failure aborts,
// which ctest reports); 1 for a missing path (a corpus wiring bug).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

namespace fs = std::filesystem;

bool ReplayFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "replay: cannot read %s\n", path.c_str());
    return false;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const fs::path arg(argv[i]);
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
      for (const auto& entry : fs::directory_iterator(arg)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else if (fs::is_regular_file(arg, ec)) {
      inputs.push_back(arg);
    } else {
      std::fprintf(stderr, "replay: no such file or directory: %s\n",
                   argv[i]);
      return 1;
    }
  }
  // directory_iterator order is unspecified; sort for a deterministic
  // replay sequence (and stable failure ordering).
  std::sort(inputs.begin(), inputs.end());
  size_t replayed = 0;
  for (const fs::path& path : inputs) {
    if (!ReplayFile(path)) return 1;
    ++replayed;
  }
  std::printf("replayed %zu inputs\n", replayed);
  return 0;
}

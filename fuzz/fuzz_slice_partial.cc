// Slice-partial harness: partials cross machine boundaries in the
// distributed path (written on worker A, merged on machine B), so both
// on-disk encodings — CSV body + provenance sidecar, and the
// self-contained JSON document — are untrusted at merge time.
//
// Input convention (mirrored by the seed corpus and fuzz/make_corpus.cc):
// the first byte selects the decoder — 'J' runs ParseSlicePartialJson on
// the remainder; anything else runs ParseSlicePartialCsv with the
// remainder split at its first NUL into (csv bytes, sidecar json). This
// keeps one coverage-guided corpus exploring both parsers and, more
// importantly, the cross-checks *between* the CSV header and its
// sidecar.
//
// Properties checked on every input:
//   * No crash / sanitizer report on arbitrary bytes in either decoder.
//   * Rejections are diagnosed: a failed parse always sets *error.
//   * CSV round trip: an accepted partial re-emitted by SlicePartialCsv
//     re-parses (against the original sidecar) to the identical partial.
//   * CombineSlicePartials never crashes on a single accepted partial
//     (it may legitimately refuse, e.g. an incomplete owned-unit set).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fuzz/harness_check.h"
#include "sim/slice.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace loloha;
  if (size == 0) return 0;
  const std::string_view rest(reinterpret_cast<const char*>(data) + 1,
                              size - 1);
  SlicePartial partial;
  std::string error;
  if (data[0] == 'J') {
    if (!ParseSlicePartialJson(rest, "fuzz.json", &partial, &error)) {
      FUZZ_CHECK_MSG(!error.empty(), "rejection without a diagnostic");
      return 0;
    }
  } else {
    const size_t nul = rest.find('\0');
    const std::string_view csv = rest.substr(0, nul);
    const std::string_view sidecar =
        nul == std::string_view::npos ? std::string_view()
                                      : rest.substr(nul + 1);
    if (!ParseSlicePartialCsv(csv, sidecar, "fuzz.csv", "fuzz.csv.meta.json",
                              &partial, &error)) {
      FUZZ_CHECK_MSG(!error.empty(), "rejection without a diagnostic");
      return 0;
    }
    // Re-emitting an accepted partial must survive a re-parse against
    // the same sidecar: the writer and the reader agree on the format.
    SlicePartial reread;
    error.clear();
    FUZZ_CHECK_MSG(
        ParseSlicePartialCsv(SlicePartialCsv(partial), sidecar, "fuzz.csv",
                             "fuzz.csv.meta.json", &reread, &error),
        error.c_str());
    FUZZ_CHECK(reread == partial);
  }
  // Merge-path smoke: must refuse-or-accept, never crash.
  std::vector<SliceUnit> units;
  (void)CombineSlicePartials({partial}, &units, &error);
  return 0;
}

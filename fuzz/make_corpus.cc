// Deterministic seed-corpus generator for the binary fuzz targets.
//
// The text corpora (plan, spec) are authored by hand under
// fuzz/corpus/{plan,spec}/ — they are human-readable grammars. The
// binary formats (frames, snapshot images, slice partials) are
// generated here from the real encoders so the checked-in seeds are
// valid-by-construction and stay regenerable when a format version
// bumps:
//
//   cmake --build build --target loloha_make_corpus
//   ./build/fuzz/loloha_make_corpus fuzz/corpus
//
// Output is a pure function of this source file (no clocks, no RNG
// seeds beyond literals), so regeneration is diff-clean unless a wire
// format actually changed.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "server/net/framing.h"
#include "server/store/snapshot_file.h"
#include "sim/experiment.h"
#include "sim/slice.h"
#include "wire/encoding.h"

namespace loloha {
namespace {

namespace fs = std::filesystem;

bool WriteSeed(const fs::path& dir, const std::string& name,
               const std::string& bytes) {
  fs::create_directories(dir);
  const fs::path path = dir / name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  if (!out) {
    std::fprintf(stderr, "make_corpus: failed to write %s\n", path.c_str());
    return false;
  }
  return true;
}

// --- framing ---------------------------------------------------------------

bool WriteFramingSeeds(const fs::path& root) {
  const fs::path dir = root / "framing";
  bool ok = true;

  std::string data_loloha;
  AppendDataFrame(42, EncodeLolohaReport(7), &data_loloha);
  ok &= WriteSeed(dir, "data_loloha_report", data_loloha);

  std::string data_grr;
  AppendDataFrame(7, EncodeGrrReport(3), &data_grr);
  ok &= WriteSeed(dir, "data_grr_report", data_grr);

  for (auto [type, name] :
       {std::pair{FrameType::kBarrier, "control_barrier"},
        std::pair{FrameType::kBarrierAck, "control_barrier_ack"},
        std::pair{FrameType::kEndStep, "control_end_step"},
        std::pair{FrameType::kShutdown, "control_shutdown"}}) {
    std::string frame;
    AppendControlFrame(type, &frame);
    ok &= WriteSeed(dir, name, frame);
  }

  std::string estimates;
  const double values[] = {1.5, -2.25, 0.0, 1e-9};
  AppendEstimatesFrame(values, &estimates);
  ok &= WriteSeed(dir, "estimates", estimates);

  // A realistic session: hello-less report burst, barrier, end-step.
  std::string session;
  for (uint64_t user = 0; user < 3; ++user) {
    AppendDataFrame(user, EncodeLolohaReport(static_cast<uint32_t>(user)),
                    &session);
  }
  AppendControlFrame(FrameType::kBarrier, &session);
  AppendControlFrame(FrameType::kEndStep, &session);
  ok &= WriteSeed(dir, "session_multi_frame", session);

  // Invalid-by-construction shapes the parser must refuse (kError) or
  // hold (kNeedMore) — seeds for the rejection branches.
  ok &= WriteSeed(dir, "truncated_header", data_loloha.substr(0, 3));
  ok &= WriteSeed(dir, "truncated_payload",
                  data_loloha.substr(0, data_loloha.size() - 2));
  std::string bad_type = data_loloha;
  bad_type[4] = '\x63';  // unknown frame type 99
  ok &= WriteSeed(dir, "bad_frame_type", bad_type);
  // Length field far past the payload cap.
  ok &= WriteSeed(dir, "oversize_length",
                  std::string("\xff\xff\xff\x7f\x01", 5));
  return ok;
}

// --- snapshot --------------------------------------------------------------

bool WriteSnapshotSeeds(const fs::path& root) {
  const fs::path dir = root / "snapshot";
  bool ok = true;

  SnapshotData empty;
  empty.signature = "ololoha:eps_perm=2,eps_first=1|shard=0";
  empty.step = 0;
  empty.slot_bytes = 4;
  ok &= WriteSeed(dir, "empty_store", SerializeSnapshot(empty));

  SnapshotData populated;
  populated.signature = "bbitflip:eps_perm=2,buckets=4,d=3|shard=1";
  populated.step = 5;
  populated.slot_bytes = 3;
  populated.aux = std::string("\x01\x00\x00\x00\x2a", 5);
  populated.user_ids = {2, 40, 41, 1000000007};
  populated.slots.assign(populated.user_ids.size() * populated.slot_bytes,
                         0);
  for (size_t i = 0; i < populated.slots.size(); ++i) {
    populated.slots[i] = static_cast<uint8_t>(i * 37 + 1);
  }
  ok &= WriteSeed(dir, "populated_store", SerializeSnapshot(populated));

  // Truncated image: exercises the bounds checks before any CRC runs.
  const std::string bytes = SerializeSnapshot(populated);
  ok &= WriteSeed(dir, "truncated_image", bytes.substr(0, bytes.size() / 2));
  return ok;
}

// --- slice_partial ---------------------------------------------------------

// First byte selects the decoder in fuzz_slice_partial.cc: 'J' = JSON
// document, anything else = CSV body + NUL + sidecar.
std::string CsvModeInput(const SlicePartial& partial,
                         const ArtifactMeta& meta) {
  std::string input = "C";
  input += SlicePartialCsv(partial);
  input += '\0';
  input += ProvenanceJsonBody(meta) + "}\n";
  return input;
}

std::string JsonModeInput(const SlicePartial& partial,
                          const ArtifactMeta& meta) {
  std::string input = "J";
  std::string doc = ProvenanceJsonBody(meta);
  AppendSlicePartialDataJson(partial, &doc);
  doc += "}\n";
  input += doc;
  return input;
}

ArtifactMeta MetaFor(const SlicePartial& partial) {
  ArtifactMeta meta;
  meta.plan_name = partial.plan_name;
  meta.kind = partial.kind;
  meta.table = partial.plan_name;
  meta.seed = partial.seed;
  meta.git_describe = partial.git_describe;
  meta.slice = partial.slice;
  meta.units = partial.units.size();
  meta.units_total = partial.units_total;
  meta.plan_text = partial.plan_text;
  return meta;
}

bool WriteSlicePartialSeeds(const fs::path& root) {
  const fs::path dir = root / "slice_partial";
  bool ok = true;

  // Row-unit partial (non-mse kinds): slice 0 of 2 owning the even rows.
  SlicePartial rows;
  rows.plan_name = "fuzz_rows";
  rows.kind = "variance";
  rows.seed = 20230328;
  rows.git_describe = "fuzz";
  rows.slice = SliceSpec{0, 2};
  rows.units_total = 4;
  rows.plan_text = "[experiment]\nname = fuzz_rows\nkind = variance\n";
  for (uint64_t index : {uint64_t{0}, uint64_t{2}}) {
    SliceUnit unit;
    unit.type = SliceUnit::Type::kRow;
    unit.index = index;
    unit.row = {"l-osue", "2", "0.5", "1.25e-03", "with,comma",
                "with\"quote"};
    rows.units.push_back(unit);
  }
  ok &= WriteSeed(dir, "csv_rows", CsvModeInput(rows, MetaFor(rows)));
  ok &= WriteSeed(dir, "json_rows", JsonModeInput(rows, MetaFor(rows)));

  // Cell-unit partial (mse kind): cells travel as exact IEEE-754 bit
  // patterns ("0x" + 16 hex digits) in the CSV encoding.
  SlicePartial cells;
  cells.plan_name = "fuzz_cells";
  cells.kind = "mse";
  cells.seed = 7;
  cells.git_describe = "fuzz";
  cells.slice = SliceSpec{1, 3};
  cells.units_total = 6;
  cells.plan_text = "[experiment]\nname = fuzz_cells\nkind = mse\n";
  for (uint64_t index : {uint64_t{1}, uint64_t{4}}) {
    SliceUnit unit;
    unit.type = SliceUnit::Type::kCell;
    unit.index = index;
    unit.cell = 1.0 + 0.5 * static_cast<double>(index);
    cells.units.push_back(unit);
  }
  ok &= WriteSeed(dir, "csv_cells", CsvModeInput(cells, MetaFor(cells)));
  ok &= WriteSeed(dir, "json_cells", JsonModeInput(cells, MetaFor(cells)));

  // Cross-check rejection seed: CSV body paired with the *other*
  // partial's sidecar (header/sidecar mismatch branch).
  std::string mismatched = "C";
  mismatched += SlicePartialCsv(rows);
  mismatched += '\0';
  mismatched += ProvenanceJsonBody(MetaFor(cells)) + "}\n";
  ok &= WriteSeed(dir, "csv_sidecar_mismatch", mismatched);
  return ok;
}

}  // namespace
}  // namespace loloha

int main(int argc, char** argv) {
  const std::filesystem::path root = argc > 1 ? argv[1] : "fuzz/corpus";
  bool ok = true;
  ok &= loloha::WriteFramingSeeds(root);
  ok &= loloha::WriteSnapshotSeeds(root);
  ok &= loloha::WriteSlicePartialSeeds(root);
  if (!ok) return 1;
  std::printf("seed corpora written under %s\n", root.c_str());
  return 0;
}

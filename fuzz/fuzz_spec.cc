// ProtocolSpec harness: spec strings arrive from every CLI surface
// (--spec flags on benches, server, examples) and from plan files'
// `protocols =` lines, making the spec grammar the most widely exposed
// text parser in the tree.
//
// Properties checked on every input:
//   * No crash / sanitizer report on arbitrary text.
//   * Rejections are diagnosed: a failed parse always sets *error.
//   * Round trip (the documented contract in sim/protocol_spec.h):
//     Parse(spec.ToString()) == spec for every spec Parse accepts, and
//     the canonical string is a fixed point.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "fuzz/harness_check.h"
#include "sim/protocol_spec.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace loloha;
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  ProtocolSpec spec;
  std::string error;
  if (!ProtocolSpec::Parse(text, &spec, &error)) {
    FUZZ_CHECK_MSG(!error.empty(), "rejection without a diagnostic");
    return 0;
  }
  const std::string canonical = spec.ToString();
  ProtocolSpec reparsed;
  error.clear();
  FUZZ_CHECK_MSG(ProtocolSpec::Parse(canonical, &reparsed, &error),
                 error.c_str());
  FUZZ_CHECK(reparsed == spec);
  FUZZ_CHECK(reparsed.ToString() == canonical);
  return 0;
}

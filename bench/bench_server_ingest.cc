// Server ingestion load generator: throughput of the batched collector
// path (IngestBatch — bulk wire decode, sharded SIMD support counting)
// against the per-report path (HandleReport — scalar fold per message),
// for both collectors, with a byte-identity check on estimates and stats.
//
// Traffic model: n registered users each send one wire-encoded report per
// step (pre-encoded outside the timers, so the numbers isolate the
// server). The LOLOHA row is the SIMD-accumulated O(k)-per-report
// workload the ISSUE's >= 1.5x target refers to; the dBitFlipPM row is
// O(d) per report and mostly measures decode + session bookkeeping, so
// its win comes from threading, not SIMD.
//
//   --users=N     reporting users (default 20000; --quick: 4000)
//   --k=K         LOLOHA domain size (default 1024; --quick: 256)
//   --g=G         LOLOHA hash range (default 8)
//   --steps=T     collection steps (default 2)
//   --runs=R      timing repetitions, minimum reported (default 3)
//   --threads=T   ingest pool width (default 1; 0 = all hardware threads)
//   --shards=S    batch shards (default kDefaultIngestShards)
//   --json=PATH   write results as JSON (CI uploads it as a perf artifact)
//
// The per-report baseline is always timed single-threaded (that path never
// touches the pool); the batch path uses --threads. At --threads=1 the
// LOLOHA speedup is the hash-row + SIMD-kernel win alone.

#include <chrono>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/loloha.h"
#include "core/loloha_params.h"
#include "server/collector.h"
#include "sim/protocol_spec.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "wire/encoding.h"

namespace {

using namespace loloha;

struct IngestConfig {
  uint32_t users = 20000;
  uint32_t k = 1024;
  uint32_t g = 8;
  uint32_t steps = 2;
  uint32_t runs = 3;
  uint32_t threads = 1;
  uint32_t shards = 0;
  uint64_t seed = 20230328;
};

struct IngestRow {
  std::string name;
  double per_report_s = 0.0;  // seconds, minimum over runs
  double batch_s = 0.0;
  uint64_t reports = 0;
  bool identical = false;
};

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Drives one collector spec through the protocol-agnostic Collector
// interface: `hellos` registers the fleet (untimed), `steps` holds one
// pre-encoded message batch per collection step. `make` builds a fresh
// collector per run (MakeCollector under the hood).
template <typename Factory>
IngestRow BenchCollector(const std::string& name, const Factory& make,
                         const std::vector<Message>& hellos,
                         const std::vector<std::vector<Message>>& steps,
                         const IngestConfig& config) {
  IngestRow row;
  row.name = name;
  for (const auto& step : steps) row.reports += step.size();

  std::vector<std::vector<double>> per_report_estimates;
  std::vector<std::vector<double>> batch_estimates;
  CollectorStats per_report_stats;
  CollectorStats batch_stats;

  for (uint32_t r = 0; r < config.runs; ++r) {
    {
      const std::unique_ptr<Collector> collector = make(/*batched=*/false);
      for (const Message& hello : hellos) {
        collector->HandleHello(hello.user_id, hello.bytes);
      }
      per_report_estimates.clear();
      const auto start = std::chrono::steady_clock::now();
      for (const auto& step : steps) {
        for (const Message& message : step) {
          collector->HandleReport(message.user_id, message.bytes);
        }
        per_report_estimates.push_back(collector->EndStep());
      }
      const double elapsed = SecondsSince(start);
      if (r == 0 || elapsed < row.per_report_s) row.per_report_s = elapsed;
      per_report_stats = collector->stats();
    }
    {
      const std::unique_ptr<Collector> collector = make(/*batched=*/true);
      collector->IngestBatch(hellos);
      batch_estimates.clear();
      const auto start = std::chrono::steady_clock::now();
      for (const auto& step : steps) {
        collector->IngestBatch(step);
        batch_estimates.push_back(collector->EndStep());
      }
      const double elapsed = SecondsSince(start);
      if (r == 0 || elapsed < row.batch_s) row.batch_s = elapsed;
      batch_stats = collector->stats();
    }
  }
  // Hello counters differ only because the per-report baseline skips the
  // hello decode path entirely in some runs; compare the report counters
  // and the estimates, which is what ingestion must preserve.
  row.identical = per_report_estimates == batch_estimates &&
                  per_report_stats == batch_stats;
  std::printf(".");
  std::fflush(stdout);
  return row;
}

void WriteJson(const std::string& path, const IngestConfig& config,
               const std::vector<IngestRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("WARNING: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"bench_server_ingest\",\n"
               "  \"threads\": %u,\n  \"hardware_threads\": %u,\n"
               "  \"users\": %u,\n  \"k\": %u,\n  \"g\": %u,\n"
               "  \"steps\": %u,\n  \"runs\": %u,\n  \"results\": [\n",
               config.threads, ThreadPool::HardwareThreads(), config.users,
               config.k, config.g, config.steps, config.runs);
  for (size_t i = 0; i < rows.size(); ++i) {
    const IngestRow& row = rows[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"reports\": %llu, "
        "\"per_report_rps\": %.0f, \"batch_rps\": %.0f, "
        "\"speedup\": %.3f, \"identical\": %s}%s\n",
        row.name.c_str(), static_cast<unsigned long long>(row.reports),
        static_cast<double>(row.reports) / row.per_report_s,
        static_cast<double>(row.reports) / row.batch_s,
        row.per_report_s / row.batch_s, row.identical ? "true" : "false",
        i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("JSON written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  IngestConfig config;
  const bool quick = cli.HasFlag("quick");
  config.users = static_cast<uint32_t>(
      cli.GetInt("users", quick ? 4000 : config.users));
  config.k = static_cast<uint32_t>(cli.GetInt("k", quick ? 256 : config.k));
  config.g = static_cast<uint32_t>(cli.GetInt("g", config.g));
  config.steps = static_cast<uint32_t>(cli.GetInt("steps", config.steps));
  config.runs = static_cast<uint32_t>(
      cli.GetInt("runs", quick ? 2 : config.runs));
  config.threads =
      static_cast<uint32_t>(cli.GetInt("threads", config.threads));
  if (config.threads == 0) config.threads = ThreadPool::HardwareThreads();
  config.shards = static_cast<uint32_t>(cli.GetInt("shards", 0));
  config.seed = static_cast<uint64_t>(cli.GetInt("seed", config.seed));

  std::printf(
      "Server ingestion — IngestBatch vs per-report HandleReport\n"
      "users=%u, k=%u, g=%u, steps=%u, runs=%u, ingest threads=%u "
      "(hardware %u)\n\n",
      config.users, config.k, config.g, config.steps, config.runs,
      config.threads, ThreadPool::HardwareThreads());

  ThreadPool pool(config.threads);
  CollectorOptions options;
  options.pool = &pool;
  options.num_shards = config.shards;

  std::vector<IngestRow> rows;
  Rng rng(config.seed);

  {
    // LOLOHA traffic: one cell per user per step. The collector under
    // test is built from the declarative spec (pinned hash range --g).
    ProtocolSpec spec;
    spec.id = config.g == 2 ? ProtocolId::kBiLoloha : ProtocolId::kOLoloha;
    spec.g = config.g;
    spec.eps_perm = 2.0;
    spec.eps_first = 1.0;
    const LolohaParams params = LolohaParamsForSpec(spec, config.k);
    std::vector<LolohaClient> clients;
    clients.reserve(config.users);
    std::vector<Message> hellos;
    hellos.reserve(config.users);
    for (uint32_t u = 0; u < config.users; ++u) {
      clients.emplace_back(params, rng);
      hellos.push_back(Message{u, EncodeLolohaHello(clients[u].hash())});
    }
    std::vector<std::vector<Message>> steps(config.steps);
    for (uint32_t t = 0; t < config.steps; ++t) {
      steps[t].reserve(config.users);
      for (uint32_t u = 0; u < config.users; ++u) {
        steps[t].push_back(Message{
            u, EncodeLolohaReport(
                   clients[u].Report((u + t) % config.k, rng))});
      }
    }
    rows.push_back(BenchCollector(
        "LOLOHA",
        [&](bool batched) {
          return MakeCollector(spec, config.k,
                               batched ? options : CollectorOptions{});
        },
        hellos, steps, config));
  }

  {
    // dBitFlipPM traffic: d bits per user per step, b = k / 4 buckets.
    ProtocolSpec spec;
    spec.id = ProtocolId::kBBitFlipPm;
    spec.eps_perm = 3.0;
    spec.eps_first = 0.0;
    spec.buckets = std::max(config.k / 4, 2u);
    spec.d = std::min(16u, spec.buckets);
    const Bucketizer bucketizer(config.k, spec.buckets);
    const uint32_t d = spec.d;
    const double eps = spec.eps_perm;
    std::vector<DBitFlipClient> clients;
    clients.reserve(config.users);
    std::vector<Message> hellos;
    hellos.reserve(config.users);
    for (uint32_t u = 0; u < config.users; ++u) {
      clients.emplace_back(bucketizer, d, eps, rng);
      hellos.push_back(Message{u, EncodeDBitHello(clients[u].sampled())});
    }
    std::vector<std::vector<Message>> steps(config.steps);
    for (uint32_t t = 0; t < config.steps; ++t) {
      steps[t].reserve(config.users);
      for (uint32_t u = 0; u < config.users; ++u) {
        const DBitReport report =
            clients[u].Report((3 * u + t) % config.k, rng);
        steps[t].push_back(Message{u, EncodeDBitReport(report.bits)});
      }
    }
    rows.push_back(BenchCollector(
        "dBitFlipPM",
        [&](bool batched) {
          return MakeCollector(spec, config.k,
                               batched ? options : CollectorOptions{});
        },
        hellos, steps, config));
  }
  std::printf("\n\n");

  TextTable table({"collector", "reports", "per-report r/s", "batch r/s",
                   "speedup", "identical"});
  bool all_identical = true;
  for (const IngestRow& row : rows) {
    table.AddRow({row.name, std::to_string(row.reports),
                  FormatDouble(static_cast<double>(row.reports) /
                                   row.per_report_s, 0),
                  FormatDouble(static_cast<double>(row.reports) /
                                   row.batch_s, 0),
                  FormatDouble(row.per_report_s / row.batch_s, 3),
                  row.identical ? "yes" : "NO"});
    all_identical = all_identical && row.identical;
  }
  std::printf("%s\n", table.ToString().c_str());

  const std::string json_path = cli.GetString("json", "");
  if (!json_path.empty()) WriteJson(json_path, config, rows);
  if (!all_identical) {
    std::printf("ERROR: batch path diverged from the per-report path\n");
    return 1;
  }
  return 0;
}

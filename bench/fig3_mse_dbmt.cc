// Figure 3c: MSE_avg on the DB_MT-like replicate-weight dataset
// (k ~ 1412, n = 10336, tau = 80). dBitFlipPM is excluded, as in the
// paper: with b = k/4 its b-bin histogram is not comparable.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return loloha::bench::RunFig3Panel("db_mt", argc, argv);
}

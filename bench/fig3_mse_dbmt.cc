// Figure 3c shim: the panel is plans/fig3_dbmt.plan — prefer
// `loloha_experiments --plan=plans/fig3_dbmt.plan`. Kept one release for
// bit-equivalence gating of the plan-driven driver.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return loloha::bench::RunLegacyPlanMain("fig3_dbmt", argc, argv);
}

// Ablation: what memoization buys. A constant user reporting through
// LOLOHA *without* the PRR memo (fresh permanent-round draw every step)
// is vulnerable to the averaging attack of Sec. 2.4: the majority vote
// over tau reports converges to the user's true hash cell. With
// memoization the vote converges to the memoized cell x', which reveals
// H(v) only with probability p1 — exactly the ε∞ guarantee, independent
// of tau.
//
// Prints the attacker's success rate (fraction of constant users whose
// true hash cell equals the majority-vote guess) as tau grows, plus the
// server-side MSE of both variants (identical per-step marginals).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/loloha.h"
#include "core/loloha_params.h"
#include "sim/protocol_spec.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace loloha;
  const CommandLine cli(argc, argv);
  const bench::HarnessConfig config =
      bench::ParseHarness(cli, "ablation_memoization.csv");

  // Any LOLOHA spec works; the attack column contrasts its memoized
  // clients against a no-memo variant at the same parameters.
  const ProtocolSpec spec = ProtocolSpec::MustParse(
      cli.GetString("protocol", "biloloha:eps_perm=1,eps_first=0.5"));
  if (!spec.IsLolohaVariant()) {
    std::fprintf(stderr, "--protocol: expected a LOLOHA variant, got '%s'\n",
                 spec.ToString().c_str());
    return 2;
  }
  const double eps = spec.eps_perm;
  const double eps1 = spec.eps_first;
  const uint32_t k = 64;
  const uint32_t n = config.quick ? 2000 : 20000 / config.scale * 5;
  const LolohaParams params = LolohaParamsForSpec(spec, k);
  Rng rng(config.seed);

  TextTable table({"tau", "attack success (memoized)",
                   "attack success (no memo)", "theory: p1", "chance: 1/g"});

  for (const uint32_t tau : {1u, 5u, 20u, 80u, 320u}) {
    uint32_t hit_memo = 0;
    uint32_t hit_fresh = 0;
    for (uint32_t u = 0; u < n; ++u) {
      const uint32_t value = static_cast<uint32_t>(rng.UniformInt(k));

      // Memoized client (Algorithm 1).
      LolohaClient client(params, rng);
      uint32_t votes_memo = 0;
      for (uint32_t t = 0; t < tau; ++t) {
        votes_memo += (client.Report(value, rng) == client.hash()(value));
      }
      hit_memo += (2 * votes_memo > tau) ? 1 : 0;

      // No-memo variant: fresh PRR each step (g = 2 GRR chain).
      const UniversalHash hash = UniversalHash::Sample(params.g, rng);
      const uint32_t cell = hash(value);
      uint32_t votes_fresh = 0;
      for (uint32_t t = 0; t < tau; ++t) {
        uint32_t x = cell;
        if (!rng.Bernoulli(params.prr.p)) {
          x = static_cast<uint32_t>(
              rng.UniformIntExcluding(params.g, x));
        }
        if (!rng.Bernoulli(params.irr.p)) {
          x = static_cast<uint32_t>(
              rng.UniformIntExcluding(params.g, x));
        }
        votes_fresh += (x == cell);
      }
      hit_fresh += (2 * votes_fresh > tau) ? 1 : 0;
    }
    table.AddRow({std::to_string(tau),
                  FormatDouble(static_cast<double>(hit_memo) / n, 4),
                  FormatDouble(static_cast<double>(hit_fresh) / n, 4),
                  FormatDouble(params.prr.p, 4),
                  FormatDouble(1.0 / params.g, 4)});
  }

  std::printf(
      "Ablation — averaging attack vs memoization (%s, eps_inf=%g, "
      "eps1=%g, %u constant users)\n\nAttack: majority vote over tau "
      "reports; success = vote equals true hash cell.\nMemoization pins "
      "success at ~p1 = %.3f regardless of tau; without it success -> 1.\n\n%s\n",
      spec.DisplayName().c_str(), eps, eps1, n, params.prr.p,
      table.ToString().c_str());
  if (!config.out_csv.empty()) table.WriteCsv(config.out_csv);
  return 0;
}

// Figure 2 shim: the V* sweep is plans/fig2_variance.plan — prefer
// `loloha_experiments --plan=plans/fig2_variance.plan`. Kept one release
// for bit-equivalence gating of the plan-driven driver.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return loloha::bench::RunLegacyPlanMain("fig2_variance", argc, argv);
}

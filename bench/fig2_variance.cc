// Figure 2: numerical approximate variance V* (Eq. 5) of the paper's
// double-randomization legend (or any --protocols= spec list) at
// n = 10000, for ε∞ in [0.5, 5] and ε1 = αε∞ with α in {0.1, ..., 0.6}.
// One block of rows per α, matching the paper's six panels.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/theory.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace loloha;
  const CommandLine cli(argc, argv);
  const bench::HarnessConfig config =
      bench::ParseHarness(cli, "fig2_variance.csv");
  const double n = cli.GetDouble("n", 10000.0);
  const uint32_t k = 360;  // only L-GRR (not plotted) depends on k

  std::vector<ProtocolSpec> legend;
  for (const ProtocolId id : Figure2Protocols()) {
    ProtocolSpec spec;
    spec.id = id;
    legend.push_back(spec.Canonicalized());
  }
  legend = bench::ParseProtocolSpecs(cli, std::move(legend));

  std::vector<std::string> header = {"alpha", "eps_inf"};
  for (const ProtocolSpec& spec : legend) header.push_back(spec.DisplayName());
  TextTable table(header);
  for (const double alpha : bench::AlphaGridFig2()) {
    for (const double eps : bench::EpsPermGrid()) {
      std::vector<std::string> row = {FormatDouble(alpha, 2),
                                      FormatDouble(eps, 3)};
      for (const ProtocolSpec& base : legend) {
        // V* honors pinned extras (a fixed g, a bucket layout); the grid
        // overrides the budgets, as in the fig3 panels.
        ProtocolSpec spec = base;
        spec.eps_perm = eps;
        spec.eps_first = spec.IsTwoRound() ? alpha * eps : 0.0;
        row.push_back(FormatDouble(ApproxVarianceForSpec(spec, n, k)));
      }
      table.AddRow(std::move(row));
    }
  }

  std::printf(
      "Figure 2 — approximate variance V* (Eq. 5), n=%.0f\n\n%s\n", n,
      table.ToString().c_str());
  if (!config.out_csv.empty()) table.WriteCsv(config.out_csv);
  return 0;
}

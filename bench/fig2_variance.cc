// Figure 2: numerical approximate variance V* (Eq. 5) of L-OSUE, OLOLOHA,
// RAPPOR and BiLOLOHA at n = 10000, for ε∞ in [0.5, 5] and ε1 = αε∞ with
// α in {0.1, ..., 0.6}. One block of rows per α, matching the paper's six
// panels.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/theory.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace loloha;
  const CommandLine cli(argc, argv);
  const bench::HarnessConfig config =
      bench::ParseHarness(cli, "fig2_variance.csv");
  const double n = cli.GetDouble("n", 10000.0);
  const uint32_t k = 360;  // only L-GRR (not plotted) depends on k

  TextTable table({"alpha", "eps_inf", "L-OSUE", "OLOLOHA", "RAPPOR",
                   "BiLOLOHA"});
  for (const double alpha : bench::AlphaGridFig2()) {
    for (const double eps : bench::EpsPermGrid()) {
      const double eps1 = alpha * eps;
      table.AddRow(
          {FormatDouble(alpha, 2), FormatDouble(eps, 3),
           FormatDouble(ProtocolApproxVariance(ProtocolId::kLOsue, n, k,
                                               eps, eps1)),
           FormatDouble(ProtocolApproxVariance(ProtocolId::kOLoloha, n, k,
                                               eps, eps1)),
           FormatDouble(ProtocolApproxVariance(ProtocolId::kRappor, n, k,
                                               eps, eps1)),
           FormatDouble(ProtocolApproxVariance(ProtocolId::kBiLoloha, n, k,
                                               eps, eps1))});
    }
  }

  std::printf(
      "Figure 2 — approximate variance V* (Eq. 5), n=%.0f\n\n%s\n", n,
      table.ToString().c_str());
  if (!config.out_csv.empty()) table.WriteCsv(config.out_csv);
  return 0;
}

// Figure 3d: MSE_avg on the DB_DE-like replicate-weight dataset
// (k ~ 1234, n = 9123, tau = 80). dBitFlipPM excluded (b = k/4).

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return loloha::bench::RunFig3Panel("db_de", argc, argv);
}

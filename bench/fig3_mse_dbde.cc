// Figure 3d shim: the panel is plans/fig3_dbde.plan — prefer
// `loloha_experiments --plan=plans/fig3_dbde.plan`. Kept one release for
// bit-equivalence gating of the plan-driven driver.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return loloha::bench::RunLegacyPlanMain("fig3_dbde", argc, argv);
}

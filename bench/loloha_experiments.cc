// loloha_experiments: the one driver for every figure/table reproduction
// and any new scenario — experiments are plan files, not binaries.
//
//   loloha_experiments --plan=plans/fig3_syn.plan [--quick] [--threads=T]
//                      [--out=PATH.csv] [--json=PATH] [--runs=R]
//                      [--scale=S] [--seed=N] [--protocols=SPECS] ...
//   loloha_experiments --plan=plans/fig3_syn.plan --slice=0/3 [--quick] ...
//   loloha_experiments --plan=plans/fig2_variance.plan --validate
//   loloha_experiments --list-protocols
//   loloha_experiments --list-plans [--plans-dir=plans]
//
// --validate parses the plan, applies the overrides, validates, prints
// the canonical plan text, and exits without running. --list-protocols
// prints the ProtocolSpec registry (names, aliases, extras, V*
// availability); --list-plans the checked-in plan registry (kind, legend,
// grid, unit count, outputs). --slice=i/N computes one slice of the
// plan's unit grid and writes "<out>.slice-i-of-N.*" partials; see
// tools/loloha_merge and README "Distributed execution". See
// bench/bench_common.h for the full override list and README
// "Experiments" for the plan-file grammar.

#include <cstdio>

#include "bench/bench_common.h"
#include "sim/experiment.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace loloha;
  const CommandLine cli(argc, argv);
  if (cli.HasFlag("list-protocols")) {
    PrintProtocolRegistry(stdout);
    return 0;
  }
  if (cli.HasFlag("list-plans")) {
    PrintPlanRegistry(cli.GetString("plans-dir", "plans"), stdout);
    return 0;
  }
  const std::string plan_path = cli.GetString("plan", "");
  if (plan_path.empty()) {
    std::fprintf(stderr,
                 "usage: loloha_experiments --plan=<file.plan> [overrides]\n"
                 "       loloha_experiments --plan=<file.plan> --slice=i/N\n"
                 "       loloha_experiments --plan=<file.plan> --validate\n"
                 "       loloha_experiments --list-protocols\n"
                 "       loloha_experiments --list-plans [--plans-dir=DIR]\n");
    return 2;
  }
  ExperimentPlan plan;
  std::string error;
  if (!LoadExperimentPlan(plan_path, &plan, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  if (cli.HasFlag("validate")) {
    bench::ApplyPlanOverrides(cli, &plan);
    if (!plan.Validate(&error)) {
      std::fprintf(stderr, "plan '%s': %s\n", plan.name.c_str(),
                   error.c_str());
      return 2;
    }
    std::printf("%s", plan.ToString().c_str());
    return 0;
  }
  return bench::RunPlanMain(std::move(plan), cli);
}

// loloha_server: the standalone network ingestion server.
//
// Binds the TCP ingestion front (server/net/ingest_server.h) for one
// protocol deployment and runs until SIGINT/SIGTERM or a kShutdown
// frame, then drains gracefully and prints the final counters. Drive it
// with bench_client_load (loopback load + byte-identity check) or any
// client speaking docs/WIRE_PROTOCOL.md. Operational guidance — flag
// tuning, backpressure semantics, the --stats format — lives in
// docs/OPERATIONS.md.
//
//   --spec=S          protocol spec (default "ololoha:eps_perm=2,eps_first=1")
//   --k=K             domain size (default 1024)
//   --port=P          ingest port (default 7570; 0 = ephemeral)
//   --stats-port=P    stats port (default 7571; 0 = ephemeral)
//   --no-stats        disable the stats endpoint
//   --shards=N        collector shards, users split by id %% N (default 4)
//   --flush-batch=N   flush a shard batch at N messages (default 4096)
//   --flush-ms=T      ... or after T milliseconds (default 10)
//   --queue-cap=N     bounded per-shard queue, in batches (default 8)
//   --threads=T       ingest pool width per shard collector (default 1)
//   --store=B         user-state backend: map | flat | snapshot (default map)
//   --snapshot-dir=D  shard checkpoint directory (required with
//                     --store=snapshot; created if missing)
//   --restore         restore shard snapshots from --snapshot-dir at start
//   --monitor         enable TrendMonitor alerts over the step estimates
//   --z=Z             monitor alert threshold (default 4.0)
//
// Backend semantics and the snapshot file format are documented in
// docs/STATE_BACKENDS.md.

#include <csignal>
#include <cstdio>

#include "server/net/ingest_server.h"
#include "sim/protocol_spec.h"
#include "util/cli.h"

namespace {

loloha::IngestServer* g_server = nullptr;

// Stop() only writes an atomic and an eventfd — async-signal-safe.
void HandleSignal(int) {
  if (g_server != nullptr) g_server->Stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace loloha;
  const CommandLine cli(argc, argv);

  const std::string spec_text =
      cli.GetString("spec", "ololoha:eps_perm=2,eps_first=1");
  ProtocolSpec spec;
  std::string error;
  if (!ProtocolSpec::Parse(spec_text, &spec, &error)) {
    std::printf("ERROR: bad --spec \"%s\": %s\n", spec_text.c_str(),
                error.c_str());
    return 1;
  }
  if (!spec.IsLolohaVariant() && !spec.IsDBitFlipVariant()) {
    std::printf("ERROR: --spec %s has no wire collector (serve a LOLOHA or "
                "dBitFlipPM variant)\n",
                spec_text.c_str());
    return 1;
  }
  const uint32_t k = static_cast<uint32_t>(cli.GetInt("k", 1024));

  IngestServerConfig config;
  config.port = static_cast<uint16_t>(cli.GetInt("port", 7570));
  config.enable_stats = !cli.HasFlag("no-stats");
  config.stats_port = static_cast<uint16_t>(cli.GetInt("stats-port", 7571));
  config.num_shards = static_cast<uint32_t>(cli.GetInt("shards", 4));
  config.flush_max_batch =
      static_cast<uint32_t>(cli.GetInt("flush-batch", 4096));
  config.flush_deadline_ms = static_cast<uint32_t>(cli.GetInt("flush-ms", 10));
  config.queue_capacity = static_cast<uint32_t>(cli.GetInt("queue-cap", 8));
  config.collector_options.num_threads =
      static_cast<uint32_t>(cli.GetInt("threads", 1));
  const std::string store_text = cli.GetString("store", "map");
  if (!ParseStoreKind(store_text, &config.collector_options.store.kind)) {
    std::printf("ERROR: bad --store \"%s\" (map | flat | snapshot)\n",
                store_text.c_str());
    return 1;
  }
  config.snapshot_dir = cli.GetString("snapshot-dir", "");
  config.restore_snapshots = cli.HasFlag("restore");
  if (config.collector_options.store.kind == StoreKind::kSnapshot &&
      config.snapshot_dir.empty()) {
    std::printf("ERROR: --store=snapshot requires --snapshot-dir\n");
    return 1;
  }
  if (config.restore_snapshots &&
      config.collector_options.store.kind != StoreKind::kSnapshot) {
    std::printf("ERROR: --restore requires --store=snapshot\n");
    return 1;
  }
  config.enable_monitor = cli.HasFlag("monitor");
  config.monitor_z_threshold = cli.GetDouble("z", 4.0);

  IngestServer server(spec, k, config);
  if (!server.Start()) {
    std::printf("ERROR: cannot bind %s:%u (stats %u)\n",
                config.bind_address.c_str(), config.port, config.stats_port);
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::printf("loloha_server: %s over k=%u\n", spec.DisplayName().c_str(), k);
  std::printf("listening on %s:%u", config.bind_address.c_str(),
              server.port());
  if (config.enable_stats) std::printf(", stats on :%u", server.stats_port());
  std::printf("  (shards=%u, flush=%u msgs / %u ms, queue=%u batches)\n",
              config.num_shards, config.flush_max_batch,
              config.flush_deadline_ms, config.queue_capacity);
  std::printf("store: %s", StoreKindName(config.collector_options.store.kind));
  if (config.collector_options.store.kind == StoreKind::kSnapshot) {
    std::printf(" (dir=%s, restored %llu shards)", config.snapshot_dir.c_str(),
                static_cast<unsigned long long>(
                    server.server_stats().shards_restored));
  }
  std::printf("\n");
  std::fflush(stdout);

  server.Run();
  g_server = nullptr;

  const CollectorStats totals = server.TotalStats();
  const IngestServerStats stats = server.server_stats();
  std::printf(
      "shutdown: %llu steps, %llu users, %llu hellos, %llu reports, "
      "%llu rejects, %llu protocol errors, %llu stalls\n",
      static_cast<unsigned long long>(stats.steps_completed),
      static_cast<unsigned long long>(server.TotalRegisteredUsers()),
      static_cast<unsigned long long>(totals.hellos_accepted),
      static_cast<unsigned long long>(totals.reports_accepted),
      static_cast<unsigned long long>(totals.rejected_malformed +
                                      totals.rejected_unknown_user +
                                      totals.rejected_duplicate),
      static_cast<unsigned long long>(stats.protocol_errors),
      static_cast<unsigned long long>(stats.backpressure_stalls));
  if (config.collector_options.store.kind == StoreKind::kSnapshot) {
    const StoreStats store = server.TotalStoreStats();
    std::printf("snapshots: %llu written, %llu failed, %llu bytes last\n",
                static_cast<unsigned long long>(store.checkpoints_written),
                static_cast<unsigned long long>(store.checkpoint_failures),
                static_cast<unsigned long long>(store.last_checkpoint_bytes));
  }
  return 0;
}

// loloha_server: the standalone network ingestion server.
//
// Binds the TCP ingestion front (server/net/ingest_server.h) for one
// protocol deployment and runs until SIGINT/SIGTERM or a kShutdown
// frame, then drains gracefully and prints the final counters. Drive it
// with bench_client_load (loopback load + byte-identity check) or any
// client speaking docs/WIRE_PROTOCOL.md. Operational guidance — flag
// tuning, backpressure semantics, the --stats format — lives in
// docs/OPERATIONS.md.
//
//   --spec=S          protocol spec (default "ololoha:eps_perm=2,eps_first=1")
//   --k=K             domain size (default 1024)
//   --port=P          ingest port (default 7570; 0 = ephemeral)
//   --stats-port=P    stats port (default 7571; 0 = ephemeral)
//   --no-stats        disable the stats endpoint
//   --shards=N        collector shards, users split by id %% N (default 4)
//   --flush-batch=N   flush a shard batch at N messages (default 4096)
//   --flush-ms=T      ... or after T milliseconds (default 10)
//   --queue-cap=N     bounded per-shard queue, in batches (default 8)
//   --threads=T       ingest pool width per shard collector (default 1)
//   --monitor         enable TrendMonitor alerts over the step estimates
//   --z=Z             monitor alert threshold (default 4.0)

#include <csignal>
#include <cstdio>

#include "server/net/ingest_server.h"
#include "sim/protocol_spec.h"
#include "util/cli.h"

namespace {

loloha::IngestServer* g_server = nullptr;

// Stop() only writes an atomic and an eventfd — async-signal-safe.
void HandleSignal(int) {
  if (g_server != nullptr) g_server->Stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace loloha;
  const CommandLine cli(argc, argv);

  const std::string spec_text =
      cli.GetString("spec", "ololoha:eps_perm=2,eps_first=1");
  ProtocolSpec spec;
  std::string error;
  if (!ProtocolSpec::Parse(spec_text, &spec, &error)) {
    std::printf("ERROR: bad --spec \"%s\": %s\n", spec_text.c_str(),
                error.c_str());
    return 1;
  }
  if (!spec.IsLolohaVariant() && !spec.IsDBitFlipVariant()) {
    std::printf("ERROR: --spec %s has no wire collector (serve a LOLOHA or "
                "dBitFlipPM variant)\n",
                spec_text.c_str());
    return 1;
  }
  const uint32_t k = static_cast<uint32_t>(cli.GetInt("k", 1024));

  IngestServerConfig config;
  config.port = static_cast<uint16_t>(cli.GetInt("port", 7570));
  config.enable_stats = !cli.HasFlag("no-stats");
  config.stats_port = static_cast<uint16_t>(cli.GetInt("stats-port", 7571));
  config.num_shards = static_cast<uint32_t>(cli.GetInt("shards", 4));
  config.flush_max_batch =
      static_cast<uint32_t>(cli.GetInt("flush-batch", 4096));
  config.flush_deadline_ms = static_cast<uint32_t>(cli.GetInt("flush-ms", 10));
  config.queue_capacity = static_cast<uint32_t>(cli.GetInt("queue-cap", 8));
  config.collector_options.num_threads =
      static_cast<uint32_t>(cli.GetInt("threads", 1));
  config.enable_monitor = cli.HasFlag("monitor");
  config.monitor_z_threshold = cli.GetDouble("z", 4.0);

  IngestServer server(spec, k, config);
  if (!server.Start()) {
    std::printf("ERROR: cannot bind %s:%u (stats %u)\n",
                config.bind_address.c_str(), config.port, config.stats_port);
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::printf("loloha_server: %s over k=%u\n", spec.DisplayName().c_str(), k);
  std::printf("listening on %s:%u", config.bind_address.c_str(),
              server.port());
  if (config.enable_stats) std::printf(", stats on :%u", server.stats_port());
  std::printf("  (shards=%u, flush=%u msgs / %u ms, queue=%u batches)\n",
              config.num_shards, config.flush_max_batch,
              config.flush_deadline_ms, config.queue_capacity);
  std::fflush(stdout);

  server.Run();
  g_server = nullptr;

  const CollectorStats totals = server.TotalStats();
  const IngestServerStats stats = server.server_stats();
  std::printf(
      "shutdown: %llu steps, %llu users, %llu hellos, %llu reports, "
      "%llu rejects, %llu protocol errors, %llu stalls\n",
      static_cast<unsigned long long>(stats.steps_completed),
      static_cast<unsigned long long>(server.TotalRegisteredUsers()),
      static_cast<unsigned long long>(totals.hellos_accepted),
      static_cast<unsigned long long>(totals.reports_accepted),
      static_cast<unsigned long long>(totals.rejected_malformed +
                                      totals.rejected_unknown_user +
                                      totals.rejected_duplicate),
      static_cast<unsigned long long>(stats.protocol_errors),
      static_cast<unsigned long long>(stats.backpressure_stalls));
  return 0;
}

// Table 1 shim: the comparison is plans/table1_comparison.plan — prefer
// `loloha_experiments --plan=plans/table1_comparison.plan`. Kept one
// release for bit-equivalence gating of the plan-driven driver.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return loloha::bench::RunLegacyPlanMain("table1_comparison", argc, argv);
}

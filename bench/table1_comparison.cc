// Table 1: theoretical comparison — communication bits per user per time
// step, server run-time class, and worst-case longitudinal privacy budget
// under Definition 3.2. Printed symbolically and instantiated on the
// paper's Syn configuration (k = 360, b = k, d in {1, b}, ε∞ = 1).

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/loloha_params.h"
#include "core/theory.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace loloha;
  const CommandLine cli(argc, argv);
  const bench::HarnessConfig config =
      bench::ParseHarness(cli, "table1_comparison.csv");

  const uint32_t k = static_cast<uint32_t>(cli.GetInt("k", 360));
  const uint32_t b = static_cast<uint32_t>(cli.GetInt("b", k));
  const double eps = cli.GetDouble("eps", 1.0);
  const double eps1 = cli.GetDouble("eps1", 0.5 * eps);

  TextTable table({"protocol", "comm bits/report", "server run-time",
                   "privacy budget (symbolic)", "budget at eps_inf=" +
                       FormatDouble(eps, 3)});

  struct Row {
    ProtocolId id;
    const char* symbolic;
  };
  const Row rows[] = {
      {ProtocolId::kBiLoloha, "g eps_inf (g = 2)"},
      {ProtocolId::kOLoloha, "g eps_inf (g = Eq. 6)"},
      {ProtocolId::kLGrr, "k eps_inf"},
      {ProtocolId::kRappor, "k eps_inf"},
      {ProtocolId::kLOsue, "k eps_inf"},
      {ProtocolId::kOneBitFlipPm, "min(d+1, b) eps_inf (d = 1)"},
      {ProtocolId::kBBitFlipPm, "min(d+1, b) eps_inf (d = b)"},
  };
  for (const Row& row : rows) {
    const ProtocolCharacteristics c =
        Characteristics(row.id, k, b, 1, eps, eps1);
    table.AddRow({c.name, FormatDouble(c.comm_bits_per_report, 6),
                  c.server_runtime, row.symbolic,
                  FormatDouble(c.worst_case_budget, 6)});
  }

  std::printf(
      "Table 1 — theoretical comparison (k=%u, b=%u, eps_inf=%g, "
      "eps1=%g)\n\n%s\n",
      k, b, eps, eps1, table.ToString().c_str());
  std::printf("OLOLOHA resolved g = %u at (eps_inf=%g, eps1=%g)\n",
              OptimalLolohaG(eps, eps1), eps, eps1);
  if (!config.out_csv.empty()) table.WriteCsv(config.out_csv);
  return 0;
}

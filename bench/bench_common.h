// Shared harness for the figure/table reproduction binaries.
//
// Every binary accepts:
//   --full           paper-scale n and runs (slow on one core)
//   --scale=S        divide n by S (default 5 unless --full)
//   --runs=R         Monte-Carlo repetitions (default 2, paper used 20)
//   --threads=T      worker threads (default 1; 0 = all hardware threads).
//                    The fig3 panels build ONE shared ThreadPool of T
//                    threads and parallelize the Monte-Carlo runs x
//                    protocols outer loop on it (sim/monte_carlo.h); the
//                    runners borrow the same pool for their inner per-step
//                    sharding. Estimates are byte-identical for every T —
//                    only wall-clock changes. The remaining figures/tables
//                    evaluate closed forms or per-client paths and run
//                    single-threaded.
//   --seed=N         base seed (default 20230328, the EDBT'23 date)
//   --out=PATH.csv   where to write the CSV copy of the printed table
//                    (default: results/<binary>.csv, directory auto-created)
//
// The protocol-grid binaries additionally accept
//   --protocols=S    semicolon-separated ProtocolSpec strings
//                    (sim/protocol_spec.h), e.g.
//                    --protocols="ololoha;l-grr;bbitflip:bucket_divisor=4".
//                    Replaces the panel's default paper legend; the panel's
//                    (ε∞, α) grid overrides each spec's budgets, so only
//                    the protocol and its structural extras matter here.
//
// Scaling note: the protocols' MSE is (in expectation) proportional to
// 1/n, so dividing n by S preserves every comparison in Fig. 3 (who wins,
// crossovers) while multiplying absolute values by ~S. EXPERIMENTS.md
// records which configuration produced the stored outputs.

#ifndef LOLOHA_BENCH_BENCH_COMMON_H_
#define LOLOHA_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "sim/protocol_spec.h"
#include "util/cli.h"

namespace loloha::bench {

struct HarnessConfig {
  uint32_t scale = 5;     // divide dataset n by this
  uint32_t runs = 2;      // Monte-Carlo repetitions
  uint32_t threads = 1;   // RunnerOptions::num_threads (0 = hardware)
  uint64_t seed = 20230328;
  std::string out_csv;    // empty = derive from program name
  bool quick = false;     // extra-small smoke mode
};

HarnessConfig ParseHarness(const CommandLine& cli,
                           const std::string& default_out);

// The paper's privacy grids.
std::vector<double> EpsPermGrid();                 // 0.5, 1.0, ..., 5.0
std::vector<double> AlphaGridFig2();               // 0.1 ... 0.6
std::vector<double> AlphaGridFig34();              // 0.4, 0.5, 0.6

// Builds one of the paper's four datasets with n divided by
// `config.scale` (and tau capped in --quick mode). `which` is one of
// "syn", "adult", "db_mt", "db_de".
Dataset MakeDataset(const std::string& which, const HarnessConfig& config,
                    uint64_t seed);

// Mean of `values`.
double Mean(const std::vector<double>& values);

// Parses the --protocols= flag (semicolon-separated spec strings) into
// specs, or returns `defaults` when the flag is absent. Exits with a
// usage message on a malformed spec.
std::vector<ProtocolSpec> ParseProtocolSpecs(const CommandLine& cli,
                                             std::vector<ProtocolSpec> defaults);

// One Fig. 3 panel's evaluation settings (Sec. 5.2): dBitFlipPM is
// excluded on the DB_* panels and runs at b = k/4 there. Shared by the
// four fig3 MSE panels and the fig4 accounting bench.
struct Fig3Panel {
  const char* dataset;
  bool include_dbitflip;
  uint32_t bucket_divisor;
};
std::span<const Fig3Panel> Fig3Panels();
const Fig3Panel& Fig3PanelFor(const std::string& dataset_name);

// Shared driver for the four Fig. 3 panels: runs the legend (the paper's
// default, or --protocols= spec strings) over the named dataset for the
// full (ε∞, α) grid and prints/persists MSE_avg rows. The per-panel
// settings — dBitFlipPM inclusion (excluded for the DB_* panels, whose
// b < k histograms are not comparable, Sec. 5.2) and the paper's bucket
// divisor (b = k or b = k/4) — are looked up from the dataset name.
int RunFig3Panel(const std::string& dataset_name, int argc, char** argv);

}  // namespace loloha::bench

#endif  // LOLOHA_BENCH_BENCH_COMMON_H_

// Shared harness for the benchmark binaries.
//
// The paper's figure/table reproductions are declarative ExperimentPlans
// (sim/experiment.h): each lives in plans/<name>.plan and runs through
// the one `loloha_experiments --plan=<file>` driver.
//
// Every plan-driven binary accepts the plan-override flags:
//   --quick          smoke mode (scale >= 20, one run, tau <= 20)
//   --full           paper-scale n (scale = 1; slow on one core)
//   --scale=S        divide dataset n by S
//   --runs=R         Monte-Carlo repetitions
//   --threads=T      worker threads (0 = all hardware threads). One shared
//                    ThreadPool drives the Monte-Carlo (runs x protocols)
//                    outer loop AND the runners' inner per-step shards;
//                    results are byte-identical for every T.
//   --seed=N         base seed
//   --slice=i/N      distributed slicing: compute only the units owned by
//                    slice i of N and emit "<out>.slice-i-of-N.*" partials
//                    instead of tables (merge with tools/loloha_merge)
//   --out=PATH.csv   CSV artifact path ([output] csv override); missing
//                    parent directories are created up front
//   --json=PATH      JSON artifact path ([output] json override)
//   --protocols=S    semicolon-separated ProtocolSpec strings replacing
//                    the plan's legend (the plan's (eps_inf, alpha) grid
//                    overrides each spec's budget placeholders)
//   --n= --k= --b= --eps= --eps1=   kind-specific scalar overrides
//
// The ablation/perf benches below predate the plan layer and still use
// HarnessConfig directly.
//
// Scaling note: the protocols' MSE is (in expectation) proportional to
// 1/n, so dividing n by S preserves every comparison in Fig. 3 (who wins,
// crossovers) while multiplying absolute values by ~S. EXPERIMENTS.md
// records which configuration produced the stored outputs.

#ifndef LOLOHA_BENCH_BENCH_COMMON_H_
#define LOLOHA_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "sim/experiment.h"
#include "sim/protocol_spec.h"
#include "util/cli.h"

namespace loloha::bench {

struct HarnessConfig {
  uint32_t scale = 5;     // divide dataset n by this
  uint32_t runs = 2;      // Monte-Carlo repetitions
  uint32_t threads = 1;   // RunnerOptions::num_threads (0 = hardware)
  uint64_t seed = 20230328;
  std::string out_csv;    // empty = derive from program name
  bool quick = false;     // extra-small smoke mode
};

HarnessConfig ParseHarness(const CommandLine& cli,
                           const std::string& default_out);

// Builds one of the paper's four datasets with n divided by
// `config.scale` (and tau capped in --quick mode). `which` is one of
// "syn", "adult", "db_mt", "db_de". Thin wrapper over BuildPlanDataset —
// plan-driven and harness-driven runs construct identical bytes.
Dataset MakeDataset(const std::string& which, const HarnessConfig& config,
                    uint64_t seed);

// Parses the --protocols= flag (semicolon-separated spec strings) into
// specs, or returns `defaults` when the flag is absent. Exits with a
// usage message on a malformed spec.
std::vector<ProtocolSpec> ParseProtocolSpecs(const CommandLine& cli,
                                             std::vector<ProtocolSpec> defaults);

// Applies the plan-override flags documented above to a loaded plan.
// Exits with a usage message on a malformed value.
void ApplyPlanOverrides(const CommandLine& cli, ExperimentPlan* plan);

// Runs a loaded plan end to end: overrides applied, thread pool sized
// from the plan, sinks from its [output] section. Returns the process
// exit code (0 = success).
int RunPlanMain(ExperimentPlan plan, const CommandLine& cli);

}  // namespace loloha::bench

#endif  // LOLOHA_BENCH_BENCH_COMMON_H_

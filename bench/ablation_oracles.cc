// Ablation: one-shot frequency oracle comparison (the substrate layer of
// Sec. 2.3, extended with Hadamard Response and Subset Selection).
// Measures MSE on a Zipf workload and reports communication bits per
// report, echoing the trade-off table of Wang et al. that motivates
// LOLOHA's use of local hashing.

#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "data/generators.h"
#include "oracle/grr.h"
#include "oracle/hadamard.h"
#include "oracle/local_hash.h"
#include "oracle/subset_selection.h"
#include "oracle/unary.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace loloha;
  const CommandLine cli(argc, argv);
  const bench::HarnessConfig config =
      bench::ParseHarness(cli, "ablation_oracles.csv");

  const uint32_t k = static_cast<uint32_t>(cli.GetInt("k", 128));
  const uint32_t n =
      static_cast<uint32_t>(cli.GetInt("n", 100000 / config.scale));
  const Dataset data = GenerateZipf(n, k, 1, 1.2, 0.0, config.seed);
  const std::vector<double> truth = data.TrueFrequenciesAt(0);
  const std::vector<uint32_t> values = data.StepValues(0);

  struct Entry {
    std::string name;
    double bits;
    std::function<std::vector<double>(double, Rng&)> run;
  };
  std::vector<Entry> oracles;
  oracles.push_back({"GRR", std::ceil(std::log2(k)),
                     [&](double eps, Rng& rng) {
                       GrrClient client(k, eps);
                       GrrServer server(k, eps);
                       for (const uint32_t v : values) {
                         server.Accumulate(client.Perturb(v, rng));
                       }
                       return server.Estimate();
                     }});
  // The UE oracles batch their reports through the SIMD column-sum path
  // (UeServer::AccumulateBatch); bit-identical to per-report Accumulate.
  const auto run_ue = [&values, k](UeKind kind, double eps, Rng& rng) {
    UeClient client(k, eps, kind);
    UeServer server(k, eps, kind);
    std::vector<uint8_t> reports;
    reports.reserve(values.size() * k);
    for (const uint32_t v : values) {
      const std::vector<uint8_t> report = client.Perturb(v, rng);
      reports.insert(reports.end(), report.begin(), report.end());
    }
    server.AccumulateBatch(reports.data(), values.size());
    return server.Estimate();
  };
  oracles.push_back({"SUE", static_cast<double>(k),
                     [&run_ue](double eps, Rng& rng) {
                       return run_ue(UeKind::kSymmetric, eps, rng);
                     }});
  oracles.push_back({"OUE", static_cast<double>(k),
                     [&run_ue](double eps, Rng& rng) {
                       return run_ue(UeKind::kOptimized, eps, rng);
                     }});
  oracles.push_back(
      {"OLH", 0.0,  // resolved per eps below; ~log2(e^eps + 1) + hash seed
       [&](double eps, Rng& rng) {
         LhClient client = MakeOlhClient(k, eps);
         LhServer server = MakeOlhServer(k, eps);
         for (const uint32_t v : values) {
           server.Accumulate(client.Perturb(v, rng));
         }
         return server.Estimate();
       }});
  oracles.push_back({"HR", 0.0,  // ceil(log2 K)
                     [&](double eps, Rng& rng) {
                       HadamardResponseClient client(k, eps);
                       HadamardResponseServer server(k, eps);
                       for (const uint32_t v : values) {
                         server.Accumulate(client.Perturb(v, rng));
                       }
                       return server.Estimate();
                     }});
  oracles.push_back({"SS", 0.0,  // w * ceil(log2 k)
                     [&](double eps, Rng& rng) {
                       SubsetSelectionClient client(k, eps);
                       SubsetSelectionServer server(k, eps);
                       for (const uint32_t v : values) {
                         server.Accumulate(client.Perturb(v, rng));
                       }
                       return server.Estimate();
                     }});

  TextTable table({"oracle", "eps=0.5", "eps=1", "eps=2", "eps=4",
                   "bits/report (eps=1)"});
  for (const Entry& oracle : oracles) {
    std::vector<std::string> row = {oracle.name};
    for (const double eps : {0.5, 1.0, 2.0, 4.0}) {
      double mse = 0.0;
      for (uint32_t r = 0; r < config.runs; ++r) {
        Rng rng(config.seed + 17 * r + static_cast<uint64_t>(eps * 10));
        mse += MeanSquaredError(truth, oracle.run(eps, rng));
      }
      row.push_back(FormatDouble(mse / config.runs, 4));
    }
    double bits = oracle.bits;
    if (oracle.name == "OLH") {
      bits = std::ceil(std::log2(OlhRange(1.0)));
    } else if (oracle.name == "HR") {
      bits = std::ceil(std::log2(2 * k));
    } else if (oracle.name == "SS") {
      bits = SubsetSize(k, 1.0) * std::ceil(std::log2(k));
    }
    row.push_back(FormatDouble(bits, 5));
    table.AddRow(std::move(row));
  }

  std::printf(
      "Ablation — one-shot oracle comparison on Zipf(1.2), k=%u, n=%u, "
      "runs=%u\n\n%s\n",
      k, n, config.runs, table.ToString().c_str());
  if (!config.out_csv.empty()) table.WriteCsv(config.out_csv);
  return 0;
}

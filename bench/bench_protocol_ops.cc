// Micro-benchmarks: client-side perturbation and server-side aggregation
// throughput for every protocol (google-benchmark). Not a paper figure —
// these quantify the "Comm. / Server run-time" column of Table 1 in wall
// clock terms.

#include <benchmark/benchmark.h>

#include "core/loloha.h"
#include "core/loloha_params.h"
#include "longitudinal/dbitflip.h"
#include "longitudinal/lgrr.h"
#include "longitudinal/lue.h"
#include "oracle/grr.h"
#include "oracle/local_hash.h"
#include "oracle/unary.h"
#include "util/rng.h"

namespace {

using namespace loloha;

constexpr double kEps = 2.0;
constexpr double kEps1 = 1.0;

void BM_GrrPerturb(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  GrrClient client(k, kEps);
  Rng rng(1);
  uint32_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Perturb(v, rng));
    v = (v + 1) % k;
  }
}
BENCHMARK(BM_GrrPerturb)->Arg(16)->Arg(360)->Arg(1412);

void BM_UePerturb(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  UeClient client(k, kEps, UeKind::kOptimized);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Perturb(7 % k, rng));
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_UePerturb)->Arg(96)->Arg(360)->Arg(1412);

void BM_LhPerturb(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  LhClient client = MakeOlhClient(k, kEps);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Perturb(5 % k, rng));
  }
}
BENCHMARK(BM_LhPerturb)->Arg(360)->Arg(1412);

void BM_LhServerAccumulate(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  LhClient client = MakeOlhClient(k, kEps);
  LhServer server = MakeOlhServer(k, kEps);
  Rng rng(1);
  const LhReport report = client.Perturb(3 % k, rng);
  for (auto _ : state) {
    server.Accumulate(report);
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_LhServerAccumulate)->Arg(360)->Arg(1412);

void BM_LolohaClientReport(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  Rng rng(1);
  const LolohaParams params = MakeOLolohaParams(k, kEps, kEps1);
  LolohaClient client(params, rng);
  uint32_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Report(v, rng));
    v = (v + 1) % k;
  }
}
BENCHMARK(BM_LolohaClientReport)->Arg(360)->Arg(1412);

void BM_LolohaPopulationStep(benchmark::State& state) {
  const uint32_t k = 360;
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Rng rng(1);
  const LolohaParams params = MakeBiLolohaParams(k, kEps, kEps1);
  LolohaPopulation population(params, n, rng);
  std::vector<uint32_t> values(n);
  for (uint32_t u = 0; u < n; ++u) {
    values[u] = static_cast<uint32_t>(rng.UniformInt(k));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(population.Step(values, rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LolohaPopulationStep)->Arg(1000)->Arg(10000);

void BM_LGrrClientReport(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  const ChainedParams chain = LGrrChain(kEps, kEps1, k);
  LongitudinalGrrClient client(k, chain);
  Rng rng(1);
  uint32_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Report(v, rng));
    v = (v + 7) % k;
  }
}
BENCHMARK(BM_LGrrClientReport)->Arg(360)->Arg(1412);

void BM_LuePopulationStep(benchmark::State& state) {
  const uint32_t k = 96;
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const ChainedParams chain = LOsueChain(kEps, kEps1);
  LongitudinalUePopulation population(k, n, chain);
  Rng rng(1);
  std::vector<uint32_t> values(n);
  for (uint32_t u = 0; u < n; ++u) {
    values[u] = static_cast<uint32_t>(rng.UniformInt(k));
  }
  for (auto _ : state) {
    // Re-randomize ~all values to exercise the memo update path.
    for (uint32_t u = 0; u < n; ++u) {
      values[u] = static_cast<uint32_t>(rng.UniformInt(k));
    }
    benchmark::DoNotOptimize(population.Step(values, rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LuePopulationStep)->Arg(1000)->Arg(10000);

void BM_DBitFlipPopulationStep(benchmark::State& state) {
  const uint32_t k = 360;
  const uint32_t b = 360;
  const uint32_t d = static_cast<uint32_t>(state.range(0));
  const uint32_t n = 5000;
  Rng rng(1);
  const Bucketizer bucketizer(k, b);
  DBitFlipPopulation population(bucketizer, d, kEps, n, rng);
  std::vector<uint32_t> values(n);
  for (uint32_t u = 0; u < n; ++u) {
    values[u] = static_cast<uint32_t>(rng.UniformInt(k));
  }
  for (auto _ : state) {
    for (uint32_t u = 0; u < n; ++u) {
      if (rng.Bernoulli(0.25)) {
        values[u] = static_cast<uint32_t>(rng.UniformInt(k));
      }
    }
    benchmark::DoNotOptimize(population.Step(values, rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DBitFlipPopulationStep)->Arg(1)->Arg(360);

}  // namespace

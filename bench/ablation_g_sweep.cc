// Ablation: LOLOHA utility as a function of the hash range g, validating
// the optimal-g selection of Eq. (6) against both the analytic V* curve
// and measured MSE on a Syn-like workload. DESIGN.md calls this out as
// the central design choice of OLOLOHA (utility vs the g·ε∞ budget).

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "core/loloha.h"
#include "core/loloha_params.h"
#include "data/generators.h"
#include "sim/metrics.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace loloha;
  const CommandLine cli(argc, argv);
  const bench::HarnessConfig config =
      bench::ParseHarness(cli, "ablation_g_sweep.csv");

  const double eps = cli.GetDouble("eps", 4.0);
  const double alpha = cli.GetDouble("alpha", 0.5);
  const double eps1 = alpha * eps;
  const uint32_t g_max = static_cast<uint32_t>(cli.GetInt("gmax", 16));
  const uint32_t g_opt = OptimalLolohaG(eps, eps1);

  const Dataset data =
      GenerateSyn(10000 / config.scale, 360, config.quick ? 10 : 30, 0.25,
                  config.seed);

  TextTable table({"g", "V* (Eq. 5)", "MSE_avg (measured)",
                   "budget g*eps_inf", "is_eq6_choice"});
  for (uint32_t g = 2; g <= g_max; ++g) {
    const double vstar =
        LolohaApproximateVariance(data.n(), g, eps, eps1);
    double mse = 0.0;
    for (uint32_t r = 0; r < config.runs; ++r) {
      Rng rng(config.seed + 101 * r + g);
      const LolohaParams params = MakeLolohaParams(data.k(), g, eps, eps1);
      LolohaPopulation population(params, data.n(), rng);
      std::vector<std::vector<double>> estimates;
      estimates.reserve(data.tau());
      for (uint32_t t = 0; t < data.tau(); ++t) {
        estimates.push_back(population.Step(data.StepValues(t), rng));
      }
      mse += MseAvg(data, estimates);
    }
    mse /= config.runs;
    table.AddRow({std::to_string(g), FormatDouble(vstar, 5),
                  FormatDouble(mse, 5), FormatDouble(g * eps, 4),
                  g == g_opt ? "<== Eq. 6" : ""});
  }

  std::printf(
      "Ablation — LOLOHA g sweep at eps_inf=%g, eps1=%g (n=%u, k=%u, "
      "tau=%u, runs=%u)\nEq. 6 selects g = %u\n\n%s\n",
      eps, eps1, data.n(), data.k(), data.tau(), config.runs,
      g_opt, table.ToString().c_str());
  if (!config.out_csv.empty()) table.WriteCsv(config.out_csv);
  return 0;
}

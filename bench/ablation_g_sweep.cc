// Ablation: LOLOHA utility as a function of the hash range g, validating
// the optimal-g selection of Eq. (6) against both the analytic V* curve
// and measured MSE on a Syn-like workload. DESIGN.md calls this out as
// the central design choice of OLOLOHA (utility vs the g·ε∞ budget).
//
// Each row is one pinned-g ProtocolSpec ("ololoha:g=<g>,...") run through
// the registry factory — the sweep is a spec loop, not bespoke wiring.
// --protocol= overrides the base spec's budgets (its g is swept).

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "core/loloha_params.h"
#include "data/generators.h"
#include "sim/metrics.h"
#include "sim/runner.h"
#include "util/table.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace loloha;
  const CommandLine cli(argc, argv);
  const bench::HarnessConfig config =
      bench::ParseHarness(cli, "ablation_g_sweep.csv");

  ProtocolSpec base = ProtocolSpec::MustParse(
      cli.GetString("protocol", "ololoha:eps_perm=4,eps_first=2"));
  if (!base.IsLolohaVariant()) {
    std::fprintf(stderr, "--protocol: expected a LOLOHA variant, got '%s'\n",
                 base.ToString().c_str());
    return 2;
  }
  const double eps = base.eps_perm;
  const double eps1 = base.eps_first;
  const uint32_t g_max = static_cast<uint32_t>(cli.GetInt("gmax", 16));
  const uint32_t g_opt = OptimalLolohaG(eps, eps1);

  const Dataset data =
      GenerateSyn(10000 / config.scale, 360, config.quick ? 10 : 30, 0.25,
                  config.seed);

  ThreadPool pool(config.threads == 0 ? ThreadPool::HardwareThreads()
                                      : config.threads);
  RunnerOptions options;
  options.num_threads = config.threads;
  options.pool = &pool;

  TextTable table({"spec", "V* (Eq. 5)", "MSE_avg (measured)",
                   "budget g*eps_inf", "is_eq6_choice"});
  for (uint32_t g = 2; g <= g_max; ++g) {
    ProtocolSpec spec = base;
    spec.id = g == 2 ? ProtocolId::kBiLoloha : ProtocolId::kOLoloha;
    spec.g = g;
    const double vstar =
        LolohaApproximateVariance(data.n(), g, eps, eps1);
    const auto runner = MakeRunner(spec, options);
    double mse = 0.0;
    for (uint32_t r = 0; r < config.runs; ++r) {
      const RunResult result =
          runner->Run(data, config.seed + 101 * r + g);
      mse += MseAvg(data, result.estimates);
    }
    mse /= config.runs;
    table.AddRow({spec.ToString(), FormatDouble(vstar, 5),
                  FormatDouble(mse, 5), FormatDouble(g * eps, 4),
                  g == g_opt ? "<== Eq. 6" : ""});
  }

  std::printf(
      "Ablation — LOLOHA g sweep at eps_inf=%g, eps1=%g (n=%u, k=%u, "
      "tau=%u, runs=%u)\nEq. 6 selects g = %u\n\n%s\n",
      eps, eps1, data.n(), data.k(), data.tau(), config.runs,
      g_opt, table.ToString().c_str());
  if (!config.out_csv.empty()) table.WriteCsv(config.out_csv);
  return 0;
}

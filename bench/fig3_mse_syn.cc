// Figure 3a shim: the panel is plans/fig3_syn.plan — prefer
// `loloha_experiments --plan=plans/fig3_syn.plan`. Kept one release for
// bit-equivalence gating of the plan-driven driver.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return loloha::bench::RunLegacyPlanMain("fig3_syn", argc, argv);
}

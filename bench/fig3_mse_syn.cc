// Figure 3a: MSE_avg on the Syn dataset (k = 360, n = 10000, tau = 120,
// p_ch = 0.25), seven methods, eps grid x alpha in {0.4, 0.5, 0.6}.
// dBitFlipPM runs with b = k as in the paper.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return loloha::bench::RunFig3Panel("syn", argc, argv);
}

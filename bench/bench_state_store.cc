// bench_state_store: memory and checkpoint cost of the user-state
// backends (server/store/user_state_store.h), plus the snapshot/restore
// smoke that gates the format end to end.
//
// Phase 1 — memory: registers N synthetic users (ids = Mix64(u), the
// same keys a real deployment hashes) into MapStore and FlatStore with
// the LOLOHA 16-byte slot, both Reserved up front, and reports resident
// bytes/user plus insert/find throughput. The run FAILS (nonzero exit)
// unless FlatStore's bytes/user is at most half of MapStore's — the
// compaction claim docs/STATE_BACKENDS.md makes.
//
// Phase 2 — snapshot: serializes the flat table through the mmap
// writer (server/store/snapshot_file.h), reads it back, and verifies
// the round trip reproduces the exact image; reports file bytes and
// write/read MB/s.
//
// Phase 3 (--server-smoke) — loopback recovery: drives a small LOLOHA
// fleet through a snapshotting IngestServer, shuts it down after step
// 1, starts a fresh server from the shard snapshots, drives step 2,
// and requires estimates AND cumulative collector counters to be
// byte-identical to one uninterrupted in-process collector. This is
// the `smoke.snapshot_restore` ctest leg.
//
//   --users=N        synthetic users for phases 1-2 (default 10000000;
//                    --quick: 200000)
//   --quick          small sizes for CI (also enables nothing else)
//   --server-smoke   run phase 3 (fixed small size, independent of N)
//   --json=PATH      write results as JSON (CI uploads
//                    BENCH_state_store.json)
//
// Exits nonzero if the memory gate, a round-trip check, or the smoke
// fails.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/loloha.h"
#include "core/loloha_params.h"
#include "server/collector.h"
#include "server/net/framing.h"
#include "server/net/ingest_server.h"
#include "server/store/snapshot_file.h"
#include "server/store/user_state_store.h"
#include "sim/protocol_spec.h"
#include "util/check.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"
#include "wire/encoding.h"

namespace {

using namespace loloha;

constexpr uint32_t kSlotBytes = LolohaCollector::kSlotBytes;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::string PidLocalPath(const char* stem, const char* ext) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s_%d%s", stem,
                static_cast<int>(getpid()), ext);
  return buf;
}

// ---------------------------------------------------------------------------
// Phase 1: bytes/user and raw table throughput.
// ---------------------------------------------------------------------------

struct MemoryRow {
  std::string name;
  uint64_t users = 0;
  uint64_t bytes = 0;
  double bytes_per_user = 0.0;
  double insert_mops = 0.0;
  double find_mops = 0.0;
};

MemoryRow MeasureBackend(StoreKind kind, uint64_t users) {
  MemoryRow row;
  row.name = StoreKindName(kind);
  row.users = users;

  StoreConfig config;
  config.kind = kind;
  config.reserve_users = users;
  const std::unique_ptr<UserStateStore> store =
      MakeUserStateStore(config, kSlotBytes);

  const auto insert_start = std::chrono::steady_clock::now();
  for (uint64_t u = 0; u < users; ++u) {
    const uint64_t id = Mix64(u);
    const UserRef ref = store->Insert(id);
    std::memcpy(ref.state, &id, sizeof(id));
    std::memcpy(ref.state + 8, &u, sizeof(u));
  }
  const double insert_s = SecondsSince(insert_start);

  const auto find_start = std::chrono::steady_clock::now();
  uint64_t found = 0;
  for (uint64_t u = 0; u < users; ++u) {
    found += store->Find(Mix64(u)) ? 1 : 0;
  }
  const double find_s = SecondsSince(find_start);
  LOLOHA_CHECK_MSG(found == users, "backend lost registered users");
  LOLOHA_CHECK(store->user_count() == users);

  row.bytes = store->MemoryBytes();
  row.bytes_per_user =
      static_cast<double>(row.bytes) / static_cast<double>(users);
  row.insert_mops = static_cast<double>(users) / insert_s / 1e6;
  row.find_mops = static_cast<double>(users) / find_s / 1e6;
  std::printf(".");
  std::fflush(stdout);
  return row;
}

// ---------------------------------------------------------------------------
// Phase 2: snapshot write/read throughput + round-trip identity.
// ---------------------------------------------------------------------------

struct SnapshotRow {
  uint64_t file_bytes = 0;
  double write_mbps = 0.0;
  double read_mbps = 0.0;
  bool roundtrip_identical = false;
};

SnapshotRow MeasureSnapshot(uint64_t users) {
  SnapshotRow row;

  StoreConfig config;
  config.kind = StoreKind::kFlat;
  config.reserve_users = users;
  const std::unique_ptr<UserStateStore> store =
      MakeUserStateStore(config, kSlotBytes);
  for (uint64_t u = 0; u < users; ++u) {
    const uint64_t id = Mix64(u);
    const UserRef ref = store->Insert(id);
    std::memcpy(ref.state, &id, sizeof(id));
    std::memcpy(ref.state + 8, &u, sizeof(u));
  }

  SnapshotContext context;
  context.signature = "bench_state_store loloha-shaped";
  context.step = 7;
  context.aux.assign(40, '\x5a');
  const SnapshotData data = BuildSnapshotData(*store, context);
  row.file_bytes = SnapshotByteSize(data);

  const std::string path = PidLocalPath("bench_state_store", ".snap");
  std::string error;
  const auto write_start = std::chrono::steady_clock::now();
  LOLOHA_CHECK_MSG(WriteSnapshotFile(path, data, &error), error.c_str());
  const double write_s = SecondsSince(write_start);

  SnapshotData restored;
  const auto read_start = std::chrono::steady_clock::now();
  LOLOHA_CHECK_MSG(ReadSnapshotFile(path, &restored, &error), error.c_str());
  const double read_s = SecondsSince(read_start);
  std::remove(path.c_str());

  row.roundtrip_identical = restored == data;
  const double mb = static_cast<double>(row.file_bytes) / (1024.0 * 1024.0);
  row.write_mbps = mb / write_s;
  row.read_mbps = mb / read_s;
  std::printf(".");
  std::fflush(stdout);
  return row;
}

// ---------------------------------------------------------------------------
// Phase 3: loopback snapshot/restore smoke (the ctest leg).
// ---------------------------------------------------------------------------

// Minimal blocking client — bench_client_load's plumbing, single-threaded.
int ConnectLoopback(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return -1;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void WriteAll(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0 && errno == EINTR) continue;
    LOLOHA_CHECK_MSG(n > 0, "client write failed");
    off += static_cast<size_t>(n);
  }
}

void ReadExact(int fd, char* buf, size_t size) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n = read(fd, buf + off, size - off);
    if (n < 0 && errno == EINTR) continue;
    LOLOHA_CHECK_MSG(n > 0, "client read failed (server closed early?)");
    off += static_cast<size_t>(n);
  }
}

Frame ReadFrame(int fd) {
  char header[kFrameHeaderBytes];
  ReadExact(fd, header, sizeof(header));
  uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<uint32_t>(static_cast<uint8_t>(header[i]))
                   << (8 * i);
  }
  std::string payload(payload_len, '\0');
  if (payload_len > 0) ReadExact(fd, payload.data(), payload_len);
  FrameParser parser;
  parser.Feed(header, sizeof(header));
  parser.Feed(payload.data(), payload.size());
  Frame frame;
  LOLOHA_CHECK_MSG(parser.Next(&frame) == FrameStatus::kFrame,
                   "malformed frame from server");
  return frame;
}

// Drives one phase of traffic over a single connection and fences it.
void SendPhase(int fd, const std::vector<Message>& messages) {
  std::string buf;
  for (const Message& message : messages) {
    AppendDataFrame(message.user_id, message.bytes, &buf);
  }
  AppendControlFrame(FrameType::kBarrier, &buf);
  WriteAll(fd, buf);
  LOLOHA_CHECK_MSG(ReadFrame(fd).type == FrameType::kBarrierAck,
                   "expected kBarrierAck");
}

std::vector<double> EndStepOver(int control) {
  std::string end_step;
  AppendControlFrame(FrameType::kEndStep, &end_step);
  WriteAll(control, end_step);
  const Frame frame = ReadFrame(control);
  LOLOHA_CHECK_MSG(frame.type == FrameType::kEstimates, "expected kEstimates");
  return frame.estimates;
}

void ShutdownServer(int control, std::thread* server_thread) {
  std::string shutdown;
  AppendControlFrame(FrameType::kShutdown, &shutdown);
  WriteAll(control, shutdown);
  server_thread->join();
  close(control);
}

IngestServerConfig SmokeServerConfig(const std::string& dir, bool restore) {
  IngestServerConfig config;
  config.num_shards = 2;
  config.enable_stats = false;
  config.collector_options.store.kind = StoreKind::kSnapshot;
  config.snapshot_dir = dir;
  config.restore_snapshots = restore;
  return config;
}

bool RunServerSmoke() {
  const uint32_t users = 1500;
  const uint32_t k = 256;
  ProtocolSpec spec;
  spec.id = ProtocolId::kOLoloha;
  spec.g = 8;
  spec.eps_perm = 2.0;
  spec.eps_first = 1.0;

  Rng rng(20230807);
  const LolohaParams params = LolohaParamsForSpec(spec, k);
  std::vector<LolohaClient> clients;
  clients.reserve(users);
  std::vector<Message> hellos;
  hellos.reserve(users);
  for (uint32_t u = 0; u < users; ++u) {
    clients.emplace_back(params, rng);
    hellos.push_back(Message{u, EncodeLolohaHello(clients[u].hash())});
  }
  std::vector<std::vector<Message>> steps(2);
  for (uint32_t t = 0; t < 2; ++t) {
    steps[t].reserve(users);
    for (uint32_t u = 0; u < users; ++u) {
      steps[t].push_back(
          Message{u, EncodeLolohaReport(clients[u].Report((u + t) % k, rng))});
    }
  }

  // Uninterrupted reference: one in-process collector over both steps.
  std::vector<std::vector<double>> reference;
  CollectorStats reference_stats;
  {
    const std::unique_ptr<Collector> collector =
        MakeCollector(spec, k, CollectorOptions{});
    collector->IngestBatch(hellos);
    for (const auto& step : steps) {
      collector->IngestBatch(step);
      reference.push_back(collector->EndStep());
    }
    reference_stats = collector->stats();
  }

  const std::string dir = PidLocalPath("bench_state_store_smoke", "");
  LOLOHA_CHECK_MSG(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST,
                   "cannot create smoke snapshot dir");

  // Run 1: hellos + step 1, checkpoint at EndStep, graceful shutdown.
  std::vector<double> step1;
  {
    IngestServer server(spec, k, SmokeServerConfig(dir, false));
    LOLOHA_CHECK_MSG(server.Start(), "cannot start smoke server");
    std::thread server_thread([&server] { server.Run(); });
    const int conn = ConnectLoopback(server.port());
    const int control = ConnectLoopback(server.port());
    LOLOHA_CHECK(conn >= 0 && control >= 0);
    SendPhase(conn, hellos);
    SendPhase(conn, steps[0]);
    step1 = EndStepOver(control);
    close(conn);
    ShutdownServer(control, &server_thread);
  }

  // Run 2: a fresh server restored from the shard snapshots finishes
  // the deployment.
  std::vector<double> step2;
  CollectorStats resumed_stats;
  uint64_t shards_restored = 0;
  uint64_t users_restored = 0;
  {
    IngestServer server(spec, k, SmokeServerConfig(dir, true));
    LOLOHA_CHECK_MSG(server.Start(), "cannot restore smoke server");
    shards_restored = server.server_stats().shards_restored;
    users_restored = server.TotalRegisteredUsers();
    std::thread server_thread([&server] { server.Run(); });
    const int conn = ConnectLoopback(server.port());
    const int control = ConnectLoopback(server.port());
    LOLOHA_CHECK(conn >= 0 && control >= 0);
    SendPhase(conn, steps[1]);
    step2 = EndStepOver(control);
    resumed_stats = server.TotalStats();
    close(conn);
    ShutdownServer(control, &server_thread);
  }

  for (uint32_t shard = 0; shard < 2; ++shard) {
    char name[64];
    std::snprintf(name, sizeof(name), "%s/shard_%u-of-2.snap", dir.c_str(),
                  shard);
    std::remove(name);
  }
  ::rmdir(dir.c_str());

  const bool ok = step1 == reference[0] && step2 == reference[1] &&
                  resumed_stats == reference_stats && shards_restored == 2 &&
                  users_restored == users;
  std::printf("server smoke: restored %llu shards, %llu users — %s\n",
              static_cast<unsigned long long>(shards_restored),
              static_cast<unsigned long long>(users_restored),
              ok ? "byte-identical" : "DIVERGED");
  return ok;
}

void WriteJson(const std::string& path, uint64_t users,
               const std::vector<MemoryRow>& rows, const SnapshotRow& snap,
               bool gate_ok) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("WARNING: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"bench_state_store\",\n"
               "  \"users\": %llu,\n  \"slot_bytes\": %u,\n"
               "  \"backends\": [\n",
               static_cast<unsigned long long>(users), kSlotBytes);
  for (size_t i = 0; i < rows.size(); ++i) {
    const MemoryRow& row = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"bytes\": %llu, "
                 "\"bytes_per_user\": %.2f, \"insert_mops\": %.2f, "
                 "\"find_mops\": %.2f}%s\n",
                 row.name.c_str(), static_cast<unsigned long long>(row.bytes),
                 row.bytes_per_user, row.insert_mops, row.find_mops,
                 i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f,
               "  ],\n  \"snapshot\": {\"file_bytes\": %llu, "
               "\"write_mbps\": %.1f, \"read_mbps\": %.1f, "
               "\"roundtrip_identical\": %s},\n"
               "  \"flat_le_half_of_map\": %s\n}\n",
               static_cast<unsigned long long>(snap.file_bytes),
               snap.write_mbps, snap.read_mbps,
               snap.roundtrip_identical ? "true" : "false",
               gate_ok ? "true" : "false");
  std::fclose(f);
  std::printf("JSON written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const bool quick = cli.HasFlag("quick");
  const uint64_t users = static_cast<uint64_t>(
      cli.GetInt("users", quick ? 200000 : 10000000));

  std::printf(
      "User-state backends — bytes/user and snapshot cost at %llu users "
      "(slot=%u B)\n\n",
      static_cast<unsigned long long>(users), kSlotBytes);

  std::vector<MemoryRow> rows;
  rows.push_back(MeasureBackend(StoreKind::kMap, users));
  rows.push_back(MeasureBackend(StoreKind::kFlat, users));
  const SnapshotRow snap = MeasureSnapshot(users);
  std::printf("\n\n");

  TextTable table(
      {"backend", "bytes/user", "total MB", "insert M/s", "find M/s"});
  for (const MemoryRow& row : rows) {
    char bytes_per_user[32], total_mb[32], insert_mops[32], find_mops[32];
    std::snprintf(bytes_per_user, sizeof(bytes_per_user), "%.1f",
                  row.bytes_per_user);
    std::snprintf(total_mb, sizeof(total_mb), "%.1f",
                  static_cast<double>(row.bytes) / 1048576.0);
    std::snprintf(insert_mops, sizeof(insert_mops), "%.1f", row.insert_mops);
    std::snprintf(find_mops, sizeof(find_mops), "%.1f", row.find_mops);
    table.AddRow({row.name, bytes_per_user, total_mb, insert_mops, find_mops});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "snapshot: %.1f MB file, write %.0f MB/s, read %.0f MB/s, "
      "round trip %s\n\n",
      static_cast<double>(snap.file_bytes) / 1048576.0, snap.write_mbps,
      snap.read_mbps, snap.roundtrip_identical ? "identical" : "DIVERGED");

  const double ratio = rows[1].bytes_per_user / rows[0].bytes_per_user;
  const bool gate_ok = ratio <= 0.5;
  std::printf("flat/map bytes ratio: %.3f (gate: <= 0.5) — %s\n", ratio,
              gate_ok ? "PASS" : "FAIL");

  bool smoke_ok = true;
  if (cli.HasFlag("server-smoke")) smoke_ok = RunServerSmoke();

  const std::string json_path = cli.GetString("json", "");
  if (!json_path.empty()) WriteJson(json_path, users, rows, snap, gate_ok);

  if (!gate_ok || !snap.roundtrip_identical || !smoke_ok) {
    std::printf("ERROR: state-store gate failed\n");
    return 1;
  }
  return 0;
}

// Parallel-engine scaling: wall-clock speedup of the sharded runner path
// at T worker threads over the 1-thread path, per protocol, with a
// bit-identity check (estimates must not depend on the thread count).
//
// The T-thread runners all borrow ONE shared ThreadPool (RunnerOptions::
// pool), so the timings include the pool-reuse benefit PR 2 adds: threads
// are spawned once, not per Run. A final "MC-outer" row times the
// Monte-Carlo outer loop (sim/monte_carlo.h) — the runs x protocols
// parallelism the fig3 panels use — against its serial fallback, again
// with a byte-identity check.
//
//   --threads=T   parallel thread count to compare against 1 (default: all
//                 hardware threads)
//   --scale=S     dataset shrink factor (default 5, like the other benches)
//   --runs=R      timing repetitions; the minimum per configuration is
//                 reported (default 2)
//   --json=PATH   also write the table as a JSON document (CI uploads it
//                 as the per-commit perf artifact)
//
// Reported speedup is bounded by the physically available cores: on a
// 1-core machine the table shows ~1.0x regardless of T.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "sim/metrics.h"
#include "sim/monte_carlo.h"
#include "sim/runner.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace loloha;

double RunOnceMs(const LongitudinalRunner& runner, const Dataset& data,
                 uint64_t seed, RunResult* out) {
  const auto start = std::chrono::steady_clock::now();
  *out = runner.Run(data, seed);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

struct RowResult {
  std::string name;
  double t1_ms = 0.0;
  double tn_ms = 0.0;
  bool identical = false;
};

// Times the Monte-Carlo outer loop (3 protocols x 2 runs) serial vs
// pooled and byte-compares the per-run metric grids.
RowResult BenchMonteCarloOuter(const Dataset& data, ThreadPool& pool,
                               uint32_t threads, uint64_t seed,
                               uint32_t reps) {
  const std::vector<ProtocolSpec> grid = {
      ProtocolSpec::MustParse("biloloha:eps_perm=2,eps_first=1"),
      ProtocolSpec::MustParse("l-osue:eps_perm=2,eps_first=1"),
      ProtocolSpec::MustParse("l-grr:eps_perm=2,eps_first=1")};
  const auto metric = [&data](uint32_t, const RunResult& result) {
    return MseAvg(data, result.estimates);
  };
  const auto run_grid = [&](ThreadPool* mc_pool, uint32_t num_threads) {
    RunnerOptions options;
    options.num_threads = num_threads;
    options.pool = mc_pool;
    MonteCarloOptions mc;
    mc.runs = 2;
    mc.base_seed = seed;
    mc.pool = mc_pool;
    return RunMonteCarloGrid(std::span<const ProtocolSpec>(grid), options,
                             data, mc, metric);
  };

  RowResult row;
  row.name = "MC-outer(3x2)";
  std::vector<std::vector<double>> serial_grid;
  std::vector<std::vector<double>> pooled_grid;
  for (uint32_t r = 0; r < reps; ++r) {
    auto start = std::chrono::steady_clock::now();
    serial_grid = run_grid(nullptr, 1);
    auto mid = std::chrono::steady_clock::now();
    pooled_grid = run_grid(&pool, threads);
    auto stop = std::chrono::steady_clock::now();
    const double ms_serial =
        std::chrono::duration<double, std::milli>(mid - start).count();
    const double ms_pooled =
        std::chrono::duration<double, std::milli>(stop - mid).count();
    if (r == 0 || ms_serial < row.t1_ms) row.t1_ms = ms_serial;
    if (r == 0 || ms_pooled < row.tn_ms) row.tn_ms = ms_pooled;
  }
  row.identical = serial_grid == pooled_grid;
  return row;
}

void WriteJson(const std::string& path, uint32_t threads, const Dataset& data,
               uint32_t runs, const std::vector<RowResult>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("WARNING: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"bench_parallel_scaling\",\n"
               "  \"threads\": %u,\n  \"hardware_threads\": %u,\n"
               "  \"n\": %u,\n  \"k\": %u,\n  \"tau\": %u,\n"
               "  \"shards\": %u,\n  \"runs\": %u,\n  \"results\": [\n",
               threads, ThreadPool::HardwareThreads(), data.n(), data.k(),
               data.tau(), kDefaultNumShards, runs);
  for (size_t i = 0; i < rows.size(); ++i) {
    const RowResult& row = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"t1_ms\": %.4f, \"tN_ms\": %.4f, "
                 "\"speedup\": %.3f, \"bit_identical\": %s}%s\n",
                 row.name.c_str(), row.t1_ms, row.tn_ms,
                 row.t1_ms / row.tn_ms, row.identical ? "true" : "false",
                 i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("JSON written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace loloha;
  const CommandLine cli(argc, argv);
  bench::HarnessConfig config =
      bench::ParseHarness(cli, "bench_parallel_scaling.csv");
  uint32_t threads = config.threads;
  if (threads <= 1) threads = ThreadPool::HardwareThreads();

  const Dataset data = bench::MakeDataset("syn", config, config.seed);
  std::printf(
      "Parallel scaling — %u-thread vs 1-thread sharded runner path\n"
      "n=%u, k=%u, tau=%u, shards=%u, hardware threads=%u, runs=%u\n"
      "(T-thread runners share one borrowed ThreadPool)\n\n",
      threads, data.n(), data.k(), data.tau(), kDefaultNumShards,
      ThreadPool::HardwareThreads(), config.runs);

  const std::vector<ProtocolSpec> protocols = bench::ParseProtocolSpecs(
      cli, {ProtocolSpec::MustParse("biloloha:eps_perm=2,eps_first=1"),
            ProtocolSpec::MustParse("ololoha:eps_perm=2,eps_first=1"),
            ProtocolSpec::MustParse("l-osue:eps_perm=2,eps_first=1"),
            ProtocolSpec::MustParse("l-grr:eps_perm=2,eps_first=1"),
            ProtocolSpec::MustParse("bbitflip:eps_perm=2")});

  // The shared pool every T-thread runner borrows; constructed once.
  ThreadPool shared_pool(threads);

  std::vector<RowResult> rows;
  bool all_identical = true;
  for (const ProtocolSpec& spec : protocols) {
    RunnerOptions sequential;
    sequential.num_threads = 1;
    RunnerOptions parallel;
    parallel.num_threads = threads;
    parallel.pool = &shared_pool;
    const auto runner_seq = MakeRunner(spec, sequential);
    const auto runner_par = MakeRunner(spec, parallel);

    RowResult row;
    RunResult result_seq;
    RunResult result_par;
    for (uint32_t r = 0; r < config.runs; ++r) {
      const double ms_seq =
          RunOnceMs(*runner_seq, data, config.seed, &result_seq);
      const double ms_par =
          RunOnceMs(*runner_par, data, config.seed, &result_par);
      if (r == 0 || ms_seq < row.t1_ms) row.t1_ms = ms_seq;
      if (r == 0 || ms_par < row.tn_ms) row.tn_ms = ms_par;
    }
    row.name = result_seq.protocol;
    row.identical = result_seq.estimates == result_par.estimates &&
                    result_seq.per_user_epsilon == result_par.per_user_epsilon;
    all_identical = all_identical && row.identical;
    rows.push_back(row);
    std::printf(".");
    std::fflush(stdout);
  }

  rows.push_back(BenchMonteCarloOuter(data, shared_pool, threads,
                                      config.seed, config.runs));
  all_identical = all_identical && rows.back().identical;
  std::printf(".\n\n");

  TextTable table({"configuration", "t1_ms", "tN_ms", "speedup",
                   "bit_identical"});
  for (const RowResult& row : rows) {
    table.AddRow({row.name, FormatDouble(row.t1_ms, 4),
                  FormatDouble(row.tn_ms, 4),
                  FormatDouble(row.t1_ms / row.tn_ms, 3),
                  row.identical ? "yes" : "NO"});
  }
  std::printf("%s\n", table.ToString().c_str());

  const std::string json_path = cli.GetString("json", "");
  if (!json_path.empty()) {
    WriteJson(json_path, threads, data, config.runs, rows);
  }
  if (!all_identical) {
    std::printf("ERROR: thread count changed the estimates\n");
    return 1;
  }
  if (!config.out_csv.empty()) table.WriteCsv(config.out_csv);
  return 0;
}

// Parallel-engine scaling: wall-clock speedup of the sharded runner path
// at T worker threads over the 1-thread path, per protocol, with a
// bit-identity check (estimates must not depend on the thread count).
//
//   --threads=T   parallel thread count to compare against 1 (default: all
//                 hardware threads)
//   --scale=S     dataset shrink factor (default 5, like the other benches)
//   --runs=R      timing repetitions; the minimum per configuration is
//                 reported (default 2)
//
// Reported speedup is bounded by the physically available cores: on a
// 1-core machine the table shows ~1.0x regardless of T.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "sim/runner.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace loloha;

double RunOnceMs(const LongitudinalRunner& runner, const Dataset& data,
                 uint64_t seed, RunResult* out) {
  const auto start = std::chrono::steady_clock::now();
  *out = runner.Run(data, seed);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace loloha;
  const CommandLine cli(argc, argv);
  bench::HarnessConfig config =
      bench::ParseHarness(cli, "bench_parallel_scaling.csv");
  uint32_t threads = config.threads;
  if (threads <= 1) threads = ThreadPool::HardwareThreads();

  const Dataset data = bench::MakeDataset("syn", config, config.seed);
  std::printf(
      "Parallel scaling — %u-thread vs 1-thread sharded runner path\n"
      "n=%u, k=%u, tau=%u, shards=%u, hardware threads=%u, runs=%u\n\n",
      threads, data.n(), data.k(), data.tau(), kDefaultNumShards,
      ThreadPool::HardwareThreads(), config.runs);

  const std::vector<ProtocolId> protocols = {
      ProtocolId::kBiLoloha, ProtocolId::kOLoloha, ProtocolId::kLOsue,
      ProtocolId::kLGrr, ProtocolId::kBBitFlipPm};

  TextTable table({"protocol", "t1_ms", "tN_ms", "speedup", "bit_identical"});
  bool all_identical = true;
  for (const ProtocolId id : protocols) {
    RunnerOptions sequential;
    sequential.num_threads = 1;
    RunnerOptions parallel;
    parallel.num_threads = threads;
    const auto runner_seq = MakeRunner(id, 2.0, 1.0, sequential);
    const auto runner_par = MakeRunner(id, 2.0, 1.0, parallel);

    double best_seq = 0.0;
    double best_par = 0.0;
    RunResult result_seq;
    RunResult result_par;
    for (uint32_t r = 0; r < config.runs; ++r) {
      const double ms_seq =
          RunOnceMs(*runner_seq, data, config.seed, &result_seq);
      const double ms_par =
          RunOnceMs(*runner_par, data, config.seed, &result_par);
      if (r == 0 || ms_seq < best_seq) best_seq = ms_seq;
      if (r == 0 || ms_par < best_par) best_par = ms_par;
    }
    const bool identical = result_seq.estimates == result_par.estimates &&
                           result_seq.per_user_epsilon ==
                               result_par.per_user_epsilon;
    all_identical = all_identical && identical;
    table.AddRow({result_seq.protocol, FormatDouble(best_seq, 4),
                  FormatDouble(best_par, 4),
                  FormatDouble(best_seq / best_par, 3),
                  identical ? "yes" : "NO"});
    std::printf(".");
    std::fflush(stdout);
  }

  std::printf("\n\n%s\n", table.ToString().c_str());
  if (!all_identical) {
    std::printf("ERROR: thread count changed the estimates\n");
    return 1;
  }
  if (!config.out_csv.empty()) table.WriteCsv(config.out_csv);
  return 0;
}

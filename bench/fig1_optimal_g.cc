// Figure 1: optimal hash-range g (Eq. 6) as a function of the longitudinal
// budget ε∞ for first-report fractions α in {0.1, ..., 0.6}.
//
// Also cross-checks every grid point against the brute-force argmin of V*
// (a mismatch would indicate a regression in Eq. 6).

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "core/loloha_params.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace loloha;
  const CommandLine cli(argc, argv);
  const bench::HarnessConfig config =
      bench::ParseHarness(cli, "fig1_optimal_g.csv");

  std::vector<std::string> header = {"eps_inf"};
  for (const double alpha : bench::AlphaGridFig2()) {
    header.push_back("alpha=" + FormatDouble(alpha, 2));
  }
  header.push_back("bruteforce_mismatches");
  TextTable table(header);

  for (const double eps : bench::EpsPermGrid()) {
    std::vector<std::string> row = {FormatDouble(eps, 3)};
    int mismatches = 0;
    for (const double alpha : bench::AlphaGridFig2()) {
      const uint32_t g = OptimalLolohaG(eps, alpha * eps);
      const uint32_t g_bf = BruteForceOptimalG(eps, alpha * eps, 1e4);
      if (g != g_bf) ++mismatches;
      row.push_back(std::to_string(g));
    }
    row.push_back(std::to_string(mismatches));
    table.AddRow(std::move(row));
  }

  std::printf("Figure 1 — optimal g (Eq. 6) per (eps_inf, alpha)\n\n%s\n",
              table.ToString().c_str());
  if (!config.out_csv.empty()) table.WriteCsv(config.out_csv);
  return 0;
}

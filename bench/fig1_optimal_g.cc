// Figure 1 shim: the sweep is plans/fig1_optimal_g.plan — prefer
// `loloha_experiments --plan=plans/fig1_optimal_g.plan`. Kept one
// release for bit-equivalence gating of the plan-driven driver.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return loloha::bench::RunLegacyPlanMain("fig1_optimal_g", argc, argv);
}

#include "bench/bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "util/check.h"
#include "util/thread_pool.h"

namespace loloha::bench {

HarnessConfig ParseHarness(const CommandLine& cli,
                           const std::string& default_out) {
  HarnessConfig config;
  if (cli.HasFlag("full")) config.scale = 1;
  config.scale =
      static_cast<uint32_t>(cli.GetInt("scale", config.scale));
  LOLOHA_CHECK(config.scale >= 1);
  config.runs = static_cast<uint32_t>(cli.GetInt("runs", 2));
  LOLOHA_CHECK(config.runs >= 1);
  const int64_t threads = cli.GetInt("threads", 1);
  LOLOHA_CHECK_MSG(threads >= 0 && threads <= 4096,
                   "--threads must be in [0, 4096] (0 = hardware)");
  config.threads = static_cast<uint32_t>(threads);
  config.seed = static_cast<uint64_t>(cli.GetInt("seed", 20230328));
  config.quick = cli.HasFlag("quick");
  if (config.quick) {
    config.scale = std::max(config.scale, 20u);
    config.runs = 1;
  }
  std::string out = cli.GetString("out", "results/" + default_out);
  const std::filesystem::path parent =
      std::filesystem::path(out).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);  // best effort
  }
  config.out_csv = std::move(out);
  return config;
}

Dataset MakeDataset(const std::string& which, const HarnessConfig& config,
                    uint64_t seed) {
  return BuildPlanDataset(which, config.scale, config.quick, seed);
}

std::vector<ProtocolSpec> ParseProtocolSpecs(const CommandLine& cli,
                                             std::vector<ProtocolSpec> defaults) {
  const std::string flag = cli.GetString("protocols", "");
  if (flag.empty()) return defaults;
  std::vector<ProtocolSpec> specs;
  size_t begin = 0;
  while (begin <= flag.size()) {
    const size_t end = std::min(flag.find(';', begin), flag.size());
    const std::string text = flag.substr(begin, end - begin);
    ProtocolSpec spec;
    std::string error;
    if (!ProtocolSpec::Parse(text, &spec, &error)) {
      std::fprintf(stderr, "--protocols: bad spec '%s': %s\n", text.c_str(),
                   error.c_str());
      std::exit(2);
    }
    specs.push_back(spec);
    begin = end + 1;
  }
  return specs;
}

void ApplyPlanOverrides(const CommandLine& cli, ExperimentPlan* plan) {
  if (cli.HasFlag("full")) plan->scale = 1;
  const int64_t scale = cli.GetInt("scale", plan->scale);
  if (scale < 1) {
    std::fprintf(stderr, "--scale must be >= 1\n");
    std::exit(2);
  }
  plan->scale = static_cast<uint32_t>(scale);
  const int64_t runs = cli.GetInt("runs", plan->runs);
  if (runs < 1) {
    std::fprintf(stderr, "--runs must be >= 1\n");
    std::exit(2);
  }
  plan->runs = static_cast<uint32_t>(runs);
  const int64_t threads = cli.GetInt("threads", plan->threads);
  if (threads < 0 || threads > 4096) {
    std::fprintf(stderr, "--threads must be in [0, 4096] (0 = hardware)\n");
    std::exit(2);
  }
  plan->threads = static_cast<uint32_t>(threads);
  plan->seed = static_cast<uint64_t>(
      cli.GetInt("seed", static_cast<int64_t>(plan->seed)));
  if (cli.HasFlag("quick")) plan->quick = true;
  const std::string slice = cli.GetString("slice", "");
  if (!slice.empty()) {
    std::string error;
    if (!ParseSliceSpec(slice, &plan->slice, &error)) {
      std::fprintf(stderr, "--slice: %s\n", error.c_str());
      std::exit(2);
    }
  }
  plan->csv = cli.GetString("out", plan->csv);
  plan->json = cli.GetString("json", plan->json);
  plan->protocols = ParseProtocolSpecs(cli, std::move(plan->protocols));
  plan->n = cli.GetDouble("n", plan->n);
  const int64_t k = cli.GetInt("k", plan->k);
  if (k < 2 || k > 0xffffffff) {
    std::fprintf(stderr, "--k must be in [2, 2^32)\n");
    std::exit(2);
  }
  plan->k = static_cast<uint32_t>(k);
  const int64_t b = cli.GetInt("b", plan->b);
  if (b < 0 || b > 0xffffffff) {
    std::fprintf(stderr, "--b must be in [0, 2^32) (0 = k)\n");
    std::exit(2);
  }
  plan->b = static_cast<uint32_t>(b);
  plan->eps = cli.GetDouble("eps", plan->eps);
  plan->eps1 = cli.GetDouble("eps1", plan->eps1);
}

int RunPlanMain(ExperimentPlan plan, const CommandLine& cli) {
  ApplyPlanOverrides(cli, &plan);
  std::string error;
  if (!plan.Validate(&error)) {
    std::fprintf(stderr, "plan '%s': %s\n", plan.name.c_str(),
                 error.c_str());
    return 2;
  }
  if (plan.slice.active() && plan.csv.empty() && plan.json.empty()) {
    std::fprintf(stderr,
                 "plan '%s': --slice needs an output artifact (--out or "
                 "--json), otherwise the computed partial has nowhere to "
                 "go\n",
                 plan.name.c_str());
    return 2;
  }
  // Create output directories up front: a missing directory should fail
  // here (with a clear message), not after minutes of simulation when the
  // sink first opens its path.
  for (const std::string& artifact : {plan.csv, plan.json}) {
    if (artifact.empty()) continue;
    const std::filesystem::path parent =
        std::filesystem::path(artifact).parent_path();
    if (parent.empty()) continue;
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      std::fprintf(stderr, "plan '%s': cannot create output directory %s: "
                           "%s\n",
                   plan.name.c_str(), parent.string().c_str(),
                   ec.message().c_str());
      return 2;
    }
  }
  // One process-wide pool, shared by the Monte-Carlo outer loop and every
  // runner's inner sharding (runners borrow it via options.pool and run
  // their per-step shards inline when already on a pool task). Thread
  // count never changes the numbers — only wall-clock.
  ThreadPool pool(plan.threads == 0 ? ThreadPool::HardwareThreads()
                                    : plan.threads);
  if (!RunExperimentPlan(plan, &pool, &error)) {
    std::fprintf(stderr, "plan '%s' failed: %s\n", plan.name.c_str(),
                 error.c_str());
    return 1;
  }
  return 0;
}

}  // namespace loloha::bench

#include "bench/bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <span>

#include "data/generators.h"
#include "sim/metrics.h"
#include "sim/monte_carlo.h"
#include "sim/runner.h"
#include "util/check.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace loloha::bench {

HarnessConfig ParseHarness(const CommandLine& cli,
                           const std::string& default_out) {
  HarnessConfig config;
  if (cli.HasFlag("full")) config.scale = 1;
  config.scale =
      static_cast<uint32_t>(cli.GetInt("scale", config.scale));
  LOLOHA_CHECK(config.scale >= 1);
  config.runs = static_cast<uint32_t>(cli.GetInt("runs", 2));
  LOLOHA_CHECK(config.runs >= 1);
  const int64_t threads = cli.GetInt("threads", 1);
  LOLOHA_CHECK_MSG(threads >= 0 && threads <= 4096,
                   "--threads must be in [0, 4096] (0 = hardware)");
  config.threads = static_cast<uint32_t>(threads);
  config.seed = static_cast<uint64_t>(cli.GetInt("seed", 20230328));
  config.quick = cli.HasFlag("quick");
  if (config.quick) {
    config.scale = std::max(config.scale, 20u);
    config.runs = 1;
  }
  std::string out = cli.GetString("out", "results/" + default_out);
  const std::filesystem::path parent =
      std::filesystem::path(out).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);  // best effort
  }
  config.out_csv = std::move(out);
  return config;
}

std::vector<double> EpsPermGrid() {
  std::vector<double> grid;
  for (int i = 1; i <= 10; ++i) grid.push_back(0.5 * i);
  return grid;
}

std::vector<double> AlphaGridFig2() {
  return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
}

std::vector<double> AlphaGridFig34() { return {0.4, 0.5, 0.6}; }

Dataset MakeDataset(const std::string& which, const HarnessConfig& config,
                    uint64_t seed) {
  const uint32_t scale = config.scale;
  auto scaled = [scale](uint32_t n) {
    return std::max(n / scale, 50u);
  };
  const uint32_t tau_cap = config.quick ? 20u : 0xffffffffu;
  if (which == "syn") {
    return GenerateSyn(scaled(10000), 360, std::min(120u, tau_cap), 0.25,
                       seed);
  }
  if (which == "adult") {
    return GenerateAdultLike(scaled(45222), std::min(260u, tau_cap), seed);
  }
  if (which == "db_mt") {
    return GenerateReplicateWeights("DB_MT", scaled(10336),
                                    std::min(80u, tau_cap), 0.06, 3, seed);
  }
  if (which == "db_de") {
    return GenerateReplicateWeights("DB_DE", scaled(9123),
                                    std::min(80u, tau_cap), 0.055, 4, seed);
  }
  LOLOHA_CHECK_MSG(false, "unknown dataset name");
  return GenerateSynPaper(seed);
}

double Mean(const std::vector<double>& values) {
  LOLOHA_CHECK(!values.empty());
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

std::vector<ProtocolSpec> ParseProtocolSpecs(const CommandLine& cli,
                                             std::vector<ProtocolSpec> defaults) {
  const std::string flag = cli.GetString("protocols", "");
  if (flag.empty()) return defaults;
  std::vector<ProtocolSpec> specs;
  size_t begin = 0;
  while (begin <= flag.size()) {
    const size_t end = std::min(flag.find(';', begin), flag.size());
    const std::string text = flag.substr(begin, end - begin);
    ProtocolSpec spec;
    std::string error;
    if (!ProtocolSpec::Parse(text, &spec, &error)) {
      std::fprintf(stderr, "--protocols: bad spec '%s': %s\n", text.c_str(),
                   error.c_str());
      std::exit(2);
    }
    specs.push_back(spec);
    begin = end + 1;
  }
  return specs;
}

std::span<const Fig3Panel> Fig3Panels() {
  static constexpr Fig3Panel kPanels[] = {
      {"syn", true, 1},
      {"adult", true, 1},
      {"db_mt", false, 4},
      {"db_de", false, 4},
  };
  return kPanels;
}

const Fig3Panel& Fig3PanelFor(const std::string& dataset_name) {
  for (const Fig3Panel& panel : Fig3Panels()) {
    if (dataset_name == panel.dataset) return panel;
  }
  LOLOHA_CHECK_MSG(false, "unknown fig3 panel dataset");
  return Fig3Panels().front();
}

int RunFig3Panel(const std::string& dataset_name, int argc, char** argv) {
  const Fig3Panel* panel = &Fig3PanelFor(dataset_name);
  const CommandLine cli(argc, argv);
  const HarnessConfig config =
      ParseHarness(cli, "fig3_mse_" + dataset_name + ".csv");

  const Dataset data = MakeDataset(dataset_name, config, config.seed);
  std::printf(
      "Figure 3 (%s) — MSE_avg (Eq. 7); n=%u (scale 1/%u of paper), k=%u, "
      "tau=%u, runs=%u\n\n",
      data.name().c_str(), data.n(), config.scale, data.k(), data.tau(),
      config.runs);

  // One process-wide pool, shared by the Monte-Carlo outer loop and every
  // runner's inner sharding (the runners borrow it via options.pool and
  // run their per-step shards inline when already on a pool task). Thread
  // count never changes the numbers — only wall-clock.
  ThreadPool pool(config.threads == 0 ? ThreadPool::HardwareThreads()
                                      : config.threads);
  RunnerOptions options;
  options.num_threads = config.threads;
  options.pool = &pool;
  const std::vector<ProtocolSpec> legend = ParseProtocolSpecs(
      cli, Figure3Specs(panel->include_dbitflip, panel->bucket_divisor));

  // Flatten the (alpha, eps, protocol) grid into one spec per Monte-Carlo
  // config in row-major table order; the grid's budgets override the
  // legend specs' placeholders.
  std::vector<ProtocolSpec> cells;
  for (const double alpha : AlphaGridFig34()) {
    for (const double eps : EpsPermGrid()) {
      for (const ProtocolSpec& base : legend) {
        ProtocolSpec spec = base;
        spec.eps_perm = eps;
        spec.eps_first = spec.IsTwoRound() ? alpha * eps : 0.0;
        cells.push_back(spec);
      }
    }
  }

  MonteCarloOptions mc;
  mc.runs = config.runs;
  mc.base_seed = config.seed;
  mc.pool = &pool;
  // Live progress: one dot per completed grid row's worth of cells (the
  // pre-parallel driver printed one dot per (alpha, eps) row). Cells
  // finish out of order; the dot count, not their timing, is what a
  // watcher of a --full run needs.
  const uint32_t cells_per_dot =
      static_cast<uint32_t>(legend.size()) * config.runs;
  mc.progress = [cells_per_dot](uint32_t completed, uint32_t) {
    if (completed % cells_per_dot == 0) {
      std::printf(".");
      std::fflush(stdout);
    }
  };
  const std::vector<std::vector<double>> per_run_mse = RunMonteCarloGrid(
      std::span<const ProtocolSpec>(cells), options, data, mc,
      [&](uint32_t, const RunResult& result) {
        // dBitFlipPM estimates a b-bin histogram; compare it against the
        // bucketized truth (Sec. 5.2), everything else bin for bin.
        return result.bins == data.k()
                   ? MseAvg(data, result.estimates)
                   : MseAvgBucketed(data, Bucketizer(data.k(), result.bins),
                                    result.estimates);
      });

  std::vector<std::string> header = {"alpha", "eps_inf"};
  for (const ProtocolSpec& spec : legend) header.push_back(spec.DisplayName());
  TextTable table(header);

  size_t cell = 0;
  for (const double alpha : AlphaGridFig34()) {
    for (const double eps : EpsPermGrid()) {
      std::vector<std::string> row = {FormatDouble(alpha, 2),
                                      FormatDouble(eps, 3)};
      for (size_t p = 0; p < legend.size(); ++p) {
        row.push_back(FormatDouble(Mean(per_run_mse[cell]), 4));
        ++cell;
      }
      table.AddRow(std::move(row));
    }
  }
  std::printf("\n\n%s\n", table.ToString().c_str());
  if (!config.out_csv.empty()) table.WriteCsv(config.out_csv);
  return 0;
}

}  // namespace loloha::bench

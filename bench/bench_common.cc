#include "bench/bench_common.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "data/generators.h"
#include "sim/metrics.h"
#include "sim/monte_carlo.h"
#include "sim/runner.h"
#include "util/check.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace loloha::bench {

HarnessConfig ParseHarness(const CommandLine& cli,
                           const std::string& default_out) {
  HarnessConfig config;
  if (cli.HasFlag("full")) config.scale = 1;
  config.scale =
      static_cast<uint32_t>(cli.GetInt("scale", config.scale));
  LOLOHA_CHECK(config.scale >= 1);
  config.runs = static_cast<uint32_t>(cli.GetInt("runs", 2));
  LOLOHA_CHECK(config.runs >= 1);
  const int64_t threads = cli.GetInt("threads", 1);
  LOLOHA_CHECK_MSG(threads >= 0 && threads <= 4096,
                   "--threads must be in [0, 4096] (0 = hardware)");
  config.threads = static_cast<uint32_t>(threads);
  config.seed = static_cast<uint64_t>(cli.GetInt("seed", 20230328));
  config.quick = cli.HasFlag("quick");
  if (config.quick) {
    config.scale = std::max(config.scale, 20u);
    config.runs = 1;
  }
  std::string out = cli.GetString("out", "results/" + default_out);
  const std::filesystem::path parent =
      std::filesystem::path(out).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);  // best effort
  }
  config.out_csv = std::move(out);
  return config;
}

std::vector<double> EpsPermGrid() {
  std::vector<double> grid;
  for (int i = 1; i <= 10; ++i) grid.push_back(0.5 * i);
  return grid;
}

std::vector<double> AlphaGridFig2() {
  return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
}

std::vector<double> AlphaGridFig34() { return {0.4, 0.5, 0.6}; }

Dataset MakeDataset(const std::string& which, const HarnessConfig& config,
                    uint64_t seed) {
  const uint32_t scale = config.scale;
  auto scaled = [scale](uint32_t n) {
    return std::max(n / scale, 50u);
  };
  const uint32_t tau_cap = config.quick ? 20u : 0xffffffffu;
  if (which == "syn") {
    return GenerateSyn(scaled(10000), 360, std::min(120u, tau_cap), 0.25,
                       seed);
  }
  if (which == "adult") {
    return GenerateAdultLike(scaled(45222), std::min(260u, tau_cap), seed);
  }
  if (which == "db_mt") {
    return GenerateReplicateWeights("DB_MT", scaled(10336),
                                    std::min(80u, tau_cap), 0.06, 3, seed);
  }
  if (which == "db_de") {
    return GenerateReplicateWeights("DB_DE", scaled(9123),
                                    std::min(80u, tau_cap), 0.055, 4, seed);
  }
  LOLOHA_CHECK_MSG(false, "unknown dataset name");
  return GenerateSynPaper(seed);
}

double Mean(const std::vector<double>& values) {
  LOLOHA_CHECK(!values.empty());
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

int RunFig3Panel(const std::string& dataset_name, bool include_dbitflip,
                 uint32_t bucket_divisor, int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const HarnessConfig config =
      ParseHarness(cli, "fig3_mse_" + dataset_name + ".csv");

  const Dataset data = MakeDataset(dataset_name, config, config.seed);
  std::printf(
      "Figure 3 (%s) — MSE_avg (Eq. 7); n=%u (scale 1/%u of paper), k=%u, "
      "tau=%u, runs=%u\n\n",
      data.name().c_str(), data.n(), config.scale, data.k(), data.tau(),
      config.runs);

  // One process-wide pool, shared by the Monte-Carlo outer loop and every
  // runner's inner sharding (the runners borrow it via options.pool and
  // run their per-step shards inline when already on a pool task). Thread
  // count never changes the numbers — only wall-clock.
  ThreadPool pool(config.threads == 0 ? ThreadPool::HardwareThreads()
                                      : config.threads);
  RunnerOptions options;
  options.bucket_divisor = bucket_divisor;
  options.num_threads = config.threads;
  options.pool = &pool;
  const std::vector<ProtocolId> protocols =
      Figure3Protocols(include_dbitflip);

  // Flatten the (alpha, eps, protocol) grid into Monte-Carlo configs in
  // row-major table order.
  struct Cell {
    double alpha;
    double eps;
    ProtocolId id;
  };
  std::vector<Cell> cells;
  for (const double alpha : AlphaGridFig34()) {
    for (const double eps : EpsPermGrid()) {
      for (const ProtocolId id : protocols) {
        cells.push_back(Cell{alpha, eps, id});
      }
    }
  }

  MonteCarloOptions mc;
  mc.runs = config.runs;
  mc.base_seed = config.seed;
  mc.pool = &pool;
  // Live progress: one dot per completed grid row's worth of cells (the
  // pre-parallel driver printed one dot per (alpha, eps) row). Cells
  // finish out of order; the dot count, not their timing, is what a
  // watcher of a --full run needs.
  const uint32_t cells_per_dot =
      static_cast<uint32_t>(protocols.size()) * config.runs;
  mc.progress = [cells_per_dot](uint32_t completed, uint32_t) {
    if (completed % cells_per_dot == 0) {
      std::printf(".");
      std::fflush(stdout);
    }
  };
  const Bucketizer bucketizer(data.k(), ResolveBuckets(options, data.k()));
  const std::vector<std::vector<double>> per_run_mse = RunMonteCarloGrid(
      [&](uint32_t c) {
        return MakeRunner(cells[c].id, cells[c].eps,
                          cells[c].alpha * cells[c].eps, options);
      },
      data, static_cast<uint32_t>(cells.size()), mc,
      [&](uint32_t, const RunResult& result) {
        return result.bins == data.k()
                   ? MseAvg(data, result.estimates)
                   : MseAvgBucketed(data, bucketizer, result.estimates);
      });

  std::vector<std::string> header = {"alpha", "eps_inf"};
  for (const ProtocolId id : protocols) header.push_back(ProtocolName(id));
  TextTable table(header);

  size_t cell = 0;
  for (const double alpha : AlphaGridFig34()) {
    for (const double eps : EpsPermGrid()) {
      std::vector<std::string> row = {FormatDouble(alpha, 2),
                                      FormatDouble(eps, 3)};
      for (size_t p = 0; p < protocols.size(); ++p) {
        row.push_back(FormatDouble(Mean(per_run_mse[cell]), 4));
        ++cell;
      }
      table.AddRow(std::move(row));
    }
  }
  std::printf("\n\n%s\n", table.ToString().c_str());
  if (!config.out_csv.empty()) table.WriteCsv(config.out_csv);
  return 0;
}

}  // namespace loloha::bench

// Loopback load generator for loloha_server's ingestion front — and the
// end-to-end proof that the network path changes nothing: after driving
// hundreds of thousands of users through TCP framing, the event loop,
// and the shard queues, the server's per-step estimates must be
// byte-identical to a direct in-process IngestBatch over the same
// pre-encoded traffic, and the collector counters must match exactly.
//
// Traffic model per protocol (LOLOHA and dBitFlipPM rows): every user is
// pinned to connection `user %% connections`; client threads split the
// connections. A hello storm registers the fleet (each connection ends
// its burst with a kBarrier and waits for the ack), then each collection
// step sends one report per user the same way, and a separate control
// connection closes the step with kEndStep and decodes the kEstimates
// reply. The final kShutdown drains the server gracefully.
//
//   --users=N        users per protocol row (default 200000; --quick: 2000)
//   --k=K            LOLOHA domain size (default 1024; --quick: 256)
//   --g=G            LOLOHA hash range (default 8)
//   --steps=T        collection steps (default 2)
//   --connections=C  TCP connections (default 8; --quick: 2)
//   --threads=W      client sender threads (default 4; --quick: 2)
//   --shards=S       server collector shards (default 4; --quick: 2)
//   --flush-batch=N  server flush size (default 4096)
//   --queue-cap=N    server per-shard queue bound (default 8)
//   --json=PATH      write results as JSON (CI uploads BENCH_server_net.json)
//
// Exits nonzero if any row diverges from the direct-ingestion reference.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/loloha.h"
#include "core/loloha_params.h"
#include "longitudinal/dbitflip.h"
#include "server/collector.h"
#include "server/net/framing.h"
#include "server/net/ingest_server.h"
#include "sim/protocol_spec.h"
#include "util/check.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"
#include "wire/encoding.h"

namespace {

using namespace loloha;

struct LoadConfig {
  uint32_t users = 200000;
  uint32_t k = 1024;
  uint32_t g = 8;
  uint32_t steps = 2;
  uint32_t connections = 8;
  uint32_t threads = 4;
  uint32_t shards = 4;
  uint32_t flush_batch = 4096;
  uint32_t queue_cap = 8;
  uint64_t seed = 20230328;
};

struct LoadRow {
  std::string name;
  uint64_t reports = 0;
  double hello_s = 0.0;
  double report_s = 0.0;
  bool identical = false;
};

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// ---------------------------------------------------------------------------
// Blocking client-side socket plumbing.
// ---------------------------------------------------------------------------

int ConnectLoopback(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return -1;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void WriteAll(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0 && errno == EINTR) continue;
    LOLOHA_CHECK_MSG(n > 0, "client write failed");
    off += static_cast<size_t>(n);
  }
}

void ReadExact(int fd, char* buf, size_t size) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n = read(fd, buf + off, size - off);
    if (n < 0 && errno == EINTR) continue;
    LOLOHA_CHECK_MSG(n > 0, "client read failed (server closed early?)");
    off += static_cast<size_t>(n);
  }
}

uint32_t HeaderPayloadLen(const char* header) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(header[i])) << (8 * i);
  }
  return v;
}

// Reads one whole frame and returns it through the library parser, so the
// client exercises the same decode path the docs specify.
Frame ReadFrame(int fd) {
  char header[kFrameHeaderBytes];
  ReadExact(fd, header, sizeof(header));
  const uint32_t payload_len = HeaderPayloadLen(header);
  std::string payload(payload_len, '\0');
  if (payload_len > 0) ReadExact(fd, payload.data(), payload_len);
  FrameParser parser;
  parser.Feed(header, sizeof(header));
  parser.Feed(payload.data(), payload.size());
  Frame frame;
  LOLOHA_CHECK_MSG(parser.Next(&frame) == FrameStatus::kFrame,
                   "malformed frame from server");
  return frame;
}

void ExpectBarrierAck(int fd) {
  const Frame frame = ReadFrame(fd);
  LOLOHA_CHECK_MSG(frame.type == FrameType::kBarrierAck,
                   "expected kBarrierAck");
}

// ---------------------------------------------------------------------------
// The load drive.
// ---------------------------------------------------------------------------

// Sends `messages[u]` for every user pinned to each connection, fences
// every connection with kBarrier/kBarrierAck, and returns once all acks
// arrived (i.e. the server has decoded and queued everything sent).
void DrivePhase(const std::vector<int>& conns,
                const std::vector<Message>& messages,
                const LoadConfig& config) {
  std::vector<std::thread> workers;
  workers.reserve(config.threads);
  for (uint32_t w = 0; w < config.threads; ++w) {
    workers.emplace_back([&, w] {
      for (size_t c = w; c < conns.size(); c += config.threads) {
        std::string buf;
        for (size_t u = c; u < messages.size(); u += conns.size()) {
          AppendDataFrame(messages[u].user_id, messages[u].bytes, &buf);
        }
        AppendControlFrame(FrameType::kBarrier, &buf);
        WriteAll(conns[c], buf);
        ExpectBarrierAck(conns[c]);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
}

LoadRow RunProtocol(const std::string& name, const ProtocolSpec& spec,
                    const std::vector<Message>& hellos,
                    const std::vector<std::vector<Message>>& steps,
                    const LoadConfig& config) {
  LoadRow row;
  row.name = name;
  for (const auto& step : steps) row.reports += step.size();

  // The in-process reference: one collector, direct IngestBatch.
  std::vector<std::vector<double>> reference;
  CollectorStats reference_stats;
  {
    const std::unique_ptr<Collector> collector =
        MakeCollector(spec, config.k, CollectorOptions{});
    collector->IngestBatch(hellos);
    for (const auto& step : steps) {
      collector->IngestBatch(step);
      reference.push_back(collector->EndStep());
    }
    reference_stats = collector->stats();
  }

  IngestServerConfig server_config;
  server_config.num_shards = config.shards;
  server_config.flush_max_batch = config.flush_batch;
  server_config.queue_capacity = config.queue_cap;
  IngestServer server(spec, config.k, server_config);
  LOLOHA_CHECK_MSG(server.Start(), "cannot start loopback server");
  std::thread server_thread([&server] { server.Run(); });

  std::vector<int> conns(config.connections, -1);
  for (int& fd : conns) {
    fd = ConnectLoopback(server.port());
    LOLOHA_CHECK_MSG(fd >= 0, "cannot connect to loopback server");
  }
  const int control = ConnectLoopback(server.port());
  LOLOHA_CHECK_MSG(control >= 0, "cannot connect control connection");

  {
    const auto start = std::chrono::steady_clock::now();
    DrivePhase(conns, hellos, config);
    row.hello_s = SecondsSince(start);
  }
  std::vector<std::vector<double>> observed;
  {
    const auto start = std::chrono::steady_clock::now();
    std::string end_step;
    AppendControlFrame(FrameType::kEndStep, &end_step);
    for (const auto& step : steps) {
      DrivePhase(conns, step, config);
      // All connections acked: the step's traffic is queued. Close the
      // step and take the server's estimates, bit for bit.
      WriteAll(control, end_step);
      const Frame frame = ReadFrame(control);
      LOLOHA_CHECK_MSG(frame.type == FrameType::kEstimates,
                       "expected kEstimates");
      observed.push_back(frame.estimates);
    }
    row.report_s = SecondsSince(start);
  }

  for (const int fd : conns) close(fd);
  std::string shutdown;
  AppendControlFrame(FrameType::kShutdown, &shutdown);
  WriteAll(control, shutdown);
  server_thread.join();
  close(control);

  const IngestServerStats server_stats = server.server_stats();
  row.identical = observed == reference &&
                  server.step_estimates() == reference &&
                  server.TotalStats() == reference_stats &&
                  server_stats.protocol_errors == 0;
  std::printf(".");
  std::fflush(stdout);
  return row;
}

void WriteJson(const std::string& path, const LoadConfig& config,
               const std::vector<LoadRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("WARNING: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"bench_client_load\",\n"
               "  \"users\": %u,\n  \"k\": %u,\n  \"steps\": %u,\n"
               "  \"connections\": %u,\n  \"threads\": %u,\n"
               "  \"shards\": %u,\n  \"results\": [\n",
               config.users, config.k, config.steps, config.connections,
               config.threads, config.shards);
  for (size_t i = 0; i < rows.size(); ++i) {
    const LoadRow& row = rows[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"reports\": %llu, "
        "\"hello_rps\": %.0f, \"report_rps\": %.0f, \"identical\": %s}%s\n",
        row.name.c_str(), static_cast<unsigned long long>(row.reports),
        static_cast<double>(row.reports) / static_cast<double>(config.steps) /
            row.hello_s,
        static_cast<double>(row.reports) / row.report_s,
        row.identical ? "true" : "false", i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("JSON written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  LoadConfig config;
  const bool quick = cli.HasFlag("quick");
  config.users =
      static_cast<uint32_t>(cli.GetInt("users", quick ? 2000 : config.users));
  config.k = static_cast<uint32_t>(cli.GetInt("k", quick ? 256 : config.k));
  config.g = static_cast<uint32_t>(cli.GetInt("g", config.g));
  config.steps = static_cast<uint32_t>(cli.GetInt("steps", config.steps));
  config.connections = static_cast<uint32_t>(
      cli.GetInt("connections", quick ? 2 : config.connections));
  config.threads = static_cast<uint32_t>(
      cli.GetInt("threads", quick ? 2 : config.threads));
  config.shards =
      static_cast<uint32_t>(cli.GetInt("shards", quick ? 2 : config.shards));
  config.flush_batch =
      static_cast<uint32_t>(cli.GetInt("flush-batch", config.flush_batch));
  config.queue_cap =
      static_cast<uint32_t>(cli.GetInt("queue-cap", config.queue_cap));
  config.seed = static_cast<uint64_t>(cli.GetInt("seed", config.seed));
  if (config.connections == 0) config.connections = 1;
  if (config.threads == 0) config.threads = 1;

  std::printf(
      "Network ingestion — loopback load against loloha_server's front\n"
      "users=%u, k=%u, steps=%u, connections=%u, client threads=%u, "
      "server shards=%u\n\n",
      config.users, config.k, config.steps, config.connections,
      config.threads, config.shards);

  std::vector<LoadRow> rows;
  Rng rng(config.seed);

  {
    ProtocolSpec spec;
    spec.id = config.g == 2 ? ProtocolId::kBiLoloha : ProtocolId::kOLoloha;
    spec.g = config.g;
    spec.eps_perm = 2.0;
    spec.eps_first = 1.0;
    const LolohaParams params = LolohaParamsForSpec(spec, config.k);
    std::vector<LolohaClient> clients;
    clients.reserve(config.users);
    std::vector<Message> hellos;
    hellos.reserve(config.users);
    for (uint32_t u = 0; u < config.users; ++u) {
      clients.emplace_back(params, rng);
      hellos.push_back(Message{u, EncodeLolohaHello(clients[u].hash())});
    }
    std::vector<std::vector<Message>> steps(config.steps);
    for (uint32_t t = 0; t < config.steps; ++t) {
      steps[t].reserve(config.users);
      for (uint32_t u = 0; u < config.users; ++u) {
        steps[t].push_back(Message{
            u,
            EncodeLolohaReport(clients[u].Report((u + t) % config.k, rng))});
      }
    }
    rows.push_back(RunProtocol("LOLOHA", spec, hellos, steps, config));
  }

  {
    ProtocolSpec spec;
    spec.id = ProtocolId::kBBitFlipPm;
    spec.eps_perm = 3.0;
    spec.eps_first = 0.0;
    spec.buckets = std::max(config.k / 4, 2u);
    spec.d = std::min(16u, spec.buckets);
    const Bucketizer bucketizer(config.k, spec.buckets);
    std::vector<DBitFlipClient> clients;
    clients.reserve(config.users);
    std::vector<Message> hellos;
    hellos.reserve(config.users);
    for (uint32_t u = 0; u < config.users; ++u) {
      clients.emplace_back(bucketizer, spec.d, spec.eps_perm, rng);
      hellos.push_back(Message{u, EncodeDBitHello(clients[u].sampled())});
    }
    std::vector<std::vector<Message>> steps(config.steps);
    for (uint32_t t = 0; t < config.steps; ++t) {
      steps[t].reserve(config.users);
      for (uint32_t u = 0; u < config.users; ++u) {
        const DBitReport report =
            clients[u].Report((3 * u + t) % config.k, rng);
        steps[t].push_back(Message{u, EncodeDBitReport(report.bits)});
      }
    }
    rows.push_back(RunProtocol("dBitFlipPM", spec, hellos, steps, config));
  }
  std::printf("\n\n");

  TextTable table(
      {"protocol", "reports", "hello r/s", "report r/s", "identical"});
  bool all_identical = true;
  for (const LoadRow& row : rows) {
    table.AddRow(
        {row.name, std::to_string(row.reports),
         FormatDouble(static_cast<double>(row.reports) /
                          static_cast<double>(config.steps) / row.hello_s,
                      0),
         FormatDouble(static_cast<double>(row.reports) / row.report_s, 0),
         row.identical ? "yes" : "NO"});
    all_identical = all_identical && row.identical;
  }
  std::printf("%s\n", table.ToString().c_str());

  const std::string json_path = cli.GetString("json", "");
  if (!json_path.empty()) WriteJson(json_path, config, rows);
  if (!all_identical) {
    std::printf(
        "ERROR: network path diverged from direct in-process ingestion\n");
    return 1;
  }
  return 0;
}

// Table 2 shim: the detection attack is plans/table2_detection.plan —
// prefer `loloha_experiments --plan=plans/table2_detection.plan`. Kept
// one release for bit-equivalence gating of the plan-driven driver.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return loloha::bench::RunLegacyPlanMain("table2_detection", argc, argv);
}

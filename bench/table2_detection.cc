// Table 2: percentage of users for which the server can identify ALL
// bucket-change points of their sequence under dBitFlipPM (no second
// randomization round), for d = 1 and d = b, over all four datasets and
// the ε∞ grid. Syn/Adult use b = k; DB_MT/DB_DE use b = k/4, as in the
// paper.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "sim/attack.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace loloha;
  const CommandLine cli(argc, argv);
  const bench::HarnessConfig config =
      bench::ParseHarness(cli, "table2_detection.csv");

  struct Panel {
    const char* dataset;
    uint32_t bucket_divisor;
  };
  const Panel panels[] = {
      {"syn", 1}, {"adult", 1}, {"db_mt", 4}, {"db_de", 4}};

  TextTable table(
      {"eps_inf", "d=1 Syn", "d=1 Adult", "d=1 DB_MT", "d=1 DB_DE",
       "d=b Syn", "d=b Adult", "d=b DB_MT", "d=b DB_DE"});

  std::vector<Dataset> datasets;
  std::vector<uint32_t> buckets;
  for (const Panel& panel : panels) {
    datasets.push_back(
        bench::MakeDataset(panel.dataset, config, config.seed));
    buckets.push_back(datasets.back().k() / panel.bucket_divisor);
    std::printf("%s: n=%u k=%u tau=%u b=%u\n",
                datasets.back().name().c_str(), datasets.back().n(),
                datasets.back().k(), datasets.back().tau(),
                buckets.back());
  }

  for (const double eps : bench::EpsPermGrid()) {
    std::vector<std::string> row = {FormatDouble(eps, 3)};
    for (const uint32_t d_is_b : {0u, 1u}) {
      for (size_t i = 0; i < datasets.size(); ++i) {
        const uint32_t b = buckets[i];
        const uint32_t d = d_is_b ? b : 1u;
        const DetectionResult result = DBitFlipDetection(
            datasets[i], b, d, eps, config.seed + 31 * i + d);
        row.push_back(FormatDouble(result.PercentFullyDetected(), 4) + "%");
      }
    }
    table.AddRow(std::move(row));
    std::printf(".");
    std::fflush(stdout);
  }

  std::printf(
      "\n\nTable 2 — %% of users with ALL bucket changes detected "
      "(dBitFlipPM)\n\n%s\n",
      table.ToString().c_str());
  if (!config.out_csv.empty()) table.WriteCsv(config.out_csv);
  return 0;
}

// Figure 4 shim: the accounting sweep is plans/fig4_privacy_loss.plan —
// prefer `loloha_experiments --plan=plans/fig4_privacy_loss.plan`. Kept
// one release for bit-equivalence gating of the plan-driven driver.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return loloha::bench::RunLegacyPlanMain("fig4_privacy_loss", argc, argv);
}

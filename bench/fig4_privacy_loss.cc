// Figure 4 (a-d): averaged empirical longitudinal privacy loss ε̌_avg
// (Eq. 8) for all seven methods over all four datasets, eps grid x alpha
// in {0.4, 0.5, 0.6}.
//
// The accounting of Definition 3.2 depends only on the users' true
// sequences plus the protocol's per-user randomness (hash function /
// sampled set), so this binary uses the dedicated accountant instead of
// full mechanism runs; integration tests check that the two paths agree.
//
// Per the paper: RAPPOR, L-OSUE, L-GRR share value-memo accounting;
// dBitFlipPM uses b = k on Syn/Adult and b = k/4 on DB_MT/DB_DE.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/loloha_params.h"
#include "sim/accountant.h"
#include "sim/metrics.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace loloha;
  const CommandLine cli(argc, argv);
  const bench::HarnessConfig config =
      bench::ParseHarness(cli, "fig4_privacy_loss.csv");

  TextTable table({"dataset", "alpha", "eps_inf", "RAPPOR/L-OSUE/L-GRR",
                   "bBitFlipPM", "1BitFlipPM", "OLOLOHA", "BiLOLOHA"});

  for (const bench::Fig3Panel& panel : bench::Fig3Panels()) {
    const Dataset data =
        bench::MakeDataset(panel.dataset, config, config.seed);
    const uint32_t b = data.k() / panel.bucket_divisor;
    std::printf("%s: n=%u k=%u tau=%u b=%u (avg %.1f distinct values/user)\n",
                data.name().c_str(), data.n(), data.k(), data.tau(), b,
                data.MeanDistinctValuesPerUser());
    for (const double alpha : bench::AlphaGridFig34()) {
      for (const double eps : bench::EpsPermGrid()) {
        const double value_memo = EpsAvg(ValueMemoEpsilons(data, eps));
        const double b_bit =
            EpsAvg(DBitFlipEpsilons(data, b, b, eps, config.seed + 1));
        const double one_bit =
            EpsAvg(DBitFlipEpsilons(data, b, 1, eps, config.seed + 2));
        const uint32_t g_opt = OptimalLolohaG(eps, alpha * eps);
        const double ololoha =
            EpsAvg(LolohaEpsilons(data, g_opt, eps, config.seed + 3));
        const double biloloha =
            EpsAvg(LolohaEpsilons(data, 2, eps, config.seed + 4));
        table.AddRow({data.name(), FormatDouble(alpha, 2),
                      FormatDouble(eps, 3), FormatDouble(value_memo, 5),
                      FormatDouble(b_bit, 5), FormatDouble(one_bit, 5),
                      FormatDouble(ololoha, 5),
                      FormatDouble(biloloha, 5)});
      }
    }
  }

  std::printf("\nFigure 4 — averaged longitudinal privacy loss (Eq. 8)\n\n%s\n",
              table.ToString().c_str());
  if (!config.out_csv.empty()) table.WriteCsv(config.out_csv);
  return 0;
}

// Figure 3b: MSE_avg on the Adult-like dataset (k = 96, n = 45222,
// tau = 260; see DESIGN.md for the offline substitution). dBitFlipPM runs
// with b = k as in the paper.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return loloha::bench::RunFig3Panel("adult", argc, argv);
}

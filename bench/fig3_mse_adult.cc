// Figure 3b shim: the panel is plans/fig3_adult.plan — prefer
// `loloha_experiments --plan=plans/fig3_adult.plan`. Kept one release for
// bit-equivalence gating of the plan-driven driver.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return loloha::bench::RunLegacyPlanMain("fig3_adult", argc, argv);
}

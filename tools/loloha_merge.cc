// loloha_merge: deterministic reduce step of the distributed experiment
// path.
//
//   loloha_merge [--out=PATH.csv] [--json=PATH] [--quiet] <partial>...
//
// Reads a complete slice-partial set (every "<out>.slice-i-of-N.csv" —
// each with its ".meta.json" sidecar — and/or self-contained
// ".slice-i-of-N.json" files), refuses inconsistent or incomplete sets
// all-or-none with line-numbered errors (mismatched plan / seed / slice
// count / fingerprint, duplicate or missing slices, truncated files),
// reassembles the units into canonical grid order, and writes artifacts
// byte-identical to a single-process `loloha_experiments` run of the
// same plan — the property the distributed.* ctest legs and the CI
// fan-out job assert.
//
// Output paths default to the merged plan's own [output] section (the
// paths the slices were produced under, carried in the fingerprint);
// --out / --json override them exactly like the loloha_experiments
// flags. A git-describe mismatch between partials is a warning, not an
// error: the determinism contract ties bytes to the plan and seed, not
// the build, and the merged sidecar records the merging binary's stamp.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/slice.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace loloha;
  const CommandLine cli(argc, argv);
  const std::vector<std::string>& paths = cli.positional_args();
  if (paths.empty() || cli.HasFlag("help")) {
    std::fprintf(stderr,
                 "usage: loloha_merge [--out=PATH.csv] [--json=PATH] "
                 "[--quiet] <partial>...\n"
                 "  <partial>  slice outputs of `loloha_experiments "
                 "--slice=i/N`: *.slice-i-of-N.csv\n"
                 "             (sidecar *.csv.meta.json required next to "
                 "each) or *.slice-i-of-N.json\n");
    return 2;
  }

  std::string error;
  std::vector<SlicePartial> parts;
  parts.reserve(paths.size());
  for (const std::string& path : paths) {
    SlicePartial partial;
    if (!LoadSlicePartial(path, &partial, &error)) {
      std::fprintf(stderr, "loloha_merge: %s\n", error.c_str());
      return 1;
    }
    parts.push_back(std::move(partial));
  }

  std::vector<SliceUnit> units;
  if (!CombineSlicePartials(parts, &units, &error)) {
    std::fprintf(stderr, "loloha_merge: %s\n", error.c_str());
    return 1;
  }
  for (const SlicePartial& part : parts) {
    if (part.git_describe != parts.front().git_describe) {
      std::fprintf(stderr,
                   "loloha_merge: warning: %s was produced by build %s, "
                   "%s by %s — bytes are tied to plan and seed, not the "
                   "build, but verify if this is unexpected\n",
                   part.source.c_str(), part.git_describe.c_str(),
                   parts.front().source.c_str(),
                   parts.front().git_describe.c_str());
      break;
    }
  }

  // The fingerprint is the complete effective plan (threads neutralized,
  // slice cleared) — re-parse it and run the merge-mode table assembly.
  ExperimentPlan plan;
  if (!ParseExperimentPlan(parts.front().plan_text, &plan, &error)) {
    std::fprintf(stderr,
                 "loloha_merge: %s: embedded plan_text does not parse: "
                 "%s\n",
                 parts.front().source.c_str(), error.c_str());
    return 1;
  }
  if (plan.name != parts.front().plan_name) {
    std::fprintf(stderr,
                 "loloha_merge: %s: plan_text names plan '%s' but the "
                 "provenance says '%s'\n",
                 parts.front().source.c_str(), plan.name.c_str(),
                 parts.front().plan_name.c_str());
    return 1;
  }
  plan.csv = cli.GetString("out", plan.csv);
  plan.json = cli.GetString("json", plan.json);
  if (plan.csv.empty() && plan.json.empty()) {
    std::fprintf(stderr,
                 "loloha_merge: the merged plan declares no outputs; pass "
                 "--out=PATH.csv and/or --json=PATH\n");
    return 2;
  }
  for (const std::string& artifact : {plan.csv, plan.json}) {
    if (artifact.empty()) continue;
    const std::filesystem::path parent =
        std::filesystem::path(artifact).parent_path();
    if (parent.empty()) continue;
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      std::fprintf(stderr,
                   "loloha_merge: cannot create output directory %s: %s\n",
                   parent.string().c_str(), ec.message().c_str());
      return 1;
    }
  }

  const std::vector<std::unique_ptr<ResultSink>> sinks = MakePlanSinks(plan);
  std::vector<ResultSink*> borrowed;
  borrowed.reserve(sinks.size());
  for (const std::unique_ptr<ResultSink>& sink : sinks) {
    borrowed.push_back(sink.get());
  }
  std::FILE* log = cli.HasFlag("quiet") ? nullptr : stdout;
  if (!MergeExperimentSlices(plan, units, borrowed, &error, log)) {
    std::fprintf(stderr, "loloha_merge: %s\n", error.c_str());
    return 1;
  }
  if (log != nullptr) {
    std::fprintf(log,
                 "merged %zu slice(s), %zu unit(s) -> %s%s%s\n",
                 parts.size(), units.size(), plan.csv.c_str(),
                 (!plan.csv.empty() && !plan.json.empty()) ? ", " : "",
                 plan.json.c_str());
  }
  return 0;
}

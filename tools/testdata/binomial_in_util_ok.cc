// lint-fixture-path: src/util/binomial.cc
// lint-fixture-expect: clean
//
// Inside the sanctioned home the same token is fine — this is where the
// deterministic replacement compares itself against the std reference.
#include <cstdint>

uint64_t Reference(uint64_t n, double p) {
  std::binomial_distribution<uint64_t> dist(n, p);
  return dist.min();
}

// lint-fixture-path: tools/fixture.cc
// lint-fixture-expect: unordered-iteration
//
// Iterating an unordered container in a tool that writes artifacts
// would make the output bytes hash-seed dependent.
#include <string>
#include <unordered_map>

int Sum(const std::unordered_map<std::string, int>& counts_by_name) {
  std::unordered_map<std::string, int> counts = counts_by_name;
  int sum = 0;
  for (const auto& [name, count] : counts) sum += count;
  return sum;
}

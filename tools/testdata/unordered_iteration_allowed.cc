// lint-fixture-path: src/core/fixture.cc
// lint-fixture-expect: clean
//
// The sanctioned pattern: iterate, then sort immediately so the hash
// order cannot escape — stated in the allow justification.
#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

std::vector<uint32_t> Sorted(const std::unordered_set<uint32_t>& values) {
  std::vector<uint32_t> out;
  // Order is erased by the sort below; hash order never reaches results.
  // lint:allow(unordered-iteration)
  for (const uint32_t v : values) {
    out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

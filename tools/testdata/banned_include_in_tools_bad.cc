// lint-fixture-path: tools/fixture.cc
// lint-fixture-expect: banned-include
//
// tools/ binaries re-emit experiment artifacts (loloha_merge must be
// byte-identical to the sim path), so they live under the same include
// bans as src/.
#include <iostream>

void Print() { std::cout << "hello\n"; }

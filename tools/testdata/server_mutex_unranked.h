// lint-fixture-path: src/server/fixture.h
// lint-fixture-expect: mutex-rank
//
// Unranked Mutex members in src/server/ — invisible to the debug-build
// lock-order detector (util/lock_order.h), so the linter refuses them.
// Both spellings: no initializer, and an initializer without a rank.
#include "util/thread_annotations.h"

namespace loloha {

class Fixture {
 private:
  Mutex mu_;
  mutable Mutex state_mu_{};
};

}  // namespace loloha

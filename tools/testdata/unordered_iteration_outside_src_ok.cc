// lint-fixture-path: tests/fixture_test_helper.cc
// lint-fixture-expect: clean
//
// The unordered-iteration rule is scoped to src/ — tests and benches may
// iterate freely (their output is asserted, not shipped).
#include <cstdint>
#include <unordered_set>

uint64_t Sum(const std::unordered_set<uint32_t>& values) {
  std::unordered_set<uint32_t> copy = values;
  uint64_t sum = 0;
  for (const uint32_t v : copy) sum += v;
  return sum;
}

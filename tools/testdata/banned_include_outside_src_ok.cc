// lint-fixture-path: bench/fixture.cc
// lint-fixture-expect: clean
//
// The banned-include rule is scoped to src/ and tools/: benches, tests
// and examples may use iostream freely.
#include <iostream>

void Print() { std::cout << "hello\n"; }

// lint-fixture-path: src/sim/fixture.cc
// lint-fixture-expect: nondeterministic-rng
//
// Any std engine breaks the Run(data, seed) bit-identity contract: the
// linter must flag it even though the surrounding code compiles fine.
#include <cstdint>

uint32_t Draw() {
  std::mt19937 gen(42);
  return static_cast<uint32_t>(gen());
}

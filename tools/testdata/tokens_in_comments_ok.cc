// lint-fixture-path: src/util/fixture.cc
// lint-fixture-expect: clean
//
// Banned tokens in comments and string literals must NOT trigger: the
// linter scans code, not prose. This file mentions std::mt19937,
// std::rand, std::random_device and std::binomial_distribution — all in
// comments — and ships the strings below as data.
#include <cstdint>

// Unlike std::binomial_distribution, this helper is deterministic.
/* Historical note: an early draft used std::mt19937 seeded from
   std::random_device — both banned now. */
const char* Describe() {
  return "not std::rand, and no std::unordered_map iteration either";
}

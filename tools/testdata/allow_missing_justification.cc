// lint-fixture-path: src/core/fixture.cc
// lint-fixture-expect: allow-justification
//
// Naked allows: the suppressed rules stay quiet, but each allow is
// itself flagged because nothing states the replacing discipline —
// neither after the paren nor in a comment line directly above.
#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

std::vector<uint32_t> Sorted(const std::unordered_set<uint32_t>& values) {
  std::vector<uint32_t> out;
  // lint:allow(unordered-iteration)
  for (const uint32_t v : values) {
    out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

uint32_t Draw() {
  std::mt19937 gen(42);  // lint:allow(nondeterministic-rng)
  return static_cast<uint32_t>(gen());
}

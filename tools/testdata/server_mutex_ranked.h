// lint-fixture-path: src/server/fixture.h
// lint-fixture-expect: clean
//
// The sanctioned pattern: every server-side Mutex carries its lock
// rank, so the debug-build detector (util/lock_order.h) orders it.
// MutexLock uses and Mutex& parameters are not declarations and must
// not trip the rule.
#include "util/lock_order.h"
#include "util/thread_annotations.h"

namespace loloha {

class Fixture {
 public:
  void Touch(Mutex& other) {
    MutexLock lock(mu_);
    (void)other;
  }

 private:
  mutable Mutex mu_{lock_rank::kCollector};
};

}  // namespace loloha

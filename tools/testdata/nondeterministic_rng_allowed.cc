// lint-fixture-path: src/sim/fixture.cc
// lint-fixture-expect: clean
//
// The same violation as nondeterministic_rng_bad.cc, suppressed by the
// escape hatch — both placements the linter supports.
#include <cstdint>

uint32_t Draw() {
  // Fixture-only: comparing draw sequences against the std engine.
  // lint:allow(nondeterministic-rng)
  std::mt19937 gen_above(42);
  // Inline placement needs its reason on the same line:
  std::mt19937 gen_inline(42);  // lint:allow(nondeterministic-rng) fixture-only std-engine comparison
  return static_cast<uint32_t>(gen_above() + gen_inline());
}

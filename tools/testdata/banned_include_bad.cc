// lint-fixture-path: src/data/fixture.cc
// lint-fixture-expect: banned-include
//
// src/ is printf-based and replay-deterministic: <iostream>, <ctime>,
// <time.h> and <random> are all banned there.
#include <iostream>

void Print() { std::cout << "hello\n"; }

// lint-fixture-path: src/core/fixture.cc
// lint-fixture-expect: unordered-iteration
//
// Iteration order of an unordered container is hash- and
// toolchain-dependent; in src/ it must never feed a result.
#include <cstdint>
#include <unordered_map>
#include <vector>

std::vector<uint32_t> Keys(const std::unordered_map<uint32_t, double>& m) {
  std::unordered_map<uint32_t, double> counts = m;
  std::vector<uint32_t> keys;
  for (const auto& [key, value] : counts) {
    keys.push_back(key);
  }
  return keys;
}

// lint-fixture-path: src/oracle/fixture.cc
// lint-fixture-expect: binomial-outside-util
//
// std::binomial_distribution is confined to src/util/binomial.{h,cc}:
// glibc's implementation races on the global signgam (PR 2 incident) and
// its draw sequence is toolchain-defined.
#include <cstdint>

uint64_t DrawCount(uint64_t n, double p) {
  std::binomial_distribution<uint64_t> dist(n, p);
  return dist.min();
}

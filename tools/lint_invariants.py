#!/usr/bin/env python3
"""Repo-invariant linter: rules no generic static analyzer knows.

Every result this repo produces rests on two contracts that generic
tools cannot check:

  * Determinism — ``Run(data, seed)`` is bit-identical at any thread
    count, on any toolchain. All randomness therefore flows through the
    repo's own ``loloha::Rng`` / ``StreamSeed`` (util/rng.h) and
    ``util/binomial.h``; standard-library engines and distributions are
    banned (their draw sequences are implementation-defined, and
    ``std::binomial_distribution`` additionally races on glibc's
    ``signgam``, see util/binomial.h).
  * Ordering — iterating a ``std::unordered_map``/``set`` in library
    code visits elements in a hash-seed- and toolchain-dependent order;
    if that order reaches a result (an estimate vector, a CSV row, an
    RNG draw) bit-identity is gone.

Rules (each line shows the rule id used by the escape hatch):

  nondeterministic-rng   std::random_device / std::rand / srand /
                         std::mt19937 & friends, anywhere in C++ code.
  binomial-outside-util  std::binomial_distribution outside
                         src/util/binomial.{h,cc}.
  unordered-iteration    range-for or .begin() iteration over a
                         std::unordered_map/set variable, in src/ and
                         tools/ (tools ship result-producing code too:
                         loloha_merge re-emits experiment artifacts).
  banned-include         <iostream>, <ctime>, <time.h>, <random> in
                         src/ and tools/ (the library is printf-based;
                         wall-clock time and std <random> have no
                         business in result-producing code).
  test-registration      every tests/*_test.cc is registered with CMake
                         (explicitly or via the tests/*_test.cc glob)
                         and actually defines a TEST.
  mutex-rank             every ``Mutex`` member declared in src/server/
                         must carry an explicit lock rank
                         (``Mutex mu_{lock_rank::kCollector};``) so the
                         debug-build lock-order detector
                         (util/lock_order.h) sees it; an unranked mutex
                         is invisible to inversion detection.
  allow-justification    every ``// lint:allow(rule)`` must carry a
                         non-empty justification — after the closing
                         paren, or (for an allow on its own line) in the
                         comment line directly above it.

Escape hatch: append ``// lint:allow(<rule-id>)`` to the flagged line,
or put it on its own line directly above, with a comment saying why.
An allow must state the discipline that replaces the rule (e.g. "sorted
immediately below, order cannot escape") — enforced by the
allow-justification rule, which itself has no escape hatch.

Usage:
  tools/lint_invariants.py [--root DIR]   # lint the tree (default: repo root)
  tools/lint_invariants.py --self-test    # run the fixture suite

Exit codes: 0 clean, 1 violations found, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

CPP_SUFFIXES = (".cc", ".cpp", ".h", ".hpp")
SKIP_DIRS = {"build", ".git", "testdata", "third_party"}

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z\-]+(?:\s*,\s*[a-z\-]+)*)\)")

# Tokens banned everywhere C++ lives: every one of these draws from an
# implementation-defined sequence (or a global seed), which breaks the
# cross-toolchain bit-identity contract.
NONDET_RNG_RE = re.compile(
    r"std::random_device|std::rand\b|(?<![\w:])srand\s*\(|std::mt19937"
    r"|std::minstd_rand|std::default_random_engine|std::ranlux\w*"
    r"|std::knuth_b\b"
)

BINOMIAL_RE = re.compile(r"std::binomial_distribution")
BINOMIAL_ALLOWED_FILES = ("src/util/binomial.h", "src/util/binomial.cc")

BANNED_INCLUDES = {
    "<iostream>": "src/ is printf-based (no static-init fiasco, no sync)",
    "<ctime>": "wall-clock time in result-producing code breaks replay",
    "<time.h>": "wall-clock time in result-producing code breaks replay",
    "<random>": "std distributions are toolchain-defined; use util/rng.h",
}
INCLUDE_RE = re.compile(r"^\s*#\s*include\s*(<[^>]+>)")

# One level of template nesting is enough for every declaration in the
# tree (values like std::vector<uint32_t> nest once).
UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set)\s*<(?:[^<>]|<[^<>]*>)*>\s*&?\s*(\w+)"
)

# A Mutex member/variable declaration: `Mutex name;` or `Mutex name{...};`
# (optionally `mutable`). `MutexLock lock(mu);` does not match (no space
# after "Mutex"), nor do `Mutex&` / `Mutex*` parameters.
MUTEX_DECL_RE = re.compile(r"(?<![\w:])Mutex\s+(\w+)\s*(;|\{[^}]*\})")

TEST_MACRO_RE = re.compile(r"^\s*(?:TEST|TEST_F|TEST_P|TYPED_TEST)\s*\(",
                           re.MULTILINE)
TEST_GLOB_RE = re.compile(r"file\s*\(\s*GLOB[^)]*tests/\*_test\.cc", re.DOTALL)


@dataclass
class Violation:
    path: str
    line: int  # 1-based; 0 = file-level
    rule: str
    message: str

    def __str__(self) -> str:
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{where}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line breaks.

    Keeps column positions roughly stable so reported line numbers match
    the raw file. Raw strings are handled well enough for lint purposes
    (the tree does not use exotic delimiters).
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
        elif c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append('"' + " " * max(0, j - i - 2) +
                       ('"' if j - i >= 2 else ""))
            i = j
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append("'" + " " * max(0, j - i - 2) +
                       ("'" if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def collect_allows(raw_lines: list[str]) -> dict[int, set[str]]:
    """Maps 1-based line numbers to the rule ids allowed on that line.

    An allow comment covers its own line and, when it is the only thing
    on its line, the next line as well.
    """
    allows: dict[int, set[str]] = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",")}
        allows.setdefault(idx, set()).update(rules)
        if line.strip().startswith("//"):
            allows.setdefault(idx + 1, set()).update(rules)
    return allows


def is_allowed(allows: dict[int, set[str]], line: int, rule: str) -> bool:
    return rule in allows.get(line, set())


def lint_cpp_file(rel_path: str, text: str) -> list[Violation]:
    """Lints one C++ file; `rel_path` is repo-relative with / separators."""
    raw_lines = text.splitlines()
    clean = strip_comments_and_strings(text)
    clean_lines = clean.splitlines()
    allows = collect_allows(raw_lines)
    violations: list[Violation] = []
    # tools/ ships result-producing code (loloha_merge re-emits
    # experiment artifacts byte-for-byte), so it lives under the same
    # determinism rules as src/.
    in_library = rel_path.startswith(("src/", "tools/"))

    def flag(line_no: int, rule: str, message: str) -> None:
        if not is_allowed(allows, line_no, rule):
            violations.append(Violation(rel_path, line_no, rule, message))

    for line_no, line in enumerate(clean_lines, start=1):
        m = NONDET_RNG_RE.search(line)
        if m:
            flag(line_no, "nondeterministic-rng",
                 f"'{m.group(0).strip()}' breaks seed-reproducibility; "
                 "use loloha::Rng / StreamSeed (util/rng.h)")
        if BINOMIAL_RE.search(line) and rel_path not in BINOMIAL_ALLOWED_FILES:
            flag(line_no, "binomial-outside-util",
                 "std::binomial_distribution races on glibc signgam and "
                 "draws toolchain-dependent sequences; use util/binomial.h")
        if in_library:
            inc = INCLUDE_RE.match(line)
            if inc and inc.group(1) in BANNED_INCLUDES:
                flag(line_no, "banned-include",
                     f"{inc.group(1)} is banned in src/ and tools/: "
                     f"{BANNED_INCLUDES[inc.group(1)]}")
        if rel_path.startswith("src/server/"):
            decl = MUTEX_DECL_RE.search(line)
            if decl and "lock_rank::" not in decl.group(2):
                flag(line_no, "mutex-rank",
                     f"Mutex '{decl.group(1)}' in src/server/ has no lock "
                     "rank — the debug-build lock-order detector cannot see "
                     "it; declare it as Mutex "
                     f"{decl.group(1)}{{lock_rank::k...}} (util/lock_order.h)")

    if in_library:
        violations.extend(
            lint_unordered_iteration(rel_path, clean, clean_lines, allows))
    violations.extend(lint_allow_justification(rel_path, raw_lines))
    return violations


def lint_allow_justification(rel_path: str,
                             raw_lines: list[str]) -> list[Violation]:
    """Every lint:allow must say why — the rule with no escape hatch.

    A justification is inline text after the allow's closing paren, or —
    when the allow sits on its own comment line — a comment line with
    real content directly above it.
    """
    violations: list[Violation] = []
    for idx, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        tail = line[m.end():].strip().lstrip("—–-: ")
        if re.search(r"\w", tail):
            continue
        if line.strip().startswith("//"):
            prev = raw_lines[idx - 2].strip() if idx >= 2 else ""
            if (prev.startswith("//") and not ALLOW_RE.search(prev)
                    and re.search(r"\w", prev.lstrip("/ "))):
                continue
        violations.append(Violation(
            rel_path, idx, "allow-justification",
            "lint:allow without a justification — state the discipline "
            "that replaces the rule, after the closing paren or in the "
            "comment line directly above"))
    return violations


def lint_unordered_iteration(rel_path: str, clean: str,
                             clean_lines: list[str],
                             allows: dict[int, set[str]]) -> list[Violation]:
    """Flags iteration over unordered containers declared in this file.

    Heuristic by design: it resolves variable names, not types through
    call chains — the contract is "if you iterate an unordered container
    in library code, either sort the result and say so in a lint:allow,
    or use an ordered/indexed structure".
    """
    names = set(UNORDERED_DECL_RE.findall(clean))
    if not names:
        return []
    alt = "|".join(re.escape(n) for n in sorted(names))
    # for (x : name) / for (x : *name) / for (x : obj.name / obj->name)
    range_for = re.compile(
        r"for\s*\([^;)]*:\s*\*?\s*(?:[\w.\->]+(?:\.|->))?(" + alt + r")\s*\)")
    # name.begin() / name.cbegin() inside a for/while header or iterator init
    iter_begin = re.compile(r"\b(" + alt + r")\s*\.\s*c?begin\s*\(")
    violations: list[Violation] = []
    for line_no, line in enumerate(clean_lines, start=1):
        m = range_for.search(line) or iter_begin.search(line)
        if m and not is_allowed(allows, line_no, "unordered-iteration"):
            violations.append(Violation(
                rel_path, line_no, "unordered-iteration",
                f"iterating unordered container '{m.group(1)}' — order is "
                "hash/toolchain-dependent and must not reach results; sort "
                "first (then lint:allow with that justification) or use an "
                "ordered structure"))
    return violations


def lint_test_registration(cmake_text: str,
                           test_files: dict[str, str]) -> list[Violation]:
    """`test_files` maps tests/<name>_test.cc -> file content."""
    violations: list[Violation] = []
    has_glob = bool(TEST_GLOB_RE.search(cmake_text))
    for rel_path, content in sorted(test_files.items()):
        base = os.path.basename(rel_path)
        if not has_glob and base not in cmake_text:
            violations.append(Violation(
                rel_path, 0, "test-registration",
                f"{base} is not registered in CMakeLists.txt (no "
                "tests/*_test.cc glob and not named explicitly) — it "
                "would silently never run"))
        if not TEST_MACRO_RE.search(strip_comments_and_strings(content)):
            violations.append(Violation(
                rel_path, 0, "test-registration",
                "file matches tests/*_test.cc but defines no "
                "TEST/TEST_F/TEST_P — the registered binary would be "
                "empty"))
    return violations


def iter_cpp_files(root: str):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in sorted(dirnames) if d not in SKIP_DIRS]
        for name in sorted(filenames):
            if name.endswith(CPP_SUFFIXES):
                full = os.path.join(dirpath, name)
                yield os.path.relpath(full, root).replace(os.sep, "/"), full


def lint_tree(root: str) -> list[Violation]:
    violations: list[Violation] = []
    test_files: dict[str, str] = {}
    for rel_path, full in iter_cpp_files(root):
        with open(full, encoding="utf-8") as f:
            text = f.read()
        violations.extend(lint_cpp_file(rel_path, text))
        if rel_path.startswith("tests/") and rel_path.endswith("_test.cc"):
            test_files[rel_path] = text
    cmake_path = os.path.join(root, "CMakeLists.txt")
    if os.path.exists(cmake_path):
        with open(cmake_path, encoding="utf-8") as f:
            violations.extend(lint_test_registration(f.read(), test_files))
    return violations


# --------------------------------------------------------------------------
# Self-test over tools/testdata/ fixtures.
#
# Each fixture declares its pretend repo path on line 1:
#     // lint-fixture-path: src/foo/bar.cc
# and the rule(s) it must trigger on line 2:
#     // lint-fixture-expect: rule-id [rule-id ...]   (or "clean")
# --------------------------------------------------------------------------

FIXTURE_PATH_RE = re.compile(r"//\s*lint-fixture-path:\s*(\S+)")
FIXTURE_EXPECT_RE = re.compile(r"//\s*lint-fixture-expect:\s*(.+)")


def run_self_test(testdata_dir: str) -> int:
    failures = 0
    fixtures = sorted(f for f in os.listdir(testdata_dir)
                      if f.endswith(CPP_SUFFIXES))
    if not fixtures:
        print(f"self-test: no fixtures in {testdata_dir}", file=sys.stderr)
        return 1
    for name in fixtures:
        with open(os.path.join(testdata_dir, name), encoding="utf-8") as f:
            text = f.read()
        path_m = FIXTURE_PATH_RE.search(text)
        expect_m = FIXTURE_EXPECT_RE.search(text)
        if not path_m or not expect_m:
            print(f"self-test FAIL {name}: missing lint-fixture-path / "
                  "lint-fixture-expect header", file=sys.stderr)
            failures += 1
            continue
        expected = set(expect_m.group(1).split())
        expected.discard("clean")
        got = {v.rule for v in lint_cpp_file(path_m.group(1), text)}
        if got != expected:
            print(f"self-test FAIL {name}: expected rules "
                  f"{sorted(expected) or ['clean']}, got "
                  f"{sorted(got) or ['clean']}", file=sys.stderr)
            failures += 1
        else:
            print(f"self-test ok   {name}: {sorted(got) or ['clean']}")

    failures += run_registration_self_test()
    if failures:
        print(f"self-test: {failures} failure(s)", file=sys.stderr)
        return 1
    print(f"self-test: {len(fixtures)} fixtures + registration cases pass")
    return 0


def run_registration_self_test() -> int:
    """In-memory cases for the repo-level test-registration rule."""
    cases = [
        # (cmake, files, expected number of violations, label)
        ("file(GLOB T CONFIGURE_DEPENDS tests/*_test.cc)",
         {"tests/a_test.cc": "TEST(A, B) {}"}, 0, "glob+TEST"),
        ("add_executable(a_test tests/a_test.cc)",
         {"tests/a_test.cc": "TEST(A, B) {}"}, 0, "explicit+TEST"),
        ("# nothing registered",
         {"tests/a_test.cc": "TEST(A, B) {}"}, 1, "unregistered"),
        ("file(GLOB T CONFIGURE_DEPENDS tests/*_test.cc)",
         {"tests/a_test.cc": "// TEST(A, B) only in a comment"}, 1,
         "no TEST macro"),
    ]
    failures = 0
    for cmake, files, want, label in cases:
        got = len(lint_test_registration(cmake, files))
        if got != want:
            print(f"self-test FAIL registration[{label}]: expected {want} "
                  f"violation(s), got {got}", file=sys.stderr)
            failures += 1
        else:
            print(f"self-test ok   registration[{label}]")
    return failures


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="Repo-invariant linter (see module docstring)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the tools/testdata fixture suite")
    args = parser.parse_args(argv)

    script_dir = os.path.dirname(os.path.abspath(__file__))
    if args.self_test:
        return run_self_test(os.path.join(script_dir, "testdata"))

    root = args.root or os.path.dirname(script_dir)
    violations = lint_tree(root)
    for v in violations:
        print(v, file=sys.stderr)
    if violations:
        print(f"lint_invariants: {len(violations)} violation(s). Each rule "
              "has a reason — see tools/lint_invariants.py; if the code is "
              "right and the rule is wrong here, add "
              "'// lint:allow(<rule>)' with a justification.",
              file=sys.stderr)
        return 1
    print("lint_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

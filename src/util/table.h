// Plain-text table and CSV emission for the benchmark harness. The bench
// binaries print the same rows/series the paper reports and additionally
// persist them as CSV for downstream plotting.

#ifndef LOLOHA_UTIL_TABLE_H_
#define LOLOHA_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace loloha {

// Column-aligned text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  // Renders with columns padded to the widest cell.
  std::string ToString() const;

  // Renders as RFC-4180-ish CSV (fields containing commas/quotes are
  // quoted, quotes doubled).
  std::string ToCsv() const;

  // Writes ToCsv() to `path`; returns false on I/O failure.
  bool WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

  // Raw cells, for sinks that re-serialize the table (e.g. JSON).
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with `digits` significant digits (shortest form, no
// trailing zeros), e.g. for table cells.
std::string FormatDouble(double value, int digits = 6);

// RFC-4180 field escaping (quote fields containing comma, quote, or
// newline; double embedded quotes) — the exact encoding ToCsv applies,
// exported so slice partials (sim/slice.cc) round-trip table cells with
// the same bytes.
std::string CsvEscapeField(const std::string& field);

}  // namespace loloha

#endif  // LOLOHA_UTIL_TABLE_H_

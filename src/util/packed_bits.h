// Fixed-size packed bit vector. Memoized unary-encoding (and dBitFlipPM)
// reports are k-bit vectors kept for the lifetime of a simulated user, so a
// dense uint8 representation would dominate memory at paper scale; this
// packs them 64 per word.

#ifndef LOLOHA_UTIL_PACKED_BITS_H_
#define LOLOHA_UTIL_PACKED_BITS_H_

#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace loloha {

class PackedBits {
 public:
  PackedBits() : size_(0) {}
  explicit PackedBits(uint32_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool Get(uint32_t i) const {
    LOLOHA_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Set(uint32_t i, bool value) {
    LOLOHA_DCHECK(i < size_);
    const uint64_t mask = uint64_t{1} << (i & 63);
    if (value) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  // Number of set bits.
  uint32_t PopCount() const {
    uint32_t total = 0;
    for (const uint64_t w : words_) total += __builtin_popcountll(w);
    return total;
  }

  // Adds +1 to counts[i] for every set bit i. `counts` must have >= size()
  // entries.
  void AddToCounts(std::vector<uint64_t>& counts) const {
    ForEachSetBit([&counts](uint32_t i) { ++counts[i]; });
  }

  // Subtracts 1 from counts[i] for every set bit i.
  void SubFromCounts(std::vector<uint64_t>& counts) const {
    ForEachSetBit([&counts](uint32_t i) { --counts[i]; });
  }

  // Invokes fn(i) for every set bit, ascending.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        fn(static_cast<uint32_t>(w * 64 + b));
        bits &= bits - 1;
      }
    }
  }

  friend bool operator==(const PackedBits& lhs, const PackedBits& rhs) {
    return lhs.size_ == rhs.size_ && lhs.words_ == rhs.words_;
  }

  // Draws a one-hot-perturbed vector: bit `hot` ~ Bernoulli(p_hot), all
  // other bits iid Bernoulli(p_cold). This is UE encoding followed by one
  // round of bit flipping — the PRR memo draw.
  static PackedBits SampleOneHotNoisy(uint32_t size, uint32_t hot,
                                      double p_hot, double p_cold, Rng& rng);

 private:
  uint32_t size_;
  std::vector<uint64_t> words_;
};

}  // namespace loloha

#endif  // LOLOHA_UTIL_PACKED_BITS_H_

// Deterministic pseudo-random number generation.
//
// All randomized components of the library take an explicit `Rng&` (or a
// 64-bit seed), so every experiment is reproducible bit-for-bit. The
// generator is xoshiro256** (Blackman & Vigna), seeded through SplitMix64,
// which is the recommended seeding procedure for the xoshiro family.
//
// `Rng` satisfies the C++ UniformRandomBitGenerator concept, so it can also
// be handed to <random> distributions when convenient, but the methods below
// (UniformU64, UniformInt, UniformDouble, Bernoulli, ...) are branch-light
// and are what the protocol hot paths use.

#ifndef LOLOHA_UTIL_RNG_H_
#define LOLOHA_UTIL_RNG_H_

#include <cstdint>

#include "util/check.h"

namespace loloha {

// One step of the SplitMix64 sequence; also usable as a 64-bit mixer.
inline uint64_t SplitMix64Next(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Stateless avalanche mix of a 64-bit value (same finalizer as SplitMix64).
inline uint64_t Mix64(uint64_t x) {
  uint64_t s = x;
  return SplitMix64Next(s);
}

// Deterministic stream splitting: derives the seed of an independent child
// stream from (base, stream, substream) without touching any generator
// state. The parallel engine seeds every (step, shard) pair through this,
// so simulation output depends only on the base seed and the shard layout
// — never on how many threads happen to execute the shards.
inline uint64_t StreamSeed(uint64_t base, uint64_t stream,
                           uint64_t substream) {
  uint64_t s = Mix64(base ^ (0x9e3779b97f4a7c15ULL + Mix64(stream)));
  return Mix64(s ^ (0xd1b54a32d192ed03ULL + Mix64(substream)));
}

// xoshiro256** PRNG. Not cryptographic; plenty for Monte-Carlo simulation.
class Rng {
 public:
  using result_type = uint64_t;

  // Seeds the four words of state via SplitMix64 as recommended upstream.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (int i = 0; i < 4; ++i) s_[i] = SplitMix64Next(sm);
  }

  // UniformRandomBitGenerator interface.
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~uint64_t{0}; }
  uint64_t operator()() { return UniformU64(); }

  // Uniform over all 64-bit values.
  uint64_t UniformU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  // method, which avoids the modulo bias of `x % bound`.
  uint64_t UniformInt(uint64_t bound) {
    LOLOHA_DCHECK(bound > 0);
    uint64_t x = UniformU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = UniformU64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble() {
    return static_cast<double>(UniformU64() >> 11) * 0x1.0p-53;
  }

  // True with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return UniformDouble() < p;
  }

  // Uniform element of [0, bound) \ {excluded}; requires bound >= 2.
  uint64_t UniformIntExcluding(uint64_t bound, uint64_t excluded) {
    LOLOHA_DCHECK(bound >= 2);
    LOLOHA_DCHECK(excluded < bound);
    const uint64_t r = UniformInt(bound - 1);
    return r >= excluded ? r + 1 : r;
  }

  // Derives an independent child generator (useful to give each simulated
  // user its own stream without coupling to iteration order).
  Rng Fork() { return Rng(UniformU64() ^ 0x6a09e667f3bcc909ULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace loloha

#endif  // LOLOHA_UTIL_RNG_H_

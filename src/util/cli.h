// Minimal command-line flag parsing shared by the benchmark and example
// binaries. Supports `--name=value`, `--name value`, boolean `--name`,
// and positional operands (any argument that is neither a `--` flag nor
// consumed as a flag's value, e.g. the partial files of loloha_merge).

#ifndef LOLOHA_UTIL_CLI_H_
#define LOLOHA_UTIL_CLI_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace loloha {

class CommandLine {
 public:
  CommandLine(int argc, char** argv);

  bool HasFlag(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;

  const std::string& program_name() const { return program_name_; }

  // Non-flag operands, in argv order.
  const std::vector<std::string>& positional_args() const {
    return positional_args_;
  }

 private:
  std::string program_name_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_args_;
};

}  // namespace loloha

#endif  // LOLOHA_UTIL_CLI_H_

#include "util/alias_sampler.h"

#include <cstddef>

#include "util/check.h"

namespace loloha {

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const size_t n = weights.size();
  LOLOHA_CHECK(n > 0);
  double total = 0.0;
  for (const double w : weights) {
    LOLOHA_CHECK_MSG(w >= 0.0, "alias weights must be non-negative");
    total += w;
  }
  LOLOHA_CHECK_MSG(total > 0.0, "alias weights must not all be zero");

  normalized_.resize(n);
  for (size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Vose's algorithm: partition scaled probabilities into "small" (< 1) and
  // "large" (>= 1) worklists, then pair each small column with a large one.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = normalized_[i] * n;

  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical leftovers: both lists should hold columns with scaled ~= 1.
  for (const uint32_t i : small) prob_[i] = 1.0;
  for (const uint32_t i : large) prob_[i] = 1.0;
}

uint32_t AliasSampler::Sample(Rng& rng) const {
  const uint32_t column =
      static_cast<uint32_t>(rng.UniformInt(prob_.size()));
  return rng.UniformDouble() < prob_[column] ? column : alias_[column];
}

}  // namespace loloha

#include "util/table.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace loloha {

std::string CsvEscapeField(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  LOLOHA_CHECK(!header_.empty());
}

void TextTable::AddRow(std::vector<std::string> row) {
  LOLOHA_CHECK_MSG(row.size() == header_.size(),
                   "row arity must match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit_row(header_);
  size_t total = header_.size() - 1;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + 1;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TextTable::ToCsv() const {
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << CsvEscapeField(row[c]);
    }
    out << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

bool TextTable::WriteCsv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  file << ToCsv();
  return static_cast<bool>(file);
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

}  // namespace loloha

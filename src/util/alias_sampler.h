// Walker/Vose alias method for O(1) sampling from a fixed discrete
// distribution. Used by the dataset generators, which draw millions of
// values from skewed marginals.

#ifndef LOLOHA_UTIL_ALIAS_SAMPLER_H_
#define LOLOHA_UTIL_ALIAS_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace loloha {

class AliasSampler {
 public:
  // Builds the alias table from (unnormalized, non-negative) weights; at
  // least one weight must be positive.
  explicit AliasSampler(const std::vector<double>& weights);

  // Draws an index in [0, size()) with probability proportional to its
  // weight.
  uint32_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

  // The normalized probability of index i (for testing).
  double probability(size_t i) const { return normalized_[i]; }

 private:
  std::vector<double> prob_;       // acceptance probability per column
  std::vector<uint32_t> alias_;    // alias index per column
  std::vector<double> normalized_; // normalized input distribution
};

}  // namespace loloha

#endif  // LOLOHA_UTIL_ALIAS_SAMPLER_H_

// Fixed-size worker pool shared by the whole process: sharded simulation
// loops (ParallelFor), and free-form task graphs (Submit + WaitGroup) used
// by the Monte-Carlo outer loops in bench/.
//
// Design constraint (see sim/runner.h): simulation results must be
// bit-reproducible at any thread count. Parallel loops are therefore
// expressed over a fixed number of *shards* — independent of the worker
// count — and every shard derives its own deterministic Rng stream (see
// StreamSeed in util/rng.h). The pool only decides which worker executes
// which shard, never what a shard computes, so changing the thread count
// re-schedules the same work without changing any random draw.
//
// Nesting: a task running on the pool (a Submit task, or a shard of an
// outer ParallelFor) may call ParallelFor on the same pool — the nested
// loop detects it is already on a pool thread and runs its shards inline,
// in shard order. This is what lets a Monte-Carlo outer loop and the
// runners' per-step inner sharding share one pool without deadlock, and it
// keeps nested work bit-identical to the single-thread schedule.

#ifndef LOLOHA_UTIL_THREAD_POOL_H_
#define LOLOHA_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace loloha {

// Contiguous [begin, end) slice owned by `shard` when `total` items are
// split into `num_shards` near-equal parts; the first total % num_shards
// shards get one extra item. Shards past `total` come back empty.
struct ShardRange {
  uint64_t begin = 0;
  uint64_t end = 0;
};

inline ShardRange ShardBounds(uint64_t total, uint32_t num_shards,
                              uint32_t shard) {
  const uint64_t base = total / num_shards;
  const uint64_t extra = total % num_shards;
  ShardRange range;
  range.begin = shard * base + (shard < extra ? shard : extra);
  range.end = range.begin + base + (shard < extra ? 1 : 0);
  return range;
}

// Counts outstanding tasks submitted to one ThreadPool. A WaitGroup is
// bound to the pool it is first used with (its counter is guarded by that
// pool's mutex); reuse after ThreadPool::Wait returns is fine, mixing one
// WaitGroup across pools is not.
class WaitGroup {
 public:
  WaitGroup() = default;
  WaitGroup(const WaitGroup&) = delete;
  WaitGroup& operator=(const WaitGroup&) = delete;

 private:
  friend class ThreadPool;
  // Guarded by the owning pool's mu_. The binding is dynamic (first use),
  // so it cannot carry a LOLOHA_GUARDED_BY annotation — every access
  // lives in ThreadPool methods that hold mu_, which the analysis checks
  // through those methods' own annotations.
  int64_t pending_ = 0;
};

class ThreadPool {
 public:
  // `num_threads` counts the calling thread: a pool of 1 spawns no workers
  // and runs every shard inline; a pool of T spawns T - 1 workers that
  // assist the caller. 0 is clamped to 1.
  explicit ThreadPool(uint32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t num_threads() const { return num_threads_; }

  // Enqueues `fn` to run on a worker (or on a thread blocked in Wait) and
  // registers it with `wg`. Tasks may Submit further tasks and may call
  // ParallelFor on this pool (which then runs inline); they must not call
  // Wait.
  void Submit(WaitGroup& wg, std::function<void()> fn) LOLOHA_EXCLUDES(mu_);

  // Blocks until every task registered with `wg` has finished. The calling
  // thread drains queued tasks while it waits, so Submit + Wait makes
  // progress even on a pool of 1 (which has no workers). Must be called
  // from outside the pool (not from within a task).
  void Wait(WaitGroup& wg) LOLOHA_EXCLUDES(mu_);

  // Invokes fn(shard) exactly once for every shard in [0, num_shards),
  // distributed over the workers plus the calling thread, and returns when
  // all shards have finished. When called from a thread that is already
  // executing this pool's work (a Submit task or an enclosing ParallelFor
  // shard), the shards run inline on the calling thread, in order. At most
  // one thread from outside the pool may drive ParallelFor at a time.
  void ParallelFor(uint32_t num_shards, const std::function<void(uint32_t)>& fn)
      LOLOHA_EXCLUDES(mu_);

  // True when the calling thread is currently executing work scheduled on
  // this pool (worker thread, Wait-drained task, or ParallelFor shard).
  bool OnPoolThread() const;

  // std::thread::hardware_concurrency(), clamped to >= 1 (the standard
  // allows it to report 0 when unknown).
  static uint32_t HardwareThreads();

 private:
  // One ParallelFor invocation. Heap-allocated and shared with the workers
  // so that a straggler waking up after completion only touches a job that
  // is provably drained (next_ >= num_shards), never freed memory.
  struct Job {
    Job(const std::function<void(uint32_t)>& f, uint32_t shards)
        : fn(f), num_shards(shards) {}
    std::function<void(uint32_t)> fn;
    uint32_t num_shards;
    std::atomic<uint32_t> next{0};
    std::atomic<uint32_t> done{0};
  };

  // One Submit invocation.
  struct Task {
    std::function<void()> fn;
    WaitGroup* wg = nullptr;
  };

  void WorkerLoop() LOLOHA_EXCLUDES(mu_);
  void RunShards(Job& job) LOLOHA_EXCLUDES(mu_);
  void RunTask(Task& task) LOLOHA_EXCLUDES(mu_);

  uint32_t num_threads_;
  Mutex mu_{lock_rank::kThreadPool};
  CondVar work_cv_;
  CondVar done_cv_;
  std::deque<Task> tasks_ LOLOHA_GUARDED_BY(mu_);
  std::shared_ptr<Job> current_job_ LOLOHA_GUARDED_BY(mu_);
  uint64_t epoch_ LOLOHA_GUARDED_BY(mu_) = 0;  // bumped per job
  bool stop_ LOLOHA_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

// Scoped "borrow or own" pool handle for code paths that accept an
// optional shared pool (RunnerOptions::pool): borrows `borrowed` when
// non-null, otherwise constructs a private pool of `fallback_threads` for
// the lease's lifetime.
class PoolLease {
 public:
  PoolLease(ThreadPool* borrowed, uint32_t fallback_threads)
      : pool_(borrowed) {
    if (pool_ == nullptr) {
      owned_ = std::make_unique<ThreadPool>(fallback_threads);
      pool_ = owned_.get();
    }
  }

  PoolLease(const PoolLease&) = delete;
  PoolLease& operator=(const PoolLease&) = delete;

  ThreadPool& operator*() const { return *pool_; }
  ThreadPool* operator->() const { return pool_; }

 private:
  ThreadPool* pool_;
  std::unique_ptr<ThreadPool> owned_;
};

}  // namespace loloha

#endif  // LOLOHA_UTIL_THREAD_POOL_H_

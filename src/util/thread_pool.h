// Fixed-size worker pool for sharded simulation loops.
//
// Design constraint (see sim/runner.h): simulation results must be
// bit-reproducible at any thread count. Parallel loops are therefore
// expressed over a fixed number of *shards* — independent of the worker
// count — and every shard derives its own deterministic Rng stream (see
// StreamSeed in util/rng.h). The pool only decides which worker executes
// which shard, never what a shard computes, so changing the thread count
// re-schedules the same work without changing any random draw.

#ifndef LOLOHA_UTIL_THREAD_POOL_H_
#define LOLOHA_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace loloha {

// Contiguous [begin, end) slice owned by `shard` when `total` items are
// split into `num_shards` near-equal parts; the first total % num_shards
// shards get one extra item. Shards past `total` come back empty.
struct ShardRange {
  uint64_t begin = 0;
  uint64_t end = 0;
};

inline ShardRange ShardBounds(uint64_t total, uint32_t num_shards,
                              uint32_t shard) {
  const uint64_t base = total / num_shards;
  const uint64_t extra = total % num_shards;
  ShardRange range;
  range.begin = shard * base + (shard < extra ? shard : extra);
  range.end = range.begin + base + (shard < extra ? 1 : 0);
  return range;
}

class ThreadPool {
 public:
  // `num_threads` counts the calling thread: a pool of 1 spawns no workers
  // and runs every shard inline; a pool of T spawns T - 1 workers that
  // assist the caller. 0 is clamped to 1.
  explicit ThreadPool(uint32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t num_threads() const { return num_threads_; }

  // Invokes fn(shard) exactly once for every shard in [0, num_shards),
  // distributed over the workers plus the calling thread, and returns when
  // all shards have finished. Not reentrant: fn must not call ParallelFor
  // on the same pool, and only one thread may drive the pool at a time.
  void ParallelFor(uint32_t num_shards,
                   const std::function<void(uint32_t)>& fn);

  // std::thread::hardware_concurrency(), clamped to >= 1 (the standard
  // allows it to report 0 when unknown).
  static uint32_t HardwareThreads();

 private:
  // One ParallelFor invocation. Heap-allocated and shared with the workers
  // so that a straggler waking up after completion only touches a job that
  // is provably drained (next_ >= num_shards), never freed memory.
  struct Job {
    Job(const std::function<void(uint32_t)>& f, uint32_t shards)
        : fn(f), num_shards(shards) {}
    std::function<void(uint32_t)> fn;
    uint32_t num_shards;
    std::atomic<uint32_t> next{0};
    std::atomic<uint32_t> done{0};
  };

  void WorkerLoop();
  void RunShards(Job& job);

  uint32_t num_threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> current_job_;  // guarded by mu_
  uint64_t epoch_ = 0;                // guarded by mu_; bumped per job
  bool stop_ = false;                 // guarded by mu_
  std::vector<std::thread> workers_;
};

}  // namespace loloha

#endif  // LOLOHA_UTIL_THREAD_POOL_H_

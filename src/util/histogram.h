// Frequency-vector utilities: counting, normalization, and the error
// metrics used throughout the evaluation (MSE of Eq. 7's inner sum, total
// variation, KL divergence).

#ifndef LOLOHA_UTIL_HISTOGRAM_H_
#define LOLOHA_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace loloha {

// Counts occurrences of each value of [0, k) in `values`.
std::vector<uint64_t> CountValues(const std::vector<uint32_t>& values,
                                  uint32_t k);

// Normalizes counts into frequencies summing to 1 (all-zero input yields
// the all-zero vector).
std::vector<double> NormalizeCounts(const std::vector<uint64_t>& counts);

// True frequency vector of `values` over domain [0, k).
std::vector<double> TrueFrequencies(const std::vector<uint32_t>& values,
                                    uint32_t k);

// Mean squared error between two same-length frequency vectors:
// (1/k) * sum_v (a_v - b_v)^2.  This is the inner term of Eq. (7).
double MeanSquaredError(const std::vector<double>& a,
                        const std::vector<double>& b);

// Total variation distance: (1/2) * sum_v |a_v - b_v|.
double TotalVariation(const std::vector<double>& a,
                      const std::vector<double>& b);

// Maximum absolute coordinate error: max_v |a_v - b_v| (the quantity
// bounded by Proposition 3.6).
double MaxAbsError(const std::vector<double>& a, const std::vector<double>& b);

// Kullback-Leibler divergence KL(a || b) over coordinates where a_v > 0;
// coordinates with b_v <= 0 are clamped to `floor` to keep it finite.
double KlDivergence(const std::vector<double>& a, const std::vector<double>& b,
                    double floor = 1e-12);

// Clips each coordinate to [0, 1] and rescales to sum to 1 — the standard
// (biased) post-processing step offered as an option to consumers; the
// paper's metrics are computed on the raw unbiased estimates.
std::vector<double> ProjectToSimplex(const std::vector<double>& freqs);

}  // namespace loloha

#endif  // LOLOHA_UTIL_HISTOGRAM_H_

// Lightweight precondition / invariant checking.
//
// The library is built without exceptions (Google C++ style); violated
// preconditions are programmer errors and abort the process with a
// diagnostic. `LOLOHA_DCHECK` compiles away in release builds and is meant
// for hot paths.

#ifndef LOLOHA_UTIL_CHECK_H_
#define LOLOHA_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace loloha::internal {

[[noreturn]] inline void CheckFail(const char* expr, const char* file,
                                   int line, const char* msg) {
  std::fprintf(stderr, "LOLOHA_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? " — " : "", msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace loloha::internal

// Aborts with a diagnostic when `cond` is false. Always on.
#define LOLOHA_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond))                                                        \
      ::loloha::internal::CheckFail(#cond, __FILE__, __LINE__, "");     \
  } while (0)

// Same as LOLOHA_CHECK but with an explanatory message.
#define LOLOHA_CHECK_MSG(cond, msg)                                     \
  do {                                                                  \
    if (!(cond))                                                        \
      ::loloha::internal::CheckFail(#cond, __FILE__, __LINE__, (msg));  \
  } while (0)

// Debug-only check for hot paths.
#ifdef NDEBUG
#define LOLOHA_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define LOLOHA_DCHECK(cond) LOLOHA_CHECK(cond)
#endif

#endif  // LOLOHA_UTIL_CHECK_H_

#include "util/lock_order.h"

#if LOLOHA_LOCK_ORDER_CHECKS

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace loloha {
namespace lock_order {
namespace {

// Per-thread stack of ranked locks currently held, in acquisition order.
struct HeldStack {
  uint16_t ids[kMaxHeldLocks];
  const char* names[kMaxHeldLocks];
  int depth = 0;
};

thread_local HeldStack t_held;

// One acquired-before edge from -> to, stamped with the first-observed
// witness: the acquiring thread's held stack at that moment.
struct Edge {
  bool seen = false;
  std::string witness;  // "held [A, B] while acquiring C (thread <id>)"
};

// Process-wide graph. adj_ is a reachability-friendly adjacency matrix
// over rank ids; names_ remembers the printable name per id. Guarded by
// a raw std::mutex (NOT loloha::Mutex — the detector must not recurse
// into itself).
struct Graph {
  std::mutex mu;
  uint64_t adj[kMaxRanks] = {};  // bit t of adj[f]: edge f -> t observed
  const char* names[kMaxRanks] = {};
  Edge edges[kMaxRanks][kMaxRanks];
};

Graph g_graph;

std::string ThreadIdString() {
  char buf[32];
  // std::this_thread::get_id has no portable integer accessor; hash it.
  std::snprintf(buf, sizeof(buf), "%zx",
                std::hash<std::thread::id>{}(std::this_thread::get_id()));
  return buf;
}

std::string DescribeHeldStack(const HeldStack& held) {
  std::string out = "[";
  for (int i = 0; i < held.depth; ++i) {
    if (i > 0) out += " -> ";
    out += held.names[i];
  }
  out += "]";
  return out;
}

std::string MakeWitness(const HeldStack& held, const char* acquiring) {
  return "thread " + ThreadIdString() + " held " + DescribeHeldStack(held) +
         " while acquiring " + acquiring;
}

// Depth-first reachability from -> to over the recorded edges.
// Requires g_graph.mu. Writes the path (rank ids, from..to inclusive)
// into path[] and returns its length, or 0 if unreachable.
int FindPath(uint16_t from, uint16_t to, uint16_t* path, int max_len) {
  bool visited[kMaxRanks] = {};
  uint16_t stack[kMaxRanks];
  uint16_t parent[kMaxRanks];
  int sp = 0;
  stack[sp++] = from;
  visited[from] = true;
  parent[from] = from;
  bool found = (from == to);
  while (sp > 0 && !found) {
    uint16_t cur = stack[--sp];
    uint64_t out = g_graph.adj[cur];
    while (out != 0) {
      int next = __builtin_ctzll(out);
      out &= out - 1;
      if (visited[next]) continue;
      visited[next] = true;
      parent[next] = cur;
      if (next == to) {
        found = true;
        break;
      }
      stack[sp++] = static_cast<uint16_t>(next);
    }
  }
  if (!found) return 0;
  // Reconstruct to..from, then reverse into from..to.
  uint16_t rev[kMaxRanks];
  int n = 0;
  for (uint16_t cur = to;; cur = parent[cur]) {
    rev[n++] = cur;
    if (cur == from) break;
  }
  if (n > max_len) n = max_len;
  for (int i = 0; i < n; ++i) path[i] = rev[n - 1 - i];
  return n;
}

[[noreturn]] void ReportInversion(const LockRank& acquiring,
                                  uint16_t held_id, const char* held_name,
                                  const uint16_t* path, int path_len) {
  // One-line summary first (tests match on it), then the evidence.
  std::fprintf(stderr,
               "lock-order inversion: acquiring %s (rank %u) while holding "
               "%s (rank %u)\n",
               acquiring.name, acquiring.id, held_name, held_id);
  std::fprintf(stderr, "  this thread: %s\n",
               MakeWitness(t_held, acquiring.name).c_str());
  std::fprintf(stderr,
               "  conflicting acquired-before path (%s reaches %s):\n",
               acquiring.name, held_name);
  for (int i = 0; i + 1 < path_len; ++i) {
    const Edge& e = g_graph.edges[path[i]][path[i + 1]];
    std::fprintf(stderr, "    %s -> %s  first seen: %s\n",
                 g_graph.names[path[i]], g_graph.names[path[i + 1]],
                 e.seen ? e.witness.c_str() : "(unrecorded)");
  }
  std::fprintf(stderr,
               "  fix: acquire these locks in one global order (see the "
               "rank table in src/util/lock_order.h / docs/ANALYSIS.md)\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void OnAcquire(const LockRank& rank) {
  if (rank.id == 0) return;
  if (rank.id >= kMaxRanks) {
    std::fprintf(stderr, "lock-order: rank id %u for %s exceeds kMaxRanks\n",
                 rank.id, rank.name);
    std::abort();
  }
  HeldStack& held = t_held;
  if (held.depth >= kMaxHeldLocks) {
    std::fprintf(stderr,
                 "lock-order: thread holds %d ranked locks acquiring %s — "
                 "nesting this deep is a design bug\n",
                 held.depth, rank.name);
    std::abort();
  }
  if (held.depth > 0) {
    std::lock_guard<std::mutex> g(g_graph.mu);
    g_graph.names[rank.id] = rank.name;
    for (int i = 0; i < held.depth; ++i) {
      uint16_t h = held.ids[i];
      if (h == rank.id) {
        // Two instances of one rank held together: siblings share a rank
        // precisely because they are never nested, so this is the same
        // class of bug as an inversion (shard A vs shard B order is
        // schedule-dependent).
        std::fprintf(stderr,
                     "lock-order inversion: acquiring %s (rank %u) while "
                     "holding another lock of the same rank\n",
                     rank.name, rank.id);
        std::fprintf(stderr, "  this thread: %s\n",
                     MakeWitness(held, rank.name).c_str());
        std::fflush(stderr);
        std::abort();
      }
      // If rank already reaches h, adding h -> rank closes a cycle.
      uint16_t path[kMaxRanks];
      int path_len = FindPath(rank.id, h, path, kMaxRanks);
      if (path_len > 0) {
        ReportInversion(rank, h, g_graph.names[h] ? g_graph.names[h] : "?",
                        path, path_len);
      }
    }
    // No cycle: record every held -> rank edge with a first-seen witness.
    for (int i = 0; i < held.depth; ++i) {
      uint16_t h = held.ids[i];
      g_graph.names[h] = held.names[i];
      if ((g_graph.adj[h] >> rank.id & 1) == 0) {
        g_graph.adj[h] |= uint64_t{1} << rank.id;
        Edge& e = g_graph.edges[h][rank.id];
        e.seen = true;
        e.witness = MakeWitness(held, rank.name);
      }
    }
  }
  held.ids[held.depth] = rank.id;
  held.names[held.depth] = rank.name;
  ++held.depth;
}

void OnRelease(const LockRank& rank) {
  if (rank.id == 0) return;
  HeldStack& held = t_held;
  // Usually LIFO; tolerate out-of-order release (hand-over-hand locking)
  // by removing the innermost matching entry.
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.ids[i] != rank.id) continue;
    for (int j = i; j + 1 < held.depth; ++j) {
      held.ids[j] = held.ids[j + 1];
      held.names[j] = held.names[j + 1];
    }
    --held.depth;
    return;
  }
  std::fprintf(stderr, "lock-order: releasing %s (rank %u) not held\n",
               rank.name, rank.id);
  std::abort();
}

void ResetForTest() {
  std::lock_guard<std::mutex> g(g_graph.mu);
  std::memset(g_graph.adj, 0, sizeof(g_graph.adj));
  for (auto& row : g_graph.edges) {
    for (auto& e : row) {
      e.seen = false;
      e.witness.clear();
    }
  }
  t_held.depth = 0;
}

int HeldCountForTest() { return t_held.depth; }

}  // namespace lock_order
}  // namespace loloha

#endif  // LOLOHA_LOCK_ORDER_CHECKS

// Width-agnostic SIMD kernels for the support-count and hash-row hot
// loops, with a scalar fallback selected at compile time.
//
// The single-thread profile of the LOLOHA/OLH estimation paths is
// dominated by two loop shapes:
//
//   1. support scans     acc[v] += (row[v] == target)   (Algorithm 2 line 4)
//   2. column sums       sums[c] += rows[r][c]          (unary-encoding counts)
//
// plus the per-user hash-row precompute row[v] = h_{a,b}(v). The kernels
// below express (1) and (2) over GNU vector extensions (__attribute__
// ((vector_size))), which GCC and Clang lower to whatever vector ISA the
// target has: 32-byte vectors under AVX2, 16-byte under SSE2/NEON, plain
// scalar code elsewhere. No intrinsics headers, no runtime dispatch — the
// widest compile-time ISA wins, and every kernel computes bit-identical
// results at every width (integer compares and adds only).
//
// The 16-bit accumulator variants are the fast path: a match adds an
// all-ones lane (-1 in two's complement), so `acc -= (chunk == target)` is
// one compare and one subtract per vector. Callers flush the 16-bit
// accumulators into wide counters at most every kU16AccumulatorFlush
// items (65535 matches saturate a lane).

#ifndef LOLOHA_UTIL_SIMD_H_
#define LOLOHA_UTIL_SIMD_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "util/check.h"

namespace loloha {

// Compile-time vector width in bytes; 0 selects the scalar fallback.
#if defined(LOLOHA_FORCE_SCALAR_SIMD)
inline constexpr size_t kSimdWidthBytes = 0;
#elif defined(__AVX2__)
inline constexpr size_t kSimdWidthBytes = 32;
#elif defined(__SSE2__) || defined(__ARM_NEON) || defined(__ALTIVEC__) || \
    defined(__riscv_vector)
inline constexpr size_t kSimdWidthBytes = 16;
#elif defined(__GNUC__) || defined(__clang__)
// Vector extensions still compile on unknown targets; let the compiler
// pick the lowering.
inline constexpr size_t kSimdWidthBytes = 16;
#else
inline constexpr size_t kSimdWidthBytes = 0;
#endif

// Maximum items a 16-bit lane can absorb before a flush is required.
inline constexpr uint32_t kU16AccumulatorFlush = 65535;

#if defined(__GNUC__) || defined(__clang__)
#define LOLOHA_SIMD_VECTOR_EXT 1
#endif

#if defined(LOLOHA_SIMD_VECTOR_EXT) && !defined(LOLOHA_FORCE_SCALAR_SIMD)

namespace simd_internal {

inline constexpr size_t kVecBytes = kSimdWidthBytes == 0 ? 16
                                                         : kSimdWidthBytes;
inline constexpr size_t kU16Lanes = kVecBytes / sizeof(uint16_t);

using U16Vec = uint16_t __attribute__((vector_size(kVecBytes)));

inline U16Vec LoadU16(const uint16_t* p) {
  U16Vec v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void StoreU16(uint16_t* p, U16Vec v) { std::memcpy(p, &v, sizeof(v)); }

inline U16Vec SplatU16(uint16_t x) {
  U16Vec v;
  for (size_t l = 0; l < kU16Lanes; ++l) v[l] = x;
  return v;
}

}  // namespace simd_internal

// acc[i] += (data[i] == target) for i in [0, n). 16-bit lanes: the caller
// flushes acc into wide counters at least every kU16AccumulatorFlush calls
// with the same acc (one call contributes at most 1 per slot).
inline void AddEqualMaskU16(const uint16_t* data, size_t n, uint16_t target,
                            uint16_t* acc) {
  using namespace simd_internal;
  const U16Vec vt = SplatU16(target);
  size_t i = 0;
  for (; i + kU16Lanes <= n; i += kU16Lanes) {
    // (chunk == vt) yields all-ones (== -1) per matching lane; comparison
    // results are signed vectors, hence the reinterpreting cast.
    const U16Vec mask = (U16Vec)(LoadU16(data + i) == vt);
    StoreU16(acc + i, LoadU16(acc + i) - mask);
  }
  for (; i < n; ++i) acc[i] += data[i] == target ? 1 : 0;
}

// Number of i in [0, n) with data[i] == target — the reduction form of
// AddEqualMaskU16, for callers that need one support count rather than a
// per-value vector (e.g. auditing a single value's support against a
// precomputed hash-row table).
inline uint64_t CountEqualU16(const uint16_t* data, size_t n,
                              uint16_t target) {
  using namespace simd_internal;
  const U16Vec vt = SplatU16(target);
  uint64_t total = 0;
  size_t i = 0;
  while (i + kU16Lanes <= n) {
    // Lane accumulators saturate after kU16AccumulatorFlush additions;
    // flush each block into the 64-bit total.
    const size_t block_end =
        i + std::min<size_t>(((n - i) / kU16Lanes) * kU16Lanes,
                             size_t{kU16AccumulatorFlush} * kU16Lanes);
    U16Vec acc = SplatU16(0);
    for (; i + kU16Lanes <= block_end; i += kU16Lanes) {
      acc -= (U16Vec)(LoadU16(data + i) == vt);
    }
    for (size_t l = 0; l < kU16Lanes; ++l) total += acc[l];
  }
  for (; i < n; ++i) total += data[i] == target ? 1 : 0;
  return total;
}

#else  // scalar fallback

inline void AddEqualMaskU16(const uint16_t* data, size_t n, uint16_t target,
                            uint16_t* acc) {
  for (size_t i = 0; i < n; ++i) acc[i] += data[i] == target ? 1 : 0;
}

inline uint64_t CountEqualU16(const uint16_t* data, size_t n,
                              uint16_t target) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) total += data[i] == target ? 1 : 0;
  return total;
}

#endif  // LOLOHA_SIMD_VECTOR_EXT

// Reference scalar implementations, kept unconditionally for the SIMD
// bit-identity tests (and as documentation of the kernels' contracts).
inline void AddEqualMaskU16Scalar(const uint16_t* data, size_t n,
                                  uint16_t target, uint16_t* acc) {
  for (size_t i = 0; i < n; ++i) acc[i] += data[i] == target ? 1 : 0;
}

inline uint64_t CountEqualU16Scalar(const uint16_t* data, size_t n,
                                    uint16_t target) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) total += data[i] == target ? 1 : 0;
  return total;
}

// Flushes a 16-bit accumulator into 64-bit counters and clears it:
// wide[i] += acc[i]; acc[i] = 0.
inline void FlushU16ToU64(uint16_t* acc, size_t n, uint64_t* wide) {
  for (size_t i = 0; i < n; ++i) {
    wide[i] += acc[i];
    acc[i] = 0;
  }
}

// Support-count accumulator: support[i] += (row[i] == target) per Add
// call, staged in 16-bit lanes and flushed into the caller's 64-bit
// counters before a lane can saturate (every kU16AccumulatorFlush adds).
// The destructor flushes the remainder, so `wide` holds the exact totals
// once the accumulator goes out of scope; the LOLOHA and Naive-OLH
// estimation scans both run through this.
class U16SupportAccumulator {
 public:
  // `wide` (length n) must outlive the accumulator.
  U16SupportAccumulator(size_t n, uint64_t* wide)
      : n_(n), wide_(wide), acc_(n, 0) {}

  U16SupportAccumulator(const U16SupportAccumulator&) = delete;
  U16SupportAccumulator& operator=(const U16SupportAccumulator&) = delete;

  ~U16SupportAccumulator() { Flush(); }

  void Add(const uint16_t* row, uint16_t target) {
    AddEqualMaskU16(row, n_, target, acc_.data());
    if (++pending_ == kU16AccumulatorFlush) Flush();
  }

  void Flush() {
    if (pending_ != 0) FlushU16ToU64(acc_.data(), n_, wide_);
    pending_ = 0;
  }

 private:
  size_t n_;
  uint64_t* wide_;
  std::vector<uint16_t> acc_;
  uint32_t pending_ = 0;
};

// sums[c] += sum over r of rows[r * num_cols + c] for a row-major byte
// matrix. Rows are accumulated in 16-bit lanes (vectorized u8->u16 adds)
// and flushed into the 64-bit sums every 255 rows, so arbitrary byte
// values are safe. `scratch` must hold num_cols uint16_t and is clobbered.
inline void SumColumnsU8(const uint8_t* rows, size_t num_rows,
                         size_t num_cols, uint64_t* sums,
                         uint16_t* scratch) {
  std::memset(scratch, 0, num_cols * sizeof(uint16_t));
  size_t since_flush = 0;
  for (size_t r = 0; r < num_rows; ++r) {
    const uint8_t* row = rows + r * num_cols;
    for (size_t c = 0; c < num_cols; ++c) {
      scratch[c] = static_cast<uint16_t>(scratch[c] + row[c]);
    }
    if (++since_flush == 255) {
      FlushU16ToU64(scratch, num_cols, sums);
      since_flush = 0;
    }
  }
  if (since_flush != 0) FlushU16ToU64(scratch, num_cols, sums);
}

// Destructive cache-line size assumed by the privatized shard rows below.
// std::hardware_destructive_interference_size would be the standard spelling
// but is a compile-time constant anyway; 64 bytes covers every x86/ARM
// server part this library targets.
inline constexpr size_t kCacheLineBytes = 64;

// Privatized per-shard accumulator rows. Concurrent shard workers each add
// into their own row, merged serially afterwards; with a plain
// vector<T>(num_rows * row_len) adjacent rows share cache lines whenever
// row_len * sizeof(T) is not a line multiple — at small k every worker
// false-shares every line. Here each row starts on its own 64-byte boundary
// and the stride is padded to a line multiple, so no two rows ever touch
// the same line.
template <typename T>
class CacheAlignedRows {
  static_assert(std::is_integral_v<T> && sizeof(T) <= kCacheLineBytes,
                "rows hold plain integral counters");

 public:
  CacheAlignedRows(uint32_t num_rows, size_t row_len)
      : num_rows_(num_rows),
        row_len_(row_len),
        stride_((row_len * sizeof(T) + kCacheLineBytes - 1) /
                kCacheLineBytes * (kCacheLineBytes / sizeof(T))),
        storage_(static_cast<size_t>(num_rows) * stride_ +
                 kCacheLineBytes / sizeof(T)) {}

  T* Row(uint32_t row) {
    LOLOHA_DCHECK(row < num_rows_);
    return AlignedBase() + static_cast<size_t>(row) * stride_;
  }
  const T* Row(uint32_t row) const {
    LOLOHA_DCHECK(row < num_rows_);
    return AlignedBase() + static_cast<size_t>(row) * stride_;
  }

  uint32_t num_rows() const { return num_rows_; }
  size_t row_len() const { return row_len_; }
  // Row-to-row distance in elements (a cache-line multiple >= row_len).
  size_t stride() const { return stride_; }

  // Zeroes every row.
  void Clear() { std::fill(storage_.begin(), storage_.end(), T{0}); }

  // dst[i] += sum over rows of Row(r)[i], for i in [0, row_len).
  template <typename Dst>
  void MergeInto(Dst* dst) const {
    for (uint32_t r = 0; r < num_rows_; ++r) {
      const T* row = Row(r);
      for (size_t i = 0; i < row_len_; ++i) {
        dst[i] += static_cast<Dst>(row[i]);
      }
    }
  }

 private:
  // First 64-byte boundary inside the (over-allocated) storage. Recomputed
  // per access so the object stays trivially movable.
  T* AlignedBase() {
    const uintptr_t raw = reinterpret_cast<uintptr_t>(storage_.data());
    return reinterpret_cast<T*>((raw + kCacheLineBytes - 1) &
                                ~uintptr_t{kCacheLineBytes - 1});
  }
  const T* AlignedBase() const {
    const uintptr_t raw = reinterpret_cast<uintptr_t>(storage_.data());
    return reinterpret_cast<const T*>((raw + kCacheLineBytes - 1) &
                                      ~uintptr_t{kCacheLineBytes - 1});
  }

  uint32_t num_rows_;
  size_t row_len_;
  size_t stride_;
  std::vector<T> storage_;
};

// Strength-reduced hash-row kernel: out[v] = h_{a,b}(v) for v in [0, k),
// bit-identical to UniversalHash::operator() (see util/hash.h). Instead of
// one 128-bit multiply per value, the running value s_v = (a*v + b) mod p
// advances by a single modular addition (a, s_v < p = 2^61 - 1, so the sum
// fits in 62 bits and one conditional subtraction reduces it); and instead
// of a division per value, the residue r_v = s_v mod g advances with it:
// s_{v+1} - s_v is a (no wrap) or a - p (wrap), so r steps by a mod g or
// (a - p) mod g — both in [0, g), leaving one conditional subtraction to
// renormalize. The loop is division-free, which matters on the batched
// server path where the row is refilled per report. Requires g <= 65535
// (the population paths' row encoding).
inline void HashRowU16(uint64_t a, uint64_t b, uint32_t g, uint32_t k,
                       uint16_t* out) {
  constexpr uint64_t kPrime = (uint64_t{1} << 61) - 1;
  LOLOHA_DCHECK(a >= 1 && a < kPrime);
  LOLOHA_DCHECK(b < kPrime);
  LOLOHA_DCHECK(g >= 2 && g <= 65535);
  const uint32_t step_plain = static_cast<uint32_t>(a % g);
  const uint32_t prime_mod = static_cast<uint32_t>(kPrime % g);
  const uint32_t step_wrap =
      step_plain >= prime_mod ? step_plain - prime_mod
                              : step_plain + g - prime_mod;
  uint64_t s = b;                                 // (a*0 + b) mod p
  uint32_t r = static_cast<uint32_t>(b % g);      // s mod g
  for (uint32_t v = 0; v < k; ++v) {
    out[v] = static_cast<uint16_t>(r);
    s += a;
    if (s >= kPrime) {
      s -= kPrime;
      r += step_wrap;
    } else {
      r += step_plain;
    }
    if (r >= g) r -= g;
  }
}

}  // namespace loloha

#endif  // LOLOHA_UTIL_SIMD_H_

#include "util/cli.h"

#include <cstdlib>
#include <string_view>

namespace loloha {

CommandLine::CommandLine(int argc, char** argv) {
  if (argc > 0) program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    // rfind(prefix, 0) == 0 is the portable prefix test (starts_with needs
    // C++20; this file must also serve -std=c++17 consumers of the lib).
    if (arg.rfind("--", 0) != 0) {
      positional_args_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      flags_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      flags_[std::string(arg)] = argv[i + 1];
      ++i;
    } else {
      flags_[std::string(arg)] = "";
    }
  }
}

bool CommandLine::HasFlag(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string CommandLine::GetString(const std::string& name,
                                   const std::string& default_value) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? default_value : it->second;
}

int64_t CommandLine::GetInt(const std::string& name,
                            int64_t default_value) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CommandLine::GetDouble(const std::string& name,
                              double default_value) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

}  // namespace loloha

#include "util/binomial.h"

#include <cmath>

#include "util/check.h"

namespace loloha {

namespace {

// Reentrant log-gamma: glibc's lgamma() writes the global signgam, so the
// POSIX _r variant is required for thread safety. All arguments here are
// >= 1, where the gamma function is positive, so the sign output is moot.
double LogGamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__) || defined(__unix__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

// log(x!) = lgamma(x + 1).
double LogFactorial(double x) { return LogGamma(x + 1.0); }

// Sum of n Bernoulli(p) draws; exact and branch-cheap for small n.
uint64_t SampleBySum(uint64_t n, double p, Rng& rng) {
  uint64_t k = 0;
  for (uint64_t i = 0; i < n; ++i) k += rng.Bernoulli(p) ? 1 : 0;
  return k;
}

// CDF inversion: walk the pmf recurrence f(k+1) = f(k) * r * (n-k)/(k+1)
// until the uniform is exhausted. Expected O(np) iterations; requires
// np small enough that q^n does not underflow (np < 10, p <= 1/2 gives
// q^n >= exp(-20 ln 2) comfortably above DBL_MIN).
uint64_t SampleByInversion(uint64_t n, double p, Rng& rng) {
  const double q = 1.0 - p;
  const double r = p / q;
  double f = std::exp(static_cast<double>(n) * std::log(q));  // f(0) = q^n
  double u = rng.UniformDouble();
  uint64_t k = 0;
  while (u > f) {
    u -= f;
    if (k >= n) return n;  // floating-point tail guard (prob ~ 2^-52)
    f *= r * static_cast<double>(n - k) / static_cast<double>(k + 1);
    ++k;
  }
  return k;
}

// Hörmann's BTRS rejection sampler (transformed rejection with squeeze),
// valid for p <= 1/2 and np >= 10. The frequent path accepts straight
// from the box test; the rare path evaluates the exact log-pmf ratio to
// the mode, so the sampled law is the true binomial.
uint64_t SampleByBtrs(uint64_t n, double p, Rng& rng) {
  const double nd = static_cast<double>(n);
  const double q = 1.0 - p;
  const double np = nd * p;
  const double spq = std::sqrt(np * q);
  const double b = 1.15 + 2.53 * spq;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = np + 0.5;
  const double alpha = (2.83 + 5.1 / b) * spq;
  const double vr = 0.92 - 4.2 / b;
  const double lpq = std::log(p / q);
  const double m = std::floor((nd + 1.0) * p);  // mode
  const double h_m = LogFactorial(m) + LogFactorial(nd - m);

  for (;;) {
    const double u = rng.UniformDouble() - 0.5;
    double v = rng.UniformDouble();
    const double us = 0.5 - std::abs(u);
    const double kd = std::floor((2.0 * a / us + b) * u + c);
    if (kd < 0.0 || kd > nd) continue;
    if (us >= 0.07 && v <= vr) return static_cast<uint64_t>(kd);
    // Exact acceptance: log of the transformed v against the pmf ratio
    // f(k)/f(mode).
    v = std::log(v * alpha / (a / (us * us) + b));
    const double h_k = LogFactorial(kd) + LogFactorial(nd - kd);
    if (v <= h_m - h_k + (kd - m) * lpq) return static_cast<uint64_t>(kd);
  }
}

}  // namespace

uint64_t SampleBinomial(uint64_t n, double p, Rng& rng) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (p > 0.5) return n - SampleBinomial(n, 1.0 - p, rng);
  if (n <= 64) return SampleBySum(n, p, rng);
  const double mean = static_cast<double>(n) * p;
  if (mean < 10.0) return SampleByInversion(n, p, rng);
  return SampleByBtrs(n, p, rng);
}

}  // namespace loloha

// Pairwise-independent universal hashing for the Local Hashing protocols.
//
// LOLOHA and the LH oracles (Sec. 2.3.2 / 3.1 of the paper) require a
// universal family H : V -> [0, g) with Pr_H[H(v1) = H(v2)] <= 1/g for any
// v1 != v2. We use the classic multiply-mod-prime construction over the
// Mersenne prime p = 2^61 - 1:
//
//     h_{a,b}(x) = (((a * x + b) mod p) mod g)
//
// with a drawn uniformly from [1, p) and b from [0, p). This family is
// pairwise independent (hence universal). The mod-p reduction uses the
// standard Mersenne-prime shift/add trick, so no 128-bit division occurs.
//
// A `UniversalHash` is a small value type (two 64-bit coefficients + g); it
// is what an LH/LOLOHA client sends to the server as the <H, x> pair of the
// report, and it is hashable/comparable so servers can key state by it.

#ifndef LOLOHA_UTIL_HASH_H_
#define LOLOHA_UTIL_HASH_H_

#include <cstdint>

#include "util/check.h"
#include "util/rng.h"

namespace loloha {

// A single hash function from the multiply-mod-prime universal family,
// mapping uint64 inputs onto [0, g).
class UniversalHash {
 public:
  static constexpr uint64_t kPrime = (uint64_t{1} << 61) - 1;  // 2^61 - 1

  UniversalHash() : a_(1), b_(0), g_(2) {}

  // Constructs an explicit member of the family; `a` in [1, p), `b` in
  // [0, p), `g` >= 2.
  UniversalHash(uint64_t a, uint64_t b, uint32_t g) : a_(a), b_(b), g_(g) {
    LOLOHA_CHECK(g >= 2);
    LOLOHA_CHECK(a >= 1 && a < kPrime);
    LOLOHA_CHECK(b < kPrime);
  }

  // Draws a uniform member of the family with range [0, g).
  static UniversalHash Sample(uint32_t g, Rng& rng) {
    const uint64_t a = 1 + rng.UniformInt(kPrime - 1);
    const uint64_t b = rng.UniformInt(kPrime);
    return UniversalHash(a, b, g);
  }

  // Evaluates h(x) in [0, g).
  uint32_t operator()(uint64_t x) const {
    return static_cast<uint32_t>(ModP(MulModP(a_, ModP(x)) + b_) % g_);
  }

  uint32_t range() const { return g_; }
  uint64_t a() const { return a_; }
  uint64_t b() const { return b_; }

  friend bool operator==(const UniversalHash& lhs, const UniversalHash& rhs) {
    return lhs.a_ == rhs.a_ && lhs.b_ == rhs.b_ && lhs.g_ == rhs.g_;
  }

 private:
  // Reduces x (< 2^64) modulo the Mersenne prime 2^61 - 1.
  static uint64_t ModP(uint64_t x) {
    uint64_t r = (x & kPrime) + (x >> 61);
    if (r >= kPrime) r -= kPrime;
    return r;
  }

  // (x * y) mod p with x, y < p, via 128-bit intermediate.
  static uint64_t MulModP(uint64_t x, uint64_t y) {
    const __uint128_t prod = static_cast<__uint128_t>(x) * y;
    const uint64_t lo = static_cast<uint64_t>(prod & kPrime);
    const uint64_t hi = static_cast<uint64_t>(prod >> 61);
    uint64_t r = lo + hi;  // <= 2p, so up to two conditional subtractions.
    if (r >= kPrime) r -= kPrime;
    if (r >= kPrime) r -= kPrime;
    return r;
  }

  uint64_t a_;
  uint64_t b_;
  uint32_t g_;
};

}  // namespace loloha

#endif  // LOLOHA_UTIL_HASH_H_

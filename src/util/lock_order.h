// Debug-build lock-order deadlock detector.
//
// Deadlocks are ordering bugs: thread 1 acquires A then B, thread 2
// acquires B then A, and whether the process hangs depends on a schedule
// no test controls. This module turns the ordering discipline into a
// checked invariant, the same way the thread-safety annotations
// (util/thread_annotations.h) turn "which lock guards this member" into
// a compile-time check:
//
//   * Every long-lived Mutex carries a LockRank — a small id plus a
//     human-readable name from the repo-wide table below. The table IS
//     the documented locking order (see docs/ANALYSIS.md); unranked
//     mutexes (rank id 0, e.g. test-local scaffolding) are invisible to
//     the detector.
//   * Each thread keeps a thread-local stack of the ranked mutexes it
//     holds, pushed on acquire and popped on release.
//   * A process-wide acquired-before graph accumulates one edge
//     held-rank -> acquired-rank per observed nesting, each stamped with
//     a witness (thread + held-stack snapshot) from its first
//     observation.
//   * Acquiring a mutex whose rank could reach a currently held rank in
//     that graph closes a cycle: a schedule exists in which two threads
//     deadlock. The detector reports the inversion with both witness
//     stacks — the current thread's and the recorded one(s) along the
//     conflicting path — and aborts, turning a once-a-month hang into a
//     deterministic test failure on ANY schedule that merely exhibits
//     both orders, even seconds apart on one thread.
//   * Acquiring two mutexes of the same rank together is reported the
//     same way (sibling instances, e.g. two ingest shard queues, share a
//     rank precisely because the code never nests them).
//
// Cost model: the checks run in Debug and sanitizer builds and compile
// to nothing in plain Release (NDEBUG) builds — the same policy as
// LOLOHA_DCHECK. Define LOLOHA_LOCK_ORDER_CHECKS=0/1 to force either
// way (CMake: -DLOLOHA_LOCK_ORDER=ON/OFF).

#ifndef LOLOHA_UTIL_LOCK_ORDER_H_
#define LOLOHA_UTIL_LOCK_ORDER_H_

#include <cstdint>

// Enabled in Debug builds and under ASan/TSan (gcc spells the sanitizer
// macros __SANITIZE_*, clang exposes __has_feature).
#if !defined(LOLOHA_LOCK_ORDER_CHECKS)
#if !defined(NDEBUG) || defined(__SANITIZE_ADDRESS__) || \
    defined(__SANITIZE_THREAD__)
#define LOLOHA_LOCK_ORDER_CHECKS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define LOLOHA_LOCK_ORDER_CHECKS 1
#endif
#endif
#endif
#if !defined(LOLOHA_LOCK_ORDER_CHECKS)
#define LOLOHA_LOCK_ORDER_CHECKS 0
#endif

namespace loloha {

// Identity of a lock *class* (not instance): every Mutex constructed with
// the same LockRank is one node in the acquired-before graph. `name` must
// be a string literal (stored, never copied).
struct LockRank {
  uint16_t id = 0;  // 0 = unranked: the detector ignores the mutex
  const char* name = "";
};

// The repo-wide rank table. Ids are grouped in tens per subsystem and
// ordered outermost-first as documentation; the detector enforces the
// *observed* acquisition graph, not this numbering, so adding a rank
// never requires renumbering. Keep docs/ANALYSIS.md's table in sync.
namespace lock_rank {

// server/net/ingest_server.h — per-shard batch queue handoff (event loop
// <-> shard worker). Sibling shards share the rank: the code never holds
// two shard queues at once, and the detector enforces exactly that.
inline constexpr LockRank kIngestShardQueue{10, "IngestServer.Shard.mu"};

// server/collector.h — both collector families' internal lock. Held
// across a whole IngestBatch, including the sharded accumulate pass, so
// ThreadPool.mu nests inside it.
inline constexpr LockRank kCollector{20, "Collector.mu"};

// server/monitor.h — TrendMonitor baseline state. Leaf: observed after
// estimation, never while a collector or queue lock is held.
inline constexpr LockRank kTrendMonitor{30, "TrendMonitor.mu"};

// sim/monte_carlo.cc — Monte-Carlo progress counter + callback
// serialization. Leaf, taken from inside pool tasks.
inline constexpr LockRank kMonteCarloProgress{40, "MonteCarlo.progress.mu"};

// util/thread_pool.h — the shared pool's task/job lock. Innermost of the
// production graph: Submit/ParallelFor acquire it from under
// Collector.mu; pool workers take it with nothing held.
inline constexpr LockRank kThreadPool{50, "ThreadPool.mu"};

// Ranks >= kTestBase are reserved for tests (self-tests seed deliberate
// inversions with them; production code must never use them).
inline constexpr uint16_t kTestBase = 56;

}  // namespace lock_rank

namespace lock_order {

// Ranks are dense ids below this bound (adjacency is a bitmask per node).
inline constexpr uint16_t kMaxRanks = 64;
// Deeper nesting than this is itself a design bug worth aborting on.
inline constexpr int kMaxHeldLocks = 16;

#if LOLOHA_LOCK_ORDER_CHECKS

// Called by Mutex/MutexLock immediately before the underlying lock() —
// before, not after, so an actual in-flight deadlock still produces the
// report instead of hanging. Records held->rank edges, checks for
// cycles, and aborts with both witness stacks on an inversion.
void OnAcquire(const LockRank& rank);

// Called after the underlying unlock(). Handles non-LIFO release.
void OnRelease(const LockRank& rank);

// Test hooks. ResetForTest clears the process-wide graph and the calling
// thread's held stack (other threads' stacks are untouched — only use it
// from single-threaded test setup). HeldCountForTest reports the calling
// thread's ranked-lock depth.
void ResetForTest();
int HeldCountForTest();

#else  // !LOLOHA_LOCK_ORDER_CHECKS

inline void OnAcquire(const LockRank&) {}
inline void OnRelease(const LockRank&) {}
inline void ResetForTest() {}
inline int HeldCountForTest() { return 0; }

#endif  // LOLOHA_LOCK_ORDER_CHECKS

}  // namespace lock_order
}  // namespace loloha

#endif  // LOLOHA_UTIL_LOCK_ORDER_H_

#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/mathutil.h"

namespace loloha {

std::vector<uint64_t> CountValues(const std::vector<uint32_t>& values,
                                  uint32_t k) {
  std::vector<uint64_t> counts(k, 0);
  for (const uint32_t v : values) {
    LOLOHA_DCHECK(v < k);
    ++counts[v];
  }
  return counts;
}

std::vector<double> NormalizeCounts(const std::vector<uint64_t>& counts) {
  uint64_t total = 0;
  for (const uint64_t c : counts) total += c;
  std::vector<double> freqs(counts.size(), 0.0);
  if (total == 0) return freqs;
  const double inv = 1.0 / static_cast<double>(total);
  for (size_t i = 0; i < counts.size(); ++i) {
    freqs[i] = static_cast<double>(counts[i]) * inv;
  }
  return freqs;
}

std::vector<double> TrueFrequencies(const std::vector<uint32_t>& values,
                                    uint32_t k) {
  return NormalizeCounts(CountValues(values, k));
}

double MeanSquaredError(const std::vector<double>& a,
                        const std::vector<double>& b) {
  LOLOHA_CHECK(a.size() == b.size());
  LOLOHA_CHECK(!a.empty());
  KahanSum sum;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum.Add(d * d);
  }
  return sum.value() / static_cast<double>(a.size());
}

double TotalVariation(const std::vector<double>& a,
                      const std::vector<double>& b) {
  LOLOHA_CHECK(a.size() == b.size());
  KahanSum sum;
  for (size_t i = 0; i < a.size(); ++i) sum.Add(std::fabs(a[i] - b[i]));
  return 0.5 * sum.value();
}

double MaxAbsError(const std::vector<double>& a,
                   const std::vector<double>& b) {
  LOLOHA_CHECK(a.size() == b.size());
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  }
  return worst;
}

double KlDivergence(const std::vector<double>& a, const std::vector<double>& b,
                    double floor) {
  LOLOHA_CHECK(a.size() == b.size());
  KahanSum sum;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] <= 0.0) continue;
    const double q = std::max(b[i], floor);
    sum.Add(a[i] * std::log(a[i] / q));
  }
  return sum.value();
}

std::vector<double> ProjectToSimplex(const std::vector<double>& freqs) {
  std::vector<double> clipped(freqs.size());
  double total = 0.0;
  for (size_t i = 0; i < freqs.size(); ++i) {
    clipped[i] = std::clamp(freqs[i], 0.0, 1.0);
    total += clipped[i];
  }
  if (total > 0.0) {
    for (double& f : clipped) f /= total;
  }
  return clipped;
}

}  // namespace loloha

// Thread-safe, toolchain-independent Binomial(n, p) sampling.
//
// std::binomial_distribution is unusable in the sharded simulation loops:
// libstdc++'s implementation calls glibc's lgamma(), which writes the
// global `signgam` — a data race under concurrent sampling (flagged by
// TSan in the LongitudinalUePopulation IRR phase) — and the algorithm is
// implementation-defined, so even the *number* of Rng draws per sample
// differs between standard libraries. This sampler draws only from the
// repo's own Rng and computes log-factorials through lgamma_r
// (reentrant): results are bit-reproducible for a fixed Rng stream on a
// given toolchain, and the algorithm (hence draw sequence) is ours on
// every platform. Exact cross-libm bit-reproducibility is NOT guaranteed
// for the n > 64 regimes — inversion and BTRS compare against exp/log/
// lgamma values, and a draw landing within an ulp of an acceptance
// boundary may resolve differently on another libm.
//
// Three exact regimes (all sample the true binomial law):
//   n <= 64            — sum of n Bernoulli draws
//   mean < 10          — CDF inversion (O(mean) expected steps)
//   mean >= 10         — Hörmann's BTRS transformed-rejection (1993),
//                        ~86% of draws accepted by the box test without
//                        evaluating any log-factorial
// p > 1/2 is reduced by symmetry: n - Binomial(n, 1 - p).

#ifndef LOLOHA_UTIL_BINOMIAL_H_
#define LOLOHA_UTIL_BINOMIAL_H_

#include <cstdint>

#include "util/rng.h"

namespace loloha {

// One draw from Binomial(n, p); p outside [0, 1] is clamped.
uint64_t SampleBinomial(uint64_t n, double p, Rng& rng);

}  // namespace loloha

#endif  // LOLOHA_UTIL_BINOMIAL_H_

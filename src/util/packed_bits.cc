#include "util/packed_bits.h"

#include <algorithm>

namespace loloha {

PackedBits PackedBits::SampleOneHotNoisy(uint32_t size, uint32_t hot,
                                         double p_hot, double p_cold,
                                         Rng& rng) {
  LOLOHA_CHECK(hot < size);
  PackedBits bits(size);
  for (size_t w = 0; w < bits.words_.size(); ++w) {
    uint64_t word = 0;
    const uint32_t base = static_cast<uint32_t>(w * 64);
    const uint32_t limit = std::min<uint32_t>(64, size - base);
    for (uint32_t b = 0; b < limit; ++b) {
      if (rng.Bernoulli(base + b == hot ? p_hot : p_cold)) {
        word |= uint64_t{1} << b;
      }
    }
    bits.words_[w] = word;
  }
  return bits;
}

}  // namespace loloha

// Small numeric helpers shared across the library.

#ifndef LOLOHA_UTIL_MATHUTIL_H_
#define LOLOHA_UTIL_MATHUTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>

#include "util/check.h"

namespace loloha {

// Rounds to the nearest integer, halves away from zero (the ⌊.⌉ of Eq. 6).
inline int64_t RoundToNearest(double x) {
  return static_cast<int64_t>(std::llround(x));
}

// Kahan (compensated) summation; keeps MSE accumulations accurate when
// summing millions of small squared errors.
class KahanSum {
 public:
  void Add(double x) {
    const double y = x - compensation_;
    const double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }

  double value() const { return sum_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

// Finds x in [lo, hi] with f(x) == target for a continuous monotonically
// increasing f, by bisection. Used to cross-check the closed-form IRR
// parameter derivations. `iters` halvings give ~2^-iters relative precision.
inline double BisectIncreasing(const std::function<double(double)>& f,
                               double target, double lo, double hi,
                               int iters = 200) {
  LOLOHA_CHECK(lo < hi);
  for (int i = 0; i < iters; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (f(mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

// Relative difference |a - b| / max(|a|, |b|, eps); handy for test
// tolerances on quantities of very different magnitudes.
inline double RelDiff(double a, double b) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1e-300});
  return std::fabs(a - b) / scale;
}

}  // namespace loloha

#endif  // LOLOHA_UTIL_MATHUTIL_H_

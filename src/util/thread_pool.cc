#include "util/thread_pool.h"

#include "util/check.h"

namespace loloha {

ThreadPool::ThreadPool(uint32_t num_threads)
    : num_threads_(num_threads == 0 ? 1 : num_threads) {
  workers_.reserve(num_threads_ - 1);
  for (uint32_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

uint32_t ThreadPool::HardwareThreads() {
  const unsigned reported = std::thread::hardware_concurrency();
  return reported == 0 ? 1 : static_cast<uint32_t>(reported);
}

void ThreadPool::RunShards(Job& job) {
  for (;;) {
    const uint32_t shard = job.next.fetch_add(1, std::memory_order_relaxed);
    if (shard >= job.num_shards) return;
    job.fn(shard);
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.num_shards) {
      // Lock pairs the notification with the caller's predicate check.
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_epoch = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (current_job_ != nullptr && epoch_ != seen_epoch);
      });
      if (stop_) return;
      seen_epoch = epoch_;
      job = current_job_;
    }
    RunShards(*job);
  }
}

void ThreadPool::ParallelFor(uint32_t num_shards,
                             const std::function<void(uint32_t)>& fn) {
  if (num_shards == 0) return;
  if (workers_.empty() || num_shards == 1) {
    for (uint32_t shard = 0; shard < num_shards; ++shard) fn(shard);
    return;
  }
  auto job = std::make_shared<Job>(fn, num_shards);
  {
    std::lock_guard<std::mutex> lock(mu_);
    LOLOHA_CHECK_MSG(current_job_ == nullptr,
                     "ThreadPool::ParallelFor is not reentrant");
    current_job_ = job;
    ++epoch_;
  }
  work_cv_.notify_all();
  RunShards(*job);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == num_shards;
    });
    current_job_ = nullptr;
  }
}

}  // namespace loloha

#include "util/thread_pool.h"

#include "util/check.h"

namespace loloha {

namespace {

// Pool whose work the calling thread is currently executing (worker loop,
// Wait-drained task, or ParallelFor shard); null otherwise. Lets nested
// ParallelFor calls detect re-entry and run inline instead of deadlocking.
thread_local const ThreadPool* tls_active_pool = nullptr;

// RAII: marks `pool` active on this thread for the scope's lifetime.
class ActivePoolScope {
 public:
  explicit ActivePoolScope(const ThreadPool* pool)
      : previous_(tls_active_pool) {
    tls_active_pool = pool;
  }
  ~ActivePoolScope() { tls_active_pool = previous_; }

 private:
  const ThreadPool* previous_;
};

}  // namespace

ThreadPool::ThreadPool(uint32_t num_threads)
    : num_threads_(num_threads == 0 ? 1 : num_threads) {
  workers_.reserve(num_threads_ - 1);
  for (uint32_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    LOLOHA_CHECK_MSG(tasks_.empty(),
                     "ThreadPool destroyed with queued tasks; Wait first");
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

uint32_t ThreadPool::HardwareThreads() {
  const unsigned reported = std::thread::hardware_concurrency();
  return reported == 0 ? 1 : static_cast<uint32_t>(reported);
}

bool ThreadPool::OnPoolThread() const { return tls_active_pool == this; }

void ThreadPool::RunShards(Job& job) {
  for (;;) {
    const uint32_t shard = job.next.fetch_add(1, std::memory_order_relaxed);
    if (shard >= job.num_shards) return;
    job.fn(shard);
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.num_shards) {
      // Lock pairs the notification with the caller's predicate check.
      MutexLock lock(mu_);
      done_cv_.NotifyAll();
    }
  }
}

void ThreadPool::RunTask(Task& task) {
  task.fn();
  bool finished = false;
  {
    MutexLock lock(mu_);
    LOLOHA_DCHECK(task.wg->pending_ > 0);
    finished = --task.wg->pending_ == 0;
  }
  if (finished) done_cv_.NotifyAll();
}

void ThreadPool::WorkerLoop() {
  ActivePoolScope scope(this);
  uint64_t seen_epoch = 0;
  for (;;) {
    Task task;
    std::shared_ptr<Job> job;
    {
      MutexLock lock(mu_);
      work_cv_.Wait(lock, [&] {
        mu_.AssertHeld();  // cv predicates run with the lock held
        return stop_ || !tasks_.empty() ||
               (current_job_ != nullptr && epoch_ != seen_epoch);
      });
      if (stop_) return;
      if (current_job_ != nullptr && epoch_ != seen_epoch) {
        // Shard jobs first: their driver is blocked until the last shard
        // finishes, while Submit tasks have a Wait-ing thread that drains.
        seen_epoch = epoch_;
        job = current_job_;
      } else {
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
    }
    if (job != nullptr) {
      RunShards(*job);
    } else {
      RunTask(task);
    }
  }
}

void ThreadPool::Submit(WaitGroup& wg, std::function<void()> fn) {
  LOLOHA_DCHECK(fn != nullptr);
  {
    MutexLock lock(mu_);
    ++wg.pending_;
    tasks_.push_back(Task{std::move(fn), &wg});
  }
  work_cv_.NotifyOne();
  // A thread blocked in Wait also consumes tasks; wake it too.
  done_cv_.NotifyAll();
}

void ThreadPool::Wait(WaitGroup& wg) {
  LOLOHA_CHECK_MSG(!OnPoolThread(),
                   "ThreadPool::Wait must not be called from a pool task");
  for (;;) {
    Task task;
    {
      MutexLock lock(mu_);
      done_cv_.Wait(lock, [&] {
        mu_.AssertHeld();  // cv predicates run with the lock held
        return wg.pending_ == 0 || !tasks_.empty();
      });
      if (wg.pending_ == 0) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    ActivePoolScope scope(this);
    RunTask(task);
  }
}

void ThreadPool::ParallelFor(uint32_t num_shards,
                             const std::function<void(uint32_t)>& fn) {
  if (num_shards == 0) return;
  if (OnPoolThread()) {
    // Nested invocation from inside a pool task or an enclosing shard: run
    // inline, in shard order (the single-thread schedule).
    for (uint32_t shard = 0; shard < num_shards; ++shard) fn(shard);
    return;
  }
  if (workers_.empty() || num_shards == 1) {
    ActivePoolScope scope(this);
    for (uint32_t shard = 0; shard < num_shards; ++shard) fn(shard);
    return;
  }
  auto job = std::make_shared<Job>(fn, num_shards);
  {
    MutexLock lock(mu_);
    LOLOHA_CHECK_MSG(current_job_ == nullptr,
                     "only one thread may drive ParallelFor at a time");
    current_job_ = job;
    ++epoch_;
  }
  work_cv_.NotifyAll();
  {
    ActivePoolScope scope(this);
    RunShards(*job);
  }
  {
    MutexLock lock(mu_);
    done_cv_.Wait(lock, [&] {
      // Reads only the job's atomic; no guarded member involved.
      return job->done.load(std::memory_order_acquire) == num_shards;
    });
    current_job_ = nullptr;
  }
}

}  // namespace loloha

// Clang Thread Safety Analysis annotations and capability-annotated
// synchronization primitives.
//
// The repo's concurrency contract — Run(data, seed) is bit-identical at
// any thread count, shared state is either immutable, data-partitioned
// per shard, or mutex-guarded — is enforced at compile time under clang:
// the build adds -Wthread-safety (see CMakeLists.txt) and -Werror is
// already global, so an unguarded access to a LOLOHA_GUARDED_BY member
// or a call to a LOLOHA_REQUIRES function without the lock is a build
// break, on every line, not just on the schedules TSan happens to see.
// Under gcc every macro expands to nothing and Mutex/MutexLock/CondVar
// are zero-cost veneers over the <mutex> types.
//
// Usage mirrors the Abseil/Clang conventions:
//
//   class Account {
//     Mutex mu_;
//     int64_t balance_ LOLOHA_GUARDED_BY(mu_);
//     void DepositLocked(int64_t v) LOLOHA_REQUIRES(mu_);
//   };
//
// Condition variables: the analysis cannot see that a wait predicate
// runs with the mutex held (the lambda is a separate function to it), so
// predicates re-assert the capability:
//
//   cv_.Wait(lock, [&] { mu_.AssertHeld(); return ready_; });

#ifndef LOLOHA_UTIL_THREAD_ANNOTATIONS_H_
#define LOLOHA_UTIL_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>
#include <utility>

#include "util/lock_order.h"

// gcc warns (and -Werror fails) on the capability attributes it does not
// implement, so the macros are clang-only; the analysis itself only runs
// under clang anyway.
#if defined(__clang__)
#define LOLOHA_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define LOLOHA_THREAD_ANNOTATION_(x)
#endif

// A type that models a capability (a mutex class).
#define LOLOHA_CAPABILITY(x) LOLOHA_THREAD_ANNOTATION_(capability(x))

// An RAII type that acquires a capability in its constructor and
// releases it in its destructor.
#define LOLOHA_SCOPED_CAPABILITY LOLOHA_THREAD_ANNOTATION_(scoped_lockable)

// Data member readable/writable only with the capability held.
#define LOLOHA_GUARDED_BY(x) LOLOHA_THREAD_ANNOTATION_(guarded_by(x))

// Pointer member whose *pointee* is protected by the capability.
#define LOLOHA_PT_GUARDED_BY(x) LOLOHA_THREAD_ANNOTATION_(pt_guarded_by(x))

// Function that may only be called with the capability already held.
#define LOLOHA_REQUIRES(...) \
  LOLOHA_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

// Function that acquires / releases the capability itself.
#define LOLOHA_ACQUIRE(...) \
  LOLOHA_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define LOLOHA_RELEASE(...) \
  LOLOHA_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

// Function that must be called *without* the capability held (it takes
// it internally); guards against self-deadlock.
#define LOLOHA_EXCLUDES(...) \
  LOLOHA_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Tells the analysis (without a runtime check) that the capability is
// held on entry — for code paths it cannot follow, e.g. condition
// variable wait predicates.
#define LOLOHA_ASSERT_CAPABILITY(x) \
  LOLOHA_THREAD_ANNOTATION_(assert_capability(x))

// Function returning a reference to the capability guarding it.
#define LOLOHA_RETURN_CAPABILITY(x) LOLOHA_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch: the function's body is not analyzed. Every use must
// carry a comment explaining which discipline (barrier, data partition)
// replaces the lock.
#define LOLOHA_NO_THREAD_SAFETY_ANALYSIS \
  LOLOHA_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace loloha {

// std::mutex with the capability annotation the analysis needs. Lock
// discipline in this repo: prefer MutexLock scopes; bare Lock/Unlock
// only where a scope cannot express the flow.
//
// Long-lived mutexes take a LockRank from the table in util/lock_order.h
// so the debug-build lock-order detector can prove acquisition-order
// inversions (potential deadlocks) on any schedule; the rankless default
// constructor is for short-lived/test scaffolding the detector ignores.
// In Release builds the rank is not even stored.
class LOLOHA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
#if LOLOHA_LOCK_ORDER_CHECKS
  explicit Mutex(const LockRank& rank) : rank_(rank) {}
#else
  explicit Mutex(const LockRank&) {}
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() LOLOHA_ACQUIRE() {
    lock_order::OnAcquire(rank());
    mu_.lock();
  }
  void Unlock() LOLOHA_RELEASE() {
    mu_.unlock();
    lock_order::OnRelease(rank());
  }

  // Statically marks the capability held, with no runtime effect. Only
  // for contexts where the holder is real but invisible to the analysis
  // (condition-variable wait predicates).
  void AssertHeld() const LOLOHA_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  friend class MutexLock;

#if LOLOHA_LOCK_ORDER_CHECKS
  const LockRank& rank() const { return rank_; }
  LockRank rank_;
#else
  const LockRank& rank() const {
    static constexpr LockRank kNone{};
    return kNone;
  }
#endif

  std::mutex mu_;
};

// RAII lock scope over Mutex (std::unique_lock underneath, so CondVar
// can wait on it). Acquisition is deferred to the constructor body so
// the lock-order check runs *before* blocking on the mutex — an actual
// inversion then reports instead of deadlocking.
class LOLOHA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LOLOHA_ACQUIRE(mu)
      : lock_(mu.mu_, std::defer_lock), mu_(mu) {
    lock_order::OnAcquire(mu.rank());
    lock_.lock();
  }
  ~MutexLock() LOLOHA_RELEASE() {
    lock_.unlock();
    lock_order::OnRelease(mu_.rank());
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
  Mutex& mu_;
};

// Condition variable paired with Mutex/MutexLock. To the analysis the
// capability stays held across Wait (the release/reacquire inside is
// atomic with respect to the protected state); predicates must call
// Mutex::AssertHeld() before touching guarded members.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  template <typename Predicate>
  void Wait(MutexLock& lock, Predicate pred) {
    cv_.wait(lock.lock_, std::move(pred));
  }

 private:
  std::condition_variable cv_;
};

}  // namespace loloha

#endif  // LOLOHA_UTIL_THREAD_ANNOTATIONS_H_

// dBitFlipPM (Ding, Kulkarni & Yekhanin, NeurIPS'17; Sec. 2.4.4).
//
// The value domain [0, k) is generalized into b equal-width buckets. Each
// user draws d distinct bucket indices once and forever; for every distinct
// *bucket* value it encounters, it memoizes one d-bit randomized response
// (bit l ~ Bern(p) if bucket(v) == j_l else Bern(q), with the SUE-style
// p = e^{ε∞/2}/(e^{ε∞/2}+1)). Reports replay the memoized bits — there is
// no second randomization round, which is what makes bucket changes
// detectable (Table 2).
//
// The server estimates the b-bin bucket histogram: for bucket j, the
// support count over the n_j users that sampled j is inverted with Eq. (1)
// using n_j (the exact sample count, a refinement of the paper's expected
// n*d/b).

#ifndef LOLOHA_LONGITUDINAL_DBITFLIP_H_
#define LOLOHA_LONGITUDINAL_DBITFLIP_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "oracle/params.h"
#include "util/check.h"
#include "util/rng.h"

namespace loloha {

class ThreadPool;

// Equal-width bucketization of [0, k) into [0, b): bucket(v) = v * b / k.
class Bucketizer {
 public:
  Bucketizer(uint32_t k, uint32_t b);

  uint32_t Bucket(uint32_t value) const {
    LOLOHA_DCHECK(value < k_);
    return static_cast<uint32_t>((static_cast<uint64_t>(value) * b_) / k_);
  }

  uint32_t k() const { return k_; }
  uint32_t b() const { return b_; }

 private:
  uint32_t k_;
  uint32_t b_;
};

// One dBitFlipPM report: the (fixed) sampled bucket indices and the
// memoized bit for each of them.
struct DBitReport {
  const std::vector<uint32_t>* sampled = nullptr;  // d indices, owned by client
  std::vector<uint8_t> bits;                       // d bits
};

class DBitFlipClient {
 public:
  // Draws the d sampled bucket indices (without replacement) at
  // construction; they stay fixed for all collections.
  DBitFlipClient(const Bucketizer& bucketizer, uint32_t d, double eps_perm,
                 Rng& rng);

  // Reports the memoized randomized bits for this step's true value.
  DBitReport Report(uint32_t value, Rng& rng);

  const std::vector<uint32_t>& sampled() const { return sampled_; }

  // Number of distinct *privacy states* exercised so far: each distinct
  // sampled bucket counts individually, all never-sampled buckets together
  // count once (their response distributions are identical). The user's
  // longitudinal loss under Definition 3.2 is ε∞ times this, which is
  // bounded by min(d + 1, b) (Table 1).
  uint32_t distinct_states() const;

  // Distinct bucket values encountered (for the detection analysis).
  uint32_t distinct_buckets() const {
    return static_cast<uint32_t>(memo_.size());
  }

  // The memoized bits for a bucket, or nullptr if never encountered.
  const std::vector<uint8_t>* MemoFor(uint32_t bucket) const;

 private:
  const Bucketizer& bucketizer_;
  uint32_t d_;
  PerturbParams params_;
  std::vector<uint32_t> sampled_;          // the d fixed indices
  std::vector<int32_t> sampled_position_;  // bucket -> index in sampled_, or -1
  std::unordered_map<uint32_t, std::vector<uint8_t>> memo_;  // bucket -> bits
  uint32_t sampled_states_seen_ = 0;
  bool unsampled_state_seen_ = false;
};

// Simulation-grade fleet of n dBitFlipPM users. Mechanism-identical to
// DBitFlipClient/DBitFlipServer, but memo vectors are packed and the
// per-bucket support sums are maintained incrementally (reports are
// memoized verbatim, so a user's contribution only changes when its bucket
// does).
class DBitFlipPopulation {
 public:
  DBitFlipPopulation(const Bucketizer& bucketizer, uint32_t d,
                     double eps_perm, uint32_t n, Rng& rng);

  // Advances one step; returns the estimated b-bin bucket histogram.
  std::vector<double> Step(const std::vector<uint32_t>& values, Rng& rng);

  // Sharded step: users are split into `num_shards` fixed slices, each
  // with its own Rng stream derived from `step_seed`; per-shard support
  // deltas are merged serially. Bit-identical for any pool size.
  std::vector<double> Step(const std::vector<uint32_t>& values,
                           uint64_t step_seed, ThreadPool& pool,
                           uint32_t num_shards);

  // Distinct privacy states exercised by user u (<= min(d+1, b)).
  uint32_t DistinctStates(uint32_t user) const;

  uint32_t b() const { return bucketizer_.b(); }
  uint32_t d() const { return d_; }

 private:
  struct UserState {
    std::vector<uint32_t> sampled;      // the d fixed bucket indices
    std::vector<int32_t> sampled_pos;   // bucket -> position in sampled, -1
    std::vector<int32_t> slots;         // bucket -> arena slot, -1
    std::vector<uint64_t> arena;        // packed d-bit memo per slot
    int64_t current_bucket = -1;
    uint32_t sampled_states = 0;
    bool unsampled_seen = false;
  };

  uint32_t EnsureMemo(UserState& user, uint32_t bucket, Rng& rng);
  // Adds the slot's memoized bits (times `sign`) into `support` (length b).
  void ApplySlot(const UserState& user, uint32_t slot, int64_t sign,
                 int64_t* support) const;
  // Runs users [begin, end) of one step, accumulating into `support`.
  void StepUserRange(const std::vector<uint32_t>& values, uint64_t begin,
                     uint64_t end, Rng& rng, int64_t* support);
  std::vector<double> EstimateCurrent() const;

  Bucketizer bucketizer_;
  uint32_t d_;
  uint32_t words_per_memo_;
  PerturbParams params_;
  std::vector<UserState> users_;
  std::vector<uint64_t> samplers_per_bucket_;  // n_j
  std::vector<int64_t> support_;               // maintained incrementally
};

class DBitFlipServer {
 public:
  DBitFlipServer(const Bucketizer& bucketizer, uint32_t d, double eps_perm);

  // Registers a user's fixed sampled set (once, before the first step).
  void RegisterUser(const std::vector<uint32_t>& sampled);

  void BeginStep();
  void Accumulate(const DBitReport& report);

  // Estimated b-bin bucket frequency histogram for the current step.
  std::vector<double> EstimateStep() const;

  uint32_t b() const { return bucketizer_.b(); }

 private:
  Bucketizer bucketizer_;
  uint32_t d_;
  PerturbParams params_;
  std::vector<uint64_t> samplers_per_bucket_;  // n_j
  std::vector<uint64_t> support_;
};

}  // namespace loloha

#endif  // LOLOHA_LONGITUDINAL_DBITFLIP_H_

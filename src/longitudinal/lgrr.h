// L-GRR (Sec. 2.4.3): GRR chained with GRR. The PRR round memoizes a
// sanitized value x' per distinct true value; the IRR round re-randomizes
// x' with a second GRR on every report. Reports are single values in
// [0, k), so both client and server are O(1) per report (plus O(k) per
// estimation step), which is why L-GRR is the protocol of choice for small
// domains.

#ifndef LOLOHA_LONGITUDINAL_LGRR_H_
#define LOLOHA_LONGITUDINAL_LGRR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "longitudinal/chain.h"
#include "util/rng.h"

namespace loloha {

class LongitudinalGrrClient {
 public:
  // `chain` from LGrrChain(eps_perm, eps_first, k).
  LongitudinalGrrClient(uint32_t k, const ChainedParams& chain);

  // Sanitizes one step's true value.
  uint32_t Report(uint32_t value, Rng& rng);

  // Distinct values memoized so far (longitudinal loss = ε∞ * this).
  uint32_t distinct_memos() const {
    return static_cast<uint32_t>(memo_.size());
  }

 private:
  uint32_t k_;
  ChainedParams chain_;
  std::unordered_map<uint32_t, uint32_t> memo_;
};

class LongitudinalGrrServer {
 public:
  LongitudinalGrrServer(uint32_t k, const ChainedParams& chain);

  void BeginStep();
  void Accumulate(uint32_t report);

  // Eq. (3) estimates for the current step.
  std::vector<double> EstimateStep() const;

 private:
  uint32_t k_;
  ChainedParams chain_;
  std::vector<uint64_t> counts_;
  uint64_t num_reports_ = 0;
};

}  // namespace loloha

#endif  // LOLOHA_LONGITUDINAL_LGRR_H_

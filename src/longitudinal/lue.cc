#include "longitudinal/lue.h"

#include <algorithm>

#include "oracle/estimator.h"
#include "oracle/unary.h"
#include "util/binomial.h"
#include "util/check.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace loloha {

ChainedParams LueChain(LueVariant variant, double eps_perm,
                       double eps_first) {
  switch (variant) {
    case LueVariant::kLSue:
      return LSueChain(eps_perm, eps_first);
    case LueVariant::kLOsue:
      return LOsueChain(eps_perm, eps_first);
    case LueVariant::kLSoue:
      return LSoueChain(eps_perm, eps_first);
    case LueVariant::kLOue:
      return LOueChain(eps_perm, eps_first);
  }
  LOLOHA_CHECK_MSG(false, "unknown LueVariant");
  return {};
}

const char* LueVariantName(LueVariant variant) {
  switch (variant) {
    case LueVariant::kLSue:
      return "RAPPOR";
    case LueVariant::kLOsue:
      return "L-OSUE";
    case LueVariant::kLSoue:
      return "L-SOUE";
    case LueVariant::kLOue:
      return "L-OUE";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Real client / server.
// ---------------------------------------------------------------------------

LongitudinalUeClient::LongitudinalUeClient(uint32_t k,
                                           const ChainedParams& chain)
    : k_(k), chain_(chain) {
  LOLOHA_CHECK(k >= 2);
  LOLOHA_CHECK(ValidParams(chain.first));
  LOLOHA_CHECK(ValidParams(chain.second));
}

std::vector<uint8_t> LongitudinalUeClient::Report(uint32_t value, Rng& rng) {
  LOLOHA_CHECK(value < k_);
  auto it = memo_.find(value);
  if (it == memo_.end()) {
    // PRR step: executed once per distinct value, then reused (Sec. 2.4.1).
    PackedBits memo = PackedBits::SampleOneHotNoisy(
        k_, value, chain_.first.p, chain_.first.q, rng);
    it = memo_.emplace(value, std::move(memo)).first;
  }
  // IRR step: fresh randomization of the memoized vector on every report.
  const PackedBits& memo = it->second;
  std::vector<uint8_t> report(k_);
  for (uint32_t i = 0; i < k_; ++i) {
    const double prob = memo.Get(i) ? chain_.second.p : chain_.second.q;
    report[i] = rng.Bernoulli(prob) ? 1 : 0;
  }
  return report;
}

LongitudinalUeServer::LongitudinalUeServer(uint32_t k,
                                           const ChainedParams& chain)
    : k_(k), chain_(chain), counts_(k, 0) {}

void LongitudinalUeServer::BeginStep() {
  counts_.assign(k_, 0);
  num_reports_ = 0;
}

void LongitudinalUeServer::Accumulate(const std::vector<uint8_t>& report) {
  LOLOHA_CHECK(report.size() == k_);
  for (uint32_t i = 0; i < k_; ++i) counts_[i] += report[i];
  ++num_reports_;
}

void LongitudinalUeServer::AccumulateBatch(const uint8_t* reports,
                                           size_t num_reports) {
  std::vector<uint16_t> scratch(k_);
  SumColumnsU8(reports, num_reports, k_, counts_.data(), scratch.data());
  num_reports_ += num_reports;
}

std::vector<double> LongitudinalUeServer::EstimateStep() const {
  LOLOHA_CHECK_MSG(num_reports_ > 0, "no reports accumulated");
  std::vector<double> counts(counts_.begin(), counts_.end());
  return EstimateFrequenciesChained(counts,
                                    static_cast<double>(num_reports_),
                                    chain_.first, chain_.second);
}

// ---------------------------------------------------------------------------
// Population simulator.
// ---------------------------------------------------------------------------

LongitudinalUePopulation::LongitudinalUePopulation(uint32_t k, uint32_t n,
                                                   const ChainedParams& chain)
    : k_(k),
      n_(n),
      words_per_memo_((k + 63) / 64),
      chain_(chain),
      users_(n),
      memo_column_sums_(k, 0) {
  LOLOHA_CHECK(k >= 2);
  LOLOHA_CHECK(n >= 1);
  LOLOHA_CHECK(ValidParams(chain.first));
  LOLOHA_CHECK(ValidParams(chain.second));
}

void LongitudinalUePopulation::ApplySlotToColumns(const UserState& user,
                                                  uint32_t slot, int64_t sign,
                                                  int64_t* columns) const {
  const uint64_t* words = user.arena.data() +
                          static_cast<size_t>(slot) * words_per_memo_;
  for (uint32_t w = 0; w < words_per_memo_; ++w) {
    uint64_t bits = words[w];
    while (bits != 0) {
      const int b = __builtin_ctzll(bits);
      columns[w * 64 + b] += sign;
      bits &= bits - 1;
    }
  }
}

uint32_t LongitudinalUePopulation::EnsureMemo(UserState& user, uint32_t value,
                                              Rng& rng) {
  if (user.slots.empty()) user.slots.assign(k_, -1);
  if (user.slots[value] >= 0) return static_cast<uint32_t>(user.slots[value]);

  const uint32_t slot = user.distinct;
  user.slots[value] = static_cast<int32_t>(slot);
  ++user.distinct;
  user.arena.resize(user.arena.size() + words_per_memo_, 0);
  uint64_t* words = user.arena.data() +
                    static_cast<size_t>(slot) * words_per_memo_;
  // PRR draw: bit `value` ~ Bern(p1), all others iid Bern(q1).
  for (uint32_t w = 0; w < words_per_memo_; ++w) {
    const uint32_t base = w * 64;
    const uint32_t limit = std::min<uint32_t>(64, k_ - base);
    uint64_t word = 0;
    for (uint32_t b = 0; b < limit; ++b) {
      const double prob =
          (base + b == value) ? chain_.first.p : chain_.first.q;
      if (rng.Bernoulli(prob)) word |= uint64_t{1} << b;
    }
    words[w] = word;
  }
  return slot;
}

void LongitudinalUePopulation::UpdateMemoRange(
    const std::vector<uint32_t>& values, uint64_t begin, uint64_t end,
    Rng& rng, int64_t* columns) {
  // PRR bookkeeping: move each user whose value changed onto the memo
  // vector of the new value, recording the column-sum deltas.
  for (uint64_t u = begin; u < end; ++u) {
    UserState& user = users_[u];
    const uint32_t value = values[u];
    LOLOHA_DCHECK(value < k_);
    if (user.current_value == static_cast<int64_t>(value)) continue;
    if (user.current_value >= 0) {
      const int32_t old_slot =
          user.slots[static_cast<uint32_t>(user.current_value)];
      LOLOHA_DCHECK(old_slot >= 0);
      ApplySlotToColumns(user, static_cast<uint32_t>(old_slot), -1, columns);
    }
    const uint32_t slot = EnsureMemo(user, value, rng);
    ApplySlotToColumns(user, slot, +1, columns);
    user.current_value = value;
  }
}

void LongitudinalUePopulation::SampleIrrRange(uint64_t begin, uint64_t end,
                                              Rng& rng,
                                              double* counts) const {
  // IRR sampling: position-wise binomial mixture (see header). Uses the
  // repo's own sampler (util/binomial.h) — std::binomial_distribution
  // races on glibc's signgam under the sharded phase-2 loop and is not
  // reproducible across standard libraries.
  for (uint64_t i = begin; i < end; ++i) {
    LOLOHA_DCHECK(memo_column_sums_[i] >= 0);
    const uint64_t ones = static_cast<uint64_t>(memo_column_sums_[i]);
    LOLOHA_DCHECK(ones <= n_);
    uint64_t c = SampleBinomial(ones, chain_.second.p, rng);
    c += SampleBinomial(n_ - ones, chain_.second.q, rng);
    counts[i] = static_cast<double>(c);
  }
}

std::vector<double> LongitudinalUePopulation::Step(
    const std::vector<uint32_t>& values, Rng& rng) {
  LOLOHA_CHECK(values.size() == n_);
  UpdateMemoRange(values, 0, n_, rng, memo_column_sums_.data());
  std::vector<double> counts(k_);
  SampleIrrRange(0, k_, rng, counts.data());
  return EstimateFrequenciesChained(counts, static_cast<double>(n_),
                                    chain_.first, chain_.second);
}

std::vector<double> LongitudinalUePopulation::Step(
    const std::vector<uint32_t>& values, uint64_t step_seed,
    ThreadPool& pool, uint32_t num_shards) {
  LOLOHA_CHECK(values.size() == n_);
  LOLOHA_CHECK(num_shards >= 1);

  // Phase 1 — user shards update their (disjoint) memo states and record
  // column-sum deltas, merged serially afterwards.
  CacheAlignedRows<int64_t> deltas(num_shards, k_);
  pool.ParallelFor(num_shards, [&](uint32_t shard) {
    const ShardRange range = ShardBounds(n_, num_shards, shard);
    Rng rng(StreamSeed(step_seed, shard, 0));
    UpdateMemoRange(values, range.begin, range.end, rng, deltas.Row(shard));
  });
  deltas.MergeInto(memo_column_sums_.data());

  // Phase 2 — position shards sample the IRR binomials into disjoint
  // count slices (substream 1 keeps the streams distinct from phase 1).
  std::vector<double> counts(k_);
  pool.ParallelFor(num_shards, [&](uint32_t shard) {
    const ShardRange range = ShardBounds(k_, num_shards, shard);
    Rng rng(StreamSeed(step_seed, shard, 1));
    SampleIrrRange(range.begin, range.end, rng, counts.data());
  });
  return EstimateFrequenciesChained(counts, static_cast<double>(n_),
                                    chain_.first, chain_.second);
}

uint32_t LongitudinalUePopulation::DistinctMemos(uint32_t user) const {
  LOLOHA_CHECK(user < n_);
  return users_[user].distinct;
}

}  // namespace loloha

// Parameter derivations for the two-round (memoization) protocols of
// Sec. 2.4: a Permanent Randomized Response (PRR) parameterized by the
// longitudinal budget eps_perm (the paper's ε∞), chained with an
// Instantaneous Randomized Response (IRR) chosen so that the *first* report
// satisfies eps_first (the paper's ε1), with 0 < eps_first < eps_perm.
//
// Closed forms follow the paper (and its companion repository / ref. [5]);
// each one is cross-checked against a numeric bisection solver in the test
// suite.
//
// Naming note: the paper's L-SUE is RAPPOR generalized to a tunable ε1
// (RAPPOR's deployment hard-coded p2 = 0.75). We implement the general
// form; `RapporDeploymentChain` reproduces the hard-coded one.

#ifndef LOLOHA_LONGITUDINAL_CHAIN_H_
#define LOLOHA_LONGITUDINAL_CHAIN_H_

#include <cstdint>

#include "oracle/params.h"

namespace loloha {

// A chained mechanism: PRR parameters followed by IRR parameters.
struct ChainedParams {
  PerturbParams first;   // PRR (memoized) round
  PerturbParams second;  // IRR (per-report) round
};

// ---------------------------------------------------------------------------
// Unary-encoding chains (bit-flip semantics).
// ---------------------------------------------------------------------------

// L-SUE == RAPPOR: SUE in both rounds.
//   p1 = e^{ε∞/2}/(e^{ε∞/2}+1), q1 = 1-p1
//   p2 = (e^{(ε∞+ε1)/2} - 1) / ((e^{ε∞/2}-1)(e^{ε1/2}+1)), q2 = 1-p2
ChainedParams LSueChain(double eps_perm, double eps_first);

// RAPPOR as deployed by Google: eps_perm-parameterized PRR and the fixed
// IRR p2 = 0.75, q2 = 0.25 [23].
ChainedParams RapporDeploymentChain(double eps_perm);

// L-OSUE: OUE in the PRR round, SUE-style symmetric IRR [5].
//   p1 = 1/2, q1 = 1/(e^{ε∞}+1)
//   p2 = (e^{ε∞+ε1} - 1) / (e^{ε∞} - e^{ε1} + e^{ε∞+ε1} - 1), q2 = 1-p2
ChainedParams LOsueChain(double eps_perm, double eps_first);

// L-SOUE: SUE in the PRR round, OUE-style IRR (p2 = 1/2, q2 solved
// numerically) [5].
ChainedParams LSoueChain(double eps_perm, double eps_first);

// L-OUE: OUE in both rounds (p2 = 1/2, q2 solved numerically) [5].
ChainedParams LOueChain(double eps_perm, double eps_first);

// The first-report epsilon actually satisfied by a UE chain:
// UeEpsilon(CollapseChain(first, second)).
double UeChainFirstReportEpsilon(const ChainedParams& chain);

// Generic numeric solver: finds the symmetric IRR (q2 = 1 - p2) so that the
// chain's first report satisfies eps_first. Used to validate closed forms.
PerturbParams SolveSymmetricUeIrr(const PerturbParams& first,
                                  double eps_first);

// Generic numeric solver for an OUE-style IRR (p2 = 1/2, q2 free).
PerturbParams SolveOueStyleUeIrr(const PerturbParams& first,
                                 double eps_first);

// ---------------------------------------------------------------------------
// GRR chains (value-flip semantics over a domain of size k).
// ---------------------------------------------------------------------------

// L-GRR [5]: GRR over [0, k) in both rounds.
//   p1 = e^{ε∞}/(e^{ε∞}+k-1), q1 = (1-p1)/(k-1)
//   p2 = (e^{ε∞+ε1} - 1) /
//        (-k e^{ε1} + (k-1) e^{ε∞} + e^{ε1} + e^{ε1+ε∞} - 1)
//   q2 = (1-p2)/(k-1)
// This is the paper's convention: it sets the *dominant pairwise* ratio
// (p1p2 + q1q2)/(p1q2 + q1p2) to e^{ε1}; for k > 2 the exact first-report
// epsilon (see GrrChainFirstReportEpsilon) is then strictly below ε1.
ChainedParams LGrrChain(double eps_perm, double eps_first, uint32_t k);

// Extension (not in the paper): the IRR that makes the first report satisfy
// eps_first *exactly* for any k:
//   p2 = (e^{ε1}(e^{ε∞}+k-2) - (k-1)) / ((e^{ε∞}-1)(k-1+e^{ε1}))
ChainedParams LGrrChainExact(double eps_perm, double eps_first, uint32_t k);

// Exact first-report epsilon of a GRR chain over k values:
//   ln( (p1p2 + (k-1)q1q2) / (q1p2 + p1q2 + (k-2)q1q2) )
double GrrChainFirstReportEpsilon(const ChainedParams& chain, uint32_t k);

// The paper's pairwise ratio ln((p1p2+q1q2)/(p1q2+q1p2)) — equals ε1 by
// construction for LGrrChain and for LOLOHA's parameters (Thm. 3.4).
double GrrChainPairwiseEpsilon(const ChainedParams& chain);

}  // namespace loloha

#endif  // LOLOHA_LONGITUDINAL_CHAIN_H_

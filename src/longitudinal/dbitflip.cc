#include "longitudinal/dbitflip.h"

#include <algorithm>

#include "oracle/estimator.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace loloha {

Bucketizer::Bucketizer(uint32_t k, uint32_t b) : k_(k), b_(b) {
  LOLOHA_CHECK(k >= 2);
  LOLOHA_CHECK_MSG(b >= 2 && b <= k, "need 2 <= b <= k buckets");
}

DBitFlipClient::DBitFlipClient(const Bucketizer& bucketizer, uint32_t d,
                               double eps_perm, Rng& rng)
    : bucketizer_(bucketizer),
      d_(d),
      params_(SueParams(eps_perm)),
      sampled_position_(bucketizer.b(), -1) {
  const uint32_t b = bucketizer_.b();
  LOLOHA_CHECK_MSG(d >= 1 && d <= b, "need 1 <= d <= b sampled bits");
  // Partial Fisher-Yates draw of d distinct bucket indices.
  std::vector<uint32_t> pool(b);
  for (uint32_t j = 0; j < b; ++j) pool[j] = j;
  sampled_.reserve(d);
  for (uint32_t l = 0; l < d; ++l) {
    const uint32_t pick =
        l + static_cast<uint32_t>(rng.UniformInt(b - l));
    std::swap(pool[l], pool[pick]);
    sampled_.push_back(pool[l]);
    sampled_position_[pool[l]] = static_cast<int32_t>(l);
  }
}

DBitReport DBitFlipClient::Report(uint32_t value, Rng& rng) {
  const uint32_t bucket = bucketizer_.Bucket(value);
  auto it = memo_.find(bucket);
  if (it == memo_.end()) {
    // Permanent memoization: one randomized d-bit vector per distinct
    // bucket value, reused verbatim on every future report of it.
    std::vector<uint8_t> bits(d_);
    for (uint32_t l = 0; l < d_; ++l) {
      const double prob = (sampled_[l] == bucket) ? params_.p : params_.q;
      bits[l] = rng.Bernoulli(prob) ? 1 : 0;
    }
    it = memo_.emplace(bucket, std::move(bits)).first;
    if (sampled_position_[bucket] >= 0) {
      ++sampled_states_seen_;
    } else {
      unsampled_state_seen_ = true;
    }
  }
  DBitReport report;
  report.sampled = &sampled_;
  report.bits = it->second;
  return report;
}

uint32_t DBitFlipClient::distinct_states() const {
  return sampled_states_seen_ + (unsampled_state_seen_ ? 1 : 0);
}

const std::vector<uint8_t>* DBitFlipClient::MemoFor(uint32_t bucket) const {
  const auto it = memo_.find(bucket);
  return it == memo_.end() ? nullptr : &it->second;
}

DBitFlipPopulation::DBitFlipPopulation(const Bucketizer& bucketizer,
                                       uint32_t d, double eps_perm,
                                       uint32_t n, Rng& rng)
    : bucketizer_(bucketizer),
      d_(d),
      words_per_memo_((d + 63) / 64),
      params_(SueParams(eps_perm)),
      users_(n),
      samplers_per_bucket_(bucketizer.b(), 0),
      support_(bucketizer.b(), 0) {
  const uint32_t b = bucketizer_.b();
  LOLOHA_CHECK_MSG(d >= 1 && d <= b, "need 1 <= d <= b sampled bits");
  std::vector<uint32_t> pool(b);
  for (auto& user : users_) {
    user.sampled_pos.assign(b, -1);
    user.slots.assign(b, -1);
    for (uint32_t j = 0; j < b; ++j) pool[j] = j;
    user.sampled.reserve(d);
    for (uint32_t l = 0; l < d; ++l) {
      const uint32_t pick = l + static_cast<uint32_t>(rng.UniformInt(b - l));
      std::swap(pool[l], pool[pick]);
      user.sampled.push_back(pool[l]);
      user.sampled_pos[pool[l]] = static_cast<int32_t>(l);
      ++samplers_per_bucket_[pool[l]];
    }
  }
}

uint32_t DBitFlipPopulation::EnsureMemo(UserState& user, uint32_t bucket,
                                        Rng& rng) {
  if (user.slots[bucket] >= 0) {
    return static_cast<uint32_t>(user.slots[bucket]);
  }
  const uint32_t slot =
      static_cast<uint32_t>(user.arena.size() / words_per_memo_);
  user.slots[bucket] = static_cast<int32_t>(slot);
  user.arena.resize(user.arena.size() + words_per_memo_, 0);
  uint64_t* words =
      user.arena.data() + static_cast<size_t>(slot) * words_per_memo_;
  for (uint32_t l = 0; l < d_; ++l) {
    const double prob = (user.sampled[l] == bucket) ? params_.p : params_.q;
    if (rng.Bernoulli(prob)) words[l >> 6] |= uint64_t{1} << (l & 63);
  }
  if (user.sampled_pos[bucket] >= 0) {
    ++user.sampled_states;
  } else {
    user.unsampled_seen = true;
  }
  return slot;
}

void DBitFlipPopulation::ApplySlot(const UserState& user, uint32_t slot,
                                   int64_t sign, int64_t* support) const {
  const uint64_t* words =
      user.arena.data() + static_cast<size_t>(slot) * words_per_memo_;
  for (uint32_t w = 0; w < words_per_memo_; ++w) {
    uint64_t bits = words[w];
    while (bits != 0) {
      const int bit = __builtin_ctzll(bits);
      support[user.sampled[w * 64 + bit]] += sign;
      bits &= bits - 1;
    }
  }
}

void DBitFlipPopulation::StepUserRange(const std::vector<uint32_t>& values,
                                       uint64_t begin, uint64_t end, Rng& rng,
                                       int64_t* support) {
  for (uint64_t u = begin; u < end; ++u) {
    UserState& user = users_[u];
    const uint32_t bucket = bucketizer_.Bucket(values[u]);
    if (user.current_bucket == static_cast<int64_t>(bucket)) continue;
    if (user.current_bucket >= 0) {
      ApplySlot(user,
                static_cast<uint32_t>(
                    user.slots[static_cast<uint32_t>(user.current_bucket)]),
                -1, support);
    }
    const uint32_t slot = EnsureMemo(user, bucket, rng);
    ApplySlot(user, slot, +1, support);
    user.current_bucket = bucket;
  }
}

std::vector<double> DBitFlipPopulation::EstimateCurrent() const {
  const uint32_t b = bucketizer_.b();
  std::vector<double> estimates(b, 0.0);
  for (uint32_t j = 0; j < b; ++j) {
    const uint64_t n_j = samplers_per_bucket_[j];
    if (n_j == 0) continue;
    LOLOHA_DCHECK(support_[j] >= 0);
    estimates[j] = EstimateFrequency(static_cast<double>(support_[j]),
                                     static_cast<double>(n_j), params_);
  }
  return estimates;
}

std::vector<double> DBitFlipPopulation::Step(
    const std::vector<uint32_t>& values, Rng& rng) {
  LOLOHA_CHECK(values.size() == users_.size());
  StepUserRange(values, 0, users_.size(), rng, support_.data());
  return EstimateCurrent();
}

std::vector<double> DBitFlipPopulation::Step(
    const std::vector<uint32_t>& values, uint64_t step_seed,
    ThreadPool& pool, uint32_t num_shards) {
  LOLOHA_CHECK(values.size() == users_.size());
  LOLOHA_CHECK(num_shards >= 1);
  const uint32_t b = bucketizer_.b();

  // Per-shard cache-line-privatized delta rows (no false sharing at
  // small b), merged serially.
  CacheAlignedRows<int64_t> deltas(num_shards, b);
  pool.ParallelFor(num_shards, [&](uint32_t shard) {
    const ShardRange range = ShardBounds(users_.size(), num_shards, shard);
    Rng rng(StreamSeed(step_seed, shard, 0));
    StepUserRange(values, range.begin, range.end, rng, deltas.Row(shard));
  });
  deltas.MergeInto(support_.data());
  return EstimateCurrent();
}

uint32_t DBitFlipPopulation::DistinctStates(uint32_t user) const {
  LOLOHA_CHECK(user < users_.size());
  return users_[user].sampled_states +
         (users_[user].unsampled_seen ? 1 : 0);
}

DBitFlipServer::DBitFlipServer(const Bucketizer& bucketizer, uint32_t d,
                               double eps_perm)
    : bucketizer_(bucketizer),
      d_(d),
      params_(SueParams(eps_perm)),
      samplers_per_bucket_(bucketizer.b(), 0),
      support_(bucketizer.b(), 0) {}

void DBitFlipServer::RegisterUser(const std::vector<uint32_t>& sampled) {
  LOLOHA_CHECK(sampled.size() == d_);
  for (const uint32_t j : sampled) {
    LOLOHA_CHECK(j < bucketizer_.b());
    ++samplers_per_bucket_[j];
  }
}

void DBitFlipServer::BeginStep() { support_.assign(bucketizer_.b(), 0); }

void DBitFlipServer::Accumulate(const DBitReport& report) {
  LOLOHA_CHECK(report.sampled != nullptr);
  LOLOHA_CHECK(report.bits.size() == d_);
  for (uint32_t l = 0; l < d_; ++l) {
    support_[(*report.sampled)[l]] += report.bits[l];
  }
}

std::vector<double> DBitFlipServer::EstimateStep() const {
  const uint32_t b = bucketizer_.b();
  std::vector<double> estimates(b, 0.0);
  for (uint32_t j = 0; j < b; ++j) {
    const uint64_t n_j = samplers_per_bucket_[j];
    if (n_j == 0) continue;  // nobody sampled this bucket; no information
    estimates[j] = EstimateFrequency(static_cast<double>(support_[j]),
                                     static_cast<double>(n_j), params_);
  }
  return estimates;
}

}  // namespace loloha

// Longitudinal Unary-Encoding protocols: RAPPOR (L-SUE), L-OSUE, L-SOUE and
// L-OUE — every combination of SUE/OUE in the PRR and IRR rounds (Sec.
// 2.4.1, 2.4.2 and ref. [5]).
//
// Client model (Sec. 2.4.1): the user one-hot encodes v, applies the PRR
// round *once per distinct value* and memoizes the result x'; every report
// of v re-randomizes x' with the IRR round and sends the resulting k-bit
// vector. The server sums bits per position and inverts with Eq. (3).
//
// Two implementations are provided:
//   * LongitudinalUeClient / LongitudinalUeServer — the real protocol, one
//     report per user per step (what a deployment would run).
//   * LongitudinalUePopulation — a simulation-grade aggregator that is
//     *exactly* distribution-equivalent to running n clients: PRR memo
//     vectors are materialized per (user, value) as packed bits, and the
//     IRR round is sampled per position as
//       C_t[i] ~ Binomial(M_t[i], p2) + Binomial(n - M_t[i], q2),
//     where M_t[i] is the number of users whose current memo vector has bit
//     i set. Conditioned on the memos, the n per-user IRR bits at position
//     i are independent Bernoullis with those two parameters, so the sum is
//     exactly the displayed binomial mixture. This turns the O(n*k) IRR
//     sampling into O(k) per step.

#ifndef LOLOHA_LONGITUDINAL_LUE_H_
#define LOLOHA_LONGITUDINAL_LUE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "longitudinal/chain.h"
#include "util/packed_bits.h"
#include "util/rng.h"

namespace loloha {

class ThreadPool;

// Which UE protocol runs in each round; mirrors ref. [5]'s four variants.
enum class LueVariant {
  kLSue,   // SUE + SUE == RAPPOR
  kLOsue,  // OUE + SUE (the paper's optimized choice)
  kLSoue,  // SUE + OUE
  kLOue,   // OUE + OUE
};

// Parameters for a variant at (ε∞, ε1).
ChainedParams LueChain(LueVariant variant, double eps_perm, double eps_first);

// Human-readable protocol name ("RAPPOR", "L-OSUE", ...).
const char* LueVariantName(LueVariant variant);

// One user's stateful randomizer.
class LongitudinalUeClient {
 public:
  LongitudinalUeClient(uint32_t k, const ChainedParams& chain);

  // Produces the sanitized k-bit report for this step's true value.
  std::vector<uint8_t> Report(uint32_t value, Rng& rng);

  // Number of distinct values memoized so far; the user's longitudinal
  // privacy loss under Definition 3.2 is eps_perm * this count.
  uint32_t distinct_memos() const {
    return static_cast<uint32_t>(memo_.size());
  }

  uint32_t k() const { return k_; }

 private:
  uint32_t k_;
  ChainedParams chain_;
  std::unordered_map<uint32_t, PackedBits> memo_;
};

// Per-step aggregator for real client reports.
class LongitudinalUeServer {
 public:
  LongitudinalUeServer(uint32_t k, const ChainedParams& chain);

  void BeginStep();
  void Accumulate(const std::vector<uint8_t>& report);

  // Accumulates `num_reports` k-bit reports stored row-major in `reports`
  // (num_reports x k bytes) through the SIMD column-sum kernel
  // (util/simd.h). Equivalent to calling Accumulate per row.
  void AccumulateBatch(const uint8_t* reports, size_t num_reports);

  // Unbiased frequency estimates for the current step, Eq. (3).
  std::vector<double> EstimateStep() const;

 private:
  uint32_t k_;
  ChainedParams chain_;
  std::vector<uint64_t> counts_;
  uint64_t num_reports_ = 0;
};

// Exact-distribution population simulator (see file comment).
class LongitudinalUePopulation {
 public:
  LongitudinalUePopulation(uint32_t k, uint32_t n, const ChainedParams& chain);

  // Advances one collection step: `values[u]` is user u's true value.
  // Returns the estimated frequency histogram for the step.
  std::vector<double> Step(const std::vector<uint32_t>& values, Rng& rng);

  // Sharded step: phase 1 splits users into `num_shards` slices for the
  // PRR memo bookkeeping, phase 2 splits the k positions for the IRR
  // binomial sampling; each (shard, phase) derives its own Rng stream
  // from `step_seed`. Bit-identical output for any pool size.
  std::vector<double> Step(const std::vector<uint32_t>& values,
                           uint64_t step_seed, ThreadPool& pool,
                           uint32_t num_shards);

  // Distinct values memoized by user u so far.
  uint32_t DistinctMemos(uint32_t user) const;

  uint32_t k() const { return k_; }
  uint32_t n() const { return n_; }

 private:
  struct UserState {
    // Which value the user reported at the previous step (or none yet).
    int64_t current_value = -1;
    // value -> slot index into `arena` (-1 when not yet memoized); each
    // slot is words_per_memo words.
    std::vector<int32_t> slots;
    std::vector<uint64_t> arena;
    uint32_t distinct = 0;
  };

  // Adds `sign` to `columns[i]` for every set bit i of the slot's memo.
  void ApplySlotToColumns(const UserState& user, uint32_t slot, int64_t sign,
                          int64_t* columns) const;
  uint32_t EnsureMemo(UserState& user, uint32_t value, Rng& rng);
  // Phase 1 over users [begin, end): memo bookkeeping, column deltas into
  // `columns`. Phase 2 over positions [begin, end): IRR binomial counts.
  void UpdateMemoRange(const std::vector<uint32_t>& values, uint64_t begin,
                       uint64_t end, Rng& rng, int64_t* columns);
  void SampleIrrRange(uint64_t begin, uint64_t end, Rng& rng,
                      double* counts) const;

  uint32_t k_;
  uint32_t n_;
  uint32_t words_per_memo_;
  ChainedParams chain_;
  std::vector<UserState> users_;
  // M[i]: number of users whose current memo vector has bit i set.
  std::vector<int64_t> memo_column_sums_;
};

}  // namespace loloha

#endif  // LOLOHA_LONGITUDINAL_LUE_H_

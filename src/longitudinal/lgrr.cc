#include "longitudinal/lgrr.h"

#include "oracle/estimator.h"
#include "util/check.h"

namespace loloha {

LongitudinalGrrClient::LongitudinalGrrClient(uint32_t k,
                                             const ChainedParams& chain)
    : k_(k), chain_(chain) {
  LOLOHA_CHECK(k >= 2);
  LOLOHA_CHECK(ValidParams(chain.first));
  LOLOHA_CHECK(ValidParams(chain.second));
}

uint32_t LongitudinalGrrClient::Report(uint32_t value, Rng& rng) {
  LOLOHA_CHECK(value < k_);
  auto it = memo_.find(value);
  if (it == memo_.end()) {
    // PRR: GRR(value; ε∞), drawn once and reused.
    uint32_t memoized = value;
    if (!rng.Bernoulli(chain_.first.p)) {
      memoized = static_cast<uint32_t>(rng.UniformIntExcluding(k_, value));
    }
    it = memo_.emplace(value, memoized).first;
  }
  // IRR: GRR(x'; ε_IRR) fresh on every report.
  const uint32_t memoized = it->second;
  if (rng.Bernoulli(chain_.second.p)) return memoized;
  return static_cast<uint32_t>(rng.UniformIntExcluding(k_, memoized));
}

LongitudinalGrrServer::LongitudinalGrrServer(uint32_t k,
                                             const ChainedParams& chain)
    : k_(k), chain_(chain), counts_(k, 0) {}

void LongitudinalGrrServer::BeginStep() {
  counts_.assign(k_, 0);
  num_reports_ = 0;
}

void LongitudinalGrrServer::Accumulate(uint32_t report) {
  LOLOHA_CHECK(report < k_);
  ++counts_[report];
  ++num_reports_;
}

std::vector<double> LongitudinalGrrServer::EstimateStep() const {
  LOLOHA_CHECK_MSG(num_reports_ > 0, "no reports accumulated");
  std::vector<double> counts(counts_.begin(), counts_.end());
  return EstimateFrequenciesChained(counts,
                                    static_cast<double>(num_reports_),
                                    chain_.first, chain_.second);
}

}  // namespace loloha

#include "longitudinal/chain.h"

#include <cmath>

#include "oracle/estimator.h"
#include "util/check.h"
#include "util/mathutil.h"

namespace loloha {

namespace {

void CheckBudgets(double eps_perm, double eps_first) {
  LOLOHA_CHECK_MSG(eps_perm > 0.0, "eps_perm (ε∞) must be positive");
  LOLOHA_CHECK_MSG(eps_first > 0.0, "eps_first (ε1) must be positive");
  LOLOHA_CHECK_MSG(eps_first < eps_perm,
                   "the chain requires 0 < ε1 < ε∞ (Alg. 1)");
}

}  // namespace

ChainedParams LSueChain(double eps_perm, double eps_first) {
  CheckBudgets(eps_perm, eps_first);
  ChainedParams chain;
  chain.first = SueParams(eps_perm);
  // Both rounds symmetric => the collapsed mechanism is symmetric with
  // p_s = e^{ε1/2}/(e^{ε1/2}+1); solving p_s = p1 p2 + (1-p1)(1-p2) gives
  // the closed form below.
  const double a = std::exp(eps_perm / 2.0);
  const double b = std::exp(eps_first / 2.0);
  const double p2 = (a * b - 1.0) / ((a - 1.0) * (b + 1.0));
  chain.second.p = p2;
  chain.second.q = 1.0 - p2;
  return chain;
}

ChainedParams RapporDeploymentChain(double eps_perm) {
  LOLOHA_CHECK_MSG(eps_perm > 0.0, "eps_perm (ε∞) must be positive");
  ChainedParams chain;
  chain.first = SueParams(eps_perm);
  chain.second.p = 0.75;
  chain.second.q = 0.25;
  return chain;
}

ChainedParams LOsueChain(double eps_perm, double eps_first) {
  CheckBudgets(eps_perm, eps_first);
  ChainedParams chain;
  chain.first = OueParams(eps_perm);
  const double a = std::exp(eps_perm);
  const double c = std::exp(eps_first);
  const double p2 = (a * c - 1.0) / (a - c + a * c - 1.0);
  chain.second.p = p2;
  chain.second.q = 1.0 - p2;
  return chain;
}

ChainedParams LSoueChain(double eps_perm, double eps_first) {
  CheckBudgets(eps_perm, eps_first);
  ChainedParams chain;
  chain.first = SueParams(eps_perm);
  chain.second = SolveOueStyleUeIrr(chain.first, eps_first);
  return chain;
}

ChainedParams LOueChain(double eps_perm, double eps_first) {
  CheckBudgets(eps_perm, eps_first);
  ChainedParams chain;
  chain.first = OueParams(eps_perm);
  chain.second = SolveOueStyleUeIrr(chain.first, eps_first);
  return chain;
}

double UeChainFirstReportEpsilon(const ChainedParams& chain) {
  return UeEpsilon(CollapseChain(chain.first, chain.second));
}

PerturbParams SolveSymmetricUeIrr(const PerturbParams& first,
                                  double eps_first) {
  LOLOHA_CHECK(ValidParams(first));
  LOLOHA_CHECK_MSG(eps_first > 0.0 && eps_first < UeEpsilon(first),
                   "ε1 must lie in (0, ε∞)");
  const double kMargin = 1e-12;
  const double p2 = BisectIncreasing(
      [&first](double candidate) {
        PerturbParams second{candidate, 1.0 - candidate};
        return UeEpsilon(CollapseChain(first, second));
      },
      eps_first, 0.5 + kMargin, 1.0 - kMargin);
  return PerturbParams{p2, 1.0 - p2};
}

PerturbParams SolveOueStyleUeIrr(const PerturbParams& first,
                                 double eps_first) {
  LOLOHA_CHECK(ValidParams(first));
  const double kMargin = 1e-12;
  // Epsilon decreases as q2 grows toward 1/2; bisect on -epsilon.
  auto eps_of = [&first](double q2) {
    PerturbParams second{0.5, q2};
    return UeEpsilon(CollapseChain(first, second));
  };
  const double eps_max = eps_of(kMargin);
  LOLOHA_CHECK_MSG(
      eps_first < eps_max,
      "ε1 too large for an OUE-style IRR on this PRR (raise ε∞ or lower α)");
  const double q2 = BisectIncreasing(
      [&eps_of](double candidate) { return -eps_of(candidate); }, -eps_first,
      kMargin, 0.5 - kMargin);
  return PerturbParams{0.5, q2};
}

ChainedParams LGrrChain(double eps_perm, double eps_first, uint32_t k) {
  CheckBudgets(eps_perm, eps_first);
  LOLOHA_CHECK(k >= 2);
  ChainedParams chain;
  chain.first = GrrParams(eps_perm, k);
  const double a = std::exp(eps_perm);
  const double c = std::exp(eps_first);
  const double kd = static_cast<double>(k);
  const double p2 =
      (a * c - 1.0) / (-kd * c + (kd - 1.0) * a + c + a * c - 1.0);
  LOLOHA_CHECK_MSG(p2 > 0.0 && p2 < 1.0,
                   "L-GRR IRR infeasible for these (ε∞, ε1, k)");
  chain.second.p = p2;
  chain.second.q = (1.0 - p2) / (kd - 1.0);
  return chain;
}

ChainedParams LGrrChainExact(double eps_perm, double eps_first, uint32_t k) {
  CheckBudgets(eps_perm, eps_first);
  LOLOHA_CHECK(k >= 2);
  ChainedParams chain;
  chain.first = GrrParams(eps_perm, k);
  const double a = std::exp(eps_perm);
  const double c = std::exp(eps_first);
  const double kd = static_cast<double>(k);
  const double p2 = (c * (a + kd - 2.0) - (kd - 1.0)) /
                    ((a - 1.0) * (kd - 1.0 + c));
  LOLOHA_CHECK_MSG(p2 > 0.0 && p2 < 1.0,
                   "exact L-GRR IRR infeasible for these (ε∞, ε1, k)");
  chain.second.p = p2;
  chain.second.q = (1.0 - p2) / (kd - 1.0);
  return chain;
}

double GrrChainFirstReportEpsilon(const ChainedParams& chain, uint32_t k) {
  LOLOHA_CHECK(k >= 2);
  const double kd = static_cast<double>(k);
  const double p1 = chain.first.p;
  const double q1 = chain.first.q;
  const double p2 = chain.second.p;
  const double q2 = chain.second.q;
  const double keep = p1 * p2 + (kd - 1.0) * q1 * q2;
  const double flip = q1 * p2 + p1 * q2 + (kd - 2.0) * q1 * q2;
  return std::log(keep / flip);
}

double GrrChainPairwiseEpsilon(const ChainedParams& chain) {
  const double p1 = chain.first.p;
  const double q1 = chain.first.q;
  const double p2 = chain.second.p;
  const double q2 = chain.second.q;
  return std::log((p1 * p2 + q1 * q2) / (p1 * q2 + q1 * p2));
}

}  // namespace loloha

// Subset Selection (SS) — Wang et al. / Ye & Barg: the one-shot oracle
// that is minimax-optimal in the medium-privacy regime. Each user reports
// a random subset of size w = round(k / (e^eps + 1)) (at least 1):
// with probability p the subset contains the true value plus w-1 uniform
// others; otherwise it is a uniform w-subset of the other k-1 values.
//
// The server counts, per value, how many reported subsets contain it and
// inverts with Eq. (1), where
//   p_ss = Pr[v in subset | user holds v]
//        = p
//   q_ss = Pr[v in subset | user holds v' != v]
//        = p (w-1)/(k-1) + (1-p) w/(k-1)  ... see derivation in the .cc.
//
// Satisfies eps-LDP with p = w e^eps / (w e^eps + k - w).

#ifndef LOLOHA_ORACLE_SUBSET_SELECTION_H_
#define LOLOHA_ORACLE_SUBSET_SELECTION_H_

#include <cstdint>
#include <vector>

#include "oracle/params.h"
#include "util/rng.h"

namespace loloha {

// The optimal subset size w = max(1, round(k / (e^eps + 1))).
uint32_t SubsetSize(uint32_t k, double epsilon);

// The effective estimator parameters (p_ss, q_ss) for domain k at eps
// with subset size w.
PerturbParams SubsetParams(uint32_t k, uint32_t w, double epsilon);

class SubsetSelectionClient {
 public:
  SubsetSelectionClient(uint32_t k, double epsilon);

  // Returns the reported subset (sorted, distinct values in [0, k)).
  std::vector<uint32_t> Perturb(uint32_t value, Rng& rng) const;

  uint32_t k() const { return k_; }
  uint32_t w() const { return w_; }
  double include_probability() const { return p_include_; }

 private:
  uint32_t k_;
  uint32_t w_;
  double p_include_;  // probability the true value enters the subset
};

class SubsetSelectionServer {
 public:
  SubsetSelectionServer(uint32_t k, double epsilon);

  void Accumulate(const std::vector<uint32_t>& subset);

  std::vector<double> Estimate() const;

  uint64_t num_reports() const { return num_reports_; }
  void Reset();

 private:
  uint32_t k_;
  PerturbParams params_;
  std::vector<uint64_t> counts_;
  uint64_t num_reports_ = 0;
};

}  // namespace loloha

#endif  // LOLOHA_ORACLE_SUBSET_SELECTION_H_

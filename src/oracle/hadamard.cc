#include "oracle/hadamard.h"

#include <cmath>

#include "util/check.h"

namespace loloha {

namespace {

uint32_t NextPowerOfTwoAbove(uint32_t x) {
  uint32_t k = 1;
  while (k <= x) k <<= 1;
  return k;
}

}  // namespace

void FastWalshHadamard(std::vector<double>& data) {
  const size_t n = data.size();
  LOLOHA_CHECK_MSG((n & (n - 1)) == 0 && n > 0,
                   "FWHT needs a power-of-two length");
  for (size_t half = 1; half < n; half <<= 1) {
    for (size_t block = 0; block < n; block += 2 * half) {
      for (size_t i = block; i < block + half; ++i) {
        const double x = data[i];
        const double y = data[i + half];
        data[i] = x + y;
        data[i + half] = x - y;
      }
    }
  }
}

HadamardResponseClient::HadamardResponseClient(uint32_t k, double epsilon)
    : k_(k), big_k_(NextPowerOfTwoAbove(k)) {
  LOLOHA_CHECK(k >= 1);
  LOLOHA_CHECK_MSG(epsilon > 0.0, "epsilon must be positive");
  // Column 0 of the Sylvester matrix is all ones; values use columns
  // 1..k, so K must exceed k.
  p_ = std::exp(epsilon) / (std::exp(epsilon) + 1.0);
}

uint32_t HadamardResponseClient::Perturb(uint32_t value, Rng& rng) const {
  LOLOHA_CHECK(value < k_);
  const uint32_t column = value + 1;
  // Sample the desired half (agree w.p. p), then draw uniformly within it
  // by rejection — each draw lands in the right half with probability 1/2.
  const int want_positive = rng.Bernoulli(p_) ? 1 : -1;
  for (;;) {
    const uint32_t row = static_cast<uint32_t>(rng.UniformInt(big_k_));
    if (HadamardSign(row, column) == want_positive) return row;
  }
}

HadamardResponseServer::HadamardResponseServer(uint32_t k, double epsilon)
    : k_(k), big_k_(NextPowerOfTwoAbove(k)), counts_(big_k_, 0) {
  LOLOHA_CHECK_MSG(epsilon > 0.0, "epsilon must be positive");
  p_ = std::exp(epsilon) / (std::exp(epsilon) + 1.0);
}

void HadamardResponseServer::Accumulate(uint32_t report) {
  LOLOHA_CHECK(report < big_k_);
  ++counts_[report];
  ++num_reports_;
}

std::vector<double> HadamardResponseServer::Estimate() const {
  LOLOHA_CHECK_MSG(num_reports_ > 0, "no reports accumulated");
  std::vector<double> transform(counts_.begin(), counts_.end());
  FastWalshHadamard(transform);
  const double scale =
      1.0 / (static_cast<double>(num_reports_) * (2.0 * p_ - 1.0));
  std::vector<double> estimates(k_);
  for (uint32_t v = 0; v < k_; ++v) {
    estimates[v] = transform[v + 1] * scale;
  }
  return estimates;
}

void HadamardResponseServer::Reset() {
  counts_.assign(big_k_, 0);
  num_reports_ = 0;
}

}  // namespace loloha

#include "oracle/subset_selection.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "oracle/estimator.h"
#include "util/check.h"
#include "util/mathutil.h"

namespace loloha {

namespace {

// Floyd's algorithm: `count` distinct uniform values from [0, bound).
void SampleDistinct(uint32_t count, uint32_t bound, Rng& rng,
                    std::unordered_set<uint32_t>& out) {
  LOLOHA_DCHECK(count <= bound);
  for (uint32_t j = bound - count; j < bound; ++j) {
    const uint32_t t = static_cast<uint32_t>(rng.UniformInt(j + 1));
    if (!out.insert(t).second) out.insert(j);
  }
}

}  // namespace

uint32_t SubsetSize(uint32_t k, double epsilon) {
  LOLOHA_CHECK(k >= 2);
  LOLOHA_CHECK(epsilon > 0.0);
  const int64_t w =
      RoundToNearest(static_cast<double>(k) / (std::exp(epsilon) + 1.0));
  return static_cast<uint32_t>(
      std::clamp<int64_t>(w, 1, static_cast<int64_t>(k) - 1));
}

PerturbParams SubsetParams(uint32_t k, uint32_t w, double epsilon) {
  LOLOHA_CHECK(w >= 1 && w < k);
  const double e = std::exp(epsilon);
  const double wd = w;
  const double kd = k;
  const double p = wd * e / (wd * e + kd - wd);
  PerturbParams params;
  params.p = p;
  params.q = (p * (wd - 1.0) + (1.0 - p) * wd) / (kd - 1.0);
  return params;
}

SubsetSelectionClient::SubsetSelectionClient(uint32_t k, double epsilon)
    : k_(k), w_(SubsetSize(k, epsilon)) {
  const double e = std::exp(epsilon);
  p_include_ = w_ * e / (w_ * e + static_cast<double>(k_ - w_));
}

std::vector<uint32_t> SubsetSelectionClient::Perturb(uint32_t value,
                                                     Rng& rng) const {
  LOLOHA_CHECK(value < k_);
  const bool include = rng.Bernoulli(p_include_);
  const uint32_t others = include ? w_ - 1 : w_;

  // Draw `others` distinct values from [0, k-1) and shift indices >= value
  // up by one, so the draw is uniform over V \ {value}.
  std::unordered_set<uint32_t> drawn;
  drawn.reserve(others + 1);
  SampleDistinct(others, k_ - 1, rng, drawn);

  std::vector<uint32_t> subset;
  subset.reserve(w_);
  if (include) subset.push_back(value);
  // Hash order is erased by the sort below; it never reaches the result.
  // lint:allow(unordered-iteration)
  for (const uint32_t r : drawn) {
    subset.push_back(r >= value ? r + 1 : r);
  }
  std::sort(subset.begin(), subset.end());
  return subset;
}

SubsetSelectionServer::SubsetSelectionServer(uint32_t k, double epsilon)
    : k_(k),
      params_(SubsetParams(k, SubsetSize(k, epsilon), epsilon)),
      counts_(k, 0) {}

void SubsetSelectionServer::Accumulate(const std::vector<uint32_t>& subset) {
  for (const uint32_t v : subset) {
    LOLOHA_CHECK(v < k_);
    ++counts_[v];
  }
  ++num_reports_;
}

std::vector<double> SubsetSelectionServer::Estimate() const {
  LOLOHA_CHECK_MSG(num_reports_ > 0, "no reports accumulated");
  std::vector<double> estimates(k_);
  const double n = static_cast<double>(num_reports_);
  for (uint32_t v = 0; v < k_; ++v) {
    estimates[v] =
        EstimateFrequency(static_cast<double>(counts_[v]), n, params_);
  }
  return estimates;
}

void SubsetSelectionServer::Reset() {
  counts_.assign(k_, 0);
  num_reports_ = 0;
}

}  // namespace loloha

// Unary Encoding oracles (Sec. 2.3.3): the value is one-hot encoded into a
// k-bit vector and each bit is flipped independently.
//
//   SUE (symmetric, RAPPOR's choice): p = e^{eps/2}/(e^{eps/2}+1), q = 1-p
//   OUE (optimized):                  p = 1/2,  q = 1/(e^eps + 1)
//
// Reports are std::vector<uint8_t> of length k with values in {0, 1}.

#ifndef LOLOHA_ORACLE_UNARY_H_
#define LOLOHA_ORACLE_UNARY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "oracle/params.h"
#include "util/rng.h"

namespace loloha {

enum class UeKind {
  kSymmetric,  // SUE
  kOptimized,  // OUE
};

// Client-side unary-encoding randomizer.
class UeClient {
 public:
  UeClient(uint32_t k, double epsilon, UeKind kind);

  // Builds with explicit (p, q) — used by the longitudinal chains.
  UeClient(uint32_t k, PerturbParams params);

  // One-hot encodes `value` and flips every bit independently.
  std::vector<uint8_t> Perturb(uint32_t value, Rng& rng) const;

  // Flips the bits of an arbitrary input vector (the IRR step of the
  // longitudinal protocols re-randomizes a memoized vector).
  std::vector<uint8_t> PerturbVector(const std::vector<uint8_t>& bits,
                                     Rng& rng) const;

  uint32_t k() const { return k_; }
  const PerturbParams& params() const { return params_; }

 private:
  uint32_t k_;
  PerturbParams params_;
};

// Server-side aggregator: sums reported bit vectors per position.
class UeServer {
 public:
  UeServer(uint32_t k, double epsilon, UeKind kind);
  UeServer(uint32_t k, PerturbParams params);

  void Accumulate(const std::vector<uint8_t>& report);

  // Accumulates `num_reports` k-bit reports stored row-major in `reports`
  // (num_reports x k bytes) through the SIMD column-sum kernel
  // (util/simd.h). Equivalent to calling Accumulate per row.
  void AccumulateBatch(const uint8_t* reports, size_t num_reports);

  // Unbiased estimates via Eq. (1), with C(v) = count of set bits at v.
  std::vector<double> Estimate() const;

  uint64_t num_reports() const { return num_reports_; }
  void Reset();

 private:
  uint32_t k_;
  PerturbParams params_;
  std::vector<uint64_t> counts_;
  uint64_t num_reports_ = 0;
};

}  // namespace loloha

#endif  // LOLOHA_ORACLE_UNARY_H_

// Hadamard Response (HR) — Acharya, Sun & Zhang, AISTATS 2019 (ref. [2]
// of the paper): a communication-optimal one-shot frequency oracle.
//
// The domain is embedded into the rows of a K x K Hadamard matrix
// (K = smallest power of two > k, so value v maps to column v + 1,
// skipping the all-ones column 0). Each user holding v reports a uniform
// element of either the "agreeing" half {y : H[y][v+1] = +1} (w.p.
// e^eps/(e^eps+1)) or its complement. The server counts reports per row
// and recovers all k frequencies simultaneously with one fast
// Walsh-Hadamard transform, O(K log K) total — versus O(n k) for LH.
//
// Satisfies eps-LDP: any fixed report y has probability p/K' or q/K'
// depending only on the sign H[y][v+1], and p/q = e^eps.

#ifndef LOLOHA_ORACLE_HADAMARD_H_
#define LOLOHA_ORACLE_HADAMARD_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace loloha {

// In-place fast Walsh-Hadamard transform of a power-of-two-length vector
// (unnormalized: applying it twice multiplies by the length).
void FastWalshHadamard(std::vector<double>& data);

// Sign of the Hadamard matrix entry H[row][col] for the Sylvester
// construction: +1 iff popcount(row & col) is even.
inline int HadamardSign(uint32_t row, uint32_t col) {
  return (__builtin_popcount(row & col) & 1) ? -1 : +1;
}

class HadamardResponseClient {
 public:
  HadamardResponseClient(uint32_t k, double epsilon);

  // Reports a uniform row index among the K/2 rows agreeing (or, with
  // probability 1-p, disagreeing) with the user's column.
  uint32_t Perturb(uint32_t value, Rng& rng) const;

  uint32_t k() const { return k_; }
  uint32_t matrix_size() const { return big_k_; }
  double keep_probability() const { return p_; }

 private:
  uint32_t k_;
  uint32_t big_k_;  // K: power of two, K >= k + 1
  double p_;        // e^eps / (e^eps + 1)
};

class HadamardResponseServer {
 public:
  HadamardResponseServer(uint32_t k, double epsilon);

  void Accumulate(uint32_t report);

  // Unbiased estimates of all k frequencies via one FWHT over the report
  // histogram: E[ (1/n) sum_y C(y) H[y][v+1] ] = (2p - 1) f(v).
  std::vector<double> Estimate() const;

  uint64_t num_reports() const { return num_reports_; }
  void Reset();

 private:
  uint32_t k_;
  uint32_t big_k_;
  double p_;
  std::vector<uint64_t> counts_;  // per row
  uint64_t num_reports_ = 0;
};

}  // namespace loloha

#endif  // LOLOHA_ORACLE_HADAMARD_H_

// The shared unbiased frequency estimator of Eq. (1) and its longitudinal
// two-round extension, Eq. (3). Every protocol in this library funnels its
// aggregated support counts through these two functions, so the
// unbiasedness proofs (and tests) cover all of them at once.

#ifndef LOLOHA_ORACLE_ESTIMATOR_H_
#define LOLOHA_ORACLE_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "oracle/params.h"

namespace loloha {

// Eq. (1): f_hat = (C - n*q) / (n * (p - q)).
// `support_count` is C(v), `n` the number of reports contributing to it.
double EstimateFrequency(double support_count, double n,
                         const PerturbParams& params);

// Applies Eq. (1) coordinate-wise to a whole histogram of support counts.
std::vector<double> EstimateFrequencies(const std::vector<double>& counts,
                                        double n, const PerturbParams& params);

// Eq. (3): the chained (PRR then IRR) estimator
//   f_hat = (C - n*q1*(p2-q2) - n*q2) / (n * (p1-q1) * (p2-q2)).
// For LOLOHA/LH-based protocols pass q1' = 1/g as `first.q` (Alg. 2).
double EstimateFrequencyChained(double support_count, double n,
                                const PerturbParams& first,
                                const PerturbParams& second);

std::vector<double> EstimateFrequenciesChained(
    const std::vector<double>& counts, double n, const PerturbParams& first,
    const PerturbParams& second);

// The effective single-round (p_s, q_s) of a chained mechanism acting on
// *support* probabilities: p_s = p1*p2 + (1-p1)*q2, q_s = q1*p2 + (1-q1)*q2.
// EstimateFrequencyChained(c, n, first, second) ==
// EstimateFrequency(c, n, CollapseChain(first, second)) identically.
PerturbParams CollapseChain(const PerturbParams& first,
                            const PerturbParams& second);

// Approximate variance V*[f_hat] of the chained estimator at f(v) = 0,
// Eq. (5). `n` is the number of users.
double ApproximateVariance(double n, const PerturbParams& first,
                           const PerturbParams& second);

// Exact variance of the chained estimator at true frequency f, Eq. (4).
double ExactVariance(double n, double f, const PerturbParams& first,
                     const PerturbParams& second);

// Variance of the one-round estimator (Eq. 4 with a degenerate second
// round p2 = 1, q2 = 0): gamma*(1-gamma) / (n*(p-q)^2) with
// gamma = f*(p - q) + q.
double OneRoundVariance(double n, double f, const PerturbParams& params);

}  // namespace loloha

#endif  // LOLOHA_ORACLE_ESTIMATOR_H_

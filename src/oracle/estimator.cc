#include "oracle/estimator.h"

#include "util/check.h"

namespace loloha {

double EstimateFrequency(double support_count, double n,
                         const PerturbParams& params) {
  LOLOHA_CHECK(n > 0.0);
  LOLOHA_CHECK(ValidParams(params));
  return (support_count - n * params.q) / (n * (params.p - params.q));
}

std::vector<double> EstimateFrequencies(const std::vector<double>& counts,
                                        double n,
                                        const PerturbParams& params) {
  std::vector<double> estimates(counts.size());
  for (size_t v = 0; v < counts.size(); ++v) {
    estimates[v] = EstimateFrequency(counts[v], n, params);
  }
  return estimates;
}

PerturbParams CollapseChain(const PerturbParams& first,
                            const PerturbParams& second) {
  PerturbParams collapsed;
  collapsed.p = first.p * second.p + (1.0 - first.p) * second.q;
  collapsed.q = first.q * second.p + (1.0 - first.q) * second.q;
  return collapsed;
}

double EstimateFrequencyChained(double support_count, double n,
                                const PerturbParams& first,
                                const PerturbParams& second) {
  LOLOHA_CHECK(n > 0.0);
  const double dp1 = first.p - first.q;
  const double dp2 = second.p - second.q;
  LOLOHA_CHECK(dp1 > 0.0 && dp2 > 0.0);
  return (support_count - n * first.q * dp2 - n * second.q) / (n * dp1 * dp2);
}

std::vector<double> EstimateFrequenciesChained(
    const std::vector<double>& counts, double n, const PerturbParams& first,
    const PerturbParams& second) {
  std::vector<double> estimates(counts.size());
  for (size_t v = 0; v < counts.size(); ++v) {
    estimates[v] = EstimateFrequencyChained(counts[v], n, first, second);
  }
  return estimates;
}

double ExactVariance(double n, double f, const PerturbParams& first,
                     const PerturbParams& second) {
  LOLOHA_CHECK(n > 0.0);
  const double dp1 = first.p - first.q;
  const double dp2 = second.p - second.q;
  LOLOHA_CHECK(dp1 > 0.0 && dp2 > 0.0);
  // gamma is the marginal support probability: the chained mechanism keeps
  // support with p_s for the f fraction of users holding v and creates
  // spurious support with q_s for the rest (Eq. 4).
  const PerturbParams collapsed = CollapseChain(first, second);
  const double gamma = f * (collapsed.p - collapsed.q) + collapsed.q;
  return gamma * (1.0 - gamma) / (n * dp1 * dp1 * dp2 * dp2);
}

double ApproximateVariance(double n, const PerturbParams& first,
                           const PerturbParams& second) {
  return ExactVariance(n, 0.0, first, second);
}

double OneRoundVariance(double n, double f, const PerturbParams& params) {
  LOLOHA_CHECK(n > 0.0);
  LOLOHA_CHECK(ValidParams(params));
  const double gamma = f * (params.p - params.q) + params.q;
  const double dp = params.p - params.q;
  return gamma * (1.0 - gamma) / (n * dp * dp);
}

}  // namespace loloha

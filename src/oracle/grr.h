// Generalized Randomized Response (GRR), Sec. 2.3.1.
//
// The client reports its true value v with probability p = e^eps/(e^eps+k-1)
// and a uniformly random *other* value with the remaining probability. The
// server counts reports per value and inverts with Eq. (1).

#ifndef LOLOHA_ORACLE_GRR_H_
#define LOLOHA_ORACLE_GRR_H_

#include <cstdint>
#include <vector>

#include "oracle/params.h"
#include "util/rng.h"

namespace loloha {

// Client-side randomizer. Stateless apart from its parameters; one instance
// can serve any number of users.
class GrrClient {
 public:
  GrrClient(uint32_t k, double epsilon);

  // Perturbs one value in [0, k) — the mechanism M_GRR(v; eps).
  uint32_t Perturb(uint32_t value, Rng& rng) const;

  uint32_t k() const { return k_; }
  double epsilon() const { return epsilon_; }
  const PerturbParams& params() const { return params_; }

 private:
  uint32_t k_;
  double epsilon_;
  PerturbParams params_;
};

// Server-side aggregator: accumulates reports, then estimates the k-bin
// frequency histogram.
class GrrServer {
 public:
  GrrServer(uint32_t k, double epsilon);

  void Accumulate(uint32_t report);

  // Unbiased frequency estimates over all accumulated reports (Eq. 1).
  std::vector<double> Estimate() const;

  uint64_t num_reports() const { return num_reports_; }
  void Reset();

 private:
  uint32_t k_;
  PerturbParams params_;
  std::vector<uint64_t> counts_;
  uint64_t num_reports_ = 0;
};

}  // namespace loloha

#endif  // LOLOHA_ORACLE_GRR_H_

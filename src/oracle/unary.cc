#include "oracle/unary.h"

#include "oracle/estimator.h"
#include "util/check.h"
#include "util/simd.h"

namespace loloha {

namespace {

PerturbParams UeParamsFor(double epsilon, UeKind kind) {
  return kind == UeKind::kSymmetric ? SueParams(epsilon) : OueParams(epsilon);
}

}  // namespace

UeClient::UeClient(uint32_t k, double epsilon, UeKind kind)
    : UeClient(k, UeParamsFor(epsilon, kind)) {}

UeClient::UeClient(uint32_t k, PerturbParams params)
    : k_(k), params_(params) {
  LOLOHA_CHECK(k >= 2);
  LOLOHA_CHECK(ValidParams(params));
}

std::vector<uint8_t> UeClient::Perturb(uint32_t value, Rng& rng) const {
  LOLOHA_DCHECK(value < k_);
  std::vector<uint8_t> report(k_);
  for (uint32_t i = 0; i < k_; ++i) {
    const double prob = (i == value) ? params_.p : params_.q;
    report[i] = rng.Bernoulli(prob) ? 1 : 0;
  }
  return report;
}

std::vector<uint8_t> UeClient::PerturbVector(const std::vector<uint8_t>& bits,
                                             Rng& rng) const {
  LOLOHA_CHECK(bits.size() == k_);
  std::vector<uint8_t> report(k_);
  for (uint32_t i = 0; i < k_; ++i) {
    const double prob = bits[i] ? params_.p : params_.q;
    report[i] = rng.Bernoulli(prob) ? 1 : 0;
  }
  return report;
}

UeServer::UeServer(uint32_t k, double epsilon, UeKind kind)
    : UeServer(k, UeParamsFor(epsilon, kind)) {}

UeServer::UeServer(uint32_t k, PerturbParams params)
    : k_(k), params_(params), counts_(k, 0) {
  LOLOHA_CHECK(ValidParams(params));
}

void UeServer::Accumulate(const std::vector<uint8_t>& report) {
  LOLOHA_CHECK(report.size() == k_);
  for (uint32_t i = 0; i < k_; ++i) counts_[i] += report[i];
  ++num_reports_;
}

void UeServer::AccumulateBatch(const uint8_t* reports, size_t num_reports) {
  std::vector<uint16_t> scratch(k_);
  SumColumnsU8(reports, num_reports, k_, counts_.data(), scratch.data());
  num_reports_ += num_reports;
}

std::vector<double> UeServer::Estimate() const {
  LOLOHA_CHECK_MSG(num_reports_ > 0, "no reports accumulated");
  std::vector<double> estimates(k_);
  const double n = static_cast<double>(num_reports_);
  for (uint32_t v = 0; v < k_; ++v) {
    estimates[v] =
        EstimateFrequency(static_cast<double>(counts_[v]), n, params_);
  }
  return estimates;
}

void UeServer::Reset() {
  counts_.assign(k_, 0);
  num_reports_ = 0;
}

}  // namespace loloha

#include "oracle/local_hash.h"

#include "oracle/estimator.h"
#include "util/check.h"

namespace loloha {

LhClient::LhClient(uint32_t k, uint32_t g, double epsilon)
    : k_(k), g_(g), params_(LhParams(epsilon, g)) {
  LOLOHA_CHECK(k >= 2);
  LOLOHA_CHECK(g >= 2);
}

LhReport LhClient::Perturb(uint32_t value, Rng& rng) const {
  LOLOHA_DCHECK(value < k_);
  LhReport report;
  report.hash = UniversalHash::Sample(g_, rng);
  report.cell = PerturbCell(report.hash(value), rng);
  return report;
}

uint32_t LhClient::PerturbCell(uint32_t cell, Rng& rng) const {
  LOLOHA_DCHECK(cell < g_);
  if (rng.Bernoulli(params_.p)) return cell;
  return static_cast<uint32_t>(rng.UniformIntExcluding(g_, cell));
}

LhServer::LhServer(uint32_t k, uint32_t g, double epsilon)
    : k_(k), g_(g), support_(k, 0) {
  const PerturbParams mech = LhParams(epsilon, g);
  estimator_params_.p = mech.p;
  estimator_params_.q = 1.0 / static_cast<double>(g);
}

void LhServer::Accumulate(const LhReport& report) {
  LOLOHA_CHECK(report.hash.range() == g_);
  LOLOHA_CHECK(report.cell < g_);
  for (uint32_t v = 0; v < k_; ++v) {
    if (report.hash(v) == report.cell) ++support_[v];
  }
  ++num_reports_;
}

std::vector<double> LhServer::Estimate() const {
  LOLOHA_CHECK_MSG(num_reports_ > 0, "no reports accumulated");
  std::vector<double> estimates(k_);
  const double n = static_cast<double>(num_reports_);
  for (uint32_t v = 0; v < k_; ++v) {
    estimates[v] = EstimateFrequency(static_cast<double>(support_[v]), n,
                                     estimator_params_);
  }
  return estimates;
}

void LhServer::Reset() {
  support_.assign(k_, 0);
  num_reports_ = 0;
}

LhClient MakeBlhClient(uint32_t k, double epsilon) {
  return LhClient(k, 2, epsilon);
}

LhClient MakeOlhClient(uint32_t k, double epsilon) {
  return LhClient(k, OlhRange(epsilon), epsilon);
}

LhServer MakeBlhServer(uint32_t k, double epsilon) {
  return LhServer(k, 2, epsilon);
}

LhServer MakeOlhServer(uint32_t k, double epsilon) {
  return LhServer(k, OlhRange(epsilon), epsilon);
}

}  // namespace loloha

// Perturbation parameters for the one-shot LDP frequency oracles of
// Sec. 2.3: GRR, Unary Encoding (SUE/OUE) and Local Hashing (BLH/OLH).
//
// Every oracle in this library is characterized by a pair (p, q):
//   p = Pr[the "true" position is reported as set/kept]
//   q = Pr[a "false" position is reported as set / the value flips to a
//       specific other value]
// and all estimators are instances of Eq. (1):
//   f_hat(v) = (C(v) - n*q) / (n * (p - q)).

#ifndef LOLOHA_ORACLE_PARAMS_H_
#define LOLOHA_ORACLE_PARAMS_H_

#include <cstdint>

namespace loloha {

// A (p, q) perturbation pair. Valid parameters satisfy 0 < q < p < 1.
struct PerturbParams {
  double p = 0.0;
  double q = 0.0;
};

// GRR over a domain of size k: p = e^eps / (e^eps + k - 1),
// q = (1 - p) / (k - 1) = 1 / (e^eps + k - 1). Requires k >= 2, eps > 0.
PerturbParams GrrParams(double epsilon, uint32_t k);

// Symmetric Unary Encoding (SUE, the RAPPOR default):
// p = e^{eps/2} / (e^{eps/2} + 1), q = 1 - p.
PerturbParams SueParams(double epsilon);

// Optimized Unary Encoding (OUE): p = 1/2, q = 1 / (e^eps + 1).
PerturbParams OueParams(double epsilon);

// Local Hashing over a hash range of size g: identical in form to GRR over
// the reduced domain: p = e^eps / (e^eps + g - 1), q = 1 / (e^eps + g - 1).
PerturbParams LhParams(double epsilon, uint32_t g);

// Optimal LH hash-range size: g = round(e^eps + 1), but never below 2
// (Wang et al., USENIX Security 2017).
uint32_t OlhRange(double epsilon);

// Inverse maps: the epsilon actually satisfied by a (p, q) pair.
// For GRR-style (k-ary value flip) mechanisms: eps = ln(p / q).
double GrrEpsilon(const PerturbParams& params);
// For UE-style (independent bit flip) mechanisms:
// eps = ln( p (1 - q) / ((1 - p) q) ).
double UeEpsilon(const PerturbParams& params);

// True if 0 < q < p < 1 (the estimator of Eq. (1) is then well defined).
bool ValidParams(const PerturbParams& params);

}  // namespace loloha

#endif  // LOLOHA_ORACLE_PARAMS_H_

#include "oracle/params.h"

#include <cmath>

#include "util/check.h"
#include "util/mathutil.h"

namespace loloha {

PerturbParams GrrParams(double epsilon, uint32_t k) {
  LOLOHA_CHECK_MSG(epsilon > 0.0, "epsilon must be positive");
  LOLOHA_CHECK_MSG(k >= 2, "GRR needs a domain of size >= 2");
  const double e = std::exp(epsilon);
  PerturbParams params;
  params.p = e / (e + static_cast<double>(k) - 1.0);
  params.q = 1.0 / (e + static_cast<double>(k) - 1.0);
  return params;
}

PerturbParams SueParams(double epsilon) {
  LOLOHA_CHECK_MSG(epsilon > 0.0, "epsilon must be positive");
  const double e_half = std::exp(epsilon / 2.0);
  PerturbParams params;
  params.p = e_half / (e_half + 1.0);
  params.q = 1.0 / (e_half + 1.0);
  return params;
}

PerturbParams OueParams(double epsilon) {
  LOLOHA_CHECK_MSG(epsilon > 0.0, "epsilon must be positive");
  PerturbParams params;
  params.p = 0.5;
  params.q = 1.0 / (std::exp(epsilon) + 1.0);
  return params;
}

PerturbParams LhParams(double epsilon, uint32_t g) {
  return GrrParams(epsilon, g);
}

uint32_t OlhRange(double epsilon) {
  LOLOHA_CHECK_MSG(epsilon > 0.0, "epsilon must be positive");
  const int64_t g = RoundToNearest(std::exp(epsilon) + 1.0);
  return static_cast<uint32_t>(g < 2 ? 2 : g);
}

double GrrEpsilon(const PerturbParams& params) {
  LOLOHA_CHECK(ValidParams(params));
  return std::log(params.p / params.q);
}

double UeEpsilon(const PerturbParams& params) {
  LOLOHA_CHECK(ValidParams(params));
  return std::log(params.p * (1.0 - params.q) /
                  ((1.0 - params.p) * params.q));
}

bool ValidParams(const PerturbParams& params) {
  return params.q > 0.0 && params.p > params.q && params.p < 1.0;
}

}  // namespace loloha

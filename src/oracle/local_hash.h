// Local Hashing oracles (Sec. 2.3.2): BLH (g = 2) and OLH (g = e^eps + 1).
//
// Each user draws a universal hash H : V -> [0, g), hashes its value, and
// perturbs the hash cell with GRR over [0, g). The report is the pair
// <H, x''>. The server counts, for each v, how many users "support" v —
// i.e. H_u(v) == x''_u — and inverts Eq. (1) with p = e^eps/(e^eps+g-1)
// and q = 1/g (the support probability of a non-holder under a universal
// family).

#ifndef LOLOHA_ORACLE_LOCAL_HASH_H_
#define LOLOHA_ORACLE_LOCAL_HASH_H_

#include <cstdint>
#include <vector>

#include "oracle/params.h"
#include "util/hash.h"
#include "util/rng.h"

namespace loloha {

// One LH report: the user's hash function and the perturbed hash cell.
struct LhReport {
  UniversalHash hash;
  uint32_t cell = 0;
};

class LhClient {
 public:
  // g >= 2 is the hash range; BLH uses g = 2, OLH uses OlhRange(eps).
  LhClient(uint32_t k, uint32_t g, double epsilon);

  // Draws a fresh hash function and perturbs H(value) with GRR over [0, g).
  LhReport Perturb(uint32_t value, Rng& rng) const;

  // Perturbs under a caller-supplied hash function (the longitudinal
  // protocols fix one hash per user).
  uint32_t PerturbCell(uint32_t cell, Rng& rng) const;

  uint32_t k() const { return k_; }
  uint32_t g() const { return g_; }
  const PerturbParams& params() const { return params_; }

 private:
  uint32_t k_;
  uint32_t g_;
  PerturbParams params_;
};

class LhServer {
 public:
  LhServer(uint32_t k, uint32_t g, double epsilon);

  // O(k): evaluates the report's hash on every domain value.
  void Accumulate(const LhReport& report);

  std::vector<double> Estimate() const;

  uint64_t num_reports() const { return num_reports_; }
  void Reset();

 private:
  uint32_t k_;
  uint32_t g_;
  PerturbParams estimator_params_;  // p = GRR p over g, q = 1/g
  std::vector<uint64_t> support_;
  uint64_t num_reports_ = 0;
};

// Convenience constructors matching the paper's named variants.
LhClient MakeBlhClient(uint32_t k, double epsilon);
LhClient MakeOlhClient(uint32_t k, double epsilon);
LhServer MakeBlhServer(uint32_t k, double epsilon);
LhServer MakeOlhServer(uint32_t k, double epsilon);

}  // namespace loloha

#endif  // LOLOHA_ORACLE_LOCAL_HASH_H_

#include "oracle/grr.h"

#include "oracle/estimator.h"
#include "util/check.h"

namespace loloha {

GrrClient::GrrClient(uint32_t k, double epsilon)
    : k_(k), epsilon_(epsilon), params_(GrrParams(epsilon, k)) {}

uint32_t GrrClient::Perturb(uint32_t value, Rng& rng) const {
  LOLOHA_DCHECK(value < k_);
  if (rng.Bernoulli(params_.p)) return value;
  return static_cast<uint32_t>(rng.UniformIntExcluding(k_, value));
}

GrrServer::GrrServer(uint32_t k, double epsilon)
    : k_(k), params_(GrrParams(epsilon, k)), counts_(k, 0) {}

void GrrServer::Accumulate(uint32_t report) {
  LOLOHA_CHECK(report < k_);
  ++counts_[report];
  ++num_reports_;
}

std::vector<double> GrrServer::Estimate() const {
  LOLOHA_CHECK_MSG(num_reports_ > 0, "no reports accumulated");
  std::vector<double> estimates(k_);
  const double n = static_cast<double>(num_reports_);
  for (uint32_t v = 0; v < k_; ++v) {
    estimates[v] =
        EstimateFrequency(static_cast<double>(counts_[v]), n, params_);
  }
  return estimates;
}

void GrrServer::Reset() {
  counts_.assign(k_, 0);
  num_reports_ = 0;
}

}  // namespace loloha

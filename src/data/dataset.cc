#include "data/dataset.h"

#include <unordered_set>

#include "util/histogram.h"

namespace loloha {

Dataset::Dataset(std::string name, uint32_t k, uint32_t n, uint32_t tau)
    : name_(std::move(name)),
      k_(k),
      n_(n),
      tau_(tau),
      values_(static_cast<size_t>(n) * tau, 0) {
  LOLOHA_CHECK(k >= 2);
  LOLOHA_CHECK(n >= 1);
  LOLOHA_CHECK(tau >= 1);
}

std::vector<uint32_t> Dataset::StepValues(uint32_t t) const {
  const uint32_t* data = StepValuesData(t);
  return std::vector<uint32_t>(data, data + n_);
}

std::vector<uint32_t> Dataset::UserSequence(uint32_t user) const {
  LOLOHA_CHECK(user < n_);
  std::vector<uint32_t> seq(tau_);
  for (uint32_t t = 0; t < tau_; ++t) seq[t] = value(user, t);
  return seq;
}

std::vector<double> Dataset::TrueFrequenciesAt(uint32_t t) const {
  return TrueFrequencies(StepValues(t), k_);
}

double Dataset::AverageChangeRate() const {
  if (tau_ < 2) return 0.0;
  uint64_t changes = 0;
  for (uint32_t t = 1; t < tau_; ++t) {
    const uint32_t* prev = StepValuesData(t - 1);
    const uint32_t* cur = StepValuesData(t);
    for (uint32_t u = 0; u < n_; ++u) changes += (prev[u] != cur[u]) ? 1 : 0;
  }
  return static_cast<double>(changes) /
         (static_cast<double>(n_) * (tau_ - 1));
}

double Dataset::MeanDistinctValuesPerUser() const {
  uint64_t total = 0;
  std::unordered_set<uint32_t> seen;
  for (uint32_t u = 0; u < n_; ++u) {
    seen.clear();
    for (uint32_t t = 0; t < tau_; ++t) seen.insert(value(u, t));
    total += seen.size();
  }
  return static_cast<double>(total) / n_;
}

uint32_t Dataset::DistinctValuesGlobal() const {
  std::unordered_set<uint32_t> seen(values_.begin(), values_.end());
  return static_cast<uint32_t>(seen.size());
}

}  // namespace loloha

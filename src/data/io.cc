#include "data/io.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace loloha {

namespace {

// Parses a base-10 integer; returns false on any trailing garbage.
bool ParseInt(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

std::string Strip(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

// Sorted-unique dictionary encoding of arbitrary integer codes.
std::vector<uint32_t> DictionaryEncode(const std::vector<int64_t>& raw,
                                       uint32_t* k_out) {
  std::vector<int64_t> dictionary(raw);
  std::sort(dictionary.begin(), dictionary.end());
  dictionary.erase(std::unique(dictionary.begin(), dictionary.end()),
                   dictionary.end());
  *k_out = static_cast<uint32_t>(dictionary.size());
  std::vector<uint32_t> encoded(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    encoded[i] = static_cast<uint32_t>(
        std::lower_bound(dictionary.begin(), dictionary.end(), raw[i]) -
        dictionary.begin());
  }
  return encoded;
}

}  // namespace

bool SaveDatasetCsv(const Dataset& data, const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  for (uint32_t u = 0; u < data.n(); ++u) {
    for (uint32_t t = 0; t < data.tau(); ++t) {
      if (t > 0) file << ',';
      file << data.value(u, t);
    }
    file << '\n';
  }
  return static_cast<bool>(file);
}

std::optional<Dataset> LoadDatasetCsv(const std::string& path,
                                      const std::string& name) {
  std::ifstream file(path);
  if (!file) return std::nullopt;

  std::vector<int64_t> raw;
  size_t tau = 0;
  size_t rows = 0;
  std::string line;
  while (std::getline(file, line)) {
    const std::string stripped = Strip(line);
    if (stripped.empty()) continue;
    std::stringstream cells(stripped);
    std::string cell;
    size_t row_width = 0;
    while (std::getline(cells, cell, ',')) {
      int64_t v = 0;
      if (!ParseInt(Strip(cell), &v)) return std::nullopt;
      raw.push_back(v);
      ++row_width;
    }
    if (rows == 0) {
      tau = row_width;
    } else if (row_width != tau) {
      return std::nullopt;  // ragged
    }
    ++rows;
  }
  if (rows == 0 || tau == 0) return std::nullopt;

  uint32_t k = 0;
  const std::vector<uint32_t> encoded = DictionaryEncode(raw, &k);
  if (k < 2) return std::nullopt;  // degenerate domain

  Dataset data(name, k, static_cast<uint32_t>(rows),
               static_cast<uint32_t>(tau));
  for (uint32_t u = 0; u < rows; ++u) {
    for (uint32_t t = 0; t < tau; ++t) {
      data.set_value(u, static_cast<uint32_t>(t),
                     encoded[u * tau + t]);
    }
  }
  return data;
}

std::optional<std::vector<int64_t>> LoadColumn(const std::string& path) {
  std::ifstream file(path);
  if (!file) return std::nullopt;
  std::vector<int64_t> column;
  std::string line;
  while (std::getline(file, line)) {
    const std::string stripped = Strip(line);
    if (stripped.empty()) continue;
    int64_t v = 0;
    if (!ParseInt(stripped, &v)) return std::nullopt;
    column.push_back(v);
  }
  if (column.empty()) return std::nullopt;
  return column;
}

Dataset ExpandColumnByPermutation(const std::vector<int64_t>& column,
                                  uint32_t tau, const std::string& name,
                                  uint64_t seed) {
  LOLOHA_CHECK(!column.empty());
  LOLOHA_CHECK(tau >= 1);
  uint32_t k = 0;
  std::vector<uint32_t> encoded = DictionaryEncode(column, &k);
  LOLOHA_CHECK_MSG(k >= 2, "column has fewer than two distinct values");

  const uint32_t n = static_cast<uint32_t>(column.size());
  Dataset data(name, k, n, tau);
  Rng rng(seed);
  std::vector<uint32_t> perm(encoded);
  for (uint32_t t = 0; t < tau; ++t) {
    for (uint32_t i = n - 1; i > 0; --i) {
      const uint32_t j = static_cast<uint32_t>(rng.UniformInt(i + 1));
      std::swap(perm[i], perm[j]);
    }
    for (uint32_t u = 0; u < n; ++u) data.set_value(u, t, perm[u]);
  }
  return data;
}

}  // namespace loloha

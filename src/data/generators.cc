#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/alias_sampler.h"
#include "util/check.h"
#include "util/rng.h"

namespace loloha {

namespace {

// Standard normal via Box-Muller (only used by the generators, off the
// simulation hot path).
double SampleNormal(Rng& rng) {
  const double u1 = 1.0 - rng.UniformDouble();  // avoid log(0)
  const double u2 = rng.UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

}  // namespace

Dataset GenerateSyn(uint32_t n, uint32_t k, uint32_t tau, double p_change,
                    uint64_t seed) {
  LOLOHA_CHECK(p_change >= 0.0 && p_change <= 1.0);
  Dataset data("Syn", k, n, tau);
  Rng rng(seed);
  for (uint32_t u = 0; u < n; ++u) {
    uint32_t v = static_cast<uint32_t>(rng.UniformInt(k));
    data.set_value(u, 0, v);
    for (uint32_t t = 1; t < tau; ++t) {
      if (rng.Bernoulli(p_change)) {
        v = static_cast<uint32_t>(rng.UniformInt(k));
      }
      data.set_value(u, t, v);
    }
  }
  return data;
}

Dataset GenerateSynPaper(uint64_t seed) {
  return GenerateSyn(/*n=*/10000, /*k=*/360, /*tau=*/120, /*p_change=*/0.25,
                     seed);
}

Dataset GenerateAdultLike(uint32_t n, uint32_t tau, uint64_t seed) {
  // Hours-per-week marginal over the 96 distinct values observed in UCI
  // Adult (1..99 minus a few gaps; we simply use 96 consecutive codes).
  // The shape reproduces the documented concentration: ~46% at 40h,
  // secondary spikes at round numbers, thin tails at both extremes.
  constexpr uint32_t kDomain = 96;
  std::vector<double> weights(kDomain, 0.0);
  for (uint32_t h = 0; h < kDomain; ++h) {
    const double hours = static_cast<double>(h) + 1.0;  // 1..96
    // Smooth bell around full-time work.
    double w = std::exp(-0.5 * std::pow((hours - 41.0) / 12.0, 2.0));
    // Part-time shoulder.
    w += 0.25 * std::exp(-0.5 * std::pow((hours - 22.0) / 8.0, 2.0));
    weights[h] = w;
  }
  // Round-number spikes (hours 20, 25, 30, 35, 38, 45, 50, 55, 60 -> codes
  // h-1), with the dominant 40h spike.
  const std::pair<uint32_t, double> spikes[] = {
      {19, 2.0}, {24, 1.2}, {29, 2.5}, {34, 1.8}, {37, 1.5},
      {39, 30.0}, {44, 2.2}, {49, 4.0}, {54, 1.0}, {59, 1.6}};
  for (const auto& [code, boost] : spikes) weights[code] += boost;

  Dataset data("Adult", kDomain, n, tau);
  Rng rng(seed);
  AliasSampler sampler(weights);

  // Fixed population multiset: the paper re-permutes the same attribute
  // column at every collection, so the global histogram never changes.
  std::vector<uint32_t> base(n);
  for (uint32_t u = 0; u < n; ++u) base[u] = sampler.Sample(rng);

  std::vector<uint32_t> perm(base);
  for (uint32_t t = 0; t < tau; ++t) {
    // Fisher-Yates shuffle == the paper's random permutation per step.
    for (uint32_t i = n - 1; i > 0; --i) {
      const uint32_t j = static_cast<uint32_t>(rng.UniformInt(i + 1));
      std::swap(perm[i], perm[j]);
    }
    for (uint32_t u = 0; u < n; ++u) data.set_value(u, t, perm[u]);
  }
  return data;
}

Dataset GenerateAdultLikePaper(uint64_t seed) {
  return GenerateAdultLike(/*n=*/45222, /*tau=*/260, seed);
}

Dataset GenerateReplicateWeights(const char* name, uint32_t n, uint32_t tau,
                                 double spread, uint32_t granularity,
                                 uint64_t seed) {
  LOLOHA_CHECK(granularity >= 1);
  Rng rng(seed);

  // Raw counters: per-user log-normal base weight, per-(user, step)
  // multiplicative jitter — the structure of ACS person replicate weights
  // (80 perturbed copies of a base sampling weight).
  const double mu = std::log(300.0);
  const double sigma = 0.85;
  std::vector<uint32_t> raw(static_cast<size_t>(n) * tau);
  for (uint32_t u = 0; u < n; ++u) {
    const double base = std::exp(mu + sigma * SampleNormal(rng));
    for (uint32_t t = 0; t < tau; ++t) {
      const double jitter = 1.0 + spread * SampleNormal(rng);
      double w = base * std::max(jitter, 0.05);
      w = std::max(w, 1.0);
      w = std::min(w, 6000.0);
      const uint32_t quantized =
          static_cast<uint32_t>(std::llround(w / granularity));
      raw[static_cast<size_t>(u) * tau + t] = quantized;
    }
  }

  // Dictionary-encode the quantized counters into [0, k).
  std::vector<uint32_t> dictionary(raw);
  std::sort(dictionary.begin(), dictionary.end());
  dictionary.erase(std::unique(dictionary.begin(), dictionary.end()),
                   dictionary.end());
  const uint32_t k = static_cast<uint32_t>(dictionary.size());

  Dataset data(name, k, n, tau);
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t t = 0; t < tau; ++t) {
      const uint32_t raw_value = raw[static_cast<size_t>(u) * tau + t];
      const uint32_t id = static_cast<uint32_t>(
          std::lower_bound(dictionary.begin(), dictionary.end(), raw_value) -
          dictionary.begin());
      data.set_value(u, t, id);
    }
  }
  return data;
}

Dataset GenerateDbMtPaper(uint64_t seed) {
  // Granularity/spread calibrated so the dictionary-encoded domain lands
  // near the paper's k = 1412 (and above DB_DE's, as in the paper).
  return GenerateReplicateWeights("DB_MT", /*n=*/10336, /*tau=*/80,
                                  /*spread=*/0.06, /*granularity=*/3, seed);
}

Dataset GenerateDbDePaper(uint64_t seed) {
  // Calibrated near the paper's k = 1234.
  return GenerateReplicateWeights("DB_DE", /*n=*/9123, /*tau=*/80,
                                  /*spread=*/0.055, /*granularity=*/4, seed);
}

Dataset GenerateZipf(uint32_t n, uint32_t k, uint32_t tau, double s,
                     double p_change, uint64_t seed) {
  LOLOHA_CHECK(s >= 0.0);
  std::vector<double> weights(k);
  for (uint32_t v = 0; v < k; ++v) {
    weights[v] = std::pow(static_cast<double>(v) + 1.0, -s);
  }
  AliasSampler sampler(weights);
  Dataset data("Zipf", k, n, tau);
  Rng rng(seed);
  for (uint32_t u = 0; u < n; ++u) {
    uint32_t v = sampler.Sample(rng);
    data.set_value(u, 0, v);
    for (uint32_t t = 1; t < tau; ++t) {
      if (rng.Bernoulli(p_change)) v = sampler.Sample(rng);
      data.set_value(u, t, v);
    }
  }
  return data;
}

Dataset GenerateStatic(uint32_t n, uint32_t k, uint32_t tau, double s,
                       uint64_t seed) {
  Dataset data = GenerateZipf(n, k, tau, s, /*p_change=*/0.0, seed);
  return data;
}

}  // namespace loloha

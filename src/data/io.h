// Dataset import/export. The evaluation datasets are generated in-process
// (see generators.h), but a deployment — or a user who has the real UCI
// Adult / folktables files — can load longitudinal data from CSV:
//
//   * Matrix form: one row per user, tau comma-separated integer values.
//   * Column form: one integer per line (a single attribute snapshot);
//     `ExpandColumnByPermutation` then reproduces the paper's Adult
//     protocol of re-permuting the column at every collection step.
//
// Values are dictionary-encoded into [0, k) in order of first appearance
// sorted numerically, so arbitrary integer codes are accepted.

#ifndef LOLOHA_DATA_IO_H_
#define LOLOHA_DATA_IO_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace loloha {

// Writes `data` as CSV (one row per user). Returns false on I/O failure.
bool SaveDatasetCsv(const Dataset& data, const std::string& path);

// Loads a matrix-form CSV. Returns nullopt on I/O failure, ragged rows,
// or non-integer cells. `name` labels the resulting dataset.
std::optional<Dataset> LoadDatasetCsv(const std::string& path,
                                      const std::string& name);

// Loads a single-column file of integers (one per line).
std::optional<std::vector<int64_t>> LoadColumn(const std::string& path);

// The paper's Adult protocol: dictionary-encodes `column` (n entries) and
// assigns each user a random permutation entry at every one of `tau`
// steps, keeping the global histogram constant.
Dataset ExpandColumnByPermutation(const std::vector<int64_t>& column,
                                  uint32_t tau, const std::string& name,
                                  uint64_t seed);

}  // namespace loloha

#endif  // LOLOHA_DATA_IO_H_

// Workload generators reproducing the paper's four evaluation datasets
// (Sec. 5.1) plus generic extras.
//
// * Syn — exactly the paper's synthetic telemetry workload: k = 360
//   (minutes in 6 hours), uniform initial value, then at every step each
//   user redraws uniformly with probability p_ch = 0.25.
// * Adult-like — substitution for UCI Adult "hours-per-week" (offline
//   environment; see DESIGN.md): a fixed skewed marginal over 96 distinct
//   hour values with the documented mass concentration at 40h, re-permuted
//   across users at every step exactly as the paper does, so the global
//   histogram is constant while every user's sequence changes randomly.
// * Replicate-weight — substitution for folktables ACS PWGTP1..80
//   (DB_MT / DB_DE): per-user heavy-tailed base counters with
//   multiplicative per-step jitter, dictionary-encoded so the global
//   domain lands near the paper's k.
// * Zipf — generic skewed workload for examples and ablations.

#ifndef LOLOHA_DATA_GENERATORS_H_
#define LOLOHA_DATA_GENERATORS_H_

#include <cstdint>

#include "data/dataset.h"

namespace loloha {

// Paper defaults: n = 10000, k = 360, tau = 120, p_change = 0.25.
Dataset GenerateSyn(uint32_t n, uint32_t k, uint32_t tau, double p_change,
                    uint64_t seed);
Dataset GenerateSynPaper(uint64_t seed);

// Paper defaults: n = 45222, tau = 260; k is fixed at 96 by the marginal.
Dataset GenerateAdultLike(uint32_t n, uint32_t tau, uint64_t seed);
Dataset GenerateAdultLikePaper(uint64_t seed);

// Replicate-weight counters. `spread` scales the per-step multiplicative
// jitter; `granularity` controls the quantization (smaller -> more distinct
// values). The dataset's k is data-driven (dictionary-encoded); the presets
// below land near the paper's k = 1412 (MT) and k = 1234 (DE).
Dataset GenerateReplicateWeights(const char* name, uint32_t n, uint32_t tau,
                                 double spread, uint32_t granularity,
                                 uint64_t seed);
// DB_MT-like: n = 10336, tau = 80.
Dataset GenerateDbMtPaper(uint64_t seed);
// DB_DE-like: n = 9123, tau = 80.
Dataset GenerateDbDePaper(uint64_t seed);

// Zipf(s) marginal with per-step change probability p_change (redraw from
// the marginal on change).
Dataset GenerateZipf(uint32_t n, uint32_t k, uint32_t tau, double s,
                     double p_change, uint64_t seed);

// A dataset where every user keeps one constant value drawn from a Zipf
// marginal — the "static data" regime in which memoization protocols leak
// exactly one ε∞ (used in tests and the memoization ablation).
Dataset GenerateStatic(uint32_t n, uint32_t k, uint32_t tau, double s,
                       uint64_t seed);

}  // namespace loloha

#endif  // LOLOHA_DATA_GENERATORS_H_

// The longitudinal dataset substrate: n users × τ collection steps of
// categorical values over [0, k), stored time-major (the simulation engine
// iterates steps in the outer loop), plus derived statistics used by the
// evaluation (true per-step histograms, change rates, distinct values per
// user).

#ifndef LOLOHA_DATA_DATASET_H_
#define LOLOHA_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.h"

namespace loloha {

class Dataset {
 public:
  Dataset(std::string name, uint32_t k, uint32_t n, uint32_t tau);

  const std::string& name() const { return name_; }
  uint32_t k() const { return k_; }
  uint32_t n() const { return n_; }
  uint32_t tau() const { return tau_; }

  uint32_t value(uint32_t user, uint32_t t) const {
    LOLOHA_DCHECK(user < n_ && t < tau_);
    return values_[static_cast<size_t>(t) * n_ + user];
  }

  void set_value(uint32_t user, uint32_t t, uint32_t v) {
    LOLOHA_DCHECK(user < n_ && t < tau_ && v < k_);
    values_[static_cast<size_t>(t) * n_ + user] = v;
  }

  // All users' values at step t (contiguous view).
  const uint32_t* StepValuesData(uint32_t t) const {
    LOLOHA_DCHECK(t < tau_);
    return &values_[static_cast<size_t>(t) * n_];
  }
  std::vector<uint32_t> StepValues(uint32_t t) const;

  // User u's full private sequence v^(u).
  std::vector<uint32_t> UserSequence(uint32_t user) const;

  // True frequency histogram {f(v)} at step t.
  std::vector<double> TrueFrequenciesAt(uint32_t t) const;

  // Fraction of (user, t>0) pairs whose value differs from t-1.
  double AverageChangeRate() const;

  // Mean over users of the number of distinct values in their sequence.
  double MeanDistinctValuesPerUser() const;

  // Values actually present anywhere in the data (for generators whose k
  // is data-driven).
  uint32_t DistinctValuesGlobal() const;

 private:
  std::string name_;
  uint32_t k_;
  uint32_t n_;
  uint32_t tau_;
  std::vector<uint32_t> values_;  // time-major: values_[t * n + u]
};

}  // namespace loloha

#endif  // LOLOHA_DATA_DATASET_H_

#include "core/loloha_params.h"

#include <algorithm>
#include <cmath>

#include "oracle/estimator.h"
#include "util/check.h"
#include "util/mathutil.h"

namespace loloha {

double LolohaIrrEpsilon(double eps_perm, double eps_first) {
  LOLOHA_CHECK_MSG(eps_perm > 0.0 && eps_first > 0.0 &&
                       eps_first < eps_perm,
                   "LOLOHA requires 0 < ε1 < ε∞");
  const double a = std::exp(eps_perm);
  const double c = std::exp(eps_first);
  return std::log((a * c - 1.0) / (a - c));
}

LolohaParams MakeLolohaParams(uint32_t k, uint32_t g, double eps_perm,
                              double eps_first) {
  LOLOHA_CHECK(k >= 2);
  LOLOHA_CHECK_MSG(g >= 2, "hash range g must be at least 2");
  LolohaParams params;
  params.k = k;
  params.g = g;
  params.eps_perm = eps_perm;
  params.eps_first = eps_first;
  params.eps_irr = LolohaIrrEpsilon(eps_perm, eps_first);
  params.prr = GrrParams(eps_perm, g);
  params.irr = GrrParams(params.eps_irr, g);
  return params;
}

uint32_t OptimalLolohaG(double eps_perm, double eps_first) {
  LOLOHA_CHECK_MSG(eps_perm > 0.0 && eps_first > 0.0 &&
                       eps_first < eps_perm,
                   "LOLOHA requires 0 < ε1 < ε∞");
  const double a = std::exp(eps_perm);
  const double b = std::exp(eps_first);
  const double disc = a * a * a * a - 14.0 * a * a +
                      12.0 * a * b * (1.0 - a * b) + 12.0 * a * a * a * b +
                      1.0;
  // The discriminant is positive wherever the continuous optimum exists;
  // clamp tiny negative values caused by rounding.
  const double root = std::sqrt(std::max(disc, 0.0));
  const double inner = (1.0 - a * a + root) / (6.0 * (a - b));
  const int64_t rounded = RoundToNearest(inner);
  const int64_t g = 1 + std::max<int64_t>(1, rounded);
  return static_cast<uint32_t>(g);
}

double LolohaApproximateVariance(double n, uint32_t g, double eps_perm,
                                 double eps_first) {
  const LolohaParams params = MakeLolohaParams(/*k=*/2, g, eps_perm,
                                               eps_first);
  return ApproximateVariance(n, params.EstimatorFirst(), params.irr);
}

uint32_t BruteForceOptimalG(double eps_perm, double eps_first, double n,
                            uint32_t g_max) {
  LOLOHA_CHECK(g_max >= 2);
  uint32_t best_g = 2;
  double best_v = LolohaApproximateVariance(n, 2, eps_perm, eps_first);
  for (uint32_t g = 3; g <= g_max; ++g) {
    const double v = LolohaApproximateVariance(n, g, eps_perm, eps_first);
    if (v < best_v) {
      best_v = v;
      best_g = g;
    }
  }
  return best_g;
}

LolohaParams MakeBiLolohaParams(uint32_t k, double eps_perm,
                                double eps_first) {
  return MakeLolohaParams(k, 2, eps_perm, eps_first);
}

LolohaParams MakeOLolohaParams(uint32_t k, double eps_perm,
                               double eps_first) {
  return MakeLolohaParams(k, OptimalLolohaG(eps_perm, eps_first), eps_perm,
                          eps_first);
}

double LolohaExactFirstReportEpsilon(const LolohaParams& params) {
  const double g = static_cast<double>(params.g);
  const double p1 = params.prr.p;
  const double q1 = params.prr.q;
  const double p2 = params.irr.p;
  const double q2 = params.irr.q;
  const double keep = p1 * p2 + (g - 1.0) * q1 * q2;
  const double flip = q1 * p2 + p1 * q2 + (g - 2.0) * q1 * q2;
  return std::log(keep / flip);
}

double LolohaMaxErrorBound(const LolohaParams& params, double n,
                           double beta) {
  LOLOHA_CHECK(n > 0.0);
  LOLOHA_CHECK(beta > 0.0 && beta < 1.0);
  const double dp1 = params.prr.p - 1.0 / static_cast<double>(params.g);
  const double dp2 = params.irr.p - params.irr.q;
  LOLOHA_CHECK(dp1 > 0.0 && dp2 > 0.0);
  return std::sqrt(static_cast<double>(params.k) /
                   (4.0 * n * beta * dp1 * dp2));
}

}  // namespace loloha

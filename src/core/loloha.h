// LOLOHA — LOngitudinal LOcal HAshing (Sec. 3 of the paper).
//
// Client (Algorithm 1): the user draws one universal hash H : V -> [0, g)
// forever, hashes each step's value, memoizes GRR(H(v); ε∞) per hash cell
// (PRR step) and reports a fresh GRR(x'; ε_IRR) of the memoized cell on
// every collection (IRR step).
//
// Server (Algorithm 2): for each value v, counts the users whose report
// equals their hash of v — the support count C(v) — and inverts the
// chained estimator Eq. (3) with q1' = 1/g.
//
// `LolohaClient`/`LolohaServer` are the deployment-shaped API;
// `LolohaPopulation` runs a whole fleet against a dataset efficiently
// (precomputed per-user hash rows) while remaining exactly the same
// mechanism, report for report.

#ifndef LOLOHA_CORE_LOLOHA_H_
#define LOLOHA_CORE_LOLOHA_H_

#include <cstdint>
#include <vector>

#include "core/loloha_params.h"
#include "util/hash.h"
#include "util/rng.h"

namespace loloha {

class ThreadPool;

// One user's stateful LOLOHA randomizer (Algorithm 1).
class LolohaClient {
 public:
  // Draws the user's permanent hash function from the universal family.
  LolohaClient(const LolohaParams& params, Rng& rng);

  // Sanitizes one step's true value; returns the reported cell in [0, g).
  uint32_t Report(uint32_t value, Rng& rng);

  // The user's fixed hash function (sent to the server once).
  const UniversalHash& hash() const { return hash_; }

  // Distinct hash cells memoized so far; the longitudinal loss under
  // Definition 3.2 is ε∞ times this, bounded by g (Thm. 3.5).
  uint32_t distinct_memos() const { return distinct_memos_; }

  const LolohaParams& params() const { return params_; }

 private:
  LolohaParams params_;
  UniversalHash hash_;
  std::vector<int32_t> memo_;  // cell -> memoized cell, or -1
  uint32_t distinct_memos_ = 0;
};

// Per-step aggregator (Algorithm 2).
class LolohaServer {
 public:
  explicit LolohaServer(const LolohaParams& params);

  void BeginStep();

  // O(k): evaluates the user's hash on every domain value and adds to the
  // support counts.
  void Accumulate(const UniversalHash& hash, uint32_t reported_cell);

  // Eq. (3) estimates (with q1' = 1/g) for the current step.
  std::vector<double> EstimateStep() const;

 private:
  LolohaParams params_;
  std::vector<uint64_t> support_;
  std::vector<uint16_t> row_scratch_;  // hash-row kernel staging (g < 2^16)
  uint64_t num_reports_ = 0;
};

// Simulation-grade fleet: n clients + server with per-user hash rows
// H_u(v) precomputed once (the dominant cost of Algorithm 2 otherwise).
class LolohaPopulation {
 public:
  LolohaPopulation(const LolohaParams& params, uint32_t n, Rng& rng);

  // Sharded construction: the per-user hash-row precompute (the n * k
  // table fill, the constructor's dominant cost) is split into
  // `num_shards` fixed user slices run on `pool`, each drawing its hash
  // coefficients from its own (seed, shard) stream. Bit-identical for any
  // pool size; changing `num_shards` changes which hashes are drawn
  // (never their distribution), like the sharded Step.
  LolohaPopulation(const LolohaParams& params, uint32_t n, uint64_t seed,
                   ThreadPool& pool, uint32_t num_shards);

  // Advances one collection step; returns the step's frequency estimates.
  std::vector<double> Step(const std::vector<uint32_t>& values, Rng& rng);

  // Sharded step: users are split into `num_shards` fixed slices, each
  // drawing from its own Rng stream derived from `step_seed`, and the
  // slices run on `pool`. Mechanism-identical in distribution to the
  // sequential overload, and bit-identical for any pool size (shard
  // layout, not thread count, determines every draw).
  std::vector<double> Step(const std::vector<uint32_t>& values,
                           uint64_t step_seed, ThreadPool& pool,
                           uint32_t num_shards);

  // Distinct hash cells memoized by user u.
  uint32_t DistinctMemos(uint32_t user) const;

  const LolohaParams& params() const { return params_; }
  uint32_t n() const { return n_; }

 private:
  // Runs users [begin, end) of one step, adding into `support` (length k).
  void StepUserRange(const std::vector<uint32_t>& values, uint64_t begin,
                     uint64_t end, Rng& rng, uint64_t* support);

  LolohaParams params_;
  uint32_t n_;
  // Row-major n x k table of H_u(v); g <= 32767 enforced at construction
  // (memoized cells must fit the int16 memo without going negative).
  std::vector<uint16_t> hash_rows_;
  std::vector<int16_t> memo_;          // n x g, -1 = not memoized
  std::vector<uint16_t> memo_counts_;  // distinct memos per user
};

}  // namespace loloha

#endif  // LOLOHA_CORE_LOLOHA_H_

// Closed-form theoretical quantities used by Sec. 4's comparison: the
// approximate variance V* of each protocol (Fig. 2), the dBitFlipPM
// one-round variance, and the Table-1 characteristics (communication bits,
// server run-time class, worst-case longitudinal budget).

#ifndef LOLOHA_CORE_THEORY_H_
#define LOLOHA_CORE_THEORY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace loloha {

// Protocols compared throughout Sec. 4-5.
enum class ProtocolId {
  kRappor,       // L-SUE [23]
  kLOsue,        // [5]
  kLSoue,        // [5] (extension; not plotted in the paper's figures)
  kLOue,         // [5] (extension)
  kLGrr,         // [5]
  kBiLoloha,     // LOLOHA, g = 2
  kOLoloha,      // LOLOHA, g from Eq. (6)
  kOneBitFlipPm, // dBitFlipPM, d = 1
  kBBitFlipPm,   // dBitFlipPM, d = b
  kNaiveOlh,     // Sec. 2.4 strawman: fresh one-shot OLH per step
};

// Display name matching the paper's legends.
std::string ProtocolName(ProtocolId id);

// Approximate variance V* (Eq. 5) of a two-round protocol, or the sampled
// one-round variance for dBitFlipPM variants. `k` doubles as b for the
// dBitFlipPM variants (the paper's figures use b = k there). ε1 = eps_first
// is ignored by the one-round dBitFlipPM protocols.
double ProtocolApproxVariance(ProtocolId id, double n, uint32_t k,
                              double eps_perm, double eps_first);

// dBitFlipPM approximate variance with explicit b and d:
// V* = q(1-q) / (n_eff (p-q)^2) with SUE-style (p, q) at ε∞ and
// n_eff = n d / b.
double DBitFlipApproxVariance(double n, uint32_t b, uint32_t d,
                              double eps_perm);

// Table 1 rows.
struct ProtocolCharacteristics {
  std::string name;
  double comm_bits_per_report = 0.0;  // per user per time step
  std::string server_runtime;         // symbolic, e.g. "n k"
  double worst_case_budget = 0.0;     // ε, under Definition 3.2
};

// `k` is the domain size; `b`, `d` parameterize the dBitFlipPM variants
// and are ignored otherwise; `g` is resolved internally for the LOLOHA
// variants.
ProtocolCharacteristics Characteristics(ProtocolId id, uint32_t k, uint32_t b,
                                        uint32_t d, double eps_perm,
                                        double eps_first);

// The protocols plotted in Fig. 2 (double-randomization protocols only).
std::vector<ProtocolId> Figure2Protocols();

}  // namespace loloha

#endif  // LOLOHA_CORE_THEORY_H_

// LOLOHA parameterization (Sec. 3).
//
// Given the longitudinal budget ε∞, the first-report budget ε1 (with
// 0 < ε1 < ε∞), and the hash range g >= 2:
//
//   ε_IRR = ln( (e^{ε∞+ε1} - 1) / (e^{ε∞} - e^{ε1}) )        (Alg. 1, l.3)
//   PRR:  p1 = e^{ε∞}/(e^{ε∞}+g-1),   q1 = 1/(e^{ε∞}+g-1)
//   IRR:  p2 = e^{ε_IRR}/(e^{ε_IRR}+g-1), q2 = 1/(e^{ε_IRR}+g-1)
//
// The server-side estimator replaces q1 by q1' = 1/g (the support
// probability of a non-holder under a universal hash family, Alg. 2).
//
// BiLOLOHA fixes g = 2 (strongest longitudinal protection, Thm. 3.5);
// OLOLOHA picks the variance-minimizing g of Eq. (6).

#ifndef LOLOHA_CORE_LOLOHA_PARAMS_H_
#define LOLOHA_CORE_LOLOHA_PARAMS_H_

#include <cstdint>

#include "oracle/params.h"

namespace loloha {

struct LolohaParams {
  uint32_t k = 0;         // original domain size
  uint32_t g = 2;         // reduced (hash) domain size
  double eps_perm = 0.0;  // ε∞: longitudinal budget per hash cell
  double eps_first = 0.0; // ε1: first-report budget
  double eps_irr = 0.0;   // derived IRR budget

  PerturbParams prr;  // (p1, q1) over [0, g)
  PerturbParams irr;  // (p2, q2) over [0, g)

  // Estimator-side first-round parameters: (p1, 1/g).
  PerturbParams EstimatorFirst() const {
    return PerturbParams{prr.p, 1.0 / static_cast<double>(g)};
  }

  // Worst-case longitudinal privacy on the users' values (Thm. 3.5): g·ε∞.
  double WorstCaseLongitudinalEpsilon() const {
    return static_cast<double>(g) * eps_perm;
  }
};

// The ε_IRR identity of Algorithm 1, line 3.
double LolohaIrrEpsilon(double eps_perm, double eps_first);

// Full parameter derivation; checks 0 < ε1 < ε∞, g >= 2, k >= 2.
LolohaParams MakeLolohaParams(uint32_t k, uint32_t g, double eps_perm,
                              double eps_first);

// Eq. (6): the g minimizing the approximate variance V*, as a function of
// a = e^{ε∞} and b = e^{ε1}:
//   g = 1 + max(1, round( (1 - a^2
//         + sqrt(a^4 - 14a^2 + 12ab(1 - ab) + 12a^3 b + 1)) / (6(a-b)) ))
uint32_t OptimalLolohaG(double eps_perm, double eps_first);

// Brute-force argmin of V* over g in [2, g_max] — used to validate Eq. (6)
// and for ablation studies.
uint32_t BruteForceOptimalG(double eps_perm, double eps_first, double n,
                            uint32_t g_max = 64);

// Approximate variance V* (Eq. 5) of LOLOHA with the given g, using the
// estimator-side parameters (p1, 1/g, p2, q2).
double LolohaApproximateVariance(double n, uint32_t g, double eps_perm,
                                 double eps_first);

// BiLOLOHA (g = 2) and OLOLOHA (g from Eq. 6) conveniences.
LolohaParams MakeBiLolohaParams(uint32_t k, double eps_perm,
                                double eps_first);
LolohaParams MakeOLolohaParams(uint32_t k, double eps_perm, double eps_first);

// The exact single-report epsilon of the full hash+PRR+IRR pipeline:
//   ln( (p1p2 + (g-1)q1q2) / (q1p2 + p1q2 + (g-2)q1q2) ).
// Theorem 3.4 upper-bounds this by ε1 (equality at g = 2).
double LolohaExactFirstReportEpsilon(const LolohaParams& params);

// Proposition 3.6: with probability >= 1 - beta,
//   max_v |f_hat(v) - f(v)| < sqrt( k / (4 n beta (p1 - 1/g)(p2 - q2)) ).
double LolohaMaxErrorBound(const LolohaParams& params, double n, double beta);

}  // namespace loloha

#endif  // LOLOHA_CORE_LOLOHA_PARAMS_H_

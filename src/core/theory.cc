#include "core/theory.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/loloha_params.h"
#include "longitudinal/chain.h"
#include "oracle/estimator.h"
#include "oracle/params.h"
#include "util/check.h"

namespace loloha {

std::string ProtocolName(ProtocolId id) {
  switch (id) {
    case ProtocolId::kRappor:
      return "RAPPOR";
    case ProtocolId::kLOsue:
      return "L-OSUE";
    case ProtocolId::kLSoue:
      return "L-SOUE";
    case ProtocolId::kLOue:
      return "L-OUE";
    case ProtocolId::kLGrr:
      return "L-GRR";
    case ProtocolId::kBiLoloha:
      return "BiLOLOHA";
    case ProtocolId::kOLoloha:
      return "OLOLOHA";
    case ProtocolId::kOneBitFlipPm:
      return "1BitFlipPM";
    case ProtocolId::kBBitFlipPm:
      return "bBitFlipPM";
    case ProtocolId::kNaiveOlh:
      return "Naive-OLH";
  }
  return "?";
}

double DBitFlipApproxVariance(double n, uint32_t b, uint32_t d,
                              double eps_perm) {
  LOLOHA_CHECK(n > 0.0);
  LOLOHA_CHECK(d >= 1 && d <= b);
  const PerturbParams params = SueParams(eps_perm);
  const double n_eff =
      n * static_cast<double>(d) / static_cast<double>(b);
  return OneRoundVariance(n_eff, /*f=*/0.0, params);
}

double ProtocolApproxVariance(ProtocolId id, double n, uint32_t k,
                              double eps_perm, double eps_first) {
  switch (id) {
    case ProtocolId::kRappor: {
      const ChainedParams chain = LSueChain(eps_perm, eps_first);
      return ApproximateVariance(n, chain.first, chain.second);
    }
    case ProtocolId::kLOsue: {
      const ChainedParams chain = LOsueChain(eps_perm, eps_first);
      return ApproximateVariance(n, chain.first, chain.second);
    }
    case ProtocolId::kLSoue: {
      const ChainedParams chain = LSoueChain(eps_perm, eps_first);
      return ApproximateVariance(n, chain.first, chain.second);
    }
    case ProtocolId::kLOue: {
      const ChainedParams chain = LOueChain(eps_perm, eps_first);
      return ApproximateVariance(n, chain.first, chain.second);
    }
    case ProtocolId::kLGrr: {
      const ChainedParams chain = LGrrChain(eps_perm, eps_first, k);
      return ApproximateVariance(n, chain.first, chain.second);
    }
    case ProtocolId::kBiLoloha:
      return LolohaApproximateVariance(n, 2, eps_perm, eps_first);
    case ProtocolId::kOLoloha:
      return LolohaApproximateVariance(
          n, OptimalLolohaG(eps_perm, eps_first), eps_perm, eps_first);
    case ProtocolId::kOneBitFlipPm:
      return DBitFlipApproxVariance(n, /*b=*/k, /*d=*/1, eps_perm);
    case ProtocolId::kBBitFlipPm:
      return DBitFlipApproxVariance(n, /*b=*/k, /*d=*/k, eps_perm);
    case ProtocolId::kNaiveOlh: {
      // One-shot OLH at eps_perm per step: estimator parameters (p, 1/g).
      const uint32_t g = OlhRange(eps_perm);
      const double p =
          std::exp(eps_perm) / (std::exp(eps_perm) + static_cast<double>(g) - 1.0);
      return OneRoundVariance(
          n, /*f=*/0.0, PerturbParams{p, 1.0 / static_cast<double>(g)});
    }
  }
  LOLOHA_CHECK_MSG(false, "unknown protocol");
  return 0.0;
}

ProtocolCharacteristics Characteristics(ProtocolId id, uint32_t k, uint32_t b,
                                        uint32_t d, double eps_perm,
                                        double eps_first) {
  ProtocolCharacteristics out;
  out.name = ProtocolName(id);
  switch (id) {
    case ProtocolId::kRappor:
    case ProtocolId::kLOsue:
    case ProtocolId::kLSoue:
    case ProtocolId::kLOue:
      out.comm_bits_per_report = static_cast<double>(k);
      // std::string temporaries: GCC 12's -Wrestrict false-positives on
      // string::operator=(const char*) under -O3 (PR 105329).
      out.server_runtime = std::string("n k");
      out.worst_case_budget = static_cast<double>(k) * eps_perm;
      break;
    case ProtocolId::kLGrr:
      out.comm_bits_per_report = std::ceil(std::log2(k));
      out.server_runtime = std::string("n");
      out.worst_case_budget = static_cast<double>(k) * eps_perm;
      break;
    case ProtocolId::kBiLoloha:
    case ProtocolId::kOLoloha: {
      const uint32_t g = (id == ProtocolId::kBiLoloha)
                             ? 2
                             : OptimalLolohaG(eps_perm, eps_first);
      out.comm_bits_per_report = std::ceil(std::log2(g));
      out.server_runtime = std::string("n k");
      out.worst_case_budget = static_cast<double>(g) * eps_perm;
      break;
    }
    case ProtocolId::kOneBitFlipPm:
    case ProtocolId::kBBitFlipPm: {
      const uint32_t dd = (id == ProtocolId::kOneBitFlipPm) ? 1 : b;
      (void)d;
      out.comm_bits_per_report = static_cast<double>(dd);
      out.server_runtime = std::string("n b");
      out.worst_case_budget =
          static_cast<double>(std::min(dd + 1, b)) * eps_perm;
      break;
    }
    case ProtocolId::kNaiveOlh:
      // Sequential composition: tau * eps_perm, unbounded in tau.
      out.comm_bits_per_report = std::ceil(std::log2(OlhRange(eps_perm)));
      out.server_runtime = std::string("n k");
      out.worst_case_budget = std::numeric_limits<double>::infinity();
      break;
  }
  return out;
}

std::vector<ProtocolId> Figure2Protocols() {
  return {ProtocolId::kLOsue, ProtocolId::kOLoloha, ProtocolId::kRappor,
          ProtocolId::kBiLoloha};
}

}  // namespace loloha

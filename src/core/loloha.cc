#include "core/loloha.h"

#include "oracle/estimator.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace loloha {

LolohaClient::LolohaClient(const LolohaParams& params, Rng& rng)
    : params_(params),
      hash_(UniversalHash::Sample(params.g, rng)),
      memo_(params.g, -1) {}

uint32_t LolohaClient::Report(uint32_t value, Rng& rng) {
  LOLOHA_CHECK(value < params_.k);
  const uint32_t cell = hash_(value);  // hash step
  int32_t memoized = memo_[cell];
  if (memoized < 0) {
    // PRR step: GRR(cell; ε∞) over [0, g), drawn once per cell.
    uint32_t drawn = cell;
    if (!rng.Bernoulli(params_.prr.p)) {
      drawn = static_cast<uint32_t>(
          rng.UniformIntExcluding(params_.g, cell));
    }
    memoized = static_cast<int32_t>(drawn);
    memo_[cell] = memoized;
    ++distinct_memos_;
  }
  // IRR step: GRR(x'; ε_IRR), fresh every report.
  if (rng.Bernoulli(params_.irr.p)) return static_cast<uint32_t>(memoized);
  return static_cast<uint32_t>(rng.UniformIntExcluding(
      params_.g, static_cast<uint32_t>(memoized)));
}

LolohaServer::LolohaServer(const LolohaParams& params)
    : params_(params), support_(params.k, 0) {}

void LolohaServer::BeginStep() {
  support_.assign(params_.k, 0);
  num_reports_ = 0;
}

void LolohaServer::Accumulate(const UniversalHash& hash,
                              uint32_t reported_cell) {
  LOLOHA_CHECK(hash.range() == params_.g);
  LOLOHA_CHECK(reported_cell < params_.g);
  for (uint32_t v = 0; v < params_.k; ++v) {
    if (hash(v) == reported_cell) ++support_[v];
  }
  ++num_reports_;
}

std::vector<double> LolohaServer::EstimateStep() const {
  LOLOHA_CHECK_MSG(num_reports_ > 0, "no reports accumulated");
  std::vector<double> counts(support_.begin(), support_.end());
  return EstimateFrequenciesChained(counts,
                                    static_cast<double>(num_reports_),
                                    params_.EstimatorFirst(), params_.irr);
}

LolohaPopulation::LolohaPopulation(const LolohaParams& params, uint32_t n,
                                   Rng& rng)
    : params_(params),
      n_(n),
      hash_rows_(static_cast<size_t>(n) * params.k),
      memo_(static_cast<size_t>(n) * params.g, -1),
      memo_counts_(n, 0) {
  LOLOHA_CHECK(n >= 1);
  LOLOHA_CHECK_MSG(params.g <= 65535, "population path supports g < 2^16");
  for (uint32_t u = 0; u < n_; ++u) {
    const UniversalHash hash = UniversalHash::Sample(params_.g, rng);
    uint16_t* row = &hash_rows_[static_cast<size_t>(u) * params_.k];
    for (uint32_t v = 0; v < params_.k; ++v) {
      row[v] = static_cast<uint16_t>(hash(v));
    }
  }
}

void LolohaPopulation::StepUserRange(const std::vector<uint32_t>& values,
                                     uint64_t begin, uint64_t end, Rng& rng,
                                     uint64_t* support) {
  const uint32_t k = params_.k;
  const uint32_t g = params_.g;
  for (uint64_t u = begin; u < end; ++u) {
    const uint16_t* row = &hash_rows_[u * k];
    const uint32_t cell = row[values[u]];

    int16_t* memo = &memo_[u * g];
    int32_t memoized = memo[cell];
    if (memoized < 0) {
      uint32_t drawn = cell;
      if (!rng.Bernoulli(params_.prr.p)) {
        drawn = static_cast<uint32_t>(rng.UniformIntExcluding(g, cell));
      }
      memoized = static_cast<int32_t>(drawn);
      memo[cell] = static_cast<int16_t>(drawn);
      ++memo_counts_[u];
    }

    uint32_t report = static_cast<uint32_t>(memoized);
    if (!rng.Bernoulli(params_.irr.p)) {
      report = static_cast<uint32_t>(rng.UniformIntExcluding(g, report));
    }

    // Support counting (Algorithm 2, line 4), vector-friendly inner loop.
    const uint16_t target = static_cast<uint16_t>(report);
    for (uint32_t v = 0; v < k; ++v) {
      support[v] += (row[v] == target) ? 1 : 0;
    }
  }
}

std::vector<double> LolohaPopulation::Step(
    const std::vector<uint32_t>& values, Rng& rng) {
  LOLOHA_CHECK(values.size() == n_);
  std::vector<uint64_t> support(params_.k, 0);
  StepUserRange(values, 0, n_, rng, support.data());
  std::vector<double> counts(support.begin(), support.end());
  return EstimateFrequenciesChained(counts, static_cast<double>(n_),
                                    params_.EstimatorFirst(), params_.irr);
}

std::vector<double> LolohaPopulation::Step(
    const std::vector<uint32_t>& values, uint64_t step_seed,
    ThreadPool& pool, uint32_t num_shards) {
  LOLOHA_CHECK(values.size() == n_);
  LOLOHA_CHECK(num_shards >= 1);
  const uint32_t k = params_.k;

  // Per-shard user slices are disjoint, so the memo tables are written
  // without synchronization; support counts land in per-shard rows and are
  // merged in shard order (integer sums — order-independent anyway).
  std::vector<uint64_t> shard_support(static_cast<size_t>(num_shards) * k, 0);
  pool.ParallelFor(num_shards, [&](uint32_t shard) {
    const ShardRange range = ShardBounds(n_, num_shards, shard);
    Rng rng(StreamSeed(step_seed, shard, 0));
    StepUserRange(values, range.begin, range.end, rng,
                  &shard_support[static_cast<size_t>(shard) * k]);
  });

  std::vector<double> counts(k, 0.0);
  for (uint32_t shard = 0; shard < num_shards; ++shard) {
    const uint64_t* row = &shard_support[static_cast<size_t>(shard) * k];
    for (uint32_t v = 0; v < k; ++v) counts[v] += static_cast<double>(row[v]);
  }
  return EstimateFrequenciesChained(counts, static_cast<double>(n_),
                                    params_.EstimatorFirst(), params_.irr);
}

uint32_t LolohaPopulation::DistinctMemos(uint32_t user) const {
  LOLOHA_CHECK(user < n_);
  return memo_counts_[user];
}

}  // namespace loloha

#include "core/loloha.h"

#include "oracle/estimator.h"
#include "util/check.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace loloha {

namespace {

// Stream tag for the sharded constructor's per-shard hash draws, distinct
// from the runners' per-step streams (sim/runner.cc).
constexpr uint64_t kHashRowStream = 0x4c485348u;  // "LHSH"

}  // namespace

LolohaClient::LolohaClient(const LolohaParams& params, Rng& rng)
    : params_(params),
      hash_(UniversalHash::Sample(params.g, rng)),
      memo_(params.g, -1) {}

uint32_t LolohaClient::Report(uint32_t value, Rng& rng) {
  LOLOHA_CHECK(value < params_.k);
  const uint32_t cell = hash_(value);  // hash step
  int32_t memoized = memo_[cell];
  if (memoized < 0) {
    // PRR step: GRR(cell; ε∞) over [0, g), drawn once per cell.
    uint32_t drawn = cell;
    if (!rng.Bernoulli(params_.prr.p)) {
      drawn = static_cast<uint32_t>(
          rng.UniformIntExcluding(params_.g, cell));
    }
    memoized = static_cast<int32_t>(drawn);
    memo_[cell] = memoized;
    ++distinct_memos_;
  }
  // IRR step: GRR(x'; ε_IRR), fresh every report.
  if (rng.Bernoulli(params_.irr.p)) return static_cast<uint32_t>(memoized);
  return static_cast<uint32_t>(rng.UniformIntExcluding(
      params_.g, static_cast<uint32_t>(memoized)));
}

LolohaServer::LolohaServer(const LolohaParams& params)
    : params_(params), support_(params.k, 0) {}

void LolohaServer::BeginStep() {
  support_.assign(params_.k, 0);
  num_reports_ = 0;
}

void LolohaServer::Accumulate(const UniversalHash& hash,
                              uint32_t reported_cell) {
  LOLOHA_CHECK(hash.range() == params_.g);
  LOLOHA_CHECK(reported_cell < params_.g);
  if (params_.g <= 65535) {
    // Strength-reduced row evaluation (one modular add per value instead
    // of a 128-bit multiply); bit-identical to hash(v).
    if (row_scratch_.size() != params_.k) row_scratch_.resize(params_.k);
    HashRowU16(hash.a(), hash.b(), params_.g, params_.k,
               row_scratch_.data());
    const uint16_t target = static_cast<uint16_t>(reported_cell);
    for (uint32_t v = 0; v < params_.k; ++v) {
      support_[v] += row_scratch_[v] == target ? 1 : 0;
    }
  } else {
    for (uint32_t v = 0; v < params_.k; ++v) {
      if (hash(v) == reported_cell) ++support_[v];
    }
  }
  ++num_reports_;
}

std::vector<double> LolohaServer::EstimateStep() const {
  LOLOHA_CHECK_MSG(num_reports_ > 0, "no reports accumulated");
  std::vector<double> counts(support_.begin(), support_.end());
  return EstimateFrequenciesChained(counts,
                                    static_cast<double>(num_reports_),
                                    params_.EstimatorFirst(), params_.irr);
}

LolohaPopulation::LolohaPopulation(const LolohaParams& params, uint32_t n,
                                   Rng& rng)
    : params_(params),
      n_(n),
      hash_rows_(static_cast<size_t>(n) * params.k),
      memo_(static_cast<size_t>(n) * params.g, -1),
      memo_counts_(n, 0) {
  LOLOHA_CHECK(n >= 1);
  LOLOHA_CHECK_MSG(params.g <= 32767,
                   "population path supports g < 2^15 (int16 memo)");
  for (uint32_t u = 0; u < n_; ++u) {
    const UniversalHash hash = UniversalHash::Sample(params_.g, rng);
    HashRowU16(hash.a(), hash.b(), params_.g, params_.k,
               &hash_rows_[static_cast<size_t>(u) * params_.k]);
  }
}

LolohaPopulation::LolohaPopulation(const LolohaParams& params, uint32_t n,
                                   uint64_t seed, ThreadPool& pool,
                                   uint32_t num_shards)
    : params_(params),
      n_(n),
      hash_rows_(static_cast<size_t>(n) * params.k),
      memo_(static_cast<size_t>(n) * params.g, -1),
      memo_counts_(n, 0) {
  LOLOHA_CHECK(n >= 1);
  LOLOHA_CHECK(num_shards >= 1);
  LOLOHA_CHECK_MSG(params.g <= 32767,
                   "population path supports g < 2^15 (int16 memo)");
  pool.ParallelFor(num_shards, [&](uint32_t shard) {
    const ShardRange range = ShardBounds(n_, num_shards, shard);
    Rng rng(StreamSeed(seed, kHashRowStream, shard));
    for (uint64_t u = range.begin; u < range.end; ++u) {
      const UniversalHash hash = UniversalHash::Sample(params_.g, rng);
      HashRowU16(hash.a(), hash.b(), params_.g, params_.k,
                 &hash_rows_[u * params_.k]);
    }
  });
}

void LolohaPopulation::StepUserRange(const std::vector<uint32_t>& values,
                                     uint64_t begin, uint64_t end, Rng& rng,
                                     uint64_t* support) {
  const uint32_t k = params_.k;
  const uint32_t g = params_.g;
  // Support counts accumulate in 16-bit lanes (one compare + subtract per
  // vector; see util/simd.h). Staging does not touch the Rng, so the draw
  // sequence is identical to the plain per-user loop.
  U16SupportAccumulator acc(k, support);
  for (uint64_t u = begin; u < end; ++u) {
    const uint16_t* row = &hash_rows_[u * k];
    const uint32_t cell = row[values[u]];

    int16_t* memo = &memo_[u * g];
    int32_t memoized = memo[cell];
    if (memoized < 0) {
      uint32_t drawn = cell;
      if (!rng.Bernoulli(params_.prr.p)) {
        drawn = static_cast<uint32_t>(rng.UniformIntExcluding(g, cell));
      }
      memoized = static_cast<int32_t>(drawn);
      memo[cell] = static_cast<int16_t>(drawn);
      ++memo_counts_[u];
    }

    uint32_t report = static_cast<uint32_t>(memoized);
    if (!rng.Bernoulli(params_.irr.p)) {
      report = static_cast<uint32_t>(rng.UniformIntExcluding(g, report));
    }

    // Support counting (Algorithm 2, line 4), SIMD inner loop.
    acc.Add(row, static_cast<uint16_t>(report));
  }
}

std::vector<double> LolohaPopulation::Step(
    const std::vector<uint32_t>& values, Rng& rng) {
  LOLOHA_CHECK(values.size() == n_);
  std::vector<uint64_t> support(params_.k, 0);
  StepUserRange(values, 0, n_, rng, support.data());
  std::vector<double> counts(support.begin(), support.end());
  return EstimateFrequenciesChained(counts, static_cast<double>(n_),
                                    params_.EstimatorFirst(), params_.irr);
}

std::vector<double> LolohaPopulation::Step(
    const std::vector<uint32_t>& values, uint64_t step_seed,
    ThreadPool& pool, uint32_t num_shards) {
  LOLOHA_CHECK(values.size() == n_);
  LOLOHA_CHECK(num_shards >= 1);
  const uint32_t k = params_.k;

  // Per-shard user slices are disjoint, so the memo tables are written
  // without synchronization; support counts land in per-shard cache-line-
  // privatized rows (no false sharing at small k) and are merged in shard
  // order (integer sums — order-independent anyway).
  CacheAlignedRows<uint64_t> shard_support(num_shards, k);
  pool.ParallelFor(num_shards, [&](uint32_t shard) {
    const ShardRange range = ShardBounds(n_, num_shards, shard);
    Rng rng(StreamSeed(step_seed, shard, 0));
    StepUserRange(values, range.begin, range.end, rng,
                  shard_support.Row(shard));
  });

  std::vector<double> counts(k, 0.0);
  shard_support.MergeInto(counts.data());
  return EstimateFrequenciesChained(counts, static_cast<double>(n_),
                                    params_.EstimatorFirst(), params_.irr);
}

uint32_t LolohaPopulation::DistinctMemos(uint32_t user) const {
  LOLOHA_CHECK(user < n_);
  return memo_counts_[user];
}

}  // namespace loloha

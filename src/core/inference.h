// Statistical inference utilities on top of the unbiased estimators:
// per-coordinate confidence intervals (normal approximation with the exact
// variance of Eq. 4) and consistency post-processing of estimate vectors.
//
// Post-processing is 0-cost privacy-wise (Prop. 2.2) but trades the
// unbiasedness the paper's metrics rely on for plausibility; the paper's
// experiments use raw estimates, and so do ours — these helpers are for
// consumers of the library.

#ifndef LOLOHA_CORE_INFERENCE_H_
#define LOLOHA_CORE_INFERENCE_H_

#include <vector>

#include "oracle/params.h"

namespace loloha {

struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;

  bool Contains(double x) const { return x >= lo && x <= hi; }
  double width() const { return hi - lo; }
};

// Two-sided normal-approximation CI for one chained estimate `f_hat` from
// n reports. `confidence` in (0, 1), e.g. 0.95. The variance is Eq. (4)
// evaluated at f = clamp(f_hat, 0, 1) (plug-in).
ConfidenceInterval ChainedEstimateCi(double f_hat, double n,
                                     const PerturbParams& first,
                                     const PerturbParams& second,
                                     double confidence);

// One-round (Eq. 1) version.
ConfidenceInterval OneRoundEstimateCi(double f_hat, double n,
                                      const PerturbParams& params,
                                      double confidence);

// Inverse standard normal CDF (Acklam's rational approximation, |err| <
// 1.2e-8 over (0, 1)); exposed for testing.
double InverseNormalCdf(double p);

// One detected heavy hitter: a value whose estimated frequency is
// significantly above zero.
struct HeavyHitter {
  uint32_t value = 0;
  double estimate = 0.0;
  double z_score = 0.0;  // estimate / noise standard deviation at f = 0
};

// Returns the values whose estimate exceeds `z_threshold` standard
// deviations of the estimator noise at f = 0 (the classic
// frequency-oracle-based heavy-hitter detection rule), sorted by estimate
// descending. The expected number of false positives over k nulls is
// k * Phi(-z): z = 4 keeps it ~3e-5 * k.
std::vector<HeavyHitter> DetectHeavyHitters(
    const std::vector<double>& estimates, double n,
    const PerturbParams& first, const PerturbParams& second,
    double z_threshold);

// "Norm-Sub" consistency step (Wang et al., CCS'20 family): shift all
// coordinates by a common delta (of either sign), clamp negatives to zero,
// and choose delta so the surviving mass sums to one. Always returns a
// valid distribution; an all-negative input degenerates to a point mass on
// the largest coordinate.
std::vector<double> NormSub(const std::vector<double>& estimates);

}  // namespace loloha

#endif  // LOLOHA_CORE_INFERENCE_H_

#include "core/inference.h"

#include <algorithm>
#include <cmath>

#include "oracle/estimator.h"
#include "util/check.h"

namespace loloha {

namespace {

ConfidenceInterval CiFromVariance(double f_hat, double variance,
                                  double confidence) {
  LOLOHA_CHECK(confidence > 0.0 && confidence < 1.0);
  const double z = InverseNormalCdf(0.5 + confidence / 2.0);
  const double half_width = z * std::sqrt(std::max(variance, 0.0));
  return ConfidenceInterval{f_hat - half_width, f_hat + half_width};
}

}  // namespace

double InverseNormalCdf(double p) {
  LOLOHA_CHECK(p > 0.0 && p < 1.0);
  // Acklam's algorithm: rational approximations on a central region and
  // two tails.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double kLow = 0.02425;
  constexpr double kHigh = 1.0 - kLow;

  if (p < kLow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > kHigh) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

ConfidenceInterval ChainedEstimateCi(double f_hat, double n,
                                     const PerturbParams& first,
                                     const PerturbParams& second,
                                     double confidence) {
  const double f_plug = std::clamp(f_hat, 0.0, 1.0);
  return CiFromVariance(f_hat, ExactVariance(n, f_plug, first, second),
                        confidence);
}

ConfidenceInterval OneRoundEstimateCi(double f_hat, double n,
                                      const PerturbParams& params,
                                      double confidence) {
  const double f_plug = std::clamp(f_hat, 0.0, 1.0);
  return CiFromVariance(f_hat, OneRoundVariance(n, f_plug, params),
                        confidence);
}

std::vector<HeavyHitter> DetectHeavyHitters(
    const std::vector<double>& estimates, double n,
    const PerturbParams& first, const PerturbParams& second,
    double z_threshold) {
  LOLOHA_CHECK(z_threshold > 0.0);
  const double sigma0 = std::sqrt(ExactVariance(n, 0.0, first, second));
  std::vector<HeavyHitter> hitters;
  for (size_t v = 0; v < estimates.size(); ++v) {
    const double z = estimates[v] / sigma0;
    if (z >= z_threshold) {
      hitters.push_back(
          HeavyHitter{static_cast<uint32_t>(v), estimates[v], z});
    }
  }
  std::sort(hitters.begin(), hitters.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              return a.estimate > b.estimate;
            });
  return hitters;
}

std::vector<double> NormSub(const std::vector<double>& estimates) {
  const size_t k = estimates.size();
  LOLOHA_CHECK(k > 0);
  // Find delta such that sum_i max(estimates[i] - delta, 0) = 1. The
  // left-hand side is continuous and strictly decreasing in delta wherever
  // positive, so bisection converges; seed bounds from the data.
  double lo = *std::min_element(estimates.begin(), estimates.end()) - 1.0;
  double hi = *std::max_element(estimates.begin(), estimates.end());
  auto mass = [&estimates](double delta) {
    double total = 0.0;
    for (const double e : estimates) total += std::max(e - delta, 0.0);
    return total;
  };
  // mass(lo) >= max - (min - 1) >= 1, so a root always exists in [lo, hi].
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (mass(mid) > 1.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double delta = 0.5 * (lo + hi);
  std::vector<double> out(k);
  for (size_t i = 0; i < k; ++i) out[i] = std::max(estimates[i] - delta, 0.0);
  // Exact renormalization to absorb bisection residue.
  double total = 0.0;
  for (const double o : out) total += o;
  if (total > 0.0) {
    for (double& o : out) o /= total;
  }
  return out;
}

}  // namespace loloha

// PEM — Prefix Extending Method for heavy-hitter identification over very
// large domains (Bassily-Smith / Wang et al. lineage; the paper cites
// heavy-hitter estimation [8, 9] as the flagship application built on
// frequency oracles).
//
// The domain is [0, 2^domain_bits). Users are partitioned into `levels`
// disjoint groups; group i sanitizes only the first prefix_bits(i) bits of
// its value with a Local Hashing oracle over the prefix domain. The server
// walks level by level: estimate the current candidate prefixes from group
// i's reports, keep the ones whose estimate clears the noise threshold,
// extend each survivor by the next bit block, and continue. The final
// level yields full-length heavy hitters with frequency estimates.
//
// Privacy: each user reports once, through one eps-LDP oracle, so the
// whole procedure is eps-LDP per user (parallel composition across
// disjoint groups).

#ifndef LOLOHA_HH_PEM_H_
#define LOLOHA_HH_PEM_H_

#include <cstdint>
#include <vector>

#include "oracle/local_hash.h"
#include "util/rng.h"

namespace loloha {

struct PemConfig {
  uint32_t domain_bits = 16;  // values live in [0, 2^domain_bits)
  uint32_t levels = 4;        // prefix-extension rounds (divides users)
  double epsilon = 2.0;       // per-user LDP budget
  uint32_t hash_range = 0;    // g for the LH oracle; 0 = OLH (e^eps + 1)
  // Candidate pruning: keep prefixes whose estimated frequency exceeds
  // `threshold`, capped at `max_candidates` per level.
  double threshold = 0.01;
  uint32_t max_candidates = 64;
};

struct PemHitter {
  uint64_t value = 0;
  double estimate = 0.0;
};

// One user's report: which level group it belongs to and its LH report on
// the prefix domain of that level.
struct PemReport {
  uint32_t level = 0;
  LhReport report;
};

class PemClient {
 public:
  // `user_index` determines the group (round-robin), matching the
  // server's expectation; any fixed assignment works.
  PemClient(const PemConfig& config, uint64_t user_index);

  PemReport Report(uint64_t value, Rng& rng) const;

  uint32_t level() const { return level_; }

 private:
  PemConfig config_;
  uint32_t level_;
  uint32_t prefix_bits_;
};

class PemServer {
 public:
  explicit PemServer(const PemConfig& config);

  void Accumulate(const PemReport& report);

  // Runs the level-by-level identification and returns the detected
  // heavy hitters, sorted by estimate descending.
  std::vector<PemHitter> Identify() const;

  // Number of prefix bits sanitized by group `level` (monotone, reaching
  // domain_bits at the last level).
  uint32_t PrefixBits(uint32_t level) const;

 private:
  PemConfig config_;
  // Reports bucketed per level.
  std::vector<std::vector<LhReport>> reports_;
};

}  // namespace loloha

#endif  // LOLOHA_HH_PEM_H_

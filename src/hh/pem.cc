#include "hh/pem.h"

#include <algorithm>

#include "oracle/estimator.h"
#include "oracle/params.h"
#include "util/check.h"

namespace loloha {

namespace {

void CheckConfig(const PemConfig& config) {
  LOLOHA_CHECK(config.domain_bits >= 1 && config.domain_bits <= 63);
  LOLOHA_CHECK(config.levels >= 1 && config.levels <= config.domain_bits);
  LOLOHA_CHECK(config.epsilon > 0.0);
  LOLOHA_CHECK(config.max_candidates >= 1);
}

uint32_t ResolveHashRange(const PemConfig& config) {
  return config.hash_range == 0 ? OlhRange(config.epsilon)
                                : config.hash_range;
}

uint32_t PrefixBitsFor(const PemConfig& config, uint32_t level) {
  // Spread domain_bits across levels as evenly as possible, front-loaded,
  // cumulative: level i sanitizes the first sum_{j<=i} block_j bits.
  const uint32_t base = config.domain_bits / config.levels;
  const uint32_t extra = config.domain_bits % config.levels;
  uint32_t bits = 0;
  for (uint32_t j = 0; j <= level; ++j) {
    bits += base + (j < extra ? 1 : 0);
  }
  return bits;
}

}  // namespace

PemClient::PemClient(const PemConfig& config, uint64_t user_index)
    : config_(config), level_(0), prefix_bits_(0) {
  CheckConfig(config);
  level_ = static_cast<uint32_t>(user_index % config.levels);
  prefix_bits_ = PrefixBitsFor(config, level_);
}

PemReport PemClient::Report(uint64_t value, Rng& rng) const {
  LOLOHA_CHECK(value < (uint64_t{1} << config_.domain_bits));
  const uint64_t prefix = value >> (config_.domain_bits - prefix_bits_);
  PemReport out;
  out.level = level_;
  // LH over the prefix domain: sample a hash, perturb the hashed prefix.
  const uint32_t g = ResolveHashRange(config_);
  out.report.hash = UniversalHash::Sample(g, rng);
  const PerturbParams params = LhParams(config_.epsilon, g);
  uint32_t cell = out.report.hash(prefix);
  if (!rng.Bernoulli(params.p)) {
    cell = static_cast<uint32_t>(rng.UniformIntExcluding(g, cell));
  }
  out.report.cell = cell;
  return out;
}

PemServer::PemServer(const PemConfig& config)
    : config_(config), reports_(config.levels) {
  CheckConfig(config);
}

uint32_t PemServer::PrefixBits(uint32_t level) const {
  LOLOHA_CHECK(level < config_.levels);
  return PrefixBitsFor(config_, level);
}

void PemServer::Accumulate(const PemReport& report) {
  LOLOHA_CHECK(report.level < config_.levels);
  reports_[report.level].push_back(report.report);
}

std::vector<PemHitter> PemServer::Identify() const {
  const uint32_t g = ResolveHashRange(config_);
  PerturbParams estimator;
  estimator.p = LhParams(config_.epsilon, g).p;
  estimator.q = 1.0 / static_cast<double>(g);

  // Level 0 candidates: every prefix of the first block (PrefixBits(0) is
  // small by construction when levels are balanced).
  std::vector<uint64_t> candidates;
  {
    const uint32_t bits = PrefixBitsFor(config_, 0);
    LOLOHA_CHECK_MSG(bits <= 24, "first PEM block too wide to enumerate");
    candidates.resize(uint64_t{1} << bits);
    for (uint64_t p = 0; p < candidates.size(); ++p) candidates[p] = p;
  }

  std::vector<std::pair<uint64_t, double>> survivors;
  for (uint32_t level = 0; level < config_.levels; ++level) {
    const std::vector<LhReport>& level_reports = reports_[level];
    survivors.clear();
    if (level_reports.empty()) return {};

    // Candidate-restricted support counting.
    std::vector<uint64_t> support(candidates.size(), 0);
    for (const LhReport& report : level_reports) {
      for (size_t c = 0; c < candidates.size(); ++c) {
        if (report.hash(candidates[c]) == report.cell) ++support[c];
      }
    }
    const double n = static_cast<double>(level_reports.size());
    for (size_t c = 0; c < candidates.size(); ++c) {
      const double estimate = EstimateFrequency(
          static_cast<double>(support[c]), n, estimator);
      if (estimate >= config_.threshold) {
        survivors.emplace_back(candidates[c], estimate);
      }
    }
    std::sort(survivors.begin(), survivors.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    if (survivors.size() > config_.max_candidates) {
      survivors.resize(config_.max_candidates);
    }

    if (level + 1 < config_.levels) {
      // Extend each survivor by the next bit block.
      const uint32_t next_bits = PrefixBitsFor(config_, level + 1);
      const uint32_t block = next_bits - PrefixBitsFor(config_, level);
      candidates.clear();
      candidates.reserve(survivors.size() << block);
      for (const auto& [prefix, unused] : survivors) {
        for (uint64_t ext = 0; ext < (uint64_t{1} << block); ++ext) {
          candidates.push_back((prefix << block) | ext);
        }
      }
      if (candidates.empty()) return {};
    }
  }

  std::vector<PemHitter> hitters;
  hitters.reserve(survivors.size());
  for (const auto& [value, estimate] : survivors) {
    hitters.push_back(PemHitter{value, estimate});
  }
  return hitters;
}

}  // namespace loloha

#include "shuffle/amplification.h"

#include <cmath>

#include "util/check.h"
#include "util/mathutil.h"

namespace loloha {

bool AmplificationApplies(double eps_local, uint64_t n, double delta) {
  LOLOHA_CHECK(eps_local > 0.0);
  LOLOHA_CHECK(delta > 0.0 && delta < 1.0);
  if (n < 2) return false;
  return eps_local <=
         std::log(static_cast<double>(n) / (16.0 * std::log(2.0 / delta)));
}

double AmplifiedEpsilon(double eps_local, uint64_t n, double delta) {
  if (!AmplificationApplies(eps_local, n, delta)) return eps_local;
  const double e0 = std::exp(eps_local);
  const double nd = static_cast<double>(n);
  const double term =
      4.0 * std::sqrt(2.0 * std::log(4.0 / delta) / ((e0 + 1.0) * nd)) +
      4.0 / nd;
  const double amplified = std::log1p((e0 - 1.0) * term);
  // Amplification never hurts: report the min with the local guarantee.
  return std::min(amplified, eps_local);
}

double MaxLocalEpsilonForCentralTarget(double eps_central, uint64_t n,
                                       double delta) {
  LOLOHA_CHECK(eps_central > 0.0);
  constexpr double kLo = 1e-6;
  const double hi =
      std::max(kLo * 2.0,
               std::log(static_cast<double>(n) /
                        (16.0 * std::log(2.0 / delta))));
  if (AmplifiedEpsilon(kLo, n, delta) > eps_central) return 0.0;
  if (AmplifiedEpsilon(hi, n, delta) <= eps_central) return hi;
  return BisectIncreasing(
      [n, delta](double eps_local) {
        return AmplifiedEpsilon(eps_local, n, delta);
      },
      eps_central, kLo, hi);
}

}  // namespace loloha

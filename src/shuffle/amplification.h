// Shuffle-model privacy amplification (the paper's future-work direction,
// Sec. 5.3 / 7): if the n per-user ε0-LDP reports pass through a trusted
// shuffler that strips identifiers and outputs them in random order, the
// *central* privacy of the shuffled batch is much tighter than ε0.
//
// We implement the closed-form upper bound of Feldman, McMillan & Talwar,
// "Hiding Among the Clones" (FOCS 2021, Thm 3.1 simplified form): for
// ε0 <= log(n / (16 log(2/δ))), the shuffled mechanism is (ε, δ)-DP with
//
//   ε <= log( 1 + (e^{ε0} - 1) * ( 4 sqrt(2 log(4/δ) / ((e^{ε0}+1) n))
//                                  + 4 / n ) ).
//
// Plus a `Shuffler` that performs the permutation on report batches (for
// end-to-end simulation) and helpers to invert the bound (what local ε0
// can we afford for a central target?).

#ifndef LOLOHA_SHUFFLE_AMPLIFICATION_H_
#define LOLOHA_SHUFFLE_AMPLIFICATION_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace loloha {

// True iff the clones bound applies at (eps_local, n, delta).
bool AmplificationApplies(double eps_local, uint64_t n, double delta);

// The central epsilon guaranteed after shuffling n reports of an
// eps_local-LDP mechanism, at failure probability delta. Returns
// eps_local unchanged (no amplification claimed) when the bound's
// precondition fails.
double AmplifiedEpsilon(double eps_local, uint64_t n, double delta);

// Largest local budget (by bisection) whose shuffled central epsilon is
// <= eps_central at the given (n, delta); returns 0 if even a tiny local
// budget cannot meet the target.
double MaxLocalEpsilonForCentralTarget(double eps_central, uint64_t n,
                                       double delta);

// Uniformly permutes a batch of reports in place (Fisher-Yates); the
// simulation-side stand-in for the trusted shuffler.
template <typename T>
void ShuffleReports(std::vector<T>& reports, Rng& rng) {
  for (size_t i = reports.size(); i > 1; --i) {
    const size_t j = static_cast<size_t>(rng.UniformInt(i));
    std::swap(reports[i - 1], reports[j]);
  }
}

}  // namespace loloha

#endif  // LOLOHA_SHUFFLE_AMPLIFICATION_H_

// ExperimentPlan: the declarative experiment layer over ProtocolSpec.
//
// PR 4 made every protocol a parseable value; this header does the same
// for whole experiments. A plan names an experiment kind (one per paper
// figure/table family), its dataset(s), a protocol legend (ProtocolSpec
// strings), the privacy-budget grids, the Monte-Carlo settings, and the
// output artifacts — and RunExperimentPlan lowers it onto
// RunMonteCarloGrid / the closed-form evaluators. Reproducing a paper
// figure, or exploring a new scenario, is editing a text file
// (see plans/*.plan), not writing a main().
//
// Plan-file grammar (README "Experiments" has a worked example):
//
//   plan      := { line }
//   line      := comment | section | pair | blank
//   comment   := line whose first non-space character is "#"
//                (a mid-line "#" is part of the value)
//   section   := "[" name "]"        ; experiment | grid | run | output
//   pair      := key "=" value
//
//   [experiment]  name, kind, datasets, bucket_divisors, protocols,
//                 n, k, b, eps, eps1
//   [grid]        eps_perm, alpha            (comma-separated lists)
//   [run]         runs, threads, scale, seed, quick
//   [output]      csv, json
//
// `protocols` is a semicolon-separated list of ProtocolSpec strings
// (sim/protocol_spec.h); the grid's (ε∞, ε1 = α·ε∞) overrides each
// spec's budget placeholders, exactly like the --protocols= bench flag.
// Parse errors and value validation name the offending line number.
// ToString() emits the canonical form; ParseExperimentPlan(ToString(p))
// reproduces p exactly for every plan that validates.
//
// Determinism: a plan pins base seed, per-cell streams come from
// MonteCarloSeed, and thread count never changes any number — the CSV a
// plan produces is byte-identical at every --threads value.

#ifndef LOLOHA_SIM_EXPERIMENT_H_
#define LOLOHA_SIM_EXPERIMENT_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "data/dataset.h"
#include "sim/protocol_spec.h"
#include "sim/slice.h"
#include "util/table.h"

namespace loloha {

class ThreadPool;

// One kind per figure/table family of conf_edbt_ArcoleziPPG23.
enum class ExperimentKind {
  kMse,          // Fig. 3: Monte-Carlo MSE_avg grid over a dataset
  kVariance,     // Fig. 2: closed-form approximate variance V* (Eq. 5)
  kOptimalG,     // Fig. 1: optimal hash range g (Eq. 6) + brute-force check
  kPrivacyLoss,  // Fig. 4: averaged empirical longitudinal loss (Eq. 8)
  kComparison,   // Table 1: communication / run-time / worst-case budget
  kDetection,    // Table 2: dBitFlipPM bucket-change detection attack
};

// Canonical lowercase kind name ("mse", "variance", ...).
const char* ExperimentKindName(ExperimentKind kind);
bool ExperimentKindFromName(std::string_view name, ExperimentKind* kind);

struct ExperimentPlan {
  std::string name;  // artifact stamp; required
  ExperimentKind kind = ExperimentKind::kMse;

  // Datasets by harness name ("syn", "adult", "db_mt", "db_de"); the
  // dBitFlipPM bucket divisor per dataset (privacy_loss/detection kinds)
  // parallels it — empty means all 1 (b = k).
  std::vector<std::string> datasets;
  std::vector<uint32_t> bucket_divisors;

  // The legend, in table-column order. Canonical specs (Parse applies
  // ProtocolSpec::Canonicalized); budgets are placeholders for the grid.
  std::vector<ProtocolSpec> protocols;

  // Budget grids: the drivers evaluate every (α, ε∞) pair with
  // ε1 = α·ε∞ for the two-round protocols. Explicit lists, no range
  // syntax — range expansion would not round-trip doubles exactly.
  std::vector<double> eps_perm;
  std::vector<double> alpha;

  // Monte-Carlo / execution settings (kMse; others use seed only).
  uint32_t runs = 2;
  uint32_t threads = 1;  // 0 = hardware concurrency
  uint32_t scale = 5;    // divide dataset n by this (1 = paper scale)
  bool quick = false;    // smoke mode: scale >= 20, runs = 1, tau <= 20
  uint64_t seed = 20230328;

  // Distributed slicing ([run] "slice = i/N", or the --slice flag). When
  // active, RunExperimentPlan computes only the owned units of the plan's
  // flattened unit grid and the sinks emit slice partials instead of
  // tables; MergeExperimentSlices turns a complete partial set back into
  // the single-process artifacts. Inactive (the default) is the ordinary
  // full run, and ToString omits the key so existing plans round-trip
  // unchanged.
  SliceSpec slice;

  // Kind-specific scalars: kVariance uses (n, k); kComparison uses
  // (k, b, eps, eps1) with b = 0 meaning k and eps1 = 0 meaning eps/2.
  double n = 10000.0;
  uint32_t k = 360;
  uint32_t b = 0;
  double eps = 1.0;
  double eps1 = 0.0;

  // Output artifacts; empty = that sink is off. Multi-table plans (more
  // than one dataset under kMse) append "_<dataset>" to the stem.
  std::string csv;
  std::string json;

  friend bool operator==(const ExperimentPlan&, const ExperimentPlan&) =
      default;

  // Canonical plan text; ParseExperimentPlan(ToString()) == *this for any
  // plan that validates.
  std::string ToString() const;

  // Cross-field validation (per-line value checks happen at parse time).
  bool Validate(std::string* error = nullptr) const;
};

// Parses plan text against the grammar above. On failure returns false
// and, when `error` is non-null, stores a reason naming the offending
// line ("line 7: ...") for every malformed line or value.
bool ParseExperimentPlan(std::string_view text, ExperimentPlan* plan,
                         std::string* error = nullptr);

// Reads `path` and parses it; the error is prefixed with the path.
bool LoadExperimentPlan(const std::string& path, ExperimentPlan* plan,
                        std::string* error = nullptr);

// ---------------------------------------------------------------------------
// Result sinks: one Write per produced table, stamped with provenance.
// ---------------------------------------------------------------------------

// Provenance attached to every artifact a plan produces.
struct ArtifactMeta {
  std::string plan_name;
  std::string kind;
  std::string table;   // dataset name, or the plan name for 1-table kinds
  std::string suffix;  // "" for single-table plans, "_<dataset>" otherwise
  uint64_t seed = 0;
  std::string git_describe;

  // Slice stamps, set only on slice-partial artifacts (inactive slice =
  // ordinary table artifact; the serialized provenance then carries no
  // slice keys, so pre-slice sidecars are byte-unchanged).
  SliceSpec slice;
  uint64_t units = 0;        // units this partial carries
  uint64_t units_total = 0;  // plan-wide unit-grid size
  std::string plan_text;     // canonical fingerprint (SliceFingerprintPlan)

  friend bool operator==(const ArtifactMeta&, const ArtifactMeta&) = default;
};

// The one provenance serializer both sinks use (CsvSink's `.meta.json`
// sidecar and JsonSink's inline header), so stamps — slice stamps in
// particular — cannot diverge between them. Returns an *unclosed* JSON
// object body ("{...key: value" without the trailing '}'); callers close
// it or append more members.
std::string ProvenanceJsonBody(const ArtifactMeta& meta);

class ResultSink {
 public:
  virtual ~ResultSink() = default;

  // Persists one finished table. Returns false on I/O failure (the plan
  // runner reports it and fails the run).
  virtual bool Write(const TextTable& table, const ArtifactMeta& meta) = 0;

  // Slice mode: persists the partial a sliced run produced (meta carries
  // the slice stamps). The base returns false — sinks that cannot
  // represent partials fail the sliced run loudly instead of silently
  // dropping work.
  virtual bool WritePartial(const SlicePartial& partial,
                            const ArtifactMeta& meta);
};

// Writes the table bytes as CSV to `path` (parent directories are
// created) — byte-identical to TextTable::WriteCsv, so plan-driven CSVs
// match the legacy mains bit for bit — and the provenance stamp as a
// `<path>.meta.json` sidecar (stamping inside the CSV would break that
// bit-equivalence gate).
class CsvSink : public ResultSink {
 public:
  explicit CsvSink(std::string path);
  bool Write(const TextTable& table, const ArtifactMeta& meta) override;
  // Slice mode: "<stem>.slice-i-of-N.csv" in the loloha_slice v1 CSV
  // format plus the usual ".meta.json" provenance sidecar.
  bool WritePartial(const SlicePartial& partial,
                    const ArtifactMeta& meta) override;

 private:
  std::string path_;
};

// Writes one JSON document per table: provenance inline plus the header
// and rows (all cells as strings, exactly as tabulated).
class JsonSink : public ResultSink {
 public:
  explicit JsonSink(std::string path);
  bool Write(const TextTable& table, const ArtifactMeta& meta) override;
  // Slice mode: one self-contained "<stem>.slice-i-of-N.json" document
  // (provenance body + "units_data").
  bool WritePartial(const SlicePartial& partial,
                    const ArtifactMeta& meta) override;

 private:
  std::string path_;
};

// Discards everything (smoke runs, tests).
class NullSink : public ResultSink {
 public:
  bool Write(const TextTable&, const ArtifactMeta&) override { return true; }
  bool WritePartial(const SlicePartial&, const ArtifactMeta&) override {
    return true;
  }
};

// The build's `git describe --always --dirty` stamp (configure-time;
// "unknown" outside a git checkout).
std::string GitDescribe();

// The sinks a plan's [output] section declares, in csv-then-json order.
std::vector<std::unique_ptr<ResultSink>> MakePlanSinks(
    const ExperimentPlan& plan);

// "<stem>.slice-i-of-N<ext>": where a sink writes its partial for
// `slice` (relative to that sink's configured artifact path).
std::string SlicePartialPath(const std::string& path, const SliceSpec& slice);

// The canonical plan identity two slice runs must share to merge: the
// plan with execution-only knobs neutralized (threads = 1, slice
// cleared), serialized via ToString(). Stored as `plan_text` in every
// partial; CombineSlicePartials refuses sets whose fingerprints differ
// (e.g. the same plan file run with different --runs or --quick
// overrides on different hosts).
ExperimentPlan SliceFingerprintPlan(const ExperimentPlan& plan);

// Total unit-grid size of a plan: Monte-Carlo cells for mse plans, output
// table rows for every other kind. What `units_total` in partials counts
// and what a complete slice set must cover.
uint64_t CountPlanUnits(const ExperimentPlan& plan);

// ---------------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------------

// Runs the plan end to end: builds datasets, lowers the grid onto
// RunMonteCarloGrid's span-of-specs overload (kMse) or the closed-form
// evaluators, prints captions/tables to `log` (null = silent), and hands
// every finished table to each sink. Returns false (with `error`) on a
// validation or sink failure. `pool` is borrowed for the Monte-Carlo
// cells and the runners' inner sharding; null runs serially.
bool RunExperimentPlan(const ExperimentPlan& plan, ThreadPool* pool,
                       std::span<ResultSink* const> sinks,
                       std::string* error = nullptr, std::FILE* log = stdout);

// Convenience overload: sinks from MakePlanSinks(plan).
bool RunExperimentPlan(const ExperimentPlan& plan, ThreadPool* pool,
                       std::string* error = nullptr, std::FILE* log = stdout);

// Merge half of the distributed path: re-runs the plan's table assembly
// with every unit value taken from `units` (a complete, canonically
// ordered set from CombineSlicePartials) instead of being computed, and
// hands the finished tables to `sinks` stamped as an ordinary
// (slice-inactive) run. Because sliced cells draw from the same per-cell
// streams as an unsliced run, the emitted bytes are identical to a
// single-process RunExperimentPlan — the property tools/loloha_merge.cc
// and the distributed.* ctest legs assert. `plan` must not itself carry
// an active slice.
bool MergeExperimentSlices(const ExperimentPlan& plan,
                           std::span<const SliceUnit> units,
                           std::span<ResultSink* const> sinks,
                           std::string* error = nullptr,
                           std::FILE* log = stdout);

// Builds one of the paper's four datasets ("syn", "adult", "db_mt",
// "db_de") with n divided by `scale` (and tau capped at 20 in quick
// mode). The single dataset-construction path for plans and the legacy
// bench harness — identical bytes from either entry point.
Dataset BuildPlanDataset(const std::string& which, uint32_t scale, bool quick,
                         uint64_t seed);

// Prints the protocol registry — canonical name, aliases, extras keys,
// rounds, and V* formula availability — straight from protocol_spec.cc
// (the --list-protocols table of loloha_experiments and quickstart).
void PrintProtocolRegistry(std::FILE* out);

// Prints a registry-style table of every "*.plan" file under `dir`
// (sorted by file name): plan name, kind, datasets, legend size, grid
// dimensions, runs, and declared outputs. Plans that fail to parse or
// validate are listed with their error instead of silently skipped. The
// --list-plans table of loloha_experiments.
void PrintPlanRegistry(const std::string& dir, std::FILE* out);

}  // namespace loloha

#endif  // LOLOHA_SIM_EXPERIMENT_H_

// Empirical longitudinal privacy accounting under Definition 3.2.
//
// A memoization protocol spends a fresh ε∞ for every distinct *memoized
// state* a user's sequence exercises:
//   * RAPPOR / L-OSUE / L-SOUE / L-OUE / L-GRR: one state per distinct
//     true value (≤ k);
//   * LOLOHA: one state per distinct hash cell H(v) (≤ g, Thm. 3.5);
//   * dBitFlipPM: each distinct *sampled* bucket is its own state, while
//     all never-sampled buckets share a single state (their response
//     distributions are identical), so ≤ min(d + 1, b) (Table 1).
//
// These functions compute the per-user loss ε̌^(u) directly from the true
// sequences (drawing the protocol's per-user randomness — hash function or
// sampled set — where required) without running the full mechanism, which
// makes Fig. 4 cheap to regenerate. The protocol runners track the same
// quantity online; integration tests check both paths agree.

#ifndef LOLOHA_SIM_ACCOUNTANT_H_
#define LOLOHA_SIM_ACCOUNTANT_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "longitudinal/dbitflip.h"

namespace loloha {

// Per-user ε̌ for value-memoizing protocols (RAPPOR, L-OSUE, L-GRR, ...).
std::vector<double> ValueMemoEpsilons(const Dataset& data, double eps_perm);

// Per-user ε̌ for LOLOHA with hash range g (draws each user's hash).
std::vector<double> LolohaEpsilons(const Dataset& data, uint32_t g,
                                   double eps_perm, uint64_t seed);

// Per-user ε̌ for dBitFlipPM with b buckets and d sampled bits (draws each
// user's sampled set).
std::vector<double> DBitFlipEpsilons(const Dataset& data, uint32_t b,
                                     uint32_t d, double eps_perm,
                                     uint64_t seed);

}  // namespace loloha

#endif  // LOLOHA_SIM_ACCOUNTANT_H_

#include "sim/slice.h"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/table.h"

namespace loloha {

namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool FailAt(std::string* error, const std::string& name, size_t line,
            const std::string& message) {
  return Fail(error, name + ":" + std::to_string(line) + ": " + message);
}

template <typename UInt>
bool ParseUInt(std::string_view text, UInt* value) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto result = std::from_chars(begin, end, *value);
  return result.ec == std::errc() && result.ptr == end;
}

// Exact double transport: 0x + 16 lowercase hex digits of the IEEE-754
// bit pattern. Shortest-decimal would round-trip too, but the bit form
// is unambiguous under truncation (fixed width) and trivially diffable.
std::string CellBits(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(std::bit_cast<uint64_t>(value)));
  return buffer;
}

bool ParseCellBits(std::string_view text, double* value) {
  if (text.size() != 18 || text.substr(0, 2) != "0x") return false;
  uint64_t bits = 0;
  const char* begin = text.data() + 2;
  const char* end = text.data() + text.size();
  const auto result = std::from_chars(begin, end, bits, 16);
  if (result.ec != std::errc() || result.ptr != end) return false;
  *value = std::bit_cast<double>(bits);
  return true;
}

// Splits one RFC-4180 CSV line into fields (the inverse of
// CsvEscapeField joined with commas). Returns false on a malformed
// quoted field (unterminated quote, garbage after a closing quote).
bool SplitCsvLine(std::string_view line, std::vector<std::string>* fields) {
  fields->clear();
  size_t i = 0;
  while (true) {
    std::string field;
    if (i < line.size() && line[i] == '"') {
      ++i;
      while (true) {
        if (i >= line.size()) return false;  // unterminated quote
        if (line[i] == '"') {
          if (i + 1 < line.size() && line[i + 1] == '"') {
            field += '"';
            i += 2;
          } else {
            ++i;
            break;
          }
        } else {
          field += line[i++];
        }
      }
      if (i < line.size() && line[i] != ',') return false;
    } else {
      const size_t end = std::min(line.find(',', i), line.size());
      field.assign(line.substr(i, end - i));
      i = end;
    }
    fields->push_back(std::move(field));
    if (i >= line.size()) return true;
    ++i;  // skip the comma; a trailing comma yields a final empty field
    if (i == line.size()) {
      fields->emplace_back();
      return true;
    }
  }
}

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough for the documents this repo emits
// (objects, arrays, strings, integer numbers, bools, null), with line
// tracking so adversarial-merge errors can name the offending line.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  std::string scalar;  // unescaped string, or the raw number literal
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  const JsonValue* Find(std::string_view key) const {
    for (const auto& [name, value] : members) {
      if (name == key) return &value;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  JsonReader(std::string_view text, const std::string& name,
             std::string* error)
      : text_(text), name_(name), error_(error) {}

  bool Parse(JsonValue* value) {
    SkipSpace();
    if (!ParseValue(value, 0)) return false;
    SkipSpace();
    if (pos_ != text_.size()) {
      return FailHere("trailing bytes after JSON document");
    }
    return true;
  }

 private:
  bool FailHere(const std::string& message) {
    return FailAt(error_, name_, line_, message);
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') ++line_;
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool ParseValue(JsonValue* value, int depth) {
    if (depth > 32) return FailHere("JSON nesting too deep");
    if (pos_ >= text_.size()) return FailHere("unexpected end of JSON");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(value, depth);
    if (c == '[') return ParseArray(value, depth);
    if (c == '"') {
      value->type = JsonValue::Type::kString;
      return ParseString(&value->scalar);
    }
    if (c == 't' || c == 'f') {
      const std::string_view want = c == 't' ? "true" : "false";
      if (text_.substr(pos_, want.size()) != want) {
        return FailHere("malformed JSON literal");
      }
      pos_ += want.size();
      value->type = JsonValue::Type::kBool;
      value->boolean = c == 't';
      return true;
    }
    if (c == 'n') {
      if (text_.substr(pos_, 4) != "null") {
        return FailHere("malformed JSON literal");
      }
      pos_ += 4;
      value->type = JsonValue::Type::kNull;
      return true;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      const size_t begin = pos_;
      if (text_[pos_] == '-') ++pos_;
      while (pos_ < text_.size() &&
             (std::string_view("0123456789.eE+-").find(text_[pos_]) !=
              std::string_view::npos)) {
        ++pos_;
      }
      value->type = JsonValue::Type::kNumber;
      value->scalar.assign(text_.substr(begin, pos_ - begin));
      return true;
    }
    return FailHere(std::string("unexpected character '") + c + "' in JSON");
  }

  bool ParseString(std::string* out) {
    out->clear();
    ++pos_;  // opening quote
    while (true) {
      if (pos_ >= text_.size()) return FailHere("unterminated JSON string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\n') return FailHere("raw newline in JSON string");
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return FailHere("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'n': *out += '\n'; break;
        case 't': *out += '\t'; break;
        case 'r': *out += '\r'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return FailHere("short \\u escape");
          uint32_t code = 0;
          const char* begin = text_.data() + pos_;
          const auto result = std::from_chars(begin, begin + 4, code, 16);
          if (result.ec != std::errc() || result.ptr != begin + 4) {
            return FailHere("malformed \\u escape");
          }
          pos_ += 4;
          // The emitters only \u-escape control bytes (< 0x20).
          if (code > 0x7f) return FailHere("unsupported \\u escape");
          *out += static_cast<char>(code);
          break;
        }
        default:
          return FailHere("unknown JSON escape");
      }
    }
  }

  bool ParseObject(JsonValue* value, int depth) {
    value->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return FailHere("expected JSON object key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return FailHere("expected ':' after object key");
      }
      ++pos_;
      SkipSpace();
      JsonValue member;
      if (!ParseValue(&member, depth + 1)) return false;
      value->members.emplace_back(std::move(key), std::move(member));
      SkipSpace();
      if (pos_ >= text_.size()) return FailHere("unterminated JSON object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return FailHere("expected ',' or '}' in JSON object");
    }
  }

  bool ParseArray(JsonValue* value, int depth) {
    value->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      JsonValue item;
      if (!ParseValue(&item, depth + 1)) return false;
      value->items.push_back(std::move(item));
      SkipSpace();
      if (pos_ >= text_.size()) return FailHere("unterminated JSON array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return FailHere("expected ',' or ']' in JSON array");
    }
  }

  std::string_view text_;
  std::string name_;
  std::string* error_;
  size_t pos_ = 0;
  size_t line_ = 1;
};

// Reads the provenance fields every partial must carry. `where` labels
// errors; `line` is reported as the document's first line (field-level
// positions inside a one-line JSON document are all line 1 anyway).
bool ReadProvenance(const JsonValue& doc, const std::string& where,
                    SlicePartial* partial, std::string* error) {
  const auto need_string = [&](const char* key, std::string* out) {
    const JsonValue* v = doc.Find(key);
    if (v == nullptr || v->type != JsonValue::Type::kString) {
      return FailAt(error, where, 1,
                    std::string("missing or non-string \"") + key +
                        "\" in slice provenance");
    }
    *out = v->scalar;
    return true;
  };
  const auto need_uint = [&](const char* key, uint64_t* out) {
    const JsonValue* v = doc.Find(key);
    if (v == nullptr || v->type != JsonValue::Type::kNumber ||
        !ParseUInt(std::string_view(v->scalar), out)) {
      return FailAt(error, where, 1,
                    std::string("missing or non-integer \"") + key +
                        "\" in slice provenance");
    }
    return true;
  };
  if (!need_string("plan", &partial->plan_name)) return false;
  if (!need_string("kind", &partial->kind)) return false;
  if (!need_uint("seed", &partial->seed)) return false;
  if (!need_string("git", &partial->git_describe)) return false;
  uint64_t index = 0;
  uint64_t count = 0;
  if (!need_uint("slice_index", &index)) return false;
  if (!need_uint("slice_count", &count)) return false;
  if (count < 1 || count > 0xffffffffull || index >= count) {
    return FailAt(error, where, 1,
                  "invalid slice stamp " + std::to_string(index) + "/" +
                      std::to_string(count));
  }
  partial->slice.index = static_cast<uint32_t>(index);
  partial->slice.count = static_cast<uint32_t>(count);
  if (!need_uint("units_total", &partial->units_total)) return false;
  if (!need_string("plan_text", &partial->plan_text)) return false;
  if (partial->plan_text.empty()) {
    return FailAt(error, where, 1, "empty \"plan_text\" in slice provenance");
  }
  return true;
}

// Shared tail validation: units ascending, owned by the slice, in range.
// Every refusal is located: `unit_lines` maps units to the input line
// they were parsed from (the CSV reader records real lines; the JSON
// reader passes none and the report falls back to line 1, matching its
// other diagnostics), and `summary_line` locates the set-level
// cardinality refusal (the CSV 'end' trailer line).
bool ValidateUnits(const SlicePartial& partial, const std::string& name,
                   const std::vector<size_t>& unit_lines,
                   size_t summary_line, std::string* error) {
  const auto line_of = [&unit_lines](size_t i) {
    return i < unit_lines.size() ? unit_lines[i] : size_t{1};
  };
  uint64_t previous = 0;
  bool first = true;
  for (size_t i = 0; i < partial.units.size(); ++i) {
    const SliceUnit& unit = partial.units[i];
    if (unit.index >= partial.units_total) {
      return FailAt(error, name, line_of(i),
                    "unit " + std::to_string(unit.index) +
                        " out of range (units_total = " +
                        std::to_string(partial.units_total) + ")");
    }
    if (!partial.slice.Owns(unit.index)) {
      return FailAt(error, name, line_of(i),
                    "unit " + std::to_string(unit.index) +
                        " is not owned by slice " +
                        SliceSpecToken(partial.slice));
    }
    if (!first && unit.index <= previous) {
      return FailAt(error, name, line_of(i),
                    "units out of order at " + std::to_string(unit.index));
    }
    previous = unit.index;
    first = false;
  }
  const uint64_t expected = partial.slice.OwnedCount(partial.units_total);
  if (partial.units.size() != expected) {
    return FailAt(error, name, summary_line,
                  "slice " + SliceSpecToken(partial.slice) + " carries " +
                      std::to_string(partial.units.size()) +
                      " unit(s) but owns " + std::to_string(expected));
  }
  return true;
}

}  // namespace

bool ParseSliceSpec(std::string_view text, SliceSpec* slice,
                    std::string* error) {
  const size_t slash = text.find('/');
  uint32_t index = 0;
  uint32_t count = 0;
  if (slash == std::string_view::npos ||
      !ParseUInt(text.substr(0, slash), &index) ||
      !ParseUInt(text.substr(slash + 1), &count)) {
    return Fail(error, "malformed slice '" + std::string(text) +
                           "' (want i/N, e.g. 0/4)");
  }
  if (count < 1) return Fail(error, "slice count must be >= 1");
  if (index >= count) {
    return Fail(error, "slice index " + std::to_string(index) +
                           " out of range for count " + std::to_string(count));
  }
  slice->index = index;
  slice->count = count;
  return true;
}

std::string SliceSpecToken(const SliceSpec& slice) {
  return std::to_string(slice.index) + "-of-" + std::to_string(slice.count);
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string SlicePartialCsv(const SlicePartial& partial) {
  std::string out = "loloha_slice,v1," + CsvEscapeField(partial.plan_name) +
                    "," + partial.kind + "," + std::to_string(partial.seed) +
                    "," + std::to_string(partial.slice.index) + "," +
                    std::to_string(partial.slice.count) + "," +
                    std::to_string(partial.units_total) + "\n";
  for (const SliceUnit& unit : partial.units) {
    if (unit.type == SliceUnit::Type::kCell) {
      out += "cell," + std::to_string(unit.index) + "," + CellBits(unit.cell) +
             "\n";
    } else {
      out += "row," + std::to_string(unit.index);
      for (const std::string& cell : unit.row) {
        out += ',';
        out += CsvEscapeField(cell);
      }
      out += "\n";
    }
  }
  out += "end," + std::to_string(partial.units.size()) + "\n";
  return out;
}

void AppendSlicePartialDataJson(const SlicePartial& partial,
                                std::string* out) {
  *out += ", \"units_data\": [";
  for (size_t i = 0; i < partial.units.size(); ++i) {
    const SliceUnit& unit = partial.units[i];
    if (i > 0) *out += ", ";
    *out += "[\"";
    *out += unit.type == SliceUnit::Type::kCell ? "cell" : "row";
    *out += "\", \"";
    *out += std::to_string(unit.index);
    *out += '"';
    if (unit.type == SliceUnit::Type::kCell) {
      *out += ", \"";
      *out += CellBits(unit.cell);
      *out += '"';
    } else {
      for (const std::string& cell : unit.row) {
        *out += ", \"";
        *out += JsonEscape(cell);
        *out += '"';
      }
    }
    *out += ']';
  }
  *out += ']';
}

bool ParseSlicePartialCsv(std::string_view csv_bytes,
                          std::string_view sidecar_json,
                          const std::string& csv_name,
                          const std::string& sidecar_name,
                          SlicePartial* partial, std::string* error) {
  SlicePartial out;
  out.source = csv_name;

  JsonValue doc;
  JsonReader reader(sidecar_json, sidecar_name, error);
  if (!reader.Parse(&doc)) return false;
  if (doc.type != JsonValue::Type::kObject) {
    return FailAt(error, sidecar_name, 1, "sidecar is not a JSON object");
  }
  if (!ReadProvenance(doc, sidecar_name, &out, error)) return false;

  size_t line_number = 0;  // first physical line of the current record
  size_t next_line = 1;
  size_t begin = 0;
  bool saw_header = false;
  bool saw_end = false;
  std::vector<std::string> fields;
  std::vector<size_t> unit_lines;  // source line of out.units[i]
  while (begin < csv_bytes.size()) {
    line_number = next_line;
    // One CSV record may span physical lines: a newline inside a quoted
    // field (CsvEscapeField output) is payload, not a record break.
    size_t end = begin;
    bool in_quotes = false;
    while (end < csv_bytes.size() &&
           (in_quotes || csv_bytes[end] != '\n')) {
      if (csv_bytes[end] == '"') in_quotes = !in_quotes;
      if (csv_bytes[end] == '\n') ++next_line;
      ++end;
    }
    const std::string_view line = csv_bytes.substr(begin, end - begin);
    const bool had_newline = end < csv_bytes.size();
    begin = end + 1;
    ++next_line;
    if (saw_end) {
      return FailAt(error, csv_name, line_number,
                    "trailing data after 'end' trailer");
    }
    if (!SplitCsvLine(line, &fields) || fields.empty()) {
      return FailAt(error, csv_name, line_number, "malformed CSV line");
    }
    if (!had_newline) {
      return FailAt(error, csv_name, line_number,
                    "truncated partial: last line has no newline");
    }
    if (!saw_header) {
      if (fields.size() != 8 || fields[0] != "loloha_slice" ||
          fields[1] != "v1") {
        return FailAt(error, csv_name, line_number,
                      "not a loloha_slice v1 partial header");
      }
      uint64_t seed = 0;
      uint64_t total = 0;
      SliceSpec slice;
      if (!ParseUInt(std::string_view(fields[4]), &seed) ||
          !ParseUInt(std::string_view(fields[5]), &slice.index) ||
          !ParseUInt(std::string_view(fields[6]), &slice.count) ||
          !ParseUInt(std::string_view(fields[7]), &total)) {
        return FailAt(error, csv_name, line_number,
                      "malformed numbers in partial header");
      }
      if (fields[2] != out.plan_name || fields[3] != out.kind ||
          seed != out.seed || !(slice == out.slice) ||
          total != out.units_total) {
        return FailAt(error, csv_name, line_number,
                      "partial header disagrees with sidecar " +
                          sidecar_name);
      }
      saw_header = true;
      continue;
    }
    if (fields[0] == "end") {
      uint64_t count = 0;
      if (fields.size() != 2 ||
          !ParseUInt(std::string_view(fields[1]), &count)) {
        return FailAt(error, csv_name, line_number, "malformed 'end' trailer");
      }
      if (count != out.units.size()) {
        return FailAt(error, csv_name, line_number,
                      "'end' trailer says " + std::to_string(count) +
                          " unit(s) but " + std::to_string(out.units.size()) +
                          " present — truncated or edited partial");
      }
      saw_end = true;
      continue;
    }
    SliceUnit unit;
    if (fields[0] == "cell") {
      if (fields.size() != 3 ||
          !ParseUInt(std::string_view(fields[1]), &unit.index) ||
          !ParseCellBits(fields[2], &unit.cell)) {
        return FailAt(error, csv_name, line_number, "malformed cell unit");
      }
      unit.type = SliceUnit::Type::kCell;
    } else if (fields[0] == "row") {
      if (fields.size() < 3 ||
          !ParseUInt(std::string_view(fields[1]), &unit.index)) {
        return FailAt(error, csv_name, line_number, "malformed row unit");
      }
      unit.type = SliceUnit::Type::kRow;
      unit.row.assign(fields.begin() + 2, fields.end());
    } else {
      return FailAt(error, csv_name, line_number,
                    "unknown record '" + fields[0] + "'");
    }
    out.units.push_back(std::move(unit));
    unit_lines.push_back(line_number);
  }
  if (!saw_header) {
    return FailAt(error, csv_name, 1, "empty partial: missing header line");
  }
  if (!saw_end) {
    return FailAt(error, csv_name, line_number,
                  "truncated partial: missing 'end' trailer");
  }
  if (!ValidateUnits(out, csv_name, unit_lines, line_number, error)) {
    return false;
  }
  *partial = std::move(out);
  return true;
}

bool ParseSlicePartialJson(std::string_view json_bytes,
                           const std::string& name, SlicePartial* partial,
                           std::string* error) {
  SlicePartial out;
  out.source = name;

  JsonValue doc;
  JsonReader reader(json_bytes, name, error);
  if (!reader.Parse(&doc)) return false;
  if (doc.type != JsonValue::Type::kObject) {
    return FailAt(error, name, 1, "partial is not a JSON object");
  }
  if (!ReadProvenance(doc, name, &out, error)) return false;

  const JsonValue* data = doc.Find("units_data");
  if (data == nullptr || data->type != JsonValue::Type::kArray) {
    return FailAt(error, name, 1, "missing \"units_data\" array");
  }
  for (const JsonValue& entry : data->items) {
    if (entry.type != JsonValue::Type::kArray || entry.items.size() < 2) {
      return FailAt(error, name, 1, "malformed units_data entry");
    }
    for (const JsonValue& field : entry.items) {
      if (field.type != JsonValue::Type::kString) {
        return FailAt(error, name, 1, "non-string field in units_data entry");
      }
    }
    SliceUnit unit;
    if (!ParseUInt(std::string_view(entry.items[1].scalar), &unit.index)) {
      return FailAt(error, name, 1, "malformed unit index in units_data");
    }
    if (entry.items[0].scalar == "cell") {
      if (entry.items.size() != 3 ||
          !ParseCellBits(entry.items[2].scalar, &unit.cell)) {
        return FailAt(error, name, 1, "malformed cell unit in units_data");
      }
      unit.type = SliceUnit::Type::kCell;
    } else if (entry.items[0].scalar == "row") {
      unit.type = SliceUnit::Type::kRow;
      for (size_t i = 2; i < entry.items.size(); ++i) {
        unit.row.push_back(entry.items[i].scalar);
      }
    } else {
      return FailAt(error, name, 1,
                    "unknown units_data record '" + entry.items[0].scalar +
                        "'");
    }
    out.units.push_back(std::move(unit));
  }
  if (!ValidateUnits(out, name, {}, 1, error)) return false;
  *partial = std::move(out);
  return true;
}

bool LoadSlicePartial(const std::string& path, SlicePartial* partial,
                      std::string* error) {
  const auto read_all = [](const std::string& p, std::string* bytes) {
    std::ifstream in(p, std::ios::binary);
    if (!in) return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    *bytes = buffer.str();
    return true;
  };
  std::string bytes;
  if (!read_all(path, &bytes)) {
    return Fail(error, path + ": cannot open slice partial");
  }
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0) {
    return ParseSlicePartialJson(bytes, path, partial, error);
  }
  const std::string sidecar_path = path + ".meta.json";
  std::string sidecar;
  if (!read_all(sidecar_path, &sidecar)) {
    return Fail(error, sidecar_path +
                           ": cannot open provenance sidecar (required "
                           "next to every CSV slice partial)");
  }
  return ParseSlicePartialCsv(bytes, sidecar, path, sidecar_path, partial,
                              error);
}

bool CombineSlicePartials(const std::vector<SlicePartial>& parts,
                          std::vector<SliceUnit>* units, std::string* error) {
  if (parts.empty()) return Fail(error, "no slice partials to combine");
  const SlicePartial& first = parts.front();
  const auto label = [](const SlicePartial& p) {
    return p.source.empty() ? ("slice " + SliceSpecToken(p.slice)) : p.source;
  };
  for (const SlicePartial& part : parts) {
    if (part.slice.count != first.slice.count) {
      return Fail(error, label(part) + ": slice count " +
                             std::to_string(part.slice.count) +
                             " does not match " +
                             std::to_string(first.slice.count) + " from " +
                             label(first));
    }
    if (part.plan_name != first.plan_name) {
      return Fail(error, label(part) + ": plan '" + part.plan_name +
                             "' does not match '" + first.plan_name +
                             "' from " + label(first));
    }
    if (part.kind != first.kind) {
      return Fail(error, label(part) + ": kind '" + part.kind +
                             "' does not match '" + first.kind + "' from " +
                             label(first));
    }
    if (part.seed != first.seed) {
      return Fail(error, label(part) + ": seed " + std::to_string(part.seed) +
                             " does not match " + std::to_string(first.seed) +
                             " from " + label(first));
    }
    if (part.units_total != first.units_total) {
      return Fail(error, label(part) + ": units_total " +
                             std::to_string(part.units_total) +
                             " does not match " +
                             std::to_string(first.units_total) + " from " +
                             label(first));
    }
    if (part.plan_text != first.plan_text) {
      return Fail(error, label(part) +
                             ": effective plan text differs from " +
                             label(first) +
                             " (same plan file but different overrides?)");
    }
  }

  const uint32_t count = first.slice.count;
  if (parts.size() != count) {
    // Collect the missing indices for an actionable message.
    std::vector<bool> present(count, false);
    for (const SlicePartial& part : parts) {
      if (part.slice.index < count) present[part.slice.index] = true;
    }
    std::string missing;
    for (uint32_t i = 0; i < count; ++i) {
      if (!present[i]) {
        if (!missing.empty()) missing += ", ";
        missing += std::to_string(i);
      }
    }
    if (!missing.empty() && parts.size() < count) {
      return Fail(error, "incomplete slice set: have " +
                             std::to_string(parts.size()) + " of " +
                             std::to_string(count) +
                             " slices (missing index " + missing + ")");
    }
    // parts.size() > count, or == with gaps: fall through to the
    // duplicate check below, which names the colliding sources.
  }
  std::vector<const SlicePartial*> by_index(count, nullptr);
  for (const SlicePartial& part : parts) {
    const SlicePartial*& slot = by_index[part.slice.index];
    if (slot != nullptr) {
      return Fail(error, label(part) + ": duplicate slice index " +
                             std::to_string(part.slice.index) +
                             " (already provided by " + label(*slot) + ")");
    }
    slot = &part;
  }
  for (uint32_t i = 0; i < count; ++i) {
    if (by_index[i] == nullptr) {
      return Fail(error, "incomplete slice set: missing slice index " +
                             std::to_string(i) + " of " +
                             std::to_string(count));
    }
  }

  // Per-partial residue-class coverage was validated at parse time, so
  // the union is exactly 0..units_total-1 with no overlap; flatten.
  units->assign(first.units_total, SliceUnit{});
  std::vector<bool> placed(first.units_total, false);
  for (const SlicePartial& part : parts) {
    for (const SliceUnit& unit : part.units) {
      if (placed[unit.index]) {
        return Fail(error, label(part) + ": unit " +
                               std::to_string(unit.index) +
                               " already provided by another slice");
      }
      placed[unit.index] = true;
      (*units)[unit.index] = unit;
    }
  }
  for (uint64_t i = 0; i < first.units_total; ++i) {
    if (!placed[i]) {
      return Fail(error, "incomplete slice set: unit " + std::to_string(i) +
                             " missing after combining all slices");
    }
  }
  return true;
}

}  // namespace loloha

#include "sim/accountant.h"

#include <algorithm>
#include <unordered_set>

#include "util/hash.h"
#include "util/rng.h"

namespace loloha {

std::vector<double> ValueMemoEpsilons(const Dataset& data, double eps_perm) {
  std::vector<double> eps(data.n());
  std::unordered_set<uint32_t> seen;
  for (uint32_t u = 0; u < data.n(); ++u) {
    seen.clear();
    for (uint32_t t = 0; t < data.tau(); ++t) seen.insert(data.value(u, t));
    eps[u] = eps_perm * static_cast<double>(seen.size());
  }
  return eps;
}

std::vector<double> LolohaEpsilons(const Dataset& data, uint32_t g,
                                   double eps_perm, uint64_t seed) {
  LOLOHA_CHECK(g >= 2);
  std::vector<double> eps(data.n());
  Rng rng(seed);
  std::vector<uint8_t> cell_seen(g);
  for (uint32_t u = 0; u < data.n(); ++u) {
    const UniversalHash hash = UniversalHash::Sample(g, rng);
    std::fill(cell_seen.begin(), cell_seen.end(), 0);
    uint32_t distinct = 0;
    for (uint32_t t = 0; t < data.tau(); ++t) {
      const uint32_t cell = hash(data.value(u, t));
      if (!cell_seen[cell]) {
        cell_seen[cell] = 1;
        ++distinct;
      }
    }
    eps[u] = eps_perm * static_cast<double>(distinct);
  }
  return eps;
}

std::vector<double> DBitFlipEpsilons(const Dataset& data, uint32_t b,
                                     uint32_t d, double eps_perm,
                                     uint64_t seed) {
  const Bucketizer bucketizer(data.k(), b);
  LOLOHA_CHECK(d >= 1 && d <= b);
  std::vector<double> eps(data.n());
  Rng rng(seed);
  std::vector<uint32_t> pool(b);
  std::vector<uint8_t> is_sampled(b);
  std::vector<uint8_t> bucket_seen(b);
  for (uint32_t u = 0; u < data.n(); ++u) {
    // Draw the user's fixed sampled set.
    std::fill(is_sampled.begin(), is_sampled.end(), 0);
    for (uint32_t j = 0; j < b; ++j) pool[j] = j;
    for (uint32_t l = 0; l < d; ++l) {
      const uint32_t pick = l + static_cast<uint32_t>(rng.UniformInt(b - l));
      std::swap(pool[l], pool[pick]);
      is_sampled[pool[l]] = 1;
    }
    // Count privacy states: sampled buckets individually, never-sampled
    // ones as one shared state.
    std::fill(bucket_seen.begin(), bucket_seen.end(), 0);
    uint32_t sampled_states = 0;
    bool unsampled_seen = false;
    for (uint32_t t = 0; t < data.tau(); ++t) {
      const uint32_t bucket = bucketizer.Bucket(data.value(u, t));
      if (bucket_seen[bucket]) continue;
      bucket_seen[bucket] = 1;
      if (is_sampled[bucket]) {
        ++sampled_states;
      } else {
        unsampled_seen = true;
      }
    }
    eps[u] = eps_perm *
             static_cast<double>(sampled_states + (unsampled_seen ? 1 : 0));
  }
  return eps;
}

}  // namespace loloha

#include "sim/metrics.h"

#include "util/histogram.h"
#include "util/mathutil.h"

namespace loloha {

std::vector<double> MseSeries(
    const Dataset& data, const std::vector<std::vector<double>>& estimates) {
  LOLOHA_CHECK(estimates.size() == data.tau());
  std::vector<double> series(data.tau());
  for (uint32_t t = 0; t < data.tau(); ++t) {
    series[t] = MeanSquaredError(data.TrueFrequenciesAt(t), estimates[t]);
  }
  return series;
}

double MseAvg(const Dataset& data,
              const std::vector<std::vector<double>>& estimates) {
  const std::vector<double> series = MseSeries(data, estimates);
  KahanSum sum;
  for (const double m : series) sum.Add(m);
  return sum.value() / static_cast<double>(series.size());
}

double MseAvgBucketed(const Dataset& data, const Bucketizer& bucketizer,
                      const std::vector<std::vector<double>>& estimates) {
  LOLOHA_CHECK(estimates.size() == data.tau());
  LOLOHA_CHECK(bucketizer.k() == data.k());
  const uint32_t b = bucketizer.b();
  KahanSum sum;
  std::vector<double> truth(b);
  for (uint32_t t = 0; t < data.tau(); ++t) {
    truth.assign(b, 0.0);
    const uint32_t* values = data.StepValuesData(t);
    const double inv_n = 1.0 / static_cast<double>(data.n());
    for (uint32_t u = 0; u < data.n(); ++u) {
      truth[bucketizer.Bucket(values[u])] += inv_n;
    }
    sum.Add(MeanSquaredError(truth, estimates[t]));
  }
  return sum.value() / static_cast<double>(data.tau());
}

double EpsAvg(const std::vector<double>& per_user_epsilon) {
  LOLOHA_CHECK(!per_user_epsilon.empty());
  KahanSum sum;
  for (const double e : per_user_epsilon) sum.Add(e);
  return sum.value() / static_cast<double>(per_user_epsilon.size());
}

}  // namespace loloha

#include "sim/runner.h"

#include <cmath>

#include "core/loloha.h"
#include "core/loloha_params.h"
#include "longitudinal/dbitflip.h"
#include "longitudinal/lgrr.h"
#include "longitudinal/lue.h"
#include "oracle/estimator.h"
#include "oracle/local_hash.h"
#include "oracle/params.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace loloha {

namespace {

// Stream tag separating per-step seeds from any other use of the run seed
// (population construction consumes the raw seed's Rng sequentially).
constexpr uint64_t kStepStream = 0x5749c4e1u;

uint64_t StepSeed(uint64_t seed, uint32_t t) {
  return StreamSeed(seed, kStepStream, t);
}

// RAPPOR, L-OSUE, L-SOUE, L-OUE.
class UeRunner : public LongitudinalRunner {
 public:
  UeRunner(LueVariant variant, double eps_perm, double eps_first,
           const RunnerOptions& options)
      : variant_(variant),
        eps_perm_(eps_perm),
        eps_first_(eps_first),
        options_(options) {}

  std::string name() const override { return LueVariantName(variant_); }

  RunResult Run(const Dataset& data, uint64_t seed) const override {
    const ChainedParams chain = LueChain(variant_, eps_perm_, eps_first_);
    LongitudinalUePopulation population(data.k(), data.n(), chain);
    const PoolLease pool(options_.pool, options_.num_threads);
    const uint32_t shards = options_.num_shards;

    RunResult result;
    result.protocol = name();
    result.bins = data.k();
    result.comm_bits_per_report = data.k();
    result.estimates.reserve(data.tau());
    for (uint32_t t = 0; t < data.tau(); ++t) {
      result.estimates.push_back(
          population.Step(data.StepValues(t), StepSeed(seed, t), *pool,
                          shards));
    }
    result.per_user_epsilon.resize(data.n());
    for (uint32_t u = 0; u < data.n(); ++u) {
      result.per_user_epsilon[u] = eps_perm_ * population.DistinctMemos(u);
    }
    return result;
  }

 private:
  LueVariant variant_;
  double eps_perm_;
  double eps_first_;
  RunnerOptions options_;
};

class GrrRunner : public LongitudinalRunner {
 public:
  GrrRunner(double eps_perm, double eps_first, const RunnerOptions& options)
      : eps_perm_(eps_perm), eps_first_(eps_first), options_(options) {}

  std::string name() const override { return "L-GRR"; }

  RunResult Run(const Dataset& data, uint64_t seed) const override {
    const uint32_t k = data.k();
    const uint32_t n = data.n();
    const ChainedParams chain = LGrrChain(eps_perm_, eps_first_, k);
    std::vector<LongitudinalGrrClient> clients(
        n, LongitudinalGrrClient(k, chain));
    const PoolLease pool(options_.pool, options_.num_threads);
    const uint32_t shards = options_.num_shards;

    RunResult result;
    result.protocol = name();
    result.bins = k;
    result.comm_bits_per_report = std::ceil(std::log2(k));
    result.estimates.reserve(data.tau());
    CacheAlignedRows<uint64_t> shard_counts(shards, k);
    for (uint32_t t = 0; t < data.tau(); ++t) {
      const uint32_t* values = data.StepValuesData(t);
      shard_counts.Clear();
      pool->ParallelFor(shards, [&](uint32_t shard) {
        const ShardRange range = ShardBounds(n, shards, shard);
        Rng rng(StreamSeed(StepSeed(seed, t), shard, 0));
        uint64_t* counts = shard_counts.Row(shard);
        for (uint64_t u = range.begin; u < range.end; ++u) {
          ++counts[clients[u].Report(values[u], rng)];
        }
      });
      std::vector<double> counts(k, 0.0);
      shard_counts.MergeInto(counts.data());
      result.estimates.push_back(EstimateFrequenciesChained(
          counts, static_cast<double>(n), chain.first, chain.second));
    }
    result.per_user_epsilon.resize(n);
    for (uint32_t u = 0; u < n; ++u) {
      result.per_user_epsilon[u] = eps_perm_ * clients[u].distinct_memos();
    }
    return result;
  }

 private:
  double eps_perm_;
  double eps_first_;
  RunnerOptions options_;
};

class LolohaRunner : public LongitudinalRunner {
 public:
  // g == 2 -> BiLOLOHA; g == 0 -> OLOLOHA (Eq. 6); otherwise fixed g.
  LolohaRunner(uint32_t g, double eps_perm, double eps_first,
               const RunnerOptions& options)
      : g_(g),
        eps_perm_(eps_perm),
        eps_first_(eps_first),
        options_(options) {}

  std::string name() const override {
    if (g_ == 2) return "BiLOLOHA";
    if (g_ == 0) return "OLOLOHA";
    return "LOLOHA(g=" + std::to_string(g_) + ")";
  }

  RunResult Run(const Dataset& data, uint64_t seed) const override {
    const uint32_t g =
        g_ == 0 ? OptimalLolohaG(eps_perm_, eps_first_) : g_;
    const LolohaParams params =
        MakeLolohaParams(data.k(), g, eps_perm_, eps_first_);
    const PoolLease pool(options_.pool, options_.num_threads);
    const uint32_t shards = options_.num_shards;
    // Sharded hash-row precompute (the constructor's dominant cost).
    LolohaPopulation population(params, data.n(), seed, *pool, shards);

    RunResult result;
    result.protocol = name();
    result.bins = data.k();
    result.comm_bits_per_report = std::ceil(std::log2(g));
    result.estimates.reserve(data.tau());
    for (uint32_t t = 0; t < data.tau(); ++t) {
      result.estimates.push_back(
          population.Step(data.StepValues(t), StepSeed(seed, t), *pool,
                          shards));
    }
    result.per_user_epsilon.resize(data.n());
    for (uint32_t u = 0; u < data.n(); ++u) {
      result.per_user_epsilon[u] = eps_perm_ * population.DistinctMemos(u);
    }
    return result;
  }

 private:
  uint32_t g_;
  double eps_perm_;
  double eps_first_;
  RunnerOptions options_;
};

class DBitFlipRunner : public LongitudinalRunner {
 public:
  // d == 0 means d = b ("bBitFlipPM"); d == 1 is "1BitFlipPM".
  DBitFlipRunner(uint32_t d, double eps_perm, RunnerOptions options)
      : d_(d), eps_perm_(eps_perm), options_(options) {}

  std::string name() const override {
    if (d_ == 0) return "bBitFlipPM";
    if (d_ == 1) return "1BitFlipPM";
    return std::to_string(d_) + "BitFlipPM";
  }

  RunResult Run(const Dataset& data, uint64_t seed) const override {
    Rng rng(seed);
    const uint32_t b = ResolveBuckets(options_, data.k());
    const uint32_t d = d_ == 0 ? b : d_;
    const Bucketizer bucketizer(data.k(), b);
    DBitFlipPopulation population(bucketizer, d, eps_perm_, data.n(), rng);
    const PoolLease pool(options_.pool, options_.num_threads);
    const uint32_t shards = options_.num_shards;

    RunResult result;
    result.protocol = name();
    result.bins = b;
    result.comm_bits_per_report = d;
    result.estimates.reserve(data.tau());
    for (uint32_t t = 0; t < data.tau(); ++t) {
      result.estimates.push_back(
          population.Step(data.StepValues(t), StepSeed(seed, t), *pool,
                          shards));
    }
    result.per_user_epsilon.resize(data.n());
    for (uint32_t u = 0; u < data.n(); ++u) {
      result.per_user_epsilon[u] = eps_perm_ * population.DistinctStates(u);
    }
    return result;
  }

 private:
  uint32_t d_;
  double eps_perm_;
  RunnerOptions options_;
};

// Fresh one-shot OLH every step (no memoization). Population-style
// implementation: per-user hash rows are redrawn every step, matching a
// user that samples a new hash per report.
class NaiveOlhRunner : public LongitudinalRunner {
 public:
  NaiveOlhRunner(double eps_per_step, const RunnerOptions& options)
      : eps_(eps_per_step), options_(options) {}

  std::string name() const override { return "Naive-OLH"; }

  RunResult Run(const Dataset& data, uint64_t seed) const override {
    const uint32_t k = data.k();
    const uint32_t n = data.n();
    const uint32_t g = OlhRange(eps_);
    const LhClient client(k, g, eps_);
    PerturbParams estimator;
    estimator.p = client.params().p;
    estimator.q = 1.0 / static_cast<double>(g);
    const PoolLease pool(options_.pool, options_.num_threads);
    const uint32_t shards = options_.num_shards;

    RunResult result;
    result.protocol = name();
    result.bins = k;
    result.comm_bits_per_report = std::ceil(std::log2(g));
    result.estimates.reserve(data.tau());
    CacheAlignedRows<uint64_t> shard_support(shards, k);
    for (uint32_t t = 0; t < data.tau(); ++t) {
      const uint32_t* values = data.StepValuesData(t);
      shard_support.Clear();
      pool->ParallelFor(shards, [&](uint32_t shard) {
        const ShardRange range = ShardBounds(n, shards, shard);
        Rng rng(StreamSeed(StepSeed(seed, t), shard, 0));
        uint64_t* support = shard_support.Row(shard);
        if (g <= 65535) {
          // Hash-row + support-count kernels (util/simd.h): evaluate the
          // report's hash row once per user, then SIMD-compare against the
          // reported cell in 16-bit lanes, flushing before saturation.
          std::vector<uint16_t> row(k);
          U16SupportAccumulator acc(k, support);
          for (uint64_t u = range.begin; u < range.end; ++u) {
            const LhReport report = client.Perturb(values[u], rng);
            HashRowU16(report.hash.a(), report.hash.b(), g, k, row.data());
            acc.Add(row.data(), static_cast<uint16_t>(report.cell));
          }
        } else {
          for (uint64_t u = range.begin; u < range.end; ++u) {
            const LhReport report = client.Perturb(values[u], rng);
            for (uint32_t v = 0; v < k; ++v) {
              if (report.hash(v) == report.cell) ++support[v];
            }
          }
        }
      });
      std::vector<double> counts(k, 0.0);
      shard_support.MergeInto(counts.data());
      result.estimates.push_back(EstimateFrequencies(
          counts, static_cast<double>(n), estimator));
    }
    // Sequential composition: every report spends a fresh eps.
    result.per_user_epsilon.assign(n, eps_ * static_cast<double>(data.tau()));
    return result;
  }

 private:
  double eps_;
  RunnerOptions options_;
};

}  // namespace

uint32_t ResolveNumThreads(const RunnerOptions& options) {
  return options.num_threads == 0 ? ThreadPool::HardwareThreads()
                                  : options.num_threads;
}

uint32_t ResolveNumShards(const RunnerOptions& options) {
  return options.num_shards == 0 ? kDefaultNumShards : options.num_shards;
}

RunnerOptions NormalizeRunnerOptions(RunnerOptions options) {
  options.num_threads = ResolveNumThreads(options);
  options.num_shards = ResolveNumShards(options);
  return options;
}

std::unique_ptr<LongitudinalRunner> MakeNaiveOlhRunner(
    double eps_per_step, const RunnerOptions& options) {
  return std::make_unique<NaiveOlhRunner>(eps_per_step,
                                          NormalizeRunnerOptions(options));
}

uint32_t ResolveBuckets(const RunnerOptions& options, uint32_t k) {
  if (options.buckets != 0) {
    LOLOHA_CHECK(options.buckets >= 2 && options.buckets <= k);
    return options.buckets;
  }
  LOLOHA_CHECK(options.bucket_divisor >= 1);
  const uint32_t b = k / options.bucket_divisor;
  LOLOHA_CHECK_MSG(b >= 2, "bucket divisor too large for this domain");
  return b;
}

std::unique_ptr<LongitudinalRunner> MakeRunner(ProtocolId id, double eps_perm,
                                               double eps_first,
                                               const RunnerOptions& raw_options) {
  // Resolve thread / shard defaults exactly once; runner code relies on
  // normalized (nonzero) values everywhere below.
  const RunnerOptions options = NormalizeRunnerOptions(raw_options);
  switch (id) {
    case ProtocolId::kRappor:
      return std::make_unique<UeRunner>(LueVariant::kLSue, eps_perm,
                                        eps_first, options);
    case ProtocolId::kLOsue:
      return std::make_unique<UeRunner>(LueVariant::kLOsue, eps_perm,
                                        eps_first, options);
    case ProtocolId::kLSoue:
      return std::make_unique<UeRunner>(LueVariant::kLSoue, eps_perm,
                                        eps_first, options);
    case ProtocolId::kLOue:
      return std::make_unique<UeRunner>(LueVariant::kLOue, eps_perm,
                                        eps_first, options);
    case ProtocolId::kLGrr:
      return std::make_unique<GrrRunner>(eps_perm, eps_first, options);
    case ProtocolId::kBiLoloha:
      return std::make_unique<LolohaRunner>(2, eps_perm, eps_first, options);
    case ProtocolId::kOLoloha:
      return std::make_unique<LolohaRunner>(0, eps_perm, eps_first, options);
    case ProtocolId::kOneBitFlipPm:
      return std::make_unique<DBitFlipRunner>(1, eps_perm, options);
    case ProtocolId::kBBitFlipPm:
      return std::make_unique<DBitFlipRunner>(0, eps_perm, options);
  }
  LOLOHA_CHECK_MSG(false, "unknown protocol id");
  return nullptr;
}

std::vector<ProtocolId> Figure3Protocols(bool include_dbitflip) {
  std::vector<ProtocolId> protocols;
  if (include_dbitflip) protocols.push_back(ProtocolId::kBBitFlipPm);
  protocols.push_back(ProtocolId::kLOsue);
  protocols.push_back(ProtocolId::kOLoloha);
  protocols.push_back(ProtocolId::kRappor);
  protocols.push_back(ProtocolId::kBiLoloha);
  if (include_dbitflip) protocols.push_back(ProtocolId::kOneBitFlipPm);
  protocols.push_back(ProtocolId::kLGrr);
  return protocols;
}

}  // namespace loloha
